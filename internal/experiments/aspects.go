package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"sperr/internal/chunk"
	"sperr/internal/codec"
	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/plot"
	"sperr/internal/synth"
)

// TableI reproduces Table I: translation of idx labels into actual PWE
// tolerances for a concrete field.
func TableI(cfg Config) *Result {
	f := fieldByName("Miranda Pressure", cfg.dims(), cfg.seed())
	rng := metrics.Range(f.vol.Data)
	r := &Result{
		ID:     "tab1",
		Title:  "idx -> PWE tolerance translation (field: Miranda Pressure)",
		Header: []string{"idx", "t = Range/2^idx", "understanding"},
		Notes:  []string{fmt.Sprintf("data range = %.6g", rng)},
	}
	understanding := map[int]string{
		10: "one thousandth of the data range",
		20: "one millionth of the data range",
		30: "one billionth of the data range",
		40: "one trillionth of the data range",
	}
	for _, idx := range []int{10, 20, 30, 40} {
		r.AddRow(fmt.Sprintf("%d", idx), g3(metrics.ToleranceForIdx(rng, idx)), understanding[idx])
	}
	return r
}

// TableII reproduces Table II: the field/level abbreviations used by
// Figures 9-11.
func TableII() *Result {
	r := &Result{
		ID:     "tab2",
		Title:  "abbreviations for data fields and compression levels",
		Header: []string{"abbrev", "field", "idx"},
	}
	for _, e := range tableIIEntries() {
		r.AddRow(e.abbrev, e.field, fmt.Sprintf("%d", e.idx))
	}
	return r
}

type tabIIEntry struct {
	abbrev string
	field  string
	idx    int
}

func tableIIEntries() []tabIIEntry {
	return []tabIIEntry{
		{"CH4-20", "S3D CH4", 20},
		{"CH4-40", "S3D CH4", 40},
		{"Temp-20", "S3D Temperature", 20},
		{"Temp-40", "S3D Temperature", 40},
		{"VX1-20", "S3D X Velocity", 20},
		{"VX1-40", "S3D X Velocity", 40},
		{"Press-20", "Miranda Pressure", 20},
		{"Press-40", "Miranda Pressure", 40},
		{"Visc-20", "Miranda Viscosity", 20},
		{"Visc-40", "Miranda Viscosity", 40},
		{"VX2-20", "Miranda X Velocity", 20},
		{"VX2-40", "Miranda X Velocity", 40},
		{"QMC-20", "QMCPACK", 20},
		{"Nyx-20", "Nyx Dark Matter Density", 20},
		{"VX3-20", "Nyx X Velocity", 20},
	}
}

// Figure1 reproduces Figure 1: outlier positions carry (almost) no spatial
// correlation. For the Lighthouse image at three q settings it reports the
// outlier percentage and a join-count clustering ratio: the probability
// that a 4-neighbor of an outlier is itself an outlier, divided by the
// outlier density. A ratio near 1 means random positions; strongly
// clustered phenomena (like wavelet coefficients) score far above 1.
func Figure1(cfg Config) *Result {
	d := grid.D2(256, 200)
	if cfg.Quick {
		d = grid.D2(128, 100)
	}
	img := synth.Lighthouse(d, cfg.seed())
	tol := metrics.ToleranceForIdx(metrics.Range(img.Data), 12)
	r := &Result{
		ID:     "fig1",
		Title:  "outlier spatial correlation on the Lighthouse image",
		Header: []string{"q/t", "outliers", "percent", "cluster-ratio"},
		Notes: []string{
			"cluster-ratio ~ 1 means outlier positions are spatially random (paper Fig. 1)",
		},
	}
	for _, qf := range []float64{1.3, 1.5, 1.7} {
		an, err := codec.Analyze(img.Data, img.Dims, tol, qf*tol)
		if err != nil {
			panic(err)
		}
		mask := outlierMask(an, img.Dims)
		ratio := clusterRatio(mask, img.Dims)
		r.AddRow(f2(qf), fmt.Sprintf("%d", len(an.Outliers)),
			f3(an.OutlierPercent()), f2(ratio))
		r.Rasters = append(r.Rasters, plot.Raster(
			fmt.Sprintf("fig1: outlier positions at q = %.1ft (%.2f%%)", qf, an.OutlierPercent()),
			mask, d.NX, d.NY, 72, 20))
	}
	return r
}

// outlierMask rasterizes the outlier list.
func outlierMask(a *codec.Analysis, d grid.Dims) []bool {
	mask := make([]bool, d.Len())
	for _, o := range a.Outliers {
		mask[o.Pos] = true
	}
	return mask
}

// clusterRatio returns P(neighbor of outlier is outlier) / P(outlier).
func clusterRatio(mask []bool, d grid.Dims) float64 {
	var outliers, adjacent, pairs int
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			if !mask[d.Index(x, y, 0)] {
				continue
			}
			outliers++
			for _, n := range [][2]int{{x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}} {
				if n[0] < 0 || n[0] >= d.NX || n[1] < 0 || n[1] >= d.NY {
					continue
				}
				pairs++
				if mask[d.Index(n[0], n[1], 0)] {
					adjacent++
				}
			}
		}
	}
	if outliers == 0 || pairs == 0 {
		return math.NaN()
	}
	density := float64(outliers) / float64(d.Len())
	return (float64(adjacent) / float64(pairs)) / density
}

// qSweep returns the q/t grid for Figures 2-4.
func qSweep(quick bool) []float64 {
	if quick {
		return []float64{1.0, 1.5, 2.0, 3.0}
	}
	return []float64{1.0, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 2.0, 2.25, 2.5, 2.75, 3.0}
}

// Figure2 reproduces Figure 2: total coding cost as a function of the
// quantization step q, broken into wavelet-coefficient cost and outlier
// cost, on Miranda Pressure at a tight tolerance.
func Figure2(cfg Config) *Result {
	f := fieldByName("Miranda Pressure", cfg.dims(), cfg.seed())
	idx := 40
	tol := f.tol(idx)
	r := &Result{
		ID:     "fig2",
		Title:  fmt.Sprintf("coding cost vs q on Miranda Pressure (idx=%d, t=%.3g)", idx, tol),
		Header: []string{"q/t", "coeff BPP", "outlier BPP", "total BPP", "outlier %"},
		Notes:  []string{"U-shaped total cost; sweet spot near q = 1.4t-1.8t (paper Fig. 2/3)"},
	}
	n := float64(f.vol.Dims.Len())
	var qs, totals []float64
	for _, qf := range qSweep(cfg.Quick) {
		an, err := codec.Analyze(f.vol.Data, f.vol.Dims, tol, qf*tol)
		if err != nil {
			panic(err)
		}
		cb := float64(an.SpeckBits) / n
		ob := float64(an.OutlierBits) / n
		r.AddRow(f2(qf), f3(cb), f3(ob), f3(cb+ob), f3(an.OutlierPercent()))
		qs = append(qs, qf)
		totals = append(totals, cb+ob)
	}
	// Chart only the total: its U-shaped valley spans a fraction of a BPP,
	// which the component curves would flatten out of view (the paper
	// likewise cuts its Figure 2 axis at 10 BPP).
	r.XLab, r.YLab = "q/t", "total BPP"
	r.Lines = []plot.Series{{Name: "total", X: qs, Y: totals}}
	return r
}

// Figure3 reproduces Figure 3: relative bitrate difference (top row) and
// PSNR difference (bottom row) as q sweeps, over four fields and multiple
// tolerance levels.
func Figure3(cfg Config) *Result {
	r := &Result{
		ID:     "fig3",
		Title:  "bitrate and PSNR differences vs q (relative to best observed)",
		Header: []string{"field", "idx", "q/t", "dBPP", "dPSNR(dB)"},
		Notes: []string{
			"dBPP: increase over the minimum-bitrate q (U-shape, paper Fig. 3 top)",
			"dPSNR: increase over the lowest-PSNR q (monotone decreasing, paper Fig. 3 bottom)",
		},
	}
	type fieldSpec struct {
		name string
		idxs []int
	}
	specs := []fieldSpec{
		{"Miranda Pressure", []int{20, 30, 40}},
		{"Miranda Viscosity", []int{20, 30, 40}},
		{"Nyx Dark Matter Density", []int{10, 20}},
		{"Nyx X Velocity", []int{10, 20}},
	}
	if cfg.Quick {
		specs = []fieldSpec{
			{"Miranda Viscosity", []int{20}},
			{"Nyx Dark Matter Density", []int{10}},
		}
	}
	qs := qSweep(cfg.Quick)
	for _, spec := range specs {
		f := fieldByName(spec.name, cfg.dims(), cfg.seed())
		for _, idx := range spec.idxs {
			tol := f.tol(idx)
			bpps := make([]float64, len(qs))
			psnrs := make([]float64, len(qs))
			for i, qf := range qs {
				stream, _, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
					codec.Params{Mode: codec.ModePWE, Tol: tol, Q: qf * tol})
				if err != nil {
					panic(err)
				}
				rec, err := codec.DecodeChunk(stream, f.vol.Dims)
				if err != nil {
					panic(err)
				}
				bpps[i] = metrics.BPP(len(stream), f.vol.Dims.Len())
				psnrs[i] = metrics.PSNR(f.vol.Data, rec)
			}
			minBPP, minPSNR := bpps[0], psnrs[0]
			for i := range qs {
				if bpps[i] < minBPP {
					minBPP = bpps[i]
				}
				if psnrs[i] < minPSNR {
					minPSNR = psnrs[i]
				}
			}
			for i, qf := range qs {
				r.AddRow(spec.name, fmt.Sprintf("%d", idx), f2(qf),
					f3(bpps[i]-minBPP), f2(psnrs[i]-minPSNR))
			}
		}
	}
	return r
}

// Figure4 reproduces Figure 4: outlier bitrate (bits per outlier) and
// outlier percentage at different q values.
func Figure4(cfg Config) *Result {
	r := &Result{
		ID:     "fig4",
		Title:  "outlier coding bitrate and outlier percentage vs q",
		Header: []string{"field", "q/t", "bits/outlier", "outlier %"},
		Notes:  []string{"bits/outlier ~ 10 at q = 1.5t, decreasing with density (paper Fig. 4)"},
	}
	cases := []struct {
		name string
		idx  int
	}{
		{"Miranda Viscosity", 20},
		{"Miranda Viscosity", 40},
		{"Nyx Dark Matter Density", 20},
		{"Nyx Dark Matter Density", 30},
	}
	if cfg.Quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		f := fieldByName(c.name, cfg.dims(), cfg.seed())
		tol := f.tol(c.idx)
		label := fmt.Sprintf("%s-%d", abbrevOf(c.name), c.idx)
		var qs, bpos []float64
		for _, qf := range qSweep(cfg.Quick) {
			an, err := codec.Analyze(f.vol.Data, f.vol.Dims, tol, qf*tol)
			if err != nil {
				panic(err)
			}
			bpo := an.BitsPerOutlier()
			r.AddRow(label, f2(qf), f2(bpo), f3(an.OutlierPercent()))
			qs = append(qs, qf)
			bpos = append(bpos, bpo)
		}
		r.Lines = append(r.Lines, plot.Series{Name: label, X: qs, Y: bpos})
	}
	r.XLab, r.YLab = "q/t", "bits/outlier"
	return r
}

func abbrevOf(field string) string {
	switch field {
	case "Miranda Viscosity":
		return "Visc"
	case "Miranda Pressure":
		return "Press"
	case "Nyx Dark Matter Density":
		return "Nyx"
	default:
		return field
	}
}

// Figure5 reproduces Figure 5: compression efficiency (accuracy gain) as a
// function of chunk size, on a Miranda density volume.
func Figure5(cfg Config) *Result {
	d := cfg.dims()
	f := fieldByName("Miranda Density", d, cfg.seed())
	sizes := []grid.Dims{
		grid.D3(d.NX/4, d.NY/4, d.NZ/4),
		grid.D3(d.NX/2, d.NY/2, d.NZ/2),
		d,
	}
	idxs := []int{10, 15, 20}
	if cfg.Quick {
		idxs = []int{10, 15}
	}
	r := &Result{
		ID:     "fig5",
		Title:  "accuracy-gain difference vs chunk size (Miranda density)",
		Header: []string{"idx", "chunk", "gain", "dGain vs best"},
		Notes:  []string{"bigger chunks -> higher gain, diminishing returns (paper Fig. 5)"},
	}
	for _, idx := range idxs {
		tol := f.tol(idx)
		gains := make([]float64, len(sizes))
		for i, cs := range sizes {
			stream, _, err := chunk.Compress(f.vol, chunk.Options{
				Params:    codec.Params{Mode: codec.ModePWE, Tol: tol},
				ChunkDims: cs,
				Workers:   cfg.Workers,
			})
			if err != nil {
				panic(err)
			}
			rec, err := chunk.Decompress(stream, cfg.Workers)
			if err != nil {
				panic(err)
			}
			bpp := metrics.BPP(len(stream), d.Len())
			gains[i] = metrics.AccuracyGain(f.vol.Data, rec.Data, bpp)
		}
		best := gains[0]
		for _, g := range gains {
			if g > best {
				best = g
			}
		}
		for i, cs := range sizes {
			r.AddRow(fmt.Sprintf("%d", idx), cs.String(), f2(gains[i]), f2(gains[i]-best))
		}
	}
	return r
}

// Figure6 reproduces Figure 6: execution-time breakdown of the four
// pipeline stages across tolerance levels, on Miranda Viscosity.
func Figure6(cfg Config) *Result {
	f := fieldByName("Miranda Viscosity", cfg.dims(), cfg.seed())
	idxs := []int{10, 20, 30, 40, 50}
	if cfg.Quick {
		idxs = []int{10, 30}
	}
	r := &Result{
		ID:     "fig6",
		Title:  "compression time breakdown (Miranda Viscosity, serial)",
		Header: []string{"idx", "transform ms", "speck ms", "locate ms", "outlier ms", "total ms"},
		Notes: []string{
			"SPECK time grows as the tolerance tightens; the other stages stay near-constant (paper Fig. 6)",
		},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
	msF := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	var xs, tXf, tSp, tLoc, tOut []float64
	for _, idx := range idxs {
		tol := f.tol(idx)
		_, st, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
			codec.Params{Mode: codec.ModePWE, Tol: tol})
		if err != nil {
			panic(err)
		}
		total := st.TransformTime + st.SpeckTime + st.LocateTime + st.OutlierTime
		r.AddRow(fmt.Sprintf("%d", idx), ms(st.TransformTime), ms(st.SpeckTime),
			ms(st.LocateTime), ms(st.OutlierTime), ms(total))
		xs = append(xs, float64(idx))
		tXf = append(tXf, msF(st.TransformTime))
		tSp = append(tSp, msF(st.SpeckTime))
		tLoc = append(tLoc, msF(st.LocateTime))
		tOut = append(tOut, msF(st.OutlierTime))
	}
	r.XLab, r.YLab = "idx", "ms"
	r.Lines = []plot.Series{
		{Name: "speck", X: xs, Y: tSp},
		{Name: "locate", X: xs, Y: tLoc},
		{Name: "transform", X: xs, Y: tXf},
		{Name: "outlier", X: xs, Y: tOut},
	}
	return r
}

// Figure7 reproduces Figure 7: strong scaling of the chunk-parallel
// compressor. The volume is split into enough chunks for multi-way
// parallelism and compressed with increasing worker counts.
func Figure7(cfg Config) *Result {
	d := cfg.dims()
	f := fieldByName("Miranda Density", d, cfg.seed())
	chunkDims := grid.D3(d.NX/4, d.NY/4, d.NZ/4) // 64 chunks
	maxWorkers := runtime.GOMAXPROCS(0)
	workers := []int{1}
	for w := 2; w <= maxWorkers && w <= 64; w *= 2 {
		workers = append(workers, w)
	}
	idxs := []int{10, 15, 20}
	if cfg.Quick {
		idxs = []int{10}
	}
	r := &Result{
		ID:     "fig7",
		Title:  fmt.Sprintf("strong scaling, %d chunks of %v (GOMAXPROCS=%d)", 64, chunkDims, maxWorkers),
		Header: []string{"idx", "workers", "time ms", "speedup"},
		Notes: []string{
			"speedup is capped by chunk count and available cores (paper Fig. 7)",
		},
	}
	for _, idx := range idxs {
		tol := f.tol(idx)
		var t1 float64
		for _, w := range workers {
			start := time.Now()
			_, _, err := chunk.Compress(f.vol, chunk.Options{
				Params:    codec.Params{Mode: codec.ModePWE, Tol: tol},
				ChunkDims: chunkDims,
				Workers:   w,
			})
			if err != nil {
				panic(err)
			}
			el := float64(time.Since(start).Microseconds()) / 1000
			if w == 1 {
				t1 = el
			}
			r.AddRow(fmt.Sprintf("%d", idx), fmt.Sprintf("%d", w),
				fmt.Sprintf("%.1f", el), f2(t1/el))
		}
	}
	return r
}
