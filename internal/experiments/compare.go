package experiments

import (
	"fmt"
	"math"
	"time"

	"sperr/internal/chunk"
	"sperr/internal/codec"
	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/mgard"
	"sperr/internal/sz"
	"sperr/internal/tthresh"
	"sperr/internal/zfp"
)

// compressorResult is one (compressor, setting) measurement.
type compressorResult struct {
	bpp    float64
	psnr   float64
	gain   float64
	maxErr float64
	t      time.Duration
	err    error
}

// runCompressor executes one of the five compressors at tolerance tol
// (TTHRESH receives the idx-equivalent PSNR target instead, as in the
// paper).
func runCompressor(name string, f field, tol float64, idx int, workers int) compressorResult {
	d := f.vol.Dims
	data := f.vol.Data
	var stream []byte
	var rec []float64
	var err error
	start := time.Now()
	switch name {
	case "SPERR":
		var s []byte
		s, _, err = chunk.Compress(f.vol, chunk.Options{
			Params:  codec.Params{Mode: codec.ModePWE, Tol: tol},
			Workers: workers,
		})
		if err == nil {
			stream = s
			var v *grid.Volume
			v, err = chunk.Decompress(s, workers)
			if err == nil {
				rec = v.Data
			}
		}
	case "SZ3":
		stream, err = sz.Compress(data, d, sz.Params{Tol: tol})
		if err == nil {
			rec, _, err = sz.Decompress(stream)
		}
	case "ZFP":
		stream, err = zfp.Compress(data, d, zfp.Params{Mode: zfp.ModeFixedAccuracy, Tol: tol})
		if err == nil {
			rec, _, err = zfp.Decompress(stream)
		}
	case "MGARD":
		stream, err = mgard.Compress(data, d, mgard.Params{Tol: tol})
		if err == nil {
			rec, _, err = mgard.Decompress(stream)
		}
	case "TTHRESH":
		psnr := 20 * math.Log10(2) * float64(idx)
		stream, err = tthresh.Compress(data, d, tthresh.Params{TargetPSNR: psnr})
		if err == nil {
			rec, _, err = tthresh.Decompress(stream)
		}
	default:
		err = fmt.Errorf("unknown compressor %q", name)
	}
	elapsed := time.Since(start)
	if err != nil {
		return compressorResult{err: err}
	}
	bpp := metrics.BPP(len(stream), d.Len())
	return compressorResult{
		bpp:    bpp,
		psnr:   metrics.PSNR(data, rec),
		gain:   metrics.AccuracyGain(data, rec, bpp),
		maxErr: metrics.MaxErr(data, rec),
		t:      elapsed,
	}
}

// Figure8 reproduces Figure 8: rate-distortion curves (accuracy gain vs
// bitrate) for the five compressors across the nine Table II fields, over
// an idx sweep from coarse tolerances toward machine epsilon.
func Figure8(cfg Config) *Result {
	r := &Result{
		ID:     "fig8",
		Title:  "rate-distortion: accuracy gain vs BPP, five compressors, nine fields",
		Header: []string{"field", "idx", "compressor", "BPP", "gain", "PSNR dB", "maxErr/t"},
		Notes: []string{
			"SPERR should lead at mid-to-high rates (> 2 BPP) and stay competitive at low rates (paper Fig. 8)",
			"maxErr/t > 1 marks a violated point-wise tolerance (TTHRESH gives no PWE guarantee)",
		},
	}
	fields := []string{
		"S3D CH4", "S3D Temperature", "S3D X Velocity",
		"Miranda Pressure", "Miranda Viscosity", "Miranda X Velocity",
		"QMCPACK", "Nyx Dark Matter Density", "Nyx X Velocity",
	}
	single := map[string]bool{
		"QMCPACK": true, "Nyx Dark Matter Density": true, "Nyx X Velocity": true,
	}
	idxsDouble := []int{5, 10, 15, 20, 25, 30, 35, 40}
	idxsSingle := []int{5, 10, 15, 20, 25}
	if cfg.Quick {
		fields = []string{"Miranda Viscosity", "Nyx X Velocity"}
		idxsDouble = []int{10, 20}
		idxsSingle = []int{10, 20}
	}
	compressors := []string{"SPERR", "SZ3", "ZFP", "MGARD", "TTHRESH"}
	for _, name := range fields {
		f := fieldByName(name, cfg.dims(), cfg.seed())
		idxs := idxsDouble
		if single[name] {
			idxs = idxsSingle
		}
		for _, idx := range idxs {
			tol := f.tol(idx)
			for _, comp := range compressors {
				if comp == "TTHRESH" && name == "QMCPACK" {
					// The paper reports TTHRESH could not finish QMCPACK.
					continue
				}
				res := runCompressor(comp, f, tol, idx, cfg.Workers)
				if res.err != nil {
					r.AddRow(name, fmt.Sprintf("%d", idx), comp, "-", "-", "-", "error")
					continue
				}
				r.AddRow(name, fmt.Sprintf("%d", idx), comp,
					f3(res.bpp), f2(res.gain), f2(res.psnr), f2(res.maxErr/tol))
			}
		}
	}
	return r
}

// figure9Entries returns the Table II subset used by Figures 9-11.
func figure9Entries(quick bool) []tabIIEntry {
	entries := tableIIEntries()
	if quick {
		return []tabIIEntry{entries[0], entries[8], entries[13]}
	}
	return entries
}

// Figure9 reproduces Figure 9: the bits each error-bounded compressor
// needs to satisfy a PWE tolerance (TTHRESH excluded: no error-bounded
// mode).
func Figure9(cfg Config) *Result {
	r := &Result{
		ID:     "fig9",
		Title:  "achieved bitrate at fixed PWE tolerance (lower is better)",
		Header: []string{"case", "SPERR BPP", "SZ3 BPP", "ZFP BPP", "MGARD BPP"},
		Notes: []string{
			"SPERR should need the fewest bits in all but a couple of cases (paper Fig. 9)",
			"the paper omits MGARD at idx=40 for exceeding the tolerance; our conservative reimplementation holds the bound and pays in rate instead (see EXPERIMENTS.md)",
		},
	}
	comps := []string{"SPERR", "SZ3", "ZFP", "MGARD"}
	var labels []string
	vals := make([][]float64, len(comps))
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		row := []string{e.abbrev}
		labels = append(labels, e.abbrev)
		for ci, comp := range comps {
			res := runCompressor(comp, f, tol, e.idx, cfg.Workers)
			if res.err != nil {
				row = append(row, "error")
				vals[ci] = append(vals[ci], 0)
				continue
			}
			cell := f3(res.bpp)
			if res.maxErr > tol*(1+1e-9) {
				cell += "!" // tolerance violated
			}
			row = append(row, cell)
			vals[ci] = append(vals[ci], res.bpp)
		}
		r.AddRow(row...)
	}
	for ci, comp := range comps {
		r.Bars = append(r.Bars, BarData{
			Title:  comp + " BPP at fixed tolerance",
			Labels: labels,
			Values: vals[ci],
		})
	}
	return r
}

// Figure10 reproduces Figure 10: compression wall time per compressor at
// the Table II settings, with four workers for the chunk-parallel SPERR
// (the baselines are serial in this reproduction; the paper runs all five
// under OpenMP with four threads).
func Figure10(cfg Config) *Result {
	r := &Result{
		ID:     "fig10",
		Title:  "compression time (ms)",
		Header: []string{"case", "SPERR", "SZ3", "ZFP", "MGARD", "TTHRESH"},
		Notes: []string{
			"expected ordering (paper Fig. 10): SZ3 ~ ZFP fastest, SPERR a few times slower, TTHRESH slowest",
		},
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 4
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		row := []string{e.abbrev}
		for _, comp := range []string{"SPERR", "SZ3", "ZFP", "MGARD", "TTHRESH"} {
			if comp == "TTHRESH" && e.field == "QMCPACK" {
				row = append(row, "-")
				continue
			}
			res := runCompressor(comp, f, tol, e.idx, workers)
			if res.err != nil {
				row = append(row, "error")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", float64(res.t.Microseconds())/1000))
		}
		r.AddRow(row...)
	}
	return r
}

// Figure11 reproduces Figure 11: outlier coding efficiency, SPERR's
// outlier coder vs SZ's quantization-bin scheme, fed the identical outlier
// list intercepted from SPERR's pipeline.
func Figure11(cfg Config) *Result {
	r := &Result{
		ID:     "fig11",
		Title:  "outlier coding cost: SPERR coder vs SZ quant-bin scheme (bits per outlier)",
		Header: []string{"case", "outliers", "SPERR b/o", "SZ b/o"},
		Notes: []string{
			"SPERR should use ~10 bits/outlier and beat SZ by 1-2 bits (paper Fig. 11)",
		},
	}
	var labels11 []string
	var sperrBPO, szBPOs []float64
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		an, err := codec.Analyze(f.vol.Data, f.vol.Dims, tol, 0)
		if err != nil {
			panic(err)
		}
		if len(an.Outliers) == 0 {
			r.AddRow(e.abbrev, "0", "-", "-")
			continue
		}
		bins := sz.QuantizeOutliers(f.vol.Dims.Len(), tol, an.Outliers)
		szStream := sz.CompressQuantBins(bins)
		szBPO := float64(len(szStream)*8) / float64(len(an.Outliers))
		r.AddRow(e.abbrev, fmt.Sprintf("%d", len(an.Outliers)),
			f2(an.BitsPerOutlier()), f2(szBPO))
		labels11 = append(labels11, e.abbrev)
		sperrBPO = append(sperrBPO, an.BitsPerOutlier())
		szBPOs = append(szBPOs, szBPO)
	}
	r.Bars = []BarData{
		{Title: "SPERR bits/outlier", Labels: labels11, Values: sperrBPO},
		{Title: "SZ quant-bin bits/outlier", Labels: labels11, Values: szBPOs},
	}
	return r
}

// All runs every experiment at the given config, in paper order, followed
// by the ablations.
func All(cfg Config) []*Result {
	return []*Result{
		TableI(cfg), TableII(),
		Figure1(cfg), Figure2(cfg), Figure3(cfg), Figure4(cfg),
		Figure5(cfg), Figure6(cfg), Figure7(cfg),
		Figure8(cfg), Figure9(cfg), Figure10(cfg), Figure11(cfg),
		AblationLossless(cfg), AblationOutlierCoder(cfg), AblationPredictor(cfg),
		AblationEntropy(cfg), AblationBitGroom(cfg), AblationPartition(cfg),
	}
}

// ByID returns the experiment driver for an experiment id, or nil.
func ByID(id string) func(Config) *Result {
	switch id {
	case "tab1":
		return TableI
	case "tab2":
		return func(Config) *Result { return TableII() }
	case "fig1":
		return Figure1
	case "fig2":
		return Figure2
	case "fig3":
		return Figure3
	case "fig4":
		return Figure4
	case "fig5":
		return Figure5
	case "fig6":
		return Figure6
	case "fig7":
		return Figure7
	case "fig8":
		return Figure8
	case "fig9":
		return Figure9
	case "fig10":
		return Figure10
	case "fig11":
		return Figure11
	case "abl-lossless":
		return AblationLossless
	case "abl-outlier":
		return AblationOutlierCoder
	case "abl-predictor":
		return AblationPredictor
	case "abl-entropy":
		return AblationEntropy
	case "abl-bitgroom":
		return AblationBitGroom
	case "abl-partition":
		return AblationPartition
	default:
		return nil
	}
}
