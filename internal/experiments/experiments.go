// Package experiments reproduces every table and figure of the paper's
// evaluation (Sections IV-VI). Each driver returns a Result — the same
// rows/series the paper plots — that cmd/sperrbench prints and
// EXPERIMENTS.md records. DESIGN.md maps each experiment to the modules it
// exercises.
//
// The drivers run on synthetic SDRBench stand-ins (internal/synth) at a
// configurable grid size; absolute numbers therefore differ from the
// paper, but the comparisons — who wins, by what factor, where the sweet
// spots and crossovers fall — are the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/plot"
	"sperr/internal/synth"
)

// Config controls experiment scale. The zero value picks defaults sized
// for a laptop-class run.
type Config struct {
	// Dims is the base 3D extent for volume experiments (default 48^3).
	Dims grid.Dims
	// Seed drives the synthetic data generators.
	Seed int64
	// Workers caps parallelism where an experiment uses it.
	Workers int
	// Quick trims sweeps (fewer idx levels, coarser q grids) for use from
	// testing.B benchmarks.
	Quick bool
}

func (c Config) dims() grid.Dims {
	if c.Dims.Valid() {
		return c.Dims
	}
	return grid.D3(48, 48, 48)
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 2023
}

// Result is one reproduced table or figure.
type Result struct {
	ID     string // e.g. "fig8"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string

	// Charts optionally carry the figure as plottable data;
	// PrintCharts renders them as ASCII plots (sperrbench -plot).
	Lines []plot.Series
	XLab  string
	YLab  string
	Bars  []BarData
	// Rasters are pre-rendered ASCII bitmaps (e.g. Figure 1's outlier
	// position maps).
	Rasters []string
}

// BarData is one bar chart attached to a Result.
type BarData struct {
	Title  string
	Labels []string
	Values []float64
}

// PrintCharts renders the attached charts, if any.
func (r *Result) PrintCharts(w io.Writer) {
	if len(r.Lines) > 0 {
		fmt.Fprint(w, plot.Lines(r.ID+": "+r.Title, r.XLab, r.YLab, r.Lines, 64, 16))
		fmt.Fprintln(w)
	}
	for _, b := range r.Bars {
		fmt.Fprint(w, plot.Bars(r.ID+": "+b.Title, b.Labels, b.Values, 48))
		fmt.Fprintln(w)
	}
	for _, raster := range r.Rasters {
		fmt.Fprint(w, raster)
		fmt.Fprintln(w)
	}
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Print writes the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// field bundles a named synthetic data set with its range-derived
// tolerance helper.
type field struct {
	name string
	vol  *grid.Volume
}

func (f field) tol(idx int) float64 {
	return metrics.ToleranceForIdx(metrics.Range(f.vol.Data), idx)
}

// fieldByName generates one of the Table II fields at the given extent.
func fieldByName(name string, d grid.Dims, seed int64) field {
	var v *grid.Volume
	switch name {
	case "Miranda Pressure":
		v = synth.MirandaPressure(d, seed)
	case "Miranda Viscosity":
		v = synth.MirandaViscosity(d, seed)
	case "Miranda X Velocity":
		v = synth.MirandaVelocityX(d, seed)
	case "Miranda Density":
		v = synth.MirandaDensity(d, seed)
	case "S3D CH4":
		v = synth.S3DCH4(d, seed)
	case "S3D Temperature":
		v = synth.S3DTemperature(d, seed)
	case "S3D X Velocity":
		v = synth.S3DVelocityX(d, seed)
	case "Nyx Dark Matter Density":
		v = synth.NyxDarkMatterDensity(d, seed)
	case "Nyx X Velocity":
		v = synth.NyxVelocityX(d, seed)
	case "QMCPACK":
		v = synth.QMCPACKOrbitals(grid.D3(d.NX, d.NY, d.NZ/4+1), 4, seed)
	default:
		panic("experiments: unknown field " + name)
	}
	return field{name: name, vol: v}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
