package experiments

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"sperr/internal/grid"
)

// quickCfg keeps experiment tests fast.
func quickCfg() Config {
	return Config{Dims: grid.D3(24, 24, 24), Seed: 7, Quick: true}
}

func TestResultPrint(t *testing.T) {
	r := &Result{
		ID: "x", Title: "demo",
		Header: []string{"a", "bbb"},
		Notes:  []string{"a note"},
	}
	r.AddRow("1", "2")
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "bbb", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableI(t *testing.T) {
	r := TableI(quickCfg())
	if len(r.Rows) != 4 {
		t.Fatalf("Table I should have 4 rows, got %d", len(r.Rows))
	}
	// Tolerances must decrease by ~2^10 per row.
	prev := parseF(t, r.Rows[0][1])
	for _, row := range r.Rows[1:] {
		cur := parseF(t, row[1])
		ratio := prev / cur
		if ratio < 1000 || ratio > 1100 {
			t.Errorf("tolerance ratio between idx steps = %g, want ~1024", ratio)
		}
		prev = cur
	}
}

func TestTableII(t *testing.T) {
	r := TableII()
	if len(r.Rows) != 15 {
		t.Fatalf("Table II should have 15 abbreviations, got %d", len(r.Rows))
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "!"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFigure1OutliersUncorrelated(t *testing.T) {
	r := Figure1(quickCfg())
	if len(r.Rows) != 3 {
		t.Fatalf("3 q settings expected, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		ratio := parseF(t, row[3])
		// Spatially random outliers give a cluster ratio near 1; anything
		// beyond ~5 would mean strong clustering, contradicting Fig. 1.
		if ratio > 5 {
			t.Errorf("q=%s: cluster ratio %g suggests correlated outliers", row[0], ratio)
		}
	}
	// Outlier percentage must grow with q.
	p13 := parseF(t, r.Rows[0][2])
	p17 := parseF(t, r.Rows[2][2])
	if p17 <= p13 {
		t.Errorf("outlier %% should grow with q: %g (1.3t) vs %g (1.7t)", p13, p17)
	}
}

func TestFigure2InverseRelationship(t *testing.T) {
	r := Figure2(quickCfg())
	if len(r.Rows) < 3 {
		t.Fatalf("too few rows: %d", len(r.Rows))
	}
	// Coefficient cost must decrease with q, outlier cost must increase.
	firstCoeff := parseF(t, r.Rows[0][1])
	lastCoeff := parseF(t, r.Rows[len(r.Rows)-1][1])
	if lastCoeff >= firstCoeff {
		t.Errorf("coefficient BPP should fall as q grows: %g -> %g", firstCoeff, lastCoeff)
	}
	firstOut := parseF(t, r.Rows[0][3])
	lastOut := parseF(t, r.Rows[len(r.Rows)-1][3])
	_ = firstOut
	firstPct := parseF(t, r.Rows[0][4])
	lastPct := parseF(t, r.Rows[len(r.Rows)-1][4])
	if lastPct <= firstPct {
		t.Errorf("outlier %% should grow with q: %g -> %g", firstPct, lastPct)
	}
	_ = lastOut
}

func TestFigure3Shapes(t *testing.T) {
	r := Figure3(quickCfg())
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// dBPP and dPSNR are differences vs the observed minimum: >= 0.
	for _, row := range r.Rows {
		if parseF(t, row[3]) < 0 {
			t.Errorf("negative dBPP in row %v", row)
		}
		if parseF(t, row[4]) < -1e-9 {
			t.Errorf("negative dPSNR in row %v", row)
		}
	}
}

func TestFigure4BitsPerOutlier(t *testing.T) {
	r := Figure4(quickCfg())
	for _, row := range r.Rows {
		bpo := parseF(t, row[2])
		if bpo != 0 && (bpo < 2 || bpo > 40) {
			t.Errorf("case %s q=%s: %g bits/outlier outside plausible range", row[0], row[1], bpo)
		}
	}
}

func TestFigure5BiggerChunksBetter(t *testing.T) {
	r := Figure5(quickCfg())
	// Rows come in groups of 3 chunk sizes per idx; the largest chunk
	// (last in group) should have dGain == 0 (the best) or near it.
	for i := 2; i < len(r.Rows); i += 3 {
		d := parseF(t, r.Rows[i][3])
		if d < -0.5 {
			t.Errorf("full-volume chunk much worse than smaller chunks: dGain %g", d)
		}
	}
}

func TestFigure6Breakdown(t *testing.T) {
	r := Figure6(quickCfg())
	if len(r.Rows) != 2 {
		t.Fatalf("quick mode should test 2 idx levels, got %d", len(r.Rows))
	}
	// Total must be >= each component and speck time should grow with idx.
	s0 := parseF(t, r.Rows[0][2])
	s1 := parseF(t, r.Rows[1][2])
	if s1 < s0*0.5 {
		t.Errorf("SPECK time should grow (or stay) as tolerance tightens: %g -> %g", s0, s1)
	}
}

func TestFigure7SpeedupSane(t *testing.T) {
	r := Figure7(quickCfg())
	for _, row := range r.Rows {
		sp := parseF(t, row[3])
		w := parseF(t, row[1])
		if sp > w*1.5+0.5 {
			t.Errorf("speedup %g with %g workers is super-linear beyond plausibility", sp, w)
		}
	}
}

func TestFigure9SperrCompetitive(t *testing.T) {
	r := Figure9(quickCfg())
	wins := 0
	for _, row := range r.Rows {
		sperr := parseF(t, row[1])
		best := sperr
		for _, cell := range row[2:] {
			if cell == "error" {
				continue
			}
			v := parseF(t, cell)
			if v < best {
				best = v
			}
		}
		if sperr <= best*1.0000001 {
			wins++
		}
	}
	// The paper has SPERR winning all but two cases; at reduced scale we
	// require it to win at least one of the quick cases.
	if wins == 0 {
		t.Errorf("SPERR won no cases:\n%v", r.Rows)
	}
}

func TestFigure11SperrBeatsSZ(t *testing.T) {
	r := Figure11(quickCfg())
	better := 0
	total := 0
	for _, row := range r.Rows {
		if row[2] == "-" {
			continue
		}
		total++
		if parseF(t, row[2]) < parseF(t, row[3]) {
			better++
		}
	}
	if total == 0 {
		t.Fatal("no cases produced outliers")
	}
	if better*2 < total {
		t.Errorf("SPERR outlier coder better in only %d/%d cases", better, total)
	}
}

func TestAblationOutlierCoderOrdering(t *testing.T) {
	r := AblationOutlierCoder(quickCfg())
	for _, row := range r.Rows {
		if row[2] == "-" {
			continue
		}
		sperr := parseF(t, row[2])
		csr := parseF(t, row[5])
		bitmap := parseF(t, row[6])
		if sperr >= csr {
			t.Errorf("%s: SPERR coder %g not better than CSR %g", row[0], sperr, csr)
		}
		if sperr >= bitmap {
			t.Errorf("%s: SPERR coder %g not better than bitmap %g", row[0], sperr, bitmap)
		}
	}
}

func TestAblationPredictor(t *testing.T) {
	r := AblationPredictor(quickCfg())
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if parseF(t, row[1]) <= 0 || parseF(t, row[2]) <= 0 {
			t.Errorf("non-positive BPP in %v", row)
		}
	}
}

func TestAblationLossless(t *testing.T) {
	r := AblationLossless(quickCfg())
	for _, row := range r.Rows {
		with := parseF(t, row[1])
		without := parseF(t, row[2])
		// The container falls back to verbatim storage, so the lossless
		// stage can never make the stream more than trivially larger.
		if with > without*1.01+0.01 {
			t.Errorf("%s: lossless stage grew the stream: %g vs %g", row[0], with, without)
		}
	}
}

func TestAblationEntropySaves(t *testing.T) {
	r := AblationEntropy(quickCfg())
	for _, row := range r.Rows {
		raw := parseF(t, row[1])
		ac := parseF(t, row[2])
		if ac > raw*1.01 {
			t.Errorf("%s: SPECK-AC larger than raw: %g vs %g", row[0], ac, raw)
		}
	}
}

func TestAblationBitGroom(t *testing.T) {
	r := AblationBitGroom(quickCfg())
	for _, row := range r.Rows {
		sperrBPP := parseF(t, row[1])
		groomBPP := parseF(t, row[2])
		if sperrBPP >= groomBPP {
			t.Errorf("%s: SPERR %g BPP not better than bit grooming %g", row[0], sperrBPP, groomBPP)
		}
		if ratio := parseF(t, row[3]); ratio > 1 {
			t.Errorf("%s: bit grooming violated the matched tolerance (%g)", row[0], ratio)
		}
	}
}

func TestAblationPartitionNearIdentical(t *testing.T) {
	r := AblationPartition(quickCfg())
	for _, row := range r.Rows {
		if d := parseF(t, row[3]); math.Abs(d) > 5 {
			t.Errorf("%s: S/I vs root diff %g%%; expected near-identical", row[0], d)
		}
	}
}

func TestByIDCoversAll(t *testing.T) {
	ids := []string{"tab1", "tab2", "fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"abl-lossless", "abl-outlier", "abl-predictor", "abl-entropy", "abl-bitgroom",
		"abl-partition"}
	for _, id := range ids {
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id should return nil")
	}
}
