package experiments

import (
	"fmt"
	"math"

	"sperr/internal/bitgroom"
	"sperr/internal/codec"
	"sperr/internal/metrics"
	"sperr/internal/outlier"
	"sperr/internal/speck"
	"sperr/internal/sz"
	"sperr/internal/wavelet"
)

// This file holds ablation experiments for the design choices DESIGN.md
// calls out, beyond the sweeps the paper itself plots (q is swept by
// Figures 2-4, chunk size by Figure 5):
//
//	abl-lossless : the final lossless stage (paper Section V uses ZSTD)
//	abl-outlier  : the SPECK-inspired outlier coder vs the naive schemes
//	               Section II dismisses (CSR, bitmap) and SZ's quant bins
//	abl-predictor: the SZ3 interpolation predictor vs SZ2's Lorenzo
//	               (why the paper benchmarks SZ3, not SZ2)

// AblationLossless measures how much the final DEFLATE stage contributes
// to SPERR's rate at the Table II settings.
func AblationLossless(cfg Config) *Result {
	r := &Result{
		ID:     "abl-lossless",
		Title:  "ablation: final lossless stage on/off",
		Header: []string{"case", "BPP with", "BPP without", "saving %"},
		Notes: []string{
			"the SPECK and outlier bitstreams are already dense, so the lossless stage " +
				"typically saves only a few percent — the paper applies ZSTD for the same residual win",
		},
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		with, _, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
			codec.Params{Mode: codec.ModePWE, Tol: tol})
		if err != nil {
			panic(err)
		}
		without, _, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
			codec.Params{Mode: codec.ModePWE, Tol: tol, DisableLossless: true})
		if err != nil {
			panic(err)
		}
		n := float64(f.vol.Dims.Len())
		bw := float64(len(with)*8) / n
		bo := float64(len(without)*8) / n
		r.AddRow(e.abbrev, f3(bw), f3(bo), f2(100*(bo-bw)/bo))
	}
	return r
}

// AblationOutlierCoder compares four ways to store the same outlier list:
// SPERR's SPECK-inspired coder, SZ's Huffman-coded quantization bins, and
// the two naive schemes of Section II (explicit CSR-style positions and a
// dense position bitmap).
func AblationOutlierCoder(cfg Config) *Result {
	r := &Result{
		ID:     "abl-outlier",
		Title:  "ablation: outlier storage schemes (bits per outlier)",
		Header: []string{"case", "outliers", "SPERR", "SZ bins", "gamma", "CSR", "bitmap"},
		Notes: []string{
			"Section II: CSR and bitmap coding are far from optimal; the unified " +
				"SPECK-inspired coder does positions and values together",
			"gamma = Elias-coded gaps+values (reference [31]); competitive on rate but " +
				"delivers only half the correction precision (2t bins vs the SPECK coder's t/2)",
		},
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		an, err := codec.Analyze(f.vol.Data, f.vol.Dims, tol, 0)
		if err != nil {
			panic(err)
		}
		k := len(an.Outliers)
		if k == 0 {
			r.AddRow(e.abbrev, "0", "-", "-", "-", "-")
			continue
		}
		n := f.vol.Dims.Len()
		bins := sz.QuantizeOutliers(n, tol, an.Outliers)
		szBits := float64(len(sz.CompressQuantBins(bins)) * 8)
		gammaBits := float64(len(outlier.EncodeGamma(n, tol, an.Outliers)) * 8)
		csrBits := float64(len(outlier.EncodeCSR(n, tol, an.Outliers)) * 8)
		bmpBits := float64(len(outlier.EncodeBitmap(n, tol, an.Outliers)) * 8)
		r.AddRow(e.abbrev, fmt.Sprintf("%d", k),
			f2(an.BitsPerOutlier()), f2(szBits/float64(k)), f2(gammaBits/float64(k)),
			f2(csrBits/float64(k)), f2(bmpBits/float64(k)))
	}
	return r
}

// AblationBitGroom pits SPERR against bit grooming (the paper's reference
// [1]), the no-transform precision-trimming floor baseline, at matched
// point-wise tolerances: grooming keeps enough mantissa bits that its
// worst-case absolute error on the field stays below t.
func AblationBitGroom(cfg Config) *Result {
	r := &Result{
		ID:     "abl-bitgroom",
		Title:  "ablation: SPERR vs bit grooming at matched PWE tolerance",
		Header: []string{"case", "SPERR BPP", "bitgroom BPP", "groom maxErr/t"},
		Notes: []string{
			"bit grooming is cheap but transform-free: it pays dearly at tight " +
				"absolute tolerances, which is why purpose-built compressors exist (Sections I-II)",
		},
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		n := float64(f.vol.Dims.Len())
		sperrStream, _, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
			codec.Params{Mode: codec.ModePWE, Tol: tol})
		if err != nil {
			panic(err)
		}
		// Keep bits so that maxAbs * 2^-(keep-1) <= tol.
		maxAbs := 0.0
		for _, v := range f.vol.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		keep := int(math.Ceil(math.Log2(maxAbs/tol))) + 1
		if keep < 1 {
			keep = 1
		}
		if keep > 52 {
			keep = 52
		}
		gStream, err := bitgroom.Compress(f.vol.Data, bitgroom.Params{KeepBits: keep})
		if err != nil {
			panic(err)
		}
		gRec, err := bitgroom.Decompress(gStream)
		if err != nil {
			panic(err)
		}
		gErr := metrics.MaxErr(f.vol.Data, gRec)
		r.AddRow(e.abbrev,
			f3(float64(len(sperrStream)*8)/n),
			f3(float64(len(gStream)*8)/n),
			f2(gErr/tol))
	}
	return r
}

// AblationEntropy compares the paper's raw-bit SPECK layer against the
// arithmetic-coded SPECK-AC extension at the Table II settings.
func AblationEntropy(cfg Config) *Result {
	r := &Result{
		ID:     "abl-entropy",
		Title:  "ablation: raw-bit SPECK (paper default) vs arithmetic-coded SPECK-AC",
		Header: []string{"case", "raw BPP", "AC BPP", "saving %"},
		Notes: []string{
			"SPECK-AC buys a few percent of rate for slower coding and loses " +
				"bit-exact stream truncation (progressive access); the paper's SPERR keeps raw bits",
		},
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		n := float64(f.vol.Dims.Len())
		raw, _, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
			codec.Params{Mode: codec.ModePWE, Tol: tol})
		if err != nil {
			panic(err)
		}
		ac, _, err := codec.EncodeChunk(f.vol.Data, f.vol.Dims,
			codec.Params{Mode: codec.ModePWE, Tol: tol, Entropy: true})
		if err != nil {
			panic(err)
		}
		br := float64(len(raw)*8) / n
		ba := float64(len(ac)*8) / n
		r.AddRow(e.abbrev, f3(br), f3(ba), f2(100*(br-ba)/br))
	}
	return r
}

// AblationPartition compares SPERR's root-octree SPECK partitioning with
// the classic S/I initialization of Pearlman et al. on transformed fields
// at the Table II settings: the two differ only in a handful of set-test
// bits at the top of the hierarchy, which justifies SPERR's simpler root
// partitioning.
func AblationPartition(cfg Config) *Result {
	r := &Result{
		ID:     "abl-partition",
		Title:  "ablation: root-octree SPECK (SPERR) vs classic S/I partitioning",
		Header: []string{"case", "root bits", "S/I bits", "diff %"},
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		q := codec.DefaultQFactor * tol
		coeffs := append([]float64(nil), f.vol.Data...)
		plan := wavelet.NewPlan(f.vol.Dims)
		plan.Forward(coeffs)
		root := speck.Encode(coeffs, f.vol.Dims, q, 0)
		si := speck.EncodeSI(coeffs, f.vol.Dims, q)
		diff := 100 * (float64(si.Bits) - float64(root.Bits)) / float64(root.Bits)
		r.AddRow(e.abbrev, fmt.Sprintf("%d", root.Bits), fmt.Sprintf("%d", si.Bits),
			f2(diff))
	}
	return r
}

// AblationPredictor compares the SZ baseline's two predictors at the
// Table II settings, reproducing why SZ3's interpolation superseded SZ2's
// Lorenzo stencil.
func AblationPredictor(cfg Config) *Result {
	r := &Result{
		ID:     "abl-predictor",
		Title:  "ablation: SZ interpolation (SZ3) vs Lorenzo (SZ2) predictor",
		Header: []string{"case", "interp BPP", "lorenzo BPP"},
	}
	for _, e := range figure9Entries(cfg.Quick) {
		f := fieldByName(e.field, cfg.dims(), cfg.seed())
		tol := f.tol(e.idx)
		n := float64(f.vol.Dims.Len())
		si, err := sz.Compress(f.vol.Data, f.vol.Dims,
			sz.Params{Tol: tol, Predictor: sz.PredictorInterpolation})
		if err != nil {
			panic(err)
		}
		sl, err := sz.Compress(f.vol.Data, f.vol.Dims,
			sz.Params{Tol: tol, Predictor: sz.PredictorLorenzo})
		if err != nil {
			panic(err)
		}
		r.AddRow(e.abbrev, f3(float64(len(si)*8)/n), f3(float64(len(sl)*8)/n))
	}
	return r
}
