package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"sperr/internal/grid"
	"sperr/internal/lossless"
	"sperr/internal/sz"
)

// szBackend adapts internal/sz (interpolation predictor) to the Backend
// interface. The sz stream format is unchanged; this file only frames it.
type szBackend struct{}

// szHeaderLen is the fixed prefix of the (lossless-wrapped) sz stream:
// predictor byte, tolerance, three extents.
const szHeaderLen = 1 + 8 + 12

func (szBackend) ID() CodecID { return CodecSZ }

func (szBackend) Name() string { return "sz" }

func (szBackend) Validate(p Params) error { return baselineValidate("sz", p) }

func (szBackend) Encode(data []float64, dims grid.Dims, p Params, _ *Scratch) ([]byte, *Stats, error) {
	if len(data) != dims.Len() {
		return nil, nil, fmt.Errorf("%w: %d values for %v", ErrDims, len(data), dims)
	}
	if err := baselineValidate("sz", p); err != nil {
		return nil, nil, err
	}
	if err := checkFinite(data); err != nil {
		return nil, nil, err
	}
	stream, err := sz.Compress(data, dims, sz.Params{Tol: p.Tol})
	if err != nil {
		return nil, nil, err
	}
	return stream, baselineStats(CodecSZ, len(data), len(stream)), nil
}

func (b szBackend) Decode(stream []byte, dims grid.Dims, _ *Scratch, _ int) ([]float64, error) {
	// Header check first: a stream coding different geometry must fail
	// before the full inflate and its decode-sized allocations.
	meta, err := b.Describe(stream)
	if err != nil {
		return nil, err
	}
	if meta.Points != dims.Len() {
		return nil, fmt.Errorf("%w: sz stream codes %d points, decoding %d",
			ErrCorrupt, meta.Points, dims.Len())
	}
	data, got, err := sz.Decompress(stream)
	if err != nil {
		return nil, fmt.Errorf("%w: sz: %v", ErrCorrupt, err)
	}
	if got != dims {
		return nil, fmt.Errorf("%w: sz stream dims %v, decoding %v", ErrCorrupt, got, dims)
	}
	return data, nil
}

func (szBackend) Describe(stream []byte) (*StreamMeta, error) {
	hdr, err := lossless.DecompressPrefix(stream, szHeaderLen)
	if err != nil {
		return nil, fmt.Errorf("%w: sz: %v", ErrCorrupt, err)
	}
	if len(hdr) < szHeaderLen {
		return nil, fmt.Errorf("%w: sz: short header (%d bytes)", ErrCorrupt, len(hdr))
	}
	if hdr[0] > 1 {
		return nil, fmt.Errorf("%w: sz: unknown predictor %d", ErrCorrupt, hdr[0])
	}
	tol := math.Float64frombits(binary.LittleEndian.Uint64(hdr[1:]))
	if !(tol > 0) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("%w: sz: invalid tolerance %g", ErrCorrupt, tol)
	}
	dims := wireDims(hdr[9:])
	points, ok := safePoints(dims)
	if !ok {
		return nil, fmt.Errorf("%w: sz: invalid dims %v", ErrCorrupt, dims)
	}
	return &StreamMeta{Codec: CodecSZ, Mode: ModePWE, Tol: tol, Points: points}, nil
}
