package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"sperr/internal/grid"
	"sperr/internal/lossless"
	"sperr/internal/mgard"
)

// mgardBackend adapts internal/mgard to the Backend interface. The mgard
// stream format is unchanged; this file only frames it.
type mgardBackend struct{}

// mgardHeaderLen is the fixed prefix of the (lossless-wrapped) mgard
// stream: tolerance, three extents.
const mgardHeaderLen = 8 + 12

func (mgardBackend) ID() CodecID { return CodecMGARD }

func (mgardBackend) Name() string { return "mgard" }

func (mgardBackend) Validate(p Params) error { return baselineValidate("mgard", p) }

func (mgardBackend) Encode(data []float64, dims grid.Dims, p Params, _ *Scratch) ([]byte, *Stats, error) {
	if len(data) != dims.Len() {
		return nil, nil, fmt.Errorf("%w: %d values for %v", ErrDims, len(data), dims)
	}
	if err := baselineValidate("mgard", p); err != nil {
		return nil, nil, err
	}
	if err := checkFinite(data); err != nil {
		return nil, nil, err
	}
	stream, err := mgard.Compress(data, dims, mgard.Params{Tol: p.Tol})
	if err != nil {
		return nil, nil, err
	}
	return stream, baselineStats(CodecMGARD, len(data), len(stream)), nil
}

func (b mgardBackend) Decode(stream []byte, dims grid.Dims, _ *Scratch, _ int) ([]float64, error) {
	meta, err := b.Describe(stream)
	if err != nil {
		return nil, err
	}
	if meta.Points != dims.Len() {
		return nil, fmt.Errorf("%w: mgard stream codes %d points, decoding %d",
			ErrCorrupt, meta.Points, dims.Len())
	}
	data, got, err := mgard.Decompress(stream)
	if err != nil {
		return nil, fmt.Errorf("%w: mgard: %v", ErrCorrupt, err)
	}
	if got != dims {
		return nil, fmt.Errorf("%w: mgard stream dims %v, decoding %v", ErrCorrupt, got, dims)
	}
	return data, nil
}

func (mgardBackend) Describe(stream []byte) (*StreamMeta, error) {
	hdr, err := lossless.DecompressPrefix(stream, mgardHeaderLen)
	if err != nil {
		return nil, fmt.Errorf("%w: mgard: %v", ErrCorrupt, err)
	}
	if len(hdr) < mgardHeaderLen {
		return nil, fmt.Errorf("%w: mgard: short header (%d bytes)", ErrCorrupt, len(hdr))
	}
	tol := math.Float64frombits(binary.LittleEndian.Uint64(hdr[0:]))
	if !(tol > 0) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("%w: mgard: invalid tolerance %g", ErrCorrupt, tol)
	}
	dims := wireDims(hdr[8:])
	points, ok := safePoints(dims)
	if !ok {
		return nil, fmt.Errorf("%w: mgard: invalid dims %v", ErrCorrupt, dims)
	}
	return &StreamMeta{Codec: CodecMGARD, Mode: ModePWE, Tol: tol, Points: points}, nil
}
