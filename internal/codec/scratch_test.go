package codec

import (
	"bytes"
	"math"
	"testing"

	"sperr/internal/grid"
)

// The arena is an optimization, not a format change: the pooled path must
// emit byte-identical streams and decode to identical values, including
// when one warm arena serves a sequence of differently shaped chunks.
func TestScratchPathMatchesFreshPath(t *testing.T) {
	shapes := []grid.Dims{
		grid.D3(17, 33, 5),
		grid.D3(16, 16, 16),
		grid.D3(1, 64, 1),
		grid.D3(7, 7, 7),
		grid.D3(17, 33, 5), // repeat: the cached plan must be re-validated
		grid.D2(31, 17),
	}
	s := NewScratch()
	for si, d := range shapes {
		data := smoothField(d, int64(si+1))
		for _, p := range []Params{
			{Mode: ModePWE, Tol: 1e-3},
			{Mode: ModePWE, Tol: 0.5, QFactor: 2.0},
			{Mode: ModeBPP, BitsPerPoint: 2},
			{Mode: ModeRMSE, TargetRMSE: 0.05},
		} {
			fresh, fst, err := EncodeChunk(data, d, p)
			if err != nil {
				t.Fatalf("%v %+v: fresh: %v", d, p, err)
			}
			pooled, pst, err := EncodeChunkScratch(data, d, p, s)
			if err != nil {
				t.Fatalf("%v %+v: pooled: %v", d, p, err)
			}
			if !bytes.Equal(fresh, pooled) {
				t.Fatalf("%v %+v: pooled stream differs from fresh (%d vs %d bytes)",
					d, p, len(pooled), len(fresh))
			}
			if fst.SpeckBits != pst.SpeckBits || fst.OutlierBits != pst.OutlierBits ||
				fst.NumOutliers != pst.NumOutliers {
				t.Fatalf("%v %+v: pooled stats differ: %+v vs %+v", d, p, pst, fst)
			}

			freshRec, err := DecodeChunk(fresh, d)
			if err != nil {
				t.Fatalf("%v %+v: fresh decode: %v", d, p, err)
			}
			pooledRec, err := DecodeChunkScratch(pooled, d, s)
			if err != nil {
				t.Fatalf("%v %+v: pooled decode: %v", d, p, err)
			}
			for i := range freshRec {
				if freshRec[i] != pooledRec[i] {
					t.Fatalf("%v %+v: decode differs at %d: %g vs %g",
						d, p, i, freshRec[i], pooledRec[i])
				}
			}
		}
	}
}

// A warm arena must stop growing: after one chunk of a given shape, the
// Grows counter stays flat for identical follow-up chunks.
func TestScratchWarmsUp(t *testing.T) {
	d := grid.D3(24, 24, 24)
	p := Params{Mode: ModePWE, Tol: 1e-3}
	s := NewScratch()
	for warm := 0; warm < 2; warm++ {
		if _, _, err := EncodeChunkScratch(smoothField(d, int64(warm)), d, p, s); err != nil {
			t.Fatal(err)
		}
	}
	base := s.Grows()
	for i := 0; i < 5; i++ {
		if _, _, err := EncodeChunkScratch(smoothField(d, int64(10+i)), d, p, s); err != nil {
			t.Fatal(err)
		}
	}
	if g := s.Grows(); g != base {
		t.Errorf("warm arena grew: %d -> %d over 5 identical chunks", base, g)
	}
}

// The PWE contract must survive the pooled path on the shapes where index
// arithmetic is most fragile.
func TestScratchPWEContractOddDims(t *testing.T) {
	s := NewScratch()
	for _, d := range []grid.Dims{
		grid.D3(17, 33, 5), grid.D3(1, 37, 1), grid.D3(3, 5, 7), grid.D2(19, 1),
	} {
		data := smoothField(d, int64(d.Len()))
		for _, tol := range []float64{1e-1, 1e-4} {
			stream, _, err := EncodeChunkScratch(data, d, Params{Mode: ModePWE, Tol: tol}, s)
			if err != nil {
				t.Fatalf("%v tol=%g: %v", d, tol, err)
			}
			rec, err := DecodeChunkScratch(stream, d, s)
			if err != nil {
				t.Fatalf("%v tol=%g: decode: %v", d, tol, err)
			}
			for i := range data {
				if e := math.Abs(rec[i] - data[i]); e > tol*(1+1e-9) {
					t.Fatalf("%v tol=%g: error %g at %d", d, tol, e, i)
				}
			}
		}
	}
}
