// Codec backend registry. The paper evaluates SPERR against SZ, ZFP,
// TTHRESH, and MGARD; this file promotes those baselines (and the SPERR
// pipeline itself) to interchangeable backends behind one interface, so
// the chunk container can carry any of them — and, in ModeAdaptive, pick
// the cheapest per chunk (Tao et al.'s online selection result). The
// interface cut follows SZ3's modular-pipeline design: a backend owns its
// stream format end to end; the container only frames it and records which
// backend wrote it in a one-byte tag (container v3).

package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"sperr/internal/grid"
)

// CodecID identifies a codec backend, both in the registry and on the
// wire: container v3 frames carry it as a one-byte tag in front of the
// backend stream. Values are frozen — they are part of the stream format.
type CodecID uint8

const (
	// CodecSPERR is the wavelet + SPECK pipeline of this repository, the
	// default backend. Its zero value keeps pre-v3 Params unchanged.
	CodecSPERR CodecID = iota
	// CodecSZ is the SZ3-style interpolation-predictive baseline.
	CodecSZ
	// CodecZFP is the ZFP-style block-transform baseline.
	CodecZFP
	// CodecTTHRESH is the TTHRESH HOSVD baseline wrapped in a point-wise
	// correction envelope (TTHRESH itself has no PWE mode).
	CodecTTHRESH
	// CodecMGARD is the MGARD-style multilevel baseline.
	CodecMGARD

	numCodecs
)

var codecNames = [numCodecs]string{"sperr", "sz", "zfp", "tthresh", "mgard"}

// String returns the codec's canonical lower-case name.
func (c CodecID) String() string {
	if c < numCodecs {
		return codecNames[c]
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// ParseCodecName maps a canonical name back to its CodecID. The empty
// string parses as CodecSPERR (the default backend).
func ParseCodecName(name string) (CodecID, bool) {
	if name == "" {
		return CodecSPERR, true
	}
	for id, n := range codecNames {
		if n == name {
			return CodecID(id), true
		}
	}
	return 0, false
}

// Backend is one codec implementation behind the container. A backend
// owns its stream format: Encode and Decode round-trip it, Describe reads
// its self-describing header without decoding the payload, and Validate
// rejects Params the backend cannot honor. Implementations must be
// stateless values (safe for concurrent use); per-call temporaries come
// from the Scratch arena when the backend supports it (nil always works).
type Backend interface {
	// ID returns the backend's wire tag.
	ID() CodecID
	// Name returns the backend's canonical name.
	Name() string
	// Validate rejects parameter combinations the backend cannot honor.
	Validate(p Params) error
	// Encode compresses one chunk (row-major, extent dims). The returned
	// stream is freshly allocated and caller-owned.
	Encode(data []float64, dims grid.Dims, p Params, s *Scratch) ([]byte, *Stats, error)
	// Decode reconstructs a chunk. dims must match the encoding call; a
	// stream whose embedded geometry disagrees fails as ErrCorrupt before
	// any decode-sized allocation. threads bounds intra-chunk parallelism
	// for backends that support it; output is identical at every value.
	Decode(stream []byte, dims grid.Dims, s *Scratch, threads int) ([]float64, error)
	// Describe parses the stream's header without reconstructing data.
	Describe(stream []byte) (*StreamMeta, error)
}

// backends is the registry, indexed by CodecID.
var backends = [numCodecs]Backend{
	sperrBackend{},
	szBackend{},
	zfpBackend{},
	tthreshBackend{},
	mgardBackend{},
}

// Lookup returns the backend registered for id.
func Lookup(id CodecID) (Backend, bool) {
	if id < numCodecs {
		return backends[id], true
	}
	return nil, false
}

// Backends returns every registered backend in CodecID order.
func Backends() []Backend {
	out := make([]Backend, numCodecs)
	copy(out[:], backends[:])
	return out
}

// sperrBackend adapts the package's own pipeline to the Backend interface.
type sperrBackend struct{}

func (sperrBackend) ID() CodecID { return CodecSPERR }

func (sperrBackend) Name() string { return "sperr" }

func (sperrBackend) Validate(p Params) error {
	if p.Mode == ModeAdaptive {
		return fmt.Errorf("codec: sperr backend codes concrete modes, not ModeAdaptive")
	}
	p.Codec = CodecSPERR
	return p.Validate()
}

func (sperrBackend) Encode(data []float64, dims grid.Dims, p Params, s *Scratch) ([]byte, *Stats, error) {
	p.Codec = CodecSPERR
	out, st, err := EncodeChunkScratch(data, dims, p, s)
	if st != nil {
		st.Codec = CodecSPERR
	}
	return out, st, err
}

func (sperrBackend) Decode(stream []byte, dims grid.Dims, s *Scratch, threads int) ([]float64, error) {
	return DecodeChunkScratchThreads(stream, dims, s, threads)
}

func (sperrBackend) Describe(stream []byte) (*StreamMeta, error) {
	return DescribeChunk(stream)
}

// --- shared baseline helpers -------------------------------------------

// baselineValidate is the Params contract every non-SPERR backend shares:
// the baselines implement a single point-wise-bounded mode and none of the
// SPERR-specific knobs.
func baselineValidate(name string, p Params) error {
	if p.Mode != ModePWE {
		return fmt.Errorf("codec: %s backend supports ModePWE only", name)
	}
	if !(p.Tol > 0) {
		return fmt.Errorf("codec: %s backend requires Tol > 0", name)
	}
	if p.Entropy {
		return fmt.Errorf("codec: %s backend has no entropy-coded variant", name)
	}
	return nil
}

// checkFinite rejects non-finite samples, which would void every backend's
// point-wise error contract (NaN compares false against any bound).
func checkFinite(data []float64) error {
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("codec: non-finite value %g at index %d", v, i)
		}
	}
	return nil
}

// baselineStats is the Stats a non-SPERR backend can honestly report: the
// coder-internal bit splits do not apply.
func baselineStats(id CodecID, points, totalBytes int) *Stats {
	return &Stats{Codec: id, NumPoints: points, TotalBytes: totalBytes}
}

// safePoints computes dims.Len with overflow checking, for headers whose
// extents arrive from the wire.
func safePoints(d grid.Dims) (int, bool) {
	if !d.Valid() {
		return 0, false
	}
	xy := uint64(d.NX) * uint64(d.NY) // exact: each extent fits in 32 bits
	if xy == 0 || xy > math.MaxInt64/uint64(d.NZ) {
		return 0, false
	}
	n := xy * uint64(d.NZ)
	if n > math.MaxInt64 {
		return 0, false
	}
	return int(n), true
}

// wireDims reads three little-endian u32 extents.
func wireDims(b []byte) grid.Dims {
	return grid.Dims{
		NX: int(binary.LittleEndian.Uint32(b[0:])),
		NY: int(binary.LittleEndian.Uint32(b[4:])),
		NZ: int(binary.LittleEndian.Uint32(b[8:])),
	}
}
