package codec

// Backend registry, analyzer, and adaptive-selection unit tests. The
// registry's CodecID values are wire format (the v3 frame tag), so their
// numeric assignments are pinned here.

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"sperr/internal/grid"
)

func backendField(dims grid.Dims, rough bool) []float64 {
	data := make([]float64, dims.Len())
	i := 0
	for z := 0; z < dims.NZ; z++ {
		for y := 0; y < dims.NY; y++ {
			for x := 0; x < dims.NX; x++ {
				if rough {
					// Deterministic broadband hash noise.
					h := uint64(x*73856093 ^ y*19349663 ^ z*83492791)
					h ^= h >> 33
					h *= 0xff51afd7ed558ccd
					h ^= h >> 33
					data[i] = float64(h%10000)/1000 + math.Sin(2.1*float64(x))
				} else {
					data[i] = 0.01*float64(x) + 0.002*float64(y)*float64(z)
				}
				i++
			}
		}
	}
	return data
}

// The tag values are container-v3 wire format: frozen forever.
func TestCodecIDWireValues(t *testing.T) {
	want := map[CodecID]string{0: "sperr", 1: "sz", 2: "zfp", 3: "tthresh", 4: "mgard"}
	for id, name := range want {
		if got := id.String(); got != name {
			t.Errorf("CodecID %d named %q, want %q", id, got, name)
		}
		back, ok := ParseCodecName(name)
		if !ok || back != id {
			t.Errorf("ParseCodecName(%q) = %d,%v, want %d", name, back, ok, id)
		}
		b, ok := Lookup(id)
		if !ok {
			t.Fatalf("Lookup(%d) missing", id)
		}
		if b.ID() != id || b.Name() != name {
			t.Errorf("backend %d reports ID %d name %q", id, b.ID(), b.Name())
		}
	}
	if _, ok := Lookup(CodecID(5)); ok {
		t.Error("Lookup(5) succeeded for an unregistered id")
	}
	if _, ok := ParseCodecName("lz4"); ok {
		t.Error("ParseCodecName accepted an unknown name")
	}
	if len(Backends()) != len(want) {
		t.Errorf("Backends() lists %d codecs, want %d", len(Backends()), len(want))
	}
}

// Every backend: PWE round-trip on an odd extent, self-description, and
// byte-repeatable encodes through a reused scratch arena (the property
// adaptive selection's determinism rests on).
func TestBackendContract(t *testing.T) {
	dims := grid.Dims{NX: 17, NY: 9, NZ: 7}
	data := backendField(dims, true)
	p := Params{Mode: ModePWE, Tol: 1e-2}
	for _, b := range Backends() {
		s := NewScratch()
		stream, st, err := b.Encode(data, dims, p, s)
		if err != nil {
			t.Fatalf("%s: encode: %v", b.Name(), err)
		}
		if st == nil || st.Codec != b.ID() {
			t.Fatalf("%s: stats codec %+v", b.Name(), st)
		}
		for r := 0; r < 3; r++ {
			again, _, err := b.Encode(data, dims, p, s)
			if err != nil {
				t.Fatalf("%s: re-encode: %v", b.Name(), err)
			}
			if !bytes.Equal(again, stream) {
				t.Fatalf("%s: encode not byte-repeatable (%d vs %d bytes)",
					b.Name(), len(again), len(stream))
			}
		}
		rec, err := b.Decode(stream, dims, s, 1)
		if err != nil {
			t.Fatalf("%s: decode: %v", b.Name(), err)
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > p.Tol*(1+1e-9) {
				t.Fatalf("%s: PWE violated at %d: %g vs %g", b.Name(), i, rec[i], data[i])
			}
		}
		meta, err := b.Describe(stream)
		if err != nil {
			t.Fatalf("%s: describe: %v", b.Name(), err)
		}
		if meta.Codec != b.ID() {
			t.Errorf("%s: Describe codec %d", b.Name(), meta.Codec)
		}
	}
}

// Malformed inputs must fail as typed errors on every backend — never
// panic, never allocate unboundedly. (The salvage path depends on this for
// non-SPERR chunks.)
func TestBackendDecodeMalformed(t *testing.T) {
	dims := grid.Dims{NX: 8, NY: 8, NZ: 8}
	data := backendField(dims, false)
	p := Params{Mode: ModePWE, Tol: 1e-3}
	for _, b := range Backends() {
		s := NewScratch()
		stream, _, err := b.Encode(data, dims, p, s)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		cases := [][]byte{
			nil,
			{},
			{0x00},
			stream[:1],
			stream[:len(stream)/2],
			stream[:len(stream)-1],
			bytes.Repeat([]byte{0xFF}, 64),
		}
		for f := 0; f < len(stream); f += 7 {
			mut := bytes.Clone(stream)
			mut[f] ^= 0x80
			cases = append(cases, mut)
		}
		for ci, in := range cases {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s case %d: panic: %v", b.Name(), ci, r)
					}
				}()
				rec, err := b.Decode(in, dims, s, 1)
				if err == nil && len(rec) != dims.Len() {
					t.Fatalf("%s case %d: nil error with %d values", b.Name(), ci, len(rec))
				}
				_, _ = b.Describe(in)
			}()
		}
	}
}

func TestProfileChunk(t *testing.T) {
	dims := grid.Dims{NX: 16, NY: 16, NZ: 16}
	flat := make([]float64, dims.Len())
	for i := range flat {
		flat[i] = 3.25
	}
	p := ProfileChunk(flat, dims)
	if !p.Constant || p.Variance != 0 || p.Mean != 3.25 {
		t.Fatalf("constant chunk profiled as %+v", p)
	}

	smooth := backendField(dims, false)
	ps := ProfileChunk(smooth, dims)
	if ps.Constant {
		t.Fatal("smooth chunk profiled as constant")
	}
	noisy := backendField(dims, true)
	pn := ProfileChunk(noisy, dims)
	if pn.Roughness <= ps.Roughness {
		t.Errorf("roughness failed to separate noise (%g) from smooth (%g)",
			pn.Roughness, ps.Roughness)
	}
	// Determinism: same data, same profile.
	if again := ProfileChunk(noisy, dims); again != pn {
		t.Errorf("profile not deterministic: %+v vs %+v", again, pn)
	}
}

func TestTrialBlock(t *testing.T) {
	// Small chunk: trial block must be the chunk itself, flagged exact.
	small := grid.Dims{NX: 16, NY: 16, NZ: 16}
	data := backendField(small, false)
	sub, sd, exact := trialBlock(data, small)
	if !exact || sd != small || len(sub) != len(data) {
		t.Fatalf("16^3 trial block: exact=%v dims=%v", exact, sd)
	}

	// Large chunk: centered 32^3 sub-block, values matching the source.
	big := grid.Dims{NX: 48, NY: 40, NZ: 33}
	bd := backendField(big, true)
	sub, sd, exact = trialBlock(bd, big)
	if exact {
		t.Fatal("48x40x33 trial block flagged exact")
	}
	if sd != (grid.Dims{NX: 32, NY: 32, NZ: 32}) {
		t.Fatalf("trial dims %v", sd)
	}
	x0, y0, z0 := (big.NX-32)/2, (big.NY-32)/2, (big.NZ-32)/2
	for z := 0; z < sd.NZ; z += 7 {
		for y := 0; y < sd.NY; y += 5 {
			for x := 0; x < sd.NX; x += 3 {
				if sub[sd.Index(x, y, z)] != bd[big.Index(x0+x, y0+y, z0+z)] {
					t.Fatalf("trial block sample (%d,%d,%d) not centered copy", x, y, z)
				}
			}
		}
	}
}

func TestEncodeAdaptiveContract(t *testing.T) {
	dims := grid.Dims{NX: 16, NY: 16, NZ: 16}
	s := NewScratch()
	p := Params{Mode: ModeAdaptive, Tol: 1e-3}

	// Constant chunks short-circuit to SPERR without trials.
	flat := make([]float64, dims.Len())
	id, stream, st, err := EncodeAdaptive(flat, dims, p, s)
	if err != nil {
		t.Fatal(err)
	}
	if id != CodecSPERR || st.Codec != CodecSPERR {
		t.Fatalf("constant chunk chose %s", id)
	}
	if len(stream) == 0 {
		t.Fatal("empty stream")
	}

	// A chunk no larger than the trial edge: the winner is provably the
	// minimum over all backends' full encodes.
	data := backendField(dims, true)
	id, stream, _, err = EncodeAdaptive(data, dims, p, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Backends() {
		alt, _, err := b.Encode(data, dims, trialParams(b.ID(), p), s)
		if err != nil {
			continue
		}
		if len(alt) < len(stream) {
			t.Errorf("adaptive chose %s at %d bytes but %s codes %d",
				id, len(stream), b.Name(), len(alt))
		}
		if len(alt) == len(stream) && b.ID() < id {
			t.Errorf("tie at %d bytes broke to %s, not lowest id %s", len(stream), id, b.Name())
		}
	}

	// The winning stream decodes under the tag's backend within Tol.
	b, ok := Lookup(id)
	if !ok {
		t.Fatalf("winner %d not in registry", id)
	}
	rec, err := b.Decode(stream, dims, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > p.Tol*(1+1e-9) {
			t.Fatalf("adaptive PWE violated at %d", i)
		}
	}

	// Mode guard: EncodeAdaptive refuses non-adaptive params.
	if _, _, _, err := EncodeAdaptive(data, dims, Params{Mode: ModePWE, Tol: 1e-3}, s); err == nil {
		t.Error("EncodeAdaptive accepted ModePWE")
	}
	// Shape guard.
	if _, _, _, err := EncodeAdaptive(data[:10], dims, p, s); !errors.Is(err, ErrDims) {
		t.Errorf("short slice error = %v, want ErrDims", err)
	}
}

func TestDescribeTagged(t *testing.T) {
	dims := grid.Dims{NX: 8, NY: 8, NZ: 8}
	data := backendField(dims, false)
	s := NewScratch()
	for _, b := range Backends() {
		stream, _, err := b.Encode(data, dims, Params{Mode: ModePWE, Tol: 1e-3}, s)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		tagged := append([]byte{byte(b.ID())}, stream...)
		meta, err := DescribeTagged(tagged)
		if err != nil {
			t.Fatalf("%s: DescribeTagged: %v", b.Name(), err)
		}
		if meta.Codec != b.ID() {
			t.Errorf("%s: meta codec %d", b.Name(), meta.Codec)
		}
	}
	if _, err := DescribeTagged([]byte{99, 0, 0}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown tag error = %v, want ErrCorrupt", err)
	}
	if _, err := DescribeTagged(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty payload error = %v, want ErrCorrupt", err)
	}
}

// BenchmarkProfileChunk isolates the analyzer: its cost must stay a few
// percent of a chunk encode (BenchmarkAdaptiveSelect at the root measures
// the end-to-end overhead).
func BenchmarkProfileChunk(b *testing.B) {
	dims := grid.Dims{NX: 64, NY: 64, NZ: 64}
	data := backendField(dims, true)
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProfileChunk(data, dims)
	}
}
