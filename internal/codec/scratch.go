package codec

import (
	"math"

	"sperr/internal/grid"
	"sperr/internal/outlier"
	"sperr/internal/par"
	"sperr/internal/speck"
	"sperr/internal/wavelet"
)

// Scratch is the per-worker arena of the chunk pipeline: every temporary
// the four stages need — the coefficient slab, the transform plan and its
// line buffers, the SPECK coder state, the outlier list and coder state,
// and the payload assembly buffer — lives here and is reused across
// chunks. A worker that compresses or decompresses many chunks reaches a
// steady state in which a chunk costs no heap allocation beyond its output
// stream.
//
// The zero value is ready to use; nil is accepted everywhere and means
// "fresh buffers for this call only" (the unpooled path). A Scratch is not
// safe for concurrent use — give each worker goroutine its own, e.g. via
// sync.Pool. Slices returned by the *Scratch functions alias the arena and
// are valid only until its next use.
type Scratch struct {
	coeffsBuf []float64
	plan      *wavelet.Plan
	wav       wavelet.Scratch
	speck     speck.Scratch
	outl      outlier.Scratch
	outs      []outlier.Outlier
	outsW     [][]outlier.Outlier // per-worker lists of the threaded scan
	payload   []byte
	grows     int
}

// NewScratch returns an empty arena. Buffers are grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// coeffs returns the pooled coefficient slab, grown to n values.
func (s *Scratch) coeffs(n int) []float64 {
	if cap(s.coeffsBuf) < n {
		s.coeffsBuf = make([]float64, n)
		s.grows++
	}
	return s.coeffsBuf[:n]
}

// planFor returns a transform plan for dims, cached across calls: chunked
// volumes present long runs of identically-shaped chunks, so the plan of
// the previous chunk almost always fits the next.
func (s *Scratch) planFor(dims grid.Dims) *wavelet.Plan {
	if s.plan == nil || s.plan.Dims() != dims {
		s.plan = wavelet.NewPlan(dims)
		s.grows++
	}
	return s.plan
}

// scanMinElems is the chunk size below which the outlier scan stays
// serial; the comparison loop is too cheap to amortize goroutine spawns
// on small chunks.
const scanMinElems = 1 << 15

// scanOutliers compares data against recon and collects every point whose
// error exceeds tol, splitting the scan over up to threads goroutines.
// Per-span lists are concatenated in span order, so the result is
// identical to the serial scan at every thread count. The returned slice
// aliases the arena.
func (s *Scratch) scanOutliers(data, recon []float64, tol float64, threads int) []outlier.Outlier {
	threads = par.Workers(threads, len(data), scanMinElems)
	if threads <= 1 {
		outs := s.outs[:0]
		for i := range data {
			if diff := data[i] - recon[i]; math.Abs(diff) > tol {
				outs = append(outs, outlier.Outlier{Pos: i, Corr: diff})
			}
		}
		s.outs = outs
		return outs
	}
	if cap(s.outsW) < threads {
		grown := make([][]outlier.Outlier, threads)
		copy(grown, s.outsW)
		s.outsW = grown
		s.grows++
	}
	ws := s.outsW[:threads]
	par.Spans(len(data), threads, func(w, lo, hi int) {
		outs := ws[w][:0]
		for i := lo; i < hi; i++ {
			if diff := data[i] - recon[i]; math.Abs(diff) > tol {
				outs = append(outs, outlier.Outlier{Pos: i, Corr: diff})
			}
		}
		ws[w] = outs
	})
	outs := s.outs[:0]
	for _, w := range ws {
		outs = append(outs, w...)
	}
	s.outs = outs
	return outs
}

// Grows reports the cumulative number of buffer (re)allocation events
// across every pooled buffer in the arena — the pipeline's allocation
// counter. A warmed-up arena stops growing; instrumentation surfaces the
// per-chunk delta.
func (s *Scratch) Grows() int {
	if s == nil {
		return 0
	}
	return s.grows + s.wav.TotalGrows() + s.speck.Grows + s.outl.Grows
}
