package codec

import (
	"sperr/internal/grid"
	"sperr/internal/outlier"
	"sperr/internal/speck"
	"sperr/internal/wavelet"
)

// Scratch is the per-worker arena of the chunk pipeline: every temporary
// the four stages need — the coefficient slab, the transform plan and its
// line buffers, the SPECK coder state, the outlier list and coder state,
// and the payload assembly buffer — lives here and is reused across
// chunks. A worker that compresses or decompresses many chunks reaches a
// steady state in which a chunk costs no heap allocation beyond its output
// stream.
//
// The zero value is ready to use; nil is accepted everywhere and means
// "fresh buffers for this call only" (the unpooled path). A Scratch is not
// safe for concurrent use — give each worker goroutine its own, e.g. via
// sync.Pool. Slices returned by the *Scratch functions alias the arena and
// are valid only until its next use.
type Scratch struct {
	coeffsBuf []float64
	plan      *wavelet.Plan
	wav       wavelet.Scratch
	speck     speck.Scratch
	outl      outlier.Scratch
	outs      []outlier.Outlier
	payload   []byte
	grows     int
}

// NewScratch returns an empty arena. Buffers are grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// coeffs returns the pooled coefficient slab, grown to n values.
func (s *Scratch) coeffs(n int) []float64 {
	if cap(s.coeffsBuf) < n {
		s.coeffsBuf = make([]float64, n)
		s.grows++
	}
	return s.coeffsBuf[:n]
}

// planFor returns a transform plan for dims, cached across calls: chunked
// volumes present long runs of identically-shaped chunks, so the plan of
// the previous chunk almost always fits the next.
func (s *Scratch) planFor(dims grid.Dims) *wavelet.Plan {
	if s.plan == nil || s.plan.Dims() != dims {
		s.plan = wavelet.NewPlan(dims)
		s.grows++
	}
	return s.plan
}

// Grows reports the cumulative number of buffer (re)allocation events
// across every pooled buffer in the arena — the pipeline's allocation
// counter. A warmed-up arena stops growing; instrumentation surfaces the
// per-chunk delta.
func (s *Scratch) Grows() int {
	if s == nil {
		return 0
	}
	return s.grows + s.wav.Grows + s.speck.Grows + s.outl.Grows
}
