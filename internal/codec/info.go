package codec

import (
	"fmt"

	"sperr/internal/lossless"
)

// StreamMeta describes a coded chunk without decoding it.
type StreamMeta struct {
	// Codec identifies the backend that wrote the chunk (CodecSPERR for
	// streams described by DescribeChunk; the SPERR-specific fields below
	// are zero for other backends).
	Codec CodecID
	// Mode is the termination criterion the chunk was coded with.
	Mode Mode
	// Tol is the point-wise tolerance (PWE mode; zero otherwise).
	Tol float64
	// Q is the SPECK base quantization step.
	Q float64
	// Planes is the number of SPECK bitplanes.
	Planes int
	// OutlierPasses is the number of outlier-coder threshold passes.
	OutlierPasses int
	// SpeckBits and OutlierBits are the embedded stream lengths.
	SpeckBits, OutlierBits uint64
	// Entropy reports the arithmetic-coded (SPECK-AC) bit layer.
	Entropy bool
	// Points is the chunk's sample count recorded in the header; zero on
	// streams written before the field existed.
	Points int
}

// DescribeChunk parses a chunk stream's header without reconstructing
// data. Only the header-sized prefix of the lossless layer is inflated,
// so the cost is independent of the chunk's payload size.
func DescribeChunk(stream []byte) (*StreamMeta, error) {
	if len(stream) < 1 {
		return nil, ErrCorrupt
	}
	var payload []byte
	if stream[0] == 0xFF {
		payload = stream[1:]
		if len(payload) > headerSize {
			payload = payload[:headerSize]
		}
	} else {
		var err error
		payload, err = lossless.DecompressPrefix(stream, headerSize)
		if err != nil {
			return nil, err
		}
	}
	h, err := parseHeader(payload)
	if err != nil {
		return nil, err
	}
	return &StreamMeta{
		Codec:         CodecSPERR,
		Mode:          h.mode,
		Tol:           h.tol,
		Q:             h.q,
		Planes:        int(h.planes),
		OutlierPasses: int(h.opasses),
		SpeckBits:     h.speckBits,
		OutlierBits:   h.outlierBits,
		Entropy:       h.entropy,
		Points:        int(h.points),
	}, nil
}

// DescribeTagged parses a container-v3 frame payload — a one-byte codec
// tag followed by the backend stream — without decoding data. An unknown
// tag fails as ErrCorrupt, never as a misread of another backend's header.
func DescribeTagged(payload []byte) (*StreamMeta, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("%w: short tagged payload (%d bytes)", ErrCorrupt, len(payload))
	}
	b, ok := Lookup(CodecID(payload[0]))
	if !ok {
		return nil, fmt.Errorf("%w: unknown codec tag %d", ErrCorrupt, payload[0])
	}
	meta, err := b.Describe(payload[1:])
	if err != nil {
		return nil, err
	}
	meta.Codec = b.ID()
	return meta, nil
}
