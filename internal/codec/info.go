package codec

import "sperr/internal/lossless"

// StreamMeta describes a coded chunk without decoding it.
type StreamMeta struct {
	// Mode is the termination criterion the chunk was coded with.
	Mode Mode
	// Tol is the point-wise tolerance (PWE mode; zero otherwise).
	Tol float64
	// Q is the SPECK base quantization step.
	Q float64
	// Planes is the number of SPECK bitplanes.
	Planes int
	// OutlierPasses is the number of outlier-coder threshold passes.
	OutlierPasses int
	// SpeckBits and OutlierBits are the embedded stream lengths.
	SpeckBits, OutlierBits uint64
	// Entropy reports the arithmetic-coded (SPECK-AC) bit layer.
	Entropy bool
	// Points is the chunk's sample count recorded in the header; zero on
	// streams written before the field existed.
	Points int
}

// DescribeChunk parses a chunk stream's header without reconstructing
// data. Only the header-sized prefix of the lossless layer is inflated,
// so the cost is independent of the chunk's payload size.
func DescribeChunk(stream []byte) (*StreamMeta, error) {
	if len(stream) < 1 {
		return nil, ErrCorrupt
	}
	var payload []byte
	if stream[0] == 0xFF {
		payload = stream[1:]
		if len(payload) > headerSize {
			payload = payload[:headerSize]
		}
	} else {
		var err error
		payload, err = lossless.DecompressPrefix(stream, headerSize)
		if err != nil {
			return nil, err
		}
	}
	h, err := parseHeader(payload)
	if err != nil {
		return nil, err
	}
	return &StreamMeta{
		Mode:          h.mode,
		Tol:           h.tol,
		Q:             h.q,
		Planes:        int(h.planes),
		OutlierPasses: int(h.opasses),
		SpeckBits:     h.speckBits,
		OutlierBits:   h.outlierBits,
		Entropy:       h.entropy,
		Points:        int(h.points),
	}, nil
}
