package codec

import (
	"errors"
	"fmt"

	"sperr/internal/grid"
	"sperr/internal/lossless"
	"sperr/internal/outlier"
	"sperr/internal/speck"
	"sperr/internal/wavelet"
)

// DecodeChunkPartial reconstructs a chunk from a prefix of its embedded
// SPECK bitstream: fraction in (0, 1] selects how many of the coded bits
// to use. This exercises the embedded property of SPECK streams the paper
// highlights for streaming applications (Section VII): any prefix decodes
// to a valid, coarser reconstruction.
//
// Outlier corrections apply only to the full-precision reconstruction, so
// they are skipped whenever fraction < 1 (the corrections are relative to
// the complete SPECK decode).
func DecodeChunkPartial(stream []byte, dims grid.Dims, fraction float64) ([]float64, error) {
	if !(fraction > 0 && fraction <= 1) {
		return nil, fmt.Errorf("codec: fraction must be in (0, 1], got %g", fraction)
	}
	if len(stream) < 1 {
		return nil, fmt.Errorf("%w: empty stream", ErrCorrupt)
	}
	var payload []byte
	if stream[0] == 0xFF {
		payload = stream[1:]
	} else {
		var err error
		payload, err = lossless.Decompress(stream)
		if err != nil {
			return nil, err
		}
	}
	h, err := parseHeader(payload)
	if err != nil {
		return nil, err
	}
	if err := h.checkPoints(dims); err != nil {
		return nil, err
	}
	body := payload[headerSize:]
	if h.speckBits > uint64(len(body))*8 {
		return nil, fmt.Errorf("%w: SPECK stream truncated", ErrCorrupt)
	}
	speckBytes := int((h.speckBits + 7) / 8)
	if h.entropy && fraction < 1 {
		return nil, errors.New("codec: entropy-coded streams do not support partial decode")
	}
	var coeffs []float64
	if h.entropy {
		coeffs = speck.DecodeEntropy(body[:speckBytes], dims, h.q, int(h.planes))
	} else {
		useBits := uint64(float64(h.speckBits) * fraction)
		coeffs = speck.Decode(body[:speckBytes], useBits, dims, h.q, int(h.planes))
	}
	plan := wavelet.NewPlan(dims)
	plan.Inverse(coeffs)
	if fraction == 1 && h.mode == ModePWE && h.outlierBits > 0 {
		obytes := body[speckBytes:]
		if h.outlierBits > uint64(len(obytes))*8 {
			return nil, fmt.Errorf("%w: outlier stream truncated", ErrCorrupt)
		}
		outs := outlier.Decode(obytes, h.outlierBits, dims.Len(), h.tol, int(h.opasses))
		for _, o := range outs {
			coeffs[o.Pos] += o.Corr
		}
	}
	return coeffs, nil
}

// DecodeChunkLowRes reconstructs a coarsened version of a chunk by
// leaving the finest drop wavelet levels folded: the self-similar
// hierarchy of the wavelet decomposition makes each coarsened level
// resemble the full-resolution data (paper Section VII, multi-level
// reconstruction). The returned slice has the extent of the level-drop
// approximation band, rescaled to data magnitude. drop = 0 is a full
// decode (without outlier corrections).
func DecodeChunkLowRes(stream []byte, dims grid.Dims, drop int) ([]float64, grid.Dims, error) {
	if drop < 0 {
		return nil, grid.Dims{}, fmt.Errorf("codec: negative drop %d", drop)
	}
	if len(stream) < 1 {
		return nil, grid.Dims{}, fmt.Errorf("%w: empty stream", ErrCorrupt)
	}
	var payload []byte
	if stream[0] == 0xFF {
		payload = stream[1:]
	} else {
		var err error
		payload, err = lossless.Decompress(stream)
		if err != nil {
			return nil, grid.Dims{}, err
		}
	}
	h, err := parseHeader(payload)
	if err != nil {
		return nil, grid.Dims{}, err
	}
	if err := h.checkPoints(dims); err != nil {
		return nil, grid.Dims{}, err
	}
	body := payload[headerSize:]
	if h.speckBits > uint64(len(body))*8 {
		return nil, grid.Dims{}, fmt.Errorf("%w: SPECK stream truncated", ErrCorrupt)
	}
	speckBytes := int((h.speckBits + 7) / 8)
	var coeffs []float64
	if h.entropy {
		coeffs = speck.DecodeEntropy(body[:speckBytes], dims, h.q, int(h.planes))
	} else {
		coeffs = speck.Decode(body[:speckBytes], h.speckBits, dims, h.q, int(h.planes))
	}
	plan := wavelet.NewPlan(dims)
	if drop > plan.NumLevels() {
		drop = plan.NumLevels()
	}
	low := plan.InverseToLevel(coeffs, drop)
	scale := plan.LevelScale(drop)
	out := make([]float64, low.Len())
	for z := 0; z < low.NZ; z++ {
		for y := 0; y < low.NY; y++ {
			srcOff := dims.Index(0, y, z)
			dstOff := low.Index(0, y, z)
			for x := 0; x < low.NX; x++ {
				out[dstOff+x] = coeffs[srcOff+x] / scale
			}
		}
	}
	return out, low, nil
}
