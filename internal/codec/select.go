// Per-chunk adaptive codec selection (ModeAdaptive). Following Tao et
// al.'s online SZ-vs-ZFP selection result, each chunk is profiled with a
// cheap sampled analyzer and the candidate backends are trial-scored on a
// small sub-block at the chunk's tolerance; the winner codes the chunk and
// is recorded in the container-v3 frame tag. Selection is a pure function
// of (chunk data, params): the same volume yields the same byte stream at
// every worker count.

package codec

import (
	"errors"
	"fmt"

	"sperr/internal/grid"
)

// ChunkProfile is the sampled analyzer's summary of one chunk. It costs
// O(profileTarget) regardless of chunk size — around 100x cheaper than an
// encode at the paper's 256^3 tiling — and feeds the selection shortcut
// plus instrumentation.
type ChunkProfile struct {
	// Samples is the number of points inspected.
	Samples int
	// Mean and Variance summarize the sampled amplitude distribution.
	Mean, Variance float64
	// Roughness is the mean-square first difference of adjacent sampled
	// point pairs normalized by twice the variance: near 0 for smooth
	// fields (spectral energy concentrated at low frequency), near 1 for
	// white noise, above 1 for oscillatory data. A cheap spectral-slope
	// proxy: for a field with power spectrum ~k^-beta, this ratio is
	// 1 - rho(1), the lag-one autocorrelation complement.
	Roughness float64
	// Constant reports that every sampled value was identical.
	Constant bool
}

// profileTarget is the analyzer's sample budget per chunk.
const profileTarget = 2048

// ProfileChunk samples data on a fixed stride and returns its profile.
// Deterministic: the same data always yields the same profile.
func ProfileChunk(data []float64, dims grid.Dims) ChunkProfile {
	n := len(data)
	stride := n / profileTarget
	if stride < 1 {
		stride = 1
	}
	var p ChunkProfile
	var mean, m2 float64
	var sumd2 float64
	pairs := 0
	for i := 0; i < n; i += stride {
		v := data[i]
		p.Samples++
		delta := v - mean
		mean += delta / float64(p.Samples)
		m2 += delta * (v - mean)
		if i+1 < n {
			d := data[i+1] - v
			sumd2 += d * d
			pairs++
		}
	}
	p.Mean = mean
	if p.Samples > 0 {
		p.Variance = m2 / float64(p.Samples)
	}
	p.Constant = p.Variance == 0
	if pairs > 0 && p.Variance > 0 {
		p.Roughness = sumd2 / float64(pairs) / (2 * p.Variance)
	}
	return p
}

// trialEdge caps the trial sub-block extent per axis: 32^3 keeps the five
// trial encodes near 1% of a 256^3 chunk encode while still spanning
// several wavelet/interpolation levels.
const trialEdge = 32

// trialBlock returns a centered contiguous sub-block of at most trialEdge
// per axis, and whether it is the whole chunk (in which case the winning
// trial stream is reused verbatim).
func trialBlock(data []float64, dims grid.Dims) ([]float64, grid.Dims, bool) {
	sd := grid.Dims{NX: dims.NX, NY: dims.NY, NZ: dims.NZ}
	if sd.NX > trialEdge {
		sd.NX = trialEdge
	}
	if sd.NY > trialEdge {
		sd.NY = trialEdge
	}
	if sd.NZ > trialEdge {
		sd.NZ = trialEdge
	}
	if sd == dims {
		return data, dims, true
	}
	x0 := (dims.NX - sd.NX) / 2
	y0 := (dims.NY - sd.NY) / 2
	z0 := (dims.NZ - sd.NZ) / 2
	sub := make([]float64, sd.Len())
	for z := 0; z < sd.NZ; z++ {
		for y := 0; y < sd.NY; y++ {
			src := dims.Index(x0, y0+y, z0+z)
			dst := sd.Index(0, y, z)
			copy(sub[dst:dst+sd.NX], data[src:src+sd.NX])
		}
	}
	return sub, sd, false
}

// trialParams maps the adaptive Params onto one candidate backend: every
// candidate runs ModePWE at the same tolerance; SPERR-specific knobs pass
// through to the SPERR candidate only.
func trialParams(id CodecID, p Params) Params {
	q := Params{Mode: ModePWE, Tol: p.Tol, Threads: p.Threads}
	if id == CodecSPERR {
		q.QFactor = p.QFactor
		q.Q = p.Q
		q.Entropy = p.Entropy
		q.DisableLossless = p.DisableLossless
	}
	return q
}

// EncodeAdaptive compresses one chunk under ModeAdaptive: profile, trial-
// score every backend on a sub-block at the same PWE tolerance, code the
// chunk with the smallest candidate, and report which backend won. Ties
// break to the lowest CodecID; when the trial block is the whole chunk the
// winning trial bytes are returned directly, so the choice is exactly the
// per-chunk minimum.
func EncodeAdaptive(data []float64, dims grid.Dims, p Params, s *Scratch) (CodecID, []byte, *Stats, error) {
	if len(data) != dims.Len() {
		return 0, nil, nil, fmt.Errorf("%w: %d values for %v", ErrDims, len(data), dims)
	}
	if p.Mode != ModeAdaptive {
		return 0, nil, nil, fmt.Errorf("codec: EncodeAdaptive requires ModeAdaptive, got mode %d", p.Mode)
	}
	if err := p.Validate(); err != nil {
		return 0, nil, nil, err
	}
	if err := checkFinite(data); err != nil {
		return 0, nil, nil, err
	}
	prof := ProfileChunk(data, dims)
	if prof.Constant {
		// Constant (as sampled) chunks: every backend codes these in a few
		// bytes; skip the trials and keep the default backend.
		out, st, err := EncodeChunkScratch(data, dims, trialParams(CodecSPERR, p), s)
		return CodecSPERR, out, st, err
	}
	sub, subDims, exact := trialBlock(data, dims)
	var winner Backend
	var winStream []byte
	var winStats *Stats
	for _, b := range backends {
		stream, st, err := b.Encode(sub, subDims, trialParams(b.ID(), p), s)
		if err != nil {
			continue
		}
		if winner == nil || len(stream) < len(winStream) {
			winner, winStream, winStats = b, stream, st
		}
	}
	if winner == nil {
		return 0, nil, nil, errors.New("codec: adaptive selection: no backend could code the chunk")
	}
	if exact {
		winStats.Codec = winner.ID()
		return winner.ID(), winStream, winStats, nil
	}
	out, st, err := winner.Encode(data, dims, trialParams(winner.ID(), p), s)
	if err != nil {
		return 0, nil, nil, err
	}
	st.Codec = winner.ID()
	return winner.ID(), out, st, nil
}
