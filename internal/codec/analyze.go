package codec

import (
	"math"

	"sperr/internal/grid"
	"sperr/internal/outlier"
	"sperr/internal/speck"
	"sperr/internal/wavelet"
)

// Analysis exposes the intermediate products of the SPERR pipeline for the
// paper's design-space experiments (Figures 1, 2, 4, 11): the outlier list
// that the coefficient coding at step q leaves behind, and the exact bit
// costs of both coders.
type Analysis struct {
	Outliers    []outlier.Outlier
	SpeckBits   uint64
	OutlierBits uint64
	NumPoints   int
}

// OutlierPercent returns outliers as a percentage of all points.
func (a *Analysis) OutlierPercent() float64 {
	if a.NumPoints == 0 {
		return 0
	}
	return 100 * float64(len(a.Outliers)) / float64(a.NumPoints)
}

// BitsPerOutlier returns the amortized outlier coding cost.
func (a *Analysis) BitsPerOutlier() float64 {
	if len(a.Outliers) == 0 {
		return 0
	}
	return float64(a.OutlierBits) / float64(len(a.Outliers))
}

// Analyze runs the SPERR pipeline on one chunk at tolerance tol with SPECK
// step q (pass q = 0 for the 1.5*tol default) and returns the outlier list
// and per-coder bit costs without assembling an output stream.
func Analyze(data []float64, dims grid.Dims, tol, q float64) (*Analysis, error) {
	if len(data) != dims.Len() {
		return nil, ErrDims
	}
	if q <= 0 {
		q = DefaultQFactor * tol
	}
	coeffs := make([]float64, len(data))
	copy(coeffs, data)
	plan := wavelet.NewPlan(dims)
	plan.Forward(coeffs)
	sres := speck.Encode(coeffs, dims, q, 0)
	recon := speck.Decode(sres.Stream, sres.Bits, dims, q, sres.NumPlanes)
	plan.Inverse(recon)
	var outs []outlier.Outlier
	for i := range data {
		if diff := data[i] - recon[i]; math.Abs(diff) > tol {
			outs = append(outs, outlier.Outlier{Pos: i, Corr: diff})
		}
	}
	ores := outlier.Encode(dims.Len(), tol, outs)
	return &Analysis{
		Outliers:    outs,
		SpeckBits:   sres.Bits,
		OutlierBits: ores.Bits,
		NumPoints:   dims.Len(),
	}, nil
}
