// Package codec implements the single-chunk SPERR pipeline (paper
// Sections III-V): forward CDF 9/7 transform, SPECK coding of the
// coefficients, outlier location (inverse transform + comparison against
// the original), outlier coding, and a lossless back end over the
// concatenated bitstreams.
//
// Two termination modes are supported, mirroring the paper:
//
//   - ModePWE: quality-bounded. SPECK runs to its finest bitplane with base
//     step q = QFactor * Tol (default 1.5, Section IV-D), then every point
//     whose reconstruction error exceeds Tol is corrected through the
//     outlier coder. The decoded chunk satisfies max |z - x| <= Tol.
//   - ModeBPP: size-bounded. SPECK's embedded stream is truncated at the
//     requested bits-per-point; no outlier stage (no error guarantee).
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"sperr/internal/grid"
	"sperr/internal/lossless"
	"sperr/internal/outlier"
	"sperr/internal/speck"
)

// Mode selects the termination criterion.
type Mode uint8

const (
	// ModePWE bounds the maximum point-wise error by Params.Tol.
	ModePWE Mode = iota
	// ModeBPP bounds the output size by Params.BitsPerPoint.
	ModeBPP
	// ModeRMSE targets an average error: the embedded SPECK stream is
	// truncated at the first plane boundary whose coefficient-domain
	// error estimate meets Params.TargetRMSE. This realizes the paper's
	// Section VII observation that the near-orthogonality of the scaled
	// CDF 9/7 basis makes average-error targeting feasible without extra
	// inverse transforms. No point-wise guarantee.
	ModeRMSE
	// ModeAdaptive bounds the point-wise error by Params.Tol like ModePWE,
	// but picks the cheapest codec backend per chunk (trial-scored on a
	// sampled sub-block; see EncodeAdaptive). Requires container v3: each
	// chunk carries a one-byte codec tag. Never written into a backend's
	// own chunk header — adaptive chunks are coded under ModePWE by the
	// winning backend.
	ModeAdaptive
)

// DefaultQFactor is the coefficient-coding quantization step expressed in
// units of the PWE tolerance; the paper settles on q = 1.5t (Section IV-D).
const DefaultQFactor = 1.5

// Params controls one chunk compression.
type Params struct {
	Mode Mode

	// Tol is the point-wise error tolerance (ModePWE).
	Tol float64
	// QFactor sets q = QFactor*Tol; zero means DefaultQFactor. Figures 2-4
	// of the paper sweep this knob.
	QFactor float64
	// Q overrides the SPECK base step directly when nonzero (used by
	// experiments that decouple q from t).
	Q float64

	// BitsPerPoint is the target rate (ModeBPP).
	BitsPerPoint float64

	// TargetRMSE is the requested root-mean-square error (ModeRMSE).
	TargetRMSE float64

	// DisableLossless skips the final DEFLATE stage (for experiments that
	// measure raw coder output).
	DisableLossless bool

	// Entropy enables the arithmetic-coded SPECK variant (SPECK-AC) for
	// the coefficient stream. Only valid with ModePWE: entropy-coded
	// streams are not bit-exactly truncatable, so the size-bounded and
	// progressive paths keep the paper's raw-bit layer.
	Entropy bool

	// Threads splits the data-parallel pipeline stages (wavelet passes and
	// the outlier scan) of this one chunk over up to Threads goroutines;
	// <= 1 runs serial. A pure runtime knob: it is not serialized and the
	// output stream is byte-identical at every value. The chunk pipeline
	// sets it when there are more workers than pending chunks.
	Threads int

	// Codec pins every chunk to one backend (see backend.go). The zero
	// value is CodecSPERR, the pipeline this package implements; any other
	// backend requires ModePWE and a v3 container. Ignored under
	// ModeAdaptive, which picks the backend per chunk.
	Codec CodecID
}

func (p Params) threads() int {
	if p.Threads < 1 {
		return 1
	}
	return p.Threads
}

// Validate checks that the mode and its controlling knob are coherent,
// so pipeline front-ends can reject bad parameters before any samples
// flow. EncodeChunkScratch performs the same checks per chunk.
func (p Params) Validate() error {
	switch p.Mode {
	case ModePWE:
		if !(p.Tol > 0) {
			return errors.New("codec: ModePWE requires Tol > 0")
		}
	case ModeBPP:
		if !(p.BitsPerPoint > 0) {
			return errors.New("codec: ModeBPP requires BitsPerPoint > 0")
		}
	case ModeRMSE:
		if !(p.TargetRMSE > 0) {
			return errors.New("codec: ModeRMSE requires TargetRMSE > 0")
		}
	case ModeAdaptive:
		if !(p.Tol > 0) {
			return errors.New("codec: ModeAdaptive requires Tol > 0")
		}
		if p.Codec != CodecSPERR {
			return errors.New("codec: ModeAdaptive picks the codec per chunk; leave Codec unset")
		}
	default:
		return fmt.Errorf("codec: unknown mode %d", p.Mode)
	}
	if p.Entropy && p.Mode != ModePWE && p.Mode != ModeAdaptive {
		return errors.New("codec: Entropy requires ModePWE")
	}
	if p.Codec != CodecSPERR {
		b, ok := Lookup(p.Codec)
		if !ok {
			return fmt.Errorf("codec: unknown codec id %d", p.Codec)
		}
		return b.Validate(p)
	}
	return nil
}

func (p Params) q() float64 {
	if p.Q > 0 {
		return p.Q
	}
	qf := p.QFactor
	if qf <= 0 {
		qf = DefaultQFactor
	}
	return qf * p.Tol
}

// Stats reports per-stage measurements used by the paper's evaluation
// (Figures 2, 4, 6): bit costs of the two coders, outlier counts, and wall
// time of the four pipeline stages.
type Stats struct {
	SpeckBits   uint64
	OutlierBits uint64
	HeaderBits  uint64
	TotalBytes  int // final compressed size, including header and lossless wrapping

	// Codec identifies the backend that produced the chunk (CodecSPERR for
	// the pipeline above; the per-stage fields below are SPERR-specific).
	Codec CodecID

	NumOutliers int
	NumPoints   int

	TransformTime time.Duration // stage 1: forward wavelet transform
	SpeckTime     time.Duration // stage 2: SPECK coding
	LocateTime    time.Duration // stage 3: reconstruction + comparison
	OutlierTime   time.Duration // stage 4: outlier coding
}

// BPP returns the achieved total bitrate in bits per point.
func (s *Stats) BPP() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return float64(s.TotalBytes*8) / float64(s.NumPoints)
}

// OutlierPercent returns outliers as a percentage of all points.
func (s *Stats) OutlierPercent() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return 100 * float64(s.NumOutliers) / float64(s.NumPoints)
}

// BitsPerOutlier returns the amortized outlier coding cost (Figure 4).
func (s *Stats) BitsPerOutlier() float64 {
	if s.NumOutliers == 0 {
		return 0
	}
	return float64(s.OutlierBits) / float64(s.NumOutliers)
}

// header is the fixed-size per-chunk header. The paper's implementation
// uses a fixed 20-byte header; ours carries slightly more (exact bit
// lengths of both embedded streams) and is 40 bytes. Its cost is included
// in every reported measurement, as in the paper (Section V-A).
const headerSize = 40

var (
	// ErrCorrupt reports an undecodable chunk stream.
	ErrCorrupt = errors.New("codec: corrupt chunk stream")
	// ErrDims reports a data/dims mismatch.
	ErrDims = errors.New("codec: data length does not match dims")
)

type header struct {
	mode        Mode
	planes      uint8
	opasses     uint8
	entropy     bool
	q           float64
	tol         float64
	speckBits   uint64
	outlierBits uint64
	// points is the chunk's sample count, a frame-level self-check added
	// with container v2 (previously reserved bytes). Zero means "not
	// recorded" — streams written before the field decode unchanged.
	points uint32
}

// appendTo appends the marshalled 40-byte header to dst.
func (h *header) appendTo(dst []byte) []byte {
	var b [headerSize]byte
	b[0] = byte(h.mode)
	b[1] = h.planes
	b[2] = h.opasses
	if h.entropy {
		b[3] = 1
	}
	binary.LittleEndian.PutUint64(b[4:], math.Float64bits(h.q))
	binary.LittleEndian.PutUint64(b[12:], math.Float64bits(h.tol))
	binary.LittleEndian.PutUint64(b[20:], h.speckBits)
	binary.LittleEndian.PutUint64(b[28:], h.outlierBits)
	binary.LittleEndian.PutUint32(b[36:], h.points)
	return append(dst, b[:]...)
}

func parseHeader(b []byte) (*header, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(b))
	}
	h := &header{
		mode:        Mode(b[0]),
		planes:      b[1],
		opasses:     b[2],
		entropy:     b[3]&1 != 0,
		q:           math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
		tol:         math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
		speckBits:   binary.LittleEndian.Uint64(b[20:]),
		outlierBits: binary.LittleEndian.Uint64(b[28:]),
		points:      binary.LittleEndian.Uint32(b[36:]),
	}
	if h.mode != ModePWE && h.mode != ModeBPP && h.mode != ModeRMSE {
		return nil, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, h.mode)
	}
	// The entropy byte is a mode enum, not a flag word: 0 (raw bits) and 1
	// (SPECK-AC) are the only values any encoder has ever written. A forged
	// or damaged value must fail loudly here rather than select a bit layer
	// that does not exist; likewise AC is only ever produced under ModePWE.
	if b[3] > 1 {
		return nil, fmt.Errorf("%w: unknown entropy mode %d", ErrCorrupt, b[3])
	}
	if h.entropy && h.mode != ModePWE {
		return nil, fmt.Errorf("%w: entropy bit set outside PWE mode", ErrCorrupt)
	}
	if !(h.q > 0) || math.IsInf(h.q, 0) {
		return nil, fmt.Errorf("%w: invalid quantization step %g", ErrCorrupt, h.q)
	}
	if h.mode == ModePWE && (!(h.tol > 0) || math.IsInf(h.tol, 0)) {
		return nil, fmt.Errorf("%w: invalid tolerance %g", ErrCorrupt, h.tol)
	}
	return h, nil
}

// chunkPoints is the header's frame-level sample count; zero when the
// chunk is too large for the field (never at the paper's 256^3 tiling).
func chunkPoints(dims grid.Dims) uint32 {
	n := dims.Len()
	if n < 0 || int64(n) > int64(^uint32(0)) {
		return 0
	}
	return uint32(n)
}

// checkPoints cross-checks the header's recorded sample count against the
// extent the caller is decoding with. Zero (pre-v2 streams) passes.
func (h *header) checkPoints(dims grid.Dims) error {
	if h.points != 0 && int(h.points) != dims.Len() {
		return fmt.Errorf("%w: header records %d points, decoding %d",
			ErrCorrupt, h.points, dims.Len())
	}
	return nil
}

// EncodeChunk compresses one chunk of data (row-major, extent dims) with
// fresh buffers.
func EncodeChunk(data []float64, dims grid.Dims, p Params) ([]byte, *Stats, error) {
	return EncodeChunkScratch(data, dims, p, nil)
}

// EncodeChunkScratch is EncodeChunk drawing every pipeline temporary from
// the arena s (nil means fresh buffers). The returned stream is freshly
// allocated and caller-owned either way; output is byte-identical to
// EncodeChunk's.
func EncodeChunkScratch(data []float64, dims grid.Dims, p Params, s *Scratch) ([]byte, *Stats, error) {
	if len(data) != dims.Len() {
		return nil, nil, fmt.Errorf("%w: %d values for %v", ErrDims, len(data), dims)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if p.Mode == ModeAdaptive || p.Codec != CodecSPERR {
		return nil, nil, errors.New("codec: EncodeChunkScratch codes SPERR streams only; use EncodeAdaptive or the backend registry")
	}
	// Non-finite values cannot be transform-coded and would silently void
	// the error guarantee (NaN compares false against every threshold, so
	// the outlier stage would never correct it). Reject them up front, as
	// the reference implementation requires finite input.
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("codec: non-finite value %g at index %d", v, i)
		}
	}
	if s == nil {
		s = &Scratch{}
	}
	st := &Stats{NumPoints: dims.Len()}

	// Stage 1: forward wavelet transform.
	t0 := time.Now()
	coeffs := s.coeffs(len(data))
	copy(coeffs, data)
	plan := s.planFor(dims)
	plan.ForwardScratchThreads(coeffs, &s.wav, p.threads())
	st.TransformTime = time.Since(t0)

	// Stage 2: SPECK coding.
	t0 = time.Now()
	var q float64
	var maxBits uint64
	switch p.Mode {
	case ModePWE:
		q = p.q()
	case ModeRMSE:
		// Quantization floor well below the target so a plane boundary
		// lands near it; the stream is truncated there after encoding.
		q = p.TargetRMSE / 8
	default:
		// Size-bounded mode: pick q far below the coefficient scale so the
		// embedded stream can refine as deep as the budget allows.
		maxMag := 0.0
		for _, c := range coeffs {
			if a := math.Abs(c); a > maxMag {
				maxMag = a
			}
		}
		if maxMag == 0 {
			maxMag = 1
		}
		q = maxMag * math.Exp2(-48)
		budget := p.BitsPerPoint * float64(dims.Len())
		overhead := float64(headerSize*8) + 8
		if budget > overhead {
			maxBits = uint64(budget - overhead)
		} else {
			maxBits = 1
		}
	}
	var sres *speck.Result
	if p.Entropy {
		sres = speck.EncodeEntropyScratch(coeffs, dims, q, &s.speck)
	} else {
		sres = speck.EncodeScratchWorkers(coeffs, dims, q, maxBits, p.threads(), &s.speck)
	}
	if p.Mode == ModeRMSE {
		// Truncate the embedded stream at the first plane boundary whose
		// coefficient-domain error estimate meets the target (a 0.9
		// margin absorbs the few-percent non-orthogonality of the scaled
		// CDF 9/7 basis).
		want := 0.9 * p.TargetRMSE
		limit := want * want * float64(dims.Len())
		for i, err2 := range sres.PlaneErr2 {
			if err2 <= limit {
				sres.Bits = sres.PlaneBits[i]
				sres.Stream = sres.Stream[:(sres.Bits+7)/8]
				break
			}
		}
	}
	st.SpeckBits = sres.Bits
	st.SpeckTime = time.Since(t0)

	h := &header{
		mode:      p.Mode,
		planes:    uint8(sres.NumPlanes),
		entropy:   p.Entropy,
		q:         q,
		tol:       p.Tol,
		speckBits: sres.Bits,
		points:    chunkPoints(dims),
	}
	var ores *outlier.Result

	if p.Mode == ModePWE {
		// Stage 3: locate outliers — reconstruct exactly what the decoder
		// will see (SPECK decode + inverse transform) and compare.
		t0 = time.Now()
		var recon []float64
		if r, ok := speck.ReplayScratch(dims, q, &s.speck); ok {
			// Integer-path encode (raw or SPECK-AC): the decoder's
			// reconstruction is synthesized bit-identically from the
			// quantized magnitudes, skipping the decode traversal entirely.
			recon = r
		} else if p.Entropy {
			recon = speck.DecodeEntropyScratch(sres.Stream, dims, q, sres.NumPlanes, p.threads(), &s.speck)
		} else {
			// The SPECK scratch is shared between the encode above and this
			// decode: the decoder resets only the list state, leaving the
			// encoder's finished stream (aliased by sres) untouched.
			recon = speck.DecodeScratch(sres.Stream, sres.Bits, dims, q, sres.NumPlanes, &s.speck)
		}
		plan.InverseScratchThreads(recon, &s.wav, p.threads())
		outs := s.scanOutliers(data, recon, p.Tol, p.threads())
		st.NumOutliers = len(outs)
		st.LocateTime = time.Since(t0)

		// Stage 4: outlier coding.
		t0 = time.Now()
		ores = outlier.EncodeScratch(dims.Len(), p.Tol, outs, &s.outl)
		st.OutlierBits = ores.Bits
		st.OutlierTime = time.Since(t0)
		h.opasses = uint8(ores.NumPasses)
		h.outlierBits = ores.Bits
	}

	// Assemble: header | speck stream | outlier stream, then lossless.
	payload := h.appendTo(s.payload[:0])
	payload = append(payload, sres.Stream...)
	if ores != nil {
		payload = append(payload, ores.Stream...)
	}
	s.payload = payload
	st.HeaderBits = headerSize * 8
	var out []byte
	if p.DisableLossless {
		out = append([]byte{0xFF}, payload...) // raw marker
	} else {
		out = lossless.Compress(payload)
	}
	st.TotalBytes = len(out)
	return out, st, nil
}

// DecodeChunk reconstructs a chunk compressed by EncodeChunk. dims must
// match the encoding call. The returned slice is caller-owned.
func DecodeChunk(stream []byte, dims grid.Dims) ([]float64, error) {
	return DecodeChunkScratch(stream, dims, nil)
}

// DecodeChunkScratch is DecodeChunk drawing every pipeline temporary from
// the arena s (nil means fresh buffers). With a non-nil scratch the
// returned slice aliases the arena and is valid only until its next use —
// copy out (e.g. into the destination volume) before reusing s.
func DecodeChunkScratch(stream []byte, dims grid.Dims, s *Scratch) ([]float64, error) {
	return DecodeChunkScratchThreads(stream, dims, s, 1)
}

// DecodeChunkScratchThreads is DecodeChunkScratch with the inverse
// transform split over up to threads goroutines. Output is bit-identical
// at every thread count.
func DecodeChunkScratchThreads(stream []byte, dims grid.Dims, s *Scratch, threads int) ([]float64, error) {
	if threads < 1 {
		threads = 1
	}
	if len(stream) < 1 {
		return nil, fmt.Errorf("%w: empty stream", ErrCorrupt)
	}
	if s == nil {
		s = &Scratch{}
	}
	var payload []byte
	if stream[0] == 0xFF {
		payload = stream[1:]
	} else {
		var err error
		payload, err = lossless.DecompressInto(s.payload, stream)
		if err != nil {
			return nil, err
		}
		s.payload = payload
	}
	h, err := parseHeader(payload)
	if err != nil {
		return nil, err
	}
	if err := h.checkPoints(dims); err != nil {
		return nil, err
	}
	body := payload[headerSize:]
	// Compare in the bit domain: a corrupt 64-bit length must not survive
	// the bytes conversion (whose +7 could wrap) into a slice bound.
	if h.speckBits > uint64(len(body))*8 {
		return nil, fmt.Errorf("%w: SPECK stream truncated (%d bits > %d bytes)",
			ErrCorrupt, h.speckBits, len(body))
	}
	speckBytes := int((h.speckBits + 7) / 8)
	var coeffs []float64
	if h.entropy {
		coeffs = speck.DecodeEntropyScratch(body[:speckBytes], dims, h.q, int(h.planes), threads, &s.speck)
	} else {
		coeffs = speck.DecodeScratchWorkers(body[:speckBytes], h.speckBits, dims, h.q, int(h.planes), threads, &s.speck)
	}
	s.planFor(dims).InverseScratchThreads(coeffs, &s.wav, threads)

	if h.mode == ModePWE && h.outlierBits > 0 {
		obytes := body[speckBytes:]
		if h.outlierBits > uint64(len(obytes))*8 {
			return nil, fmt.Errorf("%w: outlier stream truncated", ErrCorrupt)
		}
		outs := outlier.DecodeScratch(obytes, h.outlierBits, dims.Len(), h.tol, int(h.opasses), &s.outl)
		for _, o := range outs {
			coeffs[o.Pos] += o.Corr
		}
	}
	return coeffs, nil
}
