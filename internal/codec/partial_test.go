package codec

import (
	"math"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/metrics"
)

func TestDecodeChunkPartialProgressive(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 101)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, frac := range []float64{0.05, 0.2, 0.5, 1.0} {
		rec, err := DecodeChunkPartial(stream, d, frac)
		if err != nil {
			t.Fatalf("frac=%g: %v", frac, err)
		}
		rmse := metrics.RMSE(data, rec)
		if rmse > prev*1.02 {
			t.Errorf("frac=%g: rmse %g worse than smaller prefix %g", frac, rmse, prev)
		}
		prev = rmse
	}
	// Full fraction must equal the regular decode (including outliers).
	full, err := DecodeChunkPartial(stream, d, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := DecodeChunk(stream, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if full[i] != reg[i] {
			t.Fatalf("fraction=1 differs from DecodeChunk at %d", i)
		}
	}
}

func TestDecodeChunkPartialValidation(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := smoothField(d, 5)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, -1, 1.5} {
		if _, err := DecodeChunkPartial(stream, d, frac); err == nil {
			t.Errorf("fraction %g should fail", frac)
		}
	}
	if _, err := DecodeChunkPartial(nil, d, 0.5); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestModeRMSE(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 77)
	for _, target := range []float64{1.0, 0.1, 0.01} {
		stream, _, err := EncodeChunk(data, d, Params{Mode: ModeRMSE, TargetRMSE: target})
		if err != nil {
			t.Fatalf("target=%g: %v", target, err)
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			t.Fatalf("target=%g: decode: %v", target, err)
		}
		got := metrics.RMSE(data, rec)
		if got > target {
			t.Errorf("target RMSE %g, achieved %g", target, got)
		}
		// Must not be wildly over-conservative either: the estimate comes
		// from the plane boundary just below the target.
		if got < target/100 {
			t.Errorf("target RMSE %g, achieved %g: truncation did not engage", target, got)
		}
	}
}

func TestModeRMSECheaperThanFinest(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 33)
	coarse, _, err := EncodeChunk(data, d, Params{Mode: ModeRMSE, TargetRMSE: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := EncodeChunk(data, d, Params{Mode: ModeRMSE, TargetRMSE: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) >= len(fine) {
		t.Errorf("coarse RMSE target (%d bytes) should cost less than fine (%d)",
			len(coarse), len(fine))
	}
}

func TestModeRMSEValidation(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModeRMSE}); err == nil {
		t.Error("zero TargetRMSE should fail")
	}
}

func TestDecodeChunkLowRes(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 55)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// drop=0: full resolution, matches regular decode up to outlier
	// corrections (low-res path skips them).
	rec0, low0, err := DecodeChunkLowRes(stream, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if low0 != d {
		t.Fatalf("drop=0 dims %v, want %v", low0, d)
	}
	if rmse := metrics.RMSE(data, rec0); rmse > 1e-5 {
		t.Errorf("drop=0 rmse %g", rmse)
	}
	// Each drop halves every axis (ceil) and shrinks the payload.
	prevLen := d.Len()
	for drop := 1; drop <= 3; drop++ {
		_, low, err := DecodeChunkLowRes(stream, d, drop)
		if err != nil {
			t.Fatalf("drop=%d: %v", drop, err)
		}
		wantNX := d.NX
		for i := 0; i < drop; i++ {
			wantNX = (wantNX + 1) / 2
		}
		if low.NX != wantNX {
			t.Errorf("drop=%d: NX=%d, want %d", drop, low.NX, wantNX)
		}
		if low.Len() >= prevLen {
			t.Errorf("drop=%d: size %d did not shrink from %d", drop, low.Len(), prevLen)
		}
		prevLen = low.Len()
	}
	// Excessive drop clamps to the plan depth rather than failing.
	if _, _, err := DecodeChunkLowRes(stream, d, 99); err != nil {
		t.Errorf("oversized drop should clamp: %v", err)
	}
	if _, _, err := DecodeChunkLowRes(stream, d, -1); err == nil {
		t.Error("negative drop should fail")
	}
}

// A linear ramp is reproduced exactly (up to quantization and boundary
// effects) by the wavelet approximation at every level: coarse sample i
// corresponds to fine sample 2^drop * i, and LevelScale removes the DC
// gain. This pins down both the coarse geometry and the rescaling.
func TestDecodeChunkLowResRamp(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := make([]float64, d.Len())
	f := func(x, y, z int) float64 { return 3 + 0.5*float64(x) + 0.25*float64(y) - 0.125*float64(z) }
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = f(x, y, z)
			}
		}
	}
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for drop := 1; drop <= 2; drop++ {
		rec, low, err := DecodeChunkLowRes(stream, d, drop)
		if err != nil {
			t.Fatal(err)
		}
		step := 1 << drop
		// Interior points only: symmetric extension bends the ramp at
		// the boundaries.
		var worst float64
		for z := 2; z < low.NZ-2; z++ {
			for y := 2; y < low.NY-2; y++ {
				for x := 2; x < low.NX-2; x++ {
					want := f(x*step, y*step, z*step)
					got := rec[low.Index(x, y, z)]
					if e := math.Abs(got - want); e > worst {
						worst = e
					}
				}
			}
		}
		if worst > 0.5 {
			t.Errorf("drop=%d: interior ramp deviates by %g", drop, worst)
		}
	}
}
