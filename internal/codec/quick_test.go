package codec

// Property-based tests (testing/quick) on the codec's central invariants.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sperr/internal/grid"
)

// Property: for any finite input and positive tolerance, the PWE bound
// holds after a round trip.
func TestQuickPWEInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, tolExp int8) bool {
		r := rand.New(rand.NewSource(seed))
		d := grid.D3(2+r.Intn(10), 2+r.Intn(10), 2+r.Intn(10))
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = r.NormFloat64() * math.Exp(float64(int(tolExp)%8))
		}
		tol := math.Exp2(float64(int(tolExp)%20 - 10))
		stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol})
		if err != nil {
			return false
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > tol*(1+1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: compression is deterministic — same input, same stream.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := grid.D3(2+r.Intn(8), 2+r.Intn(8), 2+r.Intn(8))
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = r.NormFloat64()
		}
		s1, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01})
		if err != nil {
			return false
		}
		s2, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01})
		if err != nil {
			return false
		}
		return string(s1) == string(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: BPP mode respects its budget on arbitrary inputs.
func TestQuickBPPBudget(t *testing.T) {
	f := func(seed int64, rate8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := grid.D3(4+r.Intn(12), 4+r.Intn(12), 4+r.Intn(12))
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = r.NormFloat64() * 100
		}
		bpp := 0.5 + float64(rate8%16)
		stream, _, err := EncodeChunk(data, d, Params{
			Mode: ModeBPP, BitsPerPoint: bpp, DisableLossless: true,
		})
		if err != nil {
			return false
		}
		achieved := float64(len(stream)*8) / float64(d.Len())
		// Header amortization slack for tiny chunks.
		return achieved <= bpp+float64((headerSize+2)*8)/float64(d.Len())+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
