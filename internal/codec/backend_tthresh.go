package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"sperr/internal/grid"
	"sperr/internal/tthresh"
)

// tthreshBackend adapts internal/tthresh to the Backend interface.
// TTHRESH targets an average error and has no point-wise mode (the paper
// excludes it from PWE comparisons for that reason), so the backend wraps
// the unchanged tthresh stream in a correction envelope: the encoder
// drives tthresh at a PSNR derived from the tolerance, decodes its own
// output, and stores the original value verbatim for every point whose
// error exceeds Tol. Decoding applies the stored values on top of the
// tthresh reconstruction, restoring the PWE contract exactly.
//
// Envelope layout (raw bytes; the inner stream is already deflated):
//
//	tol      f64   point-wise tolerance
//	npoints  u32   sample count (frame-level self-check)
//	ncorr    u32   number of corrections
//	innerLen u32   length of the embedded tthresh stream
//	inner    [innerLen]byte
//	corr     ncorr x { pos u32, value f64 }
type tthreshBackend struct{}

// tthreshEnvelopeLen is the envelope's fixed prefix.
const tthreshEnvelopeLen = 8 + 4 + 4 + 4

// tthreshCorrLen is the wire size of one correction.
const tthreshCorrLen = 4 + 8

func (tthreshBackend) ID() CodecID { return CodecTTHRESH }

func (tthreshBackend) Name() string { return "tthresh" }

func (tthreshBackend) Validate(p Params) error { return baselineValidate("tthresh", p) }

func (tthreshBackend) Encode(data []float64, dims grid.Dims, p Params, _ *Scratch) ([]byte, *Stats, error) {
	if len(data) != dims.Len() {
		return nil, nil, fmt.Errorf("%w: %d values for %v", ErrDims, len(data), dims)
	}
	if err := baselineValidate("tthresh", p); err != nil {
		return nil, nil, err
	}
	if err := checkFinite(data); err != nil {
		return nil, nil, err
	}
	if int64(len(data)) > int64(^uint32(0)) {
		return nil, nil, fmt.Errorf("codec: tthresh envelope limited to 2^32-1 points, got %d", len(data))
	}
	// Aim the average-error coder a factor below the point-wise bound so
	// most points land inside it and the envelope stays small.
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng == 0 {
		rng = 1
	}
	psnr := 20 * math.Log10(3*rng/p.Tol)
	if psnr < 1 {
		psnr = 1
	}
	if psnr > 400 {
		psnr = 400
	}
	inner, err := tthresh.Compress(data, dims, tthresh.Params{TargetPSNR: psnr})
	if err != nil {
		return nil, nil, err
	}
	dec, _, err := tthresh.Decompress(inner)
	if err != nil {
		return nil, nil, fmt.Errorf("codec: tthresh self-decode failed: %v", err)
	}
	var ncorr int
	for i := range data {
		if math.Abs(dec[i]-data[i]) > p.Tol {
			ncorr++
		}
	}
	out := make([]byte, 0, tthreshEnvelopeLen+len(inner)+ncorr*tthreshCorrLen)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Tol))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(data)))
	out = binary.LittleEndian.AppendUint32(out, uint32(ncorr))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(inner)))
	out = append(out, inner...)
	for i := range data {
		if math.Abs(dec[i]-data[i]) > p.Tol {
			out = binary.LittleEndian.AppendUint32(out, uint32(i))
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(data[i]))
		}
	}
	st := baselineStats(CodecTTHRESH, len(data), len(out))
	st.NumOutliers = ncorr
	return out, st, nil
}

func (b tthreshBackend) Decode(stream []byte, dims grid.Dims, _ *Scratch, _ int) ([]float64, error) {
	meta, err := b.Describe(stream)
	if err != nil {
		return nil, err
	}
	if meta.Points != dims.Len() {
		return nil, fmt.Errorf("%w: tthresh stream codes %d points, decoding %d",
			ErrCorrupt, meta.Points, dims.Len())
	}
	ncorr := int(binary.LittleEndian.Uint32(stream[12:]))
	innerLen := int(binary.LittleEndian.Uint32(stream[16:]))
	inner := stream[tthreshEnvelopeLen : tthreshEnvelopeLen+innerLen]
	data, got, err := tthresh.Decompress(inner)
	if err != nil {
		return nil, fmt.Errorf("%w: tthresh: %v", ErrCorrupt, err)
	}
	if got != dims {
		return nil, fmt.Errorf("%w: tthresh stream dims %v, decoding %v", ErrCorrupt, got, dims)
	}
	corr := stream[tthreshEnvelopeLen+innerLen:]
	for i := 0; i < ncorr; i++ {
		pos := binary.LittleEndian.Uint32(corr[i*tthreshCorrLen:])
		if int(pos) >= len(data) {
			return nil, fmt.Errorf("%w: tthresh correction %d out of range (%d points)",
				ErrCorrupt, pos, len(data))
		}
		data[pos] = math.Float64frombits(binary.LittleEndian.Uint64(corr[i*tthreshCorrLen+4:]))
	}
	return data, nil
}

func (tthreshBackend) Describe(stream []byte) (*StreamMeta, error) {
	if len(stream) < tthreshEnvelopeLen {
		return nil, fmt.Errorf("%w: tthresh: short envelope (%d bytes)", ErrCorrupt, len(stream))
	}
	tol := math.Float64frombits(binary.LittleEndian.Uint64(stream[0:]))
	if !(tol > 0) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("%w: tthresh: invalid tolerance %g", ErrCorrupt, tol)
	}
	npoints := binary.LittleEndian.Uint32(stream[8:])
	ncorr := binary.LittleEndian.Uint32(stream[12:])
	innerLen := binary.LittleEndian.Uint32(stream[16:])
	if npoints == 0 || ncorr > npoints {
		return nil, fmt.Errorf("%w: tthresh: %d corrections for %d points", ErrCorrupt, ncorr, npoints)
	}
	// The envelope is self-delimiting: its declared parts must tile the
	// stream exactly.
	want := uint64(tthreshEnvelopeLen) + uint64(innerLen) + uint64(ncorr)*tthreshCorrLen
	if want != uint64(len(stream)) {
		return nil, fmt.Errorf("%w: tthresh: envelope declares %d bytes, have %d",
			ErrCorrupt, want, len(stream))
	}
	return &StreamMeta{Codec: CodecTTHRESH, Mode: ModePWE, Tol: tol, Points: int(npoints)}, nil
}
