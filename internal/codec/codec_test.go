package codec

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

// smoothField builds a realistic smooth-plus-noise scientific field.
func smoothField(d grid.Dims, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, d.Len())
	fx := 0.5 + rng.Float64()
	fy := 0.3 + rng.Float64()
	fz := 0.2 + rng.Float64()
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				v := math.Sin(fx*float64(x)*0.3)*math.Cos(fy*float64(y)*0.2) +
					0.5*math.Sin(fz*float64(z)*0.15+1.0) +
					0.01*rng.NormFloat64()
				data[d.Index(x, y, z)] = v * 100
			}
		}
	}
	return data
}

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// The central SPERR guarantee (paper abstract, Section IV): in PWE mode the
// reconstruction never deviates from the original by more than Tol.
func TestPWEGuarantee(t *testing.T) {
	dims := []grid.Dims{
		grid.D3(32, 32, 32),
		grid.D3(17, 23, 9),
		grid.D2(64, 48),
	}
	tols := []float64{10, 1, 0.1, 1e-3, 1e-6}
	for _, d := range dims {
		data := smoothField(d, int64(d.Len()))
		for _, tol := range tols {
			stream, st, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol})
			if err != nil {
				t.Fatalf("%v tol=%g: %v", d, tol, err)
			}
			rec, err := DecodeChunk(stream, d)
			if err != nil {
				t.Fatalf("%v tol=%g: decode: %v", d, tol, err)
			}
			if e := maxErr(data, rec); e > tol*(1+1e-9) {
				t.Errorf("%v tol=%g: max error %g exceeds tolerance (outliers=%d)",
					d, tol, e, st.NumOutliers)
			}
		}
	}
}

// Randomized adversarial inputs (pure noise — worst case for wavelets) must
// still satisfy the PWE bound.
func TestPWEGuaranteeNoise(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 10; iter++ {
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*3)
		}
		tol := math.Exp(rng.NormFloat64()*2 - 2)
		stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, rec); e > tol*(1+1e-9) {
			t.Fatalf("iter %d tol=%g: max error %g", iter, tol, e)
		}
	}
}

func TestBPPModeRespectsBudget(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 5)
	for _, bpp := range []float64{0.5, 1, 2, 4} {
		stream, st, err := EncodeChunk(data, d, Params{
			Mode: ModeBPP, BitsPerPoint: bpp, DisableLossless: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(stream)*8) / float64(d.Len())
		if got > bpp*1.05+0.1 {
			t.Errorf("bpp=%g: achieved %g bits/point", bpp, got)
		}
		if _, err := DecodeChunk(stream, d); err != nil {
			t.Errorf("bpp=%g: decode: %v", bpp, err)
		}
		_ = st
	}
}

// Higher rate must give lower error (rate-distortion monotonicity).
func TestBPPRateDistortionMonotone(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 9)
	prev := math.Inf(1)
	for _, bpp := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		stream, _, err := EncodeChunk(data, d, Params{Mode: ModeBPP, BitsPerPoint: bpp})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			t.Fatal(err)
		}
		var mse float64
		for i := range data {
			e := data[i] - rec[i]
			mse += e * e
		}
		if mse > prev*1.01 {
			t.Errorf("bpp=%g: mse %g worse than lower rate %g", bpp, mse, prev)
		}
		prev = mse
	}
}

// A tighter tolerance must not produce a larger max error and should cost
// more bits.
func TestToleranceMonotonicity(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 13)
	var prevBytes int
	for _, tol := range []float64{10, 1, 0.1, 0.01} {
		stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol})
		if err != nil {
			t.Fatal(err)
		}
		if prevBytes > 0 && len(stream) < prevBytes {
			t.Errorf("tol=%g: %d bytes, fewer than looser tolerance %d",
				tol, len(stream), prevBytes)
		}
		prevBytes = len(stream)
	}
}

func TestQFactorSweep(t *testing.T) {
	// All QFactor settings must preserve the PWE guarantee; they only move
	// the coefficient/outlier balance (paper Section IV-D).
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 21)
	tol := 0.05
	for _, qf := range []float64{1.0, 1.25, 1.5, 2.0, 3.0} {
		stream, st, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, QFactor: qf})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, rec); e > tol*(1+1e-9) {
			t.Errorf("qf=%g: max error %g > tol %g", qf, e, tol)
		}
		_ = st
	}
}

// Larger q produces more outliers (paper Figure 2/4 relationship).
func TestQControlsOutliers(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 31)
	tol := 0.05
	_, stLow, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, QFactor: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	_, stHigh, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, QFactor: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if stHigh.NumOutliers <= stLow.NumOutliers {
		t.Errorf("q=3t produced %d outliers, q=1t produced %d; expected more at larger q",
			stHigh.NumOutliers, stLow.NumOutliers)
	}
	if stHigh.SpeckBits >= stLow.SpeckBits {
		t.Errorf("q=3t used %d SPECK bits, q=1t used %d; expected fewer at larger q",
			stHigh.SpeckBits, stLow.SpeckBits)
	}
}

func TestConstantField(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = 42.5
	}
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeChunk(stream, d)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > 1e-6 {
		t.Fatalf("constant field error %g", e)
	}
	// A constant field should compress extremely well.
	if len(stream) > d.Len() {
		t.Errorf("constant field took %d bytes for %d points", len(stream), d.Len())
	}
}

func TestAllZeroField(t *testing.T) {
	d := grid.D2(32, 32)
	data := make([]float64, d.Len())
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeChunk(stream, d)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rec {
		if v != 0 {
			t.Fatalf("idx %d: got %g, want 0", i, v)
		}
	}
}

func TestParamValidation(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModePWE}); err == nil {
		t.Error("PWE mode without tolerance should fail")
	}
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModeBPP}); err == nil {
		t.Error("BPP mode without rate should fail")
	}
	if _, _, err := EncodeChunk(data[:10], d, Params{Mode: ModePWE, Tol: 1}); err == nil {
		t.Error("mismatched dims should fail")
	}
	if _, err := DecodeChunk(nil, d); err == nil {
		t.Error("empty stream should fail")
	}
	if _, err := DecodeChunk([]byte{0x01, 0x02}, d); err == nil {
		t.Error("garbage stream should fail")
	}
}

func TestNonFiniteInputRejected(t *testing.T) {
	d := grid.D3(4, 4, 4)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		data := make([]float64, d.Len())
		data[13] = bad
		if _, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.1}); err == nil {
			t.Errorf("input with %g should be rejected (it would void the PWE guarantee)", bad)
		}
		if _, _, err := EncodeChunk(data, d, Params{Mode: ModeBPP, BitsPerPoint: 4}); err == nil {
			t.Errorf("BPP mode should also reject %g", bad)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 41)
	_, st, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPoints != d.Len() {
		t.Errorf("NumPoints = %d, want %d", st.NumPoints, d.Len())
	}
	if st.SpeckBits == 0 {
		t.Error("SpeckBits should be nonzero")
	}
	if st.BPP() <= 0 {
		t.Error("BPP should be positive")
	}
	if st.NumOutliers > 0 && st.BitsPerOutlier() <= 0 {
		t.Error("BitsPerOutlier should be positive when outliers exist")
	}
	if st.OutlierPercent() < 0 || st.OutlierPercent() > 100 {
		t.Errorf("OutlierPercent = %g", st.OutlierPercent())
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := &header{
		mode: ModePWE, planes: 17, opasses: 4,
		q: 1.5e-7, tol: 1e-7, speckBits: 123456789, outlierBits: 987,
	}
	got, err := parseHeader(h.appendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *h {
		t.Fatalf("header round trip: %+v != %+v", got, h)
	}
}

func BenchmarkEncodePWE32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePWE32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeChunk(stream, d); err != nil {
			b.Fatal(err)
		}
	}
}
