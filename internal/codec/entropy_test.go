package codec

import (
	"errors"
	"math"
	"testing"

	"sperr/internal/grid"
)

func TestEntropyModePWEGuarantee(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 63)
	for _, tol := range []float64{0.1, 1e-4} {
		stream, st, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, Entropy: true})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, rec); e > tol*(1+1e-9) {
			t.Errorf("tol=%g: entropy mode max error %g", tol, e)
		}
		_ = st
	}
}

func TestEntropyModeSaves(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 71)
	tol := 1e-4
	raw, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	ac, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, DisableLossless: true, Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ac) >= len(raw) {
		t.Errorf("entropy mode did not shrink the chunk: %d vs %d bytes", len(ac), len(raw))
	}
}

func TestEntropyModeRejectsOtherModes(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModeBPP, BitsPerPoint: 2, Entropy: true}); err == nil {
		t.Error("entropy + BPP should fail")
	}
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModeRMSE, TargetRMSE: 1, Entropy: true}); err == nil {
		t.Error("entropy + RMSE should fail")
	}
}

// TestForgedEntropyMode pins the decoder's handling of a tampered
// entropy-mode byte: values no encoder ever wrote must be rejected as
// ErrCorrupt (not silently decoded with a bit layer that does not
// exist), and the AC flag on a mode that cannot produce it likewise.
func TestForgedEntropyMode(t *testing.T) {
	d := grid.D3(12, 12, 12)
	data := smoothField(d, 17)
	// DisableLossless keeps the chunk header addressable at a fixed
	// offset: stream[0] is the raw marker, the header starts at 1, and
	// the entropy byte is header byte 3.
	const entropyOff = 1 + 3
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, forged := range []byte{2, 3, 0x80, 0xFF} {
		mut := append([]byte(nil), stream...)
		mut[entropyOff] = forged
		if _, err := DecodeChunk(mut, d); !errors.Is(err, ErrCorrupt) {
			t.Errorf("entropy byte %#x: got %v, want ErrCorrupt", forged, err)
		}
	}
	// The AC bit on a size-bounded stream: no encoder can write this
	// combination (Validate rejects Entropy outside PWE), so the decoder
	// must treat it as corruption.
	bppStream, _, err := EncodeChunk(data, d, Params{Mode: ModeBPP, BitsPerPoint: 2, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), bppStream...)
	mut[entropyOff] = 1
	if _, err := DecodeChunk(mut, d); !errors.Is(err, ErrCorrupt) {
		t.Errorf("entropy bit on BPP stream: got %v, want ErrCorrupt", err)
	}
	// A legitimate AC stream still decodes after the tightened parse.
	acStream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01, DisableLossless: true, Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChunk(acStream, d); err != nil {
		t.Errorf("valid AC stream rejected: %v", err)
	}
}

func TestEntropyModePartialDecodeRejected(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := smoothField(d, 81)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01, Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChunkPartial(stream, d, 0.5); err == nil {
		t.Error("partial decode of an entropy stream should fail")
	}
	// Full-fraction partial decode and low-res decode must still work.
	if _, err := DecodeChunkPartial(stream, d, 1.0); err != nil {
		t.Errorf("fraction=1: %v", err)
	}
	rec, low, err := DecodeChunkLowRes(stream, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if low != grid.D3(8, 8, 8) || len(rec) != 512 {
		t.Errorf("low-res decode of entropy stream wrong: %v, %d", low, len(rec))
	}
	for _, v := range rec {
		if math.IsNaN(v) {
			t.Fatal("NaN in low-res entropy decode")
		}
	}
}
