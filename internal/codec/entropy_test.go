package codec

import (
	"math"
	"testing"

	"sperr/internal/grid"
)

func TestEntropyModePWEGuarantee(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 63)
	for _, tol := range []float64{0.1, 1e-4} {
		stream, st, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, Entropy: true})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeChunk(stream, d)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, rec); e > tol*(1+1e-9) {
			t.Errorf("tol=%g: entropy mode max error %g", tol, e)
		}
		_ = st
	}
}

func TestEntropyModeSaves(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 71)
	tol := 1e-4
	raw, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, DisableLossless: true})
	if err != nil {
		t.Fatal(err)
	}
	ac, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: tol, DisableLossless: true, Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ac) >= len(raw) {
		t.Errorf("entropy mode did not shrink the chunk: %d vs %d bytes", len(ac), len(raw))
	}
}

func TestEntropyModeRejectsOtherModes(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModeBPP, BitsPerPoint: 2, Entropy: true}); err == nil {
		t.Error("entropy + BPP should fail")
	}
	if _, _, err := EncodeChunk(data, d, Params{Mode: ModeRMSE, TargetRMSE: 1, Entropy: true}); err == nil {
		t.Error("entropy + RMSE should fail")
	}
}

func TestEntropyModePartialDecodeRejected(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := smoothField(d, 81)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01, Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChunkPartial(stream, d, 0.5); err == nil {
		t.Error("partial decode of an entropy stream should fail")
	}
	// Full-fraction partial decode and low-res decode must still work.
	if _, err := DecodeChunkPartial(stream, d, 1.0); err != nil {
		t.Errorf("fraction=1: %v", err)
	}
	rec, low, err := DecodeChunkLowRes(stream, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if low != grid.D3(8, 8, 8) || len(rec) != 512 {
		t.Errorf("low-res decode of entropy stream wrong: %v, %d", low, len(rec))
	}
	for _, v := range rec {
		if math.IsNaN(v) {
			t.Fatal("NaN in low-res entropy decode")
		}
	}
}
