package codec

import (
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

// Corruption robustness: a decoder fed damaged input must return an error
// or garbage data — never panic, hang, or index out of range. These tests
// exercise systematic bit flips, truncations, and random noise.

func TestDecodeChunkBitFlips(t *testing.T) {
	d := grid.D3(12, 12, 12)
	data := smoothField(d, 321)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		corrupted := append([]byte(nil), stream...)
		// Flip 1-4 random bits.
		for k := 0; k <= rng.Intn(4); k++ {
			i := rng.Intn(len(corrupted))
			corrupted[i] ^= 1 << rng.Intn(8)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: panic on corrupted stream: %v", iter, r)
				}
			}()
			rec, err := DecodeChunk(corrupted, d)
			if err == nil && len(rec) != d.Len() {
				t.Fatalf("iter %d: wrong output size %d", iter, len(rec))
			}
		}()
	}
}

func TestDecodeChunkTruncations(t *testing.T) {
	d := grid.D2(24, 24)
	data := smoothField(d, 77)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(stream); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut=%d: panic: %v", cut, r)
				}
			}()
			_, _ = DecodeChunk(stream[:cut], d)
		}()
	}
}

func TestDecodeChunkRandomNoise(t *testing.T) {
	d := grid.D3(8, 8, 8)
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		noise := make([]byte, rng.Intn(512))
		rng.Read(noise)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("iter %d: panic on noise: %v", iter, r)
				}
			}()
			_, _ = DecodeChunk(noise, d)
			_, _ = DecodeChunkPartial(noise, d, 0.5)
			_, _, _ = DecodeChunkLowRes(noise, d, 1)
		}()
	}
}

// Decoding a valid stream against the wrong dims must not panic (the
// container layer normally guarantees agreement; the codec should still
// fail safe).
func TestDecodeChunkWrongDims(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := smoothField(d, 9)
	stream, _, err := EncodeChunk(data, d, Params{Mode: ModePWE, Tol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, wrong := range []grid.Dims{
		grid.D3(8, 8, 8),
		grid.D3(16, 16, 8),
		grid.D2(32, 32),
		grid.D3(17, 16, 16),
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("dims %v: panic: %v", wrong, r)
				}
			}()
			rec, err := DecodeChunk(stream, wrong)
			if err == nil && len(rec) != wrong.Len() {
				t.Fatalf("dims %v: silent wrong-size output", wrong)
			}
		}()
	}
}
