package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"sperr/internal/grid"
	"sperr/internal/zfp"
)

// zfpBackend adapts internal/zfp (fixed-accuracy mode) to the Backend
// interface. The zfp stream format is unchanged; its header is raw (not
// lossless-wrapped), so Describe is a plain byte read.
type zfpBackend struct{}

// zfpHeaderLen is the raw fixed prefix: three extents, mode byte, param.
const zfpHeaderLen = 12 + 1 + 8

func (zfpBackend) ID() CodecID { return CodecZFP }

func (zfpBackend) Name() string { return "zfp" }

func (zfpBackend) Validate(p Params) error { return baselineValidate("zfp", p) }

func (zfpBackend) Encode(data []float64, dims grid.Dims, p Params, _ *Scratch) ([]byte, *Stats, error) {
	if len(data) != dims.Len() {
		return nil, nil, fmt.Errorf("%w: %d values for %v", ErrDims, len(data), dims)
	}
	if err := baselineValidate("zfp", p); err != nil {
		return nil, nil, err
	}
	if err := checkFinite(data); err != nil {
		return nil, nil, err
	}
	stream, err := zfp.Compress(data, dims, zfp.Params{Mode: zfp.ModeFixedAccuracy, Tol: p.Tol})
	if err != nil {
		return nil, nil, err
	}
	return stream, baselineStats(CodecZFP, len(data), len(stream)), nil
}

func (b zfpBackend) Decode(stream []byte, dims grid.Dims, _ *Scratch, _ int) ([]float64, error) {
	meta, err := b.Describe(stream)
	if err != nil {
		return nil, err
	}
	if meta.Points != dims.Len() {
		return nil, fmt.Errorf("%w: zfp stream codes %d points, decoding %d",
			ErrCorrupt, meta.Points, dims.Len())
	}
	data, got, err := zfp.Decompress(stream)
	if err != nil {
		return nil, fmt.Errorf("%w: zfp: %v", ErrCorrupt, err)
	}
	if got != dims {
		return nil, fmt.Errorf("%w: zfp stream dims %v, decoding %v", ErrCorrupt, got, dims)
	}
	return data, nil
}

func (zfpBackend) Describe(stream []byte) (*StreamMeta, error) {
	if len(stream) < zfpHeaderLen {
		return nil, fmt.Errorf("%w: zfp: short header (%d bytes)", ErrCorrupt, len(stream))
	}
	dims := wireDims(stream)
	points, ok := safePoints(dims)
	if !ok {
		return nil, fmt.Errorf("%w: zfp: invalid dims %v", ErrCorrupt, dims)
	}
	mode := stream[12]
	if mode > 1 {
		return nil, fmt.Errorf("%w: zfp: unknown mode %d", ErrCorrupt, mode)
	}
	par := math.Float64frombits(binary.LittleEndian.Uint64(stream[13:]))
	meta := &StreamMeta{Codec: CodecZFP, Points: points}
	if mode == byte(zfp.ModeFixedAccuracy) {
		if !(par > 0) || math.IsInf(par, 0) {
			return nil, fmt.Errorf("%w: zfp: invalid tolerance %g", ErrCorrupt, par)
		}
		meta.Mode = ModePWE
		meta.Tol = par
	} else {
		meta.Mode = ModeBPP
	}
	return meta, nil
}
