package server

// End-to-end coverage of the codec= knob: adaptive and pinned-backend
// compressions through the HTTP surface, the v3 streams they emit, the
// per-backend chunk counters, and the parameter validation table.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sperr"
	"sperr/internal/rawio"
)

// hetero builds a volume whose x-slabs favor different backends, so an
// adaptive compression through the server mixes codecs.
func hetero(nx, ny, nz int) []float64 {
	data := make([]float64, nx*ny*nz)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				switch {
				case x < nx/3:
					data[i] = 1.25
				case x < 2*nx/3:
					data[i] = 0.05*float64(x) + 0.01*float64(y*z)
				default:
					data[i] = 8 * math.Sin(1.3*float64(x)) * math.Cos(0.9*float64(y+z))
				}
				i++
			}
		}
	}
	return data
}

func TestCompressCodecParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dims := [3]int{24, 8, 8}
	data := hetero(dims[0], dims[1], dims[2])
	raw, _ := rawio.EncodeFloats(data, 8)

	// codec=adaptive: a v3 stream, mixed or not, that round-trips within
	// tol and bumps the per-backend counters.
	url := fmt.Sprintf("%s/v1/compress?dims=%d,%d,%d&tol=1e-3&chunk=8,8,8&codec=adaptive",
		ts.URL, dims[0], dims[1], dims[2])
	res, stream := postRaw(t, url, raw)
	if res.StatusCode != 200 {
		t.Fatalf("adaptive compress: %d %s", res.StatusCode, stream)
	}
	info, err := sperr.Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 || info.Mode != "adaptive" {
		t.Fatalf("adaptive stream: version %d mode %q", info.Version, info.Mode)
	}
	rec, rdims, err := sperr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if rdims != dims {
		t.Fatalf("dims %v", rdims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 1e-3*(1+1e-9) {
			t.Fatalf("PWE violated at %d", i)
		}
	}

	// Pinned backend: every chunk tagged zfp.
	url = fmt.Sprintf("%s/v1/compress?dims=%d,%d,%d&tol=1e-3&chunk=8,8,8&codec=zfp",
		ts.URL, dims[0], dims[1], dims[2])
	res, zstream := postRaw(t, url, raw)
	if res.StatusCode != 200 {
		t.Fatalf("zfp compress: %d %s", res.StatusCode, zstream)
	}
	zinfo, err := sperr.Describe(zstream)
	if err != nil {
		t.Fatal(err)
	}
	if zinfo.Version != 3 || zinfo.CodecCounts["zfp"] != zinfo.NumChunks {
		t.Fatalf("zfp stream: version %d counts %v", zinfo.Version, zinfo.CodecCounts)
	}

	// Metrics: the codec counters must cover every chunk of both runs.
	metrics := string(getBody(t, ts.URL+"/metrics"))
	if !strings.Contains(metrics, `sperrd_codec_chunks_total{codec="zfp"}`) {
		t.Fatalf("metrics missing zfp codec counter:\n%s", metrics)
	}
	for name := range info.CodecCounts {
		if !strings.Contains(metrics, fmt.Sprintf("sperrd_codec_chunks_total{codec=%q}", name)) {
			t.Fatalf("metrics missing %s codec counter", name)
		}
	}

	// Validation: non-SPERR codecs demand a PWE bound; unknown names are
	// rejected before any data is read.
	for _, bad := range []string{
		fmt.Sprintf("%s/v1/compress?dims=24,8,8&bpp=2&codec=sz", ts.URL),
		fmt.Sprintf("%s/v1/compress?dims=24,8,8&bpp=2&codec=adaptive", ts.URL),
		fmt.Sprintf("%s/v1/compress?dims=24,8,8&tol=1e-3&codec=lz4", ts.URL),
	} {
		res, body := postRaw(t, bad, raw)
		if res.StatusCode != 400 {
			t.Errorf("%s: status %d %s, want 400", bad, res.StatusCode, body)
		}
	}
}
