package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"sperr"
)

// slabAssembler turns the Decoder's out-of-order chunk deliveries back
// into an ordered row-major byte stream, so a decompress response can be
// written to a socket (which cannot seek) without materializing the
// volume. Chunks land in per-z-slab buffers — a slab is one chunk-height
// band of the volume, volume XY extent x chunk Z extent — and a slab is
// flushed the moment its last chunk arrives and every earlier slab is
// out. Peak buffering is the slabs spanned by the in-flight chunk set
// (the frame producer reads in index order, so that is ~1-2 slabs plus
// the decoder's worker arenas), never the volume.
//
// add is safe for concurrent use by decoder worker goroutines; the float
// narrowing/serialization into the slab buffer runs outside the lock, in
// parallel, on disjoint byte ranges.
type slabAssembler struct {
	w       io.Writer
	dims    [3]int
	cz      int // chunk Z extent (slab height)
	width   int // output bytes per sample (4 or 8)
	perSlab int // chunks per slab
	nSlabs  int

	mu   sync.Mutex
	next int // next slab index to flush
	bufs map[int][]byte
	left map[int]int
}

func newSlabAssembler(w io.Writer, dims, chunkDims [3]int, width int) *slabAssembler {
	cz := chunkDims[2]
	if cz > dims[2] {
		cz = dims[2]
	}
	cx, cy := chunkDims[0], chunkDims[1]
	if cx > dims[0] {
		cx = dims[0]
	}
	if cy > dims[1] {
		cy = dims[1]
	}
	return &slabAssembler{
		w:       w,
		dims:    dims,
		cz:      cz,
		width:   width,
		perSlab: ceilDiv(dims[0], cx) * ceilDiv(dims[1], cy),
		nSlabs:  ceilDiv(dims[2], cz),
		bufs:    make(map[int][]byte),
		left:    make(map[int]int),
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// add serializes one decoded chunk into its slab and flushes any slabs
// that just became contiguous with the output cursor.
func (sa *slabAssembler) add(ch sperr.DecodedChunk) error {
	s := ch.Origin[2] / sa.cz
	slabZ0 := s * sa.cz
	slabNZ := sa.cz
	if slabZ0+slabNZ > sa.dims[2] {
		slabNZ = sa.dims[2] - slabZ0
	}
	sa.mu.Lock()
	buf, ok := sa.bufs[s]
	if !ok {
		buf = make([]byte, sa.dims[0]*sa.dims[1]*slabNZ*sa.width)
		sa.bufs[s] = buf
		sa.left[s] = sa.perSlab
	}
	sa.mu.Unlock()

	nx, ny := ch.Dims[0], ch.Dims[1]
	for z := 0; z < ch.Dims[2]; z++ {
		zl := ch.Origin[2] - slabZ0 + z
		for y := 0; y < ny; y++ {
			row := ch.Data[(z*ny+y)*nx : (z*ny+y+1)*nx]
			off := ((zl*sa.dims[1]+ch.Origin[1]+y)*sa.dims[0] + ch.Origin[0]) * sa.width
			putRow(buf[off:], row, sa.width)
		}
	}

	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.left[s]--
	for sa.next < sa.nSlabs && sa.left[sa.next] == 0 {
		if _, ok := sa.bufs[sa.next]; !ok {
			break // zero count but never allocated: not this slab yet
		}
		if _, err := sa.w.Write(sa.bufs[sa.next]); err != nil {
			return err
		}
		delete(sa.bufs, sa.next)
		delete(sa.left, sa.next)
		sa.next++
	}
	return nil
}

// done verifies every slab was flushed.
func (sa *slabAssembler) done() error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.next != sa.nSlabs {
		return fmt.Errorf("server: %d of %d output slabs unflushed", sa.nSlabs-sa.next, sa.nSlabs)
	}
	return nil
}

// putRow serializes a row of samples as little-endian floats of the given
// width (4 narrows to float32).
func putRow(dst []byte, vals []float64, width int) {
	if width == 4 {
		for i, v := range vals {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(float32(v)))
		}
		return
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}
