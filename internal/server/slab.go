package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"sperr"
)

// regionAssembler turns out-of-order chunk-piece deliveries into an
// ordered row-major byte stream for an arbitrary region box, so a
// response can be written to a socket (which cannot seek) without
// materializing the region. Pieces land in per-z-band buffers — a band
// is the intersection of the region with one chunk-height row of the
// volume's chunk grid — and a band is flushed the moment its last piece
// arrives and every earlier band is out. Peak buffering is the bands
// spanned by the in-flight piece set, never the region.
//
// The full-volume decompress path is the special case origin = (0,0,0),
// dims = volume dims (see slabAssembler); the cluster scatter-gather
// path feeds it chunk∩region intersections as peers answer.
//
// add is safe for concurrent use; the float narrowing/serialization
// into the band buffer runs outside the lock, in parallel, on disjoint
// byte ranges.
type regionAssembler struct {
	w      io.Writer
	origin [3]int // region box, volume coordinates
	dims   [3]int
	cz     int // chunk grid z pitch
	gz0    int // first grid z cell the region touches
	width  int // output bytes per sample (4 or 8)

	perBand int // chunk pieces per band (constant for a box region)
	nBands  int

	mu   sync.Mutex
	next int // next band index to flush
	bufs map[int][]byte
	left map[int]int
}

// newRegionAssembler assembles the box origin+dims of a volume tiled by
// chunkDims over volDims. chunkDims components are clamped to the
// volume extent, mirroring the engine's tiling.
func newRegionAssembler(w io.Writer, origin, dims, volDims, chunkDims [3]int, width int) *regionAssembler {
	var c [3]int
	for a := 0; a < 3; a++ {
		c[a] = chunkDims[a]
		if c[a] > volDims[a] {
			c[a] = volDims[a]
		}
	}
	cell := func(a, v int) int { return v / c[a] }
	perBand := (cell(0, origin[0]+dims[0]-1) - cell(0, origin[0]) + 1) *
		(cell(1, origin[1]+dims[1]-1) - cell(1, origin[1]) + 1)
	gz0 := cell(2, origin[2])
	return &regionAssembler{
		w:       w,
		origin:  origin,
		dims:    dims,
		cz:      c[2],
		gz0:     gz0,
		width:   width,
		perBand: perBand,
		nBands:  cell(2, origin[2]+dims[2]-1) - gz0 + 1,
		bufs:    make(map[int][]byte),
		left:    make(map[int]int),
	}
}

// bandBounds returns band b's z range within the region.
func (ra *regionAssembler) bandBounds(b int) (zlo, zhi int) {
	zlo = (ra.gz0 + b) * ra.cz
	if o := ra.origin[2]; o > zlo {
		zlo = o
	}
	zhi = (ra.gz0 + b + 1) * ra.cz
	if e := ra.origin[2] + ra.dims[2]; e < zhi {
		zhi = e
	}
	return zlo, zhi
}

// add serializes one chunk piece (origin o, extent d, samples x-fastest,
// already clipped to the region) into its band and flushes any bands
// that just became contiguous with the output cursor.
func (ra *regionAssembler) add(o, d [3]int, samples []float64) error {
	b := o[2]/ra.cz - ra.gz0
	zlo, zhi := ra.bandBounds(b)

	ra.mu.Lock()
	buf, ok := ra.bufs[b]
	if !ok {
		buf = make([]byte, ra.dims[0]*ra.dims[1]*(zhi-zlo)*ra.width)
		ra.bufs[b] = buf
		ra.left[b] = ra.perBand
	}
	ra.mu.Unlock()

	nx, ny := d[0], d[1]
	for z := 0; z < d[2]; z++ {
		zl := o[2] + z - zlo
		for y := 0; y < ny; y++ {
			row := samples[(z*ny+y)*nx : (z*ny+y+1)*nx]
			off := ((zl*ra.dims[1]+o[1]+y-ra.origin[1])*ra.dims[0] + o[0] - ra.origin[0]) * ra.width
			putRow(buf[off:], row, ra.width)
		}
	}

	ra.mu.Lock()
	defer ra.mu.Unlock()
	ra.left[b]--
	for ra.next < ra.nBands && ra.left[ra.next] == 0 {
		if _, ok := ra.bufs[ra.next]; !ok {
			break // zero count but never allocated: not this band yet
		}
		if _, err := ra.w.Write(ra.bufs[ra.next]); err != nil {
			return err
		}
		delete(ra.bufs, ra.next)
		delete(ra.left, ra.next)
		ra.next++
	}
	return nil
}

// done verifies every band was flushed.
func (ra *regionAssembler) done() error {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if ra.next != ra.nBands {
		return fmt.Errorf("server: %d of %d output bands unflushed", ra.nBands-ra.next, ra.nBands)
	}
	return nil
}

// slabAssembler is the full-volume specialization of regionAssembler,
// fed by the streaming Decoder's out-of-order chunk deliveries.
type slabAssembler struct {
	ra *regionAssembler
}

func newSlabAssembler(w io.Writer, dims, chunkDims [3]int, width int) *slabAssembler {
	return &slabAssembler{ra: newRegionAssembler(w, [3]int{}, dims, dims, chunkDims, width)}
}

func (sa *slabAssembler) add(ch sperr.DecodedChunk) error {
	return sa.ra.add(ch.Origin, ch.Dims, ch.Data)
}

func (sa *slabAssembler) done() error { return sa.ra.done() }

// putRow serializes a row of samples as little-endian floats of the given
// width (4 narrows to float32).
func putRow(dst []byte, vals []float64, width int) {
	if width == 4 {
		for i, v := range vals {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(float32(v)))
		}
		return
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}
