package server

// Cluster-mode handlers: the public /v1/volumes endpoints dispatch here
// when a peer roster is configured, and the /v1/internal/chunks peer
// protocol lives here. The coordinator side slices ingests across the
// ring and scatter-gathers region reads; the peer side is a thin
// verified-shard store plus a chunk streamer. Both reuse the same
// store, admission, assembler, and trailer machinery as single-node
// serving — a 3-node read is bit-identical to a 1-node read.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"sperr"
	"sperr/internal/cluster"
	"sperr/internal/store"
)

// parseFill reads the salvage fill policy parameter: NaN by default
// (marks loss unambiguously), "zero", or any float.
func parseFill(r *http.Request) (float64, error) {
	switch fv := strings.ToLower(param(r, "fill")); fv {
	case "", "nan":
		return math.NaN(), nil
	case "zero":
		return 0, nil
	default:
		f, err := strconv.ParseFloat(fv, 64)
		if err != nil {
			return 0, fmt.Errorf("bad fill %q", fv)
		}
		return f, nil
	}
}

// handleClusterPut shards an ingested container across the peer roster.
// The coordinator verifies and content-addresses the whole container
// once, then ships each peer the shard holding exactly its chunks. Peer
// failure fails the ingest (502) — re-ingest is idempotent and
// converges, so the client simply retries.
func (s *Server) handleClusterPut(w *statusWriter, r *http.Request, st *reqStats) {
	body, ok := s.readContainer(w, r, st)
	if !ok {
		return
	}
	meta, created, err := s.cluster.Ingest(r.Context(), body)
	if err != nil {
		st.err = err
		switch {
		case errors.Is(err, store.ErrCorrupt):
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		case r.Context().Err() != nil:
			st.canceled = true
			http.Error(w, err.Error(), 499)
		default:
			// A peer refused or vanished mid-ingest.
			http.Error(w, err.Error(), http.StatusBadGateway)
		}
		return
	}
	s.setStoreGauges()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sperr-Volume-Id", meta.ID)
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		st.err = err
	}
}

// handleClusterRegion scatter-gathers a region read: intersect the box
// with the chunk geometry (known locally from the shard footer), fan
// out to owning peers, merge arriving pieces into ordered z-bands, and
// stream them. A peer that cannot answer after retries and hedging
// degrades its chunks to the fill value — the response is then complete
// but carries the "degraded: skipped i,j,..." trailer, never a 500.
func (s *Server) handleClusterRegion(w *statusWriter, r *http.Request, st *reqStats) {
	id := r.PathValue("id")
	origin, rdims, err := parseRegionSpec(param(r, "region"))
	if err != nil {
		badRequest(w, st, err)
		return
	}
	workersReq, err := paramInt(r, "workers")
	if err != nil {
		badRequest(w, st, err)
		return
	}
	fill, err := parseFill(r)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	workers := s.effWorkers(workersReq)
	width := widthOf(r)

	meta, ok := s.store.Describe(id)
	if !ok {
		notFound(w, st, store.ErrNotFound)
		return
	}

	// Cluster-level admission: the coordinator charges its worst case
	// before fanning out — concurrent local decodes plus remote pieces in
	// flight, bounded by the region itself. Peers charge their own decode
	// cost on their side of the wire.
	touched := 0
	for _, cg := range meta.Chunks {
		if _, _, ok := cluster.Intersect(origin, rdims, cg.Origin, cg.Dims); ok {
			touched++
		}
	}
	if touched > 0 {
		cost := int64(min(workers, touched)) * maxChunkSamples(meta)
		if points := int64(rdims[0]) * int64(rdims[1]) * int64(rdims[2]); cost > points {
			cost = points
		}
		release := s.admit(w, r, st, cost)
		if release == nil {
			return
		}
		defer release()
	}

	finish := trailerStatus(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Sperr-Dims", fmt.Sprintf("%d,%d,%d", rdims[0], rdims[1], rdims[2]))

	out := bufio.NewWriterSize(w, 256<<10)
	ra := newRegionAssembler(out, origin, rdims, meta.Dims, meta.ChunkDims, width)
	rep, err := s.cluster.Region(r.Context(), id, origin, rdims,
		cluster.RegionOptions{Workers: workers, Fill: fill},
		func(p cluster.ChunkPiece) error { return ra.add(p.Origin, p.Dims, p.Samples) })
	if err == nil {
		err = ra.done()
	}
	if err == nil {
		err = out.Flush()
	}
	switch {
	case errors.Is(err, store.ErrNotFound): // deleted between describe and read
		notFound(w, st, err)
		return
	case err != nil:
		s.streamFail(w, r, st, finish, err)
		return
	}
	if len(rep.Skipped) > 0 {
		s.reg.Counter("sperrd_cluster_degraded_total").Inc()
		status := "degraded: skipped " + intList(rep.Skipped)
		if len(rep.Unreachable) > 0 {
			// Name the peers that failed every fetch, so the trailer answers
			// "which node do I go look at" and not just "what did I lose".
			status += "; unreachable " + strings.Join(rep.Unreachable, ",")
		}
		w.Header().Set("X-Sperr-Status", status)
		return
	}
	finish(nil)
}

// handleClusterDelete removes the volume's shard from every peer.
func (s *Server) handleClusterDelete(w *statusWriter, r *http.Request, st *reqStats) {
	err := s.cluster.Delete(r.Context(), r.PathValue("id"))
	switch {
	case errors.Is(err, store.ErrNotFound):
		notFound(w, st, err)
		return
	case err != nil:
		st.err = err
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	s.setStoreGauges()
	w.WriteHeader(http.StatusNoContent)
}

// maxChunkSamples is the largest chunk's sample count — the unit of the
// cluster admission charge.
func maxChunkSamples(meta *store.Meta) int64 {
	var m int64
	for _, cg := range meta.Chunks {
		if n := int64(cg.Dims[0]) * int64(cg.Dims[1]) * int64(cg.Dims[2]); n > m {
			m = n
		}
	}
	return m
}

// handleInternalPut is the peer side of cluster ingest: store a shard
// under the coordinator-assigned content address, verifying every owned
// frame (stubs are admitted as stubs, damage is not).
func (s *Server) handleInternalPut(w *statusWriter, r *http.Request, st *reqStats) {
	body, ok := s.readContainer(w, r, st)
	if !ok {
		return
	}
	meta, created, err := s.store.PutShard(r.PathValue("id"), body)
	if err != nil {
		st.err = err
		code := http.StatusBadRequest
		if errors.Is(err, store.ErrCorrupt) {
			code = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.setStoreGauges()
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	if err := json.NewEncoder(w).Encode(meta); err != nil {
		st.err = err
	}
}

// handleInternalChunks streams the requested chunks' intersections with
// the region box as length-prefixed float64 frames (u32 index, u32
// count, samples LE). A chunk this peer cannot serve — a stub, or a
// damaged frame — is simply omitted; the coordinator retries elsewhere
// in time, then fills. Decodes go through the store's slab cache, so a
// hot chunk costs no decode work here either.
func (s *Server) handleInternalChunks(w *statusWriter, r *http.Request, st *reqStats) {
	id := r.PathValue("id")
	meta, ok := s.store.Describe(id)
	if !ok {
		notFound(w, st, store.ErrNotFound)
		return
	}
	origin, rdims, err := parseRegionSpec(param(r, "region"))
	if err != nil {
		badRequest(w, st, err)
		return
	}
	var chunks []int
	for _, f := range strings.Split(param(r, "chunks"), ",") {
		ci, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || ci < 0 || ci >= len(meta.Chunks) {
			badRequest(w, st, fmt.Errorf("bad chunk index %q", f))
			return
		}
		chunks = append(chunks, ci)
	}
	if len(chunks) == 0 {
		badRequest(w, st, errors.New("chunks parameter required"))
		return
	}

	// Chunks decode one at a time here; the charge is one chunk arena.
	release := s.admit(w, r, st, maxChunkSamples(meta))
	if release == nil {
		return
	}
	defer release()

	finish := trailerStatus(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	out := bufio.NewWriterSize(w, 256<<10)
	for _, ci := range chunks {
		cg := meta.Chunks[ci]
		o, d, ok := cluster.Intersect(origin, rdims, cg.Origin, cg.Dims)
		if !ok {
			continue
		}
		data, _, err := s.store.Region(r.Context(), id, o, d, 1)
		if err != nil {
			if r.Context().Err() != nil {
				s.streamFail(w, r, st, finish, err)
				return
			}
			continue // unservable chunk (stub or damage): omit its frame
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(ci))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(data)))
		if _, err := out.Write(hdr[:]); err != nil {
			s.streamFail(w, r, st, finish, err)
			return
		}
		buf := make([]byte, 8*len(data))
		putRow(buf, data, 8)
		if _, err := out.Write(buf); err != nil {
			s.streamFail(w, r, st, finish, err)
			return
		}
	}
	if err := out.Flush(); err != nil {
		s.streamFail(w, r, st, finish, err)
		return
	}
	finish(nil)
}

// handleInternalRepair answers an anti-entropy repair request: slice
// this node's resident container down to the intersection of the
// requested chunks with what is locally intact, and return that shard.
// The response is itself a valid container, so the requester heals by
// merging it through its own verified PutShard path. An empty
// intersection still returns the stub skeleton — that is how a
// rejoining peer acquires a volume's geometry before owning a byte of
// it. Intactness is proven per frame here (sperr.OwnedChunks), so a
// damaged local frame is never propagated to the peer trying to heal.
func (s *Server) handleInternalRepair(w *statusWriter, r *http.Request, st *reqStats) {
	id := r.PathValue("id")
	meta, blob, err := s.store.Get(id)
	if err != nil {
		notFound(w, st, store.ErrNotFound)
		return
	}
	want := make(map[int]bool)
	if raw := param(r, "chunks"); raw != "" {
		for _, f := range strings.Split(raw, ",") {
			ci, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || ci < 0 || ci >= meta.NumChunks {
				badRequest(w, st, fmt.Errorf("bad chunk index %q", f))
				return
			}
			want[ci] = true
		}
	}
	intact, err := sperr.OwnedChunks(blob)
	if err != nil {
		// This node's own copy is too damaged to vouch for anything; the
		// requester falls through to the next replica.
		st.err = err
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	keep := make(map[int]bool, len(intact))
	for _, ci := range intact {
		if want[ci] {
			keep[ci] = true
		}
	}
	shard, err := sperr.SliceShard(blob, func(ci int) bool { return keep[ci] })
	if err != nil {
		st.err = err
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(shard); err != nil {
		st.err = err
	}
}

// handleInternalManifest lists this node's volumes (id and chunk count)
// so a rejoining or replacement peer can discover what the cluster
// holds and scrub itself back to full ownership.
func (s *Server) handleInternalManifest(w *statusWriter, r *http.Request, st *reqStats) {
	vols := s.store.List()
	out := make([]cluster.ManifestEntry, 0, len(vols))
	for _, m := range vols {
		out = append(out, cluster.ManifestEntry{ID: m.ID, NumChunks: m.NumChunks})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		st.err = err
	}
}

// handleInternalDelete is the peer side of cluster delete.
func (s *Server) handleInternalDelete(w *statusWriter, r *http.Request, st *reqStats) {
	err := s.store.Delete(r.PathValue("id"))
	switch {
	case errors.Is(err, store.ErrNotFound):
		notFound(w, st, err)
		return
	case err != nil:
		st.err = err
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.setStoreGauges()
	w.WriteHeader(http.StatusNoContent)
}
