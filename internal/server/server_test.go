package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sperr"
	"sperr/internal/rawio"
)

// field builds a small deterministic smooth-plus-noise volume.
func field(nx, ny, nz int, seed int64) []float64 {
	data := make([]float64, nx*ny*nz)
	rng := uint64(seed)*2862933555777941757 + 3037000493
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				rng = rng*2862933555777941757 + 3037000493
				noise := float64(rng>>40) / (1 << 24)
				data[(z*ny+y)*nx+x] = math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y)) +
					0.3*math.Sin(0.1*float64(z)) + 0.05*noise
			}
		}
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// testDeadline bounds every e2e request: a server regression that stalls
// a stream fails the test with a context error instead of hanging CI.
const testDeadline = 30 * time.Second

func postRaw(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	defer cancel()
	res, out, err := postCtx(ctx, url, body)
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

// postCtx is the deadline-carrying POST all e2e tests go through.
func postCtx(ctx context.Context, url string, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	out, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return res, out, nil
}

// getBody fetches url under the standard test deadline.
func getBody(t *testing.T, url string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

const testTol = 1e-4

// compressURL builds a compress request for the standard test options.
func compressURL(base string, dims [3]int) string {
	return fmt.Sprintf("%s/v1/compress?dims=%d,%d,%d&tol=%g&chunk=16,16,16",
		base, dims[0], dims[1], dims[2], testTol)
}

// TestRoundTripMatchesLibrary: the service must produce byte-identical
// streams and reconstructions to the library API.
func TestRoundTripMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dims := [3]int{24, 17, 9}
	data := field(dims[0], dims[1], dims[2], 7)
	raw, _ := rawio.EncodeFloats(data, 8)

	res, stream := postRaw(t, compressURL(ts.URL, dims), raw)
	if res.StatusCode != 200 {
		t.Fatalf("compress status %d: %s", res.StatusCode, stream)
	}
	if got := res.Trailer.Get("X-Sperr-Status"); got != "ok" {
		t.Fatalf("compress trailer %q", got)
	}

	wantStream, _, err := sperr.CompressPWE(data, dims, testTol,
		&sperr.Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, wantStream) {
		t.Fatalf("service stream (%d bytes) differs from library stream (%d bytes)",
			len(stream), len(wantStream))
	}

	res, rawOut := postRaw(t, ts.URL+"/v1/decompress", stream)
	if res.StatusCode != 200 {
		t.Fatalf("decompress status %d: %s", res.StatusCode, rawOut)
	}
	if got := res.Trailer.Get("X-Sperr-Status"); got != "ok" {
		t.Fatalf("decompress trailer %q", got)
	}
	got, err := rawio.DecodeFloats(rawOut, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sperr.Decompress(wantStream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: service %g, library %g", i, got[i], want[i])
		}
	}
}

// TestConcurrentClients round-trips distinct volumes from N clients at
// once; every reconstruction must match the library bit-for-bit.
func TestConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const clients = 8
	dims := [3]int{32, 19, 11}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
			defer cancel()
			data := field(dims[0], dims[1], dims[2], seed)
			raw, _ := rawio.EncodeFloats(data, 8)
			res, stream, err := postCtx(ctx, compressURL(ts.URL, dims), raw)
			if err != nil {
				errs <- err
				return
			}
			if res.StatusCode != 200 {
				errs <- fmt.Errorf("compress status %d", res.StatusCode)
				return
			}
			res, rawOut, err := postCtx(ctx, ts.URL+"/v1/decompress", stream)
			if err != nil {
				errs <- err
				return
			}
			if res.StatusCode != 200 {
				errs <- fmt.Errorf("decompress status %d", res.StatusCode)
				return
			}
			got, err := rawio.DecodeFloats(rawOut, 8)
			if err != nil {
				errs <- err
				return
			}
			wantStream, _, err := sperr.CompressPWE(data, dims, testTol,
				&sperr.Options{ChunkDims: [3]int{16, 16, 16}})
			if err != nil {
				errs <- err
				return
			}
			want, _, err := sperr.Decompress(wantStream)
			if err != nil {
				errs <- err
				return
			}
			for i := range got {
				if got[i] != want[i] {
					errs <- fmt.Errorf("seed %d sample %d: %g vs %g", seed, i, got[i], want[i])
					return
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if p, c := s.Admission().Peak(), s.Admission().Capacity(); p > c {
		t.Fatalf("admission peak %d exceeded capacity %d", p, c)
	}
	if u := s.Admission().InUse(); u != 0 {
		t.Fatalf("admission inUse %d after all requests", u)
	}
}

// TestFloat32RoundTrip: f32 request and response bodies, matching the
// library's float32 path.
func TestFloat32RoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dims := [3]int{24, 17, 9}
	data := field(dims[0], dims[1], dims[2], 3)
	f32 := make([]float32, len(data))
	for i, v := range data {
		f32[i] = float32(v)
	}
	raw, _ := rawio.EncodeFloats(data, 4) // narrows to f32 bytes

	res, stream := postRaw(t, compressURL(ts.URL, dims)+"&f32=1", raw)
	if res.StatusCode != 200 {
		t.Fatalf("compress status %d: %s", res.StatusCode, stream)
	}
	wantStream, _, err := sperr.CompressPWEFloat32(f32, dims, testTol,
		&sperr.Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, wantStream) {
		t.Fatal("f32 service stream differs from library stream")
	}

	res, rawOut := postRaw(t, ts.URL+"/v1/decompress?f32=1&workers=3", stream)
	if res.StatusCode != 200 {
		t.Fatalf("decompress status %d", res.StatusCode)
	}
	want, _, err := sperr.DecompressFloat32Workers(wantStream, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := rawio.DecodeFloats(rawOut, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotF {
		if float32(gotF[i]) != want[i] {
			t.Fatalf("f32 sample %d: %g vs %g", i, gotF[i], want[i])
		}
	}
}

func TestDescribeAndRegion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dims := [3]int{24, 17, 9}
	data := field(dims[0], dims[1], dims[2], 5)
	stream, _, err := sperr.CompressPWE(data, dims, testTol,
		&sperr.Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}

	res, body := postRaw(t, ts.URL+"/v1/describe", stream)
	if res.StatusCode != 200 {
		t.Fatalf("describe status %d: %s", res.StatusCode, body)
	}
	var info sperr.StreamInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Dims != dims || info.Mode != "pwe" || info.Tolerance != testTol || info.NumChunks != 4 {
		t.Fatalf("describe drifted: %+v", info)
	}

	origin, rdims := [3]int{4, 3, 2}, [3]int{10, 9, 5}
	res, rawOut := postRaw(t,
		fmt.Sprintf("%s/v1/region?region=%d,%d,%d,%d,%d,%d", ts.URL,
			origin[0], origin[1], origin[2], rdims[0], rdims[1], rdims[2]), stream)
	if res.StatusCode != 200 {
		t.Fatalf("region status %d: %s", res.StatusCode, rawOut)
	}
	got, err := rawio.DecodeFloats(rawOut, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sperr.DecompressRegion(stream, origin, rdims)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("region %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("region sample %d: %g vs %g", i, got[i], want[i])
		}
	}

	// Corrupt container: must fail cleanly with 400.
	res, body = postRaw(t, ts.URL+"/v1/describe", []byte("SPRRGO99 garbage"))
	if res.StatusCode != 400 {
		t.Fatalf("corrupt describe status %d: %s", res.StatusCode, body)
	}
}

func TestBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, url string
	}{
		{"no dims", "/v1/compress?tol=1e-3"},
		{"no mode", "/v1/compress?dims=8,8,8"},
		{"two modes", "/v1/compress?dims=8,8,8&tol=1e-3&bpp=2"},
		{"bad dims", "/v1/compress?dims=8,8&tol=1e-3"},
		{"bad region", "/v1/region?region=1,2,3"},
	} {
		res, body := postRaw(t, ts.URL+tc.url, []byte("x"))
		if res.StatusCode != 400 {
			t.Errorf("%s: status %d (%s), want 400", tc.name, res.StatusCode, body)
		}
	}
	// Truncated body: fewer samples than dims promise.
	res, _ := postRaw(t, compressURL(ts.URL, [3]int{8, 8, 8}), make([]byte, 64))
	if res.StatusCode == 200 && res.Trailer.Get("X-Sperr-Status") == "ok" {
		t.Error("truncated body reported success")
	}
}

// slowBody feeds a request body under test control: Write data through
// pw, hold, then close to finish.
func startStalledCompress(t *testing.T, ts *httptest.Server, dims [3]int, data []float64) (
	finish func(rest bool), done chan *http.Response) {
	t.Helper()
	pr, pw := io.Pipe()
	raw, _ := rawio.EncodeFloats(data, 8)
	half := len(raw) / 2
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	t.Cleanup(cancel)
	req, err := http.NewRequestWithContext(ctx, "POST", compressURL(ts.URL, dims), pr)
	if err != nil {
		t.Fatal(err)
	}
	done = make(chan *http.Response, 1)
	go func() {
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- nil
			return
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		done <- res
	}()
	if _, err := pw.Write(raw[:half]); err != nil {
		t.Fatal(err)
	}
	finish = func(rest bool) {
		if rest {
			pw.Write(raw[half:])
		}
		pw.Close()
	}
	return finish, done
}

// TestOverloadAdmission: with a budget sized for exactly one request and
// a queue of one, concurrent requests beyond the queue see 429s with
// Retry-After, the queued request eventually succeeds, and the charged
// in-flight samples never exceed the budget.
func TestOverloadAdmission(t *testing.T) {
	dims := [3]int{32, 32, 16}
	chunk := [3]int{16, 16, 16}
	workers := 2
	cost := engineCost(dims, chunk, workers)
	s, ts := newTestServer(t, Config{
		BudgetSamples: cost, // exactly one admitted request
		MaxQueue:      1,
		QueueWait:     5 * time.Second,
		Workers:       workers,
		ChunkDims:     chunk,
	})
	data := field(dims[0], dims[1], dims[2], 11)

	// Request A admits and stalls mid-body, pinning the whole budget.
	finishA, doneA := startStalledCompress(t, ts, dims, data)
	waitFor(t, "A admitted", func() bool { return s.Admission().InUse() == cost })

	// Request B queues (fits the queue, not the budget).
	finishB, doneB := startStalledCompress(t, ts, dims, data)
	waitFor(t, "B queued", func() bool { return s.Admission().QueueDepth() == 1 })

	// C and D overflow the queue: 429 + Retry-After, immediately.
	for _, name := range []string{"C", "D"} {
		raw, _ := rawio.EncodeFloats(data, 8)
		res, body := postRaw(t, compressURL(ts.URL, dims), raw)
		if res.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s: status %d (%s), want 429", name, res.StatusCode, body)
		}
		if res.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: missing Retry-After", name)
		}
	}

	// Release A; B must then admit and both must complete.
	finishA(true)
	if res := <-doneA; res == nil || res.StatusCode != 200 {
		t.Fatalf("A failed: %+v", res)
	}
	waitFor(t, "B admitted", func() bool { return s.Admission().QueueDepth() == 0 })
	finishB(true)
	if res := <-doneB; res == nil || res.StatusCode != 200 {
		t.Fatalf("B failed: %+v", res)
	}

	if p := s.Admission().Peak(); p > cost {
		t.Fatalf("in-flight samples peaked at %d, budget %d", p, cost)
	}
	waitFor(t, "budget drained", func() bool { return s.Admission().InUse() == 0 })

	// The rejections must be visible on the metrics surface.
	text := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(text), `sperrd_admission_rejected_total{reason="queue_full"} 2`) {
		t.Fatalf("metrics missing queue_full rejections:\n%s", text)
	}
}

// TestClientDisconnectCancels: dropping a compress connection mid-body
// must cancel the request's chunk workers (canceled counter, budget
// released) without wedging the pool for later requests.
func TestClientDisconnectCancels(t *testing.T) {
	s, ts := newTestServer(t, Config{ChunkDims: [3]int{16, 16, 16}})
	dims := [3]int{32, 32, 32}
	data := field(dims[0], dims[1], dims[2], 13)
	raw, _ := rawio.EncodeFloats(data, 8)

	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", compressURL(ts.URL, dims), pr)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		res, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
		}
	}()
	// Feed half the volume so the engine has dispatched work, then drop.
	if _, err := pw.Write(raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "request admitted", func() bool { return s.Admission().InUse() > 0 })
	cancel()
	pw.CloseWithError(context.Canceled)
	<-clientDone

	waitFor(t, "cancellation observed", func() bool {
		return s.Registry().Counter("sperrd_requests_canceled_total").Value() >= 1
	})
	waitFor(t, "budget released", func() bool { return s.Admission().InUse() == 0 })

	// The pool must not be wedged: a fresh round trip succeeds.
	res, stream := postRaw(t, compressURL(ts.URL, dims), raw)
	if res.StatusCode != 200 || res.Trailer.Get("X-Sperr-Status") != "ok" {
		t.Fatalf("post-cancel compress: status %d trailer %q",
			res.StatusCode, res.Trailer.Get("X-Sperr-Status"))
	}
	res, _ = postRaw(t, ts.URL+"/v1/decompress", stream)
	if res.StatusCode != 200 {
		t.Fatalf("post-cancel decompress status %d", res.StatusCode)
	}
}

// TestShutdownDrains: after Shutdown starts, new requests are refused
// with 503 and healthz flips unhealthy.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, body := postRaw(t, compressURL(ts.URL, [3]int{8, 8, 8}), make([]byte, 8*512))
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain compress status %d (%s), want 503", res.StatusCode, body)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Fatal("post-drain response missing Retry-After")
	}
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", hres.StatusCode)
	}
}

// TestMetricsAndExpvar: the surfaces are mounted and non-empty.
func TestMetricsAndExpvar(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dims := [3]int{16, 16, 8}
	data := field(dims[0], dims[1], dims[2], 2)
	raw, _ := rawio.EncodeFloats(data, 8)
	if res, _ := postRaw(t, compressURL(ts.URL, dims), raw); res.StatusCode != 200 {
		t.Fatalf("compress status %d", res.StatusCode)
	}
	text := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`sperrd_requests_total{endpoint="compress",code="200"} 1`,
		"sperrd_request_seconds",
		"sperrd_bytes_in_total",
		"sperrd_admission_inuse_samples",
		"sperrd_chunks_total",
		"sperrd_compression_ratio",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	vars := getBody(t, ts.URL+"/debug/vars")
	if !strings.Contains(string(vars), "sperrd") {
		t.Error("/debug/vars missing the sperrd registry")
	}
}
