// Package server is sperrd's service layer: a stdlib-only net/http
// boundary around the streaming sperr engine. It owns everything a
// production serving stack needs that the codec should not know about —
// admission control over a shared in-flight-samples budget, FIFO queueing
// with deadlines, per-request cancellation threaded into the chunk
// workers, graceful drain, structured request logs, and a metrics
// surface — while volumes stream request-body-to-response-body through
// sperr.Encoder/Decoder without ever being fully memory-resident.
package server

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sperr"
	"sperr/internal/cluster"
	"sperr/internal/obs"
	"sperr/internal/store"
)

// Config tunes the service layer. The zero value serves with sane
// defaults (see each field).
type Config struct {
	// BudgetSamples caps the aggregate worst-case in-flight samples across
	// all admitted requests (one sample = one float64 in a chunk-worker
	// arena, so this times 8 bounds the engines' arena bytes). <= 0
	// defaults to 64 Mi samples (512 MiB of arenas).
	BudgetSamples int64
	// MaxQueue bounds the FIFO admission wait queue; requests beyond it
	// are rejected with 429 immediately. < 0 means 0 (no queueing);
	// 0 defaults to 64.
	MaxQueue int
	// QueueWait bounds how long an admitted-but-waiting request may queue
	// before a 429. <= 0 defaults to 10s.
	QueueWait time.Duration
	// Workers caps the per-request engine worker budget. <= 0 means
	// GOMAXPROCS. A request's ?workers= parameter is clamped to this.
	Workers int
	// ChunkDims is the compress-side chunk tiling bound (zero components
	// default to the engine's 256).
	ChunkDims [3]int
	// MaxContainerBytes caps the buffered container body of /v1/describe
	// and /v1/region (those need random access to the index footer, so
	// they cannot stream). <= 0 defaults to 1 GiB.
	MaxContainerBytes int64
	// LogWriter receives one structured (JSON) log line per request.
	// nil discards logs.
	LogWriter io.Writer
	// Registry is the metrics registry to instrument into. nil makes a
	// fresh one.
	Registry *obs.Registry
	// StoreDir, when non-empty, enables the content-addressed volume
	// store (PUT /v1/volumes, GET /v1/volumes/{id}/region, ...) rooted at
	// that directory.
	StoreDir string
	// CacheSamples caps the decoded-slab cache residency in samples.
	// <= 0 defaults to BudgetSamples/4. The residency is charged against
	// the admission budget, so the cache and in-flight decodes share one
	// ceiling regardless of this cap.
	CacheSamples int64
	// NodeID names this node; when set, every response carries it in the
	// X-Sperr-Node header. Required in cluster mode.
	NodeID string
	// Peers, when non-empty, enables cluster mode: the full roster as
	// "id=url" entries, including this node's own id (its URL is what
	// other peers dial). Requires StoreDir and NodeID. Volume ingest
	// shards across the roster and region reads scatter-gather.
	Peers []string
	// PeerTimeout bounds one peer RPC attempt (<= 0 defaults to 2s).
	PeerTimeout time.Duration
	// HedgeAfter duplicates a peer fetch that has not completed in this
	// long (0 defaults to 250ms; negative disables hedging).
	HedgeAfter time.Duration
	// PeerRetries is how many extra attempts a failed peer fetch gets
	// (0 defaults to 1; negative disables retries).
	PeerRetries int
	// Replicas is how many distinct peers own each chunk (0 defaults to
	// cluster.DefaultReplicas; clamped to the roster size).
	Replicas int
	// ScrubInterval is the pause between anti-entropy scrub passes in
	// cluster mode (0 defaults to cluster.DefaultScrubInterval; negative
	// disables the scrubber).
	ScrubInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.BudgetSamples <= 0 {
		c.BudgetSamples = 64 << 20
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxContainerBytes <= 0 {
		c.MaxContainerBytes = 1 << 30
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.CacheSamples <= 0 {
		c.CacheSamples = c.BudgetSamples / 4
	}
	return c
}

// Server is one sperrd instance: handlers plus the shared service state.
type Server struct {
	cfg      Config
	adm      *Admission
	reg      *obs.Registry
	log      *slog.Logger
	mux      *http.ServeMux
	hs       *http.Server
	store     *store.Store
	cluster   *cluster.Cluster
	stopScrub func()
	draining  atomic.Bool
}

// New builds a Server from cfg. The error is non-nil only when the
// configured volume store cannot be opened.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		reg: cfg.Registry,
	}
	logW := cfg.LogWriter
	if logW == nil {
		logW = io.Discard
	}
	s.log = slog.New(slog.NewJSONHandler(logW, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s.adm = NewAdmission(cfg.BudgetSamples, cfg.MaxQueue)
	inUse := s.reg.Gauge("sperrd_admission_inuse_samples")
	peak := s.reg.Gauge("sperrd_admission_peak_samples")
	depth := s.reg.Gauge("sperrd_admission_queue_depth")
	s.adm.onChange = func(u int64, q int) {
		inUse.Set(u)
		peak.RaiseTo(u)
		depth.Set(int64(q))
	}

	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{
			CacheSamples: cfg.CacheSamples,
			Charge:       s.adm.TryAcquire,
			Release:      s.adm.Release,
			Hooks:        s.storeHooks(),
		})
		if err != nil {
			return nil, err
		}
		s.store = st
		// Under admission pressure, cold cached slabs yield their budget
		// to in-flight decodes before any request queues.
		s.adm.SetReclaimer(st.Cache().Shed)
	}

	if len(cfg.Peers) > 0 {
		if s.store == nil {
			return nil, errors.New("server: cluster mode requires a store dir")
		}
		if cfg.NodeID == "" {
			return nil, errors.New("server: cluster mode requires a node id")
		}
		roster := make(map[string]string, len(cfg.Peers))
		for _, p := range cfg.Peers {
			id, u, ok := strings.Cut(p, "=")
			if !ok || id == "" || u == "" {
				return nil, fmt.Errorf("server: peer %q: want id=url", p)
			}
			roster[id] = u
		}
		cl, err := cluster.New(cluster.Config{
			Self:       cfg.NodeID,
			Peers:      roster,
			Timeout:    cfg.PeerTimeout,
			HedgeAfter: cfg.HedgeAfter,
			Retries:    cfg.PeerRetries,
			Replicas:   cfg.Replicas,
			Hooks:      s.clusterHooks(),
		}, s.store)
		if err != nil {
			return nil, err
		}
		s.cluster = cl
		if cfg.ScrubInterval >= 0 {
			s.stopScrub = cl.StartScrubber(cfg.ScrubInterval, func(r *cluster.ScrubReport) {
				if r.Damaged == 0 && r.Repaired == 0 && r.Discovered == 0 && len(r.Errors) == 0 {
					return // clean pass: counted by the metric, not the log
				}
				s.log.Info("scrub",
					"volumes", r.Volumes,
					"damaged", r.Damaged,
					"repaired", r.Repaired,
					"discovered", r.Discovered,
					"errors", len(r.Errors))
			})
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compress", s.instrumented("compress", s.handleCompress))
	s.mux.HandleFunc("POST /v1/decompress", s.instrumented("decompress", s.handleDecompress))
	s.mux.HandleFunc("POST /v1/describe", s.instrumented("describe", s.handleDescribe))
	s.mux.HandleFunc("POST /v1/region", s.instrumented("region", s.handleRegion))
	s.mux.HandleFunc("PUT /v1/volumes", s.instrumented("ingest", s.handleVolumePut))
	s.mux.HandleFunc("GET /v1/volumes/{id}", s.instrumented("volume", s.handleVolumeGet))
	s.mux.HandleFunc("DELETE /v1/volumes/{id}", s.instrumented("volume_delete", s.handleVolumeDelete))
	s.mux.HandleFunc("GET /v1/volumes/{id}/region", s.instrumented("region_cached", s.handleVolumeRegion))
	if s.cluster != nil {
		s.mux.HandleFunc("PUT /v1/internal/chunks/{id}", s.instrumented("peer_ingest", s.handleInternalPut))
		s.mux.HandleFunc("GET /v1/internal/chunks/{id}", s.instrumented("peer_chunks", s.handleInternalChunks))
		s.mux.HandleFunc("DELETE /v1/internal/chunks/{id}", s.instrumented("peer_delete", s.handleInternalDelete))
		s.mux.HandleFunc("POST /v1/internal/repair/{id}", s.instrumented("peer_repair", s.handleInternalRepair))
		s.mux.HandleFunc("GET /v1/internal/manifest", s.instrumented("peer_manifest", s.handleInternalManifest))
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.reg.PublishExpvar("sperrd")
	return s, nil
}

// storeHooks wires store and cache events into the metrics registry.
func (s *Server) storeHooks() store.Hooks {
	ingests := s.reg.Counter("sperrd_store_ingests_total")
	rejected := s.reg.Counter("sperrd_store_ingest_rejected_total")
	ingestBytes := s.reg.Histogram("sperrd_store_ingest_bytes", obs.DefBytesBuckets)
	deletes := s.reg.Counter("sperrd_store_deletes_total")
	hits := s.reg.Counter("sperrd_cache_hits_total")
	misses := s.reg.Counter("sperrd_cache_misses_total")
	decodes := s.reg.Counter("sperrd_store_chunk_decodes_total")
	evictions := s.reg.Counter("sperrd_cache_evictions_total")
	resident := s.reg.Gauge("sperrd_cache_resident_samples")
	peak := s.reg.Gauge("sperrd_cache_peak_samples")
	return store.Hooks{
		OnIngest: func(bytes int64, created bool) {
			ingests.Inc()
			if created {
				ingestBytes.Observe(float64(bytes))
			}
		},
		OnReject: func() { rejected.Inc() },
		OnDelete: func() { deletes.Inc() },
		OnHit:    func(chunks int) { hits.Add(int64(chunks)) },
		OnMiss:   func(chunks int) { misses.Add(int64(chunks)) },
		OnDecode: func(chunks int) { decodes.Add(int64(chunks)) },
		OnEvict:  func(samples int64) { evictions.Inc() },
		OnResident: func(samples int64) {
			resident.Set(samples)
			peak.RaiseTo(samples)
		},
	}
}

// clusterHooks wires cluster peer traffic into the metrics registry.
// Every counter is created here at startup so it reports 0 before its
// first event — the chaos harness polls some of these as witnesses.
func (s *Server) clusterHooks() cluster.Hooks {
	retries := s.reg.Counter("sperrd_cluster_retries_total")
	hedges := s.reg.Counter("sperrd_cluster_hedges_total")
	s.reg.Counter("sperrd_cluster_degraded_total")
	filled := s.reg.Counter("sperrd_cluster_filled_chunks_total")
	failover := s.reg.Counter("sperrd_replica_failover_chunks_total")
	breakerOpens := s.reg.Counter("sperrd_cluster_breaker_opens_total")
	scrubRuns := s.reg.Counter("sperrd_scrub_runs_total")
	scrubDamaged := s.reg.Counter("sperrd_scrub_damaged_chunks_total")
	scrubRepaired := s.reg.Counter("sperrd_scrub_repaired_chunks_total")
	return cluster.Hooks{
		OnPeerRequest: func(peer, outcome string) {
			s.reg.Counter(`sperrd_cluster_requests_total{peer="` + peer +
				`",outcome="` + outcome + `"}`).Inc()
		},
		OnRetry:         func(string) { retries.Inc() },
		OnHedge:         func(string) { hedges.Inc() },
		OnFilled:        func(chunks int) { filled.Add(int64(chunks)) },
		OnFailover:      func(chunks int) { failover.Add(int64(chunks)) },
		OnBreakerOpen:   func(string) { breakerOpens.Inc() },
		OnScrubRun:      func() { scrubRuns.Inc() },
		OnScrubDamaged:  func(chunks int) { scrubDamaged.Add(int64(chunks)) },
		OnScrubRepaired: func(chunks int) { scrubRepaired.Add(int64(chunks)) },
	}
}

// Store exposes the content-addressed volume store (nil when disabled).
func (s *Server) Store() *store.Store { return s.store }

// Cluster exposes the distribution layer (nil outside cluster mode).
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// Handler returns the root handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Admission exposes the admission controller (tests assert on its Peak).
func (s *Server) Admission() *Admission { return s.adm }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	err := s.hs.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains gracefully: new work is refused (503 + Retry-After,
// queued waiters rejected), in-flight requests run to completion bounded
// by ctx, then the listener closes and the volume store flushes its
// manifest.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.Drain()
	if s.stopScrub != nil {
		s.stopScrub()
		s.stopScrub = nil
	}
	var err error
	if s.hs != nil {
		err = s.hs.Shutdown(ctx)
	}
	if s.store != nil {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close releases server resources without the HTTP drain — the teardown
// path for handler-only (httptest) servers.
func (s *Server) Close() error {
	if s.stopScrub != nil {
		s.stopScrub()
		s.stopScrub = nil
	}
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// statusWriter records status code and bytes written, and exposes
// SetTrailer passthrough via the embedded ResponseWriter.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// countingReader counts body bytes in.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// reqStats is the per-request scratchpad the handlers fill in for the
// access log and metrics.
type reqStats struct {
	queueWait time.Duration
	err       error
	canceled  bool
}

type handlerFunc func(w *statusWriter, r *http.Request, st *reqStats)

// instrumented wraps a handler with the cross-cutting service concerns:
// drain refusal, request metrics, latency histogram, and the structured
// access log.
func (s *Server) instrumented(endpoint string, h handlerFunc) http.HandlerFunc {
	reqSec := s.reg.Histogram(`sperrd_request_seconds{endpoint="`+endpoint+`"}`, obs.DefLatencyBuckets)
	queueSec := s.reg.Histogram("sperrd_queue_wait_seconds", obs.DefLatencyBuckets)
	inflight := s.reg.Gauge("sperrd_requests_inflight")
	canceled := s.reg.Counter("sperrd_requests_canceled_total")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		st := &reqStats{}
		if s.cfg.NodeID != "" {
			// Which node answered — operators read placement off this.
			sw.Header().Set("X-Sperr-Node", s.cfg.NodeID)
		}
		inflight.Add(1)
		cr := &countingReader{r: r.Body}
		r.Body = struct {
			io.Reader
			io.Closer
		}{cr, r.Body}

		if s.draining.Load() {
			st.err = ErrDraining
			s.reject(sw, ErrDraining)
		} else {
			h(sw, r, st)
		}

		dur := time.Since(start)
		inflight.Add(-1)
		reqSec.Observe(dur.Seconds())
		if st.queueWait > 0 {
			queueSec.Observe(st.queueWait.Seconds())
		}
		if st.canceled {
			canceled.Inc()
		}
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.reg.Counter(`sperrd_requests_total{endpoint="` + endpoint + `",code="` +
			strconv.Itoa(code) + `"}`).Inc()
		s.reg.Counter(`sperrd_bytes_in_total{endpoint="` + endpoint + `"}`).Add(cr.n)
		s.reg.Counter(`sperrd_bytes_out_total{endpoint="` + endpoint + `"}`).Add(sw.bytes)

		attrs := []any{
			"endpoint", endpoint,
			"remote", r.RemoteAddr,
			"status", code,
			"bytes_in", cr.n,
			"bytes_out", sw.bytes,
			"dur_ms", float64(dur.Microseconds()) / 1000,
		}
		if st.queueWait > 0 {
			attrs = append(attrs, "queue_ms", float64(st.queueWait.Microseconds())/1000)
		}
		if st.canceled {
			attrs = append(attrs, "canceled", true)
		}
		if st.err != nil {
			attrs = append(attrs, "err", st.err.Error())
			s.log.Error("request", attrs...)
		} else {
			s.log.Info("request", attrs...)
		}
	}
}

// reject maps an admission error to its HTTP response. Transient overload
// (queue full, wait deadline) is 429; never-admissible or draining is
// 503. Both carry Retry-After.
func (s *Server) reject(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	code := http.StatusServiceUnavailable
	reason := "draining"
	switch err {
	case ErrQueueFull:
		code, reason = http.StatusTooManyRequests, "queue_full"
	case ErrWaitDeadline:
		code, reason = http.StatusTooManyRequests, "wait_deadline"
	case ErrTooLarge:
		reason = "too_large"
	}
	s.reg.Counter(`sperrd_admission_rejected_total{reason="` + reason + `"}`).Inc()
	http.Error(w, err.Error(), code)
}

// admit runs the admission handshake for a request costing cost samples
// and returns a release func (nil when rejected, with the response
// already written).
func (s *Server) admit(w *statusWriter, r *http.Request, st *reqStats, cost int64) func() {
	wait, err := s.adm.Acquire(r.Context(), cost, s.cfg.QueueWait)
	st.queueWait = wait
	if err != nil {
		if r.Context().Err() != nil {
			st.canceled = true
		}
		st.err = err
		s.reject(w, err)
		return nil
	}
	return func() { s.adm.Release(cost) }
}

// engineCost is a request's admission charge: the worst-case sample count
// its engine holds in worker arenas at once — workers x clamped chunk
// size, never more than the volume itself. The engines' PeakInFlightSamples
// witnesses stay at or under this by construction.
func engineCost(dims, chunkDims [3]int, workers int) int64 {
	points := int64(dims[0]) * int64(dims[1]) * int64(dims[2])
	c := int64(1)
	for i := 0; i < 3; i++ {
		e := chunkDims[i]
		if e <= 0 {
			e = sperr.DefaultChunkDim
		}
		if e > dims[i] {
			e = dims[i]
		}
		c *= int64(e)
	}
	cost := int64(workers) * c
	if cost > points {
		cost = points
	}
	return cost
}

// effWorkers clamps a client-requested worker count to the server cap.
func (s *Server) effWorkers(req int) int {
	if req <= 0 || req > s.cfg.Workers {
		return s.cfg.Workers
	}
	return req
}
