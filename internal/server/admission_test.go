package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionImmediateGrant(t *testing.T) {
	a := NewAdmission(100, 4)
	wait, err := a.Acquire(context.Background(), 60, time.Second)
	if err != nil || wait != 0 {
		t.Fatalf("grant: wait=%v err=%v", wait, err)
	}
	if a.InUse() != 60 {
		t.Fatalf("inUse = %d, want 60", a.InUse())
	}
	a.Release(60)
	if a.InUse() != 0 {
		t.Fatalf("inUse after release = %d", a.InUse())
	}
	if a.Peak() != 60 {
		t.Fatalf("peak = %d, want 60", a.Peak())
	}
}

func TestAdmissionRejects(t *testing.T) {
	a := NewAdmission(100, 1)
	if _, err := a.Acquire(context.Background(), 101, time.Second); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized: %v", err)
	}
	if _, err := a.Acquire(context.Background(), 100, time.Second); err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue; the second overflows it.
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), 10, 5*time.Second)
		done <- err
	}()
	waitFor(t, "first waiter queued", func() bool { return a.QueueDepth() == 1 })
	if _, err := a.Acquire(context.Background(), 10, time.Second); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue overflow: %v", err)
	}
	a.Release(100)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.Release(10)
}

func TestAdmissionWaitDeadline(t *testing.T) {
	a := NewAdmission(10, 4)
	if _, err := a.Acquire(context.Background(), 10, time.Second); err != nil {
		t.Fatal(err)
	}
	wait, err := a.Acquire(context.Background(), 5, 20*time.Millisecond)
	if !errors.Is(err, ErrWaitDeadline) {
		t.Fatalf("deadline: %v", err)
	}
	if wait < 20*time.Millisecond {
		t.Fatalf("reported wait %v shorter than the deadline", wait)
	}
	if a.QueueDepth() != 0 {
		t.Fatalf("expired waiter still queued (depth %d)", a.QueueDepth())
	}
	a.Release(10)
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(10, 4)
	if _, err := a.Acquire(context.Background(), 10, time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 5, 5*time.Second)
		done <- err
	}()
	waitFor(t, "waiter queued", func() bool { return a.QueueDepth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	if a.QueueDepth() != 0 {
		t.Fatal("cancelled waiter still queued")
	}
	a.Release(10)
	if a.InUse() != 0 {
		t.Fatalf("inUse = %d after full release", a.InUse())
	}
}

// TestAdmissionFIFO: a small request that fits may not overtake a large
// one queued ahead of it.
func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(10, 4)
	if _, err := a.Acquire(context.Background(), 8, time.Second); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	grant := func(id int) {
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // large request, queued first
		defer wg.Done()
		if _, err := a.Acquire(context.Background(), 8, 5*time.Second); err != nil {
			t.Errorf("large: %v", err)
			return
		}
		grant(1)
		a.Release(8)
	}()
	waitFor(t, "large queued", func() bool { return a.QueueDepth() == 1 })
	go func() { // small request that would fit right now (2 <= 10-8) but
		// cannot ride along once the large head is granted (8+3 > 10)
		defer wg.Done()
		if _, err := a.Acquire(context.Background(), 3, 5*time.Second); err != nil {
			t.Errorf("small: %v", err)
			return
		}
		grant(2)
		a.Release(3)
	}()
	waitFor(t, "small queued", func() bool { return a.QueueDepth() == 2 })
	a.Release(8)
	wg.Wait()
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("grant order %v, want large (1) first", order)
	}
	if a.Peak() > 10 {
		t.Fatalf("peak %d exceeded capacity", a.Peak())
	}
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(10, 4)
	if _, err := a.Acquire(context.Background(), 10, time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(context.Background(), 5, 5*time.Second)
		done <- err
	}()
	waitFor(t, "waiter queued", func() bool { return a.QueueDepth() == 1 })
	a.Drain()
	if err := <-done; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter on drain: %v", err)
	}
	if _, err := a.Acquire(context.Background(), 1, time.Second); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire: %v", err)
	}
}

// TestAdmissionPeakBound hammers the controller and asserts the charged
// total never exceeds capacity.
func TestAdmissionPeakBound(t *testing.T) {
	const capacity = 64
	a := NewAdmission(capacity, 128)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(cost int64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := a.Acquire(context.Background(), cost, 5*time.Second); err != nil {
					t.Errorf("acquire(%d): %v", cost, err)
					return
				}
				a.Release(cost)
			}
		}(int64(1 + i%7*9))
	}
	wg.Wait()
	if a.Peak() > capacity {
		t.Fatalf("peak %d exceeded capacity %d", a.Peak(), capacity)
	}
	if a.InUse() != 0 {
		t.Fatalf("inUse = %d after all releases", a.InUse())
	}
}
