package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission errors, mapped to HTTP statuses by the handlers (429 for
// transient overload the client should retry, 503 for requests this
// configuration can never serve or a draining server).
var (
	// ErrTooLarge: the request's sample cost exceeds the whole budget, so
	// waiting would never help.
	ErrTooLarge = errors.New("server: request exceeds admission budget")
	// ErrQueueFull: the FIFO wait queue is at capacity.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrWaitDeadline: the request waited its full queue deadline without
	// the budget freeing up.
	ErrWaitDeadline = errors.New("server: admission wait deadline exceeded")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("server: draining, not admitting work")
)

// waiter is one queued acquisition. ready is closed exactly once, with
// err set first (nil = granted; the cost is already charged).
type waiter struct {
	cost  int64
	err   error
	ready chan struct{}
}

// Admission is the service's bounded in-flight-samples budget, shared
// across requests. Each request acquires its worst-case in-flight sample
// count before touching the engine and releases it when done; requests
// that do not fit wait in a strict FIFO queue (no overtaking — a small
// request cannot starve a large one) bounded in length and wait time.
//
// The budget is a memory bound in disguise: one admitted sample is one
// float64 held in a chunk-worker arena, so capacity x 8 bytes caps the
// engines' aggregate arena footprint.
type Admission struct {
	mu       sync.Mutex
	capacity int64
	maxQueue int
	inUse    int64
	peak     int64
	queue    []*waiter
	draining bool

	// onChange, when non-nil, observes (inUse, queueDepth) after every
	// state transition, under the lock — keep it fast (gauge stores).
	onChange func(inUse int64, queueDepth int)

	// reclaim, when non-nil, is asked — outside the lock — to free up to
	// need samples when an Acquire does not fit. The decoded-slab cache
	// registers its Shed here: under admission pressure, cold cached
	// slabs yield their budget to in-flight decodes before anyone queues.
	reclaim func(need int64) int64
}

// NewAdmission builds a controller with the given sample capacity and
// maximum queue length.
func NewAdmission(capacity int64, maxQueue int) *Admission {
	if capacity <= 0 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{capacity: capacity, maxQueue: maxQueue}
}

func (a *Admission) notifyLocked() {
	if a.onChange != nil {
		a.onChange(a.inUse, len(a.queue))
	}
}

func (a *Admission) grantLocked(cost int64) {
	a.inUse += cost
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
}

// SetReclaimer registers the shed callback Acquire invokes (outside the
// lock) before queueing a request that does not fit.
func (a *Admission) SetReclaimer(f func(need int64) int64) {
	a.mu.Lock()
	a.reclaim = f
	a.mu.Unlock()
}

// TryAcquire charges cost without waiting. It succeeds only when the
// budget fits right now and nobody is queued — a background consumer
// (the decoded-slab cache) must never overtake waiting requests. The
// charge is returned with Release, like any other.
func (a *Admission) TryAcquire(cost int64) bool {
	if cost <= 0 {
		cost = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining || cost > a.capacity || len(a.queue) > 0 || a.inUse+cost > a.capacity {
		return false
	}
	a.grantLocked(cost)
	a.notifyLocked()
	return true
}

// Acquire charges cost samples against the budget, waiting in FIFO order
// up to maxWait if the budget is currently exhausted. It returns the time
// spent queued and an admission error (nil on success). ctx abandons the
// wait early (client gone). When a reclaimer is registered, a request
// that does not fit first asks it to shed (cache residency yields to
// in-flight work) and retries once before queueing.
func (a *Admission) Acquire(ctx context.Context, cost int64, maxWait time.Duration) (time.Duration, error) {
	if cost <= 0 {
		cost = 1
	}
	var w *waiter
	reclaimed := false
	for w == nil {
		a.mu.Lock()
		switch {
		case a.draining:
			a.mu.Unlock()
			return 0, ErrDraining
		case cost > a.capacity:
			a.mu.Unlock()
			return 0, ErrTooLarge
		case len(a.queue) == 0 && a.inUse+cost <= a.capacity:
			a.grantLocked(cost)
			a.notifyLocked()
			a.mu.Unlock()
			return 0, nil
		}
		if rec := a.reclaim; rec != nil && !reclaimed {
			need := a.inUse + cost - a.capacity
			if need < cost {
				// A non-empty queue can block us with budget nominally
				// free; shed a full cost's worth so the FIFO drains.
				need = cost
			}
			a.mu.Unlock()
			reclaimed = true
			rec(need)
			continue
		}
		if len(a.queue) >= a.maxQueue {
			a.mu.Unlock()
			return 0, ErrQueueFull
		}
		w = &waiter{cost: cost, ready: make(chan struct{})}
		a.queue = append(a.queue, w)
		a.notifyLocked()
		a.mu.Unlock()
	}

	start := time.Now()
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return time.Since(start), w.err
	case <-timer.C:
		if a.abandon(w) {
			return time.Since(start), ErrWaitDeadline
		}
		// Granted (or rejected) while the timer fired: honor the outcome.
		<-w.ready
		return time.Since(start), w.err
	case <-ctx.Done():
		if a.abandon(w) {
			return time.Since(start), ctx.Err()
		}
		<-w.ready
		if w.err == nil {
			// Granted concurrently with the cancellation; give it back.
			a.Release(cost)
		}
		return time.Since(start), ctx.Err()
	}
}

// abandon removes w from the queue if it is still waiting. A false return
// means the outcome is already decided (w.ready closed or closing).
func (a *Admission) abandon(w *waiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.notifyLocked()
			return true
		}
	}
	return false
}

// Release returns cost samples to the budget and grants queued waiters in
// FIFO order as far as the freed budget reaches.
func (a *Admission) Release(cost int64) {
	a.mu.Lock()
	a.inUse -= cost
	for len(a.queue) > 0 {
		head := a.queue[0]
		if a.inUse+head.cost > a.capacity {
			break // strict FIFO: nobody overtakes the head
		}
		a.queue = a.queue[1:]
		a.grantLocked(head.cost)
		close(head.ready)
	}
	a.notifyLocked()
	a.mu.Unlock()
}

// Drain stops admitting: every queued waiter is rejected with ErrDraining
// and every future Acquire fails fast. In-flight work is unaffected.
func (a *Admission) Drain() {
	a.mu.Lock()
	a.draining = true
	for _, w := range a.queue {
		w.err = ErrDraining
		close(w.ready)
	}
	a.queue = nil
	a.notifyLocked()
	a.mu.Unlock()
}

// InUse returns the currently charged sample count.
func (a *Admission) InUse() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse
}

// Peak returns the high-water mark of charged samples — the witness the
// overload tests assert never exceeds the capacity.
func (a *Admission) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// QueueDepth returns the number of requests waiting.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Capacity returns the configured budget.
func (a *Admission) Capacity() int64 { return a.capacity }
