package server

// Degraded decompression e2e: a client that opts in via the salvage
// header receives a full-extent volume with damaged chunks filled, a
// "degraded" completion trailer naming the lost chunks, and the salvage
// counters move — all while the worker pool stays healthy for the next
// request.

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"strings"
	"testing"

	"sperr"
	"sperr/internal/rawio"
)

// damageFrame returns a copy of stream with one bit flipped inside the
// payload of frame idx, plus that chunk's index (== idx: frames are in
// container order).
func damageFrame(t *testing.T, stream []byte, idx int) []byte {
	t.Helper()
	info, err := sperr.Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	off := 36
	for i := 0; i < idx; i++ {
		off += 4 + info.FrameBytes[i] + 4
	}
	mut := bytes.Clone(stream)
	mut[off+4+info.FrameBytes[idx]/2] ^= 0x10
	return mut
}

func TestDegradedDecompress(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dims := [3]int{24, 17, 9}
	data := field(dims[0], dims[1], dims[2], 21)
	stream, _, err := sperr.CompressPWE(data, dims, testTol,
		&sperr.Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	mut := damageFrame(t, stream, 1)

	// Without the opt-in, the damaged stream must NOT silently succeed:
	// the status line or the completion trailer carries the failure.
	res, _ := postRaw(t, ts.URL+"/v1/decompress", mut)
	if res.StatusCode == 200 && res.Trailer.Get("X-Sperr-Status") == "ok" {
		t.Fatal("damaged stream decompressed with ok status and no opt-in")
	}

	// With the opt-in header, the response is 200, full extent, trailer
	// "degraded" with the exact skipped-chunk list.
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/decompress", bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Sperr-salvage", "1")
	hres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(hres.Body); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != 200 {
		t.Fatalf("degraded decompress status %d: %s", hres.StatusCode, body.Bytes())
	}
	if got := hres.Trailer.Get("X-Sperr-Status"); got != "degraded: skipped 1" {
		t.Fatalf("trailer %q, want %q", got, "degraded: skipped 1")
	}
	got, err := rawio.DecodeFloats(body.Bytes(), 8)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sperr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded body has %d samples, want the full %d", len(got), len(want))
	}

	// Chunk 1 of the 16^3 tiling of 24x17x9 covers x in [16,24): those
	// samples are NaN, every other sample matches the intact decode
	// bit-for-bit.
	rep, err := sperr.Audit(mut)
	if err != nil {
		t.Fatal(err)
	}
	if idx := rep.SkippedIndices(); len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("audit skipped %v, want [1]", idx)
	}
	c := rep.Chunks[1]
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				i := (z*dims[1]+y)*dims[0] + x
				inLost := x >= c.Origin[0] && x < c.Origin[0]+c.Dims.NX &&
					y >= c.Origin[1] && y < c.Origin[1]+c.Dims.NY &&
					z >= c.Origin[2] && z < c.Origin[2]+c.Dims.NZ
				if inLost {
					if !math.IsNaN(got[i]) {
						t.Fatalf("lost-chunk sample (%d,%d,%d) = %g, want NaN", x, y, z, got[i])
					}
				} else if got[i] != want[i] {
					t.Fatalf("intact sample (%d,%d,%d): %g vs %g", x, y, z, got[i], want[i])
				}
			}
		}
	}

	// Salvage counters moved.
	text := string(getBody(t, ts.URL+"/metrics"))
	for _, m := range []string{
		"sperrd_salvage_requests_total 1",
		"sperrd_salvage_degraded_total 1",
		"sperrd_salvage_chunks_recovered_total 3",
		"sperrd_salvage_chunks_lost_total 1",
	} {
		if !strings.Contains(text, m) {
			t.Errorf("/metrics missing %q", m)
		}
	}

	// The pool stays healthy: an intact stream round-trips normally and
	// the admission budget fully drains.
	res, rawOut := postRaw(t, ts.URL+"/v1/decompress?salvage=1", stream)
	if res.StatusCode != 200 || res.Trailer.Get("X-Sperr-Status") != "ok" {
		t.Fatalf("post-degraded decompress: status %d trailer %q",
			res.StatusCode, res.Trailer.Get("X-Sperr-Status"))
	}
	clean, err := rawio.DecodeFloats(rawOut, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != want[i] {
			t.Fatalf("post-degraded sample %d: %g vs %g", i, clean[i], want[i])
		}
	}
	waitFor(t, "budget drained", func() bool { return s.Admission().InUse() == 0 })
}

// TestDegradedFillZero exercises the fill parameter: zero-filled holes
// instead of NaN.
func TestDegradedFillZero(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dims := [3]int{24, 17, 9}
	data := field(dims[0], dims[1], dims[2], 22)
	stream, _, err := sperr.CompressPWE(data, dims, testTol,
		&sperr.Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	mut := damageFrame(t, stream, 2)

	res, body := postRaw(t, ts.URL+"/v1/decompress?salvage=1&fill=zero", mut)
	if res.StatusCode != 200 {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	if got := res.Trailer.Get("X-Sperr-Status"); got != "degraded: skipped 2" {
		t.Fatalf("trailer %q", got)
	}
	got, err := rawio.DecodeFloats(body, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sperr.Audit(mut)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Chunks[2]
	zeros := 0
	for z := c.Origin[2]; z < c.Origin[2]+c.Dims.NZ; z++ {
		for y := c.Origin[1]; y < c.Origin[1]+c.Dims.NY; y++ {
			for x := c.Origin[0]; x < c.Origin[0]+c.Dims.NX; x++ {
				v := got[(z*dims[1]+y)*dims[0]+x]
				if v != 0 {
					t.Fatalf("fill=zero sample (%d,%d,%d) = %g", x, y, z, v)
				}
				zeros++
			}
		}
	}
	if zeros != c.Dims.NX*c.Dims.NY*c.Dims.NZ {
		t.Fatalf("covered %d fill samples, want %d", zeros, c.Dims.NX*c.Dims.NY*c.Dims.NZ)
	}
}
