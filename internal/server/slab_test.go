package server

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"sperr/internal/cluster"
)

// TestRegionAssemblerOrdersBands feeds chunk∩region pieces to the
// assembler in a deliberately hostile order (reverse) over an
// odd-dimension region straddling chunk boundaries, and asserts the
// output is exactly the row-major region bytes.
func TestRegionAssemblerOrdersBands(t *testing.T) {
	volDims := [3]int{21, 13, 7}
	chunkDims := [3]int{8, 8, 4}
	origin := [3]int{3, 5, 1}
	dims := [3]int{15, 7, 6}

	// Synthetic volume: value = linear index, so any misplacement shows.
	value := func(x, y, z int) float64 {
		return float64((z*volDims[1]+y)*volDims[0] + x)
	}

	// Enumerate chunk boxes exactly as the engine tiles (z-major grid).
	var pieces []struct {
		o, d [3]int
		data []float64
	}
	for cz := 0; cz < volDims[2]; cz += chunkDims[2] {
		for cy := 0; cy < volDims[1]; cy += chunkDims[1] {
			for cx := 0; cx < volDims[0]; cx += chunkDims[0] {
				cd := [3]int{
					min(chunkDims[0], volDims[0]-cx),
					min(chunkDims[1], volDims[1]-cy),
					min(chunkDims[2], volDims[2]-cz),
				}
				o, d, ok := cluster.Intersect(origin, dims, [3]int{cx, cy, cz}, cd)
				if !ok {
					continue
				}
				data := make([]float64, d[0]*d[1]*d[2])
				for z := 0; z < d[2]; z++ {
					for y := 0; y < d[1]; y++ {
						for x := 0; x < d[0]; x++ {
							data[(z*d[1]+y)*d[0]+x] = value(o[0]+x, o[1]+y, o[2]+z)
						}
					}
				}
				pieces = append(pieces, struct {
					o, d [3]int
					data []float64
				}{o, d, data})
			}
		}
	}
	if len(pieces) < 4 {
		t.Fatalf("region only touches %d chunks; want a real straddle", len(pieces))
	}

	var out bytes.Buffer
	ra := newRegionAssembler(&out, origin, dims, volDims, chunkDims, 8)
	for i := len(pieces) - 1; i >= 0; i-- { // reverse order: nothing flushable until the end
		if err := ra.add(pieces[i].o, pieces[i].d, pieces[i].data); err != nil {
			t.Fatal(err)
		}
	}
	if err := ra.done(); err != nil {
		t.Fatal(err)
	}

	want := dims[0] * dims[1] * dims[2] * 8
	if out.Len() != want {
		t.Fatalf("assembled %d bytes, want %d", out.Len(), want)
	}
	raw := out.Bytes()
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				i := (z*dims[1]+y)*dims[0] + x
				got := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
				if want := value(origin[0]+x, origin[1]+y, origin[2]+z); got != want {
					t.Fatalf("sample (%d,%d,%d): got %v, want %v", x, y, z, got, want)
				}
			}
		}
	}
}

// TestRegionAssemblerDoneCatchesShortfall pins that a missing piece is
// an error, not silent truncation.
func TestRegionAssemblerDoneCatchesShortfall(t *testing.T) {
	var out bytes.Buffer
	ra := newRegionAssembler(&out, [3]int{0, 0, 0}, [3]int{16, 8, 8}, [3]int{16, 8, 8}, [3]int{8, 8, 8}, 8)
	data := make([]float64, 8*8*8)
	if err := ra.add([3]int{0, 0, 0}, [3]int{8, 8, 8}, data); err != nil {
		t.Fatal(err)
	}
	if err := ra.done(); err == nil {
		t.Fatal("done() accepted a half-assembled region")
	}
}
