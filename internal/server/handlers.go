package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"sperr"
	"sperr/internal/obs"
	"sperr/internal/rawio"
)

// param reads a request parameter from the query string, falling back to
// an X-Sperr-<name> header, so clients can pass everything either way.
func param(r *http.Request, name string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	return r.Header.Get("X-Sperr-" + name)
}

func paramFloat(r *http.Request, name string) (float64, error) {
	v := param(r, name)
	if v == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return f, nil
}

func paramInt(r *http.Request, name string) (int, error) {
	v := param(r, name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

func paramBool(r *http.Request, name string) bool {
	switch strings.ToLower(param(r, name)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// parseTriple parses "a,b,c" into three positive ints.
func parseTriple(s string) ([3]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("want nx,ny,nz, got %q", s)
	}
	var d [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return [3]int{}, fmt.Errorf("bad component %q", p)
		}
		d[i] = v
	}
	return d, nil
}

func badRequest(w *statusWriter, st *reqStats, err error) {
	st.err = err
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// widthOf maps the f32 parameter to a sample byte width.
func widthOf(r *http.Request) int {
	if paramBool(r, "f32") {
		return 4
	}
	return 8
}

// trailerStatus arms the X-Sperr-Status trailer on a streamed response:
// once the status line is out, mid-stream failures cannot change the
// code, so the trailer is the client's completion witness ("ok" or the
// error text).
func trailerStatus(w *statusWriter) func(error) {
	w.Header().Set("Trailer", "X-Sperr-Status")
	return func(err error) {
		if err != nil {
			w.Header().Set("X-Sperr-Status", "error: "+err.Error())
		} else {
			w.Header().Set("X-Sperr-Status", "ok")
		}
	}
}

// handleCompress streams raw little-endian floats from the request body
// through the streaming Encoder into the response as a container
// stream. Parameters (query or X-Sperr-* header): dims (required,
// "nx,ny,nz"); exactly one of tol / bpp / rmse; f32; chunk ("cx,cy,cz");
// workers; q (quantization factor); entropy; codec ("sperr", "sz",
// "zfp", "tthresh", "mgard", or "adaptive" for per-chunk selection —
// anything but sperr requires tol and yields a container-v3 stream).
func (s *Server) handleCompress(w *statusWriter, r *http.Request, st *reqStats) {
	dims, err := parseTriple(param(r, "dims"))
	if err != nil {
		badRequest(w, st, fmt.Errorf("dims: %w", err))
		return
	}
	tol, err1 := paramFloat(r, "tol")
	bpp, err2 := paramFloat(r, "bpp")
	rmse, err3 := paramFloat(r, "rmse")
	qf, err4 := paramFloat(r, "q")
	workersReq, err5 := paramInt(r, "workers")
	if err := errors.Join(err1, err2, err3, err4, err5); err != nil {
		badRequest(w, st, err)
		return
	}
	modes := 0
	for _, v := range []float64{tol, bpp, rmse} {
		if v > 0 {
			modes++
		}
	}
	if modes != 1 {
		badRequest(w, st, errors.New("exactly one of tol, bpp, rmse must be positive"))
		return
	}
	codecName := strings.ToLower(param(r, "codec"))
	if codecName != "" && codecName != "sperr" && !(tol > 0) {
		badRequest(w, st, fmt.Errorf("codec %s requires tol (PWE mode)", codecName))
		return
	}
	chunkDims := s.cfg.ChunkDims
	if c := param(r, "chunk"); c != "" {
		chunkDims, err = parseTriple(c)
		if err != nil {
			badRequest(w, st, fmt.Errorf("chunk: %w", err))
			return
		}
	}
	workers := s.effWorkers(workersReq)
	width := widthOf(r)

	release := s.admit(w, r, st, engineCost(dims, chunkDims, workers))
	if release == nil {
		return
	}
	defer release()

	opts := &sperr.Options{
		ChunkDims:  chunkDims,
		Workers:    workers,
		QFactor:    qf,
		Entropy:    paramBool(r, "entropy"),
		Instrument: s.chunkInstrument("compress"),
	}
	if codecName != "" && codecName != "adaptive" {
		opts.Codec = codecName
	}
	out := bufio.NewWriterSize(w, 256<<10)
	var enc *sperr.Encoder
	switch {
	case codecName == "adaptive":
		enc, err = sperr.NewEncoderAdaptive(out, dims, tol, opts)
	case tol > 0:
		enc, err = sperr.NewEncoderPWE(out, dims, tol, opts)
	case bpp > 0:
		enc, err = sperr.NewEncoderBPP(out, dims, bpp, opts)
	default:
		enc, err = sperr.NewEncoderRMSE(out, dims, rmse, opts)
	}
	if err != nil {
		badRequest(w, st, err)
		return
	}
	enc.SetContext(r.Context())

	finish := trailerStatus(w)
	w.Header().Set("Content-Type", "application/octet-stream")

	// Pump body -> encoder in bounded batches; peak memory is the engine's
	// in-flight chunk set plus this batch, never the volume.
	n := dims[0] * dims[1] * dims[2]
	fr, err := rawio.NewFloatReader(bufio.NewReaderSize(r.Body, 256<<10), width)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	batch := make([]float64, minInt(n, 1<<20))
	fed := 0
	for fed < n {
		k, rerr := fr.Read(batch[:minInt(len(batch), n-fed)])
		if k > 0 {
			if _, werr := enc.Write(batch[:k]); werr != nil {
				s.streamFail(w, r, st, finish, werr)
				enc.Close()
				return
			}
			fed += k
		}
		if rerr != nil {
			if fed < n {
				s.streamFail(w, r, st, finish,
					fmt.Errorf("body ended after %d of %d samples: %w", fed, n, rerr))
				enc.Close()
				return
			}
			break
		}
	}
	if err := enc.Close(); err != nil {
		s.streamFail(w, r, st, finish, err)
		return
	}
	if err := out.Flush(); err != nil {
		s.streamFail(w, r, st, finish, err)
		return
	}
	finish(nil)

	if stats := enc.Stats(); stats != nil {
		bytesIn := int64(stats.NumPoints) * int64(width)
		if stats.CompressedBytes > 0 {
			s.reg.Histogram("sperrd_compression_ratio", obs.DefRatioBuckets).
				Observe(float64(bytesIn) / float64(stats.CompressedBytes))
		}
		s.reg.Counter("sperrd_outliers_total").Add(int64(stats.NumOutliers))
		for name, count := range stats.CodecCounts {
			s.reg.Counter(`sperrd_codec_chunks_total{codec="` + name + `"}`).Add(int64(count))
		}
		s.reg.Gauge("sperrd_engine_peak_inflight_samples").RaiseTo(int64(enc.PeakInFlightSamples()))
	}
}

// streamFail records a mid-stream failure: if the status line is not out
// yet it becomes a 4xx/5xx; otherwise only the trailer and log carry it.
func (s *Server) streamFail(w *statusWriter, r *http.Request, st *reqStats, finish func(error), err error) {
	if r.Context().Err() != nil {
		st.canceled = true
		err = r.Context().Err()
	}
	st.err = err
	if w.status == 0 && w.bytes == 0 {
		code := http.StatusBadRequest
		if st.canceled {
			code = 499 // client closed request (nginx convention)
		}
		http.Error(w, err.Error(), code)
		return
	}
	finish(err)
}

// chunkInstrument feeds the engine's ordered per-chunk events into the
// metrics registry.
func (s *Server) chunkInstrument(dir string) func(sperr.ChunkEvent) {
	chunks := s.reg.Counter(`sperrd_chunks_total{endpoint="` + dir + `"}`)
	secs := s.reg.Histogram("sperrd_chunk_seconds", obs.DefLatencyBuckets)
	return func(e sperr.ChunkEvent) {
		chunks.Inc()
		secs.Observe(e.WallTime.Seconds())
	}
}

// handleDecompress streams a container from the request body through the
// streaming Decoder and writes the volume as raw little-endian floats in
// row-major order. Parameters: f32, workers, salvage, fill.
//
// With salvage=1 (query or X-Sperr-salvage header) the client opts into
// degraded decompression: damaged chunks are delivered filled (NaN, or
// the fill parameter: "zero" or any float) instead of failing the stream,
// and the X-Sperr-Status trailer reports "degraded: skipped i,j,..."
// naming the lost chunks. The response body keeps its full declared
// extent either way — a degraded volume is the same shape, with holes.
func (s *Server) handleDecompress(w *statusWriter, r *http.Request, st *reqStats) {
	workersReq, err := paramInt(r, "workers")
	if err != nil {
		badRequest(w, st, err)
		return
	}
	salvage := paramBool(r, "salvage")
	dec, err := sperr.NewDecoder(bufio.NewReaderSize(r.Body, 256<<10))
	if err != nil {
		badRequest(w, st, err)
		return
	}
	if salvage {
		// The slab assembler needs every chunk delivered to keep the
		// response body well-formed, so degraded serving always fills —
		// skip-chunk would leave holes in the byte stream itself.
		dec.SetErrorPolicy(sperr.FillChunk)
		fill, err := parseFill(r)
		if err != nil {
			badRequest(w, st, err)
			return
		}
		if !math.IsNaN(fill) { // the decoder's default fill is NaN
			dec.SetFillValue(fill)
		}
	}
	dims := dec.Dims()
	chunkDims := dec.ChunkDims()
	workers := s.effWorkers(workersReq)
	width := widthOf(r)

	release := s.admit(w, r, st, engineCost(dims, chunkDims, workers))
	if release == nil {
		return
	}
	defer release()

	dec.SetWorkers(workers)
	dec.SetContext(r.Context())

	finish := trailerStatus(w)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Sperr-Dims", fmt.Sprintf("%d,%d,%d", dims[0], dims[1], dims[2]))

	out := bufio.NewWriterSize(w, 256<<10)
	sa := newSlabAssembler(out, dims, chunkDims, width)
	err = dec.ForEachChunk(sa.add)
	if err == nil {
		err = sa.done()
	}
	if err == nil {
		err = out.Flush()
	}
	if err != nil {
		s.streamFail(w, r, st, finish, err)
		return
	}
	if salvage {
		s.reg.Counter("sperrd_salvage_requests_total").Inc()
		if rep := dec.SalvageReport(); rep != nil {
			s.reg.Counter("sperrd_salvage_chunks_recovered_total").Add(int64(rep.Recovered))
			s.reg.Counter("sperrd_salvage_chunks_lost_total").Add(int64(rep.Skipped))
			if rep.Degraded() {
				s.reg.Counter("sperrd_salvage_degraded_total").Inc()
				w.Header().Set("X-Sperr-Status", "degraded: skipped "+intList(rep.SkippedIndices()))
				s.reg.Gauge("sperrd_engine_peak_inflight_samples").RaiseTo(int64(dec.PeakInFlightSamples()))
				return
			}
		}
	}
	finish(nil)
	s.reg.Gauge("sperrd_engine_peak_inflight_samples").RaiseTo(int64(dec.PeakInFlightSamples()))
}

// intList renders chunk indices as "1,3,7" for the degraded trailer.
func intList(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

// readContainer buffers a container body (describe/region need random
// access to the index footer), bounded by MaxContainerBytes.
func (s *Server) readContainer(w *statusWriter, r *http.Request, st *reqStats) ([]byte, bool) {
	max := s.cfg.MaxContainerBytes
	body, err := io.ReadAll(io.LimitReader(r.Body, max+1))
	if err != nil {
		st.err = err
		if r.Context().Err() != nil {
			st.canceled = true
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if int64(len(body)) > max {
		st.err = fmt.Errorf("container exceeds %d-byte cap", max)
		http.Error(w, st.err.Error(), http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return body, true
}

// handleDescribe returns the container's StreamInfo as JSON without
// decoding any data (header + index footer only on v2).
func (s *Server) handleDescribe(w *statusWriter, r *http.Request, st *reqStats) {
	body, ok := s.readContainer(w, r, st)
	if !ok {
		return
	}
	info, err := sperr.Describe(body)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(info); err != nil {
		st.err = err
	}
}

// parseRegionSpec parses "x,y,z,nx,ny,nz" into an origin and an extent.
func parseRegionSpec(spec string) (origin, dims [3]int, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 6 {
		return origin, dims, fmt.Errorf("region must be x,y,z,nx,ny,nz, got %q", spec)
	}
	var vals [6]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || (i >= 3 && v <= 0) {
			return origin, dims, fmt.Errorf("bad region component %q", p)
		}
		vals[i] = v
	}
	return [3]int{vals[0], vals[1], vals[2]}, [3]int{vals[3], vals[4], vals[5]}, nil
}

// handleRegion decodes only the chunks intersecting the requested cutout
// (region=x,y,z,nx,ny,nz) and returns the region as raw floats.
// Parameters: region (required), f32, workers.
func (s *Server) handleRegion(w *statusWriter, r *http.Request, st *reqStats) {
	origin, rdims, err := parseRegionSpec(param(r, "region"))
	if err != nil {
		badRequest(w, st, err)
		return
	}
	workersReq, err := paramInt(r, "workers")
	if err != nil {
		badRequest(w, st, err)
		return
	}
	body, ok := s.readContainer(w, r, st)
	if !ok {
		return
	}
	info, err := sperr.Describe(body)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	workers := s.effWorkers(workersReq)
	width := widthOf(r)

	release := s.admit(w, r, st, engineCost(info.Dims, info.ChunkDims, workers))
	if release == nil {
		return
	}
	defer release()

	// The float32 path rides the same workers-aware decode as float64:
	// DecompressRegionWorkers under the hood, narrowed at serialization.
	data, err := sperr.DecompressRegionWorkers(body, origin, rdims, workers)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	raw, err := rawio.EncodeFloats(data, width)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Header().Set("X-Sperr-Dims", fmt.Sprintf("%d,%d,%d", rdims[0], rdims[1], rdims[2]))
	if _, err := w.Write(raw); err != nil {
		st.err = err
	}
}

// handleMetrics serves the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
