package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"sperr"
	"sperr/internal/rawio"
	"sperr/internal/store"
)

// goldenFixtures are the pinned containers (one v1, one v2) of the same
// 24x17x9 volume — the cache-equivalence tier runs over both.
var goldenFixtures = []struct{ name, path string }{
	{"v1", "../../testdata/golden_pwe_24x17x9.sperr"},
	{"v2", "../../testdata/golden_pwe_24x17x9_v2.sperr"},
}

// goldenSamples is the fixture volume's total sample count; the 16^3
// tiling splits it into 4 chunks (largest 16x16x9 = 2304 samples).
const goldenSamples = 24 * 17 * 9 // 3672

func readFixture(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newStoreServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	return newTestServer(t, cfg)
}

// do issues a method/URL/body request under the standard test deadline.
func do(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

// ingest PUTs a container and returns its content address.
func ingest(t *testing.T, ts *httptest.Server, container []byte, wantCode int) string {
	t.Helper()
	res, body := do(t, "PUT", ts.URL+"/v1/volumes", container)
	if res.StatusCode != wantCode {
		t.Fatalf("ingest status %d (%s), want %d", res.StatusCode, body, wantCode)
	}
	id := res.Header.Get("X-Sperr-Volume-Id")
	if id == "" {
		t.Fatal("ingest response missing X-Sperr-Volume-Id")
	}
	var meta store.Meta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatalf("ingest body not a manifest entry: %v", err)
	}
	if meta.ID != id {
		t.Fatalf("body id %s != header id %s", meta.ID, id)
	}
	return id
}

func cachedRegionURL(ts *httptest.Server, id string, origin, dims [3]int) string {
	return fmt.Sprintf("%s/v1/volumes/%s/region?region=%d,%d,%d,%d,%d,%d", ts.URL, id,
		origin[0], origin[1], origin[2], dims[0], dims[1], dims[2])
}

// uncachedRegion is the stateless baseline: POST /v1/region with the
// container body, the path that always decodes.
func uncachedRegion(t *testing.T, ts *httptest.Server, container []byte, origin, dims [3]int) []byte {
	t.Helper()
	url := fmt.Sprintf("%s/v1/region?region=%d,%d,%d,%d,%d,%d", ts.URL,
		origin[0], origin[1], origin[2], dims[0], dims[1], dims[2])
	res, body := postRaw(t, url, container)
	if res.StatusCode != 200 {
		t.Fatalf("uncached region status %d: %s", res.StatusCode, body)
	}
	return body
}

// TestCacheEquivalenceGolden is the acceptance tier: for both golden
// fixtures, the cached region path returns bytes identical to the
// uncached decode, the repeat request is a full cache hit, and the
// decode-stage instrumentation counter stays flat across the hit —
// zero chunk decodes on the hit path.
func TestCacheEquivalenceGolden(t *testing.T) {
	for _, fx := range goldenFixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			s, ts := newStoreServer(t, Config{})
			container := readFixture(t, fx.path)
			id := ingest(t, ts, container, http.StatusCreated)

			regions := []struct{ origin, dims [3]int }{
				{[3]int{0, 0, 0}, [3]int{24, 17, 9}},
				{[3]int{5, 4, 3}, [3]int{12, 8, 4}},
			}
			decodeCtr := s.Registry().Counter("sperrd_store_chunk_decodes_total")
			for _, rg := range regions {
				want := uncachedRegion(t, ts, container, rg.origin, rg.dims)

				res, got := do(t, "GET", cachedRegionURL(ts, id, rg.origin, rg.dims), nil)
				if res.StatusCode != 200 {
					t.Fatalf("cached region status %d: %s", res.StatusCode, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("first read differs from uncached decode (%d vs %d bytes)",
						len(got), len(want))
				}

				// The acceptance pin: the repeat request must not decode.
				before := decodeCtr.Value()
				res, got = do(t, "GET", cachedRegionURL(ts, id, rg.origin, rg.dims), nil)
				if res.StatusCode != 200 {
					t.Fatalf("repeat region status %d", res.StatusCode)
				}
				if hdr := res.Header.Get("X-Sperr-Cache"); hdr != "hit" {
					t.Fatalf("repeat read X-Sperr-Cache=%q, want hit", hdr)
				}
				if after := decodeCtr.Value(); after != before {
					t.Fatalf("decode counter moved %d -> %d across a cache hit", before, after)
				}
				if s.Store().Decodes() != before {
					t.Fatalf("store decode count %d != metric %d", s.Store().Decodes(), before)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("cache hit bytes differ from uncached decode")
				}
			}

			// Library-level cross-check: the served floats equal
			// sperr.DecompressRegion exactly.
			rg := regions[1]
			want, err := sperr.DecompressRegion(container, rg.origin, rg.dims)
			if err != nil {
				t.Fatal(err)
			}
			_, raw := do(t, "GET", cachedRegionURL(ts, id, rg.origin, rg.dims), nil)
			got, err := rawio.DecodeFloats(raw, 8)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sample %d: served %g, library %g", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCacheEquivalenceAfterEviction: with a cache that can hold one
// golden volume's chunks but not two, alternating whole-volume reads
// force evictions and re-decodes — and every re-decoded response must
// still be byte-identical to the uncached baseline.
func TestCacheEquivalenceAfterEviction(t *testing.T) {
	s, ts := newStoreServer(t, Config{
		CacheSamples: goldenSamples + 300, // one volume fits, two do not
	})
	origin, dims := [3]int{0, 0, 0}, [3]int{24, 17, 9}

	type vol struct {
		id   string
		want []byte
	}
	vols := make([]vol, len(goldenFixtures))
	for i, fx := range goldenFixtures {
		c := readFixture(t, fx.path)
		vols[i] = vol{
			id:   ingest(t, ts, c, http.StatusCreated),
			want: uncachedRegion(t, ts, c, origin, dims),
		}
	}

	for round := 0; round < 3; round++ {
		for i, v := range vols {
			res, got := do(t, "GET", cachedRegionURL(ts, v.id, origin, dims), nil)
			if res.StatusCode != 200 {
				t.Fatalf("round %d vol %d: status %d", round, i, res.StatusCode)
			}
			if !bytes.Equal(got, v.want) {
				t.Fatalf("round %d vol %d: bytes differ after eviction-forced re-decode", round, i)
			}
			// A whole-volume read of the other volume cannot be a full hit
			// while the cache only holds one volume's worth of slabs.
			if hdr := res.Header.Get("X-Sperr-Cache"); hdr == "hit" {
				t.Fatalf("round %d vol %d: impossible full hit", round, i)
			}
		}
	}
	if s.Store().Cache().Evictions() == 0 {
		t.Fatal("no evictions happened — cache cap was not binding")
	}
	// Round 0 decodes all 8 chunks (4 per volume); the later rounds must
	// re-decode evicted chunks, and residency never exceeds the cap.
	if got := s.Store().Decodes(); got <= 8 {
		t.Fatalf("decode count %d — evictions never forced a re-decode", got)
	}
	if res := s.Store().Cache().PeakResident(); res > goldenSamples+300 {
		t.Fatalf("peak residency %d exceeds cap %d", res, goldenSamples+300)
	}
}

// TestIngestIdempotentAndMetrics: re-PUT of the same container returns
// 200 (not 201) with the same address, and the store metrics reflect one
// resident volume and two ingest observations.
func TestIngestIdempotentAndMetrics(t *testing.T) {
	s, ts := newStoreServer(t, Config{})
	container := readFixture(t, goldenFixtures[1].path)

	id1 := ingest(t, ts, container, http.StatusCreated)
	id2 := ingest(t, ts, container, http.StatusOK)
	if id1 != id2 {
		t.Fatalf("idempotent re-ingest changed the address: %s vs %s", id1, id2)
	}
	if got := s.Registry().Gauge("sperrd_store_volumes").Value(); got != 1 {
		t.Fatalf("sperrd_store_volumes=%d, want 1", got)
	}
	if got := s.Registry().Counter("sperrd_store_ingests_total").Value(); got != 2 {
		t.Fatalf("sperrd_store_ingests_total=%d, want 2", got)
	}

	// The manifest endpoint serves geometry without touching data.
	res, body := do(t, "GET", ts.URL+"/v1/volumes/"+id1, nil)
	if res.StatusCode != 200 {
		t.Fatalf("volume meta status %d", res.StatusCode)
	}
	var meta store.Meta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Dims != [3]int{24, 17, 9} || meta.NumChunks != 4 || len(meta.Chunks) != 4 {
		t.Fatalf("meta geometry drifted: %+v", meta)
	}
}

// TestIngestRejectsCorrupt: a flipped payload byte is refused with 422
// and leaves no trace in the store.
func TestIngestRejectsCorrupt(t *testing.T) {
	s, ts := newStoreServer(t, Config{})
	container := readFixture(t, goldenFixtures[1].path)
	bad := append([]byte(nil), container...)
	bad[len(bad)/2] ^= 0x20

	res, body := do(t, "PUT", ts.URL+"/v1/volumes", bad)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt ingest status %d (%s), want 422", res.StatusCode, body)
	}
	if got := s.Registry().Counter("sperrd_store_ingest_rejected_total").Value(); got != 1 {
		t.Fatalf("sperrd_store_ingest_rejected_total=%d, want 1", got)
	}
	if s.Store().Len() != 0 {
		t.Fatal("rejected ingest left a resident volume")
	}
}

// TestVolumeLifecycleAndErrors: delete frees the volume, and every
// endpoint 404s on unknown or deleted addresses; a server without
// -store-dir refuses the family with 503.
func TestVolumeLifecycleAndErrors(t *testing.T) {
	_, ts := newStoreServer(t, Config{})
	container := readFixture(t, goldenFixtures[0].path)
	id := ingest(t, ts, container, http.StatusCreated)

	if res, _ := do(t, "DELETE", ts.URL+"/v1/volumes/"+id, nil); res.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", res.StatusCode)
	}
	for _, u := range []struct{ method, url string }{
		{"GET", ts.URL + "/v1/volumes/" + id},
		{"GET", cachedRegionURL(ts, id, [3]int{0, 0, 0}, [3]int{1, 1, 1})},
		{"DELETE", ts.URL + "/v1/volumes/" + id},
	} {
		if res, _ := do(t, u.method, u.url, nil); res.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s after delete: status %d, want 404", u.method, u.url, res.StatusCode)
		}
	}

	// Bad region specs are 400, not 404 or 500.
	id = ingest(t, ts, container, http.StatusCreated)
	for _, spec := range []string{"region=0,0,0,99,99,99", "region=1,2,3", "region=0,0,0,0,0,0"} {
		res, _ := do(t, "GET", ts.URL+"/v1/volumes/"+id+"/region?"+spec, nil)
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %q: status %d, want 400", spec, res.StatusCode)
		}
	}

	// Store disabled: the whole family answers 503.
	_, tsOff := newTestServer(t, Config{})
	res, _ := do(t, "PUT", tsOff.URL+"/v1/volumes", container)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled-store ingest status %d, want 503", res.StatusCode)
	}
}

// TestCacheShedsUnderPressure: with the cache holding most of the shared
// budget, an admitted compress that needs the room must reclaim it —
// cold slabs are shed, the request succeeds, and residency plus in-flight
// never exceed the budget.
func TestCacheShedsUnderPressure(t *testing.T) {
	dims := [3]int{32, 32, 16}
	chunk := [3]int{16, 16, 16}
	workers := 2
	cost := engineCost(dims, chunk, workers)
	s, ts := newStoreServer(t, Config{
		BudgetSamples: cost, // one compress fills the whole ceiling
		CacheSamples:  cost,
		QueueWait:     5 * time.Second,
		Workers:       workers,
		ChunkDims:     chunk,
	})

	// Warm the cache: the golden volume's slab now occupies budget.
	container := readFixture(t, goldenFixtures[1].path)
	id := ingest(t, ts, container, http.StatusCreated)
	if res, _ := do(t, "GET", cachedRegionURL(ts, id, [3]int{0, 0, 0}, [3]int{24, 17, 9}), nil); res.StatusCode != 200 {
		t.Fatalf("warmup status %d", res.StatusCode)
	}
	if s.Store().Cache().Resident() == 0 {
		t.Fatal("warmup cached nothing")
	}

	// A full-budget compress cannot fit next to the cache — the admission
	// reclaimer must shed the slab rather than time the request out.
	data := field(dims[0], dims[1], dims[2], 21)
	raw, _ := rawio.EncodeFloats(data, 8)
	res, body := postRaw(t, compressURL(ts.URL, dims), raw)
	if res.StatusCode != 200 {
		t.Fatalf("pressured compress status %d (%s): cache did not yield", res.StatusCode, body)
	}
	if s.Store().Cache().Evictions() == 0 {
		t.Fatal("compress succeeded without shedding — budget accounting is off")
	}
	if p, c := s.Admission().Peak(), s.Admission().Capacity(); p > c {
		t.Fatalf("admission peak %d exceeded capacity %d", p, c)
	}

	// The region path still works after the shed (it just re-decodes).
	want := uncachedRegion(t, ts, container, [3]int{0, 0, 0}, [3]int{24, 17, 9})
	res, got := do(t, "GET", cachedRegionURL(ts, id, [3]int{0, 0, 0}, [3]int{24, 17, 9}), nil)
	if res.StatusCode != 200 || !bytes.Equal(got, want) {
		t.Fatal("post-shed region read wrong")
	}
}
