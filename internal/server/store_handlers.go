package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sperr/internal/rawio"
	"sperr/internal/store"
)

// storeUnavailable answers requests against a disabled volume store.
func (s *Server) storeUnavailable(w *statusWriter, st *reqStats) {
	st.err = errors.New("server: volume store disabled (start sperrd with -store-dir)")
	http.Error(w, st.err.Error(), http.StatusServiceUnavailable)
}

// notFound answers a lookup for an unknown content address.
func notFound(w *statusWriter, st *reqStats, err error) {
	st.err = err
	http.Error(w, err.Error(), http.StatusNotFound)
}

// setStoreGauges refreshes the store-size gauges after a mutation.
func (s *Server) setStoreGauges() {
	s.reg.Gauge("sperrd_store_volumes").Set(int64(s.store.Len()))
	s.reg.Gauge("sperrd_store_disk_bytes").Set(s.store.TotalBytes())
}

// handleVolumePut ingests a container into the content-addressed store:
// the body is integrity-verified (frame checksums cross-checked against
// the v2 index footer), written to the compressed tier, and its manifest
// entry durably flushed. The response is the manifest entry as JSON, 201
// on first ingest and 200 on an idempotent re-ingest; the content
// address also rides the X-Sperr-Volume-Id header.
func (s *Server) handleVolumePut(w *statusWriter, r *http.Request, st *reqStats) {
	if s.store == nil {
		s.storeUnavailable(w, st)
		return
	}
	if s.cluster != nil {
		s.handleClusterPut(w, r, st)
		return
	}
	body, ok := s.readContainer(w, r, st)
	if !ok {
		return
	}
	meta, created, err := s.store.Put(body)
	if err != nil {
		st.err = err
		code := http.StatusBadRequest
		if errors.Is(err, store.ErrCorrupt) {
			code = http.StatusUnprocessableEntity
		}
		http.Error(w, err.Error(), code)
		return
	}
	s.setStoreGauges()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Sperr-Volume-Id", meta.ID)
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		st.err = err
	}
}

// handleVolumeGet returns a volume's manifest entry (no data decode, no
// disk read).
func (s *Server) handleVolumeGet(w *statusWriter, r *http.Request, st *reqStats) {
	if s.store == nil {
		s.storeUnavailable(w, st)
		return
	}
	meta, ok := s.store.Describe(r.PathValue("id"))
	if !ok {
		notFound(w, st, store.ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		st.err = err
	}
}

// handleVolumeDelete removes a volume from the store (manifest first,
// then blob, then cached slabs).
func (s *Server) handleVolumeDelete(w *statusWriter, r *http.Request, st *reqStats) {
	if s.store == nil {
		s.storeUnavailable(w, st)
		return
	}
	if s.cluster != nil {
		s.handleClusterDelete(w, r, st)
		return
	}
	err := s.store.Delete(r.PathValue("id"))
	switch {
	case errors.Is(err, store.ErrNotFound):
		notFound(w, st, err)
		return
	case err != nil:
		st.err = err
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.setStoreGauges()
	w.WriteHeader(http.StatusNoContent)
}

// handleVolumeRegion serves a cutout of an ingested volume from the
// two-tier store (region=x,y,z,nx,ny,nz, optional f32, workers). Chunks
// resident in the decoded cache are copied out with zero decode work;
// only missing intersecting frames are decoded (and offered to the
// cache). A fully cached read skips admission entirely — its memory is
// the cache's residency, already charged; a read with misses is admitted
// for its worst-case decode arena like any other decode. The
// X-Sperr-Cache header reports hit, partial or miss.
func (s *Server) handleVolumeRegion(w *statusWriter, r *http.Request, st *reqStats) {
	if s.store == nil {
		s.storeUnavailable(w, st)
		return
	}
	if s.cluster != nil {
		s.handleClusterRegion(w, r, st)
		return
	}
	id := r.PathValue("id")
	origin, rdims, err := parseRegionSpec(param(r, "region"))
	if err != nil {
		badRequest(w, st, err)
		return
	}
	workersReq, err := paramInt(r, "workers")
	if err != nil {
		badRequest(w, st, err)
		return
	}
	workers := s.effWorkers(workersReq)
	width := widthOf(r)

	plan, err := s.store.PlanRegion(id, origin, rdims)
	switch {
	case errors.Is(err, store.ErrNotFound):
		notFound(w, st, err)
		return
	case err != nil:
		badRequest(w, st, err)
		return
	}
	if plan.MissingChunks > 0 {
		cost := int64(min(workers, plan.MissingChunks)) * plan.MaxChunkSamples
		if cost > plan.MissingSamples {
			cost = plan.MissingSamples
		}
		release := s.admit(w, r, st, cost)
		if release == nil {
			return
		}
		defer release()
	}

	data, stats, err := s.store.Region(r.Context(), id, origin, rdims, workers)
	switch {
	case errors.Is(err, store.ErrNotFound): // deleted between plan and read
		notFound(w, st, err)
		return
	case err != nil:
		st.err = err
		if r.Context().Err() != nil {
			st.canceled = true
			http.Error(w, err.Error(), 499)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw, err := rawio.EncodeFloats(data, width)
	if err != nil {
		badRequest(w, st, err)
		return
	}
	outcome := "miss"
	switch {
	case stats.Cached():
		outcome = "hit"
	case stats.Hits > 0:
		outcome = "partial"
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.Header().Set("X-Sperr-Dims", fmt.Sprintf("%d,%d,%d", rdims[0], rdims[1], rdims[2]))
	w.Header().Set("X-Sperr-Cache", outcome)
	if _, err := w.Write(raw); err != nil {
		st.err = err
	}
}
