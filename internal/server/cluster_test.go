package server

// 3-node cluster e2e: real sperrd instances on real sockets, sharded
// ingest, scatter-gather reads pinned bit-identical to the single-node
// decode path, and peer-death degradation pinned to the fill policy
// (200 + degraded trailer, never a 500).

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sperr"
	"sperr/internal/rawio"
)

type clusterNode struct {
	id  string
	s   *Server
	ts  *httptest.Server
	url string
}

// newClusterNodes boots n sperrd instances wired into one roster. The
// listeners are created before the servers so every node's config can
// name every peer's URL.
func newClusterNodes(t *testing.T, n int, mutate func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	var roster []string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		roster = append(roster, fmt.Sprintf("node-%c=http://%s", 'a'+i, ln.Addr()))
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{
			StoreDir:    t.TempDir(),
			NodeID:      fmt.Sprintf("node-%c", 'a'+i),
			Peers:       roster,
			PeerTimeout: 5 * time.Second,
			HedgeAfter:  time.Second,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		nodes[i] = &clusterNode{id: cfg.NodeID, s: s, ts: ts, url: ts.URL}
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
	}
	return nodes
}

// clusterFixtures: the sliceable goldens (v1 has no footer to shard).
var clusterFixtures = []struct{ name, path string }{
	{"v2", "../../testdata/golden_pwe_24x17x9_v2.sperr"},
	{"v3", "../../testdata/golden_adaptive_48x32x32_v3.sperr"},
}

func getClusterRegion(t *testing.T, node *clusterNode, id, spec, extra string) (*http.Response, []byte) {
	t.Helper()
	return do(t, "GET", node.url+"/v1/volumes/"+id+"/region?region="+spec+extra, nil)
}

// TestClusterGoldenBitIdentical is the acceptance pin: a 3-node
// scatter-gather region read returns byte-for-byte what the single-node
// decode returns, on both golden fixtures, from every coordinator.
func TestClusterGoldenBitIdentical(t *testing.T) {
	nodes := newClusterNodes(t, 3, nil)
	for _, fx := range clusterFixtures {
		t.Run(fx.name, func(t *testing.T) {
			container := readFixture(t, fx.path)
			info, err := sperr.Describe(container)
			if err != nil {
				t.Fatal(err)
			}
			id := ingest(t, nodes[0].ts, container, http.StatusCreated)
			// Idempotent re-ingest through a different coordinator.
			if got := ingest(t, nodes[1].ts, container, http.StatusOK); got != id {
				t.Fatalf("re-ingest address %s != %s", got, id)
			}

			d := info.Dims
			regions := []struct{ o, rd [3]int }{
				{[3]int{0, 0, 0}, d}, // full volume
				{[3]int{d[0]/2 - 3, d[1]/2 - 3, d[2]/2 - 1}, [3]int{7, 6, 3}}, // cross-shard straddle
				{[3]int{d[0] - 1, d[1] - 1, d[2] - 1}, [3]int{1, 1, 1}},       // last voxel
			}
			for _, rg := range regions {
				want, err := sperr.DecompressRegionWorkers(container, rg.o, rg.rd, 2)
				if err != nil {
					t.Fatal(err)
				}
				wantRaw, err := rawio.EncodeFloats(want, 8)
				if err != nil {
					t.Fatal(err)
				}
				spec := fmt.Sprintf("%d,%d,%d,%d,%d,%d", rg.o[0], rg.o[1], rg.o[2], rg.rd[0], rg.rd[1], rg.rd[2])
				for _, node := range nodes {
					res, body := getClusterRegion(t, node, id, spec, "&workers=2")
					if res.StatusCode != http.StatusOK {
						t.Fatalf("node %s region %s: %d (%s)", node.id, spec, res.StatusCode, body)
					}
					if got := res.Header.Get("X-Sperr-Node"); got != node.id {
						t.Fatalf("X-Sperr-Node %q, want %q", got, node.id)
					}
					if tr := res.Trailer.Get("X-Sperr-Status"); tr != "ok" {
						t.Fatalf("node %s region %s trailer %q, want ok", node.id, spec, tr)
					}
					if string(body) != string(wantRaw) {
						t.Fatalf("node %s region %s: cluster bytes differ from single-node decode", node.id, spec)
					}
				}
			}

			// Every node holds a shard describing the full geometry, and
			// the per-peer request counters are visible on the coordinator.
			for _, node := range nodes {
				meta, ok := node.s.Store().Describe(id)
				if !ok {
					t.Fatalf("node %s has no shard", node.id)
				}
				if meta.NumChunks != info.NumChunks || meta.Owned == nil {
					t.Fatalf("node %s shard: chunks=%d owned=%v", node.id, meta.NumChunks, meta.Owned)
				}
			}
			res, metrics := do(t, "GET", nodes[0].url+"/metrics", nil)
			if res.StatusCode != http.StatusOK {
				t.Fatalf("metrics: %d", res.StatusCode)
			}
			if !strings.Contains(string(metrics), `sperrd_cluster_requests_total{peer="node-b",outcome="ok"}`) &&
				!strings.Contains(string(metrics), `sperrd_cluster_requests_total{peer="node-c",outcome="ok"}`) {
				t.Fatal("metrics missing per-peer cluster request counters")
			}
		})
	}
}

// TestClusterOddDimsStraddle pins scatter-gather merging on regions
// straddling chunk boundaries of an odd-dimension volume, in both f64
// and f32 widths.
func TestClusterOddDimsStraddle(t *testing.T) {
	dims := [3]int{21, 13, 7}
	field := make([]float64, dims[0]*dims[1]*dims[2])
	for i := range field {
		field[i] = math.Sin(0.05*float64(i)) + 0.25*math.Cos(0.23*float64(i))
	}
	container, _, err := sperr.CompressPWE(field, dims, 1e-3,
		&sperr.Options{ChunkDims: [3]int{8, 8, 4}})
	if err != nil {
		t.Fatal(err)
	}
	nodes := newClusterNodes(t, 3, nil)
	id := ingest(t, nodes[0].ts, container, http.StatusCreated)

	regions := []struct{ o, rd [3]int }{
		{[3]int{7, 7, 3}, [3]int{2, 2, 2}},   // corner of 8 chunks
		{[3]int{5, 6, 2}, [3]int{11, 5, 4}},  // straddles x, y, z boundaries
		{[3]int{16, 8, 4}, [3]int{5, 5, 3}},  // odd tail chunks
		{[3]int{0, 0, 0}, dims},              // everything
	}
	for _, rg := range regions {
		want, err := sperr.DecompressRegionWorkers(container, rg.o, rg.rd, 1)
		if err != nil {
			t.Fatal(err)
		}
		spec := fmt.Sprintf("%d,%d,%d,%d,%d,%d", rg.o[0], rg.o[1], rg.o[2], rg.rd[0], rg.rd[1], rg.rd[2])
		for _, width := range []int{8, 4} {
			wantRaw, err := rawio.EncodeFloats(want, width)
			if err != nil {
				t.Fatal(err)
			}
			extra := "&workers=2"
			if width == 4 {
				extra += "&f32=1"
			}
			for _, node := range nodes {
				res, body := getClusterRegion(t, node, id, spec, extra)
				if res.StatusCode != http.StatusOK {
					t.Fatalf("node %s region %s w%d: %d (%s)", node.id, spec, width, res.StatusCode, body)
				}
				if string(body) != string(wantRaw) {
					t.Fatalf("node %s region %s width %d: bytes differ from single-node path", node.id, spec, width)
				}
			}
		}
	}
}

// TestClusterPeerDeathDegrades is the fault acceptance pin: with a
// single replica per chunk, killing an owning peer mid-service yields a
// 200 with the salvage fill policy and the degraded trailer — never a
// 500 — and the loss is visible in the cluster metrics. (With the
// default 2 replicas the same fault is absorbed undegraded; see
// TestClusterFailoverSurvivesPeerDeath.)
func TestClusterPeerDeathDegrades(t *testing.T) {
	nodes := newClusterNodes(t, 3, func(i int, cfg *Config) {
		cfg.PeerTimeout = 500 * time.Millisecond
		cfg.HedgeAfter = 100 * time.Millisecond
		cfg.PeerRetries = 1
		cfg.Replicas = 1
	})
	container := readFixture(t, "../../testdata/golden_adaptive_48x32x32_v3.sperr")
	info, err := sperr.Describe(container)
	if err != nil {
		t.Fatal(err)
	}
	id := ingest(t, nodes[0].ts, container, http.StatusCreated)

	// Pick a victim that owns at least one chunk and is not the
	// coordinator (node 0).
	cl := nodes[0].s.Cluster()
	victim := -1
	victimChunks := make(map[int]bool)
	for ci := 0; ci < info.NumChunks; ci++ {
		owner := cl.Owner(id, ci)
		for i := 1; i < len(nodes); i++ {
			if owner == nodes[i].id {
				if victim < 0 {
					victim = i
				}
				if victim == i {
					victimChunks[ci] = true
				}
			}
		}
	}
	if victim < 0 {
		t.Fatalf("placement left nothing on remote peers (owned: %v)", victimChunks)
	}
	nodes[victim].ts.Close() // SIGKILL-equivalent: connections refused from here on

	spec := fmt.Sprintf("0,0,0,%d,%d,%d", info.Dims[0], info.Dims[1], info.Dims[2])
	res, body := getClusterRegion(t, nodes[0], id, spec, "&workers=2")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("degraded read answered %d, want 200 (never a 5xx): %s", res.StatusCode, body)
	}
	tr := res.Trailer.Get("X-Sperr-Status")
	if !strings.HasPrefix(tr, "degraded: skipped ") {
		t.Fatalf("trailer %q, want degraded: skipped ...", tr)
	}

	// The response keeps its full extent: lost chunks are NaN-filled,
	// surviving chunks are bit-identical to the single-node decode.
	want, err := sperr.DecompressRegionWorkers(container, [3]int{0, 0, 0}, info.Dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rawio.DecodeFloats(body, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded response has %d samples, want %d", len(got), len(want))
	}
	skipped := make(map[int]bool)
	list := strings.TrimPrefix(tr, "degraded: skipped ")
	if i := strings.IndexByte(list, ';'); i >= 0 {
		// "; unreachable <peers>" suffix names the dead peer(s).
		if !strings.Contains(list[i:], nodes[victim].id) {
			t.Fatalf("trailer %q does not name the killed peer %s", tr, nodes[victim].id)
		}
		list = list[:i]
	}
	for _, f := range strings.Split(list, ",") {
		var ci int
		fmt.Sscanf(f, "%d", &ci)
		skipped[ci] = true
		if !victimChunks[ci] {
			t.Fatalf("skipped chunk %d not owned by the killed peer", ci)
		}
	}
	chunkOf := func(x, y, z int) int {
		for i, c := range info.Chunks {
			if x >= c.Origin[0] && x < c.Origin[0]+c.Dims[0] &&
				y >= c.Origin[1] && y < c.Origin[1]+c.Dims[1] &&
				z >= c.Origin[2] && z < c.Origin[2]+c.Dims[2] {
				return i
			}
		}
		return -1
	}
	for k := range want {
		x := k % info.Dims[0]
		y := (k / info.Dims[0]) % info.Dims[1]
		z := k / (info.Dims[0] * info.Dims[1])
		if skipped[chunkOf(x, y, z)] {
			if !math.IsNaN(got[k]) {
				t.Fatalf("sample %d in a skipped chunk is %v, want NaN fill", k, got[k])
			}
		} else if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("sample %d in a surviving chunk differs from single-node decode", k)
		}
	}

	// The loss shows up in the metrics.
	_, metrics := do(t, "GET", nodes[0].url+"/metrics", nil)
	m := string(metrics)
	if !strings.Contains(m, "sperrd_cluster_degraded_total 1") {
		t.Fatal("metrics missing sperrd_cluster_degraded_total")
	}
	if !strings.Contains(m, `sperrd_cluster_requests_total{peer="`+nodes[victim].id+`",outcome="error"}`) &&
		!strings.Contains(m, `sperrd_cluster_requests_total{peer="`+nodes[victim].id+`",outcome="timeout"}`) {
		t.Fatal("metrics missing failed-peer outcome counter")
	}
	if !strings.Contains(m, "sperrd_cluster_filled_chunks_total") {
		t.Fatal("metrics missing filled-chunks counter")
	}
}

// TestClusterFailoverSurvivesPeerDeath pins the replication acceptance
// criterion end-to-end: with the default 2 replicas per chunk, killing
// a peer that primary-owns chunks leaves a full-volume read 200, NOT
// degraded, and byte-identical to the single-node decode — and the
// failover is visible in sperrd_replica_failover_chunks_total.
func TestClusterFailoverSurvivesPeerDeath(t *testing.T) {
	nodes := newClusterNodes(t, 3, func(i int, cfg *Config) {
		cfg.PeerTimeout = 500 * time.Millisecond
		cfg.HedgeAfter = 100 * time.Millisecond
		cfg.PeerRetries = 1
	})
	container := readFixture(t, "../../testdata/golden_adaptive_48x32x32_v3.sperr")
	info, err := sperr.Describe(container)
	if err != nil {
		t.Fatal(err)
	}
	id := ingest(t, nodes[0].ts, container, http.StatusCreated)

	// Victim: a non-coordinator peer that primary-owns at least one
	// chunk, so the read MUST fail over to a surviving replica.
	cl := nodes[0].s.Cluster()
	victim := -1
	for ci := 0; ci < info.NumChunks && victim < 0; ci++ {
		primary := cl.Owners(id, ci)[0]
		for i := 1; i < len(nodes); i++ {
			if primary == nodes[i].id {
				victim = i
			}
		}
	}
	if victim < 0 {
		t.Fatal("placement put every primary on the coordinator")
	}
	nodes[victim].ts.Close()

	want, err := sperr.DecompressRegionWorkers(container, [3]int{0, 0, 0}, info.Dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := rawio.EncodeFloats(want, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec := fmt.Sprintf("0,0,0,%d,%d,%d", info.Dims[0], info.Dims[1], info.Dims[2])
	res, body := getClusterRegion(t, nodes[0], id, spec, "&workers=2")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("failover read answered %d: %s", res.StatusCode, body)
	}
	if tr := res.Trailer.Get("X-Sperr-Status"); tr != "ok" {
		t.Fatalf("trailer %q, want ok (read must not degrade with a live replica)", tr)
	}
	if string(body) != string(wantRaw) {
		t.Fatal("failover read differs from single-node decode")
	}

	_, metrics := do(t, "GET", nodes[0].url+"/metrics", nil)
	m := string(metrics)
	if !strings.Contains(m, "sperrd_replica_failover_chunks_total") ||
		strings.Contains(m, "sperrd_replica_failover_chunks_total 0") {
		t.Fatal("metrics missing a non-zero sperrd_replica_failover_chunks_total")
	}
	if !strings.Contains(m, "sperrd_cluster_degraded_total 0") {
		t.Fatal("failover read must not count as degraded")
	}
}

// TestClusterDeleteFansOut pins cluster-wide delete: one DELETE removes
// the shard from every peer.
func TestClusterDeleteFansOut(t *testing.T) {
	nodes := newClusterNodes(t, 3, nil)
	container := readFixture(t, "../../testdata/golden_pwe_24x17x9_v2.sperr")
	id := ingest(t, nodes[0].ts, container, http.StatusCreated)

	res, body := do(t, "DELETE", nodes[1].url+"/v1/volumes/"+id, nil)
	if res.StatusCode != http.StatusNoContent {
		t.Fatalf("cluster delete: %d (%s)", res.StatusCode, body)
	}
	for _, node := range nodes {
		if _, ok := node.s.Store().Describe(id); ok {
			t.Fatalf("node %s still holds the shard", node.id)
		}
		res, _ := do(t, "GET", node.url+"/v1/volumes/"+id, nil)
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("node %s answers %d for deleted volume", node.id, res.StatusCode)
		}
	}
	res, _ = do(t, "DELETE", nodes[2].url+"/v1/volumes/"+id, nil)
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", res.StatusCode)
	}
}

// TestClusterRejectsUnshardable pins config and input validation: a v1
// container cannot be sharded (422), and cluster mode without a store
// or node id refuses to start.
func TestClusterRejectsUnshardable(t *testing.T) {
	nodes := newClusterNodes(t, 2, nil)
	v1 := readFixture(t, "../../testdata/golden_pwe_24x17x9.sperr")
	res, body := do(t, "PUT", nodes[0].url+"/v1/volumes", v1)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("v1 cluster ingest: %d (%s), want 422", res.StatusCode, body)
	}

	if _, err := New(Config{Peers: []string{"a=http://x", "b=http://y"}, NodeID: "a"}); err == nil {
		t.Fatal("cluster without store dir accepted")
	}
	if _, err := New(Config{Peers: []string{"a=http://x", "b=http://y"}, StoreDir: t.TempDir()}); err == nil {
		t.Fatal("cluster without node id accepted")
	}
	if _, err := New(Config{Peers: []string{"bogus"}, NodeID: "a", StoreDir: t.TempDir()}); err == nil {
		t.Fatal("malformed peer entry accepted")
	}
}
