package elias

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sperr/internal/bits"
)

func TestGammaKnownCodes(t *testing.T) {
	// gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4) = "00100".
	cases := []struct {
		v    uint64
		bits []bool
	}{
		{1, []bool{true}},
		{2, []bool{false, true, false}},
		{3, []bool{false, true, true}},
		{4, []bool{false, false, true, false, false}},
	}
	for _, c := range cases {
		w := bits.NewWriter(8)
		WriteGamma(w, c.v)
		if w.Len() != uint64(len(c.bits)) {
			t.Fatalf("gamma(%d): %d bits, want %d", c.v, w.Len(), len(c.bits))
		}
		r := bits.NewReader(w.Bytes())
		for i, want := range c.bits {
			if got := r.ReadBit(); got != want {
				t.Fatalf("gamma(%d) bit %d = %v, want %v", c.v, i, got, want)
			}
		}
	}
}

func TestGammaDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var values []uint64
	for i := 0; i < 2000; i++ {
		values = append(values, 1+uint64(rng.Intn(1<<20)))
	}
	values = append(values, 1, 2, 3, 1<<40, (1<<62)+12345)
	wg := bits.NewWriter(0)
	wd := bits.NewWriter(0)
	for _, v := range values {
		WriteGamma(wg, v)
		WriteDelta(wd, v)
	}
	rg := bits.NewReader(wg.Bytes())
	rd := bits.NewReader(wd.Bytes())
	for i, want := range values {
		g, err := ReadGamma(rg)
		if err != nil || g != want {
			t.Fatalf("gamma %d: got %d err %v, want %d", i, g, err, want)
		}
		d, err := ReadDelta(rd)
		if err != nil || d != want {
			t.Fatalf("delta %d: got %d err %v, want %d", i, d, err, want)
		}
	}
}

func TestDeltaShorterForLarge(t *testing.T) {
	// Delta beats gamma asymptotically.
	w1 := bits.NewWriter(0)
	w2 := bits.NewWriter(0)
	WriteGamma(w1, 1<<30)
	WriteDelta(w2, 1<<30)
	if w2.Len() >= w1.Len() {
		t.Errorf("delta (%d bits) should beat gamma (%d bits) at 2^30", w2.Len(), w1.Len())
	}
}

func TestZigZag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40)} {
		u := ZigZag(v)
		if u == 0 {
			t.Fatalf("ZigZag(%d) = 0; must be >= 1 for universal codes", v)
		}
		if got := UnZigZag(u); got != v {
			t.Fatalf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		w := bits.NewWriter(0)
		for _, v := range raw {
			WriteGamma(w, uint64(v)+1)
		}
		r := bits.NewReader(w.Bytes())
		for _, v := range raw {
			got, err := ReadGamma(r)
			if err != nil || got != uint64(v)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptInput(t *testing.T) {
	// A stream of all zeros never produces a gamma terminator.
	r := bits.NewReader(make([]byte, 16))
	r.SetBudget(64)
	if _, err := ReadGamma(r); err == nil {
		t.Error("all-zero stream should fail")
	}
}
