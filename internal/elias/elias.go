// Package elias implements Elias universal codes (gamma and delta; Elias
// 1975, the paper's reference [31]). Section II lists universal codes as
// the classic variable-length alternative for coding outlier correction
// values next to bitmap position coding; the ablation experiments use a
// gap+gamma outlier scheme built on this package to quantify that
// alternative against SPERR's unified coder.
package elias

import (
	"errors"
	"math/bits"

	ibits "sperr/internal/bits"
)

// ErrCorrupt reports an undecodable code.
var ErrCorrupt = errors.New("elias: corrupt stream")

// WriteGamma appends the Elias gamma code of v (v >= 1): floor(log2 v)
// zeros, then v's binary digits MSB-first.
func WriteGamma(w *ibits.Writer, v uint64) {
	if v == 0 {
		panic("elias: gamma requires v >= 1")
	}
	n := bits.Len64(v) - 1
	for i := 0; i < n; i++ {
		w.WriteBit(false)
	}
	for i := n; i >= 0; i-- {
		w.WriteBit(v&(1<<uint(i)) != 0)
	}
}

// ReadGamma decodes one gamma code.
func ReadGamma(r *ibits.Reader) (uint64, error) {
	n := 0
	for !r.ReadBit() {
		if r.Exhausted() {
			return 0, ErrCorrupt
		}
		n++
		if n > 64 {
			return 0, ErrCorrupt
		}
	}
	v := uint64(1)
	for i := 0; i < n; i++ {
		v <<= 1
		if r.ReadBit() {
			v |= 1
		}
		if r.Exhausted() {
			return 0, ErrCorrupt
		}
	}
	return v, nil
}

// WriteDelta appends the Elias delta code of v (v >= 1): gamma code of
// 1+floor(log2 v), then v's digits below the leading one.
func WriteDelta(w *ibits.Writer, v uint64) {
	if v == 0 {
		panic("elias: delta requires v >= 1")
	}
	n := bits.Len64(v) - 1
	WriteGamma(w, uint64(n)+1)
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(v&(1<<uint(i)) != 0)
	}
}

// ReadDelta decodes one delta code.
func ReadDelta(r *ibits.Reader) (uint64, error) {
	np1, err := ReadGamma(r)
	if err != nil {
		return 0, err
	}
	n := int(np1) - 1
	if n < 0 || n > 63 {
		return 0, ErrCorrupt
	}
	v := uint64(1)
	for i := 0; i < n; i++ {
		v <<= 1
		if r.ReadBit() {
			v |= 1
		}
		if r.Exhausted() {
			return 0, ErrCorrupt
		}
	}
	return v, nil
}

// ZigZag maps a signed integer to an unsigned one >= 1 for universal
// coding (0 -> 1, -1 -> 2, 1 -> 3, ...).
func ZigZag(v int64) uint64 {
	return uint64((v<<1)^(v>>63)) + 1
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	u--
	return int64(u>>1) ^ -int64(u&1)
}
