package sz

import (
	"sperr/internal/huffman"
	"sperr/internal/lossless"
	"sperr/internal/outlier"
)

// CompressQuantBins implements the SZ outlier-coding scheme the paper
// benchmarks in Figure 11 (the compressQuantBins tool of SZ's QCAT
// package): one quantization bin per data point — zero for inliers,
// nonzero integers for outlier corrections quantized to multiples of 2t —
// Huffman coded and then passed through the lossless back end.
func CompressQuantBins(bins []int64) []byte {
	return lossless.Compress(huffman.Encode(bins))
}

// DecompressQuantBins reverses CompressQuantBins.
func DecompressQuantBins(stream []byte) ([]int64, error) {
	raw, err := lossless.Decompress(stream)
	if err != nil {
		return nil, err
	}
	return huffman.Decode(raw)
}

// QuantizeOutliers converts a SPERR outlier list into SZ-style per-point
// quantization bins over a length-n array: bin = round(corr / (2t)),
// zero everywhere else (paper Section VI-E: "we first quantize the SPERR
// outlier correction values as multiples of the PWE tolerance; SZ encodes
// a correction value for every data point").
func QuantizeOutliers(n int, tol float64, outs []outlier.Outlier) []int64 {
	bins := make([]int64, n)
	for _, o := range outs {
		b := int64(0)
		if o.Corr >= 0 {
			b = int64(o.Corr/(2*tol) + 0.5)
		} else {
			b = -int64(-o.Corr/(2*tol) + 0.5)
		}
		if b == 0 {
			// An outlier always needs a nonzero correction to land back
			// inside the tolerance.
			if o.Corr >= 0 {
				b = 1
			} else {
				b = -1
			}
		}
		bins[o.Pos] = b
	}
	return bins
}
