// Package sz implements an SZ-family error-bounded lossy compressor as the
// prediction-based baseline of the paper's evaluation (Sections II and VI).
//
// Two predictors are provided, mirroring the two SZ generations the paper
// references:
//
//   - PredictorInterpolation (default, SZ3-style): multi-level interpolation
//     prediction — anchors on a coarse lattice, then level-by-level cubic
//     (falling back to linear) spline interpolation along each dimension,
//     as in "Optimizing error-bounded lossy compression for scientific data
//     by dynamic spline interpolation" (ICDE'21).
//   - PredictorLorenzo (SZ2-style): the classic 3D Lorenzo predictor.
//
// Prediction errors are quantized to integer multiples of 2t (t = the
// point-wise tolerance) and Huffman-coded together with zero-valued
// inliers; the Huffman output is then passed through the lossless back end
// (DEFLATE standing in for ZSTD), exactly the SZ pipeline described in
// Section VI-E. Values whose quantization bin overflows the bin range are
// stored verbatim ("unpredictable" literals). The decompressor re-runs the
// same prediction on reconstructed data, so the point-wise error is bounded
// by t by construction.
package sz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sperr/internal/grid"
	"sperr/internal/huffman"
	"sperr/internal/lossless"
)

// Predictor selects the prediction scheme.
type Predictor uint8

const (
	// PredictorInterpolation is the SZ3-style multi-level spline predictor.
	PredictorInterpolation Predictor = iota
	// PredictorLorenzo is the SZ2-style 3D Lorenzo predictor.
	PredictorLorenzo
)

// binRadius bounds quantization bins; SZ's default capacity is 65536 bins.
const binRadius = 32768

// literalBin marks unpredictable values stored verbatim.
const literalBin = binRadius + 1

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("sz: corrupt stream")

// Params controls compression.
type Params struct {
	// Tol is the absolute point-wise error bound (> 0).
	Tol float64
	// Predictor selects the prediction scheme.
	Predictor Predictor
}

// safeLen computes dims.Len with overflow checking: the extents arrive
// from the wire as three u32s whose product can overflow int.
func safeLen(d grid.Dims) (int, bool) {
	if !d.Valid() {
		return 0, false
	}
	xy := uint64(d.NX) * uint64(d.NY)
	if xy > math.MaxInt64/uint64(d.NZ) {
		return 0, false
	}
	return int(xy * uint64(d.NZ)), true
}

// quantizer carries shared state between compression and decompression:
// both sides run the identical traversal, the encoder quantizing
// prediction errors and the decoder consuming bins.
type quantizer struct {
	tol      float64
	orig     []float64 // encoder only
	dec      []float64 // reconstruction (both sides)
	bins     []int64   // encoder: appended; decoder: consumed
	literals []float64
	pos      int // decoder cursors
	litPos   int
	encoding bool
}

// visit processes one point: on the encoder side it quantizes
// orig[idx]-pred, on the decoder side it reconstructs dec[idx].
func (qz *quantizer) visit(idx int, pred float64) {
	if qz.encoding {
		err := qz.orig[idx] - pred
		bin := int64(math.Round(err / (2 * qz.tol)))
		rec := pred + float64(bin)*2*qz.tol
		if bin < -binRadius || bin > binRadius ||
			math.Abs(rec-qz.orig[idx]) > qz.tol || math.IsNaN(rec) || math.IsInf(rec, 0) {
			qz.bins = append(qz.bins, literalBin)
			qz.literals = append(qz.literals, qz.orig[idx])
			qz.dec[idx] = qz.orig[idx]
			return
		}
		qz.bins = append(qz.bins, bin)
		qz.dec[idx] = rec
		return
	}
	bin := qz.bins[qz.pos]
	qz.pos++
	if bin == literalBin {
		qz.dec[idx] = qz.literals[qz.litPos]
		qz.litPos++
		return
	}
	qz.dec[idx] = pred + float64(bin)*2*qz.tol
}

// Compress compresses data (row-major, extent dims) with the given params.
func Compress(data []float64, dims grid.Dims, p Params) ([]byte, error) {
	if !(p.Tol > 0) {
		return nil, errors.New("sz: tolerance must be positive")
	}
	if len(data) != dims.Len() {
		return nil, fmt.Errorf("sz: %d values for %v", len(data), dims)
	}
	qz := &quantizer{
		tol:      p.Tol,
		orig:     data,
		dec:      make([]float64, len(data)),
		encoding: true,
	}
	switch p.Predictor {
	case PredictorInterpolation:
		traverseInterpolation(qz, dims)
	case PredictorLorenzo:
		traverseLorenzo(qz, dims)
	default:
		return nil, fmt.Errorf("sz: unknown predictor %d", p.Predictor)
	}

	// Container: header | huffman(bins) | literals.
	var buf []byte
	buf = append(buf, byte(p.Predictor))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Tol))
	for _, v := range []int{dims.NX, dims.NY, dims.NZ} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	hb := huffman.Encode(qz.bins)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hb)))
	buf = append(buf, hb...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(qz.literals)))
	for _, v := range qz.literals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return lossless.Compress(buf), nil
}

// Decompress reverses Compress.
func Decompress(stream []byte) ([]float64, grid.Dims, error) {
	var dims grid.Dims
	buf, err := lossless.Decompress(stream)
	if err != nil {
		return nil, dims, err
	}
	const fixed = 1 + 8 + 12 + 8
	if len(buf) < fixed {
		return nil, dims, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	pred := Predictor(buf[0])
	tol := math.Float64frombits(binary.LittleEndian.Uint64(buf[1:]))
	dims = grid.Dims{
		NX: int(binary.LittleEndian.Uint32(buf[9:])),
		NY: int(binary.LittleEndian.Uint32(buf[13:])),
		NZ: int(binary.LittleEndian.Uint32(buf[17:])),
	}
	npts, ok := safeLen(dims)
	if !ok || !(tol > 0) || math.IsInf(tol, 0) {
		return nil, dims, fmt.Errorf("%w: invalid header", ErrCorrupt)
	}
	// Length fields are attacker-controlled: compare in uint64 so a forged
	// 64-bit value cannot wrap an int bound into a panicking slice index.
	off := fixed - 8 + 8
	hlen64 := binary.LittleEndian.Uint64(buf[21:])
	if hlen64 > uint64(len(buf)-off) {
		return nil, dims, fmt.Errorf("%w: bins truncated", ErrCorrupt)
	}
	hlen := int(hlen64)
	bins, err := huffman.Decode(buf[off : off+hlen])
	if err != nil {
		return nil, dims, err
	}
	off += hlen
	if off+8 > len(buf) {
		return nil, dims, fmt.Errorf("%w: literal count missing", ErrCorrupt)
	}
	nlit64 := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	if nlit64 > uint64(len(buf)-off)/8 {
		return nil, dims, fmt.Errorf("%w: literals truncated", ErrCorrupt)
	}
	nlit := int(nlit64)
	literals := make([]float64, nlit)
	for i := range literals {
		literals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8*i:]))
	}
	if len(bins) != npts {
		return nil, dims, fmt.Errorf("%w: %d bins for %d points", ErrCorrupt, len(bins), npts)
	}
	// The traversal must find exactly one stored literal per literal bin;
	// forged bins claiming more would otherwise run off the literal slice
	// mid-walk.
	wantLit := 0
	for _, b := range bins {
		if b == literalBin {
			wantLit++
		}
	}
	if wantLit != nlit {
		return nil, dims, fmt.Errorf("%w: %d literal bins for %d stored literals", ErrCorrupt, wantLit, nlit)
	}
	qz := &quantizer{
		tol:      tol,
		dec:      make([]float64, npts),
		bins:     bins,
		literals: literals,
	}
	switch pred {
	case PredictorInterpolation:
		traverseInterpolation(qz, dims)
	case PredictorLorenzo:
		traverseLorenzo(qz, dims)
	default:
		return nil, dims, fmt.Errorf("%w: unknown predictor %d", ErrCorrupt, pred)
	}
	if qz.litPos != len(literals) {
		return nil, dims, fmt.Errorf("%w: %d unused literals", ErrCorrupt, len(literals)-qz.litPos)
	}
	return qz.dec, dims, nil
}

// --- Lorenzo traversal -------------------------------------------------

// traverseLorenzo visits points in raw order predicting each from its
// already-processed neighbors with the 3D Lorenzo stencil.
func traverseLorenzo(qz *quantizer, d grid.Dims) {
	at := func(x, y, z int) float64 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return qz.dec[d.Index(x, y, z)]
	}
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				pred := at(x-1, y, z) + at(x, y-1, z) + at(x, y, z-1) -
					at(x-1, y-1, z) - at(x-1, y, z-1) - at(x, y-1, z-1) +
					at(x-1, y-1, z-1)
				qz.visit(d.Index(x, y, z), pred)
			}
		}
	}
}

// --- Interpolation traversal -------------------------------------------

// traverseInterpolation performs SZ3-style multi-level interpolation:
// anchors on the coarsest lattice are Lorenzo-predicted, then each level
// fills midpoints along x, y, z in turn with cubic (or linear) spline
// interpolation from the already-reconstructed lattice.
func traverseInterpolation(qz *quantizer, d grid.Dims) {
	maxDim := d.NX
	if d.NY > maxDim {
		maxDim = d.NY
	}
	if d.NZ > maxDim {
		maxDim = d.NZ
	}
	s0 := 1
	for s0*2 < maxDim {
		s0 *= 2
	}
	// Anchors: lattice with stride s0, Lorenzo-predicted on the lattice.
	at := func(x, y, z int) float64 {
		if x < 0 || y < 0 || z < 0 {
			return 0
		}
		return qz.dec[d.Index(x, y, z)]
	}
	for z := 0; z < d.NZ; z += s0 {
		for y := 0; y < d.NY; y += s0 {
			for x := 0; x < d.NX; x += s0 {
				pred := at(x-s0, y, z) + at(x, y-s0, z) + at(x, y, z-s0) -
					at(x-s0, y-s0, z) - at(x-s0, y, z-s0) - at(x, y-s0, z-s0) +
					at(x-s0, y-s0, z-s0)
				qz.visit(d.Index(x, y, z), pred)
			}
		}
	}
	// Levels: refine stride 2s -> s.
	for s := s0 / 2; s >= 1; s /= 2 {
		fillAxis(qz, d, s, 0)
		fillAxis(qz, d, s, 1)
		fillAxis(qz, d, s, 2)
	}
}

// fillAxis fills, at level stride s, the points whose coordinate along
// axis is an odd multiple of s while the other coordinates sit on the
// already-known lattice (2s on axes not yet refined this level, s on axes
// already refined).
func fillAxis(qz *quantizer, d grid.Dims, s, axis int) {
	// Strides of the known lattice for each axis at this sub-step.
	sx, sy, sz := 2*s, 2*s, 2*s
	switch axis {
	case 0:
		// refining x; y, z still on 2s lattice
	case 1:
		sx = s // x already refined
	case 2:
		sx, sy = s, s // x, y already refined
	}
	n := [3]int{d.NX, d.NY, d.NZ}
	step := [3]int{sx, sy, sz}
	step[axis] = 2 * s // iterate base points along the axis at 2s, fill base+s
	for z := 0; z < n[2]; z += step[2] {
		for y := 0; y < n[1]; y += step[1] {
			for x := 0; x < n[0]; x += step[0] {
				var c [3]int
				c[0], c[1], c[2] = x, y, z
				t := c[axis] + s
				if t >= n[axis] {
					continue
				}
				c2 := c
				c2[axis] = t
				pred := interpAlong(qz, d, c2, axis, s)
				qz.visit(d.Index(c2[0], c2[1], c2[2]), pred)
			}
		}
	}
}

// interpAlong predicts the value at point c (odd multiple of s on axis)
// from lattice neighbors along axis: cubic spline through -3s, -s, +s, +3s
// when all four exist, otherwise linear, otherwise nearest.
func interpAlong(qz *quantizer, d grid.Dims, c [3]int, axis, s int) float64 {
	n := [3]int{d.NX, d.NY, d.NZ}
	get := func(off int) (float64, bool) {
		p := c
		p[axis] += off
		if p[axis] < 0 || p[axis] >= n[axis] {
			return 0, false
		}
		return qz.dec[d.Index(p[0], p[1], p[2])], true
	}
	m1, okM1 := get(-s)
	p1, okP1 := get(s)
	m3, okM3 := get(-3 * s)
	p3, okP3 := get(3 * s)
	switch {
	case okM1 && okP1 && okM3 && okP3:
		// Cubic through the four lattice neighbors (Catmull-Rom midpoint).
		return (-m3 + 9*m1 + 9*p1 - p3) / 16
	case okM1 && okP1:
		return (m1 + p1) / 2
	case okM1:
		return m1
	case okP1:
		return p1
	default:
		return 0
	}
}
