package sz

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/outlier"
)

func smoothField(d grid.Dims, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = 40*math.Sin(0.2*float64(x))*math.Cos(0.17*float64(y))*
					math.Cos(0.13*float64(z)) + 0.1*rng.NormFloat64()
			}
		}
	}
	return data
}

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestErrorBoundBothPredictors(t *testing.T) {
	dims := []grid.Dims{
		grid.D3(32, 32, 32),
		grid.D3(17, 23, 9),
		grid.D2(64, 48),
		grid.D3(8, 8, 100),
	}
	for _, pred := range []Predictor{PredictorInterpolation, PredictorLorenzo} {
		for _, d := range dims {
			data := smoothField(d, int64(d.Len()))
			for _, tol := range []float64{1, 0.01, 1e-5} {
				stream, err := Compress(data, d, Params{Tol: tol, Predictor: pred})
				if err != nil {
					t.Fatalf("pred=%d %v tol=%g: %v", pred, d, tol, err)
				}
				rec, gotDims, err := Decompress(stream)
				if err != nil {
					t.Fatalf("pred=%d %v tol=%g: decode: %v", pred, d, tol, err)
				}
				if gotDims != d {
					t.Fatalf("dims %v, want %v", gotDims, d)
				}
				if e := maxErr(data, rec); e > tol*(1+1e-9) {
					t.Errorf("pred=%d %v tol=%g: max error %g", pred, d, tol, e)
				}
			}
		}
	}
}

func TestErrorBoundOnNoise(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = rng.NormFloat64() * math.Exp(3*rng.NormFloat64())
	}
	for _, pred := range []Predictor{PredictorInterpolation, PredictorLorenzo} {
		tol := 0.01
		stream, err := Compress(data, d, Params{Tol: tol, Predictor: pred})
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, rec); e > tol*(1+1e-9) {
			t.Errorf("pred=%d: noise max error %g", pred, e)
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 7)
	stream, err := Compress(data, d, Params{Tol: 0.01, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	bpp := float64(len(stream)*8) / float64(d.Len())
	if bpp > 16 {
		t.Errorf("smooth field used %g BPP; interpolation predictor ineffective", bpp)
	}
}

// The interpolation predictor should beat Lorenzo on smooth data at tight
// tolerances (the SZ3-over-SZ2 improvement the paper cites).
func TestInterpolationBeatsLorenzoOnSmooth(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = 100 * math.Sin(0.1*float64(x)) *
					math.Cos(0.08*float64(y)) * math.Cos(0.06*float64(z))
			}
		}
	}
	tol := 1e-4
	si, err := Compress(data, d, Params{Tol: tol, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := Compress(data, d, Params{Tol: tol, Predictor: PredictorLorenzo})
	if err != nil {
		t.Fatal(err)
	}
	if len(si) >= len(sl) {
		t.Errorf("interpolation %d bytes >= Lorenzo %d bytes on smooth data", len(si), len(sl))
	}
}

func TestConstantField(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = 3.14
	}
	stream, err := Compress(data, d, Params{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) > 2048 {
		t.Errorf("constant field used %d bytes", len(stream))
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > 1e-9 {
		t.Errorf("constant field error %g", e)
	}
}

func TestLiteralFallback(t *testing.T) {
	// Huge dynamic range forces bins out of range -> literals.
	d := grid.D2(16, 16)
	data := make([]float64, d.Len())
	rng := rand.New(rand.NewSource(5))
	for i := range data {
		data[i] = math.Exp(20 * rng.NormFloat64())
	}
	tol := 1e-10
	stream, err := Compress(data, d, Params{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > tol {
		t.Errorf("literal fallback failed: max error %g", e)
	}
}

func TestValidation(t *testing.T) {
	d := grid.D3(4, 4, 4)
	data := make([]float64, d.Len())
	if _, err := Compress(data, d, Params{Tol: 0}); err == nil {
		t.Error("zero tolerance should fail")
	}
	if _, err := Compress(data[:3], d, Params{Tol: 1}); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Error("garbage should fail")
	}
}

func TestQuantBinsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bins := make([]int64, 10000)
	for i := range bins {
		if rng.Float64() < 0.03 {
			bins[i] = int64(rng.Intn(9) - 4)
		}
	}
	stream := CompressQuantBins(bins)
	got, err := DecompressQuantBins(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bins) {
		t.Fatalf("len %d, want %d", len(got), len(bins))
	}
	for i := range bins {
		if got[i] != bins[i] {
			t.Fatalf("bin %d: %d != %d", i, got[i], bins[i])
		}
	}
}

func TestQuantizeOutliers(t *testing.T) {
	outs := []outlier.Outlier{
		{Pos: 2, Corr: 2.6},  // round(2.6/2) = 1
		{Pos: 5, Corr: -3.1}, // round(-3.1/2) = -2
		{Pos: 9, Corr: 1.01}, // rounds to 1 (never 0 for an outlier)
	}
	bins := QuantizeOutliers(12, 1.0, outs)
	if bins[2] != 1 || bins[5] != -2 || bins[9] != 1 {
		t.Fatalf("bins = %v", bins)
	}
	for i, b := range bins {
		if i != 2 && i != 5 && i != 9 && b != 0 {
			t.Fatalf("inlier bin %d = %d", i, b)
		}
	}
	// Bin-corrected value must land within tolerance.
	for _, o := range outs {
		rec := float64(bins[o.Pos]) * 2 * 1.0
		if math.Abs(rec-o.Corr) > 1.0 {
			t.Errorf("pos %d: bin correction %g vs %g exceeds tol", o.Pos, rec, o.Corr)
		}
	}
}

func BenchmarkCompressInterp32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, d, Params{Tol: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressLorenzo32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, d, Params{Tol: 0.01, Predictor: PredictorLorenzo}); err != nil {
			b.Fatal(err)
		}
	}
}
