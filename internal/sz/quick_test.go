package sz

// Property-based tests (testing/quick) on the SZ baseline's error bound.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sperr/internal/grid"
)

// Property: both predictors bound the point-wise error on arbitrary
// finite inputs and shapes.
func TestQuickErrorBound(t *testing.T) {
	f := func(seed int64, predRaw, tolExp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := grid.D3(2+r.Intn(12), 2+r.Intn(12), 2+r.Intn(12))
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = r.NormFloat64() * math.Exp(float64(r.Intn(6)))
		}
		pred := Predictor(predRaw % 2)
		tol := math.Exp2(float64(int(tolExp)%16 - 8))
		stream, err := Compress(data, d, Params{Tol: tol, Predictor: pred})
		if err != nil {
			return false
		}
		rec, gotDims, err := Decompress(stream)
		if err != nil || gotDims != d {
			return false
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > tol*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
