package lossless

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripCompressible(t *testing.T) {
	data := bytes.Repeat([]byte("scientific data compression "), 100)
	c := Compress(data)
	if len(c) >= len(data) {
		t.Errorf("compressible data did not shrink: %d -> %d", len(data), len(c))
	}
	got, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 4096)
	rng.Read(data)
	c := Compress(data)
	if len(c) > len(data)+1 {
		t.Errorf("incompressible data grew beyond store: %d -> %d", len(data), len(c))
	}
	got, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestEmpty(t *testing.T) {
	c := Compress(nil)
	got, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes, want 0", len(got))
	}
}

func TestCorrupt(t *testing.T) {
	if _, err := Decompress(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Decompress([]byte{0x77, 1, 2, 3}); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := Decompress([]byte{methodDeflate, 0xFF, 0xFF}); err == nil {
		t.Error("garbage deflate stream should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := Decompress(Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
