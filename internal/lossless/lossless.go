// Package lossless provides the final lossless compression stage of the
// SPERR pipeline. The paper uses ZSTD (Section V); this repository
// substitutes the standard library's DEFLATE (compress/flate), which plays
// the identical role — squeezing residual redundancy out of the
// concatenated SPECK and outlier bitstreams — with a compression ratio a
// few percent lower. See DESIGN.md, "Substitutions".
//
// Streams that do not benefit (already dense bitstreams often do not) are
// stored verbatim; a one-byte method prefix records which path was taken.
//
// DEFLATE coders are expensive to construct (tens of kilobytes of window
// and dictionary state), so both directions draw them from sync.Pools:
// steady-state chunk compression reuses a warmed coder instead of paying
// the construction cost — and its allocations — per chunk.
package lossless

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Method prefixes for the encoded container.
const (
	methodStore   = 0x00
	methodDeflate = 0x01
)

// ErrCorrupt reports an undecodable lossless container.
var ErrCorrupt = errors.New("lossless: corrupt container")

// writerPool holds warmed *flate.Writer instances (BestSpeed).
var writerPool = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// Unreachable: the level constant is valid.
		panic(err)
	}
	return w
}}

// readerPool holds warmed flate readers; flate guarantees its readers
// implement Resetter.
var readerPool = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// Compress returns data wrapped in a lossless container, deflated when it
// helps and stored verbatim otherwise.
func Compress(data []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(data)/2 + 64)
	buf.WriteByte(methodDeflate)
	w := writerPool.Get().(*flate.Writer)
	w.Reset(&buf)
	_, werr := w.Write(data)
	cerr := w.Close()
	writerPool.Put(w)
	if werr != nil || cerr != nil {
		return store(data)
	}
	if buf.Len() >= len(data)+1 {
		return store(data)
	}
	return buf.Bytes()
}

func store(data []byte) []byte {
	out := make([]byte, 1+len(data))
	out[0] = methodStore
	copy(out[1:], data)
	return out
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]byte, error) {
	out, err := DecompressInto(nil, data)
	return out, err
}

// DecompressInto reverses Compress, appending the payload to dst[:0] so a
// pooled buffer can absorb the output; it returns the (possibly grown)
// buffer. Pass nil to allocate fresh.
func DecompressInto(dst, data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	dst = dst[:0]
	switch data[0] {
	case methodStore:
		return append(dst, data[1:]...), nil
	case methodDeflate:
		r := readerPool.Get().(io.ReadCloser)
		if err := r.(flate.Resetter).Reset(bytes.NewReader(data[1:]), nil); err != nil {
			readerPool.Put(r)
			return nil, fmt.Errorf("lossless: inflate: %w", err)
		}
		out, err := readAppend(dst, r)
		readerPool.Put(r)
		if err != nil {
			return nil, fmt.Errorf("lossless: inflate: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown method %#x", ErrCorrupt, data[0])
	}
}

// DecompressPrefix reverses Compress but recovers at most n leading
// payload bytes, stopping the inflater there instead of draining the
// whole stream — the bounded-cost path for header-only inspection of a
// large compressed payload. A payload shorter than n is returned in full;
// the caller is expected to validate the length it needs.
func DecompressPrefix(data []byte, n int) ([]byte, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	if n <= 0 {
		return nil, nil
	}
	switch data[0] {
	case methodStore:
		p := data[1:]
		if len(p) > n {
			p = p[:n]
		}
		return append([]byte(nil), p...), nil
	case methodDeflate:
		r := readerPool.Get().(io.ReadCloser)
		if err := r.(flate.Resetter).Reset(bytes.NewReader(data[1:]), nil); err != nil {
			readerPool.Put(r)
			return nil, fmt.Errorf("lossless: inflate: %w", err)
		}
		out := make([]byte, n)
		m, err := io.ReadFull(r, out)
		readerPool.Put(r)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return out[:m], nil
		}
		if err != nil {
			return nil, fmt.Errorf("lossless: inflate: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown method %#x", ErrCorrupt, data[0])
	}
}

// readAppend reads r to EOF, appending to dst.
func readAppend(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}
