// Package lossless provides the final lossless compression stage of the
// SPERR pipeline. The paper uses ZSTD (Section V); this repository
// substitutes the standard library's DEFLATE (compress/flate), which plays
// the identical role — squeezing residual redundancy out of the
// concatenated SPECK and outlier bitstreams — with a compression ratio a
// few percent lower. See DESIGN.md, "Substitutions".
//
// Streams that do not benefit (already dense bitstreams often do not) are
// stored verbatim; a one-byte method prefix records which path was taken.
package lossless

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// Method prefixes for the encoded container.
const (
	methodStore   = 0x00
	methodDeflate = 0x01
)

// ErrCorrupt reports an undecodable lossless container.
var ErrCorrupt = errors.New("lossless: corrupt container")

// Compress returns data wrapped in a lossless container, deflated when it
// helps and stored verbatim otherwise.
func Compress(data []byte) []byte {
	var buf bytes.Buffer
	buf.WriteByte(methodDeflate)
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		// Only reachable with an invalid level constant; fall back to store.
		return store(data)
	}
	if _, err := w.Write(data); err != nil {
		return store(data)
	}
	if err := w.Close(); err != nil {
		return store(data)
	}
	if buf.Len() >= len(data)+1 {
		return store(data)
	}
	return buf.Bytes()
}

func store(data []byte) []byte {
	out := make([]byte, 1+len(data))
	out[0] = methodStore
	copy(out[1:], data)
	return out
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, ErrCorrupt
	}
	switch data[0] {
	case methodStore:
		out := make([]byte, len(data)-1)
		copy(out, data[1:])
		return out, nil
	case methodDeflate:
		r := flate.NewReader(bytes.NewReader(data[1:]))
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("lossless: inflate: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown method %#x", ErrCorrupt, data[0])
	}
}
