// Package bits provides bit-granular stream I/O for embedded coders.
//
// SPECK and the SPERR outlier coder emit decisions one bit at a time and
// must be able to stop mid-pass when a size budget is exhausted (the
// "embedded" property: any prefix of the stream is decodable). Writer and
// Reader therefore expose exact bit positions and budget-aware operations.
package bits

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBudget is returned (or signalled via Exhausted) when a budget-limited
// stream runs out of bits.
var ErrBudget = errors.New("bits: budget exhausted")

// Writer accumulates individual bits into a byte slice, LSB-first within
// each byte. Bits collect in a 64-bit accumulator and spill to the buffer
// a whole word at a time, so the per-bit hot path is two shifts and a
// branch taken once per 64 bits; buf is therefore always a whole number
// of little-endian words. The zero value is ready to use.
type Writer struct {
	buf  []byte
	n    uint64 // number of bits written
	cur  uint64 // partial word being filled
	fill uint   // bits used in cur (0..63)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	w := &Writer{}
	if sizeHint > 0 {
		w.buf = make([]byte, 0, (sizeHint+7)/8)
	}
	return w
}

// WriteBit appends one bit.
func (w *Writer) WriteBit(b bool) {
	if b {
		w.cur |= 1 << w.fill
	}
	w.fill++
	w.n++
	if w.fill == 64 {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, w.cur)
		w.cur = 0
		w.fill = 0
	}
}

// WriteBits appends the low n bits of v (n <= 64), least significant
// first. Whole words are emitted with a single append, so runs of
// refinement bits cost far less than n WriteBit calls.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (uint64(1) << n) - 1
	}
	w.n += uint64(n)
	w.cur |= v << w.fill
	if w.fill+n >= 64 {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, w.cur)
		// Shifts of 64 yield 0 in Go, so fill==0 with n==64 lands cur=0.
		w.cur = v >> (64 - w.fill)
		w.fill = w.fill + n - 64
	} else {
		w.fill += n
	}
}

// WriteZeros appends n zero bits. Long runs of insignificance decisions
// cost a memclr instead of n WriteBit calls.
func (w *Writer) WriteZeros(n int) {
	if n <= 0 {
		return
	}
	w.n += uint64(n)
	total := w.fill + uint(n)
	if total < 64 {
		w.fill = total
		return
	}
	// Zeros complete the partial word; the rest are whole zero words.
	w.buf = binary.LittleEndian.AppendUint64(w.buf, w.cur)
	w.cur = 0
	total -= 64
	if nb := int(total>>6) * 8; nb > 0 {
		l := len(w.buf)
		if cap(w.buf)-l >= nb {
			w.buf = w.buf[:l+nb]
		} else {
			w.buf = append(w.buf, make([]byte, nb)...)
		}
		z := w.buf[l:]
		for i := range z {
			z[i] = 0
		}
	}
	w.fill = total & 63
}

// WriteStream appends every bit written to src so far, preserving order,
// as if each had been passed to w.WriteBit individually. The source
// buffer is always whole little-endian words, so splicing moves 64 bits
// per step regardless of the destination's alignment. src is not
// modified.
func (w *Writer) WriteStream(src *Writer) {
	if src.n == 0 {
		return
	}
	if w.fill == 0 {
		// Word-aligned destination: a straight copy of src's whole words
		// plus adoption of its partial word.
		w.buf = append(w.buf, src.buf...)
		w.cur = src.cur
		w.fill = src.fill
		w.n += src.n
		return
	}
	b := src.buf
	for len(b) >= 8 {
		w.WriteBits(binary.LittleEndian.Uint64(b), 64)
		b = b[8:]
	}
	if src.fill > 0 {
		w.WriteBits(src.cur, src.fill)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() uint64 { return w.n }

// Bytes returns the stream padded with zero bits to a whole byte.
// The Writer remains usable; Bytes may be called repeatedly.
func (w *Writer) Bytes() []byte {
	nb := int((w.n + 7) / 8)
	out := make([]byte, len(w.buf), nb)
	copy(out, w.buf)
	for cur := w.cur; len(out) < nb; cur >>= 8 {
		out = append(out, byte(cur))
	}
	return out
}

// Reset truncates the writer to empty, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.n = 0
	w.cur = 0
	w.fill = 0
}

// Close pads the stream with zero bits to a whole byte and returns the
// writer's internal buffer without copying — the allocation-free
// counterpart of Bytes for single-consumer flows. The returned slice
// aliases the writer: it is valid only until the next Reset, and the
// writer must be Reset before any further writes.
func (w *Writer) Close() []byte {
	nb := int((w.n + 7) / 8)
	for cur := w.cur; len(w.buf) < nb; cur >>= 8 {
		w.buf = append(w.buf, byte(cur))
	}
	w.cur = 0
	w.fill = 0
	return w.buf
}

// Reset reinitializes the reader over data with the budget clamped to
// nbits, retaining no references to prior input.
func (r *Reader) Reset(data []byte, nbits uint64) {
	max := uint64(len(data)) * 8
	if nbits > max {
		nbits = max
	}
	*r = Reader{buf: data, budget: nbits}
}

// Reader consumes bits from a byte slice, LSB-first within each byte.
// A bit budget smaller than the underlying data may be imposed so that
// truncated (embedded) streams decode cleanly: once the budget is hit,
// ReadBit reports false and Exhausted() turns true, letting decoder loops
// unwind without error plumbing at every call site.
type Reader struct {
	buf    []byte
	pos    uint64 // next bit index
	budget uint64 // total bits readable
	over   bool   // attempted to read past budget
}

// NewReader returns a Reader over data with the budget set to all bits
// present in data.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data, budget: uint64(len(data)) * 8}
}

// NewReaderBits returns a Reader over data limited to nbits bits.
// If nbits exceeds the data length the budget is clamped.
func NewReaderBits(data []byte, nbits uint64) *Reader {
	r := NewReader(data)
	if nbits < r.budget {
		r.budget = nbits
	}
	return r
}

// SetBudget lowers (or raises, up to the data size) the readable bit count.
func (r *Reader) SetBudget(nbits uint64) {
	max := uint64(len(r.buf)) * 8
	if nbits > max {
		nbits = max
	}
	r.budget = nbits
}

// ReadBit returns the next bit. Past the budget it returns false and marks
// the reader exhausted.
func (r *Reader) ReadBit() bool {
	if r.pos >= r.budget {
		r.over = true
		return false
	}
	b := r.buf[r.pos>>3]&(1<<(r.pos&7)) != 0
	r.pos++
	return b
}

// ReadBits reads n bits (n <= 64) LSB-first and returns them as a uint64.
// If the budget runs out mid-read the reader is exhausted and the
// already-read low bits are returned. Reads that fit the budget extract
// whole bytes at a time.
func (r *Reader) ReadBits(n uint) uint64 {
	if n == 0 {
		return 0
	}
	if r.pos+uint64(n) > r.budget {
		// Budget boundary inside the read: fall back to per-bit reads so
		// exhaustion semantics stay exact.
		var v uint64
		for i := uint(0); i < n; i++ {
			if r.ReadBit() {
				v |= 1 << i
			}
			if r.over {
				break
			}
		}
		return v
	}
	pos := r.pos
	r.pos += uint64(n)
	var v uint64
	got := uint(0)
	for got < n {
		b := uint64(r.buf[pos>>3] >> (pos & 7))
		take := 8 - uint(pos&7)
		if take > n-got {
			take = n - got
			b &= (uint64(1) << take) - 1
		}
		v |= b << got
		got += take
		pos += uint64(take)
	}
	return v
}

// Exhausted reports whether a read past the budget was attempted.
func (r *Reader) Exhausted() bool { return r.over }

// Pos returns the number of bits consumed.
func (r *Reader) Pos() uint64 { return r.pos }

// Remaining returns the number of bits still readable.
func (r *Reader) Remaining() uint64 {
	if r.pos >= r.budget {
		return 0
	}
	return r.budget - r.pos
}

// String implements fmt.Stringer for debugging.
func (r *Reader) String() string {
	return fmt.Sprintf("bits.Reader{pos=%d budget=%d over=%v}", r.pos, r.budget, r.over)
}
