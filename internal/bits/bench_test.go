package bits

import "testing"

// BenchmarkBitsReadWrite measures the raw bit layer: single-bit writes,
// word writes (the refinement-pass fast path), and the matching reads.
func BenchmarkBitsReadWrite(b *testing.B) {
	const nbits = 1 << 20

	b.Run("WriteBit", func(b *testing.B) {
		w := NewWriter(nbits)
		b.SetBytes(nbits / 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			for j := 0; j < nbits; j++ {
				w.WriteBit(j&3 == 0)
			}
		}
	})

	b.Run("WriteBits64", func(b *testing.B) {
		w := NewWriter(nbits)
		b.SetBytes(nbits / 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Reset()
			for j := 0; j < nbits/64; j++ {
				w.WriteBits(0x9249249249249249, 64)
			}
		}
	})

	w := NewWriter(nbits)
	for j := 0; j < nbits; j++ {
		w.WriteBit(j&3 == 0)
	}
	stream := w.Bytes()

	b.Run("ReadBit", func(b *testing.B) {
		var r Reader
		b.SetBytes(nbits / 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(stream, nbits)
			ones := 0
			for j := 0; j < nbits; j++ {
				if r.ReadBit() {
					ones++
				}
			}
			if ones == 0 {
				b.Fatal("no bits set")
			}
		}
	})

	b.Run("ReadBits64", func(b *testing.B) {
		var r Reader
		b.SetBytes(nbits / 8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(stream, nbits)
			var acc uint64
			for j := 0; j < nbits/64; j++ {
				acc ^= r.ReadBits(64)
			}
			if r.Exhausted() {
				b.Fatal("exhausted")
			}
			_ = acc
		}
	})
}
