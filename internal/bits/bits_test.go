package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(64)
	pattern := []bool{true, false, true, true, false, false, true, false, true}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != uint64(len(pattern)) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
}

func TestWriteBitsReadBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0x3, 2)
	w.WriteBits(0x1FF, 9)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(32); got != 0xDEADBEEF {
		t.Errorf("ReadBits(32) = %#x, want 0xDEADBEEF", got)
	}
	if got := r.ReadBits(2); got != 0x3 {
		t.Errorf("ReadBits(2) = %#x, want 0x3", got)
	}
	if got := r.ReadBits(9); got != 0x1FF {
		t.Errorf("ReadBits(9) = %#x, want 0x1FF", got)
	}
	if r.Exhausted() {
		t.Error("reader exhausted prematurely")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	w := NewWriter(0)
	for i := 0; i < 20; i++ {
		w.WriteBit(true)
	}
	r := NewReaderBits(w.Bytes(), 5)
	for i := 0; i < 5; i++ {
		if !r.ReadBit() {
			t.Fatalf("bit %d should be true", i)
		}
	}
	if r.Exhausted() {
		t.Fatal("should not be exhausted at exactly the budget")
	}
	if r.ReadBit() {
		t.Fatal("read past budget should return false")
	}
	if !r.Exhausted() {
		t.Fatal("reader should be exhausted after reading past budget")
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestBudgetClamp(t *testing.T) {
	r := NewReaderBits([]byte{0xFF}, 1000)
	if r.budget != 8 {
		t.Fatalf("budget = %d, want clamped to 8", r.budget)
	}
	r.SetBudget(4)
	if r.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want 4", r.Remaining())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xAB, 8)
	w.WriteBit(true)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBit(true)
	r := NewReader(w.Bytes())
	if !r.ReadBit() {
		t.Fatal("bit after reset lost")
	}
}

func TestBytesIdempotent(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x5, 3)
	b1 := w.Bytes()
	b2 := w.Bytes()
	if len(b1) != 1 || len(b2) != 1 || b1[0] != b2[0] {
		t.Fatalf("Bytes not idempotent: %v vs %v", b1, b2)
	}
	w.WriteBits(0x7F, 7) // crosses a byte boundary
	b3 := w.Bytes()
	if len(b3) != 2 {
		t.Fatalf("len = %d, want 2", len(b3))
	}
	r := NewReader(b3)
	if got := r.ReadBits(3); got != 0x5 {
		t.Fatalf("first 3 bits = %#x, want 0x5", got)
	}
	if got := r.ReadBits(7); got != 0x7F {
		t.Fatalf("next 7 bits = %#x, want 0x7F", got)
	}
}

// Property: any sequence of bits round-trips exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, trim uint8) bool {
		nbits := uint64(len(data)) * 8
		if n := uint64(trim); n < nbits {
			nbits -= n
		}
		src := NewReader(data)
		w := NewWriter(int(nbits))
		for i := uint64(0); i < nbits; i++ {
			w.WriteBit(src.ReadBit())
		}
		r := NewReader(w.Bytes())
		chk := NewReader(data)
		for i := uint64(0); i < nbits; i++ {
			if r.ReadBit() != chk.ReadBit() {
				return false
			}
		}
		return w.Len() == nbits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteBits/ReadBits agree for arbitrary widths.
func TestQuickWriteBitsWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		w := NewWriter(0)
		type field struct {
			v uint64
			n uint
		}
		var fields []field
		for i := 0; i < 1+rng.Intn(10); i++ {
			n := uint(1 + rng.Intn(64))
			v := rng.Uint64()
			if n < 64 {
				v &= (1 << n) - 1
			}
			fields = append(fields, field{v, n})
			w.WriteBits(v, n)
		}
		r := NewReader(w.Bytes())
		for i, f := range fields {
			if got := r.ReadBits(f.n); got != f.v {
				t.Fatalf("iter %d field %d: got %#x want %#x (n=%d)", iter, i, got, f.v, f.n)
			}
		}
	}
}

func BenchmarkWriteBit(b *testing.B) {
	w := NewWriter(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.WriteBit(i&1 == 0)
	}
}

func BenchmarkReadBit(b *testing.B) {
	w := NewWriter(b.N)
	for i := 0; i < b.N; i++ {
		w.WriteBit(i&3 == 0)
	}
	data := w.Bytes()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		r.ReadBit()
	}
}

// The word-level WriteBits/ReadBits fast paths must be bit-identical to
// the per-bit reference at every alignment, width, and budget boundary.
func TestWordFastPathsMatchPerBit(t *testing.T) {
	rng := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 200; trial++ {
		// Random mixed write schedule: single bits and words of every width.
		type op struct {
			v uint64
			n uint
		}
		var ops []op
		total := uint(0)
		for len(ops) < 40 {
			n := uint(next()%65) // 0..64
			ops = append(ops, op{v: next(), n: n})
			total += n
		}
		ref := NewWriter(int(total))
		fast := NewWriter(int(total))
		for _, o := range ops {
			for i := uint(0); i < o.n; i++ { // per-bit reference
				ref.WriteBit(o.v&(1<<i) != 0)
			}
			fast.WriteBits(o.v, o.n)
		}
		if ref.Len() != fast.Len() {
			t.Fatalf("trial %d: len %d vs %d", trial, fast.Len(), ref.Len())
		}
		rb, fb := ref.Bytes(), fast.Bytes()
		if len(rb) != len(fb) {
			t.Fatalf("trial %d: bytes %d vs %d", trial, len(fb), len(rb))
		}
		for i := range rb {
			if rb[i] != fb[i] {
				t.Fatalf("trial %d: byte %d differs: %02x vs %02x", trial, i, fb[i], rb[i])
			}
		}

		// Read back with a budget that may cut a word mid-read.
		budget := next() % uint64(total+2)
		r1 := NewReaderBits(fb, budget)
		r2 := NewReaderBits(fb, budget)
		for _, o := range ops {
			var want uint64
			for i := uint(0); i < o.n; i++ {
				if r1.ReadBit() {
					want |= 1 << i
				}
				if r1.Exhausted() {
					break
				}
			}
			got := r2.ReadBits(o.n)
			if got != want {
				t.Fatalf("trial %d: ReadBits(%d)=%#x, per-bit %#x (budget %d, pos %d)",
					trial, o.n, got, want, budget, r2.Pos())
			}
			if r1.Exhausted() != r2.Exhausted() {
				t.Fatalf("trial %d: exhausted mismatch %v vs %v", trial, r2.Exhausted(), r1.Exhausted())
			}
			if r1.Exhausted() {
				break
			}
			if r1.Pos() != r2.Pos() {
				t.Fatalf("trial %d: pos %d vs %d", trial, r2.Pos(), r1.Pos())
			}
		}
	}
}
