// Package arith implements an adaptive binary arithmetic coder (an
// LZMA-style binary range coder with 11-bit adaptive probabilities). It is
// the substrate for the entropy-coded SPECK variant: the original SPECK
// paper (Pearlman et al. 2004) reports both a raw-bit and an
// arithmetic-coded version, and the reproduction offers the same choice as
// an ablation on top of the paper's raw-bit default.
package arith

// ProbBits is the probability resolution; probabilities live in
// (0, 1<<ProbBits).
const ProbBits = 11

// moveBits controls the adaptation rate (larger = slower).
const moveBits = 5

// Prob is an adaptive probability of the next bit being zero.
// NewProb starts at one half.
type Prob uint16

// NewProb returns an unbiased probability state.
func NewProb() Prob { return 1 << (ProbBits - 1) }

const topValue = 1 << 24

// Encoder is a binary range encoder. The zero value is NOT ready; use
// NewEncoder.
type Encoder struct {
	low      uint64
	rng      uint32
	cache    byte
	hasCache bool
	pending  int
	out      []byte
}

// NewEncoder returns an encoder accumulating into memory. The stream
// starts with one leading zero byte (the initial carry cache), which the
// decoder skips; carries propagate into it correctly.
func NewEncoder() *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, hasCache: true}
}

// EncodeBit codes one bit under the adaptive probability p, updating p.
func (e *Encoder) EncodeBit(p *Prob, bit bool) {
	bound := (e.rng >> ProbBits) * uint32(*p)
	if !bit {
		e.rng = bound
		*p += (1<<ProbBits - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		carry := byte(e.low >> 32)
		if e.hasCache {
			e.out = append(e.out, e.cache+carry)
		}
		for ; e.pending > 0; e.pending-- {
			e.out = append(e.out, 0xFF+carry)
		}
		e.cache = byte(e.low >> 24)
		e.hasCache = true
	} else {
		e.pending++
	}
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// Bytes flushes the coder and returns the complete stream. The encoder
// must not be used afterwards.
func (e *Encoder) Bytes() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Len returns the current output size in bytes (an upper estimate until
// Bytes flushes; the flush adds at most 5 bytes).
func (e *Encoder) Len() int { return len(e.out) }

// Reset returns the encoder to its initial state while retaining the
// output buffer's capacity, so a pooled encoder codes many streams
// without reallocating.
func (e *Encoder) Reset() {
	e.low = 0
	e.rng = 0xFFFFFFFF
	e.cache = 0
	e.hasCache = true
	e.pending = 0
	e.out = e.out[:0]
}

// Decoder is the matching binary range decoder. Reads past the end of the
// stream behave as zero bytes, so truncated streams decode without error
// (producing arbitrary bits, exactly like the raw-bit reader).
type Decoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
}

// NewDecoder initializes a decoder over data.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{rng: 0xFFFFFFFF, in: data}
	d.next() // the first output byte of the encoder is a leading zero
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *Decoder) next() byte {
	if d.pos >= len(d.in) {
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

// Reset reinitializes the decoder over data, the pooled counterpart of
// NewDecoder.
func (d *Decoder) Reset(data []byte) {
	*d = Decoder{rng: 0xFFFFFFFF, in: data}
	d.next()
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
}

// DecodeBit decodes one bit under the adaptive probability p, updating p.
func (d *Decoder) DecodeBit(p *Prob) bool {
	bound := (d.rng >> ProbBits) * uint32(*p)
	var bit bool
	if d.code < bound {
		d.rng = bound
		*p += (1<<ProbBits - *p) >> moveBits
	} else {
		bit = true
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
	}
	for d.rng < topValue {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}
