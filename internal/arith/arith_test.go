package arith

import (
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, bits []bool, contexts []int, nctx int) {
	t.Helper()
	enc := NewEncoder()
	probs := make([]Prob, nctx)
	for i := range probs {
		probs[i] = NewProb()
	}
	for i, b := range bits {
		enc.EncodeBit(&probs[contexts[i]], b)
	}
	data := enc.Bytes()
	dprobs := make([]Prob, nctx)
	for i := range dprobs {
		dprobs[i] = NewProb()
	}
	dec := NewDecoder(data)
	for i, want := range bits {
		if got := dec.DecodeBit(&dprobs[contexts[i]]); got != want {
			t.Fatalf("bit %d: got %v, want %v", i, got, want)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(5000)
		bits := make([]bool, n)
		ctx := make([]int, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
			ctx[i] = rng.Intn(4)
		}
		roundTrip(t, bits, ctx, 4)
	}
}

func TestRoundTripDegenerate(t *testing.T) {
	// All-zero and all-one streams of many lengths (carry propagation
	// edge cases live here).
	for _, n := range []int{0, 1, 2, 7, 8, 9, 100, 4097} {
		bits := make([]bool, n)
		ctx := make([]int, n)
		roundTrip(t, bits, ctx, 1)
		for i := range bits {
			bits[i] = true
		}
		roundTrip(t, bits, ctx, 1)
	}
}

func TestCompressionOfSkewedBits(t *testing.T) {
	// 2% ones: an adaptive coder must get well below 1 bit per symbol
	// (entropy is ~0.14 bits).
	rng := rand.New(rand.NewSource(2))
	n := 100000
	enc := NewEncoder()
	p := NewProb()
	ones := 0
	for i := 0; i < n; i++ {
		b := rng.Float64() < 0.02
		if b {
			ones++
		}
		enc.EncodeBit(&p, b)
	}
	data := enc.Bytes()
	bps := float64(len(data)*8) / float64(n)
	if bps > 0.25 {
		t.Errorf("skewed stream cost %.3f bits/symbol, want < 0.25", bps)
	}
	// And it must still round trip.
	dec := NewDecoder(data)
	dp := NewProb()
	rng2 := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		want := rng2.Float64() < 0.02
		if got := dec.DecodeBit(&dp); got != want {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestRandomBitsNearOneBPS(t *testing.T) {
	// Uniform random bits are incompressible: the coder must stay close
	// to 1 bit per symbol (small adaptive overhead allowed).
	rng := rand.New(rand.NewSource(3))
	n := 50000
	enc := NewEncoder()
	p := NewProb()
	for i := 0; i < n; i++ {
		enc.EncodeBit(&p, rng.Intn(2) == 1)
	}
	bps := float64(len(enc.Bytes())*8) / float64(n)
	if math.Abs(bps-1) > 0.05 {
		t.Errorf("random stream cost %.4f bits/symbol, want ~1", bps)
	}
}

func TestTruncatedStreamNoPanic(t *testing.T) {
	enc := NewEncoder()
	p := NewProb()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		enc.EncodeBit(&p, rng.Intn(2) == 1)
	}
	data := enc.Bytes()
	for cut := 0; cut <= len(data); cut += 3 {
		dec := NewDecoder(data[:cut])
		dp := NewProb()
		for i := 0; i < 1000; i++ {
			dec.DecodeBit(&dp) // must not panic
		}
	}
}

func TestProbAdaptation(t *testing.T) {
	p := NewProb()
	e := NewEncoder()
	for i := 0; i < 100; i++ {
		e.EncodeBit(&p, false)
	}
	if p <= NewProb() {
		t.Errorf("probability of zero should have grown: %d", p)
	}
	q := NewProb()
	for i := 0; i < 100; i++ {
		e.EncodeBit(&q, true)
	}
	if q >= NewProb() {
		t.Errorf("probability of zero should have shrunk: %d", q)
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	enc := NewEncoder()
	p := NewProb()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeBit(&p, i&7 == 0)
	}
}
