package outlier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"sperr/internal/bits"
	"sperr/internal/elias"
)

// This file implements the two straw-man outlier storage schemes the paper
// discusses and dismisses in Section II — explicit coordinate storage (as
// in CSR/CSC sparse-matrix formats) and bitmap position coding with
// variable-length values — so the ablation experiments can quantify how
// much the SPECK-inspired coder actually saves.

// errNaive reports an undecodable naive-format stream.
var errNaive = errors.New("outlier: corrupt naive stream")

// EncodeCSR stores outliers the way CSR/CSC sparse formats store nonzeros:
// an explicit position (varint delta) and an explicit value per entry.
// Values are quantized to multiples of 2*tol like SPERR corrections, so
// the comparison with Encode is rate-for-equal-quality.
func EncodeCSR(n int, tol float64, outliers []Outlier) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(outliers)))
	prev := 0
	for _, o := range sortedByPos(outliers) {
		buf = binary.AppendUvarint(buf, uint64(o.Pos-prev))
		prev = o.Pos
		buf = binary.AppendVarint(buf, quantCorr(o.Corr, tol))
	}
	return buf
}

// DecodeCSR reverses EncodeCSR.
func DecodeCSR(data []byte, tol float64) ([]Outlier, error) {
	off := 0
	count, m := binary.Uvarint(data)
	if m <= 0 {
		return nil, errNaive
	}
	off += m
	out := make([]Outlier, 0, count)
	pos := 0
	for i := uint64(0); i < count; i++ {
		d, m := binary.Uvarint(data[off:])
		if m <= 0 {
			return nil, fmt.Errorf("%w: position %d", errNaive, i)
		}
		off += m
		pos += int(d)
		q, m := binary.Varint(data[off:])
		if m <= 0 {
			return nil, fmt.Errorf("%w: value %d", errNaive, i)
		}
		off += m
		out = append(out, Outlier{Pos: pos, Corr: float64(q) * 2 * tol})
	}
	return out, nil
}

// EncodeBitmap stores positions as a dense bitmap over the n points (the
// bitmap-coding alternative of Section II) followed by varint-coded
// quantized corrections in position order.
func EncodeBitmap(n int, tol float64, outliers []Outlier) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(outliers)))
	bitmap := make([]byte, (n+7)/8)
	sorted := sortedByPos(outliers)
	for _, o := range sorted {
		bitmap[o.Pos>>3] |= 1 << (o.Pos & 7)
	}
	buf = append(buf, bitmap...)
	for _, o := range sorted {
		buf = binary.AppendVarint(buf, quantCorr(o.Corr, tol))
	}
	return buf
}

// DecodeBitmap reverses EncodeBitmap.
func DecodeBitmap(data []byte, tol float64) ([]Outlier, error) {
	off := 0
	n, m := binary.Uvarint(data)
	if m <= 0 {
		return nil, errNaive
	}
	off += m
	count, m := binary.Uvarint(data[off:])
	if m <= 0 {
		return nil, errNaive
	}
	off += m
	nb := int((n + 7) / 8)
	if off+nb > len(data) {
		return nil, fmt.Errorf("%w: bitmap truncated", errNaive)
	}
	bitmap := data[off : off+nb]
	off += nb
	out := make([]Outlier, 0, count)
	for pos := 0; pos < int(n); pos++ {
		if bitmap[pos>>3]&(1<<(pos&7)) == 0 {
			continue
		}
		q, m := binary.Varint(data[off:])
		if m <= 0 {
			return nil, fmt.Errorf("%w: value at pos %d", errNaive, pos)
		}
		off += m
		out = append(out, Outlier{Pos: pos, Corr: float64(q) * 2 * tol})
	}
	if uint64(len(out)) != count {
		return nil, fmt.Errorf("%w: bitmap has %d set bits, header says %d",
			errNaive, len(out), count)
	}
	return out, nil
}

// EncodeGamma stores outliers with Elias universal codes (the paper's
// reference [31], the variable-length-coding alternative Section II
// mentions): position gaps and zigzagged quantized corrections are both
// gamma coded.
func EncodeGamma(n int, tol float64, outliers []Outlier) []byte {
	w := bits.NewWriter(len(outliers) * 16)
	elias.WriteGamma(w, uint64(len(outliers))+1)
	prev := -1
	for _, o := range sortedByPos(outliers) {
		elias.WriteGamma(w, uint64(o.Pos-prev))
		prev = o.Pos
		elias.WriteGamma(w, elias.ZigZag(quantCorr(o.Corr, tol)))
	}
	return w.Bytes()
}

// DecodeGamma reverses EncodeGamma.
func DecodeGamma(data []byte, tol float64) ([]Outlier, error) {
	r := bits.NewReader(data)
	cnt, err := elias.ReadGamma(r)
	if err != nil {
		return nil, err
	}
	count := int(cnt - 1)
	out := make([]Outlier, 0, count)
	pos := -1
	for i := 0; i < count; i++ {
		gap, err := elias.ReadGamma(r)
		if err != nil {
			return nil, err
		}
		pos += int(gap)
		zz, err := elias.ReadGamma(r)
		if err != nil {
			return nil, err
		}
		out = append(out, Outlier{Pos: pos, Corr: float64(elias.UnZigZag(zz)) * 2 * tol})
	}
	return out, nil
}

// quantCorr quantizes a correction to the nearest nonzero multiple of
// 2*tol (an outlier needs a nonzero correction to land inside the
// tolerance), matching the precision the SPECK-inspired coder delivers.
func quantCorr(corr, tol float64) int64 {
	q := int64(math.Round(corr / (2 * tol)))
	if q == 0 {
		if corr >= 0 {
			return 1
		}
		return -1
	}
	return q
}

func sortedByPos(outliers []Outlier) []Outlier {
	out := append([]Outlier(nil), outliers...)
	sort.Slice(out, func(a, b int) bool { return out[a].Pos < out[b].Pos })
	return out
}
