package outlier

import (
	"math"
	"math/rand"
	"testing"
)

// genOutliers produces k outliers at unique random positions in [0, n) with
// |corr| in (tol, maxScale*tol].
func genOutliers(rng *rand.Rand, n, k int, tol, maxScale float64) []Outlier {
	used := make(map[int]bool, k)
	out := make([]Outlier, 0, k)
	for len(out) < k {
		p := rng.Intn(n)
		if used[p] {
			continue
		}
		used[p] = true
		mag := tol * (1 + rng.Float64()*(maxScale-1))
		if mag <= tol {
			mag = tol * 1.000001
		}
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		out = append(out, Outlier{Pos: p, Corr: mag})
	}
	return out
}

func TestNumPasses(t *testing.T) {
	cases := []struct {
		maxCorr, tol float64
		want         int
	}{
		{0.5, 1, 0},   // not an outlier at all
		{1, 1, 0},     // |corr| == tol: not an outlier
		{1.5, 1, 1},   // n=0 only: 2^0*1=1 < 1.5, 2^1*1=2 !< 1.5
		{2, 1, 1},     // 2 !< 2 (strict)
		{2.5, 1, 2},   // 2 < 2.5
		{100, 1, 7},   // 2^6=64 < 100, 2^7=128 !< 100
		{4.6, 1.5, 2}, // 1.5*2=3 < 4.6, 1.5*4=6 !< 4.6
	}
	for _, c := range cases {
		if got := NumPasses(c.maxCorr, c.tol); got != c.want {
			t.Errorf("NumPasses(%g, %g) = %d, want %d", c.maxCorr, c.tol, got, c.want)
		}
	}
}

// Core guarantee: every outlier position is recovered exactly, and every
// reconstructed correction is within tol/2 of the true correction.
func TestRoundTripGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 30; iter++ {
		n := 100 + rng.Intn(100000)
		k := 1 + rng.Intn(200)
		if k > n {
			k = n
		}
		tol := math.Exp(rng.NormFloat64() * 3)
		outs := genOutliers(rng, n, k, tol, 20)
		res := Encode(n, tol, outs)
		dec := Decode(res.Stream, res.Bits, n, tol, res.NumPasses)
		if len(dec) != len(outs) {
			t.Fatalf("iter %d: decoded %d outliers, want %d", iter, len(dec), len(outs))
		}
		byPos := make(map[int]float64, len(outs))
		for _, o := range outs {
			byPos[o.Pos] = o.Corr
		}
		for _, o := range dec {
			want, ok := byPos[o.Pos]
			if !ok {
				t.Fatalf("iter %d: spurious outlier at pos %d", iter, o.Pos)
			}
			if err := math.Abs(o.Corr - want); err > tol/2*(1+1e-9) {
				t.Fatalf("iter %d pos %d: corr %g vs %g, err %g > tol/2 %g",
					iter, o.Pos, o.Corr, want, err, tol/2)
			}
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res := Encode(1000, 0.5, nil)
	if res.Bits != 0 || res.NumPasses != 0 {
		t.Fatalf("empty input should produce empty result, got %+v", res)
	}
	if dec := Decode(res.Stream, res.Bits, 1000, 0.5, res.NumPasses); len(dec) != 0 {
		t.Fatalf("decode of empty stream returned %d outliers", len(dec))
	}
}

func TestInliersIgnored(t *testing.T) {
	// Values at or below the tolerance are not outliers and must be dropped.
	outs := []Outlier{
		{Pos: 3, Corr: 0.4},  // inlier
		{Pos: 7, Corr: -0.5}, // inlier (== tol)
		{Pos: 9, Corr: 1.2},  // outlier
	}
	res := Encode(100, 0.5, outs)
	dec := Decode(res.Stream, res.Bits, 100, 0.5, res.NumPasses)
	if len(dec) != 1 || dec[0].Pos != 9 {
		t.Fatalf("expected only outlier at pos 9, got %v", dec)
	}
}

func TestSingleOutlierAtBoundaries(t *testing.T) {
	for _, pos := range []int{0, 1, 999998, 999999} {
		outs := []Outlier{{Pos: pos, Corr: 3.7}}
		res := Encode(1000000, 1.0, outs)
		dec := Decode(res.Stream, res.Bits, 1000000, 1.0, res.NumPasses)
		if len(dec) != 1 || dec[0].Pos != pos {
			t.Fatalf("pos %d: got %v", pos, dec)
		}
		if math.Abs(dec[0].Corr-3.7) > 0.5 {
			t.Fatalf("pos %d: corr %g, want 3.7 +- 0.5", pos, dec[0].Corr)
		}
	}
}

func TestNegativeCorrections(t *testing.T) {
	outs := []Outlier{
		{Pos: 10, Corr: -2.5},
		{Pos: 20, Corr: 2.5},
	}
	res := Encode(64, 1.0, outs)
	dec := Decode(res.Stream, res.Bits, 64, 1.0, res.NumPasses)
	if len(dec) != 2 {
		t.Fatalf("got %d outliers", len(dec))
	}
	if dec[0].Corr >= 0 {
		t.Errorf("pos 10 should be negative, got %g", dec[0].Corr)
	}
	if dec[1].Corr <= 0 {
		t.Errorf("pos 20 should be positive, got %g", dec[1].Corr)
	}
}

func TestDenseOutliers(t *testing.T) {
	// Every position is an outlier: the coder must still work (degenerates
	// to coding all values).
	n := 256
	rng := rand.New(rand.NewSource(4))
	outs := make([]Outlier, n)
	for i := range outs {
		outs[i] = Outlier{Pos: i, Corr: 1.0 + rng.Float64()*10}
	}
	res := Encode(n, 1.0, outs)
	dec := Decode(res.Stream, res.Bits, n, 1.0, res.NumPasses)
	if len(dec) != n {
		t.Fatalf("got %d outliers, want %d", len(dec), n)
	}
	for i, o := range dec {
		if o.Pos != i {
			t.Fatalf("outlier %d at pos %d", i, o.Pos)
		}
		if math.Abs(o.Corr-outs[i].Corr) > 0.5+1e-12 {
			t.Fatalf("pos %d: err %g", i, math.Abs(o.Corr-outs[i].Corr))
		}
	}
}

// Paper Section V-A: the amortized coding cost should land in the single
// digits to mid-teens of bits per outlier for sparse outlier sets.
func TestBitsPerOutlierRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1 << 18
	for _, k := range []int{64, 512, 4096} {
		outs := genOutliers(rng, n, k, 1.0, 3)
		res := Encode(n, 1.0, outs)
		bpo := float64(res.Bits) / float64(k)
		if bpo < 2 || bpo > 40 {
			t.Errorf("k=%d: %g bits/outlier outside sane range", k, bpo)
		}
	}
}

// Denser outlier sets amortize set-significance tests over more outliers,
// so bits-per-outlier should decrease (paper Figure 4 trend).
func TestAmortizationTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 1 << 16
	sparse := genOutliers(rng, n, 50, 1.0, 2.5)
	dense := genOutliers(rng, n, 5000, 1.0, 2.5)
	rs := Encode(n, 1.0, sparse)
	rd := Encode(n, 1.0, dense)
	bpoSparse := float64(rs.Bits) / 50
	bpoDense := float64(rd.Bits) / 5000
	if bpoDense >= bpoSparse {
		t.Errorf("dense %g bits/outlier >= sparse %g; amortization missing",
			bpoDense, bpoSparse)
	}
}

func TestTruncatedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1 << 14
	outs := genOutliers(rng, n, 300, 1.0, 10)
	res := Encode(n, 1.0, outs)
	// Any truncation must decode without panic and yield a subset with
	// valid positions.
	valid := make(map[int]bool, len(outs))
	for _, o := range outs {
		valid[o.Pos] = true
	}
	for _, frac := range []float64{0, 0.1, 0.33, 0.66, 0.99} {
		nb := uint64(float64(res.Bits) * frac)
		dec := Decode(res.Stream, nb, n, 1.0, res.NumPasses)
		for _, o := range dec {
			if !valid[o.Pos] {
				t.Fatalf("frac %g: decoded spurious position %d", frac, o.Pos)
			}
		}
	}
}

func TestOddLengthSplits(t *testing.T) {
	// Prime-length arrays exercise uneven splits all the way down.
	for _, n := range []int{7, 13, 101, 997, 65537} {
		rng := rand.New(rand.NewSource(int64(n)))
		k := n / 3
		if k == 0 {
			k = 1
		}
		if k > 50 {
			k = 50
		}
		outs := genOutliers(rng, n, k, 2.0, 5)
		res := Encode(n, 2.0, outs)
		dec := Decode(res.Stream, res.Bits, n, 2.0, res.NumPasses)
		if len(dec) != len(outs) {
			t.Fatalf("n=%d: decoded %d, want %d", n, len(dec), len(outs))
		}
	}
}

func BenchmarkEncode1kOutliers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	outs := genOutliers(rng, n, 1000, 1.0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(n, 1.0, outs)
	}
}

func BenchmarkDecode1kOutliers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 20
	outs := genOutliers(rng, n, 1000, 1.0, 4)
	res := Encode(n, 1.0, outs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(res.Stream, res.Bits, n, 1.0, res.NumPasses)
	}
}
