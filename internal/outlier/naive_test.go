package outlier

import (
	"math"
	"math/rand"
	"testing"
)

func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	tol := 0.5
	outs := genOutliers(rng, n, 500, tol, 8)
	data := EncodeCSR(n, tol, outs)
	dec, err := DecodeCSR(data, tol)
	if err != nil {
		t.Fatal(err)
	}
	checkNaiveDecode(t, outs, dec, tol)
}

func TestBitmapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1 << 14
	tol := 2.0
	outs := genOutliers(rng, n, 300, tol, 6)
	data := EncodeBitmap(n, tol, outs)
	dec, err := DecodeBitmap(data, tol)
	if err != nil {
		t.Fatal(err)
	}
	checkNaiveDecode(t, outs, dec, tol)
}

func checkNaiveDecode(t *testing.T, want, got []Outlier, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d outliers, want %d", len(got), len(want))
	}
	byPos := make(map[int]float64, len(want))
	for _, o := range want {
		byPos[o.Pos] = o.Corr
	}
	for _, o := range got {
		w, ok := byPos[o.Pos]
		if !ok {
			t.Fatalf("spurious position %d", o.Pos)
		}
		if math.Abs(o.Corr-w) > tol*(1+1e-12) {
			t.Fatalf("pos %d: corr %g vs %g exceeds quantization bound", o.Pos, o.Corr, w)
		}
	}
}

func TestGammaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1 << 15
	tol := 1.5
	outs := genOutliers(rng, n, 400, tol, 7)
	data := EncodeGamma(n, tol, outs)
	dec, err := DecodeGamma(data, tol)
	if err != nil {
		t.Fatal(err)
	}
	checkNaiveDecode(t, outs, dec, tol)
}

// Gamma gap coding is the strongest of the simple alternatives: it lands
// in the same ballpark as the SPECK-inspired coder (either may edge the
// other depending on density and correction distribution; note the SPECK
// coder reconstructs to tol/2, twice the precision of the 2*tol bins the
// gap scheme uses). Both crush CSR. The ablation experiment reports the
// measured numbers side by side.
func TestGammaVsSpeckAtRealisticDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1 << 16
	tol := 1.0
	outs := genOutliers(rng, n, 2000, tol, 3) // ~3% density
	speckBits := float64(Encode(n, tol, outs).Bits)
	gammaBits := float64(len(EncodeGamma(n, tol, outs)) * 8)
	csrBits := float64(len(EncodeCSR(n, tol, outs)) * 8)
	if ratio := speckBits / gammaBits; ratio < 0.5 || ratio > 2 {
		t.Errorf("SPECK/gamma ratio %.2f outside the expected ballpark", ratio)
	}
	if gammaBits >= csrBits {
		t.Errorf("gamma %g bits >= CSR %g bits", gammaBits, csrBits)
	}
}

func TestNaiveEmpty(t *testing.T) {
	if dec, err := DecodeCSR(EncodeCSR(100, 1, nil), 1); err != nil || len(dec) != 0 {
		t.Fatalf("CSR empty: %v, %v", dec, err)
	}
	if dec, err := DecodeBitmap(EncodeBitmap(100, 1, nil), 1); err != nil || len(dec) != 0 {
		t.Fatalf("bitmap empty: %v, %v", dec, err)
	}
}

func TestNaiveCorrupt(t *testing.T) {
	if _, err := DecodeCSR(nil, 1); err == nil {
		t.Error("nil CSR should fail")
	}
	if _, err := DecodeBitmap([]byte{0xFF}, 1); err == nil {
		t.Error("short bitmap should fail")
	}
}

func TestQuantCorrNeverZero(t *testing.T) {
	for _, c := range []float64{0.1, -0.1, 1e-30, -1e-30, 3.0, -3.0} {
		if q := quantCorr(c, 1.0); q == 0 {
			t.Errorf("quantCorr(%g) = 0; outliers need nonzero corrections", c)
		}
	}
	if quantCorr(4.0, 1.0) != 2 {
		t.Errorf("quantCorr(4, 1) = %d, want 2", quantCorr(4.0, 1.0))
	}
}

// The reason Section II dismisses these schemes: for sparse outliers the
// SPECK-inspired coder beats CSR (which burns ~a byte+ per position), and
// for very sparse outliers it crushes the bitmap (which burns n bits
// regardless).
func TestSpeckCoderBeatsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 18
	tol := 1.0
	outs := genOutliers(rng, n, 400, tol, 3)
	speckBits := Encode(n, tol, outs).Bits
	csrBits := uint64(len(EncodeCSR(n, tol, outs)) * 8)
	bitmapBits := uint64(len(EncodeBitmap(n, tol, outs)) * 8)
	if speckBits >= csrBits {
		t.Errorf("SPECK coder %d bits >= CSR %d bits", speckBits, csrBits)
	}
	if speckBits >= bitmapBits {
		t.Errorf("SPECK coder %d bits >= bitmap %d bits", speckBits, bitmapBits)
	}
}
