package outlier

// Property-based tests (testing/quick) on the outlier coder invariants.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for arbitrary outlier sets, every decoded position is exact
// and every correction within tol/2.
func TestQuickCoderInvariant(t *testing.T) {
	f := func(seed int64, kRaw uint8, tolExp int8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64 + r.Intn(1<<15)
		k := 1 + int(kRaw)%64
		if k > n {
			k = n
		}
		tol := math.Exp2(float64(int(tolExp)%12 - 6))
		outs := genOutliers(r, n, k, tol, 1+8*r.Float64())
		res := Encode(n, tol, outs)
		dec := Decode(res.Stream, res.Bits, n, tol, res.NumPasses)
		if len(dec) != len(outs) {
			return false
		}
		byPos := make(map[int]float64, len(outs))
		for _, o := range outs {
			byPos[o.Pos] = o.Corr
		}
		for _, o := range dec {
			want, ok := byPos[o.Pos]
			if !ok || math.Abs(o.Corr-want) > tol/2*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three naive schemes agree with the coder about which
// positions are outliers.
func TestQuickSchemesAgreeOnPositions(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 256 + r.Intn(4096)
		k := 1 + r.Intn(32)
		tol := 1.0
		outs := genOutliers(r, n, k, tol, 4)
		want := map[int]bool{}
		for _, o := range outs {
			want[o.Pos] = true
		}
		check := func(dec []Outlier, err error) bool {
			if err != nil || len(dec) != k {
				return false
			}
			for _, o := range dec {
				if !want[o.Pos] {
					return false
				}
			}
			return true
		}
		if !check(DecodeCSR(EncodeCSR(n, tol, outs), tol)) {
			return false
		}
		if !check(DecodeBitmap(EncodeBitmap(n, tol, outs), tol)) {
			return false
		}
		if !check(DecodeGamma(EncodeGamma(n, tol, outs), tol)) {
			return false
		}
		res := Encode(n, tol, outs)
		dec := Decode(res.Stream, res.Bits, n, tol, res.NumPasses)
		return check(dec, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
