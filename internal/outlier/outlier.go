// Package outlier implements SPERR's outlier coding algorithm (paper
// Section IV, Listings 1-3): a SPECK-inspired embedded coder for sparse
// (position, correction) tuples that lets SPERR guarantee a maximum
// point-wise error (PWE).
//
// The input is conceptually a length-N 1D array that is zero everywhere
// except at outlier positions, where it holds the correction value
// corr = x - x~ (original minus wavelet reconstruction), with |corr| > t.
// The coder runs sorting and refinement passes against thresholds
// t*2^n for n = nmax .. 0; after the final pass every outlier has been
// located exactly and its correction reconstructed to within t/2, which
// bounds the corrected reconstruction error by the tolerance (Equation 1).
//
// Multi-dimensional inputs are linearized before coding: outlier positions
// carry essentially no spatial correlation (paper Section IV-C, Figure 1),
// so nothing is lost by flattening and the set partitioning stays binary.
package outlier

import (
	"slices"
	"sort"

	"sperr/internal/bits"
)

// Outlier is one (position, correction) tuple. Pos indexes the linearized
// input array; Corr is the value to add to the wavelet reconstruction.
type Outlier struct {
	Pos  int
	Corr float64
}

// Result carries the encoder output.
type Result struct {
	Stream    []byte
	Bits      uint64
	NumPasses int // threshold passes emitted; the decoder must replay as many
}

// NumPasses returns how many threshold passes encode outliers with maximum
// magnitude maxCorr at tolerance tol: passes-1 is the largest n >= 0 with
// tol*2^n < maxCorr (Listing 1, line 4).
func NumPasses(maxCorr, tol float64) int {
	if maxCorr <= tol || tol <= 0 {
		return 0
	}
	n := 0
	for tol*pow2(n+1) < maxCorr {
		n++
	}
	return n + 1
}

func pow2(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 2
	}
	return v
}

// rng is a contiguous index range [start, start+length) of the linearized
// array, tracking which outliers (by index into the sorted outlier slice)
// fall inside it. max caches the largest |corr| inside (encoder only).
type rng struct {
	start, length int32
	lo, hi        int32 // outlier slice subrange
	max           float64
}

// oentry is one outlier being coded: magnitude and sign split, sorted by
// position.
type oentry struct {
	pos  int32
	corr float64 // magnitude; mutates during refinement
	neg  bool
}

// Scratch pools the reusable state of outlier Encode and Decode calls so
// per-chunk coding allocates nothing once warmed up. A zero Scratch is
// ready; it is not safe for concurrent use. Results returned by
// EncodeScratch/DecodeScratch alias the scratch and stay valid only until
// its next use.
type Scratch struct {
	w    *bits.Writer
	r    bits.Reader
	ents   []oentry
	lis    [][]rng
	lsp    []int32
	lspNew []int32
	pts    []dpoint
	out    []Outlier
	// Grows counts buffer (re)allocations; a warmed-up scratch stops
	// growing.
	Grows int
}

func (s *Scratch) resetLIS() [][]rng {
	for i := range s.lis {
		s.lis[i] = s.lis[i][:0]
	}
	if len(s.lis) == 0 {
		s.lis = make([][]rng, 1, 16)
		s.Grows++
	}
	return s.lis
}

// Encode codes the outliers of a length-n array at tolerance tol > 0.
// Every |outlier.Corr| must exceed tol (that is what makes it an outlier);
// values at or below tol are ignored. Positions must be unique and within
// [0, n). The outliers slice is not modified.
func Encode(n int, tol float64, outliers []Outlier) *Result {
	return EncodeScratch(n, tol, outliers, nil)
}

// EncodeScratch is Encode with pooled buffers; the Result aliases s and is
// valid until the next use of s. Output is byte-identical to Encode's.
func EncodeScratch(n int, tol float64, outliers []Outlier, s *Scratch) *Result {
	if len(outliers) == 0 {
		return &Result{}
	}
	if s == nil {
		s = &Scratch{}
	}
	if s.w == nil {
		s.w = bits.NewWriter(len(outliers) * 12)
		s.Grows++
	} else {
		s.w.Reset()
	}
	e := &encoder{w: s.w, ents: s.ents[:0]}
	maxCorr := 0.0
	for _, o := range outliers {
		c := o.Corr
		neg := c < 0
		if neg {
			c = -c
		}
		if c <= tol {
			continue // inlier; nothing to correct
		}
		e.ents = append(e.ents, oentry{pos: int32(o.Pos), corr: c, neg: neg})
		if c > maxCorr {
			maxCorr = c
		}
	}
	s.ents = e.ents
	if len(e.ents) == 0 {
		return &Result{}
	}
	// Sort by position so range membership is a contiguous subrange.
	slices.SortFunc(e.ents, func(a, b oentry) int {
		switch {
		case a.pos < b.pos:
			return -1
		case a.pos > b.pos:
			return 1
		}
		return 0
	})
	e.lis = s.resetLIS()
	e.nd = 1
	e.lsp = s.lsp[:0]
	e.lspNew = s.lspNew[:0]

	passes := NumPasses(maxCorr, tol)
	e.run(n, tol, passes)
	s.lis, s.lsp, s.lspNew = e.lis, e.lsp, e.lspNew
	return &Result{Stream: e.w.Close(), Bits: e.w.Len(), NumPasses: passes}
}

type encoder struct {
	w    *bits.Writer
	ents []oentry // sorted by position; corr mutates during refinement

	lis    [][]rng // buckets by split depth; deeper = smaller ranges
	nd     int     // number of active buckets
	lsp    []int32 // indices into ents
	lspNew []int32
}

func (e *encoder) ensureDepth(d int) {
	for len(e.lis) <= d {
		e.lis = append(e.lis, nil)
	}
	if e.nd <= d {
		e.nd = d + 1
	}
}

func (e *encoder) run(n int, tol float64, passes int) {
	root := rng{start: 0, length: int32(n), lo: 0, hi: int32(len(e.ents))}
	root.max = e.rangeMax(&root)
	e.lis[0] = append(e.lis[0], root)
	for p := passes - 1; p >= 0; p-- {
		thr := tol * pow2(p)
		e.sortingPass(thr)
		e.refinementPass(thr)
	}
}

func (e *encoder) rangeMax(s *rng) float64 {
	m := 0.0
	for i := s.lo; i < s.hi; i++ {
		if c := e.ents[i].corr; c > m {
			m = c
		}
	}
	return m
}

// sortingPass visits LIS ranges smallest first (Listing 2, line 1); ranges
// created by splitting land in deeper, already-visited buckets and are
// processed immediately by recursion.
func (e *encoder) sortingPass(thr float64) {
	for depth := e.nd - 1; depth >= 0; depth-- {
		bucket := e.lis[depth]
		kept := bucket[:0]
		for i := range bucket {
			s := bucket[i]
			if s.max > thr { // significance is strict (Section IV-B)
				e.processSignificant(&s, depth, thr)
			} else {
				e.w.WriteBit(false)
				kept = append(kept, s)
			}
		}
		e.lis[depth] = kept
	}
}

func (e *encoder) processSignificant(s *rng, depth int, thr float64) {
	e.w.WriteBit(true)
	e.descend(s, depth, thr)
}

func (e *encoder) descend(s *rng, depth int, thr float64) {
	if s.length == 1 {
		// Single significant point: emit sign, move to LNSP (Listing 2,
		// lines 5-7). s.lo is the outlier's index.
		e.w.WriteBit(e.ents[s.lo].neg)
		e.lspNew = append(e.lspNew, s.lo)
		return
	}
	e.code(s, depth, thr)
}

// code splits s into two halves at ceil(length/2) and processes both
// immediately (Listing 2, Code(S)). When the first half tests
// insignificant, the second half of a significant parent is implied
// significant and its bit omitted (the Said-Pearlman saving used by the
// reference SPERR outlier coder).
func (e *encoder) code(s *rng, depth int, thr float64) {
	a, b := splitRange(s)
	// Partition the outlier subrange: outliers are sorted by position.
	mid := s.lo
	for mid < s.hi && e.ents[mid].pos < b.start {
		mid++
	}
	a.lo, a.hi = s.lo, mid
	b.lo, b.hi = mid, s.hi
	a.max = e.rangeMax(&a)
	b.max = e.rangeMax(&b)

	childDepth := depth + 1
	e.ensureDepth(childDepth)
	if a.max > thr {
		e.processSignificant(&a, childDepth, thr)
	} else {
		e.w.WriteBit(false)
		e.lis[childDepth] = append(e.lis[childDepth], a)
		// b is implied significant: no bit.
		e.descend(&b, childDepth, thr)
		return
	}
	if b.max > thr {
		e.processSignificant(&b, childDepth, thr)
	} else {
		e.w.WriteBit(false)
		e.lis[childDepth] = append(e.lis[childDepth], b)
	}
}

func (e *encoder) refinementPass(thr float64) {
	// Existing significant points: one refinement bit each (Listing 3),
	// batched into 64-bit words (bit k of a word is the k-th point's bit,
	// matching WriteBit order).
	var word uint64
	var nb uint
	for _, i := range e.lsp {
		o := &e.ents[i]
		if o.corr > thr {
			word |= 1 << nb
			o.corr -= thr
		}
		nb++
		if nb == 64 {
			e.w.WriteBits(word, 64)
			word, nb = 0, 0
		}
	}
	if nb > 0 {
		e.w.WriteBits(word, nb)
	}
	// Newly significant points: quantize with no bit emitted.
	for _, i := range e.lspNew {
		e.ents[i].corr -= thr
	}
	e.lsp = append(e.lsp, e.lspNew...)
	e.lspNew = e.lspNew[:0]
}

// splitRange divides [start, start+length) at ceil(length/2).
func splitRange(s *rng) (a, b rng) {
	half := (s.length + 1) / 2
	a = rng{start: s.start, length: half}
	b = rng{start: s.start + half, length: s.length - half}
	return
}

// Decode reconstructs the outlier list from a bitstream produced by Encode
// with the same n, tol and passes (from Result.NumPasses). The returned
// corrections satisfy |corr~ - corr| <= tol/2 and are sorted by position.
// Truncated streams decode to a valid partial correction list.
func Decode(stream []byte, nbits uint64, n int, tol float64, passes int) []Outlier {
	return DecodeScratch(stream, nbits, n, tol, passes, nil)
}

// DecodeScratch is Decode with pooled buffers; the returned slice aliases
// s and is valid until the next use of s.
func DecodeScratch(stream []byte, nbits uint64, n int, tol float64, passes int, s *Scratch) []Outlier {
	if passes <= 0 {
		return nil
	}
	if s == nil {
		s = &Scratch{}
	}
	s.r.Reset(stream, nbits)
	d := &decoder{r: &s.r}
	d.lis = s.resetLIS()
	d.nd = 1
	d.pts = s.pts[:0]
	d.run(n, tol, passes)
	s.lis, s.pts = d.lis, d.pts
	out := s.out[:0]
	for _, p := range d.pts {
		c := p.val
		if p.neg {
			c = -c
		}
		out = append(out, Outlier{Pos: int(p.pos), Corr: c})
	}
	s.out = out
	sort.Slice(out, func(a, b int) bool { return out[a].Pos < out[b].Pos })
	return out
}

type dpoint struct {
	pos int32
	val float64
	neg bool
}

type decoder struct {
	r    *bits.Reader
	lis  [][]rng
	nd   int      // number of active buckets
	pts  []dpoint // reconstructed significant points (LSP order)
	nOld int      // pts[:nOld] existed before the current sorting pass
}

func (d *decoder) ensureDepth(depth int) {
	for len(d.lis) <= depth {
		d.lis = append(d.lis, nil)
	}
	if d.nd <= depth {
		d.nd = depth + 1
	}
}

func (d *decoder) run(n int, tol float64, passes int) {
	root := rng{start: 0, length: int32(n)}
	d.lis[0] = append(d.lis[0], root)
	for p := passes - 1; p >= 0; p-- {
		thr := tol * pow2(p)
		d.nOld = len(d.pts)
		if !d.sortingPass(thr) {
			return
		}
		if !d.refinementPass(thr) {
			return
		}
	}
}

func (d *decoder) sortingPass(thr float64) bool {
	for depth := d.nd - 1; depth >= 0; depth-- {
		bucket := d.lis[depth]
		kept := bucket[:0]
		for i := range bucket {
			s := bucket[i]
			sig := d.r.ReadBit()
			if d.r.Exhausted() {
				d.lis[depth] = append(kept, bucket[i:]...)
				return false
			}
			if sig {
				if !d.descend(&s, depth, thr) {
					d.lis[depth] = append(kept, bucket[i+1:]...)
					return false
				}
			} else {
				kept = append(kept, s)
			}
		}
		d.lis[depth] = kept
	}
	return true
}

func (d *decoder) descend(s *rng, depth int, thr float64) bool {
	if s.length == 1 {
		neg := d.r.ReadBit()
		if d.r.Exhausted() {
			return false
		}
		// Newly significant point: reconstruct at 1.5*thr (Listing 3,
		// line 12, the LNSP rule).
		d.pts = append(d.pts, dpoint{pos: s.start, val: 1.5 * thr, neg: neg})
		return true
	}
	a, b := splitRange(s)
	childDepth := depth + 1
	d.ensureDepth(childDepth)
	sigA := d.r.ReadBit()
	if d.r.Exhausted() {
		d.lis[childDepth] = append(d.lis[childDepth], a, b)
		return false
	}
	if sigA {
		if !d.descend(&a, childDepth, thr) {
			d.lis[childDepth] = append(d.lis[childDepth], b)
			return false
		}
	} else {
		d.lis[childDepth] = append(d.lis[childDepth], a)
		// b is implied significant: the encoder emitted no bit.
		return d.descend(&b, childDepth, thr)
	}
	sigB := d.r.ReadBit()
	if d.r.Exhausted() {
		d.lis[childDepth] = append(d.lis[childDepth], b)
		return false
	}
	if sigB {
		return d.descend(&b, childDepth, thr)
	}
	d.lis[childDepth] = append(d.lis[childDepth], b)
	return true
}

func (d *decoder) refinementPass(thr float64) bool {
	// Only points that existed before this pass's sorting pass receive a
	// refinement bit; points discovered this pass were initialized at
	// 1.5*thr already (LNSP rule).
	half := thr / 2
	if d.r.Remaining() >= uint64(d.nOld) {
		// The whole pass fits in the budget: no exhaustion possible, so
		// read the bits in 64-bit words.
		for i := 0; i < d.nOld; {
			n := d.nOld - i
			if n > 64 {
				n = 64
			}
			word := d.r.ReadBits(uint(n))
			for k := 0; k < n; k, i = k+1, i+1 {
				if word&1 != 0 {
					d.pts[i].val += half
				} else {
					d.pts[i].val -= half
				}
				word >>= 1
			}
		}
		return true
	}
	for i := 0; i < d.nOld; i++ {
		b := d.r.ReadBit()
		if d.r.Exhausted() {
			return false
		}
		if b {
			d.pts[i].val += half
		} else {
			d.pts[i].val -= half
		}
	}
	return true
}
