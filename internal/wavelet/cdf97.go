// Package wavelet implements the CDF 9/7 biorthogonal discrete wavelet
// transform used by SPERR (paper Section III-A).
//
// The transform is computed with the lifting scheme of Daubechies and
// Sweldens, using symmetric (whole-sample) boundary extension and basis
// functions scaled to approximately unit norm, following the QccPack
// implementation the paper borrows from. Because the scaled CDF 9/7 basis is
// near-orthogonal, the L2 error introduced in the coefficient domain is
// approximately the L2 error of the reconstruction, which SPERR's design
// relies on.
//
// Multi-dimensional transforms are separable: each level transforms every
// line of the current approximation box along each active axis, then the
// approximation box shrinks by half (rounding up) along those axes. The
// number of levels per axis of length N is min(6, floor(log2 N) - 2), as in
// the paper.
package wavelet

import "math"

// Lifting constants for the CDF 9/7 filter bank (Daubechies–Sweldens
// factorization at full float64 precision; epsilon normalizes the basis to
// approximately unit norm as in QccPack).
const (
	alpha   = -1.5861343420599235
	beta    = -0.0529801185729614
	gamma   = 0.8829110755309333
	delta   = 0.4435068520439711
	epsilon = 1.1496043988602418
)

// MaxLevels caps the recursion depth of the dyadic decomposition; deeper
// recursion yields diminishing compaction benefit (Section III-A).
const MaxLevels = 6

// Levels returns the number of transform passes applied to a length-n axis:
// min(6, floor(log2 n) - 2), clamped at zero. Axes shorter than 8 samples
// are not transformed.
func Levels(n int) int {
	if n < 8 {
		return 0
	}
	l := int(math.Floor(math.Log2(float64(n)))) - 2
	if l > MaxLevels {
		l = MaxLevels
	}
	if l < 0 {
		l = 0
	}
	return l
}

// forwardEven runs the in-place CDF 9/7 analysis lifting on an even-length
// signal with symmetric extension. Afterwards even indices hold scaled
// low-pass samples and odd indices hold high-pass samples.
func forwardEven(s []float64) {
	n := len(s)
	for i := 1; i < n-2; i += 2 {
		s[i] += alpha * (s[i-1] + s[i+1])
	}
	s[n-1] += 2 * alpha * s[n-2]

	s[0] += 2 * beta * s[1]
	for i := 2; i < n; i += 2 {
		s[i] += beta * (s[i+1] + s[i-1])
	}

	for i := 1; i < n-2; i += 2 {
		s[i] += gamma * (s[i-1] + s[i+1])
	}
	s[n-1] += 2 * gamma * s[n-2]

	s[0] = epsilon * (s[0] + 2*delta*s[1])
	for i := 2; i < n; i += 2 {
		s[i] = epsilon * (s[i] + delta*(s[i+1]+s[i-1]))
	}

	for i := 1; i < n; i += 2 {
		s[i] /= -epsilon
	}
}

// inverseEven inverts forwardEven.
func inverseEven(s []float64) {
	n := len(s)
	for i := 1; i < n; i += 2 {
		s[i] *= -epsilon
	}

	s[0] = s[0]/epsilon - 2*delta*s[1]
	for i := 2; i < n; i += 2 {
		s[i] = s[i]/epsilon - delta*(s[i+1]+s[i-1])
	}

	for i := 1; i < n-2; i += 2 {
		s[i] -= gamma * (s[i-1] + s[i+1])
	}
	s[n-1] -= 2 * gamma * s[n-2]

	s[0] -= 2 * beta * s[1]
	for i := 2; i < n; i += 2 {
		s[i] -= beta * (s[i+1] + s[i-1])
	}

	for i := 1; i < n-2; i += 2 {
		s[i] -= alpha * (s[i-1] + s[i+1])
	}
	s[n-1] -= 2 * alpha * s[n-2]
}

// forwardOdd runs the analysis lifting on an odd-length signal. Both
// endpoints are even (low-pass) samples under whole-sample symmetry.
func forwardOdd(s []float64) {
	n := len(s)
	for i := 1; i < n-1; i += 2 {
		s[i] += alpha * (s[i-1] + s[i+1])
	}

	s[0] += 2 * beta * s[1]
	for i := 2; i < n-2; i += 2 {
		s[i] += beta * (s[i+1] + s[i-1])
	}
	s[n-1] += 2 * beta * s[n-2]

	for i := 1; i < n-1; i += 2 {
		s[i] += gamma * (s[i-1] + s[i+1])
	}

	s[0] = epsilon * (s[0] + 2*delta*s[1])
	for i := 2; i < n-2; i += 2 {
		s[i] = epsilon * (s[i] + delta*(s[i+1]+s[i-1]))
	}
	s[n-1] = epsilon * (s[n-1] + 2*delta*s[n-2])

	for i := 1; i < n-1; i += 2 {
		s[i] /= -epsilon
	}
}

// inverseOdd inverts forwardOdd.
func inverseOdd(s []float64) {
	n := len(s)
	for i := 1; i < n-1; i += 2 {
		s[i] *= -epsilon
	}

	s[0] = s[0]/epsilon - 2*delta*s[1]
	for i := 2; i < n-2; i += 2 {
		s[i] = s[i]/epsilon - delta*(s[i+1]+s[i-1])
	}
	s[n-1] = s[n-1]/epsilon - 2*delta*s[n-2]

	for i := 1; i < n-1; i += 2 {
		s[i] -= gamma * (s[i-1] + s[i+1])
	}

	s[0] -= 2 * beta * s[1]
	for i := 2; i < n-2; i += 2 {
		s[i] -= beta * (s[i+1] + s[i-1])
	}
	s[n-1] -= 2 * beta * s[n-2]

	for i := 1; i < n-1; i += 2 {
		s[i] -= alpha * (s[i-1] + s[i+1])
	}
}

// Forward1D applies one level of the CDF 9/7 analysis transform to s in
// place and deinterleaves the result: the first ceil(n/2) entries are
// low-pass (approximation) coefficients, the rest high-pass (detail).
// scratch must have capacity >= len(s); pass nil to allocate internally.
// Signals shorter than 4 samples are left untouched.
func Forward1D(s, scratch []float64) {
	n := len(s)
	if n < 4 {
		return
	}
	if n%2 == 0 {
		forwardEven(s)
	} else {
		forwardOdd(s)
	}
	deinterleave(s, scratch)
}

// Inverse1D inverts one level of Forward1D: it interleaves the subbands and
// runs the synthesis lifting.
func Inverse1D(s, scratch []float64) {
	n := len(s)
	if n < 4 {
		return
	}
	interleave(s, scratch)
	if n%2 == 0 {
		inverseEven(s)
	} else {
		inverseOdd(s)
	}
}

// deinterleave gathers even-index samples to the front and odd-index
// samples to the back of s.
func deinterleave(s, scratch []float64) {
	n := len(s)
	if scratch == nil || cap(scratch) < n {
		scratch = make([]float64, n)
	}
	scratch = scratch[:n]
	low := (n + 1) / 2
	for i := 0; i < low; i++ {
		scratch[i] = s[2*i]
	}
	for i := 0; i < n/2; i++ {
		scratch[low+i] = s[2*i+1]
	}
	copy(s, scratch)
}

// interleave inverts deinterleave.
func interleave(s, scratch []float64) {
	n := len(s)
	if scratch == nil || cap(scratch) < n {
		scratch = make([]float64, n)
	}
	scratch = scratch[:n]
	low := (n + 1) / 2
	for i := 0; i < low; i++ {
		scratch[2*i] = s[i]
	}
	for i := 0; i < n/2; i++ {
		scratch[2*i+1] = s[low+i]
	}
	copy(s, scratch)
}
