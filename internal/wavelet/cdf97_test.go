package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sperr/internal/grid"
)

const roundTripTol = 1e-9

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 100
	}
	return s
}

func TestLevels(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {31, 2},
		{32, 3}, {64, 4}, {128, 5}, {256, 6}, {512, 6}, {4096, 6},
	}
	for _, c := range cases {
		if got := Levels(c.n); got != c.want {
			t.Errorf("Levels(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestForwardInverse1DAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 4; n <= 300; n++ {
		orig := randSlice(rng, n)
		s := append([]float64(nil), orig...)
		Forward1D(s, nil)
		Inverse1D(s, nil)
		if d := maxAbsDiff(s, orig); d > roundTripTol {
			t.Fatalf("n=%d: round-trip error %g", n, d)
		}
	}
}

func TestShortSignalsUntouched(t *testing.T) {
	for n := 0; n < 4; n++ {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i) + 1
		}
		orig := append([]float64(nil), s...)
		Forward1D(s, nil)
		for i := range s {
			if s[i] != orig[i] {
				t.Fatalf("n=%d: short signal modified", n)
			}
		}
	}
}

// The scaled CDF 9/7 basis is near-orthogonal: the transform should
// approximately preserve the L2 norm (within a few percent).
func TestNearOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{64, 100, 255, 256} {
		s := randSlice(rng, n)
		var before float64
		for _, v := range s {
			before += v * v
		}
		Forward1D(s, nil)
		var after float64
		for _, v := range s {
			after += v * v
		}
		ratio := after / before
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("n=%d: energy ratio %g outside near-orthogonal bounds", n, ratio)
		}
	}
}

// A constant signal must compact entirely into the low-pass band: all
// high-pass coefficients are (near) zero because CDF 9/7 has two vanishing
// moments.
func TestConstantSignalCompaction(t *testing.T) {
	n := 128
	s := make([]float64, n)
	for i := range s {
		s[i] = 3.25
	}
	Forward1D(s, nil)
	low := (n + 1) / 2
	for i := low; i < n; i++ {
		if math.Abs(s[i]) > 1e-9 {
			t.Fatalf("high-pass coeff %d = %g, want ~0", i, s[i])
		}
	}
}

// Linear ramps are annihilated by the high-pass filter (two vanishing
// moments) away from the boundaries. At the boundaries the symmetric
// extension folds the ramp back on itself, so the outermost high-pass
// coefficients are legitimately nonzero; only interior ones are checked.
func TestLinearRampCompaction(t *testing.T) {
	n := 128
	s := make([]float64, n)
	for i := range s {
		s[i] = 2*float64(i) - 17
	}
	Forward1D(s, nil)
	low := (n + 1) / 2
	for i := low + 2; i < n-2; i++ {
		if math.Abs(s[i]) > 1e-8 {
			t.Fatalf("high-pass coeff %d = %g for linear ramp, want ~0", i, s[i])
		}
	}
}

func TestDeinterleaveInterleave(t *testing.T) {
	s := []float64{0, 1, 2, 3, 4, 5, 6}
	deinterleave(s, nil)
	want := []float64{0, 2, 4, 6, 1, 3, 5}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("deinterleave = %v, want %v", s, want)
		}
	}
	interleave(s, nil)
	for i := range s {
		if s[i] != float64(i) {
			t.Fatalf("interleave did not invert: %v", s)
		}
	}
}

func TestPlanSchedule(t *testing.T) {
	p := NewPlan(grid.D3(64, 64, 64))
	if p.NumLevels() != 4 {
		t.Fatalf("NumLevels = %d, want 4", p.NumLevels())
	}
	// Approximation box shrinks by ceil-halving each level.
	wantBox := [][3]int{{64, 64, 64}, {32, 32, 32}, {16, 16, 16}, {8, 8, 8}}
	for i, st := range p.steps {
		if st.nx != wantBox[i][0] || st.ny != wantBox[i][1] || st.nz != wantBox[i][2] {
			t.Errorf("level %d box = %dx%dx%d, want %v", i, st.nx, st.ny, st.nz, wantBox[i])
		}
		if !st.ax || !st.ay || !st.az {
			t.Errorf("level %d: all axes should be active", i)
		}
	}
}

func TestPlanAnisotropic(t *testing.T) {
	// 64 gets 4 levels, 8 gets 1 level: the z axis must go inactive after
	// the first level.
	p := NewPlan(grid.D3(64, 64, 8))
	if p.NumLevels() != 4 {
		t.Fatalf("NumLevels = %d, want 4", p.NumLevels())
	}
	if !p.steps[0].az {
		t.Error("level 0 should transform z")
	}
	for i := 1; i < 4; i++ {
		if p.steps[i].az {
			t.Errorf("level %d should not transform z", i)
		}
	}
}

func roundTrip3D(t *testing.T, d grid.Dims, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	orig := randSlice(rng, d.Len())
	data := append([]float64(nil), orig...)
	p := NewPlan(d)
	p.Forward(data)
	p.Inverse(data)
	if diff := maxAbsDiff(data, orig); diff > roundTripTol {
		t.Fatalf("%v: round-trip error %g", d, diff)
	}
}

func TestForwardInverse3D(t *testing.T) {
	dims := []grid.Dims{
		grid.D3(16, 16, 16),
		grid.D3(32, 32, 32),
		grid.D3(17, 19, 23), // odd, prime extents
		grid.D3(64, 8, 8),
		grid.D3(8, 64, 16),
		grid.D3(33, 32, 31),
		grid.D2(64, 64),  // 2D slice
		grid.D2(100, 37), // 2D non-pow2
		grid.D3(5, 5, 5), // too small to transform at all
	}
	for i, d := range dims {
		roundTrip3D(t, d, int64(i))
	}
}

func TestForward3DCompaction(t *testing.T) {
	// A smooth field must concentrate nearly all energy in a small
	// fraction of coefficients.
	d := grid.D3(32, 32, 32)
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = math.Sin(float64(x)*0.2) *
					math.Cos(float64(y)*0.15) * math.Sin(float64(z)*0.1+1)
			}
		}
	}
	var total float64
	for _, v := range data {
		total += v * v
	}
	p := NewPlan(d)
	p.Forward(data)
	// Energy in the top 5% largest-magnitude coefficients.
	mags := make([]float64, len(data))
	for i, v := range data {
		mags[i] = v * v
	}
	// Partial selection via simple threshold sweep is overkill; sort copy.
	sorted := append([]float64(nil), mags...)
	for i := range sorted { // insertion would be O(n^2); use sort.Float64s instead
		_ = i
	}
	sortFloat64s(sorted)
	topN := len(sorted) / 20
	var top float64
	for i := len(sorted) - topN; i < len(sorted); i++ {
		top += sorted[i]
	}
	if top < 0.99*total {
		t.Errorf("top 5%% coefficients hold %.4f of energy, want > 0.99", top/total)
	}
}

func sortFloat64s(s []float64) {
	// small helper to avoid importing sort in several spots
	quickSort(s, 0, len(s)-1)
}

func quickSort(s []float64, lo, hi int) {
	for lo < hi {
		p := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] < p {
				i++
			}
			for s[j] > p {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(s, lo, j)
			lo = i
		} else {
			quickSort(s, i, hi)
			hi = j
		}
	}
}

// Property: transforms are linear.
func TestQuickLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(scale float64) bool {
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e6 {
			return true
		}
		n := 48
		a := randSlice(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = a[i] * scale
		}
		Forward1D(a, nil)
		Forward1D(b, nil)
		for i := range a {
			if math.Abs(b[i]-a[i]*scale) > 1e-6*(1+math.Abs(a[i]*scale)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForward3D64(b *testing.B) {
	d := grid.D3(64, 64, 64)
	rng := rand.New(rand.NewSource(1))
	data := randSlice(rng, d.Len())
	p := NewPlan(d)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(data)
		p.Inverse(data)
	}
}
