package wavelet

// Cache-blocked lifting kernels. The strided Y and Z passes of the 3D
// transform gather a tile of panelW x-adjacent lines into a dense n×w
// row-major panel (row i holds sample i of all w lines), run every lifting
// step across the whole panel with unit-stride inner loops, and scatter
// the panel back. Gather/scatter become contiguous w-element copies (one
// pass over memory per tile instead of one strided walk per line), and
// the lifting loops vectorize. Per element the arithmetic is the same
// operations in the same order as the scalar 1D kernels in cdf97.go, so
// panel results are bit-identical to the scalar reference — a property
// the transform tests assert exhaustively.

// panelW is the tile width: the number of x-adjacent lines transformed
// together. 16 float64 lanes = two cache lines per panel row, wide enough
// to amortize loop overhead while a 256-row panel still fits in L1/L2.
const panelW = 16

// liftPair computes dst[t] += c * (a[t] + b[t]).
func liftPair(dst, a, b []float64, c float64) {
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	for t := range dst {
		dst[t] += c * (a[t] + b[t])
	}
}

// liftOne computes dst[t] += c * a[t].
func liftOne(dst, a []float64, c float64) {
	_ = a[len(dst)-1]
	for t := range dst {
		dst[t] += c * a[t]
	}
}

// scalePair computes dst[t] = epsilon * (dst[t] + delta*(a[t]+b[t])).
func scalePair(dst, a, b []float64) {
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	for t := range dst {
		dst[t] = epsilon * (dst[t] + delta*(a[t]+b[t]))
	}
}

// scaleOne computes dst[t] = epsilon * (dst[t] + 2*delta*a[t]).
func scaleOne(dst, a []float64) {
	_ = a[len(dst)-1]
	for t := range dst {
		dst[t] = epsilon * (dst[t] + 2*delta*a[t])
	}
}

// unscalePair computes dst[t] = dst[t]/epsilon - delta*(a[t]+b[t]).
func unscalePair(dst, a, b []float64) {
	_ = a[len(dst)-1]
	_ = b[len(dst)-1]
	for t := range dst {
		dst[t] = dst[t]/epsilon - delta*(a[t]+b[t])
	}
}

// unscaleOne computes dst[t] = dst[t]/epsilon - 2*delta*a[t].
func unscaleOne(dst, a []float64) {
	_ = a[len(dst)-1]
	for t := range dst {
		dst[t] = dst[t]/epsilon - 2*delta*a[t]
	}
}

// divNegEps computes dst[t] /= -epsilon.
func divNegEps(dst []float64) {
	for t := range dst {
		dst[t] /= -epsilon
	}
}

// mulNegEps computes dst[t] *= -epsilon.
func mulNegEps(dst []float64) {
	for t := range dst {
		dst[t] *= -epsilon
	}
}

// forwardEvenPanel is forwardEven applied to every column of an n×w panel.
func forwardEvenPanel(p []float64, n, w int) {
	row := func(i int) []float64 { return p[i*w : (i+1)*w : (i+1)*w] }
	for i := 1; i < n-2; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), alpha)
	}
	liftOne(row(n-1), row(n-2), 2*alpha)

	liftOne(row(0), row(1), 2*beta)
	for i := 2; i < n; i += 2 {
		liftPair(row(i), row(i+1), row(i-1), beta)
	}

	for i := 1; i < n-2; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), gamma)
	}
	liftOne(row(n-1), row(n-2), 2*gamma)

	scaleOne(row(0), row(1))
	for i := 2; i < n; i += 2 {
		scalePair(row(i), row(i+1), row(i-1))
	}

	for i := 1; i < n; i += 2 {
		divNegEps(row(i))
	}
}

// inverseEvenPanel inverts forwardEvenPanel.
func inverseEvenPanel(p []float64, n, w int) {
	row := func(i int) []float64 { return p[i*w : (i+1)*w : (i+1)*w] }
	for i := 1; i < n; i += 2 {
		mulNegEps(row(i))
	}

	unscaleOne(row(0), row(1))
	for i := 2; i < n; i += 2 {
		unscalePair(row(i), row(i+1), row(i-1))
	}

	for i := 1; i < n-2; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), -gamma)
	}
	liftOne(row(n-1), row(n-2), -2*gamma)

	liftOne(row(0), row(1), -2*beta)
	for i := 2; i < n; i += 2 {
		liftPair(row(i), row(i+1), row(i-1), -beta)
	}

	for i := 1; i < n-2; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), -alpha)
	}
	liftOne(row(n-1), row(n-2), -2*alpha)
}

// forwardOddPanel is forwardOdd applied to every column of an n×w panel.
func forwardOddPanel(p []float64, n, w int) {
	row := func(i int) []float64 { return p[i*w : (i+1)*w : (i+1)*w] }
	for i := 1; i < n-1; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), alpha)
	}

	liftOne(row(0), row(1), 2*beta)
	for i := 2; i < n-2; i += 2 {
		liftPair(row(i), row(i+1), row(i-1), beta)
	}
	liftOne(row(n-1), row(n-2), 2*beta)

	for i := 1; i < n-1; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), gamma)
	}

	scaleOne(row(0), row(1))
	for i := 2; i < n-2; i += 2 {
		scalePair(row(i), row(i+1), row(i-1))
	}
	scaleOne(row(n-1), row(n-2))

	for i := 1; i < n-1; i += 2 {
		divNegEps(row(i))
	}
}

// inverseOddPanel inverts forwardOddPanel.
func inverseOddPanel(p []float64, n, w int) {
	row := func(i int) []float64 { return p[i*w : (i+1)*w : (i+1)*w] }
	for i := 1; i < n-1; i += 2 {
		mulNegEps(row(i))
	}

	unscaleOne(row(0), row(1))
	for i := 2; i < n-2; i += 2 {
		unscalePair(row(i), row(i+1), row(i-1))
	}
	unscaleOne(row(n-1), row(n-2))

	for i := 1; i < n-1; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), -gamma)
	}

	liftOne(row(0), row(1), -2*beta)
	for i := 2; i < n-2; i += 2 {
		liftPair(row(i), row(i+1), row(i-1), -beta)
	}
	liftOne(row(n-1), row(n-2), -2*beta)

	for i := 1; i < n-1; i += 2 {
		liftPair(row(i), row(i-1), row(i+1), -alpha)
	}
}

// deinterleavePanel gathers even-index rows to the front and odd-index
// rows to the back, the panel analogue of deinterleave.
func deinterleavePanel(p, scratch []float64, n, w int) {
	low := (n + 1) / 2
	for i := 0; i < low; i++ {
		copy(scratch[i*w:(i+1)*w], p[2*i*w:])
	}
	for i := 0; i < n/2; i++ {
		copy(scratch[(low+i)*w:(low+i+1)*w], p[(2*i+1)*w:])
	}
	copy(p[:n*w], scratch[:n*w])
}

// interleavePanel inverts deinterleavePanel.
func interleavePanel(p, scratch []float64, n, w int) {
	low := (n + 1) / 2
	for i := 0; i < low; i++ {
		copy(scratch[2*i*w:(2*i+1)*w], p[i*w:])
	}
	for i := 0; i < n/2; i++ {
		copy(scratch[(2*i+1)*w:(2*i+2)*w], p[(low+i)*w:])
	}
	copy(p[:n*w], scratch[:n*w])
}

// forwardPanel applies one analysis level to every column of an n×w panel
// and deinterleaves rows into subband order, mirroring Forward1D.
func forwardPanel(p, scratch []float64, n, w int) {
	if n < 4 {
		return
	}
	if n%2 == 0 {
		forwardEvenPanel(p, n, w)
	} else {
		forwardOddPanel(p, n, w)
	}
	deinterleavePanel(p, scratch, n, w)
}

// inversePanel inverts forwardPanel, mirroring Inverse1D.
func inversePanel(p, scratch []float64, n, w int) {
	if n < 4 {
		return
	}
	interleavePanel(p, scratch, n, w)
	if n%2 == 0 {
		inverseEvenPanel(p, n, w)
	} else {
		inverseOddPanel(p, n, w)
	}
}
