package wavelet

import (
	"testing"

	"sperr/internal/grid"
)

// panelTestDims stresses the blocked passes across tile-boundary and
// degenerate shapes: 1-thick axes, odd/prime extents, exact panelW
// multiples, panelW remainders, and lengths below the transform minimum.
var panelTestDims = []grid.Dims{
	{NX: 1, NY: 37, NZ: 1},
	{NX: 1, NY: 1, NZ: 29},
	{NX: 5, NY: 7, NZ: 3},
	{NX: 17, NY: 9, NZ: 33},
	{NX: 16, NY: 16, NZ: 16},
	{NX: 31, NY: 4, NZ: 5},
	{NX: 32, NY: 32, NZ: 32},
	{NX: 33, NY: 13, NZ: 11},
	{NX: 48, NY: 5, NZ: 23},
	{NX: 3, NY: 41, NZ: 2},
	{NX: 64, NY: 7, NZ: 1},
}

func panelTestField(d grid.Dims, seed uint64) []float64 {
	data := make([]float64, d.NX*d.NY*d.NZ)
	s := seed | 1
	for i := range data {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		// Mix magnitudes so every lifting step sees non-trivial rounding.
		data[i] = (float64(int64(s))/float64(1<<62))*1e3 + float64(i%17)
	}
	return data
}

func assertBitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x", what, i, got[i], want[i])
		}
	}
}

// The blocked panel passes must reproduce the scalar gather/scatter
// reference bit-for-bit on every shape.
func TestBlockedMatchesScalarReference(t *testing.T) {
	for _, d := range panelTestDims {
		p := NewPlan(d)
		orig := panelTestField(d, uint64(d.NX*1000003+d.NY*1009+d.NZ))

		want := append([]float64(nil), orig...)
		p.forwardScalarRef(want)

		got := append([]float64(nil), orig...)
		p.ForwardScratch(got, nil)
		assertBitIdentical(t, got, want, d.String()+" forward")

		wantInv := append([]float64(nil), want...)
		p.inverseScalarRef(wantInv)
		gotInv := append([]float64(nil), want...)
		p.InverseScratch(gotInv, nil)
		assertBitIdentical(t, gotInv, wantInv, d.String()+" inverse")
	}
}

// Threaded passes must be bit-identical to serial at every worker count,
// including counts far above the tile count.
func TestThreadedMatchesSerial(t *testing.T) {
	for _, d := range panelTestDims {
		p := NewPlan(d)
		orig := panelTestField(d, 42)

		serial := append([]float64(nil), orig...)
		p.ForwardScratch(serial, nil)

		for _, threads := range []int{2, 3, 8, 64} {
			got := append([]float64(nil), orig...)
			s := &Scratch{}
			p.ForwardScratchThreads(got, s, threads)
			assertBitIdentical(t, got, serial, d.String()+" threaded forward")

			back := append([]float64(nil), got...)
			p.InverseToLevelScratchThreads(back, 0, s, threads)
			ref := append([]float64(nil), serial...)
			p.InverseScratch(ref, nil)
			assertBitIdentical(t, back, ref, d.String()+" threaded inverse")
		}
	}
}

// A warmed scratch must stop growing across repeated threaded calls.
func TestScratchThreadedSteadyState(t *testing.T) {
	d := grid.Dims{NX: 40, NY: 33, NZ: 21}
	p := NewPlan(d)
	s := &Scratch{}
	data := panelTestField(d, 7)
	for i := 0; i < 3; i++ {
		work := append([]float64(nil), data...)
		p.ForwardScratchThreads(work, s, 4)
		p.InverseToLevelScratchThreads(work, 0, s, 4)
	}
	before := s.TotalGrows()
	for i := 0; i < 5; i++ {
		work := append([]float64(nil), data...)
		p.ForwardScratchThreads(work, s, 4)
		p.InverseToLevelScratchThreads(work, 0, s, 4)
	}
	if g := s.TotalGrows(); g != before {
		t.Fatalf("scratch grew after warm-up: %d -> %d", before, g)
	}
}
