package wavelet

import (
	"fmt"
	"math"
	"testing"

	"sperr/internal/grid"
)

// benchField fills a deterministic smooth-plus-noise volume so transform
// benchmarks see realistic (non-constant) data.
func benchField(d grid.Dims) []float64 {
	data := make([]float64, d.Len())
	i := 0
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[i] = math.Sin(0.1*float64(x))*math.Cos(0.07*float64(y)) +
					0.5*math.Sin(0.05*float64(z)) +
					0.01*float64((x*31+y*17+z*7)%13)
				i++
			}
		}
	}
	return data
}

// BenchmarkWaveletForward3D measures the full multi-level forward CDF 9/7
// transform — the chunk pipeline's stage 1 (paper Figure 6).
func BenchmarkWaveletForward3D(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("%dcube", n), func(b *testing.B) {
			dims := grid.D3(n, n, n)
			src := benchField(dims)
			data := make([]float64, len(src))
			plan := NewPlan(dims)
			var s Scratch
			b.SetBytes(int64(len(src) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(data, src)
				plan.ForwardScratch(data, &s)
			}
		})
	}
}

// BenchmarkWaveletInverse3D is the synthesis-side counterpart, exercised
// by both the decoder and the encoder's outlier-locate stage.
func BenchmarkWaveletInverse3D(b *testing.B) {
	const n = 64
	dims := grid.D3(n, n, n)
	src := benchField(dims)
	plan := NewPlan(dims)
	var s Scratch
	plan.ForwardScratch(src, &s)
	data := make([]float64, len(src))
	b.SetBytes(int64(len(src) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, src)
		plan.InverseScratch(data, &s)
	}
}
