package wavelet

import (
	"math"

	"sperr/internal/grid"
	"sperr/internal/par"
)

// step is one level of the dyadic decomposition: the extent of the current
// approximation box and which axes are transformed at this level.
type step struct {
	nx, ny, nz int
	ax, ay, az bool
}

// Plan precomputes the level schedule of a multi-dimensional transform for
// a given volume extent, so that forward and inverse transforms replay the
// identical sequence of 1D passes. Plans are immutable and safe for
// concurrent use; per-call scratch space is allocated by the worker.
type Plan struct {
	dims  grid.Dims
	steps []step
}

// NewPlan builds the transform schedule for dims. Axes of different length
// receive different numbers of passes: an axis is active at level i while
// i < Levels(axis length).
func NewPlan(dims grid.Dims) *Plan {
	lx, ly, lz := Levels(dims.NX), Levels(dims.NY), Levels(dims.NZ)
	total := lx
	if ly > total {
		total = ly
	}
	if lz > total {
		total = lz
	}
	p := &Plan{dims: dims}
	cx, cy, cz := dims.NX, dims.NY, dims.NZ
	for i := 0; i < total; i++ {
		st := step{nx: cx, ny: cy, nz: cz, ax: i < lx, ay: i < ly, az: i < lz}
		p.steps = append(p.steps, st)
		if st.ax {
			cx = (cx + 1) / 2
		}
		if st.ay {
			cy = (cy + 1) / 2
		}
		if st.az {
			cz = (cz + 1) / 2
		}
	}
	return p
}

// Dims returns the extent the plan was built for.
func (p *Plan) Dims() grid.Dims { return p.dims }

// NumLevels returns the total number of decomposition levels.
func (p *Plan) NumLevels() int { return len(p.steps) }

// Scratch holds the per-call temporaries of a multi-dimensional transform
// — 1D line buffers plus the panel tiles of the blocked Y/Z passes — so
// repeated transforms (one per chunk in the parallel pipeline) reuse
// buffers instead of allocating. The zero value is ready; buffers grow on
// demand and are retained across calls. A Scratch is not safe for
// concurrent use — give each worker its own; the threaded transform entry
// points draw per-goroutine sub-scratches from the same arena. Plans stay
// immutable and shareable.
type Scratch struct {
	line, tmp   []float64
	panel, ptmp []float64
	subs        []*Scratch  // lazily grown per-extra-goroutine arenas
	ws          []*Scratch  // pooled worker-set slice handed to the passes
	// Grows counts how many times this scratch's buffers had to be
	// (re)allocated; a warmed-up steady state stops growing. Sub-scratch
	// growth is reported by TotalGrows.
	Grows int
}

// buffers returns the line and deinterleave temporaries, each of length n.
func (s *Scratch) buffers(n int) (line, tmp []float64) {
	if cap(s.line) < n || cap(s.tmp) < n {
		s.line = make([]float64, n)
		s.tmp = make([]float64, n)
		s.Grows++
	}
	return s.line[:n], s.tmp[:n]
}

// panels returns the panel tile and its deinterleave twin, each sized for
// n rows of panelW columns.
func (s *Scratch) panels(n int) (panel, ptmp []float64) {
	need := n * panelW
	if cap(s.panel) < need || cap(s.ptmp) < need {
		s.panel = make([]float64, need)
		s.ptmp = make([]float64, need)
		s.Grows++
	}
	return s.panel[:need], s.ptmp[:need]
}

// workerSet returns [threads] scratches with s itself as worker 0,
// growing (and retaining) sub-scratches as needed. Called before
// goroutines spawn, so all arena mutation happens on the caller.
func (s *Scratch) workerSet(threads int) []*Scratch {
	if threads < 1 {
		threads = 1
	}
	if cap(s.ws) < threads {
		s.ws = make([]*Scratch, 0, threads)
		s.Grows++
	}
	ws := s.ws[:0]
	ws = append(ws, s)
	for len(ws) < threads {
		if len(ws)-1 >= len(s.subs) {
			s.subs = append(s.subs, &Scratch{})
			s.Grows++
		}
		ws = append(ws, s.subs[len(ws)-1])
	}
	s.ws = ws
	return ws
}

// TotalGrows reports Grows summed over this scratch and every
// sub-scratch the threaded passes have drawn from it.
func (s *Scratch) TotalGrows() int {
	g := s.Grows
	for _, sub := range s.subs {
		g += sub.Grows
	}
	return g
}

// parallelMinElems is the approximation-box volume below which a pass
// stays serial: the goroutine spawn + barrier cost must stay negligible
// against the pass work, and deep (small) levels run serial either way.
const parallelMinElems = 1 << 15

// spanWorkers decides how many goroutines a pass over elems elements
// uses. The split never changes results — lines are independent — only
// which goroutine computes them.
func spanWorkers(threads, elems int) int {
	return par.Workers(threads, elems, parallelMinElems)
}

// Forward applies the full multi-level analysis transform to data in place.
// data is row-major with extent p.Dims().
func (p *Plan) Forward(data []float64) {
	p.ForwardScratch(data, nil)
}

// ForwardScratch is Forward with caller-provided scratch space; s may be
// nil, which allocates temporaries for this call only.
func (p *Plan) ForwardScratch(data []float64, s *Scratch) {
	p.ForwardScratchThreads(data, s, 1)
}

// ForwardScratchThreads is ForwardScratch with each pass split over up to
// threads goroutines (intra-chunk parallelism; threads <= 1 is serial).
// Lines within a pass are independent, so the output is bit-identical at
// every thread count.
func (p *Plan) ForwardScratchThreads(data []float64, s *Scratch, threads int) {
	if s == nil {
		s = &Scratch{}
	}
	ws := s.workerSet(threads)
	for _, st := range p.steps {
		if st.ax && st.nx >= 4 {
			p.passX(data, st, true, ws)
		}
		if st.ay && st.ny >= 4 {
			p.passY(data, st, true, ws)
		}
		if st.az && st.nz >= 4 {
			p.passZ(data, st, true, ws)
		}
	}
}

// Inverse applies the full synthesis transform to data in place, exactly
// undoing Forward.
func (p *Plan) Inverse(data []float64) {
	p.InverseToLevel(data, 0)
}

// InverseScratch is Inverse with caller-provided scratch space.
func (p *Plan) InverseScratch(data []float64, s *Scratch) {
	p.InverseToLevelScratch(data, 0, s)
}

// InverseScratchThreads is InverseScratch with threaded passes.
func (p *Plan) InverseScratchThreads(data []float64, s *Scratch, threads int) {
	p.InverseToLevelScratchThreads(data, 0, s, threads)
}

// InverseToLevel undoes the transform only down to decomposition level
// drop (0 <= drop <= NumLevels): the finest drop levels stay folded, and
// data afterwards holds the level-drop approximation band in the sub-box
// returned by LevelDims(drop). Wavelet hierarchies represent data as
// self-similar coarsenings, which is what enables the multi-resolution
// reconstruction the paper's Section VII describes; drop = 0 is the full
// inverse. The approximation carries the low-pass DC gain of the skipped
// levels: divide by LevelScale(drop) to bring it to data scale.
func (p *Plan) InverseToLevel(data []float64, drop int) grid.Dims {
	return p.InverseToLevelScratch(data, drop, nil)
}

// InverseToLevelScratch is InverseToLevel with caller-provided scratch
// space; s may be nil.
func (p *Plan) InverseToLevelScratch(data []float64, drop int, s *Scratch) grid.Dims {
	return p.InverseToLevelScratchThreads(data, drop, s, 1)
}

// InverseToLevelScratchThreads is InverseToLevelScratch with threaded
// passes; output is bit-identical at every thread count.
func (p *Plan) InverseToLevelScratchThreads(data []float64, drop int, s *Scratch, threads int) grid.Dims {
	if drop < 0 {
		drop = 0
	}
	if drop > len(p.steps) {
		drop = len(p.steps)
	}
	if s == nil {
		s = &Scratch{}
	}
	ws := s.workerSet(threads)
	for i := len(p.steps) - 1; i >= drop; i-- {
		st := p.steps[i]
		if st.az && st.nz >= 4 {
			p.passZ(data, st, false, ws)
		}
		if st.ay && st.ny >= 4 {
			p.passY(data, st, false, ws)
		}
		if st.ax && st.nx >= 4 {
			p.passX(data, st, false, ws)
		}
	}
	return p.LevelDims(drop)
}

// LevelDims returns the extent of the approximation band after drop
// decomposition levels: each axis is ceil-halved once per level in which
// it is active.
func (p *Plan) LevelDims(drop int) grid.Dims {
	return grid.Dims{
		NX: CoarseLen(p.dims.NX, drop),
		NY: CoarseLen(p.dims.NY, drop),
		NZ: CoarseLen(p.dims.NZ, drop),
	}
}

// LevelScale returns the low-pass DC gain carried by the level-drop
// approximation band: sqrt(2) per applied transform per axis (the scaled
// CDF 9/7 low-pass filter has unit norm and sqrt(2) DC gain).
func (p *Plan) LevelScale(drop int) float64 {
	count := 0
	for _, n := range []int{p.dims.NX, p.dims.NY, p.dims.NZ} {
		l := Levels(n)
		if drop < l {
			count += drop
		} else {
			count += l
		}
	}
	return math.Pow(math.Sqrt2, float64(count))
}

// CoarseLen returns the length of a length-n axis after drop levels of
// decomposition (ceil-halved once per level the axis is active in).
func CoarseLen(n, drop int) int {
	k := Levels(n)
	if drop < k {
		k = drop
	}
	for i := 0; i < k; i++ {
		n = (n + 1) / 2
	}
	return n
}

func maxLine(d grid.Dims) int {
	n := d.NX
	if d.NY > n {
		n = d.NY
	}
	if d.NZ > n {
		n = d.NZ
	}
	return n
}

// passX transforms every x-line of the approximation box; lines are
// contiguous in memory, so no panel tiling is needed. The line slice is
// three-index capped once per line so the 1D kernels' inner loops carry
// no aliasing or bounds re-checks.
func (p *Plan) passX(data []float64, st step, fwd bool, ws []*Scratch) {
	lines := st.nz * st.ny
	nx, ny, stride := st.nx, st.ny, p.dims.NX
	par.Spans(lines, spanWorkers(len(ws), lines*nx), func(w, lo, hi int) {
		_, tmp := ws[w].buffers(maxLine(p.dims))
		for li := lo; li < hi; li++ {
			z, y := li/ny, li%ny
			off := (z*p.dims.NY + y) * stride
			s := data[off : off+nx : off+nx]
			if fwd {
				Forward1D(s, tmp)
			} else {
				Inverse1D(s, tmp)
			}
		}
	})
}

// passY transforms every y-line of the approximation box with the blocked
// panel kernels: panelW x-adjacent lines are gathered into a dense ny×w
// panel (contiguous w-element row copies), lifted with unit-stride inner
// loops, and scattered back.
func (p *Plan) passY(data []float64, st step, fwd bool, ws []*Scratch) {
	ny := st.ny
	nblk := (st.nx + panelW - 1) / panelW
	tiles := st.nz * nblk
	par.Spans(tiles, spanWorkers(len(ws), st.nx*st.ny*st.nz), func(wk, lo, hi int) {
		panel, ptmp := ws[wk].panels(ny)
		for ti := lo; ti < hi; ti++ {
			z, b := ti/nblk, ti%nblk
			x0 := b * panelW
			w := st.nx - x0
			if w > panelW {
				w = panelW
			}
			base := z*p.dims.NY*p.dims.NX + x0
			for y := 0; y < ny; y++ {
				copy(panel[y*w:(y+1)*w], data[base+y*p.dims.NX:])
			}
			if fwd {
				forwardPanel(panel, ptmp, ny, w)
			} else {
				inversePanel(panel, ptmp, ny, w)
			}
			for y := 0; y < ny; y++ {
				copy(data[base+y*p.dims.NX:base+y*p.dims.NX+w], panel[y*w:])
			}
		}
	})
}

// passZ transforms every z-line of the approximation box with the blocked
// panel kernels, tiling over x within each y-row.
func (p *Plan) passZ(data []float64, st step, fwd bool, ws []*Scratch) {
	nz := st.nz
	plane := p.dims.NY * p.dims.NX
	nblk := (st.nx + panelW - 1) / panelW
	tiles := st.ny * nblk
	par.Spans(tiles, spanWorkers(len(ws), st.nx*st.ny*st.nz), func(wk, lo, hi int) {
		panel, ptmp := ws[wk].panels(nz)
		for ti := lo; ti < hi; ti++ {
			y, b := ti/nblk, ti%nblk
			x0 := b * panelW
			w := st.nx - x0
			if w > panelW {
				w = panelW
			}
			off := y*p.dims.NX + x0
			for z := 0; z < nz; z++ {
				copy(panel[z*w:(z+1)*w], data[off+z*plane:])
			}
			if fwd {
				forwardPanel(panel, ptmp, nz, w)
			} else {
				inversePanel(panel, ptmp, nz, w)
			}
			for z := 0; z < nz; z++ {
				copy(data[off+z*plane:off+z*plane+w], panel[z*w:])
			}
		}
	})
}

// --- scalar reference path ---------------------------------------------
//
// The pre-blocking gather/scatter passes are retained as the bit-exactness
// oracle for the panel kernels: transform tests assert the blocked passes
// reproduce these results exactly on every dimension shape.

// forwardScalarRef applies the analysis transform with per-line
// gather/scatter passes (the reference implementation).
func (p *Plan) forwardScalarRef(data []float64) {
	line := make([]float64, maxLine(p.dims))
	tmp := make([]float64, maxLine(p.dims))
	ws := []*Scratch{{}}
	for _, st := range p.steps {
		if st.ax && st.nx >= 4 {
			p.passX(data, st, true, ws)
		}
		if st.ay && st.ny >= 4 {
			p.passYScalar(data, st, true, line, tmp)
		}
		if st.az && st.nz >= 4 {
			p.passZScalar(data, st, true, line, tmp)
		}
	}
}

// inverseScalarRef inverts forwardScalarRef.
func (p *Plan) inverseScalarRef(data []float64) {
	line := make([]float64, maxLine(p.dims))
	tmp := make([]float64, maxLine(p.dims))
	ws := []*Scratch{{}}
	for i := len(p.steps) - 1; i >= 0; i-- {
		st := p.steps[i]
		if st.az && st.nz >= 4 {
			p.passZScalar(data, st, false, line, tmp)
		}
		if st.ay && st.ny >= 4 {
			p.passYScalar(data, st, false, line, tmp)
		}
		if st.ax && st.nx >= 4 {
			p.passX(data, st, false, ws)
		}
	}
}

// passYScalar transforms every y-line via per-element gather/scatter.
func (p *Plan) passYScalar(data []float64, st step, fwd bool, line, scratch []float64) {
	ny := st.ny
	s := line[:ny]
	for z := 0; z < st.nz; z++ {
		base := z * p.dims.NY * p.dims.NX
		for x := 0; x < st.nx; x++ {
			for y := 0; y < ny; y++ {
				s[y] = data[base+y*p.dims.NX+x]
			}
			if fwd {
				Forward1D(s, scratch)
			} else {
				Inverse1D(s, scratch)
			}
			for y := 0; y < ny; y++ {
				data[base+y*p.dims.NX+x] = s[y]
			}
		}
	}
}

// passZScalar transforms every z-line via per-element gather/scatter.
func (p *Plan) passZScalar(data []float64, st step, fwd bool, line, scratch []float64) {
	nz := st.nz
	plane := p.dims.NY * p.dims.NX
	s := line[:nz]
	for y := 0; y < st.ny; y++ {
		for x := 0; x < st.nx; x++ {
			off := y*p.dims.NX + x
			for z := 0; z < nz; z++ {
				s[z] = data[off+z*plane]
			}
			if fwd {
				Forward1D(s, scratch)
			} else {
				Inverse1D(s, scratch)
			}
			for z := 0; z < nz; z++ {
				data[off+z*plane] = s[z]
			}
		}
	}
}
