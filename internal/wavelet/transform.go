package wavelet

import (
	"math"

	"sperr/internal/grid"
)

// step is one level of the dyadic decomposition: the extent of the current
// approximation box and which axes are transformed at this level.
type step struct {
	nx, ny, nz int
	ax, ay, az bool
}

// Plan precomputes the level schedule of a multi-dimensional transform for
// a given volume extent, so that forward and inverse transforms replay the
// identical sequence of 1D passes. Plans are immutable and safe for
// concurrent use; per-call scratch space is allocated by the worker.
type Plan struct {
	dims  grid.Dims
	steps []step
}

// NewPlan builds the transform schedule for dims. Axes of different length
// receive different numbers of passes: an axis is active at level i while
// i < Levels(axis length).
func NewPlan(dims grid.Dims) *Plan {
	lx, ly, lz := Levels(dims.NX), Levels(dims.NY), Levels(dims.NZ)
	total := lx
	if ly > total {
		total = ly
	}
	if lz > total {
		total = lz
	}
	p := &Plan{dims: dims}
	cx, cy, cz := dims.NX, dims.NY, dims.NZ
	for i := 0; i < total; i++ {
		st := step{nx: cx, ny: cy, nz: cz, ax: i < lx, ay: i < ly, az: i < lz}
		p.steps = append(p.steps, st)
		if st.ax {
			cx = (cx + 1) / 2
		}
		if st.ay {
			cy = (cy + 1) / 2
		}
		if st.az {
			cz = (cz + 1) / 2
		}
	}
	return p
}

// Dims returns the extent the plan was built for.
func (p *Plan) Dims() grid.Dims { return p.dims }

// NumLevels returns the total number of decomposition levels.
func (p *Plan) NumLevels() int { return len(p.steps) }

// Scratch holds the per-call line temporaries of a multi-dimensional
// transform so repeated transforms (one per chunk in the parallel
// pipeline) reuse buffers instead of allocating. The zero value is ready;
// buffers grow on demand and are retained across calls. A Scratch is not
// safe for concurrent use — give each worker its own. Plans stay immutable
// and shareable.
type Scratch struct {
	line, tmp []float64
	// Grows counts how many times the buffers had to be (re)allocated;
	// a warmed-up steady state stops growing.
	Grows int
}

// buffers returns the line and deinterleave temporaries, each of length n.
func (s *Scratch) buffers(n int) (line, tmp []float64) {
	if cap(s.line) < n || cap(s.tmp) < n {
		s.line = make([]float64, n)
		s.tmp = make([]float64, n)
		s.Grows++
	}
	return s.line[:n], s.tmp[:n]
}

// Forward applies the full multi-level analysis transform to data in place.
// data is row-major with extent p.Dims().
func (p *Plan) Forward(data []float64) {
	p.ForwardScratch(data, nil)
}

// ForwardScratch is Forward with caller-provided scratch space; s may be
// nil, which allocates temporaries for this call only.
func (p *Plan) ForwardScratch(data []float64, s *Scratch) {
	if s == nil {
		s = &Scratch{}
	}
	line, tmp := s.buffers(maxLine(p.dims))
	for _, st := range p.steps {
		if st.ax && st.nx >= 4 {
			p.passX(data, st, true, tmp)
		}
		if st.ay && st.ny >= 4 {
			p.passY(data, st, true, line, tmp)
		}
		if st.az && st.nz >= 4 {
			p.passZ(data, st, true, line, tmp)
		}
	}
}

// Inverse applies the full synthesis transform to data in place, exactly
// undoing Forward.
func (p *Plan) Inverse(data []float64) {
	p.InverseToLevel(data, 0)
}

// InverseScratch is Inverse with caller-provided scratch space.
func (p *Plan) InverseScratch(data []float64, s *Scratch) {
	p.InverseToLevelScratch(data, 0, s)
}

// InverseToLevel undoes the transform only down to decomposition level
// drop (0 <= drop <= NumLevels): the finest drop levels stay folded, and
// data afterwards holds the level-drop approximation band in the sub-box
// returned by LevelDims(drop). Wavelet hierarchies represent data as
// self-similar coarsenings, which is what enables the multi-resolution
// reconstruction the paper's Section VII describes; drop = 0 is the full
// inverse. The approximation carries the low-pass DC gain of the skipped
// levels: divide by LevelScale(drop) to bring it to data scale.
func (p *Plan) InverseToLevel(data []float64, drop int) grid.Dims {
	return p.InverseToLevelScratch(data, drop, nil)
}

// InverseToLevelScratch is InverseToLevel with caller-provided scratch
// space; s may be nil.
func (p *Plan) InverseToLevelScratch(data []float64, drop int, s *Scratch) grid.Dims {
	if drop < 0 {
		drop = 0
	}
	if drop > len(p.steps) {
		drop = len(p.steps)
	}
	if s == nil {
		s = &Scratch{}
	}
	line, tmp := s.buffers(maxLine(p.dims))
	for i := len(p.steps) - 1; i >= drop; i-- {
		st := p.steps[i]
		if st.az && st.nz >= 4 {
			p.passZ(data, st, false, line, tmp)
		}
		if st.ay && st.ny >= 4 {
			p.passY(data, st, false, line, tmp)
		}
		if st.ax && st.nx >= 4 {
			p.passX(data, st, false, tmp)
		}
	}
	return p.LevelDims(drop)
}

// LevelDims returns the extent of the approximation band after drop
// decomposition levels: each axis is ceil-halved once per level in which
// it is active.
func (p *Plan) LevelDims(drop int) grid.Dims {
	return grid.Dims{
		NX: CoarseLen(p.dims.NX, drop),
		NY: CoarseLen(p.dims.NY, drop),
		NZ: CoarseLen(p.dims.NZ, drop),
	}
}

// LevelScale returns the low-pass DC gain carried by the level-drop
// approximation band: sqrt(2) per applied transform per axis (the scaled
// CDF 9/7 low-pass filter has unit norm and sqrt(2) DC gain).
func (p *Plan) LevelScale(drop int) float64 {
	count := 0
	for _, n := range []int{p.dims.NX, p.dims.NY, p.dims.NZ} {
		l := Levels(n)
		if drop < l {
			count += drop
		} else {
			count += l
		}
	}
	return math.Pow(math.Sqrt2, float64(count))
}

// CoarseLen returns the length of a length-n axis after drop levels of
// decomposition (ceil-halved once per level the axis is active in).
func CoarseLen(n, drop int) int {
	k := Levels(n)
	if drop < k {
		k = drop
	}
	for i := 0; i < k; i++ {
		n = (n + 1) / 2
	}
	return n
}

func maxLine(d grid.Dims) int {
	n := d.NX
	if d.NY > n {
		n = d.NY
	}
	if d.NZ > n {
		n = d.NZ
	}
	return n
}

// passX transforms every x-line of the approximation box; lines are
// contiguous in memory.
func (p *Plan) passX(data []float64, st step, fwd bool, scratch []float64) {
	nx, stride := st.nx, p.dims.NX
	for z := 0; z < st.nz; z++ {
		for y := 0; y < st.ny; y++ {
			off := (z*p.dims.NY + y) * stride
			s := data[off : off+nx]
			if fwd {
				Forward1D(s, scratch)
			} else {
				Inverse1D(s, scratch)
			}
		}
	}
}

// passY transforms every y-line of the approximation box via gather/scatter.
func (p *Plan) passY(data []float64, st step, fwd bool, line, scratch []float64) {
	ny := st.ny
	s := line[:ny]
	for z := 0; z < st.nz; z++ {
		base := z * p.dims.NY * p.dims.NX
		for x := 0; x < st.nx; x++ {
			for y := 0; y < ny; y++ {
				s[y] = data[base+y*p.dims.NX+x]
			}
			if fwd {
				Forward1D(s, scratch)
			} else {
				Inverse1D(s, scratch)
			}
			for y := 0; y < ny; y++ {
				data[base+y*p.dims.NX+x] = s[y]
			}
		}
	}
}

// passZ transforms every z-line of the approximation box via gather/scatter.
func (p *Plan) passZ(data []float64, st step, fwd bool, line, scratch []float64) {
	nz := st.nz
	plane := p.dims.NY * p.dims.NX
	s := line[:nz]
	for y := 0; y < st.ny; y++ {
		for x := 0; x < st.nx; x++ {
			off := y*p.dims.NX + x
			for z := 0; z < nz; z++ {
				s[z] = data[off+z*plane]
			}
			if fwd {
				Forward1D(s, scratch)
			} else {
				Inverse1D(s, scratch)
			}
			for z := 0; z < nz; z++ {
				data[off+z*plane] = s[z]
			}
		}
	}
}
