package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func TestCoarseLen(t *testing.T) {
	cases := []struct{ n, drop, want int }{
		{64, 0, 64},
		{64, 1, 32},
		{64, 2, 16},
		{64, 4, 4},
		{64, 10, 4}, // Levels(64)=4: clamps
		{20, 1, 10}, // Levels(20)=2
		{20, 2, 5},
		{20, 5, 5},
		{8, 1, 4}, // Levels(8)=1
		{8, 3, 4},
		{7, 5, 7}, // too short to transform at all
		{33, 1, 17},
	}
	for _, c := range cases {
		if got := CoarseLen(c.n, c.drop); got != c.want {
			t.Errorf("CoarseLen(%d, %d) = %d, want %d", c.n, c.drop, got, c.want)
		}
	}
}

func TestLevelDimsAndScale(t *testing.T) {
	p := NewPlan(grid.D3(64, 64, 64))
	if d := p.LevelDims(0); d != grid.D3(64, 64, 64) {
		t.Fatalf("LevelDims(0) = %v", d)
	}
	if d := p.LevelDims(2); d != grid.D3(16, 16, 16) {
		t.Fatalf("LevelDims(2) = %v", d)
	}
	if s := p.LevelScale(0); s != 1 {
		t.Fatalf("LevelScale(0) = %g", s)
	}
	// One 3D level: sqrt(2)^3.
	want := math.Pow(math.Sqrt2, 3)
	if s := p.LevelScale(1); math.Abs(s-want) > 1e-12 {
		t.Fatalf("LevelScale(1) = %g, want %g", s, want)
	}
	// Clamps at the per-axis level count: 4 levels per axis max for 64.
	wantMax := math.Pow(math.Sqrt2, 12)
	if s := p.LevelScale(99); math.Abs(s-wantMax) > 1e-9 {
		t.Fatalf("LevelScale(99) = %g, want %g", s, wantMax)
	}
}

// InverseToLevel(0) must equal Inverse.
func TestInverseToLevelZeroIsFullInverse(t *testing.T) {
	d := grid.D3(32, 16, 8)
	rng := rand.New(rand.NewSource(1))
	orig := randSlice(rng, d.Len())
	a := append([]float64(nil), orig...)
	b := append([]float64(nil), orig...)
	p := NewPlan(d)
	p.Forward(a)
	p.Forward(b)
	p.Inverse(a)
	p.InverseToLevel(b, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("idx %d: %g != %g", i, a[i], b[i])
		}
	}
}

// A constant field's approximation band must be the constant times the DC
// gain at every level.
func TestInverseToLevelConstantScale(t *testing.T) {
	d := grid.D3(32, 32, 32)
	const c = 7.5
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = c
	}
	p := NewPlan(d)
	p.Forward(data)
	for drop := 1; drop <= p.NumLevels(); drop++ {
		work := append([]float64(nil), data...)
		// Forward was already applied; only invert down to `drop`.
		low := p.InverseToLevel(work, drop)
		scale := p.LevelScale(drop)
		for z := 0; z < low.NZ; z++ {
			for y := 0; y < low.NY; y++ {
				for x := 0; x < low.NX; x++ {
					got := work[d.Index(x, y, z)] / scale
					if math.Abs(got-c) > 1e-9 {
						t.Fatalf("drop=%d at (%d,%d,%d): %g, want %g", drop, x, y, z, got, c)
					}
				}
			}
		}
	}
}

// The partially inverted representation preserves energy to within the
// near-orthogonal transform's slack: InverseToLevel leaves a valid
// intermediate state of the synthesis cascade.
func TestInverseToLevelEnergy(t *testing.T) {
	d := grid.D3(24, 24, 24)
	rng := rand.New(rand.NewSource(2))
	orig := randSlice(rng, d.Len())
	full := append([]float64(nil), orig...)
	p := NewPlan(d)
	p.Forward(full)
	split := append([]float64(nil), full...)
	p.Inverse(full)
	p.InverseToLevel(split, 1)
	var eFull, eSplit float64
	for i := range full {
		eFull += full[i] * full[i]
	}
	for i := range split {
		eSplit += split[i] * split[i]
	}
	if eSplit < eFull*0.5 || eSplit > eFull*2 {
		t.Fatalf("partial inverse energy %g wildly off full %g", eSplit, eFull)
	}
}
