// Package fft provides a radix-2 complex fast Fourier transform (1D and
// 3D) used by the synthetic data generators to synthesize turbulence-like
// fields with prescribed power spectra. It is a from-scratch, stdlib-only
// implementation: iterative Cooley-Tukey with bit-reversal permutation.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (n >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of x (length must be a power
// of two): X[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
func Forward(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place inverse DFT of x including the 1/n
// normalization, so Inverse(Forward(x)) == x.
func Inverse(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// Forward3D computes the forward DFT of a 3D array (row-major, x fastest)
// with power-of-two extents, transforming along each axis in turn.
func Forward3D(x []complex128, nx, ny, nz int) {
	apply3D(x, nx, ny, nz, Forward)
}

// Inverse3D inverts Forward3D (normalization included).
func Inverse3D(x []complex128, nx, ny, nz int) {
	apply3D(x, nx, ny, nz, Inverse)
}

func apply3D(x []complex128, nx, ny, nz int, f func([]complex128)) {
	if len(x) != nx*ny*nz {
		panic("fft: data length does not match dims")
	}
	// x lines: contiguous.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			off := (z*ny + y) * nx
			f(x[off : off+nx])
		}
	}
	// y lines.
	line := make([]complex128, ny)
	for z := 0; z < nz; z++ {
		for xx := 0; xx < nx; xx++ {
			base := z*ny*nx + xx
			for y := 0; y < ny; y++ {
				line[y] = x[base+y*nx]
			}
			f(line)
			for y := 0; y < ny; y++ {
				x[base+y*nx] = line[y]
			}
		}
	}
	// z lines.
	if nz > 1 {
		lineZ := make([]complex128, nz)
		plane := ny * nx
		for y := 0; y < ny; y++ {
			for xx := 0; xx < nx; xx++ {
				base := y*nx + xx
				for z := 0; z < nz; z++ {
					lineZ[z] = x[base+z*plane]
				}
				f(lineZ)
				for z := 0; z < nz; z++ {
					x[base+z*plane] = lineZ[z]
				}
			}
		}
	}
}
