package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestIsPow2NextPow2(t *testing.T) {
	for _, c := range []struct {
		n    int
		is   bool
		next int
	}{
		{1, true, 1}, {2, true, 2}, {3, false, 4}, {4, true, 4},
		{5, false, 8}, {255, false, 256}, {256, true, 256}, {257, false, 512},
	} {
		if got := IsPow2(c.n); got != c.is {
			t.Errorf("IsPow2(%d) = %v", c.n, got)
		}
		if got := NextPow2(c.n); got != c.next {
			t.Errorf("NextPow2(%d) = %d, want %d", c.n, got, c.next)
		}
	}
	if IsPow2(0) || IsPow2(-4) {
		t.Error("non-positive inputs are not powers of two")
	}
}

func TestKnownDFT(t *testing.T) {
	// DFT of [1, 0, 0, 0] is [1, 1, 1, 1].
	x := []complex128{1, 0, 0, 0}
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a pure tone lands in a single bin.
	n := 64
	tone := make([]complex128, n)
	k := 5
	for j := range tone {
		ang := 2 * math.Pi * float64(k*j) / float64(n)
		tone[j] = cmplx.Exp(complex(0, ang))
	}
	Forward(tone)
	for j, v := range tone {
		want := 0.0
		if j == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("tone bin %d magnitude %g, want %g", j, cmplx.Abs(v), want)
		}
	}
}

func TestRoundTrip1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 8, 64, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		Forward(x)
		Inverse(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d: round trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestParsevalEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 256
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	Forward(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE)/timeE > 1e-10 {
		t.Fatalf("Parseval violated: %g vs %g", timeE, freqE)
	}
}

func TestRoundTrip3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nx, ny, nz := 8, 16, 4
	x := make([]complex128, nx*ny*nz)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	Forward3D(x, nx, ny, nz)
	Inverse3D(x, nx, ny, nz)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("3D round trip error at %d", i)
		}
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	Forward(make([]complex128, 6))
}

func BenchmarkForward1k(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
