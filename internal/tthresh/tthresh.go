// Package tthresh implements a TTHRESH-style lossy compressor (Ballester-
// Ripoll, Lindstrom, Pajarola, TVCG 2019), the tensor-decomposition
// baseline of the paper's evaluation.
//
// The volume is decomposed with a full HOSVD: for each mode the Gram
// matrix of the unfolding is eigendecomposed (data-dependent bases, unlike
// the fixed bases of ZFP/SPERR), the core tensor is the projection onto
// those bases, and the core is coded bitplane by bitplane until a target
// PSNR is met. Because the factors are orthonormal, the L2 error of the
// truncated core equals the L2 error of the reconstruction, which gives
// the encoder an exact stopping rule. Factor matrices are stored in
// float32, which — as in the real TTHRESH at very tight targets — sets an
// error floor that extra core bits cannot cross (the behaviour the paper
// reports in Section VI-C).
//
// TTHRESH targets an average error, not a point-wise bound; there is no
// PWE mode, exactly as in the paper (Figures 9/10 exclude it for that
// reason).
package tthresh

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sperr/internal/bits"
	"sperr/internal/grid"
	"sperr/internal/linalg"
	"sperr/internal/lossless"
)

// Params controls compression.
type Params struct {
	// TargetPSNR is the requested quality in dB, with PSNR defined on the
	// data range: PSNR = 20*log10(range/RMSE). The paper drives TTHRESH
	// with PSNR = (20*log10 2) * idx.
	TargetPSNR float64
}

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("tthresh: corrupt stream")

// corePrecision is the number of integer bitplanes used for the core.
const corePrecision = 52

// safeLen computes dims.Len with overflow checking: the extents arrive
// from the wire as three u32s whose product can overflow int.
func safeLen(d grid.Dims) (int, bool) {
	if !d.Valid() {
		return 0, false
	}
	xy := uint64(d.NX) * uint64(d.NY)
	if xy > math.MaxInt64/uint64(d.NZ) {
		return 0, false
	}
	return int(xy * uint64(d.NZ)), true
}

// Compress compresses data (row-major, extent dims).
func Compress(data []float64, dims grid.Dims, p Params) ([]byte, error) {
	if len(data) != dims.Len() {
		return nil, fmt.Errorf("tthresh: %d values for %v", len(data), dims)
	}
	if !(p.TargetPSNR > 0) {
		return nil, errors.New("tthresh: TargetPSNR must be positive")
	}
	n := [3]int{dims.NX, dims.NY, dims.NZ}

	// Target RMSE from PSNR over the data range.
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng == 0 {
		rng = 1
	}
	targetRMSE := rng / math.Pow(10, p.TargetPSNR/20)

	// HOSVD: factor per mode from the Gram matrix of the unfolding.
	factors := make([]*linalg.Matrix, 3)
	core := append([]float64(nil), data...)
	for mode := 0; mode < 3; mode++ {
		if n[mode] == 1 {
			factors[mode] = identity(1)
			continue
		}
		g := gram(core, dims, mode)
		_, v := linalg.SymEig(g)
		factors[mode] = v
		core = modeProject(core, dims, v, mode)
	}

	// Bitplane-code the core until the RMSE target is met.
	maxAbs := 0.0
	for _, v := range core {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = math.Ldexp(1, corePrecision) / maxAbs / 2
	}
	ints := make([]int64, len(core))
	neg := make([]bool, len(core))
	for i, v := range core {
		q := int64(math.Abs(v) * scale)
		ints[i] = q
		neg[i] = v < 0
	}
	w := bits.NewWriter(len(core))
	sig := make([]bool, len(core))
	recon := make([]int64, len(core))
	// Error budget in core (== data) domain, integer units.
	target2 := targetRMSE * scale * 0.85 // margin for factor quantization
	target2 = target2 * target2 * float64(len(core))
	planes := 0
	for k := corePrecision; k >= 0; k-- {
		planes++
		thr := int64(1) << uint(k)
		for i := range ints {
			if sig[i] {
				// Refinement bit.
				b := ints[i]&thr != 0
				w.WriteBit(b)
				if b {
					recon[i] |= thr
				}
			} else if ints[i] >= thr {
				w.WriteBit(true)
				w.WriteBit(neg[i])
				sig[i] = true
				recon[i] = thr
			} else {
				w.WriteBit(false)
			}
		}
		// Exact residual energy (mid-point reconstruction at this depth).
		var err2 float64
		half := float64(thr) / 2
		for i := range ints {
			var r float64
			if sig[i] {
				r = float64(ints[i]-recon[i]) - half
			} else {
				r = float64(ints[i])
			}
			err2 += r * r
		}
		if err2 <= target2 {
			break
		}
	}

	// Container: dims | psnr | scale | planes | nbits | factors(f32) | planes payload.
	var buf []byte
	for _, v := range n {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.TargetPSNR))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(scale))
	buf = append(buf, byte(planes))
	buf = binary.LittleEndian.AppendUint64(buf, w.Len())
	for _, f := range factors {
		for _, v := range f.Data {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v)))
		}
	}
	buf = append(buf, w.Bytes()...)
	return lossless.Compress(buf), nil
}

// Decompress reverses Compress.
func Decompress(stream []byte) ([]float64, grid.Dims, error) {
	var dims grid.Dims
	buf, err := lossless.Decompress(stream)
	if err != nil {
		return nil, dims, err
	}
	const fixed = 12 + 8 + 8 + 1 + 8
	if len(buf) < fixed {
		return nil, dims, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	dims = grid.Dims{
		NX: int(binary.LittleEndian.Uint32(buf[0:])),
		NY: int(binary.LittleEndian.Uint32(buf[4:])),
		NZ: int(binary.LittleEndian.Uint32(buf[8:])),
	}
	total, ok := safeLen(dims)
	if !ok {
		return nil, dims, fmt.Errorf("%w: invalid dims", ErrCorrupt)
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(buf[20:]))
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, dims, fmt.Errorf("%w: invalid scale %g", ErrCorrupt, scale)
	}
	planes := int(buf[28])
	if planes < 1 || planes > corePrecision+1 {
		return nil, dims, fmt.Errorf("%w: %d bitplanes (max %d)", ErrCorrupt, planes, corePrecision+1)
	}
	nbits := binary.LittleEndian.Uint64(buf[29:])
	off := fixed
	n := [3]int{dims.NX, dims.NY, dims.NZ}
	factors := make([]*linalg.Matrix, 3)
	for mode := 0; mode < 3; mode++ {
		// Size the factor matrix in uint64: forged extents can overflow the
		// n^2 element count; checking against the bytes actually present
		// also bounds the allocation below.
		nn := uint64(n[mode]) * uint64(n[mode])
		if nn > uint64(len(buf)-off)/4 {
			return nil, dims, fmt.Errorf("%w: factors truncated", ErrCorrupt)
		}
		need := int(nn) * 4
		f := linalg.NewMatrix(n[mode], n[mode])
		for i := range f.Data {
			f.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4*i:])))
		}
		off += need
		factors[mode] = f
	}
	if nbits > uint64(len(buf)-off)*8 {
		return nil, dims, fmt.Errorf("%w: core stream truncated", ErrCorrupt)
	}
	// Every coded plane reads at least one bit per point, so the declared
	// geometry cannot exceed the core bit budget — this bounds the
	// decode-side allocations by the stream length.
	if uint64(total) > nbits {
		return nil, dims, fmt.Errorf("%w: %d points exceed %d core bits", ErrCorrupt, total, nbits)
	}
	r := bits.NewReaderBits(buf[off:], nbits)
	sig := make([]bool, total)
	negs := make([]bool, total)
	recon := make([]int64, total)
	for pi := 0; pi < planes; pi++ {
		k := corePrecision - pi
		thr := int64(1) << uint(k)
		for i := 0; i < total; i++ {
			if sig[i] {
				if r.ReadBit() {
					recon[i] |= thr
				}
			} else if r.ReadBit() {
				negs[i] = r.ReadBit()
				sig[i] = true
				recon[i] = thr
			}
			if r.Exhausted() {
				return nil, dims, fmt.Errorf("%w: core stream truncated", ErrCorrupt)
			}
		}
	}
	lastK := corePrecision - planes + 1
	core := make([]float64, total)
	half := math.Ldexp(1, lastK-1) // mid-point of the last refined interval
	for i := range core {
		if !sig[i] {
			continue
		}
		v := (float64(recon[i]) + half) / scale
		if negs[i] {
			v = -v
		}
		core[i] = v
	}
	// Inverse mode products, reverse order.
	for mode := 2; mode >= 0; mode-- {
		core = modeReconstruct(core, dims, factors[mode], mode)
	}
	return core, dims, nil
}

func identity(n int) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// gram computes the Gram matrix of the mode-n unfolding:
// G[i][j] = sum over all fibers of a_i * a_j along that mode.
func gram(a []float64, d grid.Dims, mode int) *linalg.Matrix {
	n := [3]int{d.NX, d.NY, d.NZ}
	m := n[mode]
	g := linalg.NewMatrix(m, m)
	stride := [3]int{1, d.NX, d.NX * d.NY}[mode]
	// Iterate over all fibers along the mode.
	outer := [3][2]int{
		{d.NY, d.NZ}, // mode x: fibers indexed by (y, z)
		{d.NX, d.NZ}, // mode y
		{d.NX, d.NY}, // mode z
	}[mode]
	oStride := [3][2]int{
		{d.NX, d.NX * d.NY},
		{1, d.NX * d.NY},
		{1, d.NX},
	}[mode]
	fiber := make([]float64, m)
	for b := 0; b < outer[1]; b++ {
		for a2 := 0; a2 < outer[0]; a2++ {
			base := a2*oStride[0] + b*oStride[1]
			for i := 0; i < m; i++ {
				fiber[i] = a[base+i*stride]
			}
			for i := 0; i < m; i++ {
				fi := fiber[i]
				if fi == 0 {
					continue
				}
				row := g.Data[i*m : (i+1)*m]
				for j := i; j < m; j++ {
					row[j] += fi * fiber[j]
				}
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			g.Set(j, i, g.At(i, j))
		}
	}
	return g
}

// modeProject computes A x_mode U^T: out fiber = U^T * fiber (projection
// onto the eigenbasis).
func modeProject(a []float64, d grid.Dims, u *linalg.Matrix, mode int) []float64 {
	return modeApply(a, d, u, mode, true)
}

// modeReconstruct computes C x_mode U: out fiber = U * fiber.
func modeReconstruct(c []float64, d grid.Dims, u *linalg.Matrix, mode int) []float64 {
	return modeApply(c, d, u, mode, false)
}

func modeApply(a []float64, d grid.Dims, u *linalg.Matrix, mode int, transpose bool) []float64 {
	n := [3]int{d.NX, d.NY, d.NZ}
	m := n[mode]
	out := make([]float64, len(a))
	stride := [3]int{1, d.NX, d.NX * d.NY}[mode]
	outer := [3][2]int{
		{d.NY, d.NZ},
		{d.NX, d.NZ},
		{d.NX, d.NY},
	}[mode]
	oStride := [3][2]int{
		{d.NX, d.NX * d.NY},
		{1, d.NX * d.NY},
		{1, d.NX},
	}[mode]
	fiber := make([]float64, m)
	res := make([]float64, m)
	for b := 0; b < outer[1]; b++ {
		for a2 := 0; a2 < outer[0]; a2++ {
			base := a2*oStride[0] + b*oStride[1]
			for i := 0; i < m; i++ {
				fiber[i] = a[base+i*stride]
			}
			for i := range res {
				res[i] = 0
			}
			if transpose {
				// res[j] = sum_i U[i][j] * fiber[i]
				for i := 0; i < m; i++ {
					fi := fiber[i]
					if fi == 0 {
						continue
					}
					row := u.Data[i*m : (i+1)*m]
					for j := 0; j < m; j++ {
						res[j] += row[j] * fi
					}
				}
			} else {
				// res[i] = sum_j U[i][j] * fiber[j]
				for i := 0; i < m; i++ {
					row := u.Data[i*m : (i+1)*m]
					var s float64
					for j := 0; j < m; j++ {
						s += row[j] * fiber[j]
					}
					res[i] = s
				}
			}
			for i := 0; i < m; i++ {
				out[base+i*stride] = res[i]
			}
		}
	}
	return out
}
