package tthresh

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/metrics"
)

func smoothField(d grid.Dims, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = 30*math.Sin(0.25*float64(x))*math.Cos(0.2*float64(y))*
					math.Cos(0.15*float64(z)) + 0.02*rng.NormFloat64()
			}
		}
	}
	return data
}

func TestPSNRTargetMet(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := smoothField(d, 1)
	for _, psnr := range []float64{40, 60, 80} {
		stream, err := Compress(data, d, Params{TargetPSNR: psnr})
		if err != nil {
			t.Fatalf("psnr=%g: %v", psnr, err)
		}
		rec, gotDims, err := Decompress(stream)
		if err != nil {
			t.Fatalf("psnr=%g: %v", psnr, err)
		}
		if gotDims != d {
			t.Fatalf("dims %v", gotDims)
		}
		got := metrics.PSNR(data, rec)
		if got < psnr-0.5 {
			t.Errorf("target %g dB, achieved %g dB", psnr, got)
		}
	}
}

func TestHigherPSNRCostsMore(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := smoothField(d, 2)
	s40, err := Compress(data, d, Params{TargetPSNR: 40})
	if err != nil {
		t.Fatal(err)
	}
	s100, err := Compress(data, d, Params{TargetPSNR: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(s100) <= len(s40) {
		t.Errorf("100 dB (%d bytes) should cost more than 40 dB (%d bytes)",
			len(s100), len(s40))
	}
}

// TTHRESH shines on smooth, low-rank data at visualization-grade quality:
// it should beat 64-bit raw storage by a large factor at 50 dB.
func TestLowRankCompression(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				// Rank-2 separable field.
				data[d.Index(x, y, z)] = math.Sin(0.3*float64(x))*math.Cos(0.2*float64(y))*float64(z) +
					2*math.Cos(0.1*float64(x))
			}
		}
	}
	stream, err := Compress(data, d, Params{TargetPSNR: 50})
	if err != nil {
		t.Fatal(err)
	}
	bpp := float64(len(stream)*8) / float64(d.Len())
	if bpp > 8 {
		t.Errorf("low-rank field used %g BPP at 50 dB", bpp)
	}
}

func TestAnisotropicDims(t *testing.T) {
	d := grid.D3(20, 12, 8)
	data := smoothField(d, 3)
	stream, err := Compress(data, d, Params{TargetPSNR: 60})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.PSNR(data, rec); got < 59.5 {
		t.Errorf("achieved %g dB, want >= 60", got)
	}
}

func Test2DSlice(t *testing.T) {
	d := grid.D2(32, 32)
	data := smoothField(d, 4)
	stream, err := Compress(data, d, Params{TargetPSNR: 55})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.PSNR(data, rec); got < 54.5 {
		t.Errorf("2D achieved %g dB", got)
	}
}

func TestConstantField(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = 5.5
	}
	stream, err := Compress(data, d, Params{TargetPSNR: 80})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec {
		if math.Abs(rec[i]-5.5) > 1e-3 {
			t.Fatalf("constant field error %g at %d", math.Abs(rec[i]-5.5), i)
		}
	}
}

func TestValidation(t *testing.T) {
	d := grid.D3(4, 4, 4)
	data := make([]float64, d.Len())
	if _, err := Compress(data, d, Params{}); err == nil {
		t.Error("zero PSNR should fail")
	}
	if _, err := Compress(data[:7], d, Params{TargetPSNR: 50}); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := Decompress([]byte{3, 1}); err == nil {
		t.Error("garbage should fail")
	}
}

func BenchmarkCompress16(b *testing.B) {
	d := grid.D3(16, 16, 16)
	data := smoothField(d, 1)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, d, Params{TargetPSNR: 60}); err != nil {
			b.Fatal(err)
		}
	}
}
