// Package faultinject generates deterministic corruption campaigns over
// SPERR container streams: every frame-boundary truncation plus a
// stratified sweep of single-byte flips and zeroed runs across the fixed
// header, each frame body, and the index footer. The campaign is pure —
// no randomness, no clock — so a mutant that fails reproduces forever,
// and each mutant carries the ground truth the salvage tests assert
// against: which chunks' frames the mutation left byte-identical and
// fully present.
package faultinject

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Mutant is one deterministic corruption of a container stream.
type Mutant struct {
	// Name identifies the mutation (operation + byte position), stable
	// across runs: "truncate@120", "flip@57&80", "zero@200+8".
	Name string
	// Region classifies where the damage landed: "header", "frame",
	// "footer", or "cut" for truncations.
	Region string
	// Data is the mutated stream (an independent copy).
	Data []byte
	// HeaderIntact reports that the 36-byte fixed header survived — the
	// precondition for salvage to attribute anything at all.
	HeaderIntact bool
	// IntactChunks lists the chunks whose complete frame byte range
	// (length prefix through trailing CRC) is present and byte-identical
	// in Data. Salvage must recover at least this set (v2, intact header).
	IntactChunks []int
	// PayloadIntact lists the chunks whose payload bytes are present and
	// byte-identical, regardless of damage to the length prefix or the
	// trailing CRC — such a chunk may still verify through the index
	// footer's copy of its checksum. Salvage must never recover a chunk
	// outside this set (v2): that would mean delivering damaged samples
	// as good. IntactChunks is always a subset.
	PayloadIntact []int
	// PrefixIntact lists the chunks for which every frame up to and
	// including their own is intact — the guarantee a sequential v1
	// decode (no checksums, resync by header parse only) can honor.
	PrefixIntact []int
}

// layout is the byte map of a container, derived from the stream itself.
type layout struct {
	version int
	size    int
	// frames[i] is the [start, end) byte range of chunk i's full frame:
	// length prefix, payload, and (v2) trailing CRC.
	frames [][2]int
	// footer is the [start, end) range after the last frame: the v2 index
	// footer, or empty for v1.
	footer [2]int
}

// describe walks an intact container's frames by their length prefixes.
// The input must be undamaged — campaigns mutate copies of a golden
// stream, so the walk is trusted.
func describe(stream []byte) (*layout, error) {
	if len(stream) < 36 {
		return nil, fmt.Errorf("faultinject: stream too short (%d bytes)", len(stream))
	}
	var version int
	switch string(stream[:8]) {
	case "SPRRGO01":
		version = 1
	case "SPRRGO02":
		version = 2
	case "SPRRGO03":
		version = 3
	default:
		return nil, fmt.Errorf("faultinject: bad magic %q", stream[:8])
	}
	nchunks := int(binary.LittleEndian.Uint32(stream[32:]))
	l := &layout{version: version, size: len(stream)}
	overhead := 4
	if version >= 2 {
		overhead = 8
	}
	off := 36
	for i := 0; i < nchunks; i++ {
		if off+4 > len(stream) {
			return nil, fmt.Errorf("faultinject: frame %d out of bounds", i)
		}
		n := int(binary.LittleEndian.Uint32(stream[off:]))
		end := off + overhead + n
		if end > len(stream) {
			return nil, fmt.Errorf("faultinject: frame %d overruns stream", i)
		}
		l.frames = append(l.frames, [2]int{off, end})
		off = end
	}
	l.footer = [2]int{off, len(stream)}
	return l, nil
}

// Campaign derives the full deterministic mutation set for one container
// stream: truncations at every frame boundary (plus mid-header,
// mid-frame, and mid-footer cuts), single-byte flips with two masks at
// stratified positions in every region, and 8-byte zeroed runs. The
// input stream must be intact; it is never modified.
func Campaign(stream []byte) ([]Mutant, error) {
	l, err := describe(stream)
	if err != nil {
		return nil, err
	}

	var muts []Mutant
	add := func(m Mutant) {
		m.HeaderIntact = len(m.Data) >= 36 && bytes.Equal(m.Data[:36], stream[:36])
		for i, fr := range l.frames {
			if fr[1] <= len(m.Data) && bytes.Equal(m.Data[fr[0]:fr[1]], stream[fr[0]:fr[1]]) {
				m.IntactChunks = append(m.IntactChunks, i)
				if len(m.PrefixIntact) == i {
					m.PrefixIntact = append(m.PrefixIntact, i)
				}
			}
			pEnd := fr[1]
			if l.version >= 2 {
				pEnd -= 4
			}
			if pEnd <= len(m.Data) && bytes.Equal(m.Data[fr[0]+4:pEnd], stream[fr[0]+4:pEnd]) {
				m.PayloadIntact = append(m.PayloadIntact, i)
			}
		}
		muts = append(muts, m)
	}

	// Truncations: every frame boundary, plus cuts inside the header, each
	// frame, and the footer. The empty and one-byte streams ride along as
	// degenerate boundary cases.
	cutSet := map[int]bool{0: true, 1: true, 8: true, 20: true, 35: true}
	for _, fr := range l.frames {
		cutSet[fr[0]] = true                 // before the frame
		cutSet[fr[0]+4] = true               // after its length prefix
		cutSet[(fr[0]+fr[1])/2] = true       // mid-payload
		cutSet[fr[1]] = true                 // after the frame
		if l.version >= 2 && fr[1]-1 >= 0 { // inside the trailing CRC
			cutSet[fr[1]-2] = true
		}
	}
	if l.footer[1] > l.footer[0] {
		cutSet[(l.footer[0]+l.footer[1])/2] = true
		cutSet[l.size-1] = true
	}
	cuts := make([]int, 0, len(cutSet))
	for c := range cutSet {
		if c >= 0 && c < l.size {
			cuts = append(cuts, c)
		}
	}
	sort.Ints(cuts)
	for _, c := range cuts {
		add(Mutant{
			Name:   fmt.Sprintf("truncate@%d", c),
			Region: "cut",
			Data:   bytes.Clone(stream[:c]),
		})
	}

	// Single-byte flips, two masks each: a low bit (subtle value damage)
	// and the high bit (structural damage to lengths and offsets).
	type pos struct {
		off    int
		region string
	}
	var flips []pos
	for _, o := range []int{1, 9, 33} { // magic, volDims, nchunks
		flips = append(flips, pos{o, "header"})
	}
	for _, fr := range l.frames {
		flips = append(flips, pos{fr[0], "frame"})     // length prefix
		flips = append(flips, pos{fr[0] + 4, "frame"}) // first payload byte
		flips = append(flips, pos{(fr[0] + fr[1]) / 2, "frame"})
		if l.version >= 2 {
			flips = append(flips, pos{fr[1] - 5, "frame"}) // last payload byte
			flips = append(flips, pos{fr[1] - 3, "frame"}) // inside the CRC
		} else {
			flips = append(flips, pos{fr[1] - 1, "frame"})
		}
	}
	if l.footer[1] > l.footer[0] {
		fo := l.footer[0]
		flips = append(flips, pos{fo, "footer"})                       // first index entry
		flips = append(flips, pos{(fo + l.footer[1]) / 2, "footer"})   // aggregates region
		flips = append(flips, pos{l.size - 20, "footer"})              // tail CRC
		flips = append(flips, pos{l.size - 16, "footer"})              // tail indexOffset
		flips = append(flips, pos{l.size - 4, "footer"})               // tail magic
	}
	for _, p := range flips {
		for _, mask := range []byte{0x01, 0x80} {
			data := bytes.Clone(stream)
			data[p.off] ^= mask
			add(Mutant{
				Name:   fmt.Sprintf("flip@%d&%02x", p.off, mask),
				Region: p.region,
				Data:   data,
			})
		}
	}

	// Zeroed runs: 8 bytes wiped — the shape of a lost sector edge or a
	// partially written page.
	type run struct {
		off    int
		region string
	}
	var runs []run
	runs = append(runs, run{28, "header"}) // chunkDims.NZ + nchunks
	for _, fr := range l.frames {
		runs = append(runs, run{(fr[0] + fr[1]) / 2, "frame"})
	}
	if l.footer[1] > l.footer[0] {
		runs = append(runs, run{l.footer[0], "footer"})
		runs = append(runs, run{l.size - 20, "footer"})
	}
	for _, r := range runs {
		n := 8
		if r.off+n > l.size {
			n = l.size - r.off
		}
		data := bytes.Clone(stream)
		for i := 0; i < n; i++ {
			data[r.off+i] = 0
		}
		add(Mutant{
			Name:   fmt.Sprintf("zero@%d+%d", r.off, n),
			Region: r.region,
			Data:   data,
		})
	}

	return muts, nil
}
