package faultinject

// The fault-injection campaign: every mutant of the golden fixtures must
// decode without panicking, within a deadline, under an allocation cap —
// and salvage must recover at least every fully intact frame while never
// delivering a chunk whose payload bytes were touched.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"sperr"
	"sperr/internal/chunk"
)

const (
	// mutantDeadline bounds one mutant's full check (salvage + audit +
	// repair round-trip). A hang here is a liveness bug, not slowness: the
	// fixtures are a few kilobytes.
	mutantDeadline = 20 * time.Second
	// allocCap bounds the heap allocated while salvaging one mutant of a
	// ~3700-sample fixture. A forged header or length prefix that drives
	// allocation past this is exactly the bug the bound exists to catch.
	allocCap = 64 << 20
)

func TestMain(m *testing.M) {
	// Cap decode-side allocation globally, as any service feeding
	// untrusted bytes to the decoder would.
	chunk.MaxDecodePoints = 1 << 22
	os.Exit(m.Run())
}

func loadFixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return data
}

func TestCampaignV2(t *testing.T) {
	runCampaign(t, "golden_pwe_24x17x9_v2.sperr", 2)
}

func TestCampaignV1(t *testing.T) {
	runCampaign(t, "golden_pwe_24x17x9.sperr", 1)
}

// TestCampaignV3 runs the identical contract over the mixed-codec
// adaptive fixture: frame damage on non-SPERR chunks must be absorbed,
// attributed, and repaired exactly like SPERR ones.
func TestCampaignV3(t *testing.T) {
	runCampaign(t, "golden_adaptive_48x32x32_v3.sperr", 3)
}

func runCampaign(t *testing.T, fixture string, version int) {
	stream := loadFixture(t, fixture)
	baseline, dims, err := sperr.Decompress(stream)
	if err != nil {
		t.Fatalf("baseline decode: %v", err)
	}
	muts, err := Campaign(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) < 40 {
		t.Fatalf("campaign produced only %d mutants", len(muts))
	}
	t.Logf("%s: %d mutants", fixture, len(muts))

	for _, m := range muts {
		m := m
		done := make(chan error, 1)
		go func() {
			var err error
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
				done <- err
			}()
			err = checkMutant(m, version, baseline, dims)
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		case <-time.After(mutantDeadline):
			t.Fatalf("%s: exceeded %v deadline (hang)", m.Name, mutantDeadline)
		}
	}
}

// checkMutant runs the full salvage contract against one mutant.
func checkMutant(m Mutant, version int, baseline []float64, dims [3]int) error {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	data, gotDims, rep, err := sperr.DecompressSalvageWorkers(m.Data, math.NaN(), 1)
	runtime.ReadMemStats(&after)
	if d := after.TotalAlloc - before.TotalAlloc; d > allocCap {
		return fmt.Errorf("salvage allocated %d bytes (cap %d)", d, allocCap)
	}
	if err != nil {
		// Only an unusable fixed header excuses a salvage error; all
		// frame- and footer-level damage must be absorbed.
		if m.HeaderIntact {
			return fmt.Errorf("salvage failed despite intact header: %v", err)
		}
		return nil
	}
	if !m.HeaderIntact {
		// A damaged header that still parses (e.g. a truncation past the
		// header) may legitimately salvage; nothing more to assert against
		// the original geometry.
		return nil
	}
	if gotDims != dims {
		return fmt.Errorf("dims %v, want %v", gotDims, dims)
	}

	recovered := map[int]bool{}
	for _, c := range rep.Chunks {
		if c.Recovered {
			recovered[c.Index] = true
		}
	}
	// Lower bound: every fully intact frame must be recovered.
	must := m.IntactChunks
	if version == 1 {
		must = m.PrefixIntact
	}
	for _, i := range must {
		if !recovered[i] {
			return fmt.Errorf("intact chunk %d not recovered (report: %+v)", i, rep.Chunks[i])
		}
	}
	// Upper bound (v2+): recovering a chunk whose payload bytes were
	// damaged would deliver corrupt samples as good data. v1 has no
	// checksums, so a body flip is undetectable by design there.
	if version >= 2 {
		payloadOK := map[int]bool{}
		for _, i := range m.PayloadIntact {
			payloadOK[i] = true
		}
		for i := range recovered {
			if !payloadOK[i] {
				return fmt.Errorf("chunk %d recovered from a damaged payload", i)
			}
		}
	}

	// Content oracle: recovered intact chunks reproduce the baseline
	// bit-for-bit; lost chunks are all-NaN. For v1 the guarantee holds
	// only on the intact prefix: without checksums, a resync past damage
	// can attribute plausible-but-wrong bytes, so later chunks are
	// best-effort by design.
	intact := map[int]bool{}
	for _, i := range m.IntactChunks {
		intact[i] = true
	}
	strong := intact
	if version == 1 {
		strong = map[int]bool{}
		for _, i := range m.PrefixIntact {
			strong[i] = true
		}
	}
	for _, c := range rep.Chunks {
		checkContent := c.Recovered && strong[c.Index]
		for z := 0; z < c.Dims.NZ; z++ {
			for y := 0; y < c.Dims.NY; y++ {
				for x := 0; x < c.Dims.NX; x++ {
					i := ((c.Origin[2]+z)*dims[1]+c.Origin[1]+y)*dims[0] + c.Origin[0] + x
					switch {
					case checkContent:
						if math.Float64bits(data[i]) != math.Float64bits(baseline[i]) {
							return fmt.Errorf("chunk %d sample (%d,%d,%d) differs from baseline",
								c.Index, x, y, z)
						}
					case !c.Recovered:
						if !math.IsNaN(data[i]) {
							return fmt.Errorf("lost chunk %d sample (%d,%d,%d) = %g, want NaN",
								c.Index, x, y, z, data[i])
						}
					}
				}
			}
		}
	}

	// Audit agrees with salvage on what is recoverable (v2+: both paths
	// verify payloads against checksums; decode of a verified frame never
	// fails).
	arep, err := sperr.Audit(m.Data)
	if err != nil {
		return fmt.Errorf("audit errored where salvage succeeded: %v", err)
	}
	if version >= 2 {
		for i := range arep.Chunks {
			if arep.Chunks[i].Recovered != recovered[i] {
				return fmt.Errorf("audit and salvage disagree on chunk %d", i)
			}
		}
	}

	// Repair round-trip: when anything survived, the repaired container
	// must pass a normal strict decode, with survivors bit-identical to
	// the baseline.
	if rep.Recovered == 0 {
		return nil
	}
	fixed, rrep, err := sperr.Repair(m.Data)
	if err != nil {
		return fmt.Errorf("repair: %v", err)
	}
	rdata, rdims, err := sperr.Decompress(fixed)
	if err != nil {
		return fmt.Errorf("strict decode of repaired container: %v", err)
	}
	if rdims != dims {
		return fmt.Errorf("repaired dims %v, want %v", rdims, dims)
	}
	for _, c := range rrep.Chunks {
		if !(c.Recovered && strong[c.Index]) {
			continue
		}
		for z := 0; z < c.Dims.NZ; z++ {
			for y := 0; y < c.Dims.NY; y++ {
				for x := 0; x < c.Dims.NX; x++ {
					i := ((c.Origin[2]+z)*dims[1]+c.Origin[1]+y)*dims[0] + c.Origin[0] + x
					if math.Float64bits(rdata[i]) != math.Float64bits(baseline[i]) {
						return fmt.Errorf("repaired chunk %d not bit-identical at (%d,%d,%d)",
							c.Index, x, y, z)
					}
				}
			}
		}
	}
	return nil
}

// TestCampaignDeterministic pins that two runs generate identical
// mutants — the property that makes a campaign failure reproducible.
func TestCampaignDeterministic(t *testing.T) {
	stream := loadFixture(t, "golden_pwe_24x17x9_v2.sperr")
	a, err := Campaign(stream)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || string(a[i].Data) != string(b[i].Data) {
			t.Fatalf("mutant %d differs between runs", i)
		}
	}
}
