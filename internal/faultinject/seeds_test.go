package faultinject

// Seed export: a handful of campaign mutants are checked into testdata/
// as fuzz seeds (mutant_*.sperr), so the fuzzer starts from corruption
// shapes the campaign already proved interesting. Regenerate with
//
//	go test ./internal/faultinject/ -run TestSeedMutants -update-seeds
//
// after changing the golden fixture or the campaign generator; the test
// fails whenever the checked-in seeds drift from the campaign.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateSeeds = flag.Bool("update-seeds", false, "rewrite testdata/mutant_*.sperr fuzz seeds")

// seedMutants picks one representative mutant per damage shape, by
// campaign order (deterministic): the first truncation that leaves the
// header intact, a mid-stream truncation, and the first flip and zero
// run landing in each region.
func seedMutants(muts []Mutant) map[string][]byte {
	seeds := map[string][]byte{}
	put := func(key string, m Mutant) {
		if _, ok := seeds[key]; !ok {
			seeds[key] = m.Data
		}
	}
	var cuts []Mutant
	for _, m := range muts {
		op := m.Name[:strings.IndexByte(m.Name, '@')]
		if op == "truncate" {
			if m.HeaderIntact {
				cuts = append(cuts, m)
			}
			continue
		}
		put(fmt.Sprintf("mutant_%s_%s.sperr", m.Region, op), m)
	}
	if len(cuts) > 0 {
		put("mutant_cut_frame.sperr", cuts[0])
		put("mutant_cut_mid.sperr", cuts[len(cuts)/2])
	}
	return seeds
}

func TestSeedMutantsCurrent(t *testing.T) {
	stream := loadFixture(t, "golden_pwe_24x17x9_v2.sperr")
	muts, err := Campaign(stream)
	if err != nil {
		t.Fatal(err)
	}
	seeds := seedMutants(muts)
	if len(seeds) < 6 {
		t.Fatalf("only %d seed shapes selected", len(seeds))
	}
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join("..", "..", "testdata", name)
		if *updateSeeds {
			if err := os.WriteFile(path, seeds[name], 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", name, len(seeds[name]))
			continue
		}
		have, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update-seeds)", name, err)
		}
		if !bytes.Equal(have, seeds[name]) {
			t.Errorf("%s drifted from the campaign (regenerate with -update-seeds)", name)
		}
	}
}
