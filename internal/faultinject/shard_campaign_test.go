package faultinject

// The shard campaign extends the corruption contract to the cluster's
// unit of placement: a stub-shard container living on one peer. Every
// mutant of a shard must (a) never pass damaged frames through the
// ownership audit the scrubber relies on, and (b) never corrupt a
// full-cluster read while a clean replica of every chunk exists — the
// store's merge-or-replace convergence step must always produce a
// container that strict-decodes bit-identical to the baseline.

import (
	"fmt"
	"math"
	"testing"
	"time"

	"sperr"
)

func TestCampaignShardV2(t *testing.T) {
	runShardCampaign(t, "golden_pwe_24x17x9_v2.sperr")
}

func TestCampaignShardV3(t *testing.T) {
	runShardCampaign(t, "golden_adaptive_48x32x32_v3.sperr")
}

func runShardCampaign(t *testing.T, fixture string) {
	stream := loadFixture(t, fixture)
	baseline, dims, err := sperr.Decompress(stream)
	if err != nil {
		t.Fatalf("baseline decode: %v", err)
	}
	// The shard under attack holds the even chunks; the clean replica is
	// the full container (every chunk has an intact copy elsewhere).
	shard, err := sperr.SliceShard(stream, func(i int) bool { return i%2 == 0 })
	if err != nil {
		t.Fatalf("slice shard: %v", err)
	}
	shardOwned, err := sperr.OwnedChunks(shard)
	if err != nil {
		t.Fatal(err)
	}
	muts, err := Campaign(shard)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: %d shard mutants over %d owned chunks", fixture, len(muts), len(shardOwned))

	for _, m := range muts {
		m := m
		done := make(chan error, 1)
		go func() {
			var err error
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
				done <- err
			}()
			err = checkShardMutant(m, stream, baseline, dims)
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		case <-time.After(mutantDeadline):
			t.Fatalf("%s: exceeded %v deadline (hang)", m.Name, mutantDeadline)
		}
	}
}

// checkShardMutant emulates the store's shard convergence step exactly:
// a parseable resident shard merges with the incoming clean replica, an
// unparseable one is replaced wholesale. Either way the healed bytes
// must strict-decode bit-identical to the baseline — damage on one peer
// must never survive contact with a clean replica.
func checkShardMutant(m Mutant, clean []byte, baseline []float64, dims [3]int) error {
	owned, auditErr := sperr.OwnedChunks(m.Data)
	if auditErr == nil {
		// Upper bound on the audit: a chunk whose payload bytes were
		// touched must never be reported as owned — the scrubber would
		// skip re-fetching it and the damage would become permanent.
		payloadOK := map[int]bool{}
		for _, i := range m.PayloadIntact {
			payloadOK[i] = true
		}
		for _, i := range owned {
			if !payloadOK[i] {
				return fmt.Errorf("damaged chunk %d passed the ownership audit", i)
			}
		}
	}

	healed := clean // wholesale replace of an unparseable resident
	if auditErr == nil {
		if merged, err := sperr.MergeShards(m.Data, clean); err == nil {
			healed = merged
		}
		// A merge refusal (mutated geometry) leaves the clean replica as
		// the only trusted copy — same outcome as replacement.
	}
	data, gotDims, err := sperr.Decompress(healed)
	if err != nil {
		return fmt.Errorf("healed container failed strict decode: %v", err)
	}
	if gotDims != dims {
		return fmt.Errorf("healed dims %v, want %v", gotDims, dims)
	}
	for i := range baseline {
		if math.Float64bits(data[i]) != math.Float64bits(baseline[i]) {
			return fmt.Errorf("healed sample %d differs from baseline", i)
		}
	}
	return nil
}
