package zfp

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func smoothField(d grid.Dims, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = 25*math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y))*
					math.Cos(0.11*float64(z)) + 0.05*rng.NormFloat64()
			}
		}
	}
	return data
}

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNegabinary(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1000, -1000, 1 << 40, -(1 << 40)} {
		if got := nb2int(int2nb(v)); got != v {
			t.Errorf("negabinary round trip %d -> %d", v, got)
		}
	}
	// Negabinary magnitude ordering: small values use low bits.
	if int2nb(0) != 0 {
		t.Error("nb(0) should be 0")
	}
}

func TestLiftRoundTripApprox(t *testing.T) {
	// ZFP's transform rounds low bits; values scaled by 2^20 must round
	// trip to within a few units.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		orig := make([]int64, 4)
		p := make([]int64, 4)
		for i := range p {
			orig[i] = int64(rng.Intn(1<<30) - 1<<29)
			p[i] = orig[i]
		}
		fwdLift(p, 1)
		invLift(p, 1)
		for i := range p {
			if d := p[i] - orig[i]; d > 4 || d < -4 {
				t.Fatalf("iter %d: lift round trip off by %d", iter, d)
			}
		}
	}
}

func TestPermutations(t *testing.T) {
	if len(perm3) != 64 || len(perm2) != 16 {
		t.Fatalf("perm lengths %d, %d", len(perm3), len(perm2))
	}
	seen := map[int]bool{}
	for _, v := range perm3 {
		if seen[v] || v < 0 || v >= 64 {
			t.Fatalf("perm3 invalid entry %d", v)
		}
		seen[v] = true
	}
	// First entry must be the DC coefficient (0,0,0).
	if perm3[0] != 0 || perm2[0] != 0 {
		t.Error("sequency order must start at DC")
	}
}

func TestFixedAccuracyBound(t *testing.T) {
	dims := []grid.Dims{
		grid.D3(32, 32, 32),
		grid.D3(17, 23, 9), // partial blocks
		grid.D2(64, 48),
		grid.D2(13, 7),
	}
	for _, d := range dims {
		data := smoothField(d, int64(d.Len()))
		for _, tol := range []float64{1, 0.01, 1e-5} {
			stream, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: tol})
			if err != nil {
				t.Fatalf("%v tol=%g: %v", d, tol, err)
			}
			rec, gotDims, err := Decompress(stream)
			if err != nil {
				t.Fatalf("%v tol=%g: %v", d, tol, err)
			}
			if gotDims != d {
				t.Fatalf("dims %v, want %v", gotDims, d)
			}
			if e := maxErr(data, rec); e > tol {
				t.Errorf("%v tol=%g: max error %g", d, tol, e)
			}
		}
	}
}

func TestFixedAccuracyOnNoise(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = rng.NormFloat64() * math.Exp(2*rng.NormFloat64())
	}
	tol := 1e-3
	stream, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > tol {
		t.Errorf("noise max error %g > tol %g", e, tol)
	}
}

func TestFixedRateBudget(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 4)
	for _, rate := range []float64{1, 2, 4, 8, 16} {
		stream, err := Compress(data, d, Params{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		bpp := float64(len(stream)*8) / float64(d.Len())
		if bpp > rate+1 { // container header allowance
			t.Errorf("rate %g: achieved %g BPP", rate, bpp)
		}
		if _, _, err := Decompress(stream); err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
	}
}

func TestFixedRateMonotoneQuality(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 6)
	prev := math.Inf(1)
	for _, rate := range []float64{1, 2, 4, 8, 16, 32} {
		stream, err := Compress(data, d, Params{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		var mse float64
		for i := range data {
			e := data[i] - rec[i]
			mse += e * e
		}
		if mse > prev*1.001 {
			t.Errorf("rate %g: mse %g not better than lower rate %g", rate, mse, prev)
		}
		prev = mse
	}
}

func TestZeroField(t *testing.T) {
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	stream, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// All-zero blocks cost one bit each: 8 blocks + container header.
	if len(stream) > 64 {
		t.Errorf("zero field used %d bytes", len(stream))
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rec {
		if v != 0 {
			t.Fatalf("idx %d: %g", i, v)
		}
	}
}

func TestBelowToleranceField(t *testing.T) {
	// Every value below tol: blocks should collapse to zero blocks.
	d := grid.D3(8, 8, 8)
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = 1e-9 * math.Sin(float64(i))
	}
	stream, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > 0.1 {
		t.Fatalf("max error %g", e)
	}
	if len(stream) > 64 {
		t.Errorf("sub-tolerance field used %d bytes", len(stream))
	}
}

func TestValidation(t *testing.T) {
	d := grid.D3(4, 4, 4)
	data := make([]float64, d.Len())
	if _, err := Compress(data, d, Params{Mode: ModeFixedRate}); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := Compress(data, d, Params{Mode: ModeFixedAccuracy}); err == nil {
		t.Error("zero tol should fail")
	}
	if _, err := Compress(data[:5], d, Params{Mode: ModeFixedRate, Rate: 8}); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := Decompress([]byte{1, 2}); err == nil {
		t.Error("garbage should fail")
	}
}

func BenchmarkCompressAccuracy32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: 1e-4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressAccuracy32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	stream, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: 1e-4})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
