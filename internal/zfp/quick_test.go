package zfp

// Property-based tests (testing/quick) on the ZFP baseline.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sperr/internal/grid"
)

// Property: fixed-accuracy mode bounds the point-wise error on arbitrary
// finite inputs and shapes (including partial blocks).
func TestQuickAccuracyBound(t *testing.T) {
	f := func(seed int64, tolExp uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := grid.D3(1+r.Intn(14), 1+r.Intn(14), 1+r.Intn(14))
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = r.NormFloat64() * math.Exp(float64(r.Intn(8)))
		}
		tol := math.Exp2(float64(int(tolExp)%16 - 8))
		stream, err := Compress(data, d, Params{Mode: ModeFixedAccuracy, Tol: tol})
		if err != nil {
			return false
		}
		rec, gotDims, err := Decompress(stream)
		if err != nil || gotDims != d {
			return false
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: fixed-rate mode meets its budget on arbitrary inputs.
func TestQuickRateBudget(t *testing.T) {
	f := func(seed int64, rateRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := grid.D3(4+r.Intn(12), 4+r.Intn(12), 4+r.Intn(12))
		data := make([]float64, d.Len())
		for i := range data {
			data[i] = r.NormFloat64()
		}
		rate := 1 + float64(rateRaw%24)
		stream, err := Compress(data, d, Params{Mode: ModeFixedRate, Rate: rate})
		if err != nil {
			return false
		}
		// Partial blocks pad to full 4^3 blocks, so account by block count.
		blocks := ((d.NX + 3) / 4) * ((d.NY + 3) / 4) * ((d.NZ + 3) / 4)
		budgetBits := float64(blocks)*math.Max(rate*64, 18) + 29*8
		return float64(len(stream)*8) <= budgetBits+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
