// Package zfp implements a ZFP-style fixed-rate / fixed-accuracy lossy
// compressor for floating-point arrays, the block-transform baseline of
// the paper's evaluation (Sections II and VI; Lindstrom, "Fixed-rate
// compressed floating-point arrays", TVCG 2014).
//
// The pipeline mirrors ZFP's: the volume is partitioned into 4^d blocks;
// each block is converted to a block-floating-point representation with a
// common exponent, decorrelated with ZFP's integer lifting transform along
// each axis, reordered by total sequency, mapped to negabinary, and coded
// bitplane by bitplane with group testing. Fixed-rate mode truncates every
// block at the same bit budget (giving random access and a guaranteed
// rate); fixed-accuracy mode drops bitplanes below a tolerance-derived
// cutoff.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"sperr/internal/bits"
	"sperr/internal/grid"
)

// Mode selects the termination criterion.
type Mode uint8

const (
	// ModeFixedRate truncates each block at Rate bits per value.
	ModeFixedRate Mode = iota
	// ModeFixedAccuracy drops bitplanes whose weight is below Tol.
	ModeFixedAccuracy
)

// Params controls compression.
type Params struct {
	Mode Mode
	Rate float64 // bits per value (ModeFixedRate)
	Tol  float64 // absolute error tolerance (ModeFixedAccuracy)
}

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("zfp: corrupt stream")

// safeLen computes dims.Len with overflow checking: the extents arrive
// from the wire as three u32s whose product can overflow int.
func safeLen(d grid.Dims) (int, bool) {
	if !d.Valid() {
		return 0, false
	}
	xy := uint64(d.NX) * uint64(d.NY)
	if xy > math.MaxInt64/uint64(d.NZ) {
		return 0, false
	}
	return int(xy * uint64(d.NZ)), true
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// guardBits absorbs the L-infinity gain of the inverse transform plus the
// negabinary truncation error so that fixed-accuracy mode respects the
// tolerance: dropped bitplanes contribute up to ~2x the cutoff weight per
// coefficient, and the inverse lifting transform amplifies the worst case
// by a further small factor. Five guard bits (32x) cover both with margin,
// at a modest rate cost — the same conservative stance ZFP itself takes in
// accuracy mode.
const guardBits = 5

// negabinary conversion constants.
const nbMask = 0xaaaaaaaaaaaaaaaa

func int2nb(x int64) uint64 { return (uint64(x) + nbMask) ^ nbMask }
func nb2int(x uint64) int64 { return int64((x ^ nbMask) - nbMask) }

// fwdLift applies ZFP's forward decorrelating transform to four values.
func fwdLift(p []int64, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// invLift inverts fwdLift (up to ZFP's intentional low-bit rounding, which
// sits far below the coded precision).
func invLift(p []int64, s int) {
	x, y, z, w := p[0], p[s], p[2*s], p[3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[s], p[2*s], p[3*s] = x, y, z, w
}

// perm3 and perm2 order block coefficients by total sequency so that
// significance advances as a prefix during bitplane coding.
var perm3 = makePerm(3)
var perm2 = makePerm(2)

func makePerm(nd int) []int {
	type entry struct{ idx, sum, z, y, x int }
	var entries []entry
	if nd == 3 {
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				for x := 0; x < 4; x++ {
					entries = append(entries, entry{(z*4+y)*4 + x, x + y + z, z, y, x})
				}
			}
		}
	} else {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				entries = append(entries, entry{y*4 + x, x + y, 0, y, x})
			}
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.sum != b.sum {
			return a.sum < b.sum
		}
		if a.z != b.z {
			return a.z < b.z
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.x < b.x
	})
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = e.idx
	}
	return out
}

// encodeInts codes the negabinary coefficients bitplane by bitplane with
// ZFP's group-testing scheme. size must be <= 64. It returns the bits
// written. budget limits output (math.MaxInt for unlimited); kmin is the
// lowest bitplane coded.
func encodeInts(w *bits.Writer, budget int, kmin int, data []uint64) int {
	size := len(data)
	written := 0
	emit := func(b bool) bool {
		if written >= budget {
			return false
		}
		w.WriteBit(b)
		written++
		return true
	}
	n := 0
	for k := 63; k >= kmin && written < budget; k-- {
		// Extract bitplane k.
		var x uint64
		for i := 0; i < size; i++ {
			x |= ((data[i] >> uint(k)) & 1) << uint(i)
		}
		// First n bits verbatim (already-significant coefficients).
		for i := 0; i < n; i++ {
			if !emit(x&1 != 0) {
				return written
			}
			x >>= 1
		}
		// Group-test the remainder.
		for n < size {
			if !emit(x != 0) {
				return written
			}
			if x == 0 {
				break
			}
			for n < size-1 {
				b := x&1 != 0
				if !emit(b) {
					return written
				}
				x >>= 1
				n++
				if b {
					goto nextValue
				}
			}
			// n == size-1: the significant value is the last one.
			x >>= 1
			n++
		nextValue:
		}
	}
	return written
}

// decodeInts mirrors encodeInts.
func decodeInts(r *bits.Reader, budget int, kmin int, data []uint64) int {
	size := len(data)
	read := 0
	grab := func() (bool, bool) {
		if read >= budget || r.Remaining() == 0 {
			return false, false
		}
		b := r.ReadBit()
		read++
		return b, true
	}
	n := 0
	for k := 63; k >= kmin && read < budget; k-- {
		var x uint64
		for i := 0; i < n; i++ {
			b, ok := grab()
			if !ok {
				return read
			}
			if b {
				x |= 1 << uint(i)
			}
		}
		for n < size {
			g, ok := grab()
			if !ok {
				goto deposit
			}
			if !g {
				break
			}
			for n < size-1 {
				b, ok := grab()
				if !ok {
					goto deposit
				}
				n++
				if b {
					x |= 1 << uint(n-1)
					goto nextValue
				}
			}
			n++
			x |= 1 << uint(n-1)
		nextValue:
		}
	deposit:
		for i := 0; i < size; i++ {
			if x&(1<<uint(i)) != 0 {
				data[i] |= 1 << uint(k)
			}
		}
	}
	return read
}

// blockDims returns the block geometry for the volume dimensionality.
func blockGeom(d grid.Dims) (nd, size int, perm []int) {
	if d.Is2D() {
		return 2, 16, perm2
	}
	return 3, 64, perm3
}

// Compress compresses data (row-major, extent dims).
func Compress(data []float64, dims grid.Dims, p Params) ([]byte, error) {
	if len(data) != dims.Len() {
		return nil, fmt.Errorf("zfp: %d values for %v", len(data), dims)
	}
	switch p.Mode {
	case ModeFixedRate:
		if !(p.Rate > 0) {
			return nil, errors.New("zfp: fixed-rate mode requires Rate > 0")
		}
	case ModeFixedAccuracy:
		if !(p.Tol > 0) {
			return nil, errors.New("zfp: fixed-accuracy mode requires Tol > 0")
		}
	default:
		return nil, fmt.Errorf("zfp: unknown mode %d", p.Mode)
	}
	nd, size, perm := blockGeom(dims)
	w := bits.NewWriter(dims.Len() * 8)
	block := make([]int64, size)
	nb := make([]uint64, size)
	maxbits := math.MaxInt
	if p.Mode == ModeFixedRate {
		maxbits = int(p.Rate * float64(size))
		if maxbits < 1+17 {
			maxbits = 1 + 17
		}
	}

	forEachBlock(dims, func(x0, y0, z0 int) {
		gatherBlock(data, dims, x0, y0, z0, nd, block)
		encodeBlock(w, block, nb, nd, size, perm, p, maxbits)
	})

	// Container: dims | mode | param | payload bits | payload.
	var buf []byte
	for _, v := range []int{dims.NX, dims.NY, dims.NZ} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = append(buf, byte(p.Mode))
	par := p.Rate
	if p.Mode == ModeFixedAccuracy {
		par = p.Tol
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(par))
	buf = binary.LittleEndian.AppendUint64(buf, w.Len())
	return append(buf, w.Bytes()...), nil
}

func encodeBlock(w *bits.Writer, block []int64, nb []uint64, nd, size int, perm []int, p Params, maxbits int) {
	start := w.Len()
	// Block-floating-point exponent.
	maxAbs := 0.0
	for _, v := range block {
		f := math.Abs(math.Float64frombits(uint64(v))) // block carries float bits pre-quantization
		if f > maxAbs {
			maxAbs = f
		}
	}
	zeroBlock := maxAbs == 0
	var emax int
	if !zeroBlock {
		_, e := math.Frexp(maxAbs)
		emax = e - 1
		if p.Mode == ModeFixedAccuracy && math.Ldexp(1, emax+1) <= p.Tol {
			zeroBlock = true // everything below tolerance
		}
	}
	if zeroBlock {
		w.WriteBit(false)
	} else {
		w.WriteBit(true)
		w.WriteBits(uint64(uint16(int16(emax))), 16)
		// Quantize to a common scale.
		scale := math.Ldexp(1, 62-emax-2) // two transform guard bits
		ints := make([]int64, size)
		for i, v := range block {
			ints[i] = int64(math.Float64frombits(uint64(v)) * scale)
		}
		// Decorrelate along each axis.
		liftBlock(ints, nd, true)
		// Reorder + negabinary.
		for i, src := range perm {
			nb[i] = int2nb(ints[src])
		}
		kmin := 0
		if p.Mode == ModeFixedAccuracy {
			kmin = accuracyKmin(p.Tol, emax)
		}
		budget := math.MaxInt
		if p.Mode == ModeFixedRate {
			budget = maxbits - int(w.Len()-start)
			if budget < 0 {
				budget = 0
			}
		}
		encodeInts(w, budget, kmin, nb)
	}
	// Fixed rate: pad the block to exactly maxbits.
	if p.Mode == ModeFixedRate {
		for int(w.Len()-start) < maxbits {
			w.WriteBit(false)
		}
	}
}

// accuracyKmin returns the lowest coded bitplane so that the dropped
// weight (after transform amplification, absorbed by guardBits) stays
// below the tolerance.
func accuracyKmin(tol float64, emax int) int {
	// Integer bitplane k has float weight 2^(k + emax + 2 - 62).
	// Require 2^(kmin + emax + 2 - 62 + guardBits) <= tol.
	k := int(math.Floor(math.Log2(tol))) - emax - 2 + 62 - guardBits
	if k < 0 {
		k = 0
	}
	if k > 63 {
		k = 63
	}
	return k
}

// liftBlock applies the transform along all axes of the 4^nd block.
func liftBlock(ints []int64, nd int, forward bool) {
	apply := func(p []int64, s int) {
		if forward {
			fwdLift(p, s)
		} else {
			invLift(p, s)
		}
	}
	if nd == 2 {
		if forward {
			for y := 0; y < 4; y++ {
				apply(ints[y*4:], 1) // along x
			}
			for x := 0; x < 4; x++ {
				apply(ints[x:], 4) // along y
			}
		} else {
			for x := 0; x < 4; x++ {
				apply(ints[x:], 4)
			}
			for y := 0; y < 4; y++ {
				apply(ints[y*4:], 1)
			}
		}
		return
	}
	if forward {
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				apply(ints[(z*4+y)*4:], 1) // x
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				apply(ints[z*16+x:], 4) // y
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				apply(ints[y*4+x:], 16) // z
			}
		}
	} else {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				apply(ints[y*4+x:], 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				apply(ints[z*16+x:], 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				apply(ints[(z*4+y)*4:], 1)
			}
		}
	}
}

// forEachBlock visits block origins in raster order.
func forEachBlock(d grid.Dims, fn func(x0, y0, z0 int)) {
	zStep := 4
	if d.Is2D() {
		zStep = 1
	}
	for z0 := 0; z0 < d.NZ; z0 += zStep {
		for y0 := 0; y0 < d.NY; y0 += 4 {
			for x0 := 0; x0 < d.NX; x0 += 4 {
				fn(x0, y0, z0)
			}
		}
	}
}

// gatherBlock copies a (possibly partial) block, padding by edge
// replication. Values are stashed as raw float bits inside the int64 slice
// so encodeBlock can inspect them before quantization.
func gatherBlock(data []float64, d grid.Dims, x0, y0, z0, nd int, block []int64) {
	bz := 4
	if nd == 2 {
		bz = 1
	}
	for z := 0; z < bz; z++ {
		sz := clamp(z0+z, d.NZ)
		for y := 0; y < 4; y++ {
			sy := clamp(y0+y, d.NY)
			for x := 0; x < 4; x++ {
				sx := clamp(x0+x, d.NX)
				v := data[d.Index(sx, sy, sz)]
				block[(z*4+y)*4+x] = int64(math.Float64bits(v))
			}
		}
	}
}

func clamp(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}

// Decompress reverses Compress.
func Decompress(stream []byte) ([]float64, grid.Dims, error) {
	var dims grid.Dims
	const fixed = 12 + 1 + 8 + 8
	if len(stream) < fixed {
		return nil, dims, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	dims = grid.Dims{
		NX: int(binary.LittleEndian.Uint32(stream[0:])),
		NY: int(binary.LittleEndian.Uint32(stream[4:])),
		NZ: int(binary.LittleEndian.Uint32(stream[8:])),
	}
	npts, ok := safeLen(dims)
	if !ok {
		return nil, dims, fmt.Errorf("%w: invalid dims", ErrCorrupt)
	}
	mode := Mode(stream[12])
	par := math.Float64frombits(binary.LittleEndian.Uint64(stream[13:]))
	nbits := binary.LittleEndian.Uint64(stream[21:])
	if nbits > uint64(len(stream)-fixed)*8 {
		return nil, dims, fmt.Errorf("%w: payload declares %d bits, have %d bytes",
			ErrCorrupt, nbits, len(stream)-fixed)
	}
	// Every block costs at least one bit, so the declared geometry cannot
	// exceed the bit budget — this bounds the output allocation by the
	// stream length (64 points per block at most).
	nblocks := uint64(ceilDiv(dims.NX, 4)) * uint64(ceilDiv(dims.NY, 4))
	if !dims.Is2D() {
		nblocks *= uint64(ceilDiv(dims.NZ, 4))
	} else {
		nblocks *= uint64(dims.NZ)
	}
	if nblocks > nbits {
		return nil, dims, fmt.Errorf("%w: %d blocks exceed %d payload bits", ErrCorrupt, nblocks, nbits)
	}
	r := bits.NewReaderBits(stream[29:], nbits)

	p := Params{Mode: mode}
	switch mode {
	case ModeFixedRate:
		p.Rate = par
	case ModeFixedAccuracy:
		p.Tol = par
	default:
		return nil, dims, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, mode)
	}
	nd, size, perm := blockGeom(dims)
	maxbits := math.MaxInt
	if mode == ModeFixedRate {
		maxbits = int(p.Rate * float64(size))
		if maxbits < 1+17 {
			maxbits = 1 + 17
		}
	}
	out := make([]float64, npts)
	block := make([]float64, size)
	nb := make([]uint64, size)
	var derr error
	forEachBlock(dims, func(x0, y0, z0 int) {
		if derr != nil {
			return
		}
		if err := decodeBlock(r, block, nb, nd, size, perm, p, maxbits); err != nil {
			derr = err
			return
		}
		scatterBlock(out, dims, x0, y0, z0, nd, block)
	})
	if derr != nil {
		return nil, dims, derr
	}
	return out, dims, nil
}

func decodeBlock(r *bits.Reader, block []float64, nb []uint64, nd, size int, perm []int, p Params, maxbits int) error {
	start := r.Pos()
	nonzero := r.ReadBit()
	if r.Exhausted() {
		return fmt.Errorf("%w: stream truncated", ErrCorrupt)
	}
	if !nonzero {
		for i := range block {
			block[i] = 0
		}
	} else {
		emax := int(int16(uint16(r.ReadBits(16))))
		if r.Exhausted() {
			return fmt.Errorf("%w: stream truncated", ErrCorrupt)
		}
		for i := range nb {
			nb[i] = 0
		}
		kmin := 0
		if p.Mode == ModeFixedAccuracy {
			kmin = accuracyKmin(p.Tol, emax)
		}
		budget := math.MaxInt
		if p.Mode == ModeFixedRate {
			budget = maxbits - int(r.Pos()-start)
			if budget < 0 {
				budget = 0
			}
		}
		decodeInts(r, budget, kmin, nb)
		ints := make([]int64, size)
		for i, dst := range perm {
			ints[dst] = nb2int(nb[i])
		}
		liftBlock(ints, nd, false)
		scale := math.Ldexp(1, -(62 - emax - 2))
		for i, v := range ints {
			block[i] = float64(v) * scale
		}
	}
	if p.Mode == ModeFixedRate {
		// Skip padding to the block boundary.
		for int(r.Pos()-start) < maxbits && r.Remaining() > 0 {
			r.ReadBit()
		}
	}
	return nil
}

// scatterBlock writes the block back, dropping padded samples.
func scatterBlock(out []float64, d grid.Dims, x0, y0, z0, nd int, block []float64) {
	bz := 4
	if nd == 2 {
		bz = 1
	}
	for z := 0; z < bz; z++ {
		if z0+z >= d.NZ {
			break
		}
		for y := 0; y < 4; y++ {
			if y0+y >= d.NY {
				break
			}
			for x := 0; x < 4; x++ {
				if x0+x >= d.NX {
					break
				}
				out[d.Index(x0+x, y0+y, z0+z)] = block[(z*4+y)*4+x]
			}
		}
	}
}
