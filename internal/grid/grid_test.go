package grid

import (
	"testing"
	"testing/quick"
)

func TestDimsIndexCoords(t *testing.T) {
	d := D3(5, 7, 3)
	if d.Len() != 105 {
		t.Fatalf("Len = %d, want 105", d.Len())
	}
	seen := make(map[int]bool)
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				i := d.Index(x, y, z)
				if seen[i] {
					t.Fatalf("duplicate index %d", i)
				}
				seen[i] = true
				gx, gy, gz := d.Coords(i)
				if gx != x || gy != y || gz != z {
					t.Fatalf("Coords(%d) = (%d,%d,%d), want (%d,%d,%d)", i, gx, gy, gz, x, y, z)
				}
			}
		}
	}
	if len(seen) != d.Len() {
		t.Fatalf("covered %d indices, want %d", len(seen), d.Len())
	}
}

func TestQuickIndexCoordsInverse(t *testing.T) {
	d := D3(13, 11, 9)
	f := func(i uint16) bool {
		idx := int(i) % d.Len()
		x, y, z := d.Coords(idx)
		return d.Index(x, y, z) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeAtSet(t *testing.T) {
	v := NewVolume(D3(4, 4, 4))
	v.Set(1, 2, 3, 42)
	if got := v.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %g, want 42", got)
	}
}

func TestCutoutInsertRoundTrip(t *testing.T) {
	d := D3(10, 8, 6)
	v := NewVolume(d)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	sub := v.Cutout(2, 1, 3, D3(5, 4, 2))
	for z := 0; z < 2; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 5; x++ {
				if sub.At(x, y, z) != v.At(x+2, y+1, z+3) {
					t.Fatalf("cutout mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
	dst := NewVolume(d)
	dst.Insert(sub, 2, 1, 3)
	for z := 0; z < 2; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 5; x++ {
				if dst.At(x+2, y+1, z+3) != sub.At(x, y, z) {
					t.Fatalf("insert mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestCutoutPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVolume(D3(4, 4, 4)).Cutout(2, 2, 2, D3(4, 4, 4))
}

func TestRange(t *testing.T) {
	v := FromSlice(D2(2, 2), []float64{3, -1, 7, 0})
	lo, hi := v.Range()
	if lo != -1 || hi != 7 {
		t.Fatalf("Range = (%g, %g), want (-1, 7)", lo, hi)
	}
}

func TestFloat32Conversions(t *testing.T) {
	v := FromSlice(D2(2, 2), []float64{1.5, -2.25, 0, 1e10})
	f32 := v.ToFloat32()
	back := FromFloat32(v.Dims, f32)
	for i := range v.Data {
		if float64(float32(v.Data[i])) != back.Data[i] {
			t.Fatalf("idx %d: %g != %g", i, v.Data[i], back.Data[i])
		}
	}
}

func TestSplitChunksExact(t *testing.T) {
	cs := SplitChunks(D3(8, 8, 8), D3(4, 4, 4))
	if len(cs) != 8 {
		t.Fatalf("got %d chunks, want 8", len(cs))
	}
	for _, c := range cs {
		if c.Dims != D3(4, 4, 4) {
			t.Fatalf("chunk dims %v, want 4x4x4", c.Dims)
		}
	}
}

func TestSplitChunksRemainder(t *testing.T) {
	cs := SplitChunks(D3(10, 4, 4), D3(4, 4, 4))
	if len(cs) != 3 {
		t.Fatalf("got %d chunks, want 3", len(cs))
	}
	if cs[2].Dims.NX != 2 {
		t.Fatalf("remainder chunk NX = %d, want 2", cs[2].Dims.NX)
	}
	var pts int
	for _, c := range cs {
		pts += c.Dims.Len()
	}
	if pts != 160 {
		t.Fatalf("chunks cover %d points, want 160", pts)
	}
}

func TestSplitChunksOversized(t *testing.T) {
	cs := SplitChunks(D3(8, 8, 8), D3(256, 256, 256))
	if len(cs) != 1 || cs[0].Dims != D3(8, 8, 8) {
		t.Fatalf("oversized chunk dims should clamp: %+v", cs)
	}
}

func TestSplitChunksZeroDefaults(t *testing.T) {
	cs := SplitChunks(D3(8, 8, 8), Dims{})
	if len(cs) != 1 {
		t.Fatalf("zero chunk dims should mean whole volume, got %d chunks", len(cs))
	}
}

func TestClone(t *testing.T) {
	v := FromSlice(D2(2, 1), []float64{1, 2})
	c := v.Clone()
	c.Data[0] = 99
	if v.Data[0] != 1 {
		t.Fatal("Clone did not deep-copy")
	}
}
