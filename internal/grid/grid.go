// Package grid provides containers and geometry helpers for structured
// scientific data: dense 2D/3D volumes stored in row-major (x fastest)
// order, cutouts, linearization, and chunk decomposition used by the
// parallel compression driver.
package grid

import "fmt"

// Dims describes the extent of a 3D volume. 2D data uses NZ == 1.
type Dims struct {
	NX, NY, NZ int
}

// D3 builds a 3D Dims.
func D3(nx, ny, nz int) Dims { return Dims{nx, ny, nz} }

// D2 builds a 2D Dims (NZ = 1).
func D2(nx, ny int) Dims { return Dims{nx, ny, 1} }

// Len returns the number of points.
func (d Dims) Len() int { return d.NX * d.NY * d.NZ }

// Is2D reports whether the volume is a single slice.
func (d Dims) Is2D() bool { return d.NZ == 1 }

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.NX > 0 && d.NY > 0 && d.NZ > 0 }

// String implements fmt.Stringer.
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.NX, d.NY, d.NZ) }

// Index linearizes (x, y, z); x varies fastest.
func (d Dims) Index(x, y, z int) int { return (z*d.NY+y)*d.NX + x }

// Coords inverts Index.
func (d Dims) Coords(i int) (x, y, z int) {
	x = i % d.NX
	y = (i / d.NX) % d.NY
	z = i / (d.NX * d.NY)
	return
}

// Volume is a dense 3D scalar field in row-major order (x fastest).
type Volume struct {
	Dims Dims
	Data []float64
}

// NewVolume allocates a zeroed volume.
func NewVolume(d Dims) *Volume {
	return &Volume{Dims: d, Data: make([]float64, d.Len())}
}

// FromSlice wraps data (not copied) with the given dims.
// It panics if the length does not match.
func FromSlice(d Dims, data []float64) *Volume {
	if len(data) != d.Len() {
		panic(fmt.Sprintf("grid: data length %d != dims %v (%d)", len(data), d, d.Len()))
	}
	return &Volume{Dims: d, Data: data}
}

// At returns the value at (x, y, z).
func (v *Volume) At(x, y, z int) float64 { return v.Data[v.Dims.Index(x, y, z)] }

// Set stores the value at (x, y, z).
func (v *Volume) Set(x, y, z int, val float64) { v.Data[v.Dims.Index(x, y, z)] = val }

// Clone deep-copies the volume.
func (v *Volume) Clone() *Volume {
	out := NewVolume(v.Dims)
	copy(out.Data, v.Data)
	return out
}

// Range returns the minimum and maximum values. An empty volume returns 0, 0.
func (v *Volume) Range() (lo, hi float64) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	lo, hi = v.Data[0], v.Data[0]
	for _, x := range v.Data[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Cutout copies the box of size dims anchored at (x0, y0, z0).
// It panics if the box exceeds the volume bounds.
func (v *Volume) Cutout(x0, y0, z0 int, dims Dims) *Volume {
	if x0 < 0 || y0 < 0 || z0 < 0 ||
		x0+dims.NX > v.Dims.NX || y0+dims.NY > v.Dims.NY || z0+dims.NZ > v.Dims.NZ {
		panic(fmt.Sprintf("grid: cutout %v@(%d,%d,%d) exceeds volume %v", dims, x0, y0, z0, v.Dims))
	}
	out := NewVolume(dims)
	for z := 0; z < dims.NZ; z++ {
		for y := 0; y < dims.NY; y++ {
			srcOff := v.Dims.Index(x0, y0+y, z0+z)
			dstOff := dims.Index(0, y, z)
			copy(out.Data[dstOff:dstOff+dims.NX], v.Data[srcOff:srcOff+dims.NX])
		}
	}
	return out
}

// CutoutInto copies the box of size dims anchored at (x0, y0, z0) into
// dst, growing it as needed, and returns the filled dims.Len() slice. It
// is the allocation-free counterpart of Cutout for pooled chunk slabs;
// pass nil to allocate fresh. It panics if the box exceeds the volume
// bounds.
func (v *Volume) CutoutInto(dst []float64, x0, y0, z0 int, dims Dims) []float64 {
	if x0 < 0 || y0 < 0 || z0 < 0 ||
		x0+dims.NX > v.Dims.NX || y0+dims.NY > v.Dims.NY || z0+dims.NZ > v.Dims.NZ {
		panic(fmt.Sprintf("grid: cutout %v@(%d,%d,%d) exceeds volume %v", dims, x0, y0, z0, v.Dims))
	}
	n := dims.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for z := 0; z < dims.NZ; z++ {
		for y := 0; y < dims.NY; y++ {
			srcOff := v.Dims.Index(x0, y0+y, z0+z)
			dstOff := dims.Index(0, y, z)
			copy(dst[dstOff:dstOff+dims.NX], v.Data[srcOff:srcOff+dims.NX])
		}
	}
	return dst
}

// Insert writes src into the volume with its origin at (x0, y0, z0).
func (v *Volume) Insert(src *Volume, x0, y0, z0 int) {
	d := src.Dims
	if x0 < 0 || y0 < 0 || z0 < 0 ||
		x0+d.NX > v.Dims.NX || y0+d.NY > v.Dims.NY || z0+d.NZ > v.Dims.NZ {
		panic(fmt.Sprintf("grid: insert %v@(%d,%d,%d) exceeds volume %v", d, x0, y0, z0, v.Dims))
	}
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			srcOff := d.Index(0, y, z)
			dstOff := v.Dims.Index(x0, y0+y, z0+z)
			copy(v.Data[dstOff:dstOff+d.NX], src.Data[srcOff:srcOff+d.NX])
		}
	}
}

// InsertSlice writes the row-major box data (extent d) into the volume
// with its origin at (x0, y0, z0) — Insert without the *Volume wrapper,
// for pipelines whose chunk data lives in pooled slabs.
func (v *Volume) InsertSlice(data []float64, d Dims, x0, y0, z0 int) {
	if x0 < 0 || y0 < 0 || z0 < 0 ||
		x0+d.NX > v.Dims.NX || y0+d.NY > v.Dims.NY || z0+d.NZ > v.Dims.NZ {
		panic(fmt.Sprintf("grid: insert %v@(%d,%d,%d) exceeds volume %v", d, x0, y0, z0, v.Dims))
	}
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			srcOff := d.Index(0, y, z)
			dstOff := v.Dims.Index(x0, y0+y, z0+z)
			copy(v.Data[dstOff:dstOff+d.NX], data[srcOff:srcOff+d.NX])
		}
	}
}

// ToFloat32 converts the data to float32.
func (v *Volume) ToFloat32() []float32 {
	out := make([]float32, len(v.Data))
	for i, x := range v.Data {
		out[i] = float32(x)
	}
	return out
}

// FromFloat32 builds a float64 volume from float32 data.
func FromFloat32(d Dims, data []float32) *Volume {
	if len(data) != d.Len() {
		panic(fmt.Sprintf("grid: data length %d != dims %v (%d)", len(data), d, d.Len()))
	}
	v := NewVolume(d)
	for i, x := range data {
		v.Data[i] = float64(x)
	}
	return v
}

// Chunk describes one box of a chunk decomposition.
type Chunk struct {
	X0, Y0, Z0 int  // origin within the parent volume
	Dims       Dims // extent of this chunk
}

// SplitChunks decomposes vol into boxes of at most chunkDims along each
// axis. Remainder chunks at the high ends are smaller, so any chunk size
// works with any volume size (Section III-D of the paper). Chunks are
// ordered z-major, matching the concatenation order of per-chunk
// bitstreams.
func SplitChunks(vol, chunkDims Dims) []Chunk {
	cx := clampChunk(chunkDims.NX, vol.NX)
	cy := clampChunk(chunkDims.NY, vol.NY)
	cz := clampChunk(chunkDims.NZ, vol.NZ)
	var chunks []Chunk
	for z0 := 0; z0 < vol.NZ; z0 += cz {
		nz := min(cz, vol.NZ-z0)
		for y0 := 0; y0 < vol.NY; y0 += cy {
			ny := min(cy, vol.NY-y0)
			for x0 := 0; x0 < vol.NX; x0 += cx {
				nx := min(cx, vol.NX-x0)
				chunks = append(chunks, Chunk{x0, y0, z0, Dims{nx, ny, nz}})
			}
		}
	}
	return chunks
}

func clampChunk(c, n int) int {
	if c <= 0 || c > n {
		return n
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
