// Package mgard implements an MGARD-style multilevel compressor
// (Ainsworth, Tugluk, Whitney, Klasky), the multigrid baseline of the
// paper's evaluation.
//
// The data is decomposed over a hierarchy of nested lattices (strides
// 2^L .. 1). Nodes that vanish on the next coarser lattice store a
// multilevel coefficient: the difference between their value and the
// piecewise-linear interpolation from the surviving lattice, computed —
// as in MGARD — against the *reconstructed* coarser data so that encoder
// and decoder agree. Coefficients are quantized with a per-level error
// budget that sums to the requested tolerance and entropy-coded with
// Huffman + DEFLATE.
//
// MGARD's published error theory is asymptotic; at very tight tolerances
// the real software is reported by the paper to exceed the bound
// (Section VI-C, footnote 1). This implementation splits the budget
// conservatively and evenly across levels, so it holds the bound but pays
// a correspondingly higher bitrate at tight tolerances — the same
// qualitative trade-off, surfaced differently. EXPERIMENTS.md discusses
// the substitution.
package mgard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sperr/internal/grid"
	"sperr/internal/huffman"
	"sperr/internal/lossless"
)

// binRadius bounds quantization bins; larger corrections are stored
// verbatim.
const binRadius = 1 << 30

// literalBin marks verbatim values.
const literalBin = binRadius + 1

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("mgard: corrupt stream")

// Params controls compression.
type Params struct {
	// Tol is the requested maximum point-wise error (> 0).
	Tol float64
}

// safeLen computes dims.Len with overflow checking: the extents arrive
// from the wire as three u32s whose product can overflow int.
func safeLen(d grid.Dims) (int, bool) {
	if !d.Valid() {
		return 0, false
	}
	xy := uint64(d.NX) * uint64(d.NY)
	if xy > math.MaxInt64/uint64(d.NZ) {
		return 0, false
	}
	return int(xy * uint64(d.NZ)), true
}

type quantizer struct {
	orig     []float64 // encoder only
	dec      []float64 // decoder reconstruction
	bins     []int64
	literals []float64
	pos      int
	litPos   int
	encoding bool
}

// predSrc returns the buffer predictions are computed from. The encoder
// predicts from the *original* coarser values — this is what makes the
// quantized differences true multilevel coefficients, with quantization
// errors propagating through the interpolation hierarchy (bounded by the
// per-level budget split). The decoder predicts from its reconstruction.
func (qz *quantizer) predSrc() []float64 {
	if qz.encoding {
		return qz.orig
	}
	return qz.dec
}

// visit quantizes (encoder) or reconstructs (decoder) one node's
// multilevel coefficient with per-level quantization error eps.
func (qz *quantizer) visit(idx int, pred, eps float64) {
	if qz.encoding {
		c := qz.orig[idx] - pred
		bin := int64(math.Round(c / (2 * eps)))
		rec := float64(bin) * 2 * eps
		if bin < -binRadius || bin > binRadius ||
			math.Abs(rec-c) > eps || math.IsNaN(rec) || math.IsInf(rec, 0) {
			qz.bins = append(qz.bins, literalBin)
			qz.literals = append(qz.literals, qz.orig[idx])
			return
		}
		qz.bins = append(qz.bins, bin)
		return
	}
	bin := qz.bins[qz.pos]
	qz.pos++
	if bin == literalBin {
		qz.dec[idx] = qz.literals[qz.litPos]
		qz.litPos++
		return
	}
	qz.dec[idx] = pred + float64(bin)*2*eps
}

// traverse walks the multilevel hierarchy coarse to fine. Both sides run
// it identically; eps per level comes from the tolerance split.
func traverse(qz *quantizer, d grid.Dims, tol float64) {
	maxDim := d.NX
	if d.NY > maxDim {
		maxDim = d.NY
	}
	if d.NZ > maxDim {
		maxDim = d.NZ
	}
	s0 := 1
	for s0*2 < maxDim {
		s0 *= 2
	}
	levels := 1
	for s := s0; s > 1; s /= 2 {
		levels++
	}
	// Budget split. Interpolation of errors is convex, so each prediction
	// inherits at most the largest error among its source nodes, plus its
	// own quantization error eps. Every refinement level runs three axis
	// substeps, each chaining on the previous substep's nodes, so the
	// worst-case chain depth is 1 (anchors) + 3*(levels-1): eps must be
	// tol over that depth for the bound to hold.
	depth := 1 + 3*(levels-1)
	eps := tol / float64(depth)

	// Coarsest lattice: direct quantization (prediction zero keeps the
	// scheme self-contained; entropy coding removes the redundancy).
	for z := 0; z < d.NZ; z += s0 {
		for y := 0; y < d.NY; y += s0 {
			for x := 0; x < d.NX; x += s0 {
				qz.visit(d.Index(x, y, z), 0, eps)
			}
		}
	}
	for s := s0 / 2; s >= 1; s /= 2 {
		fillAxis(qz, d, s, 0, eps)
		fillAxis(qz, d, s, 1, eps)
		fillAxis(qz, d, s, 2, eps)
	}
}

// fillAxis fills nodes whose coordinate along axis is an odd multiple of
// s, predicting by linear interpolation along that axis (MGARD is
// piecewise-linear).
func fillAxis(qz *quantizer, d grid.Dims, s, axis int, eps float64) {
	sx, sy, sz := 2*s, 2*s, 2*s
	switch axis {
	case 1:
		sx = s
	case 2:
		sx, sy = s, s
	}
	n := [3]int{d.NX, d.NY, d.NZ}
	step := [3]int{sx, sy, sz}
	step[axis] = 2 * s
	for z := 0; z < n[2]; z += step[2] {
		for y := 0; y < n[1]; y += step[1] {
			for x := 0; x < n[0]; x += step[0] {
				c := [3]int{x, y, z}
				t := c[axis] + s
				if t >= n[axis] {
					continue
				}
				c[axis] = t
				pred := linearPred(qz, d, c, axis, s)
				qz.visit(d.Index(c[0], c[1], c[2]), pred, eps)
			}
		}
	}
}

func linearPred(qz *quantizer, d grid.Dims, c [3]int, axis, s int) float64 {
	n := [3]int{d.NX, d.NY, d.NZ}
	src := qz.predSrc()
	get := func(off int) (float64, bool) {
		p := c
		p[axis] += off
		if p[axis] < 0 || p[axis] >= n[axis] {
			return 0, false
		}
		return src[d.Index(p[0], p[1], p[2])], true
	}
	m1, okM := get(-s)
	p1, okP := get(s)
	switch {
	case okM && okP:
		return (m1 + p1) / 2
	case okM:
		return m1
	case okP:
		return p1
	default:
		return 0
	}
}

// Compress compresses data (row-major, extent dims).
func Compress(data []float64, dims grid.Dims, p Params) ([]byte, error) {
	if !(p.Tol > 0) {
		return nil, errors.New("mgard: tolerance must be positive")
	}
	if len(data) != dims.Len() {
		return nil, fmt.Errorf("mgard: %d values for %v", len(data), dims)
	}
	qz := &quantizer{
		orig:     data,
		dec:      make([]float64, len(data)),
		encoding: true,
	}
	traverse(qz, dims, p.Tol)

	var buf []byte
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Tol))
	for _, v := range []int{dims.NX, dims.NY, dims.NZ} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	hb := huffman.Encode(qz.bins)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hb)))
	buf = append(buf, hb...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(qz.literals)))
	for _, v := range qz.literals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return lossless.Compress(buf), nil
}

// Decompress reverses Compress.
func Decompress(stream []byte) ([]float64, grid.Dims, error) {
	var dims grid.Dims
	buf, err := lossless.Decompress(stream)
	if err != nil {
		return nil, dims, err
	}
	const fixed = 8 + 12 + 8
	if len(buf) < fixed {
		return nil, dims, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	tol := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
	dims = grid.Dims{
		NX: int(binary.LittleEndian.Uint32(buf[8:])),
		NY: int(binary.LittleEndian.Uint32(buf[12:])),
		NZ: int(binary.LittleEndian.Uint32(buf[16:])),
	}
	npts, ok := safeLen(dims)
	if !ok || !(tol > 0) || math.IsInf(tol, 0) {
		return nil, dims, fmt.Errorf("%w: invalid header", ErrCorrupt)
	}
	// Length fields are attacker-controlled: compare in uint64 so a forged
	// 64-bit value cannot wrap an int bound into a panicking slice index.
	off := 28
	hlen64 := binary.LittleEndian.Uint64(buf[20:])
	if hlen64 > uint64(len(buf)-off) {
		return nil, dims, fmt.Errorf("%w: bins truncated", ErrCorrupt)
	}
	hlen := int(hlen64)
	bins, err := huffman.Decode(buf[off : off+hlen])
	if err != nil {
		return nil, dims, err
	}
	off += hlen
	if off+8 > len(buf) {
		return nil, dims, fmt.Errorf("%w: literal count missing", ErrCorrupt)
	}
	nlit64 := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	if nlit64 > uint64(len(buf)-off)/8 {
		return nil, dims, fmt.Errorf("%w: literals truncated", ErrCorrupt)
	}
	nlit := int(nlit64)
	literals := make([]float64, nlit)
	for i := range literals {
		literals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8*i:]))
	}
	if len(bins) != npts {
		return nil, dims, fmt.Errorf("%w: %d bins for %d points", ErrCorrupt, len(bins), npts)
	}
	// The traversal must find exactly one stored literal per literal bin;
	// forged bins claiming more would otherwise run off the literal slice
	// mid-walk.
	wantLit := 0
	for _, b := range bins {
		if b == literalBin {
			wantLit++
		}
	}
	if wantLit != nlit {
		return nil, dims, fmt.Errorf("%w: %d literal bins for %d stored literals", ErrCorrupt, wantLit, nlit)
	}
	qz := &quantizer{
		dec:      make([]float64, npts),
		bins:     bins,
		literals: literals,
	}
	traverse(qz, dims, tol)
	if qz.litPos != len(literals) {
		return nil, dims, fmt.Errorf("%w: %d unused literals", ErrCorrupt, len(literals)-qz.litPos)
	}
	return qz.dec, dims, nil
}
