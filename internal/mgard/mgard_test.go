package mgard

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func smoothField(d grid.Dims, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, d.Len())
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				data[d.Index(x, y, z)] = 20*math.Sin(0.2*float64(x))*math.Cos(0.18*float64(y))*
					math.Cos(0.12*float64(z)) + 0.05*rng.NormFloat64()
			}
		}
	}
	return data
}

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestErrorBound(t *testing.T) {
	dims := []grid.Dims{
		grid.D3(32, 32, 32),
		grid.D3(17, 23, 9),
		grid.D2(48, 36),
	}
	for _, d := range dims {
		data := smoothField(d, int64(d.Len()))
		for _, tol := range []float64{1, 0.01, 1e-4} {
			stream, err := Compress(data, d, Params{Tol: tol})
			if err != nil {
				t.Fatalf("%v tol=%g: %v", d, tol, err)
			}
			rec, gotDims, err := Decompress(stream)
			if err != nil {
				t.Fatalf("%v tol=%g: %v", d, tol, err)
			}
			if gotDims != d {
				t.Fatalf("dims %v", gotDims)
			}
			if e := maxErr(data, rec); e > tol*(1+1e-9) {
				t.Errorf("%v tol=%g: max error %g", d, tol, e)
			}
		}
	}
}

func TestErrorBoundOnNoise(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	tol := 0.05
	stream, err := Compress(data, d, Params{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > tol*(1+1e-9) {
		t.Errorf("noise max error %g > tol %g", e, tol)
	}
}

func TestTighterToleranceCostsMore(t *testing.T) {
	d := grid.D3(24, 24, 24)
	data := smoothField(d, 3)
	s1, err := Compress(data, d, Params{Tol: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compress(data, d, Params{Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) <= len(s1) {
		t.Errorf("tight tolerance (%d bytes) should cost more than loose (%d)", len(s2), len(s1))
	}
}

func TestSmoothDataCompresses(t *testing.T) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 4)
	stream, err := Compress(data, d, Params{Tol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	bpp := float64(len(stream)*8) / float64(d.Len())
	if bpp > 24 {
		t.Errorf("smooth field used %g BPP", bpp)
	}
}

func TestConstantField(t *testing.T) {
	d := grid.D3(16, 16, 16)
	data := make([]float64, d.Len())
	for i := range data {
		data[i] = -7.25
	}
	stream, err := Compress(data, d, Params{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, rec); e > 1e-8 {
		t.Errorf("constant field error %g", e)
	}
}

func TestValidation(t *testing.T) {
	d := grid.D3(4, 4, 4)
	data := make([]float64, d.Len())
	if _, err := Compress(data, d, Params{}); err == nil {
		t.Error("zero tolerance should fail")
	}
	if _, err := Compress(data[:5], d, Params{Tol: 1}); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := Decompress([]byte{9}); err == nil {
		t.Error("garbage should fail")
	}
}

func BenchmarkCompress32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	data := smoothField(d, 1)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, d, Params{Tol: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}
