// Package obs is the observability surface of the serving layer: a small,
// dependency-free metrics registry (counters, gauges, latency histograms)
// with a Prometheus-style text exposition and an expvar bridge. It keeps
// the service boundary (what is measured) separate from the codec (what
// is computed), mirroring the modular-pipeline split SZ3 argues for.
//
// Metric names are free-form strings; a name may embed a label set in the
// usual brace syntax ("requests_total{endpoint=\"compress\",code=\"200\"}")
// and the registry treats the full string as the identity. All metric
// operations are safe for concurrent use and lock-free on the hot path.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// RaiseTo lifts the gauge to n if n exceeds its current value — the
// running-maximum update a peak tracker needs, racing correctly against
// concurrent raises.
func (g *Gauge) RaiseTo(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric (cumulative buckets,
// Prometheus semantics: bucket i counts observations <= bounds[i], with
// an implicit +Inf bucket).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefLatencyBuckets is a decade-spanning latency bucket ladder in seconds,
// suitable for request and chunk wall times.
var DefLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefRatioBuckets ladders compression ratios (input bytes / output bytes).
var DefRatioBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 250, 1000}

// DefBytesBuckets ladders payload sizes in bytes, 4 KiB to 4 GiB in
// decade-ish steps — ingest and container size distributions.
var DefBytesBuckets = []float64{
	4 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
	256 << 20, 1 << 30, 4 << 30,
}

// Registry holds a process's metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (must be sorted ascending) on first use.
// Later calls ignore buckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Int64, len(buckets)+1),
		}
		r.hists[name] = h
	}
	return h
}

// withLabel splices an extra label (`k="v"`) into a metric name that may
// or may not already carry a label set.
func withLabel(name, label string) string {
	if i := strings.LastIndexByte(name, '}'); i >= 0 && strings.IndexByte(name, '{') >= 0 {
		return name[:i] + "," + label + name[i:]
	}
	return name + "{" + label + "}"
}

// baseName strips a trailing label set.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withSuffix appends a name suffix before any label set: withSuffix of
// (`h{a="b"}`, "_sum") is `h_sum{a="b"}`.
func withSuffix(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WriteText writes the registry in the Prometheus text exposition format,
// deterministically ordered (TYPE lines grouped per metric family).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type hist struct {
		name string
		h    *Histogram
	}
	counts := make([]string, 0, len(r.counts))
	for n := range r.counts {
		counts = append(counts, n)
	}
	gauges := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	hists := make([]hist, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, hist{n, h})
	}
	snapC := make(map[string]int64, len(counts))
	for n, c := range r.counts {
		snapC[n] = c.Value()
	}
	snapG := make(map[string]int64, len(gauges))
	for n, g := range r.gauges {
		snapG[n] = g.Value()
	}
	r.mu.Unlock()

	sort.Strings(counts)
	sort.Strings(gauges)
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	var b strings.Builder
	typed := make(map[string]bool)
	for _, n := range counts {
		if fam := baseName(n); !typed[fam] {
			fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
			typed[fam] = true
		}
		fmt.Fprintf(&b, "%s %d\n", n, snapC[n])
	}
	for _, n := range gauges {
		if fam := baseName(n); !typed[fam] {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
			typed[fam] = true
		}
		fmt.Fprintf(&b, "%s %d\n", n, snapG[n])
	}
	for _, hh := range hists {
		if fam := baseName(hh.name); !typed[fam] {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
			typed[fam] = true
		}
		bucket := withSuffix(hh.name, "_bucket")
		var cum int64
		for i, bound := range hh.h.bounds {
			cum += hh.h.counts[i].Load()
			fmt.Fprintf(&b, "%s %d\n",
				withLabel(bucket, fmt.Sprintf("le=%q", formatBound(bound))), cum)
		}
		cum += hh.h.counts[len(hh.h.bounds)].Load()
		fmt.Fprintf(&b, "%s %d\n", withLabel(bucket, `le="+Inf"`), cum)
		fmt.Fprintf(&b, "%s %g\n", withSuffix(hh.name, "_sum"), hh.h.Sum())
		fmt.Fprintf(&b, "%s %d\n", withSuffix(hh.name, "_count"), hh.h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatBound(v float64) string { return fmt.Sprintf("%g", v) }

// Snapshot returns a flat name -> value map of every counter and gauge
// plus histogram _sum/_count pairs — the expvar payload.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counts)+len(r.gauges)+2*len(r.hists))
	for n, c := range r.counts {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		out[withSuffix(n, "_sum")] = h.Sum()
		out[withSuffix(n, "_count")] = h.Count()
	}
	return out
}

// PublishExpvar exposes the registry's Snapshot under the given expvar
// name (idempotent: re-publishing the same name is a no-op, so tests and
// restarts in one process do not panic).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
