package obs

import (
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs_total") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.RaiseTo(3)
	if g.Value() != 5 {
		t.Fatal("RaiseTo lowered the gauge")
	}
	g.RaiseTo(9)
	if g.Value() != 9 {
		t.Fatal("RaiseTo did not raise")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %g, want 56.05", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestTextLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(`reqs_total{endpoint="compress",code="200"}`).Add(2)
	r.Counter(`reqs_total{endpoint="compress",code="429"}`).Inc()
	r.Histogram(`secs{endpoint="c"}`, []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if strings.Count(text, "# TYPE reqs_total counter") != 1 {
		t.Fatalf("TYPE line should appear once per family:\n%s", text)
	}
	for _, want := range []string{
		`reqs_total{endpoint="compress",code="200"} 2`,
		`reqs_total{endpoint="compress",code="429"} 1`,
		`secs_bucket{endpoint="c",le="1"} 1`,
		`secs_bucket{endpoint="c",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").RaiseTo(int64(j))
				r.Histogram("h", DefLatencyBuckets).Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if r.Counter("c").Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", r.Counter("c").Value())
	}
	if r.Histogram("h", nil).Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", r.Histogram("h", nil).Count())
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // must not panic
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	if !strings.Contains(v.String(), `"x"`) {
		t.Fatalf("expvar payload missing counter: %s", v.String())
	}
}
