// Package huffman implements canonical Huffman coding of integer symbol
// streams. It is the entropy-coding substrate of the SZ-family baseline:
// SZ quantizes prediction errors into integer bins and Huffman-codes them
// together with zero-valued inliers (paper Sections II and VI-E).
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sperr/internal/bits"
)

// ErrCorrupt reports an undecodable Huffman container.
var ErrCorrupt = errors.New("huffman: corrupt stream")

// maxCodeLen bounds code lengths; lengths beyond this are rebalanced by
// flattening the frequency distribution (rare in practice).
const maxCodeLen = 58

type node struct {
	freq        uint64
	seq         int   // tie-break rank: leaves by symbol order, then creation order
	symbol      int64 // leaf only
	left, right *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for the given frequencies.
// Ties (equal frequencies, at both leaf and merge level) break on symbol
// order and then merge order, so the lengths — and therefore the encoded
// stream — are a pure function of the input, not of map iteration order.
func codeLengths(freqs map[int64]uint64) map[int64]int {
	if len(freqs) == 1 {
		for s := range freqs {
			return map[int64]int{s: 1}
		}
	}
	symbols := make([]int64, 0, len(freqs))
	for s := range freqs {
		symbols = append(symbols, s)
	}
	sort.Slice(symbols, func(i, j int) bool { return symbols[i] < symbols[j] })
	h := make(nodeHeap, 0, len(symbols))
	for i, s := range symbols {
		h = append(h, &node{freq: freqs[s], seq: i, symbol: s})
	}
	heap.Init(&h)
	seq := len(symbols)
	for len(h) > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{freq: a.freq + b.freq, seq: seq, left: a, right: b})
		seq++
	}
	lengths := make(map[int64]int, len(freqs))
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.left == nil {
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(h[0], 0)
	return lengths
}

// canonical assigns canonical codes (numerically increasing within a
// length, shorter lengths first) given symbol lengths.
type codeEntry struct {
	symbol int64
	length int
	code   uint64
}

func canonicalCodes(lengths map[int64]int) []codeEntry {
	entries := make([]codeEntry, 0, len(lengths))
	for s, l := range lengths {
		entries = append(entries, codeEntry{symbol: s, length: l})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].length != entries[j].length {
			return entries[i].length < entries[j].length
		}
		return entries[i].symbol < entries[j].symbol
	})
	var code uint64
	prevLen := 0
	for i := range entries {
		l := entries[i].length
		code <<= uint(l - prevLen)
		entries[i].code = code
		code++
		prevLen = l
	}
	return entries
}

// zigzag maps signed to unsigned for varint storage.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode Huffman-codes the symbol stream. The container holds the
// canonical codebook (symbols and code lengths) followed by the packed
// code bits.
func Encode(symbols []int64) []byte {
	freqs := make(map[int64]uint64)
	for _, s := range symbols {
		freqs[s]++
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(symbols)))
	buf = binary.AppendUvarint(buf, uint64(len(freqs)))
	if len(freqs) == 0 {
		return buf
	}
	lengths := codeLengths(freqs)
	// Degenerate deep trees: flatten by capping (redistribute via uniform
	// lengths). With 64-bit frequencies this needs ~Fibonacci(58) symbols,
	// so in practice this branch never runs; it exists for safety.
	for _, l := range lengths {
		if l > maxCodeLen {
			flat := make(map[int64]int, len(lengths))
			bitsNeeded := 1
			for 1<<bitsNeeded < len(lengths) {
				bitsNeeded++
			}
			for s := range lengths {
				flat[s] = bitsNeeded
			}
			lengths = flat
			break
		}
	}
	entries := canonicalCodes(lengths)
	codeOf := make(map[int64]codeEntry, len(entries))
	for _, e := range entries {
		codeOf[e.symbol] = e
	}
	// Codebook: (zigzag symbol, length) pairs in canonical order.
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, zigzag(e.symbol))
		buf = binary.AppendUvarint(buf, uint64(e.length))
	}
	w := bits.NewWriter(len(symbols) * 4)
	for _, s := range symbols {
		e := codeOf[s]
		// Canonical codes are defined MSB-first; emit them that way.
		for i := e.length - 1; i >= 0; i-- {
			w.WriteBit(e.code&(1<<uint(i)) != 0)
		}
	}
	buf = binary.AppendUvarint(buf, w.Len())
	return append(buf, w.Bytes()...)
}

// Decode reverses Encode.
func Decode(data []byte) ([]int64, error) {
	off := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
		}
		off += n
		return v, nil
	}
	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	nsyms, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nsyms == 0 {
		if count != 0 {
			return nil, fmt.Errorf("%w: %d symbols with empty codebook", ErrCorrupt, count)
		}
		return []int64{}, nil
	}
	if nsyms > uint64(len(data))*2+2 {
		return nil, fmt.Errorf("%w: implausible codebook size %d", ErrCorrupt, nsyms)
	}
	lengths := make(map[int64]int, nsyms)
	for i := uint64(0); i < nsyms; i++ {
		zs, err := readUvarint()
		if err != nil {
			return nil, err
		}
		l, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > maxCodeLen {
			return nil, fmt.Errorf("%w: code length %d", ErrCorrupt, l)
		}
		s := unzigzag(zs)
		if _, dup := lengths[s]; dup {
			return nil, fmt.Errorf("%w: duplicate symbol %d", ErrCorrupt, s)
		}
		lengths[s] = int(l)
	}
	entries := canonicalCodes(lengths)
	// Canonical decoding tables: for each length, the first code and the
	// index of its first symbol.
	maxLen := entries[len(entries)-1].length
	firstCode := make([]uint64, maxLen+2)
	firstIndex := make([]int, maxLen+2)
	countAt := make([]int, maxLen+2)
	for _, e := range entries {
		countAt[e.length]++
	}
	for l, idx, code := 1, 0, uint64(0); l <= maxLen; l++ {
		firstCode[l] = code
		firstIndex[l] = idx
		code = (code + uint64(countAt[l])) << 1
		idx += countAt[l]
	}
	nbits, err := readUvarint()
	if err != nil {
		return nil, err
	}
	r := bits.NewReaderBits(data[off:], nbits)
	out := make([]int64, 0, count)
	for uint64(len(out)) < count {
		var code uint64
		l := 0
		for {
			l++
			if l > maxLen {
				return nil, fmt.Errorf("%w: invalid code", ErrCorrupt)
			}
			code <<= 1
			if r.ReadBit() {
				code |= 1
			}
			if r.Exhausted() {
				return nil, fmt.Errorf("%w: stream truncated", ErrCorrupt)
			}
			if countAt[l] > 0 && code-firstCode[l] < uint64(countAt[l]) {
				idx := firstIndex[l] + int(code-firstCode[l])
				out = append(out, entries[idx].symbol)
				break
			}
		}
	}
	return out, nil
}
