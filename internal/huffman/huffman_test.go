package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, symbols []int64) {
	t.Helper()
	enc := Encode(symbols)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(symbols) {
		t.Fatalf("decoded %d symbols, want %d", len(dec), len(symbols))
	}
	for i := range symbols {
		if dec[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, dec[i], symbols[i])
		}
	}
}

func TestEmpty(t *testing.T) { roundTrip(t, nil) }

func TestSingleSymbol(t *testing.T) {
	roundTrip(t, []int64{42})
	roundTrip(t, []int64{7, 7, 7, 7, 7, 7})
	roundTrip(t, []int64{-3})
}

func TestTwoSymbols(t *testing.T) {
	roundTrip(t, []int64{0, 1, 0, 0, 1, 0, 1, 1, 1, 0})
}

func TestNegativeSymbols(t *testing.T) {
	roundTrip(t, []int64{-1000000, 1000000, 0, -1, 1, -1, 0, 0})
}

func TestSkewedDistribution(t *testing.T) {
	// SZ-like: overwhelmingly zeros with rare nonzero bins.
	rng := rand.New(rand.NewSource(1))
	symbols := make([]int64, 100000)
	for i := range symbols {
		if rng.Float64() < 0.02 {
			symbols[i] = int64(rng.Intn(9) - 4)
		}
	}
	enc := Encode(symbols)
	// Entropy is ~0.16 bits/symbol; Huffman floor is 1 bit/symbol.
	if got := float64(len(enc)*8) / float64(len(symbols)); got > 1.3 {
		t.Errorf("skewed stream cost %g bits/symbol, want close to 1", got)
	}
	roundTrip(t, symbols)
}

func TestUniformDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	symbols := make([]int64, 10000)
	for i := range symbols {
		symbols[i] = int64(rng.Intn(256))
	}
	enc := Encode(symbols)
	// 256 equiprobable symbols need ~8 bits each.
	bps := float64(len(enc)*8) / float64(len(symbols))
	if bps < 7.5 || bps > 9.5 {
		t.Errorf("uniform 256-symbol stream cost %g bits/symbol, want ~8", bps)
	}
	roundTrip(t, symbols)
}

func TestManyDistinctSymbols(t *testing.T) {
	symbols := make([]int64, 5000)
	for i := range symbols {
		symbols[i] = int64(i) // all distinct
	}
	roundTrip(t, symbols)
}

func TestCorrupt(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil should fail")
	}
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("truncated varint should fail")
	}
	valid := Encode([]int64{1, 2, 3, 1, 2, 1})
	if _, err := Decode(valid[:len(valid)-1]); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), -9223372036854775808, 9223372036854775807} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		symbols := make([]int64, len(raw))
		for i, v := range raw {
			symbols[i] = int64(v)
		}
		dec, err := Decode(Encode(symbols))
		if err != nil || len(dec) != len(symbols) {
			return false
		}
		for i := range symbols {
			if dec[i] != symbols[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	symbols := make([]int64, 1<<16)
	for i := range symbols {
		if rng.Float64() < 0.05 {
			symbols[i] = int64(rng.Intn(64) - 32)
		}
	}
	b.SetBytes(int64(len(symbols)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(symbols)
	}
}
