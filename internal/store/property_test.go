package store

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

// TestPropertyManifestMatchesDisk drives the store through seeded random
// ingest / delete / region-read / shed sequences and audits the manifest
// against the on-disk contents after every single step: no orphan blobs,
// no missing blobs, no checksum drift, ever. A final reopen must recover
// exactly the surviving set.
func TestPropertyManifestMatchesDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	for _, seed := range []int64{1, 7, 1234} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			runManifestProperty(t, seed)
		})
	}
}

func runManifestProperty(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	s, err := Open(dir, Options{CacheSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A small pool of distinct containers; the sequence ingests and
	// deletes them in random order, sometimes redundantly.
	dims := [3]int{12, 11, 7}
	const pool = 6
	containers := make([][]byte, pool)
	for i := range containers {
		containers[i] = makeContainer(t, dims, [3]int{8, 8, 8}, 1e-4, seed*100+int64(i))
	}
	live := make(map[int]string) // pool index -> id while ingested

	audit := func(step int, op string) {
		t.Helper()
		rep, err := s.AuditDisk()
		if err != nil {
			t.Fatalf("step %d (%s): audit: %v", step, op, err)
		}
		if !rep.Clean() {
			t.Fatalf("step %d (%s): audit dirty: orphans=%v missing=%v corrupt=%v drift=%v",
				step, op, rep.Orphans, rep.Missing, rep.Corrupt, rep.Drift)
		}
		if got, want := s.Len(), len(live); got != want {
			t.Fatalf("step %d (%s): store holds %d volumes, model says %d", step, op, got, want)
		}
	}

	const steps = 120
	for step := 0; step < steps; step++ {
		i := rng.Intn(pool)
		var op string
		switch rng.Intn(4) {
		case 0: // ingest (possibly idempotent re-ingest)
			op = "put"
			m, created, err := s.Put(containers[i])
			if err != nil {
				t.Fatalf("step %d: put %d: %v", step, i, err)
			}
			if _, wasLive := live[i]; wasLive == created {
				t.Fatalf("step %d: put %d created=%v but model live=%v", step, i, created, wasLive)
			}
			live[i] = m.ID
		case 1: // delete
			op = "delete"
			id, wasLive := live[i]
			if !wasLive {
				if err := s.Delete("0000beef"); err != ErrNotFound {
					t.Fatalf("step %d: phantom delete returned %v", step, err)
				}
				break
			}
			if err := s.Delete(id); err != nil {
				t.Fatalf("step %d: delete %d: %v", step, i, err)
			}
			delete(live, i)
		case 2: // region read (warms the cache for later evictions)
			op = "read"
			id, wasLive := live[i]
			if !wasLive {
				break
			}
			o := [3]int{rng.Intn(dims[0]), rng.Intn(dims[1]), rng.Intn(dims[2])}
			d := [3]int{1 + rng.Intn(dims[0]-o[0]), 1 + rng.Intn(dims[1]-o[1]), 1 + rng.Intn(dims[2]-o[2])}
			if _, _, err := s.Region(context.Background(), id, o, d, 2); err != nil {
				t.Fatalf("step %d: region %d: %v", step, i, err)
			}
		case 3: // pressure: shed cached slabs (must never touch the disk tier)
			op = "shed"
			s.Cache().Shed(int64(rng.Intn(1500)))
		}
		audit(step, op)
	}

	// Reopen: the recovered manifest serves exactly the surviving set.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Len(), len(live); got != want {
		t.Fatalf("reopen: %d volumes, model says %d", got, want)
	}
	for i, id := range live {
		_, b, err := s2.Get(id)
		if err != nil {
			t.Fatalf("reopen: get %d: %v", i, err)
		}
		if !bytes.Equal(b, containers[i]) {
			t.Fatalf("reopen: volume %d bytes drifted", i)
		}
	}
}
