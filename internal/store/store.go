// Package store is sperrd's content-addressed volume tier: a read-heavy
// scientific archive serves the same popular volumes and cutouts over and
// over, so instead of re-streaming and re-decoding on every request, the
// daemon ingests containers once and serves regions from two tiers.
//
// The compressed tier is on disk: each ingested container v2 (or legacy
// v1) stream lives under <dir>/volumes/<id>.sperr, where the id is a
// content address — SHA-256 over the container bytes folded with a
// canonical compression-parameter tag, so the same volume compressed
// under the same contract always lands at the same address and an ingest
// is idempotent. Ingest is verified: every frame checksum is re-computed
// and cross-checked against the v2 index footer's copy (sperr.Audit)
// before a byte is admitted, so the store never vouches for a container
// it could not prove intact. A MANIFEST.json records every resident
// volume (geometry, params, size, SHA-256, per-chunk boxes); manifest
// updates flow through a batched flush loop — concurrent ingests
// coalesce into one atomic manifest rewrite, and Put/Delete block until
// their entry is durably flushed.
//
// The decoded tier is in memory: a chunk-granularity LRU (SlabCache) of
// decoded float64 slabs. Region reads assemble their cutout from cached
// chunks and decode only the intersecting frames that are missing, via
// the container's seekable index footer (sperr.DecompressRegion on
// exactly one chunk's box). Cache residency is charged through the
// Charge/Release hooks against the same sample-denominated admission
// budget that bounds in-flight decodes, so cache memory and decode
// memory share one ceiling; under admission pressure the cache sheds
// from the cold end.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sperr"
)

// Store errors. Handlers map them to HTTP statuses (404 for ErrNotFound,
// 422 for ErrCorrupt).
var (
	// ErrCorrupt: the container failed ingest-time integrity verification
	// (unparseable, damaged frames, or a v2 footer that does not
	// corroborate the frame checksums).
	ErrCorrupt = errors.New("store: container failed integrity verification")
	// ErrNotFound: no volume at that content address.
	ErrNotFound = errors.New("store: no such volume")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("store: closed")
)

// ChunkGeom is one chunk's box in volume coordinates, recorded in the
// manifest so the region hit path never has to open the container to
// learn the tiling.
type ChunkGeom struct {
	Origin [3]int `json:"origin"`
	Dims   [3]int `json:"dims"`
}

// Meta is one ingested volume's manifest entry.
type Meta struct {
	// ID is the content address: hex SHA-256 over the container bytes
	// followed by the canonical parameter tag.
	ID string `json:"id"`
	// SHA256 is the hex digest of the container bytes alone — the value
	// the disk audit re-computes and cross-checks.
	SHA256 string `json:"sha256"`
	// Bytes is the container size on disk.
	Bytes int64 `json:"bytes"`
	// Version is the container format version (1 or 2).
	Version int `json:"version"`
	// Mode, Tolerance and Entropy are the coding contract shared by every
	// chunk of the container.
	Mode      string  `json:"mode"`
	Tolerance float64 `json:"tolerance,omitempty"`
	Entropy   bool    `json:"entropy,omitempty"`
	// Dims is the volume extent; ChunkDims the chunk tiling bound.
	Dims      [3]int `json:"dims"`
	ChunkDims [3]int `json:"chunk_dims"`
	NumChunks int    `json:"num_chunks"`
	// Chunks lists each chunk's box in container order.
	Chunks []ChunkGeom `json:"chunks"`
	// Owned, when non-nil, marks this volume as a cluster shard: only the
	// listed chunk indices carry real frames (the rest are stubs). nil
	// means a complete volume — every chunk is resident. No omitempty:
	// an empty-but-present set (a peer owning zero chunks) must survive
	// the manifest round-trip distinct from nil.
	Owned []int `json:"owned"`
	// Ingested is the ingest wall-clock time (UTC).
	Ingested time.Time `json:"ingested"`
}

// OwnsChunk reports whether chunk index ci is backed by a real frame in
// this volume (always true for complete volumes).
func (m *Meta) OwnsChunk(ci int) bool {
	if m.Owned == nil {
		return true
	}
	for _, o := range m.Owned {
		if o == ci {
			return true
		}
	}
	return false
}

// paramsTag renders the compression contract as a canonical string; it is
// folded into the content address so "same bytes, different declared
// contract" can never collide.
func paramsTag(info *sperr.StreamInfo) string {
	return fmt.Sprintf("v%d|%s|tol=%.17g|entropy=%t|dims=%d,%d,%d|chunk=%d,%d,%d",
		info.Version, info.Mode, info.Tolerance, info.Entropy,
		info.Dims[0], info.Dims[1], info.Dims[2],
		info.ChunkDims[0], info.ChunkDims[1], info.ChunkDims[2])
}

// contentID derives the content address from the container digest and the
// parameter tag.
func contentID(sum [sha256.Size]byte, tag string) string {
	h := sha256.New()
	h.Write(sum[:])
	h.Write([]byte{0})
	h.Write([]byte(tag))
	return hex.EncodeToString(h.Sum(nil))
}

// Hooks observes store and cache events, for wiring into a metrics
// registry. Every field may be nil. Callbacks run on request goroutines —
// keep them fast (counter bumps).
type Hooks struct {
	// OnIngest fires after a successful Put (created reports whether the
	// volume was new or an idempotent re-ingest).
	OnIngest func(bytes int64, created bool)
	// OnReject fires when an ingest fails integrity verification.
	OnReject func()
	// OnDelete fires after a successful Delete.
	OnDelete func()
	// OnHit / OnMiss count cache outcomes per chunk visited by Region.
	OnHit  func(chunks int)
	OnMiss func(chunks int)
	// OnDecode counts chunk frames actually decoded (the hit path keeps
	// this flat — the acceptance witness).
	OnDecode func(chunks int)
	// OnEvict fires per evicted slab with its sample count.
	OnEvict func(samples int64)
	// OnResident observes the cache residency gauge after every change.
	OnResident func(samples int64)
}

// Options tunes a Store. The zero value works: caching disabled, default
// batcher cadence.
type Options struct {
	// CacheSamples caps the decoded-slab cache residency in samples
	// (float64 values; x8 for bytes). <= 0 disables the decoded tier.
	CacheSamples int64
	// Charge/Release connect cache residency to an external budget (the
	// admission controller): Charge is a non-blocking attempt to reserve n
	// samples, Release returns them. nil hooks leave the cache bounded by
	// CacheSamples alone.
	Charge  func(samples int64) bool
	Release func(samples int64)
	// FlushEvery and MaxBatch tune the manifest batcher: a flush happens
	// when MaxBatch ops are pending or FlushEvery after the first op of a
	// batch, whichever comes first. Zero values default to 5ms / 64.
	FlushEvery time.Duration
	MaxBatch   int
	// Hooks observes store events (metrics).
	Hooks Hooks
}

// Store is a content-addressed volume store: a verified on-disk
// compressed tier plus an in-memory decoded-slab LRU. All methods are
// safe for concurrent use.
type Store struct {
	dir   string
	opts  Options
	cache *SlabCache
	bat   *batcher

	mu     sync.RWMutex
	vols   map[string]*Meta
	closed bool

	// ids serializes Put/Delete per content address so a concurrent
	// ingest and delete of the same volume cannot interleave their
	// blob-file and manifest steps.
	ids keyedMutex

	decodes atomic.Int64
}

const (
	manifestName = "MANIFEST.json"
	volumesDir   = "volumes"
	blobExt      = ".sperr"
)

// manifestFile is the on-disk manifest schema.
type manifestFile struct {
	Version int     `json:"version"`
	Volumes []*Meta `json:"volumes"`
}

// Open loads (or initializes) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, volumesDir), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		vols: make(map[string]*Meta),
	}
	s.cache = newSlabCache(opts.CacheSamples, opts.Charge, opts.Release,
		opts.Hooks.OnEvict, opts.Hooks.OnResident)

	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var mf manifestFile
		if err := json.Unmarshal(raw, &mf); err != nil {
			return nil, fmt.Errorf("store: manifest unreadable: %w", err)
		}
		for _, m := range mf.Volumes {
			s.vols[m.ID] = m
		}
	case os.IsNotExist(err):
		// Fresh store.
	default:
		return nil, err
	}

	s.bat = newBatcher(opts.MaxBatch, opts.FlushEvery, s.applyBatch)
	return s, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Cache exposes the decoded-slab cache (the admission reclaimer sheds
// through it; tests assert on its residency).
func (s *Store) Cache() *SlabCache { return s.cache }

// Decodes returns the total number of chunk frames this store has decoded
// on region misses — the flat-on-hit instrumentation counter.
func (s *Store) Decodes() int64 { return s.decodes.Load() }

// Len returns the number of resident volumes.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vols)
}

// TotalBytes returns the compressed tier's aggregate size.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, m := range s.vols {
		n += m.Bytes
	}
	return n
}

// blobPath is the container file for an id.
func (s *Store) blobPath(id string) string {
	return filepath.Join(s.dir, volumesDir, id+blobExt)
}

// verify runs the ingest-time integrity gate: the container must
// describe, every frame must checksum clean, and on v2 the index footer
// must corroborate the frames (Audit's footer fast path re-computes each
// payload CRC against the index's copy).
func verify(container []byte) (*sperr.StreamInfo, error) {
	info, err := sperr.Describe(container)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rep, err := sperr.Audit(container)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rep.Degraded() {
		return nil, fmt.Errorf("%w: %d of %d chunks damaged", ErrCorrupt, rep.Skipped, rep.NumChunks)
	}
	if rep.Resynced {
		return nil, fmt.Errorf("%w: frame boundaries damaged", ErrCorrupt)
	}
	if info.Version >= 2 && !rep.IndexIntact {
		return nil, fmt.Errorf("%w: index footer does not corroborate frames", ErrCorrupt)
	}
	return info, nil
}

// AddressOf runs the full ingest-time integrity gate on a complete
// container and returns the content address it would be stored under,
// along with its description. This is how a cluster coordinator names a
// volume before slicing it into per-peer shards: every shard is stored
// under the whole container's address, so placement and lookup agree on
// one id cluster-wide.
func AddressOf(container []byte) (string, *sperr.StreamInfo, error) {
	info, err := verify(container)
	if err != nil {
		return "", nil, err
	}
	sum := sha256.Sum256(container)
	return contentID(sum, paramsTag(info)), info, nil
}

// Put ingests a container: verify integrity, write the blob (atomic
// temp-file rename, synced), and flush the manifest entry through the
// batcher. It blocks until the entry is durable. Re-ingesting an
// already-resident address is an idempotent no-op returning created =
// false.
func (s *Store) Put(container []byte) (*Meta, bool, error) {
	info, err := verify(container)
	if err != nil {
		if s.opts.Hooks.OnReject != nil {
			s.opts.Hooks.OnReject()
		}
		return nil, false, err
	}
	sum := sha256.Sum256(container)
	return s.commit(contentID(sum, paramsTag(info)), container, sum, info, nil)
}

// verifyShard is the relaxed integrity gate for cluster shards: the
// container must describe, carry an intact v2+ index footer with clean
// framing, and every chunk must either checksum clean (an owned frame)
// or be a deliberate stub no longer than StubFrameMaxLen. Anything
// between — a non-stub frame that fails its checksum — is damage and is
// rejected exactly as Put would. Returns the sorted owned chunk set.
func verifyShard(shard []byte) (*sperr.StreamInfo, []int, error) {
	info, err := sperr.Describe(shard)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if info.Version < 2 {
		return nil, nil, fmt.Errorf("%w: shard must be a v2+ container", ErrCorrupt)
	}
	rep, err := sperr.Audit(shard)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if !rep.IndexIntact || rep.Resynced {
		return nil, nil, fmt.Errorf("%w: shard index footer does not corroborate frames", ErrCorrupt)
	}
	owned := make([]int, 0, len(rep.Chunks))
	for i := range rep.Chunks {
		co := &rep.Chunks[i]
		switch {
		case co.Recovered:
			owned = append(owned, i)
		case co.Length <= sperr.StubFrameMaxLen:
			// Deliberate stub: present, checksummed, not decodable.
		default:
			return nil, nil, fmt.Errorf("%w: chunk %d damaged (%s)", ErrCorrupt, i, co.Reason)
		}
	}
	return info, owned, nil
}

// PutShard ingests a cluster shard under an explicit content address
// (the whole volume's address, computed by the coordinator via
// AddressOf). Verification accepts stub frames but still proves every
// owned frame intact; the manifest entry records the owned chunk set so
// region planning can tell local frames from remote ones. Re-ingesting
// a resident shard id merges frame-by-frame: the resident copy keeps
// its intact frames, gains any it was missing, and loses damaged ones
// to clean incoming replicas — so replicated re-ingest, anti-entropy
// repair, and rejoin convergence are all the same idempotent operation.
// A byte-identical re-ingest is a no-op.
func (s *Store) PutShard(id string, shard []byte) (*Meta, bool, error) {
	if len(id) != 64 || !isHex(id) {
		return nil, false, fmt.Errorf("%w: shard id must be a 64-char hex content address", ErrCorrupt)
	}
	info, owned, err := verifyShard(shard)
	if err != nil {
		if s.opts.Hooks.OnReject != nil {
			s.opts.Hooks.OnReject()
		}
		return nil, false, err
	}
	sum := sha256.Sum256(shard)
	return s.commit(id, shard, sum, info, owned)
}

// isHex reports whether s is lowercase-or-uppercase hex.
func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// commit is the shared tail of Put and PutShard: idempotence check, blob
// write, manifest flush. owned == nil marks a complete volume; non-nil
// (possibly empty) marks a shard with that owned chunk set.
func (s *Store) commit(id string, container []byte, sum [sha256.Size]byte, info *sperr.StreamInfo, owned []int) (*Meta, bool, error) {
	unlock := s.ids.lock(id)
	defer unlock()

	s.mu.RLock()
	existing, have := s.vols[id]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, false, ErrClosed
	}
	if have {
		if owned != nil && existing.Owned != nil {
			return s.mergeShard(existing, container)
		}
		// Complete volumes are immutable by address, and a shard arriving
		// where the complete volume already lives adds nothing.
		if s.opts.Hooks.OnIngest != nil {
			s.opts.Hooks.OnIngest(existing.Bytes, false)
		}
		return existing, false, nil
	}

	if err := writeFileAtomic(s.blobPath(id), container); err != nil {
		return nil, false, err
	}

	meta := &Meta{
		ID:        id,
		SHA256:    hex.EncodeToString(sum[:]),
		Bytes:     int64(len(container)),
		Version:   info.Version,
		Mode:      info.Mode,
		Tolerance: info.Tolerance,
		Entropy:   info.Entropy,
		Dims:      info.Dims,
		ChunkDims: info.ChunkDims,
		NumChunks: info.NumChunks,
		Chunks:    make([]ChunkGeom, len(info.Chunks)),
		Owned:     owned,
		Ingested:  time.Now().UTC(),
	}
	if owned != nil && meta.Owned == nil {
		meta.Owned = []int{} // keep "shard with zero chunks" distinct from "complete"
	}
	for i, c := range info.Chunks {
		meta.Chunks[i] = ChunkGeom{Origin: c.Origin, Dims: c.Dims}
	}
	if err := s.bat.submit(manifestOp{put: meta}); err != nil {
		return nil, false, err
	}
	if s.opts.Hooks.OnIngest != nil {
		s.opts.Hooks.OnIngest(meta.Bytes, true)
	}
	return meta, true, nil
}

// mergeShard folds an incoming (already verified) shard into the
// resident one under the same address: keep every intact resident
// frame, take incoming frames the resident copy is missing or holds
// damaged, rewrite the blob atomically, and refresh the manifest entry's
// owned set, size and digest. A resident blob that is lost or
// unparseable is replaced wholesale by the verified incoming shard —
// that is the scrubber's bit-rot recovery path. Runs under the per-id
// lock held by commit.
func (s *Store) mergeShard(existing *Meta, shard []byte) (*Meta, bool, error) {
	ingested := func(m *Meta) (*Meta, bool, error) {
		if s.opts.Hooks.OnIngest != nil {
			s.opts.Hooks.OnIngest(m.Bytes, false)
		}
		return m, false, nil
	}

	merged := shard
	cur, rerr := os.ReadFile(s.blobPath(existing.ID))
	if rerr == nil {
		if _, aerr := sperr.OwnedChunks(cur); aerr == nil {
			m, err := sperr.MergeShards(cur, shard)
			if err != nil {
				// Same address, irreconcilable geometry: refuse rather than
				// clobber what is already proven resident.
				return nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if bytes.Equal(m, cur) {
				return ingested(existing)
			}
			merged = m
		}
		// Unparseable resident blob: fall through and replace it with the
		// verified incoming shard.
	}

	mergedOwned, err := sperr.OwnedChunks(merged)
	if err != nil {
		return nil, false, fmt.Errorf("%w: merged shard: %v", ErrCorrupt, err)
	}
	if err := writeFileAtomic(s.blobPath(existing.ID), merged); err != nil {
		return nil, false, err
	}
	sum := sha256.Sum256(merged)
	meta := *existing
	meta.SHA256 = hex.EncodeToString(sum[:])
	meta.Bytes = int64(len(merged))
	meta.Owned = mergedOwned
	if err := s.bat.submit(manifestOp{put: &meta}); err != nil {
		return nil, false, err
	}
	// Drop any cached slabs decoded from frames the merge replaced.
	s.cache.Invalidate(meta.ID)
	return ingested(&meta)
}

// Get returns a volume's manifest entry and its container bytes.
func (s *Store) Get(id string) (*Meta, []byte, error) {
	meta, ok := s.Describe(id)
	if !ok {
		return nil, nil, ErrNotFound
	}
	b, err := os.ReadFile(s.blobPath(id))
	if err != nil {
		return nil, nil, fmt.Errorf("store: blob for %s: %w", shortID(id), err)
	}
	return meta, b, nil
}

// Describe returns a volume's manifest entry without touching disk.
func (s *Store) Describe(id string) (*Meta, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.vols[id]
	return m, ok
}

// List returns every resident volume's entry, sorted by id.
func (s *Store) List() []*Meta {
	s.mu.RLock()
	out := make([]*Meta, 0, len(s.vols))
	for _, m := range s.vols {
		out = append(out, m)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Delete removes a volume: the manifest entry is flushed out first (so
// the manifest never references a missing blob), then the blob file goes,
// then the volume's cached slabs are invalidated.
func (s *Store) Delete(id string) error {
	unlock := s.ids.lock(id)
	defer unlock()

	s.mu.RLock()
	_, ok := s.vols[id]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return ErrNotFound
	}
	if err := s.bat.submit(manifestOp{del: id}); err != nil {
		return err
	}
	if err := os.Remove(s.blobPath(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	s.cache.Invalidate(id)
	if s.opts.Hooks.OnDelete != nil {
		s.opts.Hooks.OnDelete()
	}
	return nil
}

// applyBatch is the batcher's flush: fold the batch into a copy of the
// volume map, atomically rewrite the manifest, and only then commit the
// copy — a failed write leaves both memory and disk at the previous
// consistent state.
func (s *Store) applyBatch(ops []manifestOp) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[string]*Meta, len(s.vols)+len(ops))
	for k, v := range s.vols {
		next[k] = v
	}
	for _, op := range ops {
		if op.put != nil {
			next[op.put.ID] = op.put
		} else if op.del != "" {
			delete(next, op.del)
		}
	}
	if err := s.writeManifest(next); err != nil {
		return err
	}
	s.vols = next
	return nil
}

// writeManifest serializes vols (sorted, indented, deterministic) and
// renames it into place.
func (s *Store) writeManifest(vols map[string]*Meta) error {
	mf := manifestFile{Version: 1, Volumes: make([]*Meta, 0, len(vols))}
	for _, m := range vols {
		mf.Volumes = append(mf.Volumes, m)
	}
	sort.Slice(mf.Volumes, func(i, j int) bool { return mf.Volumes[i].ID < mf.Volumes[j].ID })
	raw, err := json.MarshalIndent(&mf, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(s.dir, manifestName), append(raw, '\n'))
}

// writeFileAtomic writes via a synced temp file plus rename, so a crash
// leaves either the old content or the new — never a torn file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Close flushes pending manifest ops, stops the batcher, and releases
// every cached slab's budget charge. Further mutations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.bat.close()
	s.cache.Purge()
	return nil
}

// AuditReport is the outcome of a disk audit: the manifest cross-checked
// against the volumes directory.
type AuditReport struct {
	// Volumes is the number of manifest entries checked.
	Volumes int
	// Orphans are blob files with no manifest entry (a crashed ingest's
	// debris — harmless, but reported).
	Orphans []string
	// Missing are manifest entries whose blob file is gone.
	Missing []string
	// Corrupt are entries whose blob exists but no longer matches the
	// recorded size or SHA-256.
	Corrupt []string
	// Drift are ids where the in-memory view and the on-disk manifest
	// disagree (present in exactly one of the two).
	Drift []string
}

// Clean reports a fully consistent store: no missing or corrupt entries,
// no drift, no orphans.
func (r *AuditReport) Clean() bool {
	return len(r.Orphans) == 0 && len(r.Missing) == 0 && len(r.Corrupt) == 0 && len(r.Drift) == 0
}

// AuditDisk cross-checks the manifest against the volumes directory:
// every entry's blob must exist with the recorded size and SHA-256, every
// blob must have an entry, and the on-disk manifest must agree with the
// in-memory view.
func (s *Store) AuditDisk() (*AuditReport, error) {
	s.mu.RLock()
	snap := make(map[string]*Meta, len(s.vols))
	for k, v := range s.vols {
		snap[k] = v
	}
	s.mu.RUnlock()

	rep := &AuditReport{Volumes: len(snap)}

	ents, err := os.ReadDir(filepath.Join(s.dir, volumesDir))
	if err != nil {
		return nil, err
	}
	onDisk := make(map[string]bool, len(ents))
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, blobExt) {
			continue // ingest temp files are not blobs
		}
		id := strings.TrimSuffix(name, blobExt)
		onDisk[id] = true
		if _, ok := snap[id]; !ok {
			rep.Orphans = append(rep.Orphans, id)
		}
	}
	for id, m := range snap {
		if !onDisk[id] {
			rep.Missing = append(rep.Missing, id)
			continue
		}
		b, err := os.ReadFile(s.blobPath(id))
		if err != nil {
			rep.Missing = append(rep.Missing, id)
			continue
		}
		sum := sha256.Sum256(b)
		if int64(len(b)) != m.Bytes || hex.EncodeToString(sum[:]) != m.SHA256 {
			rep.Corrupt = append(rep.Corrupt, id)
		}
	}

	// Manifest file vs in-memory view.
	fileIDs := make(map[string]bool)
	if raw, err := os.ReadFile(filepath.Join(s.dir, manifestName)); err == nil {
		var mf manifestFile
		if err := json.Unmarshal(raw, &mf); err != nil {
			return nil, fmt.Errorf("store: manifest unreadable: %w", err)
		}
		for _, m := range mf.Volumes {
			fileIDs[m.ID] = true
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	for id := range snap {
		if !fileIDs[id] {
			rep.Drift = append(rep.Drift, id)
		}
	}
	for id := range fileIDs {
		if _, ok := snap[id]; !ok {
			rep.Drift = append(rep.Drift, id)
		}
	}

	sort.Strings(rep.Orphans)
	sort.Strings(rep.Missing)
	sort.Strings(rep.Corrupt)
	sort.Strings(rep.Drift)
	return rep, nil
}

// shortID abbreviates a content address for error messages.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// keyedMutex is a per-key lock with refcounted entries (the key space is
// unbounded; idle keys must not leak).
type keyedMutex struct {
	mu sync.Mutex
	m  map[string]*keyedLock
}

type keyedLock struct {
	mu   sync.Mutex
	refs int
}

func (k *keyedMutex) lock(key string) (unlock func()) {
	k.mu.Lock()
	if k.m == nil {
		k.m = make(map[string]*keyedLock)
	}
	l, ok := k.m[key]
	if !ok {
		l = &keyedLock{}
		k.m[key] = l
	}
	l.refs++
	k.mu.Unlock()

	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		k.mu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(k.m, key)
		}
		k.mu.Unlock()
	}
}
