package store

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"sperr"
)

func slab(id string, chunk, samples int) *slabEntry {
	return &slabEntry{
		key:  chunkKey{ID: id, Chunk: chunk},
		dims: [3]int{samples, 1, 1},
		data: make([]float64, samples),
	}
}

func TestSlabCacheLRUOrder(t *testing.T) {
	c := newSlabCache(300, nil, nil, nil, nil)
	for i := 0; i < 3; i++ {
		if !c.Insert(slab("v", i, 100)) {
			t.Fatalf("insert %d refused", i)
		}
	}
	// Touch chunk 0 so chunk 1 is now the cold end.
	if c.Get(chunkKey{ID: "v", Chunk: 0}) == nil {
		t.Fatal("chunk 0 not resident")
	}
	if !c.Insert(slab("v", 3, 100)) {
		t.Fatal("insert over cap refused instead of evicting")
	}
	if c.Contains(chunkKey{ID: "v", Chunk: 1}) {
		t.Fatal("LRU evicted the wrong entry (chunk 1 should be gone)")
	}
	for _, want := range []int{0, 2, 3} {
		if !c.Contains(chunkKey{ID: "v", Chunk: want}) {
			t.Fatalf("chunk %d evicted, want resident", want)
		}
	}
	if c.Resident() != 300 || c.Evictions() != 1 {
		t.Fatalf("resident=%d evictions=%d", c.Resident(), c.Evictions())
	}
}

func TestSlabCacheRejectsOversized(t *testing.T) {
	c := newSlabCache(100, nil, nil, nil, nil)
	if c.Insert(slab("v", 0, 101)) {
		t.Fatal("entry larger than the cap was cached")
	}
	if c.Insert(slab("v", 1, 0)) {
		t.Fatal("empty entry was cached")
	}
	disabled := newSlabCache(0, nil, nil, nil, nil)
	if disabled.Insert(slab("v", 0, 1)) {
		t.Fatal("zero-cap cache accepted an entry")
	}
}

func TestSlabCacheChargeEvictsColdEnd(t *testing.T) {
	// External budget of 250 samples, cache cap 1000: the budget is the
	// binding constraint, so a fourth 100-sample slab must push out the
	// coldest resident rather than overspend.
	var budget atomicBudget
	budget.cap = 250
	c := newSlabCache(1000, budget.tryCharge, budget.release, nil, nil)
	for i := 0; i < 2; i++ {
		if !c.Insert(slab("v", i, 100)) {
			t.Fatalf("insert %d refused", i)
		}
	}
	if !c.Insert(slab("v", 2, 100)) {
		t.Fatal("insert refused instead of shedding for the budget")
	}
	if c.Contains(chunkKey{ID: "v", Chunk: 0}) {
		t.Fatal("cold entry survived a budget-driven eviction")
	}
	if got := budget.used.Load(); got != c.Resident() {
		t.Fatalf("budget charge %d != residency %d", got, c.Resident())
	}
	// When the budget is consumed elsewhere entirely, the insert is
	// declined (never overspends) once the cache has nothing left to shed.
	c.Purge()
	budget.used.Store(budget.cap)
	if c.Insert(slab("v", 9, 100)) {
		t.Fatal("insert overspent a fully consumed external budget")
	}
}

func TestSlabCacheShedAndInvalidate(t *testing.T) {
	var budget atomicBudget
	budget.cap = 1 << 20
	c := newSlabCache(1000, budget.tryCharge, budget.release, nil, nil)
	for i := 0; i < 5; i++ {
		c.Insert(slab("a", i, 100))
	}
	c.Insert(slab("b", 0, 100))
	if freed := c.Shed(150); freed < 150 {
		t.Fatalf("Shed(150) freed only %d", freed)
	}
	if c.Resident() != 400 {
		t.Fatalf("resident=%d after shed, want 400", c.Resident())
	}
	if n := c.Invalidate("a"); n != 3 {
		t.Fatalf("Invalidate dropped %d slabs, want 3", n)
	}
	if !c.Contains(chunkKey{ID: "b", Chunk: 0}) {
		t.Fatal("Invalidate dropped another volume's slab")
	}
	c.Purge()
	if c.Resident() != 0 || budget.used.Load() != 0 {
		t.Fatalf("Purge left residency %d, budget %d", c.Resident(), budget.used.Load())
	}
}

// atomicBudget is a CAS-based stand-in for the admission controller:
// tryCharge never lets used exceed cap, concurrently.
type atomicBudget struct {
	cap  int64
	used atomic.Int64
}

func (b *atomicBudget) tryCharge(n int64) bool {
	for {
		cur := b.used.Load()
		if cur+n > b.cap {
			return false
		}
		if b.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

func (b *atomicBudget) release(n int64) { b.used.Add(-n) }

// TestSlabCacheConcurrentHammer is the -race concurrency tier: concurrent
// region reads, ingests, invalidations and sheds against one cache, with
// every sample charged to a shared budget. Throughout and afterwards the
// residency gauge must never exceed the budget, and the final accounting
// must balance exactly. Runs under `make test-race` (go test -race ./...).
func TestSlabCacheConcurrentHammer(t *testing.T) {
	const (
		budgetCap = 2000
		workers   = 8
		iters     = 400
	)
	var budget atomicBudget
	budget.cap = budgetCap

	var peakViolation atomic.Bool
	onResident := func(res int64) {
		if res > budgetCap {
			peakViolation.Store(true)
		}
	}
	c := newSlabCache(budgetCap, budget.tryCharge, budget.release, nil, onResident)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			vols := []string{"a", "b", "c"}
			for i := 0; i < iters; i++ {
				id := vols[next(len(vols))]
				chunk := next(16)
				switch next(6) {
				case 0:
					c.Insert(slab(id, chunk, 50+next(200)))
				case 1:
					c.Get(chunkKey{ID: id, Chunk: chunk})
				case 2:
					c.Contains(chunkKey{ID: id, Chunk: chunk})
				case 3:
					c.Shed(int64(next(300)))
				case 4:
					c.Invalidate(id)
				case 5:
					// The invariant probe itself, interleaved with mutation.
					if res := c.Resident(); res > budgetCap {
						t.Errorf("residency %d exceeds budget %d", res, budgetCap)
					}
					if used := budget.used.Load(); used > budgetCap {
						t.Errorf("budget charge %d exceeds cap %d", used, budgetCap)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if peakViolation.Load() {
		t.Fatal("residency callback observed a value above the budget")
	}
	if c.PeakResident() > budgetCap {
		t.Fatalf("peak residency %d exceeds budget %d", c.PeakResident(), budgetCap)
	}
	if got, want := budget.used.Load(), c.Resident(); got != want {
		t.Fatalf("final budget charge %d != residency %d (leak)", got, want)
	}
	c.Purge()
	if budget.used.Load() != 0 {
		t.Fatalf("budget not fully released after purge: %d", budget.used.Load())
	}
}

// TestStoreConcurrentReadsAndEvictions hammers the full store path under
// -race: concurrent Region reads over several volumes with a cache far too
// small to hold them all, so reads, inserts and evictions interleave while
// every read must still return exact bytes.
func TestStoreConcurrentReadsAndEvictions(t *testing.T) {
	var budget atomicBudget
	budget.cap = 1200 // ~2 of the 512-sample chunks
	s := openTestStore(t, Options{
		CacheSamples: budget.cap,
		Charge:       budget.tryCharge,
		Release:      budget.release,
	})
	dims := [3]int{16, 16, 8}
	const nvols = 3
	ids := make([]string, nvols)
	want := make([][]float64, nvols)
	for i := 0; i < nvols; i++ {
		ctr := makeContainer(t, dims, [3]int{8, 8, 8}, 1e-4, int64(40+i))
		m, _, err := s.Put(ctr)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
		w, err := sperr.DecompressRegion(ctr, [3]int{0, 0, 0}, dims)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				v := (w + i) % nvols
				got, _, err := s.Region(context.Background(), ids[v], [3]int{0, 0, 0}, dims, 2)
				if err != nil {
					t.Error(err)
					return
				}
				if !equalFloats(got, want[v]) {
					t.Errorf("volume %d: concurrent read returned wrong data", v)
					return
				}
				if res := s.Cache().Resident(); res > budget.cap {
					t.Errorf("residency %d exceeds budget %d", res, budget.cap)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if budget.used.Load() > budget.cap {
		t.Fatalf("budget overspent: %d > %d", budget.used.Load(), budget.cap)
	}
	if s.Cache().Evictions() == 0 {
		t.Fatal("cache never evicted — budget was not binding, test proves nothing")
	}
	mustClean(t, s)
}
