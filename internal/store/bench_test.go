package store

import (
	"context"
	"testing"
)

// benchStore ingests one 64^3 volume tiled into 32^3 chunks and returns
// the store plus the content address.
func benchStore(b *testing.B, cacheSamples int64) (*Store, string) {
	b.Helper()
	dims := [3]int{64, 64, 64}
	s := openTestStore(b, Options{CacheSamples: cacheSamples})
	c := makeContainer(b, dims, [3]int{32, 32, 32}, 1e-4, 9)
	m, _, err := s.Put(c)
	if err != nil {
		b.Fatal(err)
	}
	return s, m.ID
}

// BenchmarkRegionCached measures the decoded-slab hit path: after one
// warming read, every iteration serves the cutout purely by copying out
// of resident slabs — zero decode work. The cutout spans all 8 chunks.
func BenchmarkRegionCached(b *testing.B) {
	s, id := benchStore(b, 64*64*64)
	origin, dims := [3]int{8, 8, 8}, [3]int{48, 48, 48}
	if _, st, err := s.Region(context.Background(), id, origin, dims, 4); err != nil || st.Misses == 0 {
		b.Fatalf("warmup: err=%v stats=%+v", err, st)
	}
	before := s.Decodes()
	n := dims[0] * dims[1] * dims[2]
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := s.Region(context.Background(), id, origin, dims, 4)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Cached() {
			b.Fatalf("iteration decoded: %+v", st)
		}
	}
	b.StopTimer()
	if s.Decodes() != before {
		b.Fatalf("hit path decoded %d chunks", s.Decodes()-before)
	}
}

// BenchmarkRegionUncached is the same cutout with caching disabled: every
// iteration re-decodes all intersecting chunk frames from the blob — the
// cost the cache removes.
func BenchmarkRegionUncached(b *testing.B) {
	s, id := benchStore(b, 0) // decoded tier disabled
	origin, dims := [3]int{8, 8, 8}, [3]int{48, 48, 48}
	n := dims[0] * dims[1] * dims[2]
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := s.Region(context.Background(), id, origin, dims, 4)
		if err != nil {
			b.Fatal(err)
		}
		if st.Decoded == 0 {
			b.Fatal("uncached iteration decoded nothing")
		}
	}
}
