package store

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sperr"
)

// testField builds a small deterministic smooth-plus-noise volume.
func testField(dims [3]int, seed int64) []float64 {
	nx, ny, nz := dims[0], dims[1], dims[2]
	data := make([]float64, nx*ny*nz)
	rng := uint64(seed)*2862933555777941757 + 3037000493
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				rng = rng*2862933555777941757 + 3037000493
				noise := float64(rng>>40) / (1 << 24)
				data[(z*ny+y)*nx+x] = math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y)) +
					0.3*math.Sin(0.1*float64(z)) + 0.05*noise
			}
		}
	}
	return data
}

// makeContainer compresses a deterministic field into a container v2.
func makeContainer(t testing.TB, dims, chunkDims [3]int, tol float64, seed int64) []byte {
	t.Helper()
	stream, _, err := sperr.CompressPWE(testField(dims, seed), dims, tol,
		&sperr.Options{ChunkDims: chunkDims})
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

func openTestStore(t testing.TB, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustClean(t *testing.T, s *Store) {
	t.Helper()
	rep, err := s.AuditDisk()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("audit not clean: orphans=%v missing=%v corrupt=%v drift=%v",
			rep.Orphans, rep.Missing, rep.Corrupt, rep.Drift)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTestStore(t, Options{})
	dims := [3]int{24, 17, 9}
	c := makeContainer(t, dims, [3]int{8, 8, 8}, 1e-4, 1)

	meta, created, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Put reported created=false")
	}
	if meta.Dims != dims || meta.NumChunks != 3*3*2 || len(meta.Chunks) != meta.NumChunks {
		t.Fatalf("meta geometry wrong: %+v", meta)
	}
	if meta.Mode != "pwe" || meta.Tolerance != 1e-4 {
		t.Fatalf("meta params wrong: mode=%q tol=%g", meta.Mode, meta.Tolerance)
	}

	got, b, err := s.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != meta.ID || !bytes.Equal(b, c) {
		t.Fatal("Get returned different bytes or meta")
	}

	// Idempotent re-ingest: same address, no second copy.
	meta2, created, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	if created || meta2.ID != meta.ID {
		t.Fatalf("re-ingest: created=%v id match=%v", created, meta2.ID == meta.ID)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d volumes, want 1", s.Len())
	}
	mustClean(t, s)
}

func TestContentAddressSeparatesParams(t *testing.T) {
	s := openTestStore(t, Options{})
	dims := [3]int{16, 16, 8}
	a := makeContainer(t, dims, [3]int{8, 8, 8}, 1e-3, 1)
	b := makeContainer(t, dims, [3]int{8, 8, 8}, 1e-5, 1) // same data, different tol

	ma, _, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, _, err := s.Put(b)
	if err != nil {
		t.Fatal(err)
	}
	if ma.ID == mb.ID {
		t.Fatal("different compression params produced the same content address")
	}
}

func TestPutRejectsCorrupt(t *testing.T) {
	s := openTestStore(t, Options{})
	c := makeContainer(t, [3]int{24, 17, 9}, [3]int{8, 8, 8}, 1e-4, 2)

	flip := append([]byte(nil), c...)
	flip[len(flip)/2] ^= 0x40 // inside a frame payload: CRC must catch it
	if _, _, err := s.Put(flip); err == nil {
		t.Fatal("Put accepted a payload-corrupted container")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted Put returned %v, want ErrCorrupt", err)
	}

	if _, _, err := s.Put(c[:len(c)/3]); err == nil {
		t.Fatal("Put accepted a truncated container")
	}
	if _, _, err := s.Put([]byte("not a container at all")); err == nil {
		t.Fatal("Put accepted garbage")
	}
	if s.Len() != 0 {
		t.Fatalf("rejected ingests left %d volumes resident", s.Len())
	}
	mustClean(t, s)
}

func TestDeleteRemovesBlobAndManifest(t *testing.T) {
	s := openTestStore(t, Options{CacheSamples: 1 << 20})
	c := makeContainer(t, [3]int{16, 16, 8}, [3]int{8, 8, 8}, 1e-4, 3)
	meta, _, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache so Delete also has slabs to invalidate.
	if _, _, err := s.Region(context.Background(), meta.ID, [3]int{0, 0, 0}, meta.Dims, 2); err != nil {
		t.Fatal(err)
	}
	if s.Cache().Len() == 0 {
		t.Fatal("region read cached nothing")
	}

	if err := s.Delete(meta.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(meta.ID); err != ErrNotFound {
		t.Fatalf("Get after Delete returned %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(s.blobPath(meta.ID)); !os.IsNotExist(err) {
		t.Fatal("blob file survived Delete")
	}
	if got := s.Cache().Len(); got != 0 {
		t.Fatalf("%d cached slabs survived Delete", got)
	}
	if err := s.Delete(meta.ID); err != ErrNotFound {
		t.Fatalf("double Delete returned %v, want ErrNotFound", err)
	}
	mustClean(t, s)
}

// TestReopenRecoversManifest: a fresh Store over the same dir sees the
// same volumes and serves the same bytes.
func TestReopenRecoversManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := makeContainer(t, [3]int{16, 16, 8}, [3]int{8, 8, 8}, 1e-4, 4)
	meta, _, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, b, err := s2.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, c) || got.NumChunks != meta.NumChunks {
		t.Fatal("reopened store does not match original")
	}
	mustClean(t, s2)
}

// TestBatchedFlushCoalesces: concurrent ingests all land durably and the
// store stays consistent — the batcher's group commit must not drop or
// double-apply ops.
func TestBatchedFlushCoalesces(t *testing.T) {
	s := openTestStore(t, Options{})
	const n = 16
	containers := make([][]byte, n)
	for i := range containers {
		containers[i] = makeContainer(t, [3]int{12, 11, 7}, [3]int{8, 8, 8}, 1e-4, int64(100+i))
	}
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := range containers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _, err := s.Put(containers[i])
			if err == nil {
				ids[i] = m.ID
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Put %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("store holds %d volumes, want %d", s.Len(), n)
	}
	for i, id := range ids {
		if _, b, err := s.Get(id); err != nil || !bytes.Equal(b, containers[i]) {
			t.Fatalf("volume %d not durably resident: %v", i, err)
		}
	}
	mustClean(t, s)
}

// TestRegionMatchesDecompressRegion: the two-tier read path is a pure
// memoization — cached, partially cached, and uncached reads are all
// bit-identical to the library's region decode, and a repeated read does
// zero decode work.
func TestRegionMatchesDecompressRegion(t *testing.T) {
	s := openTestStore(t, Options{CacheSamples: 1 << 20})
	dims := [3]int{24, 17, 9}
	c := makeContainer(t, dims, [3]int{8, 8, 8}, 1e-4, 5)
	meta, _, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}

	regions := []struct{ origin, rdims [3]int }{
		{[3]int{0, 0, 0}, dims},              // whole volume
		{[3]int{3, 2, 1}, [3]int{10, 9, 5}},  // interior crossing chunk seams
		{[3]int{16, 8, 0}, [3]int{8, 9, 8}},  // touching the ragged edge
		{[3]int{23, 16, 8}, [3]int{1, 1, 1}}, // single corner point
	}
	for ri, rg := range regions {
		want, err := sperr.DecompressRegion(c, rg.origin, rg.rdims)
		if err != nil {
			t.Fatal(err)
		}
		// First read: misses decode, result exact.
		got, st1, err := s.Region(context.Background(), meta.ID, rg.origin, rg.rdims, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !equalFloats(got, want) {
			t.Fatalf("region %d: first read differs from DecompressRegion", ri)
		}
		// Second read: fully cached, zero decodes, still exact.
		before := s.Decodes()
		got2, st2, err := s.Region(context.Background(), meta.ID, rg.origin, rg.rdims, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !equalFloats(got2, want) {
			t.Fatalf("region %d: cached read differs from DecompressRegion", ri)
		}
		if !st2.Cached() || st2.Decoded != 0 || s.Decodes() != before {
			t.Fatalf("region %d: repeat read decoded (stats1=%+v stats2=%+v)", ri, st1, st2)
		}
		if st2.Chunks != st1.Chunks || st2.Hits != st1.Chunks {
			t.Fatalf("region %d: hit accounting wrong: %+v", ri, st2)
		}
	}
	mustClean(t, s)
}

// equalFloats compares bit patterns (NaN-safe, sign-of-zero-exact).
func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestPlanRegion: the admission probe reports misses before a read and
// full residency after.
func TestPlanRegion(t *testing.T) {
	s := openTestStore(t, Options{CacheSamples: 1 << 20})
	dims := [3]int{16, 16, 8}
	c := makeContainer(t, dims, [3]int{8, 8, 8}, 1e-4, 6)
	meta, _, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.PlanRegion(meta.ID, [3]int{0, 0, 0}, dims)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chunks != 4 || plan.MissingChunks != 4 || plan.MaxChunkSamples != 512 {
		t.Fatalf("cold plan wrong: %+v", plan)
	}
	if _, _, err := s.Region(context.Background(), meta.ID, [3]int{0, 0, 0}, dims, 0); err != nil {
		t.Fatal(err)
	}
	plan, err = s.PlanRegion(meta.ID, [3]int{0, 0, 0}, dims)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MissingChunks != 0 || plan.MissingSamples != 0 {
		t.Fatalf("warm plan wrong: %+v", plan)
	}
	// Out-of-bounds and unknown-volume errors.
	if _, err := s.PlanRegion(meta.ID, [3]int{8, 0, 0}, dims); err == nil {
		t.Fatal("out-of-bounds plan accepted")
	}
	if _, err := s.PlanRegion("nope", [3]int{0, 0, 0}, [3]int{1, 1, 1}); err != ErrNotFound {
		t.Fatalf("unknown id plan returned %v", err)
	}
}

// TestAuditDetectsDamage: the disk audit flags orphans, missing blobs,
// and content drift.
func TestAuditDetectsDamage(t *testing.T) {
	s := openTestStore(t, Options{})
	c := makeContainer(t, [3]int{12, 11, 7}, [3]int{8, 8, 8}, 1e-4, 7)
	meta, _, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	mustClean(t, s)

	// Orphan: a stray blob no manifest entry references.
	stray := filepath.Join(s.Dir(), volumesDir, "deadbeef"+blobExt)
	if err := os.WriteFile(stray, []byte("stray"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := s.AuditDisk()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0] != "deadbeef" {
		t.Fatalf("orphan not flagged: %+v", rep)
	}
	os.Remove(stray)

	// Corrupt: blob content no longer matches the manifest's SHA-256.
	if err := os.WriteFile(s.blobPath(meta.ID), append([]byte(nil), c[:len(c)-1]...), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = s.AuditDisk()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 {
		t.Fatalf("tampered blob not flagged: %+v", rep)
	}

	// Missing: blob gone entirely.
	os.Remove(s.blobPath(meta.ID))
	rep, err = s.AuditDisk()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 {
		t.Fatalf("missing blob not flagged: %+v", rep)
	}
}

func TestClosedStoreRefusesMutation(t *testing.T) {
	s := openTestStore(t, Options{})
	c := makeContainer(t, [3]int{12, 11, 7}, [3]int{8, 8, 8}, 1e-4, 8)
	meta, _, err := s.Put(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(c); err != ErrClosed {
		t.Fatalf("Put after Close returned %v, want ErrClosed", err)
	}
	if err := s.Delete(meta.ID); err != ErrClosed {
		t.Fatalf("Delete after Close returned %v, want ErrClosed", err)
	}
}
