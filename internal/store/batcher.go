package store

import (
	"sync"
	"time"
)

// manifestOp is one pending manifest mutation: exactly one of put or del
// is set. done receives the flush outcome (buffered, sent exactly once).
type manifestOp struct {
	put  *Meta
	del  string
	done chan error
}

// batcher is the manifest's batched flush loop: submitters enqueue ops
// and block until the batch containing their op has been applied and the
// manifest durably rewritten. A flush triggers when maxBatch ops are
// pending or `every` after the first op of a batch — so a burst of
// concurrent ingests pays one manifest rewrite, not one per volume,
// while a lone ingest still lands within one flush interval. This is the
// blocking group-commit shape of write-ahead batchers in audit-log
// systems: amortize the fsync, never acknowledge before it.
type batcher struct {
	ops  chan manifestOp
	quit chan struct{}
	done chan struct{}

	maxBatch int
	every    time.Duration
	apply    func([]manifestOp) error

	mu     sync.Mutex
	closed bool
}

func newBatcher(maxBatch int, every time.Duration, apply func([]manifestOp) error) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if every <= 0 {
		every = 5 * time.Millisecond
	}
	b := &batcher{
		ops:      make(chan manifestOp, 4*maxBatch),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		maxBatch: maxBatch,
		every:    every,
		apply:    apply,
	}
	go b.loop()
	return b
}

// submit enqueues one op and blocks until its batch is flushed. The
// closed check and the enqueue happen under one lock, so every accepted
// op is visible to the loop's shutdown drain.
func (b *batcher) submit(op manifestOp) error {
	op.done = make(chan error, 1)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.ops <- op
	b.mu.Unlock()
	return <-op.done
}

// close flushes every accepted op and stops the loop. Idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	var batch []manifestOp
	timer := time.NewTimer(b.every)
	if !timer.Stop() {
		<-timer.C
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		err := b.apply(batch)
		for _, op := range batch {
			op.done <- err
		}
		batch = nil
	}
	stopTimer := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		select {
		case op := <-b.ops:
			if len(batch) == 0 {
				stopTimer()
				timer.Reset(b.every)
			}
			batch = append(batch, op)
			if len(batch) >= b.maxBatch {
				stopTimer()
				flush()
			}
		case <-timer.C:
			flush()
		case <-b.quit:
			stopTimer()
			for {
				select {
				case op := <-b.ops:
					batch = append(batch, op)
					if len(batch) >= b.maxBatch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}
