package store

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// chunkKey identifies one decoded slab: a volume's content address plus
// the chunk's container-order index.
type chunkKey struct {
	ID    string
	Chunk int
}

// slabEntry is one resident decoded chunk. Data is shared with readers
// and must be treated as immutable once inserted.
type slabEntry struct {
	key    chunkKey
	origin [3]int
	dims   [3]int
	data   []float64
}

func (e *slabEntry) samples() int64 { return int64(len(e.data)) }

// SlabCache is the decoded hot tier: a chunk-granularity LRU of decoded
// float64 slabs, bounded two ways. Its own capSamples cap bounds what the
// cache may hold at most, and every resident sample is additionally
// charged through the charge/release hooks against the shared admission
// budget — so decoded cache memory and in-flight decode memory compete
// for one ceiling, and an insert that the budget cannot absorb evicts
// from the cold end or is simply not cached (a cache is allowed to drop;
// it is never allowed to overspend).
//
// Lock ordering: SlabCache.mu may be held while calling charge/release
// (which take the admission lock); the admission controller only calls
// back into the cache (Shed) with its own lock released.
type SlabCache struct {
	capSamples int64
	charge     func(int64) bool
	release    func(int64)
	onEvict    func(int64)
	onResident func(int64)

	mu       sync.Mutex
	resident int64
	peak     int64
	ll       *list.List // front = most recently used
	entries  map[chunkKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

func newSlabCache(capSamples int64, charge func(int64) bool, release func(int64),
	onEvict, onResident func(int64)) *SlabCache {
	return &SlabCache{
		capSamples: capSamples,
		charge:     charge,
		release:    release,
		onEvict:    onEvict,
		onResident: onResident,
		ll:         list.New(),
		entries:    make(map[chunkKey]*list.Element),
	}
}

// Get returns the resident slab for k (promoting it to most recently
// used) or nil. The returned entry's data is shared — read only.
func (c *SlabCache) Get(k chunkKey) *slabEntry {
	c.mu.Lock()
	el, ok := c.entries[k]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return el.Value.(*slabEntry)
}

// Contains reports residency without promoting (the planning probe).
func (c *SlabCache) Contains(k chunkKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[k]
	return ok
}

// Insert makes e resident, evicting cold slabs as needed to fit both the
// cache's own cap and the external budget. It reports whether the entry
// is resident on return (false = not cacheable right now; the caller's
// decoded data is still valid, it just will not be reused).
func (c *SlabCache) Insert(e *slabEntry) bool {
	n := e.samples()
	if n == 0 || c.capSamples <= 0 || n > c.capSamples {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[e.key]; ok {
		return true // raced with another decode of the same chunk
	}
	for c.resident+n > c.capSamples {
		if !c.evictOldestLocked() {
			return false
		}
	}
	if c.charge != nil {
		for !c.charge(n) {
			// The shared budget is full (in-flight decodes or other
			// residents hold it): shed our own cold end and retry; if the
			// cache is empty the budget is busy elsewhere — skip caching.
			if !c.evictOldestLocked() {
				return false
			}
		}
	}
	c.resident += n
	if c.resident > c.peak {
		c.peak = c.resident
	}
	c.entries[e.key] = c.ll.PushFront(e)
	if c.onResident != nil {
		c.onResident(c.resident)
	}
	return true
}

// evictOldestLocked drops the least recently used slab, returning false
// when the cache is empty.
func (c *SlabCache) evictOldestLocked() bool {
	el := c.ll.Back()
	if el == nil {
		return false
	}
	c.removeLocked(el)
	return true
}

func (c *SlabCache) removeLocked(el *list.Element) {
	e := el.Value.(*slabEntry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	n := e.samples()
	c.resident -= n
	if c.release != nil {
		c.release(n)
	}
	c.evictions.Add(1)
	if c.onEvict != nil {
		c.onEvict(n)
	}
	if c.onResident != nil {
		c.onResident(c.resident)
	}
}

// Shed evicts from the cold end until at least need samples have been
// released (or the cache is empty), returning the samples freed. This is
// the admission controller's reclaim hook: a decode request that does not
// fit pushes the cache out of the shared budget, cold-first.
func (c *SlabCache) Shed(need int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var freed int64
	for freed < need {
		el := c.ll.Back()
		if el == nil {
			break
		}
		freed += el.Value.(*slabEntry).samples()
		c.removeLocked(el)
	}
	return freed
}

// Invalidate drops every resident slab of the given volume, returning how
// many were dropped.
func (c *SlabCache) Invalidate(id string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var drop []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*slabEntry).key.ID == id {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		c.removeLocked(el)
	}
	return len(drop)
}

// Purge evicts everything (releasing all budget charges).
func (c *SlabCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.evictOldestLocked() {
	}
}

// Resident returns the current residency in samples — the gauge the
// concurrency tier asserts never exceeds the budget.
func (c *SlabCache) Resident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}

// PeakResident returns the residency high-water mark.
func (c *SlabCache) PeakResident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// Cap returns the configured residency cap (0 = caching disabled).
func (c *SlabCache) Cap() int64 { return c.capSamples }

// Len returns the number of resident slabs.
func (c *SlabCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits, Misses and Evictions are cumulative event counters.
func (c *SlabCache) Hits() int64      { return c.hits.Load() }
func (c *SlabCache) Misses() int64    { return c.misses.Load() }
func (c *SlabCache) Evictions() int64 { return c.evictions.Load() }
