package store

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"sperr"
)

// RegionStats describes how one Region call was served.
type RegionStats struct {
	// Chunks is the number of chunks intersecting the cutout; Hits of
	// them came from the decoded cache, Misses had to be decoded.
	Chunks, Hits, Misses int
	// Decoded is the number of chunk frames actually decoded — zero on a
	// full cache hit.
	Decoded int
	// Samples is the cutout's sample count.
	Samples int
}

// Cached reports a fully cache-served read (zero decode work).
func (st *RegionStats) Cached() bool { return st.Misses == 0 }

// RegionPlan is the admission probe for a region read: what the cutout
// intersects and what is not resident right now. The plan is advisory —
// the cache can change between planning and reading — but the decode
// arena bound it implies (workers x MaxChunkSamples) holds regardless,
// because Region never decodes more than that many chunks at once.
type RegionPlan struct {
	Chunks          int
	MissingChunks   int
	MissingSamples  int64
	MaxChunkSamples int64
}

// intersects reports whether chunk box g overlaps the cutout.
func intersects(g ChunkGeom, origin, dims [3]int) bool {
	for a := 0; a < 3; a++ {
		if g.Origin[a] >= origin[a]+dims[a] || g.Origin[a]+g.Dims[a] <= origin[a] {
			return false
		}
	}
	return true
}

// checkRegion validates a cutout against a volume's extent.
func checkRegion(m *Meta, origin, dims [3]int) error {
	for a := 0; a < 3; a++ {
		if dims[a] <= 0 {
			return fmt.Errorf("store: region dims must be positive, got %v", dims)
		}
		if origin[a] < 0 || origin[a]+dims[a] > m.Dims[a] {
			return fmt.Errorf("store: region %v@%v exceeds volume %v", dims, origin, m.Dims)
		}
	}
	return nil
}

// PlanRegion reports what serving the cutout would take right now:
// intersecting chunks, how many are not cached, and the largest chunk's
// sample count (the per-worker decode arena unit).
func (s *Store) PlanRegion(id string, origin, dims [3]int) (*RegionPlan, error) {
	m, ok := s.Describe(id)
	if !ok {
		return nil, ErrNotFound
	}
	if err := checkRegion(m, origin, dims); err != nil {
		return nil, err
	}
	plan := &RegionPlan{}
	for i, g := range m.Chunks {
		if !intersects(g, origin, dims) {
			continue
		}
		plan.Chunks++
		n := int64(g.Dims[0]) * int64(g.Dims[1]) * int64(g.Dims[2])
		if n > plan.MaxChunkSamples {
			plan.MaxChunkSamples = n
		}
		if !s.cache.Contains(chunkKey{ID: id, Chunk: i}) {
			plan.MissingChunks++
			plan.MissingSamples += n
		}
	}
	return plan, nil
}

// Region serves the cutout of extent dims anchored at origin from the
// two-tier store: chunks resident in the decoded cache are copied out
// with zero decode work, and only the missing intersecting frames are
// decoded (each located through the container's index footer), in
// parallel up to workers, then offered to the cache for the next reader.
// The result is bit-identical to sperr.DecompressRegion on the stored
// container — the cache is a pure memoization.
func (s *Store) Region(ctx context.Context, id string, origin, dims [3]int, workers int) ([]float64, *RegionStats, error) {
	m, ok := s.Describe(id)
	if !ok {
		return nil, nil, ErrNotFound
	}
	if err := checkRegion(m, origin, dims); err != nil {
		return nil, nil, err
	}

	n := dims[0] * dims[1] * dims[2]
	out := make([]float64, n)
	st := &RegionStats{Samples: n}

	// Pass 1: serve what the decoded tier already holds.
	var missIdx []int
	for i, g := range m.Chunks {
		if !intersects(g, origin, dims) {
			continue
		}
		st.Chunks++
		if e := s.cache.Get(chunkKey{ID: id, Chunk: i}); e != nil {
			copyIntersect(out, origin, dims, e.origin, e.dims, e.data)
			st.Hits++
		} else {
			missIdx = append(missIdx, i)
			st.Misses++
		}
	}
	if s.opts.Hooks.OnHit != nil && st.Hits > 0 {
		s.opts.Hooks.OnHit(st.Hits)
	}
	if s.opts.Hooks.OnMiss != nil && st.Misses > 0 {
		s.opts.Hooks.OnMiss(st.Misses)
	}
	if len(missIdx) == 0 {
		return out, st, nil
	}

	// Pass 2: decode only the missing frames, bounded by workers.
	blob, err := os.ReadFile(s.blobPath(id))
	if err != nil {
		return nil, nil, fmt.Errorf("store: blob for %s: %w", shortID(id), err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(missIdx) {
		workers = len(missIdx)
	}
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, workers)
		errMu   sync.Mutex
		first   error
		decoded atomic.Int64
	)
	setErr := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	for _, ci := range missIdx {
		if ctx != nil && ctx.Err() != nil {
			setErr(ctx.Err())
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int) {
			defer func() { <-sem; wg.Done() }()
			g := m.Chunks[ci]
			// A region equal to exactly one chunk's box decodes exactly
			// that frame (chunks tile the volume disjointly), so the
			// existing seekable region path is the single-chunk decoder.
			data, err := sperr.DecompressRegionWorkers(blob, g.Origin, g.Dims, 1)
			if err != nil {
				setErr(fmt.Errorf("store: chunk %d of %s: %w", ci, shortID(id), err))
				return
			}
			s.decodes.Add(1)
			decoded.Add(1)
			if s.opts.Hooks.OnDecode != nil {
				s.opts.Hooks.OnDecode(1)
			}
			// Chunks are disjoint, so concurrent copies write disjoint
			// ranges of out.
			copyIntersect(out, origin, dims, g.Origin, g.Dims, data)
			s.cache.Insert(&slabEntry{
				key:    chunkKey{ID: id, Chunk: ci},
				origin: g.Origin,
				dims:   g.Dims,
				data:   data,
			})
		}(ci)
	}
	wg.Wait()
	st.Decoded = int(decoded.Load())
	if first != nil {
		return nil, nil, first
	}
	return out, st, nil
}

// copyIntersect copies the overlap of the chunk box (cOrigin, cDims) into
// the destination cutout (dOrigin, dDims), both in volume coordinates.
func copyIntersect(dst []float64, dOrigin, dDims [3]int, cOrigin, cDims [3]int, src []float64) {
	x0, x1 := maxInt(cOrigin[0], dOrigin[0]), minInt(cOrigin[0]+cDims[0], dOrigin[0]+dDims[0])
	y0, y1 := maxInt(cOrigin[1], dOrigin[1]), minInt(cOrigin[1]+cDims[1], dOrigin[1]+dDims[1])
	z0, z1 := maxInt(cOrigin[2], dOrigin[2]), minInt(cOrigin[2]+cDims[2], dOrigin[2]+dDims[2])
	if x1 <= x0 || y1 <= y0 || z1 <= z0 {
		return
	}
	for z := z0; z < z1; z++ {
		for y := y0; y < y1; y++ {
			srcOff := ((z-cOrigin[2])*cDims[1]+(y-cOrigin[1]))*cDims[0] + (x0 - cOrigin[0])
			dstOff := ((z-dOrigin[2])*dDims[1]+(y-dOrigin[1]))*dDims[0] + (x0 - dOrigin[0])
			copy(dst[dstOff:dstOff+(x1-x0)], src[srcOff:srcOff+(x1-x0)])
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
