package store

import (
	"context"
	"math"
	"testing"

	"sperr"
)

// TestPutShardRoundTrip covers the cluster ingest contract: a shard
// stored under the whole volume's address serves its owned chunks
// bit-identically and records ownership in the manifest, surviving a
// store reopen.
func TestPutShardRoundTrip(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{16, 16, 16}, 1e-3, 7)
	id, info, err := AddressOf(container)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumChunks != 4 {
		t.Fatalf("fixture has %d chunks, want 4", info.NumChunks)
	}
	keep := func(ci int) bool { return ci == 1 || ci == 3 }
	shard, err := sperr.SliceShard(container, keep)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s, err := Open(dir, Options{CacheSamples: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	meta, created, err := s.PutShard(id, shard)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first PutShard reported created=false")
	}
	if got, want := meta.Owned, []int{1, 3}; len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("owned = %v, want %v", got, want)
	}
	if meta.OwnsChunk(0) || !meta.OwnsChunk(1) {
		t.Fatal("OwnsChunk disagrees with owned set")
	}

	// Idempotent re-ingest.
	if _, created, err := s.PutShard(id, shard); err != nil || created {
		t.Fatalf("re-ingest: created=%v err=%v", created, err)
	}

	// An owned chunk reads bit-identically to the single-node path.
	ci := info.Chunks[3]
	want, err := sperr.DecompressRegionWorkers(container, ci.Origin, ci.Dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Region(context.Background(), id, ci.Origin, ci.Dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
			t.Fatalf("sample %d differs", k)
		}
	}

	// Ownership survives reopen.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2, ok := s2.Describe(id)
	if !ok {
		t.Fatal("shard missing after reopen")
	}
	if m2.Owned == nil || len(m2.Owned) != 2 {
		t.Fatalf("owned set after reopen: %v", m2.Owned)
	}
	mustClean(t, s2)
}

func TestPutShardRejects(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{16, 16, 16}, 1e-3, 11)
	id, _, err := AddressOf(container)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := sperr.SliceShard(container, func(ci int) bool { return ci == 0 })
	if err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t, Options{})

	if _, _, err := s.PutShard("not-a-content-address", shard); err == nil {
		t.Fatal("bogus id accepted")
	}
	// Damage an owned frame (first frame payload starts after the 36-byte
	// header's 4-byte length prefix): no longer a stub, must be rejected.
	bad := append([]byte(nil), shard...)
	bad[36+4] ^= 0xff
	if _, _, err := s.PutShard(id, bad); err == nil {
		t.Fatal("shard with damaged owned frame accepted")
	}
}

// TestPutShardZeroOwned pins that a peer owning no chunks still stores
// the geometry, with an empty-but-present owned set distinct from a
// complete volume.
func TestPutShardZeroOwned(t *testing.T) {
	container := makeContainer(t, [3]int{20, 11, 6}, [3]int{8, 8, 8}, 1e-3, 3)
	id, _, err := AddressOf(container)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := sperr.SliceShard(container, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err := s.PutShard(id, shard)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Owned == nil || len(meta.Owned) != 0 {
		t.Fatalf("zero-owned shard: Owned = %v, want empty non-nil", meta.Owned)
	}
	if meta.OwnsChunk(0) {
		t.Fatal("zero-owned shard claims a chunk")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2, _ := s2.Describe(id)
	if m2 == nil || m2.Owned == nil {
		t.Fatalf("zero-owned set did not survive reopen: %+v", m2)
	}
}
