package cluster

// HTTP peer protocol client. The protocol is three verbs under
// /v1/internal/chunks/{id}:
//
//	PUT    body = shard container        -> 200/201
//	DELETE                               -> 204 (404 = already gone)
//	GET    ?region=x,y,z,nx,ny,nz&chunks=i,j,...
//	       -> stream of frames, one per servable chunk:
//	          u32 LE chunk index | u32 LE sample count | samples f64 LE
//
// The GET response is streamed frame-by-frame so the coordinator can
// hand each chunk to the assembler the moment it arrives; a peer that
// cannot serve a requested chunk simply omits its frame (the
// coordinator retries, then fills). Samples are raw float64 bits, so a
// gathered region is bit-identical to a local decode.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// chunkFrameHeaderSize is the per-frame prefix: u32 index + u32 count.
const chunkFrameHeaderSize = 8

// sharedTransport is the single pooled transport every Cluster dials
// peers through unless Config.Client overrides it. Peer RPCs are small,
// frequent, and aimed at a handful of hosts, so connection reuse with
// capped per-host pools beats http.DefaultTransport's unbounded dials —
// especially under the scrubber, whose background fetches would
// otherwise compete with reads for fresh connections.
var sharedTransport = &http.Transport{
	MaxIdleConns:        128,
	MaxIdleConnsPerHost: 16,
	MaxConnsPerHost:     64,
	IdleConnTimeout:     90 * time.Second,
}

// sharedClient wraps sharedTransport; timeouts come from per-attempt
// contexts, never from the client itself.
var sharedClient = &http.Client{Transport: sharedTransport}

func (c *Cluster) chunkURL(peer, id string) string {
	return c.peers[peer] + "/v1/internal/chunks/" + id
}

// outcomeOf classifies an RPC error for the per-peer outcome counter.
func outcomeOf(ctx context.Context, err error) string {
	if err == nil {
		return "ok"
	}
	if ctx.Err() == context.DeadlineExceeded {
		return "timeout"
	}
	return "error"
}

// shipShard PUTs a shard to a peer, retrying with capped backoff.
// Shards can be large, so each attempt gets a generous multiple of the
// fetch timeout.
func (c *Cluster) shipShard(ctx context.Context, peer, id string, shard []byte) error {
	timeout := 5 * c.timeout
	if timeout < 10*time.Second {
		timeout = 10 * time.Second
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if c.hooks.OnRetry != nil {
				c.hooks.OnRetry(peer)
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
		}
		actx, cancel := context.WithTimeout(ctx, timeout)
		err := c.putOnce(actx, peer, id, shard)
		c.onPeerRequest(peer, outcomeOf(actx, err))
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

func (c *Cluster) putOnce(ctx context.Context, peer, id string, shard []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.chunkURL(peer, id), bytes.NewReader(shard))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return httpError(resp)
	}
	return nil
}

// deleteShard removes a shard from a peer; 404 counts as success.
func (c *Cluster) deleteShard(ctx context.Context, peer, id string) error {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodDelete, c.chunkURL(peer, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	c.onPeerRequest(peer, outcomeOf(actx, err))
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return httpError(resp)
	}
	return nil
}

// fetchChunks GETs the listed chunks' region intersections from a peer
// and delivers each frame to the sink as it arrives. Returns an error
// if the stream dies or if any requested chunk is missing from the
// response (short stream — peer could not serve it).
func (c *Cluster) fetchChunks(ctx context.Context, peer, id string, hs []chunkHit, sink *chunkSink) (err error) {
	defer func() { c.onPeerRequest(peer, outcomeOf(ctx, err)) }()

	want := make(map[int]chunkHit, len(hs))
	var list strings.Builder
	// The region box sent to the peer is the bounding box of the
	// requested intersections; the peer re-intersects per chunk, so any
	// box covering them is equivalent.
	var bo, bhi [3]int
	for i, h := range hs {
		want[h.index] = h
		if i > 0 {
			list.WriteByte(',')
		}
		list.WriteString(strconv.Itoa(h.index))
		for a := 0; a < 3; a++ {
			if i == 0 || h.origin[a] < bo[a] {
				bo[a] = h.origin[a]
			}
			if hi := h.origin[a] + h.dims[a]; i == 0 || hi > bhi[a] {
				bhi[a] = hi
			}
		}
	}
	u := fmt.Sprintf("%s?region=%d,%d,%d,%d,%d,%d&chunks=%s", c.chunkURL(peer, id),
		bo[0], bo[1], bo[2], bhi[0]-bo[0], bhi[1]-bo[1], bhi[2]-bo[2], list.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	served := 0
	var hdr [chunkFrameHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("cluster: peer %s stream: %w", peer, err)
		}
		ci := int(binary.LittleEndian.Uint32(hdr[0:4]))
		n := int(binary.LittleEndian.Uint32(hdr[4:8]))
		h, ok := want[ci]
		if !ok {
			return fmt.Errorf("cluster: peer %s sent unrequested chunk %d", peer, ci)
		}
		if wantN := h.dims[0] * h.dims[1] * h.dims[2]; n != wantN {
			return fmt.Errorf("cluster: peer %s chunk %d: %d samples, want %d", peer, ci, n, wantN)
		}
		samples := make([]float64, n)
		if err := readSamples(br, samples); err != nil {
			return fmt.Errorf("cluster: peer %s chunk %d: %w", peer, ci, err)
		}
		sink.deliver(ChunkPiece{Index: ci, Origin: h.origin, Dims: h.dims, Samples: samples})
		served++
	}
	if served < len(hs) {
		return fmt.Errorf("cluster: peer %s served %d of %d chunks", peer, served, len(hs))
	}
	return nil
}

// readSamples fills dst with little-endian float64 bits from r. The
// bit-for-bit round trip is what keeps a gathered region identical to a
// local decode.
func readSamples(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// fetchRepair POSTs a repair request to a peer and returns the shard
// container it answers with: a valid shard of volume id holding the
// intersection of the requested chunks with what the peer has intact.
// The caller merges that shard into its own store frame-by-frame, so a
// partial answer still heals every chunk it does carry.
func (c *Cluster) fetchRepair(ctx context.Context, peer, id string, chunks []int) ([]byte, error) {
	var list strings.Builder
	for i, ci := range chunks {
		if i > 0 {
			list.WriteByte(',')
		}
		list.WriteString(strconv.Itoa(ci))
	}
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	u := c.peers[peer] + "/v1/internal/repair/" + id + "?chunks=" + list.String()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	c.onPeerRequest(peer, outcomeOf(actx, err))
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return io.ReadAll(resp.Body)
}

// ManifestEntry is one volume in a peer's manifest listing.
type ManifestEntry struct {
	ID        string `json:"id"`
	NumChunks int    `json:"num_chunks"`
}

// fetchManifest lists the volumes a peer knows about. A rejoining or
// replacement node discovers what it should own by unioning its peers'
// manifests, then repairs itself chunk by chunk.
func (c *Cluster) fetchManifest(ctx context.Context, peer string) ([]ManifestEntry, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.peers[peer]+"/v1/internal/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	c.onPeerRequest(peer, outcomeOf(actx, err))
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var out []ManifestEntry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: peer %s manifest: %w", peer, err)
	}
	return out, nil
}

// httpError summarizes a non-success peer response, keeping the first
// line of the body.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	msg := strings.TrimSpace(string(b))
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return fmt.Errorf("cluster: peer answered %d: %s", resp.StatusCode, msg)
}

// drainClose discards the remainder of a response body so the
// connection can be reused, then closes it.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
