package cluster

// HTTP peer protocol client. The protocol is three verbs under
// /v1/internal/chunks/{id}:
//
//	PUT    body = shard container        -> 200/201
//	DELETE                               -> 204 (404 = already gone)
//	GET    ?region=x,y,z,nx,ny,nz&chunks=i,j,...
//	       -> stream of frames, one per servable chunk:
//	          u32 LE chunk index | u32 LE sample count | samples f64 LE
//
// The GET response is streamed frame-by-frame so the coordinator can
// hand each chunk to the assembler the moment it arrives; a peer that
// cannot serve a requested chunk simply omits its frame (the
// coordinator retries, then fills). Samples are raw float64 bits, so a
// gathered region is bit-identical to a local decode.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// chunkFrameHeaderSize is the per-frame prefix: u32 index + u32 count.
const chunkFrameHeaderSize = 8

func (c *Cluster) chunkURL(peer, id string) string {
	return c.peers[peer] + "/v1/internal/chunks/" + id
}

// outcomeOf classifies an RPC error for the per-peer outcome counter.
func outcomeOf(ctx context.Context, err error) string {
	if err == nil {
		return "ok"
	}
	if ctx.Err() == context.DeadlineExceeded {
		return "timeout"
	}
	return "error"
}

// shipShard PUTs a shard to a peer, retrying with capped backoff.
// Shards can be large, so each attempt gets a generous multiple of the
// fetch timeout.
func (c *Cluster) shipShard(ctx context.Context, peer, id string, shard []byte) error {
	timeout := 5 * c.timeout
	if timeout < 10*time.Second {
		timeout = 10 * time.Second
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if c.hooks.OnRetry != nil {
				c.hooks.OnRetry(peer)
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
		}
		actx, cancel := context.WithTimeout(ctx, timeout)
		err := c.putOnce(actx, peer, id, shard)
		c.onPeerRequest(peer, outcomeOf(actx, err))
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return lastErr
}

func (c *Cluster) putOnce(ctx context.Context, peer, id string, shard []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.chunkURL(peer, id), bytes.NewReader(shard))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return httpError(resp)
	}
	return nil
}

// deleteShard removes a shard from a peer; 404 counts as success.
func (c *Cluster) deleteShard(ctx context.Context, peer, id string) error {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodDelete, c.chunkURL(peer, id), nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	c.onPeerRequest(peer, outcomeOf(actx, err))
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return httpError(resp)
	}
	return nil
}

// fetchChunks GETs the listed chunks' region intersections from a peer
// and delivers each frame to the sink as it arrives. Returns an error
// if the stream dies or if any requested chunk is missing from the
// response (short stream — peer could not serve it).
func (c *Cluster) fetchChunks(ctx context.Context, peer, id string, hs []chunkHit, sink *chunkSink) (err error) {
	defer func() { c.onPeerRequest(peer, outcomeOf(ctx, err)) }()

	want := make(map[int]chunkHit, len(hs))
	var list strings.Builder
	// The region box sent to the peer is the bounding box of the
	// requested intersections; the peer re-intersects per chunk, so any
	// box covering them is equivalent.
	var bo, bhi [3]int
	for i, h := range hs {
		want[h.index] = h
		if i > 0 {
			list.WriteByte(',')
		}
		list.WriteString(strconv.Itoa(h.index))
		for a := 0; a < 3; a++ {
			if i == 0 || h.origin[a] < bo[a] {
				bo[a] = h.origin[a]
			}
			if hi := h.origin[a] + h.dims[a]; i == 0 || hi > bhi[a] {
				bhi[a] = hi
			}
		}
	}
	u := fmt.Sprintf("%s?region=%d,%d,%d,%d,%d,%d&chunks=%s", c.chunkURL(peer, id),
		bo[0], bo[1], bo[2], bhi[0]-bo[0], bhi[1]-bo[1], bhi[2]-bo[2], list.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	served := 0
	var hdr [chunkFrameHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("cluster: peer %s stream: %w", peer, err)
		}
		ci := int(binary.LittleEndian.Uint32(hdr[0:4]))
		n := int(binary.LittleEndian.Uint32(hdr[4:8]))
		h, ok := want[ci]
		if !ok {
			return fmt.Errorf("cluster: peer %s sent unrequested chunk %d", peer, ci)
		}
		if wantN := h.dims[0] * h.dims[1] * h.dims[2]; n != wantN {
			return fmt.Errorf("cluster: peer %s chunk %d: %d samples, want %d", peer, ci, n, wantN)
		}
		samples := make([]float64, n)
		if err := readSamples(br, samples); err != nil {
			return fmt.Errorf("cluster: peer %s chunk %d: %w", peer, ci, err)
		}
		sink.deliver(ChunkPiece{Index: ci, Origin: h.origin, Dims: h.dims, Samples: samples})
		served++
	}
	if served < len(hs) {
		return fmt.Errorf("cluster: peer %s served %d of %d chunks", peer, served, len(hs))
	}
	return nil
}

// readSamples fills dst with little-endian float64 bits from r. The
// bit-for-bit round trip is what keeps a gathered region identical to a
// local decode.
func readSamples(r io.Reader, dst []float64) error {
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// httpError summarizes a non-success peer response, keeping the first
// line of the body.
func httpError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	msg := strings.TrimSpace(string(b))
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return fmt.Errorf("cluster: peer answered %d: %s", resp.StatusCode, msg)
}

// drainClose discards the remainder of a response body so the
// connection can be reused, then closes it.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
