package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sperr"
	"sperr/internal/store"
)

// Hooks observes cluster events for wiring into a metrics registry.
// Every field may be nil; callbacks run on request goroutines.
type Hooks struct {
	// OnPeerRequest fires once per peer RPC attempt with the peer id and
	// an outcome of "ok", "error", "timeout" or "open" (refused by the
	// peer's circuit breaker without an attempt).
	OnPeerRequest func(peer, outcome string)
	// OnRetry fires when a failed peer fetch is retried.
	OnRetry func(peer string)
	// OnHedge fires when a slow peer fetch gets a hedged duplicate.
	OnHedge func(peer string)
	// OnFilled fires after a degraded region read with the number of
	// chunks that had to be filled.
	OnFilled func(chunks int)
	// OnFailover fires when chunks are served by a replica other than
	// their primary owner (the read survived a peer, but not unscathed).
	OnFailover func(chunks int)
	// OnBreakerOpen fires when a peer's circuit breaker opens after
	// consecutive failures.
	OnBreakerOpen func(peer string)
	// OnScrubRun fires once per anti-entropy scrub pass.
	OnScrubRun func()
	// OnScrubDamaged fires per scrub pass with the number of owned chunks
	// found missing or damaged locally.
	OnScrubDamaged func(chunks int)
	// OnScrubRepaired fires per scrub pass with the number of chunks
	// re-fetched intact from replicas.
	OnScrubRepaired func(chunks int)
}

// Config describes one node's view of the cluster. Every node runs with
// the same roster; Self selects which entry is this process.
type Config struct {
	// Self is this node's peer id. Must be a key of Peers.
	Self string
	// Peers maps peer id to base URL (scheme://host:port), including
	// this node's own entry. The roster is static per process.
	Peers map[string]string
	// VirtualNodes per peer on the ring (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Timeout bounds one peer fetch attempt (0 = 2s).
	Timeout time.Duration
	// HedgeAfter launches a duplicate fetch if the primary has not
	// completed in this long (0 = 250ms; negative disables hedging).
	HedgeAfter time.Duration
	// Retries is how many additional attempts a failed peer fetch gets
	// (0 = 1; negative disables retries).
	Retries int
	// Replicas is how many distinct peers own each chunk (0 =
	// DefaultReplicas; clamped to the roster size). With Replicas > 1 a
	// single peer death costs no data: reads fail over to the next
	// replica in ring order and stay bit-identical and non-degraded.
	Replicas int
	// Client is the HTTP client for peer RPCs (nil = a client over the
	// shared pooled transport; timeouts come from contexts, not the
	// client).
	Client *http.Client
	// Hooks observes peer traffic (metrics).
	Hooks Hooks
}

// DefaultReplicas is the replica count used when Config.Replicas is 0:
// two copies of every chunk, so any single disk or node loss is
// survivable without degradation.
const DefaultReplicas = 2

// Cluster coordinates a sharded volume namespace: it slices ingested
// containers across the peer roster by consistent hashing, and gathers
// region reads back chunk-by-chunk, degrading to a fill value when a
// peer cannot answer. All methods are safe for concurrent use.
type Cluster struct {
	self       string
	peers      map[string]string // id -> base URL, no trailing slash
	order      []string          // sorted peer ids
	ring       *Ring
	st         *store.Store
	client     *http.Client
	timeout    time.Duration
	hedgeAfter time.Duration
	retries    int
	replicas   int
	hooks      Hooks

	brMu     sync.Mutex
	breakers map[string]*breaker
}

// New validates the roster and builds the ring. The store holds this
// node's shards; it must outlive the cluster.
func New(cfg Config, st *store.Store) (*Cluster, error) {
	if st == nil {
		return nil, fmt.Errorf("cluster: requires a volume store")
	}
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("cluster: roster needs at least 2 peers (got %d)", len(cfg.Peers))
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self id %q not in peer roster", cfg.Self)
	}
	c := &Cluster{
		self:       cfg.Self,
		peers:      make(map[string]string, len(cfg.Peers)),
		st:         st,
		client:     cfg.Client,
		timeout:    cfg.Timeout,
		hedgeAfter: cfg.HedgeAfter,
		retries:    cfg.Retries,
		replicas:   cfg.Replicas,
		hooks:      cfg.Hooks,
		breakers:   make(map[string]*breaker),
	}
	for id, u := range cfg.Peers {
		u = strings.TrimRight(u, "/")
		if id != cfg.Self && !strings.Contains(u, "://") {
			return nil, fmt.Errorf("cluster: peer %q URL %q has no scheme", id, u)
		}
		c.peers[id] = u
		c.order = append(c.order, id)
	}
	sort.Strings(c.order)
	ring, err := NewRing(c.order, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c.ring = ring
	if c.client == nil {
		c.client = sharedClient
	}
	if c.timeout <= 0 {
		c.timeout = 2 * time.Second
	}
	if c.hedgeAfter == 0 {
		c.hedgeAfter = 250 * time.Millisecond
	}
	if c.retries == 0 {
		c.retries = 1
	}
	if c.retries < 0 {
		c.retries = 0
	}
	if c.replicas == 0 {
		c.replicas = DefaultReplicas
	}
	if c.replicas < 0 {
		c.replicas = 1
	}
	if c.replicas > len(c.order) {
		c.replicas = len(c.order)
	}
	return c, nil
}

// Self returns this node's peer id.
func (c *Cluster) Self() string { return c.self }

// Ring exposes the placement ring (scripts compute expected placement
// with it; it is immutable).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the peer primarily owning chunk ci of volume id.
func (c *Cluster) Owner(id string, ci int) string {
	return c.ring.Owner(ChunkKey(id, ci))
}

// Owners returns the ordered replica set for chunk ci of volume id: the
// primary owner first, then the failover order reads follow.
func (c *Cluster) Owners(id string, ci int) []string {
	return c.ring.Owners(ChunkKey(id, ci), c.replicas)
}

// Replicas returns the effective per-chunk replica count.
func (c *Cluster) Replicas() int { return c.replicas }

func (c *Cluster) onPeerRequest(peer, outcome string) {
	if c.hooks.OnPeerRequest != nil {
		c.hooks.OnPeerRequest(peer, outcome)
	}
}

// Ingest shards a complete container across the roster: verify and
// address it once, slice one shard per peer along frame boundaries with
// each chunk's frames going to all of its replica owners, and ship each
// shard (the local one through the store, remote ones over the peer
// protocol, with retries). Every peer receives a shard even if it owns
// no chunks — the footer gives every node the volume's full geometry,
// so any node can coordinate reads. Ingest is all-or-nothing in its
// error report but idempotent in effect: shards are byte-stable for a
// given roster and the store merges re-ingested shards frame-by-frame,
// so retrying a partially failed ingest converges.
func (c *Cluster) Ingest(ctx context.Context, container []byte) (*store.Meta, bool, error) {
	id, info, err := store.AddressOf(container)
	if err != nil {
		return nil, false, err
	}
	if info.Version < 2 {
		// Unshardable input is the client's to fix (422), like any other
		// container the store cannot vouch for.
		return nil, false, fmt.Errorf("%w: cannot shard a v%d container (no index footer); repack with a current encoder", store.ErrCorrupt, info.Version)
	}
	placement := c.ring.PlacementReplicas(id, info.NumChunks, c.replicas)

	var (
		meta    *store.Meta
		created bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		errs    []error
	)
	for _, peer := range c.order {
		owned := make(map[int]bool, len(placement[peer]))
		for _, ci := range placement[peer] {
			owned[ci] = true
		}
		shard, err := sperr.SliceShard(container, func(ci int) bool { return owned[ci] })
		if err != nil {
			return nil, false, err
		}
		if peer == c.self {
			meta, created, err = c.st.PutShard(id, shard)
			if err != nil {
				return nil, false, err
			}
			continue
		}
		wg.Add(1)
		go func(peer string, shard []byte) {
			defer wg.Done()
			if err := c.shipShard(ctx, peer, id, shard); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("peer %s: %w", peer, err))
				mu.Unlock()
			}
		}(peer, shard)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, false, fmt.Errorf("cluster: ingest of %s incomplete: %w", id[:12], errors.Join(errs...))
	}
	return meta, created, nil
}

// Delete removes the volume's shard from every peer, local store
// included. A peer that has never seen the volume answers 404, which
// counts as success (delete is idempotent). Remote failures are
// aggregated but do not stop the local delete.
func (c *Cluster) Delete(ctx context.Context, id string) error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for _, peer := range c.order {
		if peer == c.self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			if err := c.deleteShard(ctx, peer, id); err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("peer %s: %w", peer, err))
				mu.Unlock()
			}
		}(peer)
	}
	err := c.st.Delete(id)
	wg.Wait()
	if err != nil {
		return err
	}
	if len(errs) > 0 {
		return fmt.Errorf("cluster: delete of %s incomplete: %w", shortID(id), errors.Join(errs...))
	}
	return nil
}

// ChunkPiece is one chunk's contribution to a region read: the
// intersection of the chunk's box with the requested region, in volume
// coordinates, samples x-fastest. Filled marks a chunk whose owner
// could not answer — Samples then carry the fill value.
type ChunkPiece struct {
	Index   int
	Origin  [3]int
	Dims    [3]int
	Samples []float64
	Filled  bool
}

// RegionReport summarizes a scatter-gather read.
type RegionReport struct {
	// Chunks is the number of chunks intersecting the region; Remote how
	// many were primarily owned by other peers.
	Chunks int
	Remote int
	// Skipped lists the chunk indices that degraded to fill, sorted.
	Skipped []int
	// FailedOver is how many chunks were served by a replica other than
	// their primary owner. A non-zero count with an empty Skipped list is
	// the replicated cluster absorbing a fault: the read stayed
	// bit-identical and non-degraded.
	FailedOver int
	// Unreachable lists the peers that failed every fetch directed at
	// them during this read, sorted. Empty for a clean read; named in the
	// degraded trailer so operators can see which node to look at.
	Unreachable []string
}

// RegionOptions tunes a scatter-gather read.
type RegionOptions struct {
	// Workers bounds concurrent local chunk decodes (<=0: 1).
	Workers int
	// Fill is the value written for chunks whose owner could not answer
	// (the salvage fill policy; NaN marks loss unambiguously).
	Fill float64
}

// Region performs a scatter-gather read: intersect the request box with
// the volume's chunk geometry (known locally — every shard carries the
// full footer), fan out to owning peers, and emit each chunk's
// intersection as it arrives. emit may be called concurrently; each
// intersecting chunk is emitted exactly once. Peer failure fails the
// affected chunks over to the next replica in ring order; only after
// every replica has been exhausted (across retries and hedging) does a
// chunk degrade to the fill value — with Replicas > 1 a single dead
// peer therefore costs nothing but latency, and the gathered bytes stay
// identical to a single-node decode. The read itself only fails for a
// local reason (unknown volume, bad box, canceled context, or an emit
// error).
func (c *Cluster) Region(ctx context.Context, id string, origin, dims [3]int, opts RegionOptions, emit func(ChunkPiece) error) (*RegionReport, error) {
	meta, ok := c.st.Describe(id)
	if !ok {
		return nil, store.ErrNotFound
	}
	if err := validBox(origin, dims, meta.Dims); err != nil {
		return nil, err
	}

	var hits []chunkHit
	for i, cg := range meta.Chunks {
		if o, d, ok := Intersect(origin, dims, cg.Origin, cg.Dims); ok {
			hits = append(hits, chunkHit{index: i, origin: o, dims: d})
		}
	}
	rep := &RegionReport{Chunks: len(hits)}
	if len(hits) == 0 {
		return rep, nil
	}

	owners := make([][]string, len(hits))
	for i, h := range hits {
		owners[i] = c.Owners(id, h.index)
		if owners[i][0] != c.self {
			rep.Remote++
		}
	}

	sink := newChunkSink(emit)
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	sem := make(chan struct{}, workers)

	// Peers whose every fetch failed, minus those that later answered.
	var (
		peerMu    sync.Mutex
		failedPrs = make(map[string]bool)
		okPrs     = make(map[string]bool)
	)
	markPeer := func(peer string, ok bool) {
		peerMu.Lock()
		if ok {
			okPrs[peer] = true
		} else {
			failedPrs[peer] = true
		}
		peerMu.Unlock()
	}

	// The failover sweep: rank 0 asks each missing chunk's primary owner,
	// rank r its r-th replica, grouping chunks by peer so one RPC carries
	// a peer's whole batch. Each full sweep is one attempt; failed chunks
	// get retried sweeps with capped backoff before degrading to fill.
	backoff := 50 * time.Millisecond
	const backoffCap = 500 * time.Millisecond
sweep:
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				break sweep
			}
			if backoff *= 2; backoff > backoffCap {
				backoff = backoffCap
			}
		}
		for rank := 0; rank < c.replicas; rank++ {
			groups := make(map[string][]chunkHit)
			for i, h := range hits {
				if sink.has(h.index) {
					continue
				}
				if rank < len(owners[i]) {
					groups[owners[i][rank]] = append(groups[owners[i][rank]], h)
				}
			}
			if len(groups) == 0 {
				break sweep
			}
			var wg sync.WaitGroup
			for peer, hs := range groups {
				wg.Add(1)
				if peer == c.self {
					go func(hs []chunkHit) {
						defer wg.Done()
						c.decodeLocal(ctx, id, hs, sem, sink)
					}(hs)
					continue
				}
				go func(peer string, hs []chunkHit) {
					defer wg.Done()
					if attempt > 0 && c.hooks.OnRetry != nil {
						c.hooks.OnRetry(peer)
					}
					markPeer(peer, c.fetchGuarded(ctx, peer, id, hs, sink))
				}(peer, hs)
			}
			wg.Wait()
			if rank > 0 {
				// Anything a non-primary rank delivered is a failover save.
				for _, hs := range groups {
					for _, h := range hs {
						if sink.has(h.index) {
							rep.FailedOver++
						}
					}
				}
			}
			if ctx.Err() != nil {
				break sweep
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sink.emitErr(); err != nil {
		return nil, err
	}

	for peer := range failedPrs {
		if !okPrs[peer] {
			rep.Unreachable = append(rep.Unreachable, peer)
		}
	}
	sort.Strings(rep.Unreachable)
	if rep.FailedOver > 0 && c.hooks.OnFailover != nil {
		c.hooks.OnFailover(rep.FailedOver)
	}

	// Whatever is still missing degrades to the fill value — the cluster
	// analogue of the salvage fill policy.
	for _, h := range hits {
		if sink.has(h.index) {
			continue
		}
		rep.Skipped = append(rep.Skipped, h.index)
		n := h.dims[0] * h.dims[1] * h.dims[2]
		buf := make([]float64, n)
		if opts.Fill != 0 || math.IsNaN(opts.Fill) {
			for i := range buf {
				buf[i] = opts.Fill
			}
		}
		sink.deliver(ChunkPiece{Index: h.index, Origin: h.origin, Dims: h.dims, Samples: buf, Filled: true})
	}
	sort.Ints(rep.Skipped)
	if len(rep.Skipped) > 0 && c.hooks.OnFilled != nil {
		c.hooks.OnFilled(len(rep.Skipped))
	}
	if err := sink.emitErr(); err != nil {
		return nil, err
	}
	return rep, nil
}

// decodeLocal serves chunk hits from this node's own shard, bounded by
// the worker semaphore. A chunk whose local frame is damaged or stubbed
// simply stays undelivered — the failover sweep asks its next replica.
func (c *Cluster) decodeLocal(ctx context.Context, id string, hs []chunkHit, sem chan struct{}, sink *chunkSink) {
	var wg sync.WaitGroup
	for _, h := range hs {
		wg.Add(1)
		go func(h chunkHit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			data, _, err := c.st.Region(ctx, id, h.origin, h.dims, 1)
			if err != nil {
				return
			}
			sink.deliver(ChunkPiece{Index: h.index, Origin: h.origin, Dims: h.dims, Samples: data})
		}(h)
	}
	wg.Wait()
}

// fetchGuarded runs one hedged fetch attempt against a peer behind its
// circuit breaker: an open breaker refuses immediately (outcome "open")
// so the sweep short-circuits to the chunk's next replica instead of
// burning a timeout on a peer that is almost certainly still down.
func (c *Cluster) fetchGuarded(ctx context.Context, peer, id string, hs []chunkHit, sink *chunkSink) bool {
	br := c.breakerFor(peer)
	if !br.allow(time.Now()) {
		c.onPeerRequest(peer, "open")
		return false
	}
	if c.fetchHedged(ctx, peer, id, hs, sink) {
		br.success()
		return true
	}
	if br.failure(time.Now()) && c.hooks.OnBreakerOpen != nil {
		c.hooks.OnBreakerOpen(peer)
	}
	return false
}

// fetchHedged runs one (possibly duplicated) fetch attempt against a
// peer. If the primary has not completed within hedgeAfter, an
// identical request is launched alongside it; the sink deduplicates
// deliveries, so whichever connection produces a chunk first wins.
// Reports whether every requested chunk was delivered.
func (c *Cluster) fetchHedged(ctx context.Context, peer, id string, hs []chunkHit, sink *chunkSink) bool {
	cctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	results := make(chan error, 2)
	launch := func() {
		go func() { results <- c.fetchChunks(cctx, peer, id, hs, sink) }()
	}
	launch()
	inflight := 1
	var hedgeC <-chan time.Time
	if c.hedgeAfter > 0 {
		t := time.NewTimer(c.hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	for {
		select {
		case err := <-results:
			inflight--
			if err == nil {
				return true
			}
			if inflight == 0 {
				return false
			}
		case <-hedgeC:
			hedgeC = nil
			if c.hooks.OnHedge != nil {
				c.hooks.OnHedge(peer)
			}
			launch()
			inflight++
		case <-cctx.Done():
			return false
		}
	}
}

// chunkHit is one chunk's intersection with the requested region.
type chunkHit struct {
	index        int
	origin, dims [3]int
}

// chunkSink deduplicates chunk deliveries across hedged and retried
// fetches: each chunk index is emitted exactly once, whichever source
// lands first.
type chunkSink struct {
	mu   sync.Mutex
	got  map[int]bool
	emit func(ChunkPiece) error
	err  error
}

func newChunkSink(emit func(ChunkPiece) error) *chunkSink {
	return &chunkSink{got: make(map[int]bool), emit: emit}
}

// deliver emits the piece unless its chunk was already delivered. The
// emit callback runs outside the sink lock (it serializes internally).
func (s *chunkSink) deliver(p ChunkPiece) {
	s.mu.Lock()
	if s.got[p.Index] {
		s.mu.Unlock()
		return
	}
	s.got[p.Index] = true
	s.mu.Unlock()
	if err := s.emit(p); err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

func (s *chunkSink) has(ci int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.got[ci]
}

func (s *chunkSink) emitErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// validBox checks a region box against the volume extent.
func validBox(origin, dims, vol [3]int) error {
	for a := 0; a < 3; a++ {
		if dims[a] <= 0 || origin[a] < 0 || origin[a]+dims[a] > vol[a] {
			return fmt.Errorf("cluster: region %v+%v outside volume %v", origin, dims, vol)
		}
	}
	return nil
}

// Intersect returns the intersection of box (ro, rd) with box (co, cd)
// as (origin, dims) and whether it is non-empty. Peers use it to clip
// each requested chunk against the region box.
func Intersect(ro, rd, co [3]int, cd [3]int) (o, d [3]int, ok bool) {
	for a := 0; a < 3; a++ {
		lo := ro[a]
		if co[a] > lo {
			lo = co[a]
		}
		hi := ro[a] + rd[a]
		if c := co[a] + cd[a]; c < hi {
			hi = c
		}
		if hi <= lo {
			return o, d, false
		}
		o[a], d[a] = lo, hi-lo
	}
	return o, d, true
}

// shortID abbreviates a content address for error messages.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
