package cluster

// Per-peer circuit breaker. A peer that has failed several consecutive
// RPCs is overwhelmingly likely to fail the next one too — usually
// because its process is gone and every attempt burns the full
// per-attempt timeout before the coordinator moves on. The breaker
// converts that repeated timeout into an immediate refusal: after
// breakerThreshold consecutive failures the peer is "open" for a
// cooldown, and fetches short-circuit straight to the chunk's next
// replica instead of dialing a corpse. One probe is allowed through
// when the cooldown lapses (half-open); a success closes the breaker.

import (
	"sync"
	"time"
)

const (
	// breakerThreshold is how many consecutive failures open the breaker.
	breakerThreshold = 3
	// breakerCooldown is how long an open breaker refuses attempts before
	// letting one probe through.
	breakerCooldown = 2 * time.Second
)

// breaker tracks one peer's consecutive-failure state. The zero value is
// a closed (healthy) breaker.
type breaker struct {
	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

// allow reports whether an attempt against this peer may proceed now.
// While open, exactly one probe is admitted per cooldown lapse so a
// recovered peer closes the breaker without a thundering herd.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < breakerThreshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// success records a completed RPC, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed RPC and reports whether this failure opened
// (or re-armed) the breaker.
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.fails >= breakerThreshold {
		b.openUntil = now.Add(breakerCooldown)
		return b.fails == breakerThreshold
	}
	return false
}

// breakerFor returns (creating on first use) the breaker for a peer.
func (c *Cluster) breakerFor(peer string) *breaker {
	c.brMu.Lock()
	defer c.brMu.Unlock()
	b, ok := c.breakers[peer]
	if !ok {
		b = &breaker{}
		c.breakers[peer] = b
	}
	return b
}
