package cluster

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty roster accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty peer id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate peer id accepted")
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"node-a", "node-b", "node-c"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Owner(ChunkKey("vol", i))]++
	}
	want := keys / len(peers)
	for _, p := range peers {
		got := counts[p]
		if got < want/2 || got > want*2 {
			t.Fatalf("peer %s owns %d of %d keys (expected near %d): %v", p, got, keys, want, counts)
		}
	}
}

func TestRingStabilityOnPeerRemoval(t *testing.T) {
	// Removing one peer of three must only move keys that the removed
	// peer owned — that is the point of consistent hashing.
	full, err := NewRing([]string{"node-a", "node-b", "node-c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"node-a", "node-c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := ChunkKey("vol", i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "node-b" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed peer changed owner", moved)
	}
}

func TestRingDeterministicAcrossRosterOrder(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := ChunkKey("deadbeef", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s depending on roster order", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingCollisionTieBreak(t *testing.T) {
	// Force a hash collision by constructing a ring whose points collide:
	// we can't easily find colliding FNV inputs, so instead verify the
	// comparator directly — equal hashes order by rendezvous hash, and
	// that order is independent of peer slice order.
	ra := &Ring{peers: []string{"p1", "p2"}}
	rb := &Ring{peers: []string{"p2", "p1"}}
	const h = 0x1234_5678_9abc_def0
	lessA := fnv64(fmt.Sprintf("%s|%d", "p1", uint64(h))) < fnv64(fmt.Sprintf("%s|%d", "p2", uint64(h)))
	// The same comparison evaluated from rb's perspective must agree.
	lessB := fnv64(fmt.Sprintf("%s|%d", rb.peers[1], uint64(h))) < fnv64(fmt.Sprintf("%s|%d", rb.peers[0], uint64(h)))
	if lessA != lessB {
		t.Fatal("rendezvous tie-break depends on roster order")
	}
	_ = ra
}

func TestPlacementCoversAllChunks(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	pl := r.Placement("cafebabe", n)
	seen := make(map[int]bool)
	for p, chunks := range pl {
		for i, ci := range chunks {
			if seen[ci] {
				t.Fatalf("chunk %d placed twice", ci)
			}
			seen[ci] = true
			if i > 0 && chunks[i-1] >= ci {
				t.Fatalf("peer %s chunk list not sorted: %v", p, chunks)
			}
			if got := r.Owner(ChunkKey("cafebabe", ci)); got != p {
				t.Fatalf("placement says %s owns chunk %d, Owner says %s", p, ci, got)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("placement covers %d of %d chunks", len(seen), n)
	}
}
