package cluster

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty roster accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty peer id accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate peer id accepted")
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"node-a", "node-b", "node-c"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 3000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Owner(ChunkKey("vol", i))]++
	}
	want := keys / len(peers)
	for _, p := range peers {
		got := counts[p]
		if got < want/2 || got > want*2 {
			t.Fatalf("peer %s owns %d of %d keys (expected near %d): %v", p, got, keys, want, counts)
		}
	}
}

func TestRingStabilityOnPeerRemoval(t *testing.T) {
	// Removing one peer of three must only move keys that the removed
	// peer owned — that is the point of consistent hashing.
	full, err := NewRing([]string{"node-a", "node-b", "node-c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"node-a", "node-c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := ChunkKey("vol", i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "node-b" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed peer changed owner", moved)
	}
}

func TestRingDeterministicAcrossRosterOrder(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := ChunkKey("deadbeef", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s depending on roster order", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingCollisionTieBreak(t *testing.T) {
	// Force a hash collision by constructing a ring whose points collide:
	// we can't easily find colliding FNV inputs, so instead verify the
	// comparator directly — equal hashes order by rendezvous hash, and
	// that order is independent of peer slice order.
	ra := &Ring{peers: []string{"p1", "p2"}}
	rb := &Ring{peers: []string{"p2", "p1"}}
	const h = 0x1234_5678_9abc_def0
	lessA := fnv64(fmt.Sprintf("%s|%d", "p1", uint64(h))) < fnv64(fmt.Sprintf("%s|%d", "p2", uint64(h)))
	// The same comparison evaluated from rb's perspective must agree.
	lessB := fnv64(fmt.Sprintf("%s|%d", rb.peers[1], uint64(h))) < fnv64(fmt.Sprintf("%s|%d", rb.peers[0], uint64(h)))
	if lessA != lessB {
		t.Fatal("rendezvous tie-break depends on roster order")
	}
	_ = ra
}

// TestOwnersProperties is the replica-set property test: for every key,
// Owners(key, r) must be r distinct live peers (clamped to the roster),
// led by Owner(key), with a stable prefix order — Owners(key, r) is a
// prefix of Owners(key, r+1) — and under roster churn the set may only
// change where the churned peer was a member.
func TestOwnersProperties(t *testing.T) {
	rosters := [][]string{
		{"a"},
		{"node-a", "node-b"},
		{"node-a", "node-b", "node-c"},
		{"n1", "n2", "n3", "n4", "n5"},
	}
	for _, roster := range rosters {
		r, err := NewRing(roster, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			k := ChunkKey("feedface", i)
			for want := 1; want <= len(roster)+2; want++ {
				owners := r.Owners(k, want)
				eff := want
				if eff > len(roster) {
					eff = len(roster)
				}
				if len(owners) != eff {
					t.Fatalf("roster %v: Owners(%s,%d) has %d entries, want %d", roster, k, want, len(owners), eff)
				}
				if owners[0] != r.Owner(k) {
					t.Fatalf("Owners(%s,%d)[0] = %s, Owner = %s", k, want, owners[0], r.Owner(k))
				}
				seen := make(map[string]bool)
				for _, p := range owners {
					if seen[p] {
						t.Fatalf("Owners(%s,%d) repeats peer %s: %v", k, want, p, owners)
					}
					seen[p] = true
				}
				// Prefix stability: a larger replica request never reorders
				// the smaller one (failover order is well-defined).
				if want > 1 {
					prev := r.Owners(k, want-1)
					for j := range prev {
						if owners[j] != prev[j] {
							t.Fatalf("Owners(%s,%d) is not a prefix of Owners(%s,%d)", k, want-1, k, want)
						}
					}
				}
			}
		}
	}

	// Churn: removing a peer that is NOT in a key's replica set leaves
	// the set unchanged (consistent hashing extended to replica lists).
	full, err := NewRing([]string{"node-a", "node-b", "node-c", "node-d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	without := make(map[string]*Ring)
	for _, gone := range []string{"node-a", "node-b", "node-c", "node-d"} {
		var rest []string
		for _, p := range []string{"node-a", "node-b", "node-c", "node-d"} {
			if p != gone {
				rest = append(rest, p)
			}
		}
		without[gone], err = NewRing(rest, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		k := ChunkKey("cafed00d", i)
		set := full.Owners(k, 2)
		member := map[string]bool{set[0]: true, set[1]: true}
		for gone, reduced := range without {
			if member[gone] {
				continue
			}
			after := reduced.Owners(k, 2)
			if after[0] != set[0] || after[1] != set[1] {
				t.Fatalf("key %s: removing non-member %s changed replica set %v -> %v", k, gone, set, after)
			}
		}
	}
}

// TestRingConcurrentChurnHammer races in-flight placement lookups on
// live rings against continuous ring construction over churned rosters
// (the roster is immutable per Ring, so the only safety question is
// reads racing reads, and fresh rings racing their own construction).
// Run with -race; correctness check is that concurrent lookups agree
// with a sequential lookup on the same ring.
func TestRingConcurrentChurnHammer(t *testing.T) {
	base := []string{"node-a", "node-b", "node-c", "node-d", "node-e"}
	shared, err := NewRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]string, 200)
	for i := range want {
		want[i] = shared.Owners(ChunkKey("deadbeef", i), 3)
	}

	var churners, readers sync.WaitGroup
	stop := make(chan struct{})
	// Churners: continuously build rings over shifting rosters and do
	// lookups on them (a node rebuilding its view during a rolling
	// restart while serving).
	for g := 0; g < 4; g++ {
		churners.Add(1)
		go func(g int) {
			defer churners.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				roster := append([]string(nil), base[:2+(g+round)%4]...)
				r, err := NewRing(roster, 16)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 50; i++ {
					o := r.Owners(ChunkKey("deadbeef", i), 2)
					if len(o) == 0 || len(o) > 2 {
						t.Errorf("churned ring returned %v", o)
						return
					}
				}
			}
		}(g)
	}
	// Readers: hammer the shared ring and pin determinism against the
	// sequential answers.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for round := 0; round < 200; round++ {
				for i := range want {
					got := shared.Owners(ChunkKey("deadbeef", i), 3)
					for j := range want[i] {
						if got[j] != want[i][j] {
							t.Errorf("concurrent lookup diverged for key %d", i)
							return
						}
					}
				}
			}
		}()
	}
	// Readers finish on their own; then release the churners.
	readers.Wait()
	close(stop)
	churners.Wait()
}

func TestPlacementCoversAllChunks(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	pl := r.Placement("cafebabe", n)
	seen := make(map[int]bool)
	for p, chunks := range pl {
		for i, ci := range chunks {
			if seen[ci] {
				t.Fatalf("chunk %d placed twice", ci)
			}
			seen[ci] = true
			if i > 0 && chunks[i-1] >= ci {
				t.Fatalf("peer %s chunk list not sorted: %v", p, chunks)
			}
			if got := r.Owner(ChunkKey("cafebabe", ci)); got != p {
				t.Fatalf("placement says %s owns chunk %d, Owner says %s", p, ci, got)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("placement covers %d of %d chunks", len(seen), n)
	}
}
