package cluster

// Anti-entropy scrubber: the active half of the replication story.
// Replicated ingest puts two copies of every chunk on disk; the
// scrubber is what keeps that invariant true afterwards. Each pass
// walks the local manifest, derives the set of chunks this node ought
// to own from the placement ring (a pure function of roster + id, so no
// coordination is needed), audits the local shard bytes against it, and
// re-fetches anything missing or damaged from the surviving replicas
// over the repair protocol. Because the repair response is itself a
// valid shard container and the store merges shards frame-by-frame,
// healing is idempotent and crash-safe: a half-applied repair just
// converges further on the next pass.
//
// The same pass also makes a rejoining or replacement peer converge to
// full ownership: it unions its peers' manifests to discover volumes it
// has never seen, pulls each one's stub skeleton plus owned frames via
// repair, and then the regular audit loop fills in the rest. No
// operator action, no special "rebuild" mode — an empty store is merely
// the worst case of entropy.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sperr"
)

// DefaultScrubInterval is the pause between anti-entropy passes when the
// operator does not override it.
const DefaultScrubInterval = 30 * time.Second

// ScrubReport summarizes one anti-entropy pass.
type ScrubReport struct {
	// Volumes is the number of local shard volumes audited.
	Volumes int
	// Damaged is the number of owned chunks found missing or damaged
	// (before repair); Repaired how many were restored from replicas.
	Damaged  int
	Repaired int
	// Discovered is the number of volumes learned from peers' manifests
	// that this node had never seen (the rejoin path).
	Discovered int
	// Errors collects per-volume repair failures; the pass continues past
	// them (the next pass retries).
	Errors []error
}

// ScrubOnce runs one anti-entropy pass. Safe to run concurrently with
// reads and ingests — repairs flow through the store's merging PutShard
// under its per-id lock.
func (c *Cluster) ScrubOnce(ctx context.Context) *ScrubReport {
	rep := &ScrubReport{}
	if c.hooks.OnScrubRun != nil {
		c.hooks.OnScrubRun()
	}

	c.discoverVolumes(ctx, rep)

	for _, m := range c.st.List() {
		if m.Owned == nil {
			continue // complete volume, not cluster-placed
		}
		if ctx.Err() != nil {
			break
		}
		rep.Volumes++
		c.scrubVolume(ctx, m.ID, m.NumChunks, rep)
	}

	if rep.Damaged > 0 && c.hooks.OnScrubDamaged != nil {
		c.hooks.OnScrubDamaged(rep.Damaged)
	}
	if rep.Repaired > 0 && c.hooks.OnScrubRepaired != nil {
		c.hooks.OnScrubRepaired(rep.Repaired)
	}
	return rep
}

// discoverVolumes learns volumes from peers' manifests that this node
// has never seen and pulls their shard skeletons (stub frames plus any
// owned chunks the answering peer holds intact). After this, the normal
// audit loop treats them like any other under-replicated local shard.
func (c *Cluster) discoverVolumes(ctx context.Context, rep *ScrubReport) {
	known := make(map[string]bool)
	for _, m := range c.st.List() {
		known[m.ID] = true
	}
	for _, peer := range c.order {
		if peer == c.self || ctx.Err() != nil {
			continue
		}
		ents, err := c.fetchManifest(ctx, peer)
		if err != nil {
			continue // unreachable peer: the next pass asks again
		}
		for _, e := range ents {
			if known[e.ID] {
				continue
			}
			desired := c.desiredChunks(e.ID, e.NumChunks)
			shard, err := c.fetchRepair(ctx, peer, e.ID, desired)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Errorf("discover %s from %s: %w", shortID(e.ID), peer, err))
				continue
			}
			if _, _, err := c.st.PutShard(e.ID, shard); err != nil {
				rep.Errors = append(rep.Errors, fmt.Errorf("discover %s: %w", shortID(e.ID), err))
				continue
			}
			known[e.ID] = true
			rep.Discovered++
		}
	}
}

// desiredChunks lists the chunk indices of volume id this node should
// own under the current ring — membership in the chunk's replica set.
func (c *Cluster) desiredChunks(id string, numChunks int) []int {
	var out []int
	for ci := 0; ci < numChunks; ci++ {
		for _, p := range c.Owners(id, ci) {
			if p == c.self {
				out = append(out, ci)
				break
			}
		}
	}
	return out
}

// scrubVolume audits one local shard against its ring-derived owned set
// and heals the difference from replicas. The audit trusts only bytes:
// the blob is re-parsed and each owned frame's checksum re-verified
// (sperr.OwnedChunks), so manifest drift, bit rot, and truncation all
// surface as repairs rather than being believed.
func (c *Cluster) scrubVolume(ctx context.Context, id string, numChunks int, rep *ScrubReport) {
	desired := c.desiredChunks(id, numChunks)
	if len(desired) == 0 {
		return
	}
	intact := make(map[int]bool)
	if _, blob, err := c.st.Get(id); err == nil {
		if owned, err := sperr.OwnedChunks(blob); err == nil {
			for _, ci := range owned {
				intact[ci] = true
			}
		}
		// An unreadable or unparseable blob leaves intact empty: every
		// desired chunk is treated as lost and re-fetched.
	}
	need := make(map[int]bool)
	for _, ci := range desired {
		if !intact[ci] {
			need[ci] = true
		}
	}
	if len(need) == 0 {
		return
	}
	rep.Damaged += len(need)

	// Walk replica ranks: ask each missing chunk's best surviving replica
	// first, falling through to later ranks for whatever stays missing.
	for rank := 0; len(need) > 0 && rank < len(c.order); rank++ {
		groups := make(map[string][]int)
		for ci := range need {
			var others []string
			for _, p := range c.Owners(id, ci) {
				if p != c.self {
					others = append(others, p)
				}
			}
			if rank < len(others) {
				groups[others[rank]] = append(groups[others[rank]], ci)
			}
		}
		if len(groups) == 0 {
			break
		}
		for peer, cis := range groups {
			if ctx.Err() != nil {
				return
			}
			sort.Ints(cis)
			shard, err := c.fetchRepair(ctx, peer, id, cis)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Errorf("repair %s from %s: %w", shortID(id), peer, err))
				continue
			}
			meta, _, err := c.st.PutShard(id, shard)
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Errorf("repair %s: merge: %w", shortID(id), err))
				continue
			}
			for _, ci := range meta.Owned {
				if need[ci] {
					delete(need, ci)
					rep.Repaired++
				}
			}
		}
	}
}

// StartScrubber launches the background anti-entropy loop, running one
// pass every interval (0 or negative = DefaultScrubInterval). The
// returned stop function cancels the loop and waits for an in-flight
// pass to finish.
func (c *Cluster) StartScrubber(interval time.Duration, onPass func(*ScrubReport)) (stop func()) {
	if interval <= 0 {
		interval = DefaultScrubInterval
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r := c.ScrubOnce(ctx)
				if onPass != nil {
					onPass(r)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}
