package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"sperr"
	"sperr/internal/store"
)

func testField(dims [3]int, seed int64) []float64 {
	nx, ny, nz := dims[0], dims[1], dims[2]
	data := make([]float64, nx*ny*nz)
	rng := uint64(seed)*2862933555777941757 + 3037000493
	for i := range data {
		x, y, z := i%nx, (i/nx)%ny, i/(nx*ny)
		rng = rng*2862933555777941757 + 3037000493
		data[i] = math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y)) +
			0.3*math.Sin(0.1*float64(z)) + 0.05*float64(rng>>40)/(1<<24)
	}
	return data
}

func makeContainer(t testing.TB, dims, chunkDims [3]int, seed int64) []byte {
	t.Helper()
	stream, _, err := sperr.CompressPWE(testField(dims, seed), dims, 1e-3,
		&sperr.Options{ChunkDims: chunkDims})
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// fakePeer is a minimal peer-protocol server backed by a real store —
// the same wire contract the sperrd handlers speak, reimplemented here
// so the package tests do not depend on internal/server.
type fakePeer struct {
	st  *store.Store
	srv *httptest.Server
}

func newFakePeer(t testing.TB) *fakePeer {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{CacheSamples: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	p := &fakePeer{st: st}
	p.srv = httptest.NewServer(http.HandlerFunc(p.serve))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) serve(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/internal/manifest" {
		var out []ManifestEntry
		for _, m := range p.st.List() {
			out = append(out, ManifestEntry{ID: m.ID, NumChunks: m.NumChunks})
		}
		json.NewEncoder(w).Encode(out)
		return
	}
	if rid := strings.TrimPrefix(r.URL.Path, "/v1/internal/repair/"); rid != r.URL.Path {
		_, blob, err := p.st.Get(rid)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		want := make(map[int]bool)
		if raw := r.URL.Query().Get("chunks"); raw != "" {
			for _, f := range strings.Split(raw, ",") {
				ci, _ := strconv.Atoi(f)
				want[ci] = true
			}
		}
		intact, err := sperr.OwnedChunks(blob)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		keep := make(map[int]bool)
		for _, ci := range intact {
			if want[ci] {
				keep[ci] = true
			}
		}
		shard, err := sperr.SliceShard(blob, func(ci int) bool { return keep[ci] })
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Write(shard)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/internal/chunks/")
	switch r.Method {
	case http.MethodPut:
		body := make([]byte, 0, 1<<20)
		buf := make([]byte, 32<<10)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		if _, _, err := p.st.PutShard(id, body); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if err := p.st.Delete(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		meta, ok := p.st.Describe(id)
		if !ok {
			http.Error(w, "no such volume", http.StatusNotFound)
			return
		}
		var ro, rd [3]int
		fmt.Sscanf(r.URL.Query().Get("region"), "%d,%d,%d,%d,%d,%d",
			&ro[0], &ro[1], &ro[2], &rd[0], &rd[1], &rd[2])
		for _, f := range strings.Split(r.URL.Query().Get("chunks"), ",") {
			ci, err := strconv.Atoi(f)
			if err != nil || ci < 0 || ci >= len(meta.Chunks) {
				http.Error(w, "bad chunk index", http.StatusBadRequest)
				return
			}
			cg := meta.Chunks[ci]
			o, d, ok := Intersect(ro, rd, cg.Origin, cg.Dims)
			if !ok {
				continue
			}
			data, _, err := p.st.Region(r.Context(), id, o, d, 1)
			if err != nil {
				return // short stream: chunk not servable
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(ci))
			binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(data)))
			w.Write(hdr[:])
			raw := make([]byte, 8*len(data))
			for i, v := range data {
				binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
			}
			w.Write(raw)
		}
	default:
		http.Error(w, "method", http.StatusMethodNotAllowed)
	}
}

// testCluster builds an n-node roster of fake peers and returns one
// Cluster handle per node (default replica count).
func testCluster(t testing.TB, n int) ([]*Cluster, []*fakePeer) {
	return testClusterR(t, n, 0)
}

// testClusterR is testCluster with an explicit replica count.
func testClusterR(t testing.TB, n, replicas int) ([]*Cluster, []*fakePeer) {
	t.Helper()
	peers := make([]*fakePeer, n)
	roster := make(map[string]string, n)
	for i := range peers {
		peers[i] = newFakePeer(t)
		roster[fmt.Sprintf("node-%c", 'a'+i)] = peers[i].srv.URL
	}
	clusters := make([]*Cluster, n)
	for i := range clusters {
		c, err := New(Config{
			Self:       fmt.Sprintf("node-%c", 'a'+i),
			Peers:      roster,
			Timeout:    5 * time.Second,
			HedgeAfter: time.Second,
			Replicas:   replicas,
		}, peers[i].st)
		if err != nil {
			t.Fatal(err)
		}
		clusters[i] = c
	}
	return clusters, peers
}

// gather collects a cluster region read into a row-major buffer for
// comparison against the single-node decode.
func gather(t testing.TB, c *Cluster, id string, origin, dims [3]int, fill float64) ([]float64, *RegionReport) {
	t.Helper()
	out := make([]float64, dims[0]*dims[1]*dims[2])
	for i := range out {
		out[i] = math.Inf(1) // sentinel: every cell must be written exactly once
	}
	rep, err := c.Region(context.Background(), id, origin, dims,
		RegionOptions{Workers: 2, Fill: fill}, func(p ChunkPiece) error {
			for z := 0; z < p.Dims[2]; z++ {
				for y := 0; y < p.Dims[1]; y++ {
					for x := 0; x < p.Dims[0]; x++ {
						gx, gy, gz := p.Origin[0]+x-origin[0], p.Origin[1]+y-origin[1], p.Origin[2]+z-origin[2]
						oi := (gz*dims[1]+gy)*dims[0] + gx
						if !math.IsInf(out[oi], 1) {
							t.Errorf("cell %d written twice", oi)
						}
						out[oi] = p.Samples[(z*p.Dims[1]+y)*p.Dims[0]+x]
					}
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.IsInf(v, 1) {
			t.Fatalf("cell %d never written", i)
		}
	}
	return out, rep
}

// TestIngestRegionBitIdentical is the core contract: a 3-node
// scatter-gather read returns exactly the bytes of a single-node
// DecompressRegion, from any coordinator, on an odd-dimension volume
// whose regions straddle chunk boundaries.
func TestIngestRegionBitIdentical(t *testing.T) {
	dims := [3]int{21, 13, 7}
	container := makeContainer(t, dims, [3]int{8, 8, 4}, 5)
	clusters, _ := testCluster(t, 3)

	meta, created, err := clusters[0].Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first ingest reported created=false")
	}
	id := meta.ID

	// Re-ingest from another coordinator is idempotent.
	if _, created, err := clusters[1].Ingest(context.Background(), container); err != nil || created {
		t.Fatalf("re-ingest: created=%v err=%v", created, err)
	}

	regions := []struct{ o, d [3]int }{
		{[3]int{0, 0, 0}, dims},           // full volume
		{[3]int{5, 6, 2}, [3]int{9, 4, 4}}, // straddles x, y and z chunk boundaries
		{[3]int{7, 7, 3}, [3]int{1, 1, 1}}, // single sample at a corner
		{[3]int{16, 8, 4}, [3]int{5, 5, 3}}, // tail chunks (odd remainders)
	}
	for _, rg := range regions {
		want, err := sperr.DecompressRegionWorkers(container, rg.o, rg.d, 1)
		if err != nil {
			t.Fatal(err)
		}
		for ni, c := range clusters {
			got, rep := gather(t, c, id, rg.o, rg.d, math.NaN())
			if len(rep.Skipped) != 0 {
				t.Fatalf("node %d region %v: degraded %v with all peers up", ni, rg, rep.Skipped)
			}
			for k := range want {
				if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
					t.Fatalf("node %d region %v sample %d: cluster read differs from single-node", ni, rg, k)
				}
			}
		}
	}
}

func TestRegionDegradesWhenPeerDies(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{8, 8, 4}, 9)
	// Pinned to one replica: this is the pre-replication degradation
	// contract (fill value, never an error) that still holds when a chunk
	// has no surviving copy anywhere.
	clusters, peers := testClusterR(t, 3, 1)
	c := clusters[0]
	meta, _, err := c.Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}

	// Find a peer that owns at least one chunk and is not the
	// coordinator, then kill it.
	victim := -1
	for ni := 1; ni < 3; ni++ {
		idn := fmt.Sprintf("node-%c", 'a'+ni)
		for ci := 0; ci < meta.NumChunks; ci++ {
			if c.Owner(meta.ID, ci) == idn {
				victim = ni
			}
		}
	}
	if victim < 0 {
		t.Skip("placement put every chunk on the coordinator")
	}
	peers[victim].srv.Close()

	fill := math.NaN()
	got, rep := gather(t, c, meta.ID, [3]int{0, 0, 0}, dims, fill)
	if len(rep.Skipped) == 0 {
		t.Fatal("killed an owning peer but nothing degraded")
	}
	// Filled cells are NaN; cells from surviving chunks are bit-identical.
	want, err := sperr.DecompressRegionWorkers(container, [3]int{0, 0, 0}, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	skipped := make(map[int]bool)
	for _, ci := range rep.Skipped {
		skipped[ci] = true
	}
	for k := range want {
		x, y, z := k%dims[0], (k/dims[0])%dims[1], k/(dims[0]*dims[1])
		ci := chunkIndexOf(meta, x, y, z)
		if skipped[ci] {
			if !math.IsNaN(got[k]) {
				t.Fatalf("sample %d in skipped chunk %d not filled", k, ci)
			}
		} else if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
			t.Fatalf("sample %d in live chunk %d differs", k, ci)
		}
	}
}

// chunkIndexOf locates the chunk containing voxel (x,y,z).
func chunkIndexOf(meta *store.Meta, x, y, z int) int {
	for i, cg := range meta.Chunks {
		if x >= cg.Origin[0] && x < cg.Origin[0]+cg.Dims[0] &&
			y >= cg.Origin[1] && y < cg.Origin[1]+cg.Dims[1] &&
			z >= cg.Origin[2] && z < cg.Origin[2]+cg.Dims[2] {
			return i
		}
	}
	return -1
}

func TestDeleteFansOut(t *testing.T) {
	container := makeContainer(t, [3]int{24, 17, 9}, [3]int{16, 16, 16}, 13)
	clusters, peers := testCluster(t, 3)
	meta, _, err := clusters[0].Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if _, ok := p.st.Describe(meta.ID); !ok {
			t.Fatalf("peer %d missing shard after ingest", i)
		}
	}
	if err := clusters[0].Delete(context.Background(), meta.ID); err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if _, ok := p.st.Describe(meta.ID); ok {
			t.Fatalf("peer %d still has shard after delete", i)
		}
	}
	// Idempotent from the remote side; local reports not found.
	if err := clusters[0].Delete(context.Background(), meta.ID); err == nil {
		t.Fatal("double delete did not report missing volume")
	}
}

// TestRegionFailoverSurvivesPeerDeath is the replication acceptance pin
// at the cluster layer: with two replicas per chunk, killing a peer that
// primarily owns chunks yields a read that is non-degraded and
// bit-identical to the single-node decode — failover, not fill.
func TestRegionFailoverSurvivesPeerDeath(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{8, 8, 4}, 11)
	clusters, peers := testClusterR(t, 3, 2)
	c := clusters[0]
	meta, _, err := c.Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}

	// Every chunk must live on exactly two peers after a replicated ingest.
	for ci := 0; ci < meta.NumChunks; ci++ {
		holders := 0
		for _, p := range peers {
			if m, ok := p.st.Describe(meta.ID); ok && m.OwnsChunk(ci) {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("chunk %d resident on %d peers, want 2", ci, holders)
		}
	}

	// Kill a non-coordinator peer that is the primary owner of at least
	// one chunk, so the read must actually fail over.
	victim := -1
	for ci := 0; ci < meta.NumChunks && victim < 0; ci++ {
		for ni := 1; ni < 3; ni++ {
			if c.Owner(meta.ID, ci) == fmt.Sprintf("node-%c", 'a'+ni) {
				victim = ni
				break
			}
		}
	}
	if victim < 0 {
		t.Skip("placement made the coordinator primary for every chunk")
	}
	peers[victim].srv.Close()

	want, err := sperr.DecompressRegionWorkers(container, [3]int{0, 0, 0}, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, rep := gather(t, c, meta.ID, [3]int{0, 0, 0}, dims, math.NaN())
	if len(rep.Skipped) != 0 {
		t.Fatalf("read degraded (skipped %v) with a surviving replica for every chunk", rep.Skipped)
	}
	if rep.FailedOver == 0 {
		t.Fatal("killed a primary owner but FailedOver = 0")
	}
	victimID := fmt.Sprintf("node-%c", 'a'+victim)
	found := false
	for _, p := range rep.Unreachable {
		if p == victimID {
			found = true
		}
	}
	if !found {
		t.Fatalf("Unreachable %v does not name the killed peer %s", rep.Unreachable, victimID)
	}
	for k := range want {
		if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
			t.Fatalf("sample %d differs from single-node decode after failover", k)
		}
	}
}

// corruptOwnedFrame flips bytes inside the payload region of a shard
// blob on disk (between the fixed header and the index footer), i.e.
// bit rot in an owned frame, and returns true if the file changed.
func corruptOwnedFrame(t *testing.T, st *store.Store, id string) {
	t.Helper()
	path := filepath.Join(st.Dir(), "volumes", id+".sperr")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Stay clear of the 36-byte header and the index footer at the tail;
	// the bulk of the middle is compressed frame payload.
	off := len(blob) / 2
	blob[off] ^= 0xff
	blob[off+1] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubHealsBitRot: corrupt an owned frame in one peer's shard blob
// on disk, run one anti-entropy pass on that peer, and the damaged
// chunk is re-fetched intact from its surviving replica — no client
// read involved.
func TestScrubHealsBitRot(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{8, 8, 4}, 17)
	clusters, peers := testClusterR(t, 3, 2)
	meta, _, err := clusters[0].Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a peer that owns at least one chunk.
	victim := -1
	for i, p := range peers {
		if m, ok := p.st.Describe(meta.ID); ok && len(m.Owned) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no peer owns any chunk")
	}
	desired := clusters[victim].desiredChunks(meta.ID, meta.NumChunks)

	corruptOwnedFrame(t, peers[victim].st, meta.ID)

	// The corruption is visible before the scrub...
	_, blob, err := peers[victim].st.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	preOwned, preErr := sperr.OwnedChunks(blob)
	if preErr == nil && len(preOwned) == len(desired) {
		t.Skip("corruption landed outside every owned frame")
	}

	rep := clusters[victim].ScrubOnce(context.Background())
	if rep.Damaged == 0 || rep.Repaired == 0 {
		t.Fatalf("scrub pass: damaged=%d repaired=%d errors=%v, want both > 0", rep.Damaged, rep.Repaired, rep.Errors)
	}

	// ...and gone after: the blob proves every ring-owned chunk intact.
	_, blob, err = peers[victim].st.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	owned, err := sperr.OwnedChunks(blob)
	if err != nil {
		t.Fatalf("healed blob unparseable: %v", err)
	}
	ownedSet := make(map[int]bool)
	for _, ci := range owned {
		ownedSet[ci] = true
	}
	for _, ci := range desired {
		if !ownedSet[ci] {
			t.Fatalf("chunk %d still missing after scrub", ci)
		}
	}
	// And the healed frames are byte-faithful: a full read from the
	// coordinator is bit-identical with no degradation.
	want, err := sperr.DecompressRegionWorkers(container, [3]int{0, 0, 0}, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, rrep := gather(t, clusters[0], meta.ID, [3]int{0, 0, 0}, dims, math.NaN())
	if len(rrep.Skipped) != 0 {
		t.Fatalf("post-heal read degraded: %v", rrep.Skipped)
	}
	for k := range want {
		if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
			t.Fatalf("sample %d differs after heal", k)
		}
	}
}

// TestScrubRejoinConverges: a peer that lost its entire local copy of a
// volume (replacement node, wiped disk) converges back to full
// ownership through manifest discovery plus repair — no ingest replay.
func TestScrubRejoinConverges(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{8, 8, 4}, 23)
	clusters, peers := testClusterR(t, 3, 2)
	meta, _, err := clusters[0].Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}

	// Wipe node-c's copy entirely.
	if err := peers[2].st.Delete(meta.ID); err != nil {
		t.Fatal(err)
	}

	rep := clusters[2].ScrubOnce(context.Background())
	if rep.Discovered != 1 {
		t.Fatalf("discovered %d volumes, want 1 (errors: %v)", rep.Discovered, rep.Errors)
	}
	m, ok := peers[2].st.Describe(meta.ID)
	if !ok {
		t.Fatal("volume still unknown after rejoin scrub")
	}
	desired := clusters[2].desiredChunks(meta.ID, meta.NumChunks)
	for _, ci := range desired {
		if !m.OwnsChunk(ci) {
			t.Fatalf("chunk %d not owned after rejoin scrub (owned %v, want %v)", ci, m.Owned, desired)
		}
	}
	// Idempotent: a second pass finds nothing to do.
	rep = clusters[2].ScrubOnce(context.Background())
	if rep.Discovered != 0 || rep.Damaged != 0 || rep.Repaired != 0 {
		t.Fatalf("second pass not clean: %+v", rep)
	}
}

func TestIngestRejectsV1(t *testing.T) {
	clusters, _ := testCluster(t, 2)
	v1, err := os.ReadFile("../../testdata/golden_pwe_24x17x9.sperr")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := clusters[0].Ingest(context.Background(), v1); err == nil {
		t.Fatal("v1 container accepted for sharding")
	}
}
