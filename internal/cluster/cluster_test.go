package cluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"sperr"
	"sperr/internal/store"
)

func testField(dims [3]int, seed int64) []float64 {
	nx, ny, nz := dims[0], dims[1], dims[2]
	data := make([]float64, nx*ny*nz)
	rng := uint64(seed)*2862933555777941757 + 3037000493
	for i := range data {
		x, y, z := i%nx, (i/nx)%ny, i/(nx*ny)
		rng = rng*2862933555777941757 + 3037000493
		data[i] = math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y)) +
			0.3*math.Sin(0.1*float64(z)) + 0.05*float64(rng>>40)/(1<<24)
	}
	return data
}

func makeContainer(t testing.TB, dims, chunkDims [3]int, seed int64) []byte {
	t.Helper()
	stream, _, err := sperr.CompressPWE(testField(dims, seed), dims, 1e-3,
		&sperr.Options{ChunkDims: chunkDims})
	if err != nil {
		t.Fatal(err)
	}
	return stream
}

// fakePeer is a minimal peer-protocol server backed by a real store —
// the same wire contract the sperrd handlers speak, reimplemented here
// so the package tests do not depend on internal/server.
type fakePeer struct {
	st  *store.Store
	srv *httptest.Server
}

func newFakePeer(t testing.TB) *fakePeer {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{CacheSamples: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	p := &fakePeer{st: st}
	p.srv = httptest.NewServer(http.HandlerFunc(p.serve))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fakePeer) serve(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/internal/chunks/")
	switch r.Method {
	case http.MethodPut:
		body := make([]byte, 0, 1<<20)
		buf := make([]byte, 32<<10)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		if _, _, err := p.st.PutShard(id, body); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if err := p.st.Delete(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		meta, ok := p.st.Describe(id)
		if !ok {
			http.Error(w, "no such volume", http.StatusNotFound)
			return
		}
		var ro, rd [3]int
		fmt.Sscanf(r.URL.Query().Get("region"), "%d,%d,%d,%d,%d,%d",
			&ro[0], &ro[1], &ro[2], &rd[0], &rd[1], &rd[2])
		for _, f := range strings.Split(r.URL.Query().Get("chunks"), ",") {
			ci, err := strconv.Atoi(f)
			if err != nil || ci < 0 || ci >= len(meta.Chunks) {
				http.Error(w, "bad chunk index", http.StatusBadRequest)
				return
			}
			cg := meta.Chunks[ci]
			o, d, ok := Intersect(ro, rd, cg.Origin, cg.Dims)
			if !ok {
				continue
			}
			data, _, err := p.st.Region(r.Context(), id, o, d, 1)
			if err != nil {
				return // short stream: chunk not servable
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(ci))
			binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(data)))
			w.Write(hdr[:])
			raw := make([]byte, 8*len(data))
			for i, v := range data {
				binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
			}
			w.Write(raw)
		}
	default:
		http.Error(w, "method", http.StatusMethodNotAllowed)
	}
}

// testCluster builds an n-node roster of fake peers and returns one
// Cluster handle per node.
func testCluster(t testing.TB, n int) ([]*Cluster, []*fakePeer) {
	t.Helper()
	peers := make([]*fakePeer, n)
	roster := make(map[string]string, n)
	for i := range peers {
		peers[i] = newFakePeer(t)
		roster[fmt.Sprintf("node-%c", 'a'+i)] = peers[i].srv.URL
	}
	clusters := make([]*Cluster, n)
	for i := range clusters {
		c, err := New(Config{
			Self:       fmt.Sprintf("node-%c", 'a'+i),
			Peers:      roster,
			Timeout:    5 * time.Second,
			HedgeAfter: time.Second,
		}, peers[i].st)
		if err != nil {
			t.Fatal(err)
		}
		clusters[i] = c
	}
	return clusters, peers
}

// gather collects a cluster region read into a row-major buffer for
// comparison against the single-node decode.
func gather(t testing.TB, c *Cluster, id string, origin, dims [3]int, fill float64) ([]float64, *RegionReport) {
	t.Helper()
	out := make([]float64, dims[0]*dims[1]*dims[2])
	for i := range out {
		out[i] = math.Inf(1) // sentinel: every cell must be written exactly once
	}
	rep, err := c.Region(context.Background(), id, origin, dims,
		RegionOptions{Workers: 2, Fill: fill}, func(p ChunkPiece) error {
			for z := 0; z < p.Dims[2]; z++ {
				for y := 0; y < p.Dims[1]; y++ {
					for x := 0; x < p.Dims[0]; x++ {
						gx, gy, gz := p.Origin[0]+x-origin[0], p.Origin[1]+y-origin[1], p.Origin[2]+z-origin[2]
						oi := (gz*dims[1]+gy)*dims[0] + gx
						if !math.IsInf(out[oi], 1) {
							t.Errorf("cell %d written twice", oi)
						}
						out[oi] = p.Samples[(z*p.Dims[1]+y)*p.Dims[0]+x]
					}
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.IsInf(v, 1) {
			t.Fatalf("cell %d never written", i)
		}
	}
	return out, rep
}

// TestIngestRegionBitIdentical is the core contract: a 3-node
// scatter-gather read returns exactly the bytes of a single-node
// DecompressRegion, from any coordinator, on an odd-dimension volume
// whose regions straddle chunk boundaries.
func TestIngestRegionBitIdentical(t *testing.T) {
	dims := [3]int{21, 13, 7}
	container := makeContainer(t, dims, [3]int{8, 8, 4}, 5)
	clusters, _ := testCluster(t, 3)

	meta, created, err := clusters[0].Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first ingest reported created=false")
	}
	id := meta.ID

	// Re-ingest from another coordinator is idempotent.
	if _, created, err := clusters[1].Ingest(context.Background(), container); err != nil || created {
		t.Fatalf("re-ingest: created=%v err=%v", created, err)
	}

	regions := []struct{ o, d [3]int }{
		{[3]int{0, 0, 0}, dims},           // full volume
		{[3]int{5, 6, 2}, [3]int{9, 4, 4}}, // straddles x, y and z chunk boundaries
		{[3]int{7, 7, 3}, [3]int{1, 1, 1}}, // single sample at a corner
		{[3]int{16, 8, 4}, [3]int{5, 5, 3}}, // tail chunks (odd remainders)
	}
	for _, rg := range regions {
		want, err := sperr.DecompressRegionWorkers(container, rg.o, rg.d, 1)
		if err != nil {
			t.Fatal(err)
		}
		for ni, c := range clusters {
			got, rep := gather(t, c, id, rg.o, rg.d, math.NaN())
			if len(rep.Skipped) != 0 {
				t.Fatalf("node %d region %v: degraded %v with all peers up", ni, rg, rep.Skipped)
			}
			for k := range want {
				if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
					t.Fatalf("node %d region %v sample %d: cluster read differs from single-node", ni, rg, k)
				}
			}
		}
	}
}

func TestRegionDegradesWhenPeerDies(t *testing.T) {
	dims := [3]int{24, 17, 9}
	container := makeContainer(t, dims, [3]int{16, 16, 16}, 9)
	clusters, peers := testCluster(t, 3)
	c := clusters[0]
	meta, _, err := c.Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}

	// Find a peer that owns at least one chunk and is not the
	// coordinator, then kill it.
	victim := -1
	for ni := 1; ni < 3; ni++ {
		idn := fmt.Sprintf("node-%c", 'a'+ni)
		for ci := 0; ci < meta.NumChunks; ci++ {
			if c.Owner(meta.ID, ci) == idn {
				victim = ni
			}
		}
	}
	if victim < 0 {
		t.Skip("placement put every chunk on the coordinator")
	}
	peers[victim].srv.Close()

	fill := math.NaN()
	got, rep := gather(t, c, meta.ID, [3]int{0, 0, 0}, dims, fill)
	if len(rep.Skipped) == 0 {
		t.Fatal("killed an owning peer but nothing degraded")
	}
	// Filled cells are NaN; cells from surviving chunks are bit-identical.
	want, err := sperr.DecompressRegionWorkers(container, [3]int{0, 0, 0}, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	skipped := make(map[int]bool)
	for _, ci := range rep.Skipped {
		skipped[ci] = true
	}
	for k := range want {
		x, y, z := k%dims[0], (k/dims[0])%dims[1], k/(dims[0]*dims[1])
		ci := chunkIndexOf(meta, x, y, z)
		if skipped[ci] {
			if !math.IsNaN(got[k]) {
				t.Fatalf("sample %d in skipped chunk %d not filled", k, ci)
			}
		} else if math.Float64bits(want[k]) != math.Float64bits(got[k]) {
			t.Fatalf("sample %d in live chunk %d differs", k, ci)
		}
	}
}

// chunkIndexOf locates the chunk containing voxel (x,y,z).
func chunkIndexOf(meta *store.Meta, x, y, z int) int {
	for i, cg := range meta.Chunks {
		if x >= cg.Origin[0] && x < cg.Origin[0]+cg.Dims[0] &&
			y >= cg.Origin[1] && y < cg.Origin[1]+cg.Dims[1] &&
			z >= cg.Origin[2] && z < cg.Origin[2]+cg.Dims[2] {
			return i
		}
	}
	return -1
}

func TestDeleteFansOut(t *testing.T) {
	container := makeContainer(t, [3]int{24, 17, 9}, [3]int{16, 16, 16}, 13)
	clusters, peers := testCluster(t, 3)
	meta, _, err := clusters[0].Ingest(context.Background(), container)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if _, ok := p.st.Describe(meta.ID); !ok {
			t.Fatalf("peer %d missing shard after ingest", i)
		}
	}
	if err := clusters[0].Delete(context.Background(), meta.ID); err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if _, ok := p.st.Describe(meta.ID); ok {
			t.Fatalf("peer %d still has shard after delete", i)
		}
	}
	// Idempotent from the remote side; local reports not found.
	if err := clusters[0].Delete(context.Background(), meta.ID); err == nil {
		t.Fatal("double delete did not report missing volume")
	}
}

func TestIngestRejectsV1(t *testing.T) {
	clusters, _ := testCluster(t, 2)
	v1, err := os.ReadFile("../../testdata/golden_pwe_24x17x9.sperr")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := clusters[0].Ingest(context.Background(), v1); err == nil {
		t.Fatal("v1 container accepted for sharding")
	}
}
