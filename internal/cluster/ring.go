// Package cluster distributes a volume's chunks across a set of sperrd
// peers and gathers them back for region reads.
//
// Placement is a pure function of the peer set and the chunk key: a
// consistent-hash ring with virtual nodes assigns each chunk (keyed by
// the volume's content address plus the chunk index from the container
// footer) to exactly one owning peer, with a rendezvous-hash tie-break
// on the astronomically rare ring-point collision. Because placement is
// deterministic, no placement map is stored or replicated — any node
// that knows the peer roster can compute where every chunk lives, and
// the roster itself is static per-process configuration.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per peer. 64 points
// keeps the per-peer load imbalance within a few percent for small
// rosters while the ring stays tiny (a 16-peer ring is 1024 points).
const DefaultVirtualNodes = 64

// fnv64 is FNV-1a over s. Inlined rather than hash/fnv so ring hashing
// allocates nothing and can be called per chunk on the read path.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

type ringPoint struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is an immutable consistent-hash ring over a set of peer IDs.
// Build one with NewRing; methods are safe for concurrent use.
type Ring struct {
	peers  []string
	points []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per peer (0 means
// DefaultVirtualNodes). Peer IDs must be unique and non-empty.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]struct{}, len(peers))
	r := &Ring{
		peers:  append([]string(nil), peers...),
		points: make([]ringPoint, 0, len(peers)*vnodes),
	}
	for pi, id := range r.peers {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty peer id")
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = struct{}{}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: fnv64(fmt.Sprintf("%s#%d", id, v)),
				peer: pi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding ring points: rendezvous tie-break. Order the
		// colliding peers by their combined hash with the ring point so
		// the winner is stable regardless of roster order, and every
		// ring that contains both peers agrees on it.
		return fnv64(fmt.Sprintf("%s|%d", r.peers[a.peer], a.hash)) <
			fnv64(fmt.Sprintf("%s|%d", r.peers[b.peer], b.hash))
	})
	return r, nil
}

// Peers returns the roster in construction order.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// ChunkKey is the canonical placement key for chunk index ci of the
// volume with content address id.
func ChunkKey(id string, ci int) string {
	return fmt.Sprintf("%s/%d", id, ci)
}

// Owner returns the peer ID owning key: the first ring point clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.peers[r.ownerIndex(key)]
}

func (r *Ring) ownerIndex(key string) int {
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Owners returns the ordered replica set for key: the first n distinct
// peers encountered walking the ring clockwise from the key's hash. The
// first entry is Owner(key); n is clamped to the roster size. The walk
// order is a pure function of the roster and the key, so every node
// computes the same replica set and the same failover order — and
// because successive ring points belong to independent virtual nodes,
// removing a peer that is not in the set never changes the set, while
// removing a member shifts only the members after it (consistent
// hashing, extended to replica lists).
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for step := 0; step < len(r.points) && len(out) < n; step++ {
		p := r.points[(start+step)%len(r.points)].peer
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, r.peers[p])
	}
	return out
}

// Placement maps each of n chunks of volume id to its owning peer,
// returned as peerID -> sorted chunk indices. Peers owning no chunks of
// this volume are absent from the map.
func (r *Ring) Placement(id string, n int) map[string][]int {
	return r.PlacementReplicas(id, n, 1)
}

// PlacementReplicas maps each of n chunks of volume id to its ordered
// replica set of r distinct peers, returned as peerID -> sorted chunk
// indices. With replicas > 1 a chunk appears under every member of its
// replica set; peers owning no chunks of this volume are absent.
func (r *Ring) PlacementReplicas(id string, n, replicas int) map[string][]int {
	out := make(map[string][]int)
	for ci := 0; ci < n; ci++ {
		for _, p := range r.Owners(ChunkKey(id, ci), replicas) {
			out[p] = append(out[p], ci)
		}
	}
	return out
}
