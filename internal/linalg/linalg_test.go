package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMulKnown(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("matmul[%d] = %g, want %g", i, c.Data[i], v)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	w, _ := SymEig(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d = %g, want %g", i, w[i], want[i])
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := &Matrix{Rows: 2, Cols: 2, Data: []float64{2, 1, 1, 2}}
	w, v := SymEig(a)
	if math.Abs(w[0]-3) > 1e-12 || math.Abs(w[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [3 1]", w)
	}
	// Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
	r := v.At(0, 0) / v.At(1, 0)
	if math.Abs(r-1) > 1e-9 {
		t.Fatalf("first eigenvector ratio %g, want 1", r)
	}
}

// Property: A V = V diag(w) and V orthogonal, on random symmetric matrices.
func TestSymEigRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		w, v := SymEig(a)
		// Descending order.
		for i := 1; i < n; i++ {
			if w[i] > w[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, w)
			}
		}
		// Residual ||A v_k - w_k v_k||.
		for k := 0; k < n; k++ {
			var res float64
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += a.At(i, j) * v.At(j, k)
				}
				d := av - w[k]*v.At(i, k)
				res += d * d
			}
			if math.Sqrt(res) > 1e-8*(1+math.Abs(w[k])) {
				t.Fatalf("n=%d: eigenpair %d residual %g", n, k, math.Sqrt(res))
			}
		}
		// Orthogonality.
		for a1 := 0; a1 < n; a1++ {
			for a2 := a1; a2 < n; a2++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += v.At(i, a1) * v.At(i, a2)
				}
				want := 0.0
				if a1 == a2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("n=%d: V^T V [%d,%d] = %g, want %g", n, a1, a2, dot, want)
				}
			}
		}
	}
}

// Gram-matrix eigenvalues are the squared singular values; verify trace
// preservation (sum of eigenvalues equals trace).
func TestTracePreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	var trace float64
	for i := 0; i < n; i++ {
		trace += a.At(i, i)
	}
	w, _ := SymEig(a)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(trace-sum) > 1e-9*(1+math.Abs(trace)) {
		t.Fatalf("trace %g != eigenvalue sum %g", trace, sum)
	}
}

func BenchmarkSymEig64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymEig(a)
	}
}
