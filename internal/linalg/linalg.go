// Package linalg provides the dense linear algebra kernels needed by the
// TTHRESH baseline: a cyclic Jacobi eigensolver for symmetric matrices
// (used to compute the HOSVD factor matrices from Gram matrices of tensor
// unfoldings) and small matrix helpers. Matrices are dense, row-major.
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatMul returns a*b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns a^T.
func Transpose(a *Matrix) *Matrix {
	out := NewMatrix(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// SymEig computes the eigendecomposition of a symmetric matrix with the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matrix of corresponding eigenvectors as columns (so a = V diag(w) V^T
// up to numerical error). The input is not modified.
func SymEig(a *Matrix) (eigenvalues []float64, eigenvectors *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: SymEig requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-24*frobNorm2(m) || off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Rotation angle zeroing m[p][q].
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	// Collect and sort descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{m.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	eigenvalues = make([]float64, n)
	eigenvectors = NewMatrix(n, n)
	for k, p := range pairs {
		eigenvalues[k] = p.val
		for i := 0; i < n; i++ {
			eigenvectors.Set(i, k, v.At(i, p.idx))
		}
	}
	return eigenvalues, eigenvectors
}

func frobNorm2(m *Matrix) float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	if s == 0 {
		return 1
	}
	return s
}

// rotate applies the Jacobi rotation G(p,q,c,s) as m = G^T m G and
// accumulates v = v G.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}
