// Package bitgroom implements bit grooming (Zender 2016, the paper's
// reference [1]): statistically accurate precision-preserving quantization
// that zeroes insignificant mantissa bits so a general-purpose lossless
// coder can squeeze the result. It is the simplest member of the lossy
// family the paper situates SPERR against — no transform, no prediction —
// and serves as the floor baseline in the ablation experiments.
//
// Grooming alternates bit-shaving (AND with a mask) and bit-setting (OR
// with the complement) across consecutive values, which cancels the
// quantization bias that plain truncation would introduce — that is the
// "statistically accurate" part of Zender's method.
package bitgroom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sperr/internal/lossless"
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("bitgroom: corrupt stream")

// Params controls grooming.
type Params struct {
	// KeepBits is the number of explicit mantissa bits preserved
	// (1..52). Roughly log2(10)*NSD bits for NSD significant decimal
	// digits.
	KeepBits int
}

// KeepBitsForNSD returns the mantissa bits needed for the given number of
// significant decimal digits (Zender's NSD convention).
func KeepBitsForNSD(nsd int) int {
	if nsd < 1 {
		nsd = 1
	}
	b := int(math.Ceil(float64(nsd)*math.Log2(10))) + 1
	if b > 52 {
		b = 52
	}
	return b
}

// Groom quantizes data in place: mantissa bits below KeepBits are shaved
// (even indices) or set (odd indices). The relative error per value is
// bounded by 2^-KeepBits.
func Groom(data []float64, p Params) error {
	if p.KeepBits < 1 || p.KeepBits > 52 {
		return fmt.Errorf("bitgroom: KeepBits %d out of range [1, 52]", p.KeepBits)
	}
	drop := uint(52 - p.KeepBits)
	mask := ^uint64(0) << drop
	for i, v := range data {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		bits := math.Float64bits(v)
		if i%2 == 0 {
			bits &= mask // shave
		} else {
			bits |= ^mask // set
		}
		data[i] = math.Float64frombits(bits)
	}
	return nil
}

// Compress grooms a copy of data and wraps it in the lossless back end.
func Compress(data []float64, p Params) ([]byte, error) {
	groomed := append([]float64(nil), data...)
	if err := Groom(groomed, p); err != nil {
		return nil, err
	}
	raw := make([]byte, 8+len(groomed)*8)
	binary.LittleEndian.PutUint64(raw, uint64(len(groomed)))
	for i, v := range groomed {
		binary.LittleEndian.PutUint64(raw[8+i*8:], math.Float64bits(v))
	}
	return lossless.Compress(raw), nil
}

// Decompress reverses Compress. Bit grooming is idempotent, so the
// decoded values are exactly the groomed values.
func Decompress(stream []byte) ([]float64, error) {
	raw, err := lossless.Decompress(stream)
	if err != nil {
		return nil, err
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("%w: short stream", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint64(raw))
	if len(raw) != 8+n*8 {
		return nil, fmt.Errorf("%w: %d bytes for %d values", ErrCorrupt, len(raw), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8+i*8:]))
	}
	return out, nil
}
