package bitgroom

import (
	"math"
	"math/rand"
	"testing"
)

func TestKeepBitsForNSD(t *testing.T) {
	cases := []struct{ nsd, min, max int }{
		{1, 4, 6}, {3, 10, 12}, {7, 24, 25}, {16, 52, 52}, {0, 4, 6},
	}
	for _, c := range cases {
		got := KeepBitsForNSD(c.nsd)
		if got < c.min || got > c.max {
			t.Errorf("KeepBitsForNSD(%d) = %d, want in [%d, %d]", c.nsd, got, c.min, c.max)
		}
	}
}

func TestRelativeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Exp(10*rng.NormFloat64())
	}
	orig := append([]float64(nil), data...)
	keep := 20
	if err := Groom(data, Params{KeepBits: keep}); err != nil {
		t.Fatal(err)
	}
	bound := math.Ldexp(1, -keep+1)
	for i := range data {
		rel := math.Abs(data[i]-orig[i]) / math.Abs(orig[i])
		if rel > bound {
			t.Fatalf("idx %d: relative error %g > %g", i, rel, bound)
		}
	}
}

func TestBiasCancellation(t *testing.T) {
	// Shave/set alternation should keep the mean nearly unbiased, unlike
	// pure truncation which is systematically low in magnitude.
	data := make([]float64, 100000)
	for i := range data {
		data[i] = 1.0 + float64(i%997)/997
	}
	var meanBefore float64
	for _, v := range data {
		meanBefore += v
	}
	meanBefore /= float64(len(data))
	if err := Groom(data, Params{KeepBits: 8}); err != nil {
		t.Fatal(err)
	}
	var meanAfter float64
	for _, v := range data {
		meanAfter += v
	}
	meanAfter /= float64(len(data))
	// Pure truncation at 8 bits would bias by ~2^-9 ~ 2e-3 relative;
	// grooming should be an order of magnitude better.
	if rel := math.Abs(meanAfter-meanBefore) / meanBefore; rel > 5e-4 {
		t.Errorf("groomed mean biased by %g relative", rel)
	}
}

func TestSpecialValuesUntouched(t *testing.T) {
	data := []float64{0, math.Inf(1), math.Inf(-1), math.NaN(), 1.5}
	if err := Groom(data, Params{KeepBits: 4}); err != nil {
		t.Fatal(err)
	}
	if data[0] != 0 || !math.IsInf(data[1], 1) || !math.IsInf(data[2], -1) || !math.IsNaN(data[3]) {
		t.Errorf("special values modified: %v", data)
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = math.Sin(float64(i)*0.01) + 0.001*rng.NormFloat64()
	}
	stream, err := Compress(data, Params{KeepBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) >= len(data)*8 {
		t.Errorf("grooming did not compress: %d bytes", len(stream))
	}
	got, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("len %d", len(got))
	}
	bound := math.Ldexp(1, -11)
	for i := range data {
		if rel := math.Abs(got[i]-data[i]) / (math.Abs(data[i]) + 1e-300); rel > bound {
			t.Fatalf("idx %d: relative error %g", i, rel)
		}
	}
}

func TestFewerBitsCompressMore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 8192)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	s8, err := Compress(data, Params{KeepBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	s40, err := Compress(data, Params{KeepBits: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(s8) >= len(s40) {
		t.Errorf("8 kept bits (%d) should compress better than 40 (%d)", len(s8), len(s40))
	}
}

func TestValidation(t *testing.T) {
	if err := Groom(nil, Params{KeepBits: 0}); err == nil {
		t.Error("KeepBits 0 should fail")
	}
	if err := Groom(nil, Params{KeepBits: 53}); err == nil {
		t.Error("KeepBits 53 should fail")
	}
	if _, err := Decompress([]byte{1, 2}); err == nil {
		t.Error("garbage should fail")
	}
}
