// Package rawio reads and writes the raw little-endian float arrays used
// to exchange volumes with other tools (the format of SDRBench files and
// of the reference SPERR CLI).
package rawio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// ReadFloats loads a raw little-endian float file. width is 4 (float32)
// or 8 (float64); the file size must be an exact multiple of width.
func ReadFloats(path string, width int) ([]float64, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeFloats(raw, width)
}

// DecodeFloats converts raw little-endian bytes into float64 values.
func DecodeFloats(raw []byte, width int) ([]float64, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	if len(raw)%width != 0 {
		return nil, fmt.Errorf("rawio: %d bytes is not a multiple of %d", len(raw), width)
	}
	n := len(raw) / width
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if width == 4 {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		} else {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return out, nil
}

// EncodeFloats converts values to raw little-endian bytes at the given
// width (4 narrows to float32).
func EncodeFloats(data []float64, width int) ([]byte, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	raw := make([]byte, len(data)*width)
	for i, v := range data {
		if width == 4 {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(v)))
		} else {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
	}
	return raw, nil
}

// WriteFloats writes values as a raw little-endian float file.
func WriteFloats(path string, data []float64, width int) error {
	raw, err := EncodeFloats(data, width)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// FloatReader streams float64 values out of an io.Reader carrying raw
// little-endian floats, so arbitrarily large files can feed a pipeline
// without ever materializing the whole array.
type FloatReader struct {
	r     io.Reader
	width int
	buf   []byte
	have  int // pending bytes at the front of buf (a partial value)
}

// NewFloatReader wraps r; width is 4 (float32) or 8 (float64).
func NewFloatReader(r io.Reader, width int) (*FloatReader, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	return &FloatReader{r: r, width: width}, nil
}

// Read fills dst with up to len(dst) values and returns how many it
// decoded. It returns io.EOF at a clean end of stream, and
// io.ErrUnexpectedEOF when the stream ends mid-value.
func (fr *FloatReader) Read(dst []float64) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	want := len(dst)*fr.width - fr.have
	if cap(fr.buf) < fr.have+want {
		grown := make([]byte, fr.have+want)
		copy(grown, fr.buf[:fr.have])
		fr.buf = grown
	}
	fr.buf = fr.buf[:fr.have+want]
	n, err := io.ReadFull(fr.r, fr.buf[fr.have:])
	total := fr.have + n
	vals := total / fr.width
	for i := 0; i < vals; i++ {
		if fr.width == 4 {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(fr.buf[i*4:])))
		} else {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(fr.buf[i*8:]))
		}
	}
	rem := total - vals*fr.width
	copy(fr.buf, fr.buf[total-rem:total])
	fr.have = rem
	if err == io.ErrUnexpectedEOF && rem == 0 && vals > 0 {
		err = nil // clean value boundary; report EOF on the next call
	}
	if err == io.EOF && rem > 0 {
		err = io.ErrUnexpectedEOF
	}
	return vals, err
}

// WriteFloatsAt writes vals as raw little-endian floats into w at byte
// offset off. buf is an optional scratch buffer (grown as needed) so
// repeated scattered writes don't allocate; the grown buffer is returned.
func WriteFloatsAt(w io.WriterAt, vals []float64, width int, off int64, buf []byte) ([]byte, error) {
	if width != 4 && width != 8 {
		return buf, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	need := len(vals) * width
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	for i, v := range vals {
		if width == 4 {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		} else {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	}
	_, err := w.WriteAt(buf, off)
	return buf, err
}
