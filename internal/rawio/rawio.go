// Package rawio reads and writes the raw little-endian float arrays used
// to exchange volumes with other tools (the format of SDRBench files and
// of the reference SPERR CLI).
package rawio

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// ReadFloats loads a raw little-endian float file. width is 4 (float32)
// or 8 (float64); the file size must be an exact multiple of width.
func ReadFloats(path string, width int) ([]float64, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeFloats(raw, width)
}

// DecodeFloats converts raw little-endian bytes into float64 values.
func DecodeFloats(raw []byte, width int) ([]float64, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	if len(raw)%width != 0 {
		return nil, fmt.Errorf("rawio: %d bytes is not a multiple of %d", len(raw), width)
	}
	n := len(raw) / width
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if width == 4 {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		} else {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return out, nil
}

// EncodeFloats converts values to raw little-endian bytes at the given
// width (4 narrows to float32).
func EncodeFloats(data []float64, width int) ([]byte, error) {
	if width != 4 && width != 8 {
		return nil, fmt.Errorf("rawio: width must be 4 or 8, got %d", width)
	}
	raw := make([]byte, len(data)*width)
	for i, v := range data {
		if width == 4 {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(v)))
		} else {
			binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
		}
	}
	return raw, nil
}

// WriteFloats writes values as a raw little-endian float file.
func WriteFloats(path string, data []float64, width int) error {
	raw, err := EncodeFloats(data, width)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
