package rawio

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestEncodeDecode64(t *testing.T) {
	in := []float64{0, 1.5, -2.25, math.Pi, 1e300, -1e-300, math.Inf(1)}
	raw, err := EncodeFloats(in, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(in)*8 {
		t.Fatalf("raw length %d", len(raw))
	}
	out, err := DecodeFloats(raw, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("idx %d: %g != %g", i, out[i], in[i])
		}
	}
}

func TestEncodeDecode32(t *testing.T) {
	in := []float64{0, 1.5, -2.25, 100.125}
	raw, err := EncodeFloats(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeFloats(raw, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != float64(float32(in[i])) {
			t.Fatalf("idx %d: %g != %g", i, out[i], in[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.f64")
	in := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if err := WriteFloats(path, in, 8); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFloats(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("idx %d mismatch", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := DecodeFloats([]byte{1, 2, 3}, 8); err == nil {
		t.Error("misaligned input should fail")
	}
	if _, err := DecodeFloats(nil, 5); err == nil {
		t.Error("bad width should fail")
	}
	if _, err := EncodeFloats(nil, 3); err == nil {
		t.Error("bad width should fail")
	}
	if _, err := ReadFloats(filepath.Join(t.TempDir(), "missing"), 8); err == nil {
		t.Error("missing file should fail")
	}
	if err := WriteFloats(filepath.Join(t.TempDir(), "x"), nil, 7); err == nil {
		t.Error("bad width should fail")
	}
	if !os.IsNotExist(errIsNotExist(t)) {
		t.Skip("environment-dependent")
	}
}

func errIsNotExist(t *testing.T) error {
	t.Helper()
	_, err := ReadFloats(filepath.Join(t.TempDir(), "nope"), 8)
	return err
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(in []float64) bool {
		for i, v := range in {
			if math.IsNaN(v) {
				in[i] = 0 // NaN payloads don't compare equal
			}
		}
		raw, err := EncodeFloats(in, 8)
		if err != nil {
			return false
		}
		out, err := DecodeFloats(raw, 8)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
