package metrics

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func testImage(d grid.Dims, seed int64) *grid.Volume {
	rng := rand.New(rand.NewSource(seed))
	v := grid.NewVolume(d)
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				v.Set(x, y, z, 100*math.Sin(0.2*float64(x))*math.Cos(0.25*float64(y))+
					rng.NormFloat64())
			}
		}
	}
	return v
}

func TestSSIM2DIdentity(t *testing.T) {
	img := testImage(grid.D2(64, 48), 1)
	if got := SSIM2D(img, img, 8); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SSIM of identical images = %g, want 1", got)
	}
}

func TestSSIM2DRanksDistortion(t *testing.T) {
	img := testImage(grid.D2(64, 64), 2)
	mild := img.Clone()
	severe := img.Clone()
	rng := rand.New(rand.NewSource(3))
	for i := range mild.Data {
		n := rng.NormFloat64()
		mild.Data[i] += 0.5 * n
		severe.Data[i] += 20 * n
	}
	s1 := SSIM2D(img, mild, 8)
	s2 := SSIM2D(img, severe, 8)
	if !(s1 > s2) {
		t.Fatalf("SSIM did not rank distortions: mild %g vs severe %g", s1, s2)
	}
	if s1 > 1+1e-9 {
		t.Fatalf("SSIM above 1: %g", s1)
	}
}

func TestSSIM2DRejects3D(t *testing.T) {
	vol := testImage(grid.D3(8, 8, 8), 4)
	if !math.IsNaN(SSIM2D(vol, vol, 8)) {
		t.Fatal("SSIM2D on 3D volume should be NaN")
	}
	a := testImage(grid.D2(8, 8), 5)
	b := testImage(grid.D2(8, 9), 5)
	if !math.IsNaN(SSIM2D(a, b, 8)) {
		t.Fatal("mismatched dims should be NaN")
	}
}

func TestSSIMSlices(t *testing.T) {
	vol := testImage(grid.D3(32, 32, 4), 6)
	if got := SSIMSlices(vol, vol, 8); math.Abs(got-1) > 1e-12 {
		t.Fatalf("slice SSIM of identical volumes = %g", got)
	}
	noisy := vol.Clone()
	rng := rand.New(rand.NewSource(7))
	for i := range noisy.Data {
		noisy.Data[i] += 10 * rng.NormFloat64()
	}
	if got := SSIMSlices(vol, noisy, 8); got >= 1 {
		t.Fatalf("noisy slice SSIM = %g, want < 1", got)
	}
}
