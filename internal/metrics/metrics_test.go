package metrics

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRMSE(t *testing.T) {
	orig := []float64{1, 2, 3, 4}
	same := []float64{1, 2, 3, 4}
	if got := RMSE(orig, same); got != 0 {
		t.Errorf("RMSE identical = %g, want 0", got)
	}
	off := []float64{2, 3, 4, 5} // error 1 everywhere
	if got := RMSE(orig, off); !almostEqual(got, 1, 1e-12) {
		t.Errorf("RMSE = %g, want 1", got)
	}
	if !math.IsNaN(RMSE(orig, orig[:2])) {
		t.Error("mismatched lengths should give NaN")
	}
}

func TestMaxErr(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{0.5, -2, 1}
	if got := MaxErr(a, b); got != 2 {
		t.Errorf("MaxErr = %g, want 2", got)
	}
}

func TestMeanStdDevRange(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := StdDev(x); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := Range(x); got != 7 {
		t.Errorf("Range = %g, want 7", got)
	}
}

func TestPSNR(t *testing.T) {
	orig := []float64{0, 10} // range 10
	recon := []float64{1, 10}
	// RMSE = sqrt(1/2), PSNR = 20*log10(10/sqrt(0.5))
	want := 20 * math.Log10(10/math.Sqrt(0.5))
	if got := PSNR(orig, recon); !almostEqual(got, want, 1e-9) {
		t.Errorf("PSNR = %g, want %g", got, want)
	}
	if !math.IsInf(PSNR(orig, orig), 1) {
		t.Error("perfect reconstruction should give +Inf PSNR")
	}
}

func TestAccuracyGain(t *testing.T) {
	// Halving the error at a cost of exactly one extra bit keeps gain flat.
	orig := make([]float64, 1000)
	reconA := make([]float64, 1000)
	reconB := make([]float64, 1000)
	for i := range orig {
		orig[i] = math.Sin(float64(i) * 0.1)
		reconA[i] = orig[i] + 0.01
		reconB[i] = orig[i] + 0.005
	}
	gainA := AccuracyGain(orig, reconA, 2.0)
	gainB := AccuracyGain(orig, reconB, 3.0)
	if !almostEqual(gainA, gainB, 1e-9) {
		t.Errorf("halving error for one bit should keep gain constant: %g vs %g", gainA, gainB)
	}
	if !math.IsInf(AccuracyGain(orig, orig, 1), 1) {
		t.Error("lossless should give +Inf gain")
	}
}

func TestAccuracyGainFromSNRConsistency(t *testing.T) {
	orig := make([]float64, 512)
	recon := make([]float64, 512)
	for i := range orig {
		orig[i] = math.Cos(float64(i) * 0.05)
		recon[i] = orig[i] + 0.001*math.Sin(float64(i))
	}
	bpp := 4.0
	direct := AccuracyGain(orig, recon, bpp)
	viaSNR := AccuracyGainFromSNR(SNR(orig, recon), bpp)
	if !almostEqual(direct, viaSNR, 1e-9) {
		t.Errorf("gain definitions disagree: %g vs %g", direct, viaSNR)
	}
}

func TestSSIM(t *testing.T) {
	orig := make([]float64, 256)
	for i := range orig {
		orig[i] = math.Sin(float64(i) * 0.2)
	}
	if got := SSIM(orig, orig, 8); !almostEqual(got, 1, 1e-9) {
		t.Errorf("SSIM identical = %g, want 1", got)
	}
	noisy := make([]float64, 256)
	verynoisy := make([]float64, 256)
	for i := range orig {
		noisy[i] = orig[i] + 0.05*math.Sin(float64(i*7))
		verynoisy[i] = orig[i] + 0.5*math.Sin(float64(i*7))
	}
	s1 := SSIM(orig, noisy, 8)
	s2 := SSIM(orig, verynoisy, 8)
	if !(s1 > s2) {
		t.Errorf("SSIM should rank less-noisy higher: %g vs %g", s1, s2)
	}
	if s1 > 1 || s2 > 1 {
		t.Errorf("SSIM must be <= 1: %g, %g", s1, s2)
	}
}

func TestToleranceForIdx(t *testing.T) {
	// Table I: idx=10 -> range/2^10 ~ range*1e-3.
	r := 100.0
	if got := ToleranceForIdx(r, 10); !almostEqual(got, r/1024, 1e-12) {
		t.Errorf("idx=10: %g, want %g", got, r/1024)
	}
	if got := ToleranceForIdx(r, 0); got != r {
		t.Errorf("idx=0: %g, want %g", got, r)
	}
}

func TestBPPAndRatio(t *testing.T) {
	if got := BPP(1000, 1000); got != 8 {
		t.Errorf("BPP = %g, want 8", got)
	}
	if got := CompressionRatio(8000, 1000); got != 8 {
		t.Errorf("ratio = %g, want 8", got)
	}
	if !math.IsInf(CompressionRatio(1, 0), 1) {
		t.Error("zero compressed bytes should give +Inf ratio")
	}
}
