// Package metrics implements the compression-quality measures used in the
// paper's evaluation: RMSE, PSNR, maximum point-wise error, bitrate, the
// accuracy gain of Equation 2 (Section V-B), and SSIM (referenced in
// Section VI-C as a domain-specific alternative).
package metrics

import "math"

// RMSE returns the root-mean-square error between orig and recon.
func RMSE(orig, recon []float64) float64 {
	if len(orig) != len(recon) || len(orig) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range orig {
		d := orig[i] - recon[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(orig)))
}

// MaxErr returns the maximum absolute point-wise error.
func MaxErr(orig, recon []float64) float64 {
	m := 0.0
	for i := range orig {
		if d := math.Abs(orig[i] - recon[i]); d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Range returns max(x) - min(x).
func Range(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// PSNR returns the peak signal-to-noise ratio in dB, with the peak taken
// as the data range of orig (the convention used for scientific data):
// PSNR = 20*log10(range/RMSE). A perfect reconstruction returns +Inf.
func PSNR(orig, recon []float64) float64 {
	rmse := RMSE(orig, recon)
	if rmse == 0 {
		return math.Inf(1)
	}
	r := Range(orig)
	if r == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(r/rmse)
}

// SNR returns the signal-to-noise ratio in dB with the signal measured by
// the standard deviation of orig: SNR = 20*log10(sigma/RMSE).
func SNR(orig, recon []float64) float64 {
	rmse := RMSE(orig, recon)
	if rmse == 0 {
		return math.Inf(1)
	}
	sigma := StdDev(orig)
	if sigma == 0 {
		return math.Inf(1)
	}
	return 20 * math.Log10(sigma/rmse)
}

// AccuracyGain implements Equation 2 of the paper:
//
//	gain = log2(sigma/E) - R
//
// where sigma is the standard deviation of the original data, E the RMSE of
// the reconstruction, and R the bitrate in bits per point. It measures the
// information a compressor infers rather than stores, flattening the
// 6.02 dB/bit slope of SNR plots. Lossless reconstructions (E == 0) return
// +Inf.
func AccuracyGain(orig, recon []float64, bpp float64) float64 {
	e := RMSE(orig, recon)
	if e == 0 {
		return math.Inf(1)
	}
	sigma := StdDev(orig)
	if sigma == 0 {
		return -bpp
	}
	return math.Log2(sigma/e) - bpp
}

// AccuracyGainFromSNR converts an SNR (dB) and rate to accuracy gain using
// the paper's identity gain = SNR/(20*log10 2) - R ~= SNR/6.02 - R.
func AccuracyGainFromSNR(snrDB, bpp float64) float64 {
	return snrDB/(20*math.Log10(2)) - bpp
}

// SSIM computes the mean structural similarity index over the flattened
// arrays using a sliding 1D window (the volume-agnostic variant; adequate
// for ranking reconstructions). Window size win defaults to 8 when <= 1.
// The dynamic range is taken from orig.
func SSIM(orig, recon []float64, win int) float64 {
	if len(orig) != len(recon) || len(orig) == 0 {
		return math.NaN()
	}
	if win <= 1 {
		win = 8
	}
	if win > len(orig) {
		win = len(orig)
	}
	l := Range(orig)
	if l == 0 {
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)
	var total float64
	var count int
	for start := 0; start+win <= len(orig); start += win {
		a := orig[start : start+win]
		b := recon[start : start+win]
		ma, mb := Mean(a), Mean(b)
		var va, vb, cov float64
		for i := range a {
			da, db := a[i]-ma, b[i]-mb
			va += da * da
			vb += db * db
			cov += da * db
		}
		n := float64(len(a))
		va /= n
		vb /= n
		cov /= n
		s := ((2*ma*mb + c1) * (2*cov + c2)) /
			((ma*ma + mb*mb + c1) * (va + vb + c2))
		total += s
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}

// BPP returns the bitrate of a compressed representation.
func BPP(compressedBytes, numPoints int) float64 {
	if numPoints == 0 {
		return 0
	}
	return float64(compressedBytes*8) / float64(numPoints)
}

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// ToleranceForIdx translates the paper's idx labels into an actual PWE
// tolerance: t = range / 2^idx (Table I).
func ToleranceForIdx(dataRange float64, idx int) float64 {
	return dataRange / math.Exp2(float64(idx))
}
