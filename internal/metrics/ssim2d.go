package metrics

import (
	"math"

	"sperr/internal/grid"
)

// SSIM2D computes the mean structural similarity index between two 2D
// slices (NZ must be 1) with a sliding win x win window (default 8 when
// win <= 1), the domain-specific quality metric the paper points to for
// visualization-oriented use cases (Section VI-C, reference [39]). For 3D
// volumes use SSIMSlices, which averages SSIM2D over z-slices.
func SSIM2D(orig, recon *grid.Volume, win int) float64 {
	if orig.Dims != recon.Dims || !orig.Dims.Is2D() {
		return math.NaN()
	}
	if win <= 1 {
		win = 8
	}
	d := orig.Dims
	if win > d.NX {
		win = d.NX
	}
	if win > d.NY {
		win = d.NY
	}
	l := Range(orig.Data)
	if l == 0 {
		l = 1
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)
	var total float64
	var count int
	for y0 := 0; y0+win <= d.NY; y0 += win / 2 {
		for x0 := 0; x0+win <= d.NX; x0 += win / 2 {
			var ma, mb float64
			n := float64(win * win)
			for y := y0; y < y0+win; y++ {
				for x := x0; x < x0+win; x++ {
					ma += orig.At(x, y, 0)
					mb += recon.At(x, y, 0)
				}
			}
			ma /= n
			mb /= n
			var va, vb, cov float64
			for y := y0; y < y0+win; y++ {
				for x := x0; x < x0+win; x++ {
					da := orig.At(x, y, 0) - ma
					db := recon.At(x, y, 0) - mb
					va += da * da
					vb += db * db
					cov += da * db
				}
			}
			va /= n
			vb /= n
			cov /= n
			total += ((2*ma*mb + c1) * (2*cov + c2)) /
				((ma*ma + mb*mb + c1) * (va + vb + c2))
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}

// SSIMSlices averages SSIM2D over every z-slice of a 3D volume.
func SSIMSlices(orig, recon *grid.Volume, win int) float64 {
	if orig.Dims != recon.Dims {
		return math.NaN()
	}
	d := orig.Dims
	var total float64
	for z := 0; z < d.NZ; z++ {
		a := orig.Cutout(0, 0, z, grid.D3(d.NX, d.NY, 1))
		b := recon.Cutout(0, 0, z, grid.D3(d.NX, d.NY, 1))
		total += SSIM2D(a, b, win)
	}
	return total / float64(d.NZ)
}
