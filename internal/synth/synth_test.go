package synth

import (
	"math"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/metrics"
)

func TestGaussianRandomFieldStats(t *testing.T) {
	d := grid.D3(32, 32, 32)
	v := GaussianRandomField(d, 5.0/3, 1)
	if len(v.Data) != d.Len() {
		t.Fatalf("len = %d", len(v.Data))
	}
	if m := metrics.Mean(v.Data); math.Abs(m) > 1e-9 {
		t.Errorf("mean = %g, want ~0", m)
	}
	if sd := metrics.StdDev(v.Data); math.Abs(sd-1) > 1e-9 {
		t.Errorf("stddev = %g, want 1", sd)
	}
}

func TestDeterminism(t *testing.T) {
	d := grid.D3(16, 16, 16)
	a := GaussianRandomField(d, 2, 7)
	b := GaussianRandomField(d, 2, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must give identical fields")
		}
	}
	c := GaussianRandomField(d, 2, 8)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

// Steeper spectral slopes must yield smoother fields (smaller mean squared
// gradient).
func TestSlopeControlsSmoothness(t *testing.T) {
	d := grid.D3(32, 32, 32)
	rough := GaussianRandomField(d, 1.0, 3)
	smooth := GaussianRandomField(d, 4.0, 3)
	grad := func(v *grid.Volume) float64 {
		var s float64
		for z := 0; z < d.NZ; z++ {
			for y := 0; y < d.NY; y++ {
				for x := 0; x < d.NX-1; x++ {
					g := v.At(x+1, y, z) - v.At(x, y, z)
					s += g * g
				}
			}
		}
		return s
	}
	if !(grad(smooth) < grad(rough)) {
		t.Errorf("slope 4 field rougher than slope 1 field: %g vs %g",
			grad(smooth), grad(rough))
	}
}

func TestMirandaFields(t *testing.T) {
	d := grid.D3(24, 24, 24)
	den := MirandaDensity(d, 1)
	lo, hi := den.Range()
	if lo < 0.9 || hi > 3.1 {
		t.Errorf("density range [%g, %g] outside two-fluid bounds", lo, hi)
	}
	vis := MirandaViscosity(d, 1)
	lo, _ = vis.Range()
	if lo <= 0 {
		t.Errorf("viscosity must be positive, min %g", lo)
	}
	pre := MirandaPressure(d, 1)
	if r := metrics.Range(pre.Data); r <= 0 || r > 2 {
		t.Errorf("pressure range %g implausible", r)
	}
}

func TestS3DFields(t *testing.T) {
	d := grid.D3(32, 16, 16)
	temp := S3DTemperature(d, 1)
	lo, hi := temp.Range()
	if lo < 600 || hi > 2600 {
		t.Errorf("temperature range [%g, %g] outside combustion bounds", lo, hi)
	}
	// Left side should be cold (reactants), right side hot (products).
	var left, right float64
	for y := 0; y < d.NY; y++ {
		left += temp.At(1, y, 8)
		right += temp.At(d.NX-2, y, 8)
	}
	if !(left < right) {
		t.Errorf("flame front orientation wrong: left %g, right %g", left, right)
	}
	ch4 := S3DCH4(d, 1)
	lo, hi = ch4.Range()
	if lo < 0 || hi > 0.08 {
		t.Errorf("CH4 range [%g, %g] outside mass-fraction bounds", lo, hi)
	}
}

func TestNyxDynamicRange(t *testing.T) {
	d := grid.D3(24, 24, 24)
	den := NyxDarkMatterDensity(d, 1)
	lo, hi := den.Range()
	if lo <= 0 {
		t.Fatalf("density must be positive, min %g", lo)
	}
	if hi/lo < 100 {
		t.Errorf("dynamic range %g too small for a cosmology density", hi/lo)
	}
}

func TestQMCPACKLayout(t *testing.T) {
	base := grid.D3(12, 12, 10)
	norb := 5
	v := QMCPACKOrbitals(base, norb, 1)
	want := grid.D3(12, 12, 50)
	if v.Dims != want {
		t.Fatalf("dims %v, want %v", v.Dims, want)
	}
	// Different orbitals must differ.
	o0 := v.Cutout(0, 0, 0, base)
	o1 := v.Cutout(0, 0, base.NZ, base)
	same := true
	for i := range o0.Data {
		if o0.Data[i] != o1.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("orbitals 0 and 1 are identical")
	}
}

func TestLighthouse(t *testing.T) {
	d := grid.D2(96, 64)
	img := Lighthouse(d, 1)
	if img.Dims != grid.D2(96, 64) {
		t.Fatalf("dims %v", img.Dims)
	}
	lo, hi := img.Range()
	if hi-lo < 50 {
		t.Errorf("image contrast %g too small", hi-lo)
	}
}

func TestStandardFields(t *testing.T) {
	fields := StandardFields(grid.D3(16, 16, 16), 1)
	if len(fields) != 9 {
		t.Fatalf("got %d fields, want 9 (Table II)", len(fields))
	}
	names := map[string]bool{}
	for _, f := range fields {
		if f.Vol == nil || len(f.Vol.Data) == 0 {
			t.Errorf("field %q has no data", f.Name)
		}
		if names[f.Name] {
			t.Errorf("duplicate field name %q", f.Name)
		}
		names[f.Name] = true
	}
}

func BenchmarkGRF32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaussianRandomField(d, 5.0/3, int64(i))
	}
}
