// Package synth generates deterministic synthetic stand-ins for the
// SDRBench data sets used in the paper's evaluation (Section VI-B):
// Miranda (hydrodynamics turbulence), S3D (combustion), Nyx (cosmology)
// and QMCPACK (ab initio quantum Monte Carlo), plus the Kodak Lighthouse
// image used in Figure 1.
//
// The generators are spectral/procedural: Gaussian random fields with
// prescribed power-law spectra (synthesized through the internal FFT on a
// power-of-two grid and cropped), optionally sharpened or exponentiated to
// match the qualitative character of each data set — smooth pressure
// fields, sharp material interfaces, log-normal cosmological densities,
// oscillatory decaying orbitals. Compressor behaviour is governed by this
// spectral content and dynamic range rather than by the physics, which is
// what makes the substitution sound (see DESIGN.md).
//
// All generators are deterministic in (dims, seed).
package synth

import (
	"math"
	"math/rand"

	"sperr/internal/fft"
	"sperr/internal/grid"
)

// GaussianRandomField synthesizes a zero-mean, unit-variance random field
// whose isotropic power spectrum falls off as k^(-slope). Typical slopes:
// 5.0/3 for Kolmogorov velocity, 7.0/3 for pressure. Larger slopes give
// smoother fields.
func GaussianRandomField(d grid.Dims, slope float64, seed int64) *grid.Volume {
	nx, ny, nz := fft.NextPow2(d.NX), fft.NextPow2(d.NY), fft.NextPow2(d.NZ)
	rng := rand.New(rand.NewSource(seed))
	spec := make([]complex128, nx*ny*nz)
	for z := 0; z < nz; z++ {
		kz := wrapFreq(z, nz)
		for y := 0; y < ny; y++ {
			ky := wrapFreq(y, ny)
			for x := 0; x < nx; x++ {
				kx := wrapFreq(x, nx)
				k2 := kx*kx + ky*ky + kz*kz
				if k2 == 0 {
					continue
				}
				// Energy spectrum E(k) ~ k^-slope spread over a shell of
				// area ~ k^2 (3D): amplitude ~ k^(-(slope+2)/2).
				amp := math.Pow(k2, -(slope+2)/4)
				ph := 2 * math.Pi * rng.Float64()
				g := rng.NormFloat64()
				spec[(z*ny+y)*nx+x] = complex(amp*g*math.Cos(ph), amp*g*math.Sin(ph))
			}
		}
	}
	fft.Inverse3D(spec, nx, ny, nz)
	out := grid.NewVolume(d)
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				out.Set(x, y, z, real(spec[(z*ny+y)*nx+x]))
			}
		}
	}
	normalize(out.Data)
	return out
}

// wrapFreq maps a DFT bin index to its signed frequency.
func wrapFreq(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}

// normalize rescales data in place to zero mean and unit variance.
func normalize(data []float64) {
	var mean float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	var varsum float64
	for _, v := range data {
		d := v - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(data)))
	if sd == 0 {
		sd = 1
	}
	for i := range data {
		data[i] = (data[i] - mean) / sd
	}
}

// --- Miranda (hydrodynamics turbulence; double precision in the paper) ---

// MirandaDensity mimics the Miranda density field: turbulent mixing with
// sharp material interfaces, produced by soft-thresholding a random field.
func MirandaDensity(d grid.Dims, seed int64) *grid.Volume {
	v := GaussianRandomField(d, 5.0/3, seed)
	for i, x := range v.Data {
		// Two-fluid mixing: densities ~1 and ~3 with a sharp transition.
		v.Data[i] = 2 + math.Tanh(4*x)
	}
	return v
}

// MirandaPressure mimics the Miranda pressure field: smoother than the
// velocity (pressure spectra fall off faster), small dynamic range.
func MirandaPressure(d grid.Dims, seed int64) *grid.Volume {
	v := GaussianRandomField(d, 7.0/3, seed+1)
	for i, x := range v.Data {
		v.Data[i] = 1.0e0 + 0.1*x
	}
	return v
}

// MirandaViscosity mimics the Miranda viscosity field: positive, smooth,
// composition-dependent (a monotone map of the mixing field).
func MirandaViscosity(d grid.Dims, seed int64) *grid.Volume {
	v := GaussianRandomField(d, 2.0, seed+2)
	for i, x := range v.Data {
		v.Data[i] = 1e-4 * math.Exp(0.8*math.Tanh(2*x))
	}
	return v
}

// MirandaVelocityX mimics a Miranda velocity component: Kolmogorov
// turbulence, signed, near-Gaussian single-point statistics.
func MirandaVelocityX(d grid.Dims, seed int64) *grid.Volume {
	return GaussianRandomField(d, 5.0/3, seed+3)
}

// --- S3D (combustion; double precision in the paper) ---

// s3dFront builds a wrinkled flame-front indicator in [0, 1]: a planar
// front displaced by large-scale turbulence, with a thin reaction zone.
func s3dFront(d grid.Dims, seed int64) *grid.Volume {
	w := GaussianRandomField(d, 3.0, seed)
	out := grid.NewVolume(d)
	thick := float64(d.NX) * 0.02
	if thick < 1 {
		thick = 1
	}
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				pos := float64(x) - 0.5*float64(d.NX) -
					0.1*float64(d.NX)*w.At(x, y, z)
				out.Set(x, y, z, 0.5*(1+math.Tanh(pos/thick)))
			}
		}
	}
	return out
}

// S3DTemperature mimics the S3D temperature field: cold reactants, hot
// products, a thin wrinkled flame front between them.
func S3DTemperature(d grid.Dims, seed int64) *grid.Volume {
	front := s3dFront(d, seed+10)
	turb := GaussianRandomField(d, 5.0/3, seed+11)
	for i := range front.Data {
		front.Data[i] = 800 + 1400*front.Data[i] + 20*turb.Data[i]
	}
	return front
}

// S3DCH4 mimics the S3D CH4 mass-fraction field: fuel ahead of the front,
// consumed behind it, bounded to [0, ~0.06].
func S3DCH4(d grid.Dims, seed int64) *grid.Volume {
	front := s3dFront(d, seed+10) // same front as temperature, as in S3D
	turb := GaussianRandomField(d, 5.0/3, seed+12)
	for i := range front.Data {
		v := 0.055*(1-front.Data[i]) + 0.002*turb.Data[i]*(1-front.Data[i])
		if v < 0 {
			v = 0
		}
		front.Data[i] = v
	}
	return front
}

// S3DVelocityX mimics an S3D velocity component: turbulence plus the flow
// acceleration through the flame front.
func S3DVelocityX(d grid.Dims, seed int64) *grid.Volume {
	front := s3dFront(d, seed+10)
	turb := GaussianRandomField(d, 5.0/3, seed+13)
	for i := range front.Data {
		front.Data[i] = 50*turb.Data[i] + 300*front.Data[i]
	}
	return front
}

// --- Nyx (cosmology; single precision in the paper) ---

// NyxDarkMatterDensity mimics the Nyx dark matter density: log-normal with
// an enormous dynamic range (many orders of magnitude), the hardest case
// for absolute error bounds.
func NyxDarkMatterDensity(d grid.Dims, seed int64) *grid.Volume {
	v := GaussianRandomField(d, 1.0, seed+20)
	for i, x := range v.Data {
		v.Data[i] = 1e9 * math.Exp(2.5*x)
	}
	return v
}

// NyxVelocityX mimics a Nyx velocity component (cm/s scale).
func NyxVelocityX(d grid.Dims, seed int64) *grid.Volume {
	v := GaussianRandomField(d, 5.0/3, seed+21)
	for i := range v.Data {
		v.Data[i] *= 1e7
	}
	return v
}

// --- QMCPACK (single precision in the paper) ---

// QMCPACKOrbitals mimics the QMCPACK data set: a stack of norb 3D orbital
// volumes of extent base, concatenated along z exactly like the
// 69x69x33120 layout of SDRBench. Each orbital is an oscillatory function
// with orbital-dependent frequency under a Gaussian envelope.
func QMCPACKOrbitals(base grid.Dims, norb int, seed int64) *grid.Volume {
	full := grid.D3(base.NX, base.NY, base.NZ*norb)
	out := grid.NewVolume(full)
	rng := rand.New(rand.NewSource(seed + 30))
	cx, cy, cz := float64(base.NX)/2, float64(base.NY)/2, float64(base.NZ)/2
	sigma2 := (cx*cx + cy*cy + cz*cz) / 3
	for o := 0; o < norb; o++ {
		fx := 0.1 + 0.05*float64(o%7) + 0.02*rng.Float64()
		fy := 0.1 + 0.04*float64(o%5) + 0.02*rng.Float64()
		fz := 0.1 + 0.03*float64(o%3) + 0.02*rng.Float64()
		phase := 2 * math.Pi * rng.Float64()
		for z := 0; z < base.NZ; z++ {
			for y := 0; y < base.NY; y++ {
				for x := 0; x < base.NX; x++ {
					dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
					env := math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * sigma2))
					val := env * math.Sin(fx*dx+phase) * math.Cos(fy*dy) * math.Sin(fz*dz+0.5*phase)
					out.Set(x, y, o*base.NZ+z, val)
				}
			}
		}
	}
	return out
}

// --- Kodak Lighthouse stand-in (Figure 1) ---

// Lighthouse generates a 2D image-like field with the structural elements
// that matter for outlier statistics: smooth sky gradient, a hard-edged
// tower, periodic picket-fence stripes, and grass texture.
func Lighthouse(d grid.Dims, seed int64) *grid.Volume {
	rng := rand.New(rand.NewSource(seed + 40))
	out := grid.NewVolume(grid.D2(d.NX, d.NY))
	horizon := int(0.55 * float64(d.NY))
	towerLo, towerHi := int(0.42*float64(d.NX)), int(0.5*float64(d.NX))
	for y := 0; y < d.NY; y++ {
		for x := 0; x < d.NX; x++ {
			var v float64
			switch {
			case x >= towerLo && x < towerHi && y > int(0.1*float64(d.NY)):
				// Tower: bright with horizontal bands.
				v = 200
				if (y/8)%2 == 0 {
					v = 90
				}
			case y < horizon:
				// Sky: smooth vertical gradient.
				v = 180 - 60*float64(y)/float64(horizon)
			case y < horizon+int(0.1*float64(d.NY)):
				// Picket fence: high-frequency vertical stripes.
				v = 120 + 80*math.Sin(float64(x)*0.9)
			default:
				// Grass: textured noise.
				v = 70 + 25*rng.NormFloat64()
			}
			out.Set(x, y, 0, v+2*rng.NormFloat64())
		}
	}
	return out
}

// Field couples a named volume with its source precision, for experiment
// tables.
type Field struct {
	Name   string
	Vol    *grid.Volume
	Single bool // true when the paper's original is single precision
}

// StandardFields generates the nine fields used across Figures 8-11
// (Table II) at the given 3D extent (QMCPACK uses a stack of d.NZ-deep
// orbitals; the Lighthouse image is not included — it is 2D-only).
func StandardFields(d grid.Dims, seed int64) []Field {
	return []Field{
		{Name: "S3D CH4", Vol: S3DCH4(d, seed)},
		{Name: "S3D Temperature", Vol: S3DTemperature(d, seed)},
		{Name: "S3D X Velocity", Vol: S3DVelocityX(d, seed)},
		{Name: "Miranda Pressure", Vol: MirandaPressure(d, seed)},
		{Name: "Miranda Viscosity", Vol: MirandaViscosity(d, seed)},
		{Name: "Miranda X Velocity", Vol: MirandaVelocityX(d, seed)},
		{Name: "QMCPACK", Vol: QMCPACKOrbitals(grid.D3(d.NX, d.NY, d.NZ/4+1), 4, seed), Single: true},
		{Name: "Nyx Dark Matter Density", Vol: NyxDarkMatterDensity(d, seed), Single: true},
		{Name: "Nyx X Velocity", Vol: NyxVelocityX(d, seed), Single: true},
	}
}
