package par

import (
	"sync"
	"testing"
)

func TestSpansPartitionExactly(t *testing.T) {
	for _, tc := range []struct{ total, threads int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {64, 64}, {100, 7}, {1 << 15, 5},
	} {
		covered := make([]int32, tc.total)
		var mu sync.Mutex
		workers := map[int]bool{}
		Spans(tc.total, tc.threads, func(worker, lo, hi int) {
			mu.Lock()
			workers[worker] = true
			mu.Unlock()
			if lo > hi || lo < 0 || hi > tc.total {
				t.Errorf("total=%d threads=%d: bad span [%d,%d)", tc.total, tc.threads, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("total=%d threads=%d: index %d covered %d times", tc.total, tc.threads, i, c)
			}
		}
		if len(workers) > tc.threads {
			t.Errorf("total=%d threads=%d: %d distinct workers", tc.total, tc.threads, len(workers))
		}
	}
}

func TestWorkersGuardsSmallTasks(t *testing.T) {
	if got := Workers(8, 100, 1000); got != 1 {
		t.Errorf("below threshold: got %d workers, want 1", got)
	}
	if got := Workers(8, 8000, 1000); got != 8 {
		t.Errorf("ample work: got %d workers, want 8", got)
	}
	if got := Workers(0, 8000, 1000); got != 1 {
		t.Errorf("zero threads: got %d workers, want 1", got)
	}
}
