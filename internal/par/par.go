// Package par provides the deterministic work-splitting primitive of the
// intra-chunk parallel paths: an index range is partitioned into
// contiguous spans whose boundaries depend only on (total, threads), and
// each span runs on its own goroutine over disjoint data. Results are
// therefore independent of scheduling — byte-identical output at every
// thread count — which the pipeline's determinism tests rely on.
package par

import "sync"

// Spans partitions [0, total) into up to threads contiguous spans and
// runs fn once per span; span 0 runs on the calling goroutine, the rest
// on fresh goroutines. Spans returns when every call has finished. Each
// worker receives a distinct span, so writes to span-indexed data need no
// locking.
func Spans(total, threads int, fn func(worker, lo, hi int)) {
	if threads > total {
		threads = total
	}
	if threads <= 1 {
		if total > 0 {
			fn(0, 0, total)
		}
		return
	}
	span := (total + threads - 1) / threads
	var wg sync.WaitGroup
	worker := 0
	for lo := span; lo < total; lo += span {
		worker++
		hi := lo + span
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(worker, lo, hi)
	}
	fn(0, 0, span)
	wg.Wait()
}

// Split appends to dst the cut points of the exact partition Spans uses
// for (total, threads) and returns the extended slice: worker w owns the
// half-open range [cuts[w], cuts[w+1]), and len(cuts)-1 is the number of
// spans actually run (which may be fewer than threads). Callers that must
// merge per-span results in deterministic order use Split to know the
// boundaries without duplicating the partition arithmetic.
func Split(dst []int, total, threads int) []int {
	if total <= 0 {
		return append(dst, 0)
	}
	if threads > total {
		threads = total
	}
	if threads <= 1 {
		return append(dst, 0, total)
	}
	span := (total + threads - 1) / threads
	dst = append(dst, 0)
	for lo := span; lo < total; lo += span {
		dst = append(dst, lo)
	}
	return append(dst, total)
}

// Workers clamps a requested thread count for a task of elems elements:
// below minElems the spawn-and-barrier overhead outweighs the work and
// the task stays serial.
func Workers(threads, elems, minElems int) int {
	if threads <= 1 || elems < minElems {
		return 1
	}
	return threads
}
