package speck

import (
	"math"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/wavelet"
)

// benchCoeffs builds a realistic coefficient volume: a smooth synthetic
// field pushed through the forward CDF 9/7 transform, exactly what the
// chunk pipeline hands to the SPECK stage.
func benchCoeffs(n int) ([]float64, grid.Dims) {
	dims := grid.D3(n, n, n)
	data := make([]float64, dims.Len())
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[i] = math.Sin(0.1*float64(x))*math.Cos(0.07*float64(y)) +
					0.5*math.Sin(0.05*float64(z)) +
					0.01*float64((x*31+y*17+z*7)%13)
				i++
			}
		}
	}
	wavelet.NewPlan(dims).Forward(data)
	return data, dims
}

// BenchmarkSpeckEncode measures quality-bounded SPECK coding of a 64^3
// coefficient volume — the chunk pipeline's stage 2 (paper Figure 6).
func BenchmarkSpeckEncode(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	var s Scratch
	b.SetBytes(int64(len(coeffs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := EncodeScratch(coeffs, dims, q, 0, &s)
		if r.Bits == 0 {
			b.Fatal("no output bits")
		}
	}
}

// BenchmarkSpeckDecode is the decoder-side counterpart, also exercised by
// the encoder's outlier-locate stage.
func BenchmarkSpeckDecode(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	res := Encode(coeffs, dims, q, 0)
	var s Scratch
	b.SetBytes(int64(len(coeffs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := DecodeScratch(res.Stream, res.Bits, dims, q, res.NumPlanes, &s)
		if len(out) != dims.Len() {
			b.Fatal("short decode")
		}
	}
}
