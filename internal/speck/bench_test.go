package speck

import (
	"math"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/wavelet"
)

// benchCoeffs builds a realistic coefficient volume: a smooth synthetic
// field pushed through the forward CDF 9/7 transform, exactly what the
// chunk pipeline hands to the SPECK stage.
func benchCoeffs(n int) ([]float64, grid.Dims) {
	dims := grid.D3(n, n, n)
	data := make([]float64, dims.Len())
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[i] = math.Sin(0.1*float64(x))*math.Cos(0.07*float64(y)) +
					0.5*math.Sin(0.05*float64(z)) +
					0.01*float64((x*31+y*17+z*7)%13)
				i++
			}
		}
	}
	wavelet.NewPlan(dims).Forward(data)
	return data, dims
}

// BenchmarkSpeckEncode measures quality-bounded SPECK coding of a 64^3
// coefficient volume — the chunk pipeline's stage 2 (paper Figure 6).
func BenchmarkSpeckEncode(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	var s Scratch
	b.SetBytes(int64(len(coeffs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := EncodeScratch(coeffs, dims, q, 0, &s)
		if r.Bits == 0 {
			b.Fatal("no output bits")
		}
	}
}

// BenchmarkSpeckDecode is the decoder-side counterpart, also exercised by
// the encoder's outlier-locate stage. MB/s is reported over the decoded
// sample bytes (dims.Len() float64s), the same denominator the encode
// benchmark uses for its input, so the two rows are directly comparable.
func BenchmarkSpeckDecode(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	res := Encode(coeffs, dims, q, 0)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := DecodeScratch(res.Stream, res.Bits, dims, q, res.NumPlanes, &s)
		if len(out) != dims.Len() {
			b.Fatal("short decode")
		}
		if i == 0 {
			b.SetBytes(int64(len(out) * 8))
		}
	}
}

// BenchmarkSpeckEncodePar is the speculative subband coder at four
// workers; its stream is byte-identical to BenchmarkSpeckEncode's.
func BenchmarkSpeckEncodePar(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	var s Scratch
	b.SetBytes(int64(len(coeffs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := EncodeScratchWorkers(coeffs, dims, q, 0, 4, &s)
		if r.Bits == 0 {
			b.Fatal("no output bits")
		}
	}
}

// BenchmarkSpeckEncodeAC / DecodeAC measure the SPECK-AC entropy mode:
// the same decision sequence as the raw coder, routed through the
// adaptive range coder's contexts.
func BenchmarkSpeckEncodeAC(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	var s Scratch
	b.SetBytes(int64(len(coeffs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := EncodeEntropyScratch(coeffs, dims, q, &s)
		if r.Bits == 0 {
			b.Fatal("no output bits")
		}
	}
}

func BenchmarkSpeckDecodeAC(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	res := EncodeEntropy(coeffs, dims, q)
	var s Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := DecodeEntropyScratch(res.Stream, dims, q, res.NumPlanes, 1, &s)
		if len(out) != dims.Len() {
			b.Fatal("short decode")
		}
		if i == 0 {
			b.SetBytes(int64(len(out) * 8))
		}
	}
}

// BenchmarkSpeckEncodeSI / DecodeSI cover the classic S/I-initialized
// traversal (si.go), which shares none of the octree fast path and keeps
// the historical coder honest in the same table.
func BenchmarkSpeckEncodeSI(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	b.SetBytes(int64(len(coeffs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := EncodeSI(coeffs, dims, q)
		if r.Bits == 0 {
			b.Fatal("no output bits")
		}
	}
}

func BenchmarkSpeckDecodeSI(b *testing.B) {
	coeffs, dims := benchCoeffs(64)
	const q = 1.5e-3
	res := EncodeSI(coeffs, dims, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := DecodeSI(res.Stream, res.Bits, dims, q, res.NumPlanes)
		if len(out) != dims.Len() {
			b.Fatal("short decode")
		}
		if i == 0 {
			b.SetBytes(int64(len(out) * 8))
		}
	}
}
