package speck

import (
	"bytes"
	"math"
	mbits "math/bits"

	"sperr/internal/bits"
	"sperr/internal/grid"
	"sperr/internal/par"
)

// Integer bit-plane path. The quality-bounded encoder quantizes every
// coefficient magnitude once into u = floor(|c|/q) and drives the whole
// bit-plane traversal off uint64 magnitudes: a set first turns significant
// at the plane indexed by the top bit of its box maximum, and a refinement
// bit is (u>>n)&1. Set tops come from the significance octree (octree.go):
// the topology is materialized once per shape and the per-node one-byte
// top table filled in a single bottom-up pass, so per-plane traversal is
// byte-equality tests against a cache-resident table instead of
// re-scanning coefficient boxes — O(coeffs) preprocessing replaces the
// former O(planes x coeffs) scan. Decision bits go straight to the bit writer in
// raw mode (no sink indirection) or through the adaptive range coder's
// contexts in SPECK-AC mode; refinement bits are emitted word-at-a-time.
//
// The raw streams are bit-identical to the float path's. In the float
// path every residual subtraction val -= thr happens when val is in [thr,
// 2*thr), so by Sterbenz's lemma it is exact, and the thresholds q*2^n are
// exact power-of-two scalings of q; the float path therefore computes
// exact real arithmetic throughout, and its significance and refinement
// decisions are exactly the binary digits of floor(|c|/q). The integer
// path computes those digits directly, with u = floor(|c|/q) obtained
// exactly from one float division corrected by an FMA sign test:
// fl(|c|/q) is within 0.5 of the real quotient when the quotient is below
// 2^52, so the truncated value is off by at most one, and the sign of
// |c| - q*v is computed exactly by FMA because the real value — a
// multiple of 2^-1074 when q is normal — never rounds across zero.
// Eligibility therefore requires planes <= 52 and normal q; anything else
// falls back to the float path, which doubles as the test oracle. The
// SPECK-AC stream is likewise byte-identical to feeding the float path's
// decisions through the range coder, since the decision sequence and
// context ids are identical.
//
// For the PlaneErr2 record the integer path maintains the same exact
// residuals the float path does (val = |c| - thr at discovery, val -= thr
// on refinement, both Sterbenz-exact), driven by the integer decisions,
// so plane records — and with them ModeRMSE truncation points — match
// bitwise. Mid-riser reconstruction is unaffected: the decoder sees the
// same bits.

// intPathEligible reports whether the integer path reproduces the float
// path exactly for this (q, planes) pair.
func intPathEligible(q float64, planes int) bool {
	return planes > 0 && planes <= 52 && q >= 0x1p-1022
}

// uset is a set box with an integer magnitude cache; the octree build
// uses it transiently to enumerate the topology.
type uset struct {
	x, y, z    int32
	nx, ny, nz int32
	umax       uint64
}

func (s *uset) single() bool { return s.nx == 1 && s.ny == 1 && s.nz == 1 }

// splitSetU is splitSet for integer sets.
func splitSetU(s *uset, dst *[8]uset) int {
	var xs, ys, zs [2][2]int32
	nx := splitAxis(s.x, s.nx, &xs)
	ny := splitAxis(s.y, s.ny, &ys)
	nz := splitAxis(s.z, s.nz, &zs)
	k := 0
	for zi := 0; zi < nz; zi++ {
		for yi := 0; yi < ny; yi++ {
			for xi := 0; xi < nx; xi++ {
				dst[k] = uset{
					x: xs[xi][0], nx: xs[xi][1],
					y: ys[yi][0], ny: ys[yi][1],
					z: zs[zi][0], nz: zs[zi][1],
				}
				k++
			}
		}
	}
	return k
}

// cpix is one coefficient's per-pixel record for the integer path: the
// signed coefficient and its quantized magnitude floor(|c|/q), packed
// side by side so pixel discovery reads one cache line instead of
// gathering from three parallel arrays. The sign lives in c's sign bit.
type cpix struct {
	c float64
	u uint64
}

type intEncoder struct {
	dims    grid.Dims
	q       float64
	tree    *octree
	tops    []uint8 // per-node significance tops (octree.fillTops)
	pix     []cpix
	w       *bits.Writer // raw mode: direct writer, no sink indirection
	ac      *acSink      // SPECK-AC mode: adaptive range coder (nil = raw)
	budget  uint64
	workers int

	lis  [][]int32 // LIS buckets of octree node ids, indexed by depth
	lisT [][]uint8 // per-entry top bytes parallel to lis (sequential scans)
	nd   int
	// The LSP arrays share one index space: positions in discovery order,
	// with ulsp/vals lagging lsp during a sorting pass (descend appends
	// positions only; gatherNew fills the tail in afterwards, so the
	// traversal never waits on a pixel-record load and nothing is staged
	// through separate "new" arrays).
	lsp  []int32   // positions of significant pixels, in discovery order
	ulsp []uint64  // quantized magnitudes parallel to lsp (sequential refinement reads)
	vals []float64 // residuals parallel to lsp (the float path's pixel.val)

	insigE2   float64
	planeBits []uint64
	planeErr2 []float64
	// Serial refinement folds the plane-record error sum into its vals
	// sweep (same additions, same order); recordPlane then only covers the
	// entries promoted after the pass. refFused marks refErr2/refN valid.
	refFused bool
	refErr2  float64
	refN     int

	// Speculative-pass scratch (see intpar.go).
	items []uint64
	cuts  []int
	spans []encSpan
}

// resetLISI truncates the pooled node-id LIS buckets and their parallel
// top-byte buckets.
func (s *Scratch) resetLISI() ([][]int32, [][]uint8) {
	for i := range s.lisI {
		s.lisI[i] = s.lisI[i][:0]
	}
	if len(s.lisI) == 0 {
		s.lisI = make([][]int32, 1, 24)
		s.Grows++
	}
	for i := range s.lisTI {
		s.lisTI[i] = s.lisTI[i][:0]
	}
	for len(s.lisTI) < len(s.lisI) {
		s.lisTI = append(s.lisTI, nil)
	}
	return s.lisI, s.lisTI[:len(s.lisI)]
}

func (e *intEncoder) setup(s *Scratch, n int) {
	if cap(s.pixI) < n {
		s.pixI = make([]cpix, n)
		s.Grows++
	}
	e.pix = s.pixI[:n]
	e.tree = s.octreeFor(e.dims)
	if cap(s.topsT) < e.tree.nodes() {
		s.topsT = make([]uint8, e.tree.nodes())
		s.Grows++
	}
	e.tops = s.topsT[:e.tree.nodes()]
	e.lis, e.lisT = s.resetLISI()
	e.nd = 1
	e.lsp = s.lspI[:0]
	e.ulsp = s.ulsp[:0]
	e.vals = s.valsI[:0]
	e.planeBits = s.planeBits[:0]
	e.planeErr2 = s.planeErr2[:0]
	e.items = s.itemsI[:0]
	e.cuts = s.cutsI[:0]
	e.spans = s.spansI
}

func (e *intEncoder) save(s *Scratch) {
	s.lisI = e.lis
	s.lisTI = e.lisT
	s.lspI = e.lsp
	s.ulsp = e.ulsp
	s.valsI = e.vals
	s.planeBits = e.planeBits
	s.planeErr2 = e.planeErr2
	s.itemsI = e.items
	s.cutsI = e.cuts
	s.spansI = e.spans
}

// quantize fills the pixel records from coeffs and accumulates insigE2 in
// the float path's order (index order, sum of m*m — bitwise the same as
// the magnitudes' squares). It also scatters each coefficient's leaf top
// byte (bits.Len64 of u, sign in bit 7) through tree.leafOf while the
// value is in registers — stores retire without stalling, where a
// separate leaf pass would take a cache miss per gather. With surplus
// workers the fills run on parallel spans (each element independent;
// leafOf is a bijection so the scatters are disjoint) and the float
// accumulation stays a serial index-order loop, so the sum is bitwise the
// same as the single-thread fused loop.
func (e *intEncoder) quantize(coeffs []float64) {
	r := quantizeRecip(e.q)
	var leafOf []int32
	if e.tree != nil {
		leafOf = e.tree.leafOf
	}
	th := par.Workers(e.workers, len(coeffs), 1<<14)
	if th <= 1 {
		q := e.q
		for i, c := range coeffs {
			m := math.Abs(c)
			u := quantizeOne(m, q, r)
			e.pix[i] = cpix{c: c, u: u}
			if leafOf != nil {
				e.tops[leafOf[i]] = leafTop(c, u)
			}
			e.insigE2 += m * m
		}
		return
	}
	par.Spans(len(coeffs), th, func(_, lo, hi int) {
		q := e.q
		for i := lo; i < hi; i++ {
			c := coeffs[i]
			u := quantizeOne(math.Abs(c), q, r)
			e.pix[i] = cpix{c: c, u: u}
			if leafOf != nil {
				e.tops[leafOf[i]] = leafTop(c, u)
			}
		}
	})
	for i := range e.pix {
		m := math.Abs(e.pix[i].c)
		e.insigE2 += m * m
	}
}

// leafTop is the tops-table byte for one coefficient: the 1-based top bit
// plane of its quantized magnitude, with the sign in bit 7.
func leafTop(c float64, u uint64) uint8 {
	b := uint8(mbits.Len64(u))
	if math.Signbit(c) {
		b |= 0x80
	}
	return b
}

// quantizeRecip returns 1/q for the multiply-based quotient guess, or 0
// to force per-element division when the reciprocal is subnormal and the
// guess could stray beyond the one-step corrections.
func quantizeRecip(q float64) float64 {
	r := 1 / q
	if r < 0x1p-1022 {
		return 0
	}
	return r
}

// quantizeOne computes floor(m/q) exactly: the rounded quotient guess —
// one multiply by the precomputed normal reciprocal, or a division when
// r is the zero sentinel — is off by at most one (the real quotient is
// below 2^52 under intPathEligible, so two roundings move it less than
// one), and the FMA residual sign test corrects it.
func quantizeOne(m, q, r float64) uint64 {
	var u uint64
	if r != 0 {
		u = uint64(m * r)
	} else {
		u = uint64(m / q)
	}
	// u < 2^52, so fu+1 is exactly float64(u+1): one int-to-float
	// conversion feeds both correction tests.
	fu := float64(u)
	if math.FMA(-q, fu+1, m) >= 0 {
		u++
	} else if u > 0 && math.FMA(-q, fu, m) < 0 {
		u--
	}
	return u
}

// encodeInt runs the integer traversal; (q, planes) must satisfy
// intPathEligible. With entropy set the same decision sequence goes
// through the adaptive range coder (SPECK-AC) instead of the raw writer;
// entropy excludes size-bounded mode (enforced by encode). workers > 1
// enables the speculative parallel passes in quality-bounded raw mode;
// output is byte-identical at any worker count.
func encodeInt(coeffs []float64, dims grid.Dims, q float64, maxBits uint64, planes int, maxMag float64, entropy bool, workers int, s *Scratch) *Result {
	n := dims.Len()
	e := &intEncoder{
		dims: dims, q: q,
		budget:  maxBits,
		workers: workers,
	}
	if entropy {
		e.ac = s.acSinkReset()
	} else {
		if s.w == nil {
			s.w = bits.NewWriter(n / 2)
			s.Grows++
		} else {
			s.w.Reset()
		}
		e.w = s.w
	}
	if maxBits == 0 {
		e.budget = math.MaxUint64
	}
	e.setup(s, n)
	e.quantize(coeffs)
	e.run(planes)
	e.save(s)
	if maxBits == 0 {
		// Untruncated stream: the full decode is reproducible from umags.
		s.canReplay = true
		s.replayQ = q
		s.replayN = n
		s.replayPlanes = planes
	}
	var stream []byte
	var bitsUsed uint64
	if entropy {
		stream, bitsUsed = e.ac.finish()
	} else {
		stream, bitsUsed = s.w.Close(), s.w.Len()
	}
	if maxBits > 0 && bitsUsed > maxBits {
		bitsUsed = maxBits
	}
	if need := int((bitsUsed + 7) / 8); need < len(stream) {
		stream = stream[:need]
	}
	return &Result{
		Stream: stream, Bits: bitsUsed, NumPlanes: planes, MaxMag: maxMag,
		PlaneBits: e.planeBits, PlaneErr2: e.planeErr2,
	}
}

// ReplayScratch synthesizes the reconstruction that Decode(stream,
// res.Bits, dims, q, planes) would produce for the full stream of the
// immediately preceding EncodeScratch call on s, without touching the
// stream: every pixel with u = floor(|c|/q) > 0 is exactly the set the
// decoder discovers, and its value is rebuilt by replaying the decoder's
// float updates (1.5*thr at the discovery plane, then +-thr/2 per
// refinement bit) in the decoder's order, so the result is bit-identical
// to an actual decode. It reports ok=false — and the caller must fall
// back to a real decode — when the preceding encode did not take the
// integer path, was size-truncated, or does not match (dims, q). The
// decoder's reconstruction depends only on the decision sequence, not on
// how the bits were entropy-coded, so replay covers SPECK-AC encodes too.
//
// This is what makes the encoder-side outlier-location stage cheap: the
// pipeline needs "exactly what the decoder will see" and gets it here
// without re-running the set-partitioning traversal or the bit reads.
func ReplayScratch(dims grid.Dims, q float64, s *Scratch) ([]float64, bool) {
	n := dims.Len()
	if !s.canReplay || s.replayQ != q || s.replayN != n {
		return nil, false
	}
	if cap(s.out) < n {
		s.out = make([]float64, n)
		s.Grows++
	}
	out := s.out[:n]
	// thr and half per plane, computed with the decoder's expressions.
	var thrs, halfs [53]float64
	for p := 0; p < s.replayPlanes; p++ {
		thr := q * math.Pow(2, float64(p))
		thrs[p] = thr
		halfs[p] = thr / 2
	}
	sign := [2]float64{-1, 1} // exact +-1 multipliers: branch-free refinement
	for i, px := range s.pixI[:n] {
		if px.u == 0 {
			out[i] = 0
			continue
		}
		top := mbits.Len64(px.u) - 1 // discovery plane
		val := 1.5 * thrs[top]
		for p := top - 1; p >= 0; p-- {
			val += halfs[p] * sign[(px.u>>uint(p))&1]
		}
		if math.Signbit(px.c) {
			val = -val
		}
		out[i] = val
	}
	return out, true
}

func (e *intEncoder) ensureDepth(d int) {
	for len(e.lis) <= d {
		e.lis = append(e.lis, nil)
		e.lisT = append(e.lisT, nil)
	}
	if e.nd <= d {
		e.nd = d + 1
	}
}

// bits returns the exact output position in decision bits (raw mode) or
// the byte-granular compressed size (AC mode, budget checks unused there).
func (e *intEncoder) bits() uint64 {
	if e.ac != nil {
		return e.ac.bits()
	}
	return e.w.Len()
}

func (e *intEncoder) run(planes int) {
	e.tree.fillTops(e.tops, e.workers)
	// The root top == planes always: NumPlanes picks the nmax with
	// q*2^nmax <= maxMag < q*2^(nmax+1), i.e. 2^nmax <= floor(maxMag/q) <
	// 2^(nmax+1).
	if int(e.tops[0]&0x7f) != planes {
		panic("speck: integer plane count disagrees with NumPlanes")
	}
	e.lis[0] = append(e.lis[0], 0)
	e.lisT[0] = append(e.lisT[0], e.tops[0]&0x7f)
	for n := planes - 1; n >= 0; n-- {
		thr := e.q * math.Pow(2, float64(n))
		n0 := len(e.ulsp) // LSP size before this plane's discoveries
		if !e.sortingPassPar(n, thr) {
			e.sortingPass(n, thr)
		}
		e.gatherNew(thr)
		if e.bits() >= e.budget {
			return
		}
		if !e.refinementPassPar(n, thr, n0) {
			e.refinementPass(n, thr, n0)
		}
		e.recordPlane(thr)
		if e.bits() >= e.budget {
			return
		}
	}
}

// recordPlane mirrors the float encoder's plane record exactly: vals holds
// the same exact residuals, accumulated in the same LSP order. When the
// serial refinement pass already folded the pre-promotion prefix into
// refErr2, only the newly promoted tail remains; the addition sequence
// (insigE2 first, then r*r in index order) is identical either way.
func (e *intEncoder) recordPlane(thr float64) {
	half := thr / 2
	err2 := e.insigE2
	start := 0
	if e.refFused {
		err2, start = e.refErr2, e.refN
		e.refFused = false
	}
	for _, v := range e.vals[start:] {
		r := v - half
		err2 += r * r
	}
	e.planeBits = append(e.planeBits, e.bits())
	e.planeErr2 = append(e.planeErr2, err2)
}

// sortingPass dispatches to the raw-specialized or AC traversal; the two
// emit the identical decision sequence, differing only in the bit layer.
// In raw mode runs of insignificant entries — the common case on every
// plane — are emitted as batched zero bits, and a bucket's untouched
// prefix is kept in place rather than recopied.
func (e *intEncoder) sortingPass(n int, thr float64) {
	p1 := uint8(n + 1) // tops value of a set significant at this plane
	for depth := e.nd - 1; depth >= 0; depth-- {
		if e.bits() >= e.budget {
			return
		}
		bucket := e.lis[depth]
		bt := e.lisT[depth]
		if e.ac == nil {
			// Scan the flat top-byte array, not tops[bucket[i]]: the bytes
			// travel with the entries, so the per-plane sweep is one
			// vectorized IndexByte per significant entry instead of a random
			// load per entry.
			m := len(bucket)
			i := bytes.IndexByte(bt[:m], p1)
			if i < 0 {
				e.w.WriteZeros(m)
				continue // nothing significant: bucket unchanged
			}
			kept := bucket[:i]
			keptT := bt[:i]
			run := i // zeros pending before the next significance 1-bit
			for {
				// The pending zero run and the 1-bit in a single write.
				if run <= 63 {
					e.w.WriteBits(1<<uint(run), uint(run+1))
				} else {
					e.w.WriteZeros(run)
					e.w.WriteBit(true)
				}
				node := bucket[i]
				i++
				e.descend(node, depth, p1, thr)
				// Dense planes mostly have run length 0-2 between
				// significant entries, where IndexByte's call overhead
				// loses to inline compares; probe a couple of bytes first
				// and vector-scan only genuinely long runs.
				j := m
				for t := i; t < m; t++ {
					if bt[t] == p1 {
						j = t
						break
					}
					if t-i == 2 {
						if off := bytes.IndexByte(bt[t+1:m], p1); off >= 0 {
							j = t + 1 + off
						}
						break
					}
				}
				if j > i {
					kept = append(kept, bucket[i:j]...)
					keptT = append(keptT, bt[i:j]...)
				}
				if j == m {
					e.w.WriteZeros(m - i)
					break
				}
				run = j - i
				i = j
			}
			e.lis[depth] = kept
			e.lisT[depth] = keptT
		} else {
			kept := bucket[:0]
			keptT := bt[:0]
			for bi, node := range bucket {
				if bt[bi] == p1 {
					e.ac.put(sigCtx(depth), true)
					e.descendAC(node, depth, p1, thr)
				} else {
					e.ac.put(sigCtx(depth), false)
					kept = append(kept, node)
					keptT = append(keptT, bt[bi])
				}
			}
			e.lis[depth] = kept
			e.lisT[depth] = keptT
		}
	}
}

// appendSeq appends the n consecutive node ids first, first+1, ... .
func appendSeq(dst []int32, first int32, n int) []int32 {
	for j := 0; j < n; j++ {
		dst = append(dst, first+int32(j))
	}
	return dst
}

// appendSeqT appends the masked top bytes of the n consecutive nodes
// starting at first — the bytes are L1-hot from the childMask load that
// just classified them.
func appendSeqT(dst []uint8, tops []uint8, first int32, n int) []uint8 {
	for j := 0; j < n; j++ {
		dst = append(dst, tops[first+int32(j)]&0x7f)
	}
	return dst
}

// childMask returns a bitmask of which of the k contiguous children
// starting at first have tops equal to p1. Tops values never exceed 53
// (intPathEligible caps planes at 52), so the eight-byte compare is a
// carry-free SWAR: equal bytes are exactly the ones that do not carry
// into bit 7 under +0x7f, and the multiply gathers the eight marker bits
// into the top byte (exact for all 256 patterns: every product term is a
// distinct power of two below 2^64 or wraps below bit 56).
func childMask(tops []uint8, first int32, k int, p1 uint8) uint32 {
	if int(first)+8 <= len(tops) {
		b := tops[first : first+8 : first+8]
		v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		x := (v & 0x7f7f7f7f7f7f7f7f) ^ (0x0101010101010101 * uint64(p1))
		m := ^(x + 0x7f7f7f7f7f7f7f7f) & 0x8080808080808080
		return uint32((m*0x0002040810204081)>>56) & (1<<uint(k) - 1)
	}
	var mask uint32
	for j := 0; j < k; j++ {
		if tops[first+int32(j)]&0x7f == p1 {
			mask |= 1 << uint(j)
		}
	}
	return mask
}

// descend is the raw-mode traversal: decision bits go straight to the bit
// writer with no per-bit mode checks. A child is significant exactly when
// its top equals p1 — it cannot exceed the parent's, which is p1 — so a
// whole brood's significance is one SWAR byte-compare mask: runs of
// insignificant children become batched zero bits and bulk LIS appends,
// and both the implied-significance shortcut (sole significant last
// child, whose bit the stream omits) and a significant last child iterate
// into the child instead of recursing.
func (e *intEncoder) descend(node int32, depth int, p1 uint8, thr float64) {
	t := e.tree
	nd := t.nod[node]
outer:
	for !nd.leaf() {
		first, k := nd.kids()
		depth++
		e.ensureDepth(depth)
		mask := childMask(e.tops, first, k, p1)
		if mask == 1<<uint(k-1) {
			// Only the last child is significant; its bit is implied.
			e.w.WriteZeros(k - 1)
			e.lis[depth] = appendSeq(e.lis[depth], first, k-1)
			e.lisT[depth] = appendSeqT(e.lisT[depth], e.tops, first, k-1)
			node = first + int32(k-1)
			nd = t.nod[node]
			continue
		}
		i := 0
		for {
			rem := mask >> uint(i)
			if rem == 0 {
				e.w.WriteZeros(k - i)
				e.lis[depth] = appendSeq(e.lis[depth], first+int32(i), k-i)
				e.lisT[depth] = appendSeqT(e.lisT[depth], e.tops, first+int32(i), k-i)
				return
			}
			z := mbits.TrailingZeros32(rem)
			if z > 0 {
				e.lis[depth] = appendSeq(e.lis[depth], first+int32(i), z)
				e.lisT[depth] = appendSeqT(e.lisT[depth], e.tops, first+int32(i), z)
				i += z
			}
			c := first + int32(i)
			if i == k-1 {
				// The zero run and the 1-bit in one write (z <= 7).
				e.w.WriteBits(1<<uint(z), uint(z+1))
				node = c
				nd = t.nod[node]
				continue outer
			}
			if cn := t.nod[c]; cn.leaf() {
				// Zero run, 1-bit, and the leaf's sign bit in one write;
				// no recursive call for the densest (deepest) level.
				e.w.WriteBits((1+2*uint64(e.tops[c]>>7))<<uint(z), uint(z+2))
				e.lsp = append(e.lsp, cn.pos())
			} else {
				e.w.WriteBits(1<<uint(z), uint(z+1))
				e.descend(c, depth, p1, thr)
			}
			i++
		}
	}
	// Leaf: the sign rides in the (already hot) tops byte, and everything
	// else about the pixel is deferred to gatherNew after the pass — the
	// traversal never waits on a pixel-record load.
	e.w.WriteBit(e.tops[node]&0x80 != 0)
	e.lsp = append(e.lsp, nd.pos())
}

// gatherNew fills in the per-pixel bookkeeping for the positions the
// sorting pass just discovered — the lsp tail past ulsp's length:
// quantized magnitude, the float path's exact residual, and the insigE2
// subtraction, in discovery order (the float path's order, so the
// accumulation stays bitwise identical). As a dependence-free batch loop
// the random pixel-record loads overlap instead of stalling the
// traversal one miss at a time. The speculative parallel pass gathers
// inline (span merge already appends these), so the tail is empty after
// it runs.
func (e *intEncoder) gatherNew(thr float64) {
	newPos := e.lsp[len(e.ulsp):]
	for _, pos := range newPos {
		px := e.pix[pos]
		m := math.Abs(px.c)
		e.ulsp = append(e.ulsp, px.u)
		e.vals = append(e.vals, m-thr) // m in [thr, 2*thr): exact
		e.insigE2 -= m * m
	}
}

// descendAC mirrors descend with decisions routed through the range
// coder's contexts (SPECK-AC).
func (e *intEncoder) descendAC(node int32, depth int, p1 uint8, thr float64) {
	t := e.tree
	nd := t.nod[node]
	if nd.leaf() {
		e.ac.put(ctxSign, e.tops[node]&0x80 != 0)
		e.lsp = append(e.lsp, nd.pos())
		return
	}
	first, k := nd.kids()
	childDepth := depth + 1
	e.ensureDepth(childDepth)
	anySig := false
	for i := 0; i < k; i++ {
		c := first + int32(i)
		sig := e.tops[c]&0x7f == p1
		if i == k-1 && !anySig {
			e.descendAC(c, childDepth, p1, thr)
			return
		}
		if sig {
			anySig = true
			e.ac.put(sigCtx(childDepth), true)
			e.descendAC(c, childDepth, p1, thr)
		} else {
			e.ac.put(sigCtx(childDepth), false)
			e.lis[childDepth] = append(e.lis[childDepth], c)
			e.lisT[childDepth] = append(e.lisT[childDepth], e.tops[c]&0x7f)
		}
	}
}

// refinementPass emits bit n of the first n0 significant magnitudes —
// the ones discovered on earlier planes; this plane's discoveries sit
// past n0 and get their first refinement next plane — batched into
// 64-bit words in raw mode, and applies the float path's exact residual
// updates. The magnitudes are read from ulsp — gathered once at discovery
// — so the pass streams two flat arrays instead of chasing positions into
// the magnitude volume. The residual update is branch-free: thr*1 and
// thr*0 are exact, and val-0 returns val unchanged, so the arithmetic is
// identical to the float path's conditional subtraction. The float path
// checks no budget mid-pass, so neither do we.
func (e *intEncoder) refinementPass(n int, thr float64, n0 int) {
	shift := uint(n)
	half := thr / 2
	acc := e.insigE2
	if e.ac != nil {
		for i, u := range e.ulsp[:n0] {
			bit := (u >> shift) & 1
			e.ac.put(ctxRefine, bit != 0)
			v := e.vals[i] - thr*float64(bit)
			e.vals[i] = v
			r := v - half
			acc += r * r
		}
		e.refErr2, e.refN, e.refFused = acc, n0, true
		return
	}
	// Whole 64-entry blocks with constant inner bounds (no per-bit word
	// flush check), then the tail.
	ulsp := e.ulsp[:n0]
	vals := e.vals[:n0]
	base := 0
	for ; base+64 <= n0; base += 64 {
		var word uint64
		ub := ulsp[base : base+64 : base+64]
		vb := vals[base : base+64 : base+64]
		for k := 0; k < 64; k++ {
			bit := (ub[k] >> shift) & 1
			word |= bit << uint(k)
			v := vb[k] - thr*float64(bit)
			vb[k] = v
			r := v - half
			acc += r * r
		}
		e.w.WriteBits(word, 64)
	}
	var word uint64
	var nb uint
	for i := base; i < n0; i++ {
		bit := (ulsp[i] >> shift) & 1
		word |= bit << nb
		nb++
		v := vals[i] - thr*float64(bit)
		vals[i] = v
		r := v - half
		acc += r * r
	}
	e.refErr2, e.refN, e.refFused = acc, n0, true
	if nb > 0 {
		e.w.WriteBits(word, nb)
	}
}
