package speck

import (
	"math"
	mbits "math/bits"

	"sperr/internal/bits"
	"sperr/internal/grid"
)

// Integer bit-plane path. The raw (non-entropy) encoder quantizes every
// coefficient magnitude once into u = floor(|c|/q) and drives the whole
// bit-plane traversal off uint64 magnitudes: set significance at plane n
// is umax >= 1<<n, a refinement bit is (u>>n)&1, and boxMax is an integer
// max-reduce. Decision bits go straight to the bit writer (no sink
// indirection), and refinement bits are emitted word-at-a-time.
//
// The streams are bit-identical to the float path's. In the float path
// every residual subtraction val -= thr happens when val is in [thr,
// 2*thr), so by Sterbenz's lemma it is exact, and the thresholds q*2^n are
// exact power-of-two scalings of q; the float path therefore computes
// exact real arithmetic throughout, and its significance and refinement
// decisions are exactly the binary digits of floor(|c|/q). The integer
// path computes those digits directly, with u = floor(|c|/q) obtained
// exactly from one float division corrected by an FMA sign test:
// fl(|c|/q) is within 0.5 of the real quotient when the quotient is below
// 2^52, so the truncated value is off by at most one, and the sign of
// |c| - q*v is computed exactly by FMA because the real value — a
// multiple of 2^-1074 when q is normal — never rounds across zero.
// Eligibility therefore requires planes <= 52 and normal q; anything else
// falls back to the float path, which doubles as the test oracle.
//
// For the PlaneErr2 record the integer path maintains the same exact
// residuals the float path does (val = |c| - thr at discovery, val -= thr
// on refinement, both Sterbenz-exact), driven by the integer decisions,
// so plane records — and with them ModeRMSE truncation points — match
// bitwise. Mid-riser reconstruction is unaffected: the decoder is
// unchanged and sees the same bits.

// intPathEligible reports whether the integer path reproduces the float
// path exactly for this (q, planes) pair.
func intPathEligible(q float64, planes int) bool {
	return planes > 0 && planes <= 52 && q >= 0x1p-1022
}

// uset is set with an integer magnitude cache.
type uset struct {
	x, y, z    int32
	nx, ny, nz int32
	umax       uint64
}

func (s *uset) single() bool { return s.nx == 1 && s.ny == 1 && s.nz == 1 }

// splitSetU is splitSet for integer sets.
func splitSetU(s *uset, dst *[8]uset) int {
	var xs, ys, zs [2][2]int32
	nx := splitAxis(s.x, s.nx, &xs)
	ny := splitAxis(s.y, s.ny, &ys)
	nz := splitAxis(s.z, s.nz, &zs)
	k := 0
	for zi := 0; zi < nz; zi++ {
		for yi := 0; yi < ny; yi++ {
			for xi := 0; xi < nx; xi++ {
				dst[k] = uset{
					x: xs[xi][0], nx: xs[xi][1],
					y: ys[yi][0], ny: ys[yi][1],
					z: zs[zi][0], nz: zs[zi][1],
				}
				k++
			}
		}
	}
	return k
}

type intEncoder struct {
	dims   grid.Dims
	q      float64
	umags  []uint64
	mags   []float64
	neg    []bool
	w      *bits.Writer // direct writer: no sink indirection on the hot path
	budget uint64

	lis    [][]uset
	nd     int
	lsp    []int32   // positions of significant pixels, in discovery order
	vals   []float64 // residuals parallel to lsp (the float path's pixel.val)
	lspNew []int32
	valNew []float64

	insigE2   float64
	planeBits []uint64
	planeErr2 []float64
}

// resetLISU truncates the pooled integer LIS buckets.
func (s *Scratch) resetLISU() [][]uset {
	for i := range s.lisU {
		s.lisU[i] = s.lisU[i][:0]
	}
	if len(s.lisU) == 0 {
		s.lisU = make([][]uset, 1, 16)
		s.Grows++
	}
	return s.lisU
}

func (e *intEncoder) setup(s *Scratch, n int) {
	if cap(s.umags) < n {
		s.umags = make([]uint64, n)
		s.Grows++
	}
	if cap(s.mags) < n {
		s.mags = make([]float64, n)
		s.neg = make([]bool, n)
		s.Grows++
	}
	e.umags, e.mags, e.neg = s.umags[:n], s.mags[:n], s.neg[:n]
	e.lis = s.resetLISU()
	e.nd = 1
	e.lsp = s.lspI[:0]
	e.vals = s.valsI[:0]
	e.lspNew = s.lspINew[:0]
	e.valNew = s.valsINew[:0]
	e.planeBits = s.planeBits[:0]
	e.planeErr2 = s.planeErr2[:0]
}

func (e *intEncoder) save(s *Scratch) {
	s.lisU = e.lis
	s.lspI = e.lsp
	s.valsI = e.vals
	s.lspINew = e.lspNew
	s.valsINew = e.valNew
	s.planeBits = e.planeBits
	s.planeErr2 = e.planeErr2
}

// quantize fills umags/mags/neg from coeffs and accumulates insigE2 in the
// float path's order (index order, sum of m*m).
func (e *intEncoder) quantize(coeffs []float64) {
	q := e.q
	for i, c := range coeffs {
		m := math.Abs(c)
		e.mags[i] = m
		e.neg[i] = math.Signbit(c)
		u := uint64(m / q)
		if math.FMA(-q, float64(u+1), m) >= 0 {
			u++
		} else if u > 0 && math.FMA(-q, float64(u), m) < 0 {
			u--
		}
		e.umags[i] = u
		e.insigE2 += m * m
	}
}

// encodeInt runs the integer traversal; (q, planes) must satisfy
// intPathEligible.
func encodeInt(coeffs []float64, dims grid.Dims, q float64, maxBits uint64, planes int, maxMag float64, s *Scratch) *Result {
	n := dims.Len()
	if s.w == nil {
		s.w = bits.NewWriter(n / 2)
		s.Grows++
	} else {
		s.w.Reset()
	}
	e := &intEncoder{
		dims: dims, q: q, w: s.w,
		budget: maxBits,
	}
	if maxBits == 0 {
		e.budget = math.MaxUint64
	}
	e.setup(s, n)
	e.quantize(coeffs)
	e.run(planes)
	e.save(s)
	if maxBits == 0 {
		// Untruncated stream: the full decode is reproducible from umags.
		s.canReplay = true
		s.replayQ = q
		s.replayN = n
		s.replayPlanes = planes
	}
	stream, bitsUsed := s.w.Close(), s.w.Len()
	if maxBits > 0 && bitsUsed > maxBits {
		bitsUsed = maxBits
	}
	if need := int((bitsUsed + 7) / 8); need < len(stream) {
		stream = stream[:need]
	}
	return &Result{
		Stream: stream, Bits: bitsUsed, NumPlanes: planes, MaxMag: maxMag,
		PlaneBits: e.planeBits, PlaneErr2: e.planeErr2,
	}
}

// ReplayScratch synthesizes the reconstruction that Decode(stream,
// res.Bits, dims, q, planes) would produce for the full stream of the
// immediately preceding EncodeScratch call on s, without touching the
// stream: every pixel with u = floor(|c|/q) > 0 is exactly the set the
// decoder discovers, and its value is rebuilt by replaying the decoder's
// float updates (1.5*thr at the discovery plane, then +-thr/2 per
// refinement bit) in the decoder's order, so the result is bit-identical
// to an actual decode. It reports ok=false — and the caller must fall
// back to a real decode — when the preceding encode did not take the
// integer path, was size-truncated, or does not match (dims, q).
//
// This is what makes the encoder-side outlier-location stage cheap: the
// pipeline needs "exactly what the decoder will see" and gets it here
// without re-running the set-partitioning traversal or the bit reads.
func ReplayScratch(dims grid.Dims, q float64, s *Scratch) ([]float64, bool) {
	n := dims.Len()
	if !s.canReplay || s.replayQ != q || s.replayN != n {
		return nil, false
	}
	if cap(s.out) < n {
		s.out = make([]float64, n)
		s.Grows++
	}
	out := s.out[:n]
	// thr and half per plane, computed with the decoder's expressions.
	var thrs, halfs [53]float64
	for p := 0; p < s.replayPlanes; p++ {
		thr := q * math.Pow(2, float64(p))
		thrs[p] = thr
		halfs[p] = thr / 2
	}
	sign := [2]float64{-1, 1} // exact +-1 multipliers: branch-free refinement
	for i, u := range s.umags[:n] {
		if u == 0 {
			out[i] = 0
			continue
		}
		top := mbits.Len64(u) - 1 // discovery plane
		val := 1.5 * thrs[top]
		for p := top - 1; p >= 0; p-- {
			val += halfs[p] * sign[(u>>uint(p))&1]
		}
		if s.neg[i] {
			val = -val
		}
		out[i] = val
	}
	return out, true
}

func (e *intEncoder) ensureDepth(d int) {
	for len(e.lis) <= d {
		e.lis = append(e.lis, nil)
	}
	if e.nd <= d {
		e.nd = d + 1
	}
}

func (e *intEncoder) boxMax(s *uset) uint64 {
	d := e.dims
	var m uint64
	for z := s.z; z < s.z+s.nz; z++ {
		for y := s.y; y < s.y+s.ny; y++ {
			off := (int(z)*d.NY + int(y)) * d.NX
			row := e.umags[off+int(s.x) : off+int(s.x)+int(s.nx)]
			for _, v := range row {
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

func (e *intEncoder) run(planes int) {
	root := uset{nx: int32(e.dims.NX), ny: int32(e.dims.NY), nz: int32(e.dims.NZ)}
	root.umax = e.boxMax(&root)
	// bits.Len64(root.umax) == planes always: NumPlanes picks the nmax with
	// q*2^nmax <= maxMag < q*2^(nmax+1), i.e. 2^nmax <= floor(maxMag/q) <
	// 2^(nmax+1).
	if mbits.Len64(root.umax) != planes {
		panic("speck: integer plane count disagrees with NumPlanes")
	}
	e.lis[0] = append(e.lis[0], root)
	for n := planes - 1; n >= 0; n-- {
		thr := e.q * math.Pow(2, float64(n))
		e.sortingPass(n, thr)
		if e.w.Len() >= e.budget {
			return
		}
		e.refinementPass(n, thr)
		e.recordPlane(thr)
		if e.w.Len() >= e.budget {
			return
		}
	}
}

// recordPlane mirrors the float encoder's plane record exactly: vals holds
// the same exact residuals, accumulated in the same LSP order.
func (e *intEncoder) recordPlane(thr float64) {
	err2 := e.insigE2
	half := thr / 2
	for _, v := range e.vals {
		r := v - half
		err2 += r * r
	}
	e.planeBits = append(e.planeBits, e.w.Len())
	e.planeErr2 = append(e.planeErr2, err2)
}

func (e *intEncoder) sortingPass(n int, thr float64) {
	thrU := uint64(1) << uint(n)
	for depth := e.nd - 1; depth >= 0; depth-- {
		if e.w.Len() >= e.budget {
			return
		}
		bucket := e.lis[depth]
		kept := bucket[:0]
		for i := range bucket {
			s := bucket[i]
			if s.umax >= thrU {
				e.w.WriteBit(true)
				e.descend(&s, depth, thrU, thr)
			} else {
				e.w.WriteBit(false)
				kept = append(kept, s)
			}
		}
		e.lis[depth] = kept
	}
}

func (e *intEncoder) descend(s *uset, depth int, thrU uint64, thr float64) {
	if s.single() {
		pos := int32(e.dims.Index(int(s.x), int(s.y), int(s.z)))
		e.w.WriteBit(e.neg[pos])
		m := e.mags[pos]
		e.lspNew = append(e.lspNew, pos)
		e.valNew = append(e.valNew, m-thr) // m in [thr, 2*thr): exact
		e.insigE2 -= m * m
		return
	}
	e.code(s, depth, thrU, thr)
}

func (e *intEncoder) code(s *uset, depth int, thrU uint64, thr float64) {
	var children [8]uset
	k := splitSetU(s, &children)
	childDepth := depth + 1
	e.ensureDepth(childDepth)
	anySig := false
	for i := 0; i < k; i++ {
		c := &children[i]
		c.umax = e.boxMax(c)
		sig := c.umax >= thrU
		if i == k-1 && !anySig {
			e.descend(c, childDepth, thrU, thr)
			return
		}
		if sig {
			anySig = true
			e.w.WriteBit(true)
			e.descend(c, childDepth, thrU, thr)
		} else {
			e.w.WriteBit(false)
			e.lis[childDepth] = append(e.lis[childDepth], *c)
		}
	}
}

// refinementPass emits bit n of every significant magnitude, batched into
// 64-bit words, and applies the float path's exact residual updates. The
// float path checks no budget mid-pass, so neither do we.
func (e *intEncoder) refinementPass(n int, thr float64) {
	shift := uint(n)
	var word uint64
	var nb uint
	for i, pos := range e.lsp {
		bit := (e.umags[pos] >> shift) & 1
		word |= bit << nb
		nb++
		if nb == 64 {
			e.w.WriteBits(word, 64)
			word, nb = 0, 0
		}
		if bit != 0 {
			e.vals[i] -= thr // val in [thr, 2*thr): exact
		}
	}
	if nb > 0 {
		e.w.WriteBits(word, nb)
	}
	e.lsp = append(e.lsp, e.lspNew...)
	e.vals = append(e.vals, e.valNew...)
	e.lspNew = e.lspNew[:0]
	e.valNew = e.valNew[:0]
}
