package speck

import (
	"sperr/internal/arith"
	"sperr/internal/bits"
	"sperr/internal/grid"
)

// Bit-stream abstraction: the SPECK traversal emits decision bits through
// a sink and replays them from a source. The raw implementations write
// bits verbatim (the paper's SPERR does exactly this); the arithmetic
// implementations code each bit under a per-context adaptive probability,
// the SPECK-AC variant of Pearlman et al. Contexts separate the three bit
// populations, whose statistics differ strongly.

// Coding contexts. Set-significance bits get one context per partition
// depth bucket (their zero-probability varies systematically with set
// size); signs and refinement bits get one context each (they are
// near-random, and the adaptive coder discovers that).
const (
	numSigCtx  = 8
	ctxSign    = numSigCtx
	ctxRefine  = numSigCtx + 1
	numContext = numSigCtx + 2
)

func sigCtx(depth int) int {
	if depth >= numSigCtx {
		return numSigCtx - 1
	}
	return depth
}

type sink interface {
	put(ctx int, b bool)
	// bits returns the output size so far in bits (exact for the raw
	// sink, a byte-granular estimate for the arithmetic sink).
	bits() uint64
	// finish returns the final stream and its exact bit length.
	finish() ([]byte, uint64)
}

type source interface {
	get(ctx int) bool
	// exhausted reports that a read ran past the available input (raw
	// source only; the arithmetic source synthesizes zero bytes instead,
	// as truncated AC streams are not meaningfully decodable anyway).
	exhausted() bool
}

// rawSink writes bits verbatim.
type rawSink struct{ w *bits.Writer }

func newRawSink(hint int) *rawSink { return &rawSink{w: bits.NewWriter(hint)} }

func (s *rawSink) put(_ int, b bool) { s.w.WriteBit(b) }
func (s *rawSink) bits() uint64      { return s.w.Len() }

// finish returns the writer's internal buffer without copying; it stays
// valid until the writer is Reset (scratch reuse copies it into the chunk
// payload before then).
func (s *rawSink) finish() ([]byte, uint64) {
	return s.w.Close(), s.w.Len()
}

type rawSource struct{ r *bits.Reader }

func (s *rawSource) get(_ int) bool  { return s.r.ReadBit() }
func (s *rawSource) exhausted() bool { return s.r.Exhausted() }

// acSink codes bits with the adaptive binary arithmetic coder.
type acSink struct {
	enc   *arith.Encoder
	probs [numContext]arith.Prob
	n     uint64
}

func newACSink() *acSink {
	s := &acSink{enc: arith.NewEncoder()}
	for i := range s.probs {
		s.probs[i] = arith.NewProb()
	}
	return s
}

func (s *acSink) put(ctx int, b bool) {
	s.enc.EncodeBit(&s.probs[ctx], b)
	s.n++
}

// bits reports the compressed size so far; used only for budget checks,
// which entropy mode does not support, so byte granularity is fine.
func (s *acSink) bits() uint64 { return uint64(s.enc.Len()) * 8 }

func (s *acSink) finish() ([]byte, uint64) {
	out := s.enc.Bytes()
	return out, uint64(len(out)) * 8
}

type acSource struct {
	dec   *arith.Decoder
	probs [numContext]arith.Prob
}

func newACSource(data []byte) *acSource {
	s := &acSource{dec: arith.NewDecoder(data)}
	for i := range s.probs {
		s.probs[i] = arith.NewProb()
	}
	return s
}

func (s *acSource) get(ctx int) bool { return s.dec.DecodeBit(&s.probs[ctx]) }
func (s *acSource) exhausted() bool  { return false }

// reset returns a pooled sink to its initial state.
func (s *acSink) reset() {
	s.enc.Reset()
	for i := range s.probs {
		s.probs[i] = arith.NewProb()
	}
	s.n = 0
}

// acSinkReset returns the scratch's pooled arithmetic sink, reset.
func (s *Scratch) acSinkReset() *acSink {
	if s.acs == nil {
		s.acs = newACSink()
		s.Grows++
	} else {
		s.acs.reset()
	}
	return s.acs
}

// acSourceReset returns the scratch's pooled arithmetic source,
// reinitialized over data.
func (s *Scratch) acSourceReset(data []byte) *acSource {
	if s.acsrc == nil {
		s.acsrc = newACSource(data)
		s.Grows++
		return s.acsrc
	}
	s.acsrc.dec.Reset(data)
	for i := range s.acsrc.probs {
		s.acsrc.probs[i] = arith.NewProb()
	}
	return s.acsrc
}

// EncodeEntropy is Encode with the arithmetic-coded bit layer (SPECK-AC).
// Quality-bounded mode only: entropy-coded streams are not bit-exactly
// truncatable, so there is no size-bounded variant.
func EncodeEntropy(coeffs []float64, dims grid.Dims, q float64) *Result {
	return encode(coeffs, dims, q, 0, true, 1, nil)
}

// EncodeEntropyScratch is EncodeEntropy with pooled buffers. On the
// integer-eligible path the decision sequence is produced by the
// octree-driven traversal, so SPECK-AC encode shares the raw path's
// preprocessing; the output is byte-identical to EncodeEntropy's.
func EncodeEntropyScratch(coeffs []float64, dims grid.Dims, q float64, s *Scratch) *Result {
	return encode(coeffs, dims, q, 0, true, 1, s)
}

// DecodeEntropy decodes a stream produced by EncodeEntropy.
func DecodeEntropy(stream []byte, dims grid.Dims, q float64, planes int) []float64 {
	return decode(stream, 0, dims, q, planes, true, 1, nil)
}

// DecodeEntropyScratch is DecodeEntropy with pooled buffers; the returned
// slice aliases s. workers splits the final reconstruction scatter (the
// range decode itself is a serial chain).
func DecodeEntropyScratch(stream []byte, dims grid.Dims, q float64, planes int, workers int, s *Scratch) []float64 {
	return decode(stream, 0, dims, q, planes, true, workers, s)
}
