package speck

import (
	"math"
	"testing"

	"sperr/internal/grid"
)

// decodeGeneralRef runs the reference list-based decoder — the general
// path decode() falls back to — directly, bypassing decodeFast's
// dispatch, so the fast path has an in-package oracle at any truncation
// point.
func decodeGeneralRef(stream []byte, bitsAvail uint64, dims grid.Dims, q float64, planes int, entropy bool) []float64 {
	s := &Scratch{}
	var src source
	if entropy {
		src = newACSource(stream)
	} else {
		s.r.Reset(stream, bitsAvail)
		src = &rawSource{r: &s.r}
	}
	d := &decoder{dims: dims, src: src}
	d.lis = s.resetLIS()
	d.nd = 1
	d.lsp = s.lsp[:0]
	d.lspNew = s.lspNew[:0]
	out := make([]float64, dims.Len())
	if planes <= 0 {
		return out
	}
	d.run(q, planes)
	for _, p := range d.lsp {
		v := p.val
		if p.neg {
			v = -v
		}
		out[p.pos] = v
	}
	for _, p := range d.lspNew {
		v := p.val
		if p.neg {
			v = -v
		}
		out[p.pos] = v
	}
	return out
}

// TestFastDecodeMatchesGeneral sweeps truncation points — plane
// boundaries, their neighbors, mid-pass cuts, and the degenerate 0/1-bit
// prefixes — asserting the phase-separated fast decoder reconstructs
// bit-identically to the reference traversal at every one.
func TestFastDecodeMatchesGeneral(t *testing.T) {
	for _, tc := range []struct {
		dims grid.Dims
		q    float64
	}{
		{grid.D3(16, 16, 16), 1e-3},
		{grid.D3(24, 17, 9), 1e-4},
		{grid.D2(31, 13), 1e-3},
	} {
		coeffs := parTestField(tc.dims, 11)
		res := Encode(coeffs, tc.dims, tc.q, 0)
		cuts := map[uint64]bool{0: true, 1: true, res.Bits: true}
		for _, pb := range res.PlaneBits {
			for _, d := range []int64{-7, -1, 0, 1, 7} {
				c := int64(pb) + d
				if c >= 0 && uint64(c) <= res.Bits {
					cuts[uint64(c)] = true
				}
			}
		}
		for f := 1; f < 8; f++ {
			cuts[res.Bits*uint64(f)/8] = true
		}
		for cut := range cuts {
			got := Decode(res.Stream, cut, tc.dims, tc.q, res.NumPlanes)
			want := decodeGeneralRef(res.Stream, cut, tc.dims, tc.q, res.NumPlanes, false)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v cut=%d: out[%d]=%x, want %x", tc.dims, cut, i, got[i], want[i])
				}
			}
		}
	}
}

// TestACDecodeMatchesGeneral pins the SPECK-AC decoder against the
// reference traversal fed by the same range-decoder source.
func TestACDecodeMatchesGeneral(t *testing.T) {
	dims := grid.D3(20, 20, 20)
	const q = 1e-3
	coeffs := parTestField(dims, 13)
	res := EncodeEntropy(coeffs, dims, q)
	got := DecodeEntropy(res.Stream, dims, q, res.NumPlanes)
	want := decodeGeneralRef(res.Stream, 0, dims, q, res.NumPlanes, true)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("out[%d]=%x, want %x", i, got[i], want[i])
		}
	}
}
