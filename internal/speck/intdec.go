package speck

import (
	"math"
	mbits "math/bits"

	"sperr/internal/grid"
	"sperr/internal/par"
)

// Fast phase-separated decoder. The general decoder (speck.go) interleaves
// float reconstruction updates with bit reads through a source interface;
// this path instead accumulates each discovered pixel's quantized
// magnitude u as integer bits — the discovery plane sets bit n, each
// refinement bit ORs into place — and materializes the float values once
// at the end with the same expressions, in the same per-pixel order, the
// general decoder would have used (discovery at 1.5*thr, then +-thr/2 per
// plane, descending). The final reconstruction is therefore bit-identical
// while the per-bit hot loop touches only the octree tables and two flat
// arrays, with no interface dispatch, and the final scatter parallelizes
// over disjoint output positions.
//
// The path covers complete streams and streams truncated exactly at a
// plane boundary (quality-bounded and ModeRMSE chunks). A stream that
// runs out mid-pass (arbitrary bit budgets, corrupt input) aborts and the
// caller re-runs the general decoder, whose partial-plane semantics are
// the contract; u accumulation cannot represent a half-applied plane.
// Streams with more than 64 planes exceed uint64 magnitudes and use the
// general decoder as well.

type intDecoder struct {
	tree *octree
	dims grid.Dims
	r    rawCursor
	ac   *acSource // nil = raw mode

	lis [][]int32
	nd  int
	// lspPos packs each discovered pixel's position with its sign bit in
	// bit 31 (positions are volume indexes, well under 2^31); one append
	// per leaf and a branch-free sign apply in reconstruct.
	lspPos []int32
	lspU   []uint64
}

// rawCursor is an inline bit reader over the stream: a budget compare and
// a shift per bit, no method values or interface headers on the hot path.
type rawCursor struct {
	buf    []byte
	pos    uint64
	budget uint64
	over   bool
}

func (c *rawCursor) bit() bool {
	if c.pos >= c.budget {
		c.over = true
		return false
	}
	b := c.buf[c.pos>>3]&(1<<(c.pos&7)) != 0
	c.pos++
	return b
}

// peek returns at least the next 57 readable bits (zero-padded past the
// data) without advancing. One unaligned load plus a shift in the common
// case; the caller must not consume more than 57 of them.
func (c *rawCursor) peek() uint64 {
	i := c.pos >> 3
	if i+8 <= uint64(len(c.buf)) {
		b := c.buf[i : i+8 : i+8]
		v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		return v >> (c.pos & 7)
	}
	var v uint64
	sh := uint(0)
	for j := i; j < uint64(len(c.buf)); j++ {
		v |= uint64(c.buf[j]) << sh
		sh += 8
	}
	return v >> (c.pos & 7)
}

// bits64 reads nb bits LSB-first; the caller has checked the budget.
func (c *rawCursor) bits64(nb uint) uint64 {
	pos := c.pos
	c.pos += uint64(nb)
	var v uint64
	got := uint(0)
	for got < nb {
		b := uint64(c.buf[pos>>3] >> (pos & 7))
		take := 8 - uint(pos&7)
		if take > nb-got {
			take = nb - got
			b &= (uint64(1) << take) - 1
		}
		v |= b << got
		got += take
		pos += uint64(take)
	}
	return v
}

// decodeFast reconstructs from the stream with the phase-separated path.
// It reports ok=false — with scratch state safe to reuse — when the
// stream requires the general decoder's partial-pass semantics.
func decodeFast(stream []byte, bitsAvail uint64, dims grid.Dims, q float64, planes int, entropy bool, workers int, s *Scratch) ([]float64, bool) {
	n := dims.Len()
	d := &intDecoder{dims: dims, tree: s.octreeFor(dims)}
	if entropy {
		d.ac = s.acSourceReset(stream)
	} else {
		max := uint64(len(stream)) * 8
		if bitsAvail > max {
			bitsAvail = max
		}
		d.r = rawCursor{buf: stream, budget: bitsAvail}
	}
	d.lis, _ = s.resetLISI()
	d.nd = 1
	d.lspPos = s.lspI[:0]
	d.lspU = s.ulsp[:0]
	d.lis[0] = append(d.lis[0], 0)
	floor := 0
	for p := planes - 1; p >= 0; p-- {
		if d.ac == nil && d.r.pos >= d.r.budget {
			// The stream ended exactly at a plane boundary: every decoded
			// plane is complete, so u-reconstruction with this floor equals
			// the general decoder's truncated result.
			floor = p + 1
			break
		}
		n0 := len(d.lspPos)
		if !d.sortingPass(p) || !d.refinementPass(p, n0) {
			d.save(s)
			return nil, false
		}
	}
	out := d.reconstruct(n, q, floor, planes, workers, s)
	d.save(s)
	return out, true
}

func (d *intDecoder) save(s *Scratch) {
	s.lisI = d.lis
	s.lspI = d.lspPos
	s.ulsp = d.lspU
}

func (d *intDecoder) ensureDepth(depth int) {
	for len(d.lis) <= depth {
		d.lis = append(d.lis, nil)
	}
	if d.nd <= depth {
		d.nd = depth + 1
	}
}

// sortingPass dispatches to the raw-specialized or AC traversal. On raw
// exhaustion it reports false with state discarded: the caller reruns the
// general decoder for partial-pass semantics. Raw mode consumes runs of
// zero decisions — the common case on every plane — a word-peek at a
// time: trailing-zero counts turn per-bit reads into bulk keeps.
func (d *intDecoder) sortingPass(n int) bool {
	for depth := d.nd - 1; depth >= 0; depth-- {
		bucket := d.lis[depth]
		kept := bucket[:0]
		if d.ac == nil {
			i, m := 0, len(bucket)
			for i < m {
				take := m - i
				if take > 56 {
					take = 56
				}
				if avail := d.r.budget - d.r.pos; uint64(take) > avail {
					take = int(avail)
					if take == 0 {
						d.r.over = true
						return false
					}
				}
				word := d.r.peek()
				tz := mbits.TrailingZeros64(word | 1<<uint(take))
				if tz > 0 {
					kept = append(kept, bucket[i:i+tz]...)
					i += tz
					d.r.pos += uint64(tz)
				}
				if tz < take {
					d.r.pos++ // the significance 1-bit
					node := bucket[i]
					i++
					if !d.descend(node, depth, n) {
						return false
					}
				}
			}
		} else {
			for _, node := range bucket {
				if d.ac.get(sigCtx(depth)) {
					d.descendAC(node, depth, n)
				} else {
					kept = append(kept, node)
				}
			}
		}
		d.lis[depth] = kept
	}
	return true
}

// descend is the raw-mode mirror of the encoder's traversal, reading the
// inline cursor directly. A brood's zero run — every child bit up to the
// next significant child — is consumed from one word peek instead of
// per-bit reads; the significant child's bits and recursive output stay
// interleaved in stream order. Before the first significant child only
// k-1-i bits are guaranteed present (the last child's bit is implied when
// it is the sole significant one), so the peek is capped accordingly and
// the implied case falls out as an all-zeros run.
func (d *intDecoder) descend(node int32, depth, n int) bool {
	t := d.tree
	nd := t.nod[node]
outer:
	for !nd.leaf() {
		first, k := nd.kids()
		childDepth := depth + 1
		depth = childDepth
		d.ensureDepth(childDepth)
		i := 0
		anySig := false
		for {
			take := k - i
			if !anySig {
				take-- // last child's bit may be implied
			}
			capped := false
			if avail := d.r.budget - d.r.pos; uint64(take) > avail {
				take = int(avail)
				capped = true
			}
			word := d.r.peek()
			tz := mbits.TrailingZeros64(word | 1<<uint(take))
			if tz > 0 {
				bucket := d.lis[childDepth]
				for j := 0; j < tz; j++ {
					bucket = append(bucket, first+int32(i+j))
				}
				d.lis[childDepth] = bucket
				i += tz
				d.r.pos += uint64(tz)
			}
			if tz == take {
				if capped {
					d.r.over = true
					return false
				}
				if !anySig {
					// All explicit bits were zero: the last child is the
					// sole significant one, its bit implied.
					node = first + int32(k-1)
					nd = t.nod[node]
					continue outer
				}
				return true
			}
			d.r.pos++ // the significance 1-bit
			if i == k-1 {
				node = first + int32(i)
				nd = t.nod[node]
				continue outer
			}
			anySig = true
			if !d.descend(first+int32(i), childDepth, n) {
				return false
			}
			i++
		}
	}
	neg := d.r.bit()
	if d.r.over {
		return false
	}
	pos := uint32(nd.pos())
	if neg {
		pos |= 1 << 31
	}
	d.lspPos = append(d.lspPos, int32(pos))
	d.lspU = append(d.lspU, uint64(1)<<uint(n))
	return true
}

// descendAC mirrors descend through the range decoder, which never
// exhausts (reads past the end synthesize zero bytes).
func (d *intDecoder) descendAC(node int32, depth, n int) {
	t := d.tree
	nd := t.nod[node]
	if nd.leaf() {
		pos := uint32(nd.pos())
		if d.ac.get(ctxSign) {
			pos |= 1 << 31
		}
		d.lspPos = append(d.lspPos, int32(pos))
		d.lspU = append(d.lspU, uint64(1)<<uint(n))
		return
	}
	first, k := nd.kids()
	childDepth := depth + 1
	d.ensureDepth(childDepth)
	anySig := false
	for i := 0; i < k; i++ {
		c := first + int32(i)
		if i == k-1 && !anySig {
			d.descendAC(c, childDepth, n)
			return
		}
		if d.ac.get(sigCtx(childDepth)) {
			anySig = true
			d.descendAC(c, childDepth, n)
		} else {
			d.lis[childDepth] = append(d.lis[childDepth], c)
		}
	}
}

// refinementPass ORs plane n's refinement bits into the first n0 pixels'
// magnitudes (the pixels discovered before this plane), word-batched in
// raw mode.
func (d *intDecoder) refinementPass(n, n0 int) bool {
	shift := uint(n)
	if d.ac != nil {
		for i := 0; i < n0; i++ {
			if d.ac.get(ctxRefine) {
				d.lspU[i] |= 1 << shift
			}
		}
		return true
	}
	if d.r.budget-d.r.pos < uint64(n0) {
		return false // plane cut mid-refinement: general decoder territory
	}
	i := 0
	for ; i+64 <= n0; i += 64 {
		word := d.r.bits64(64)
		for j := 0; j < 64; j++ {
			d.lspU[i+j] |= (word & 1) << shift
			word >>= 1
		}
	}
	if rem := n0 - i; rem > 0 {
		word := d.r.bits64(uint(rem))
		for j := 0; j < rem; j++ {
			d.lspU[i+j] |= (word & 1) << shift
			word >>= 1
		}
	}
	return true
}

// reconstruct materializes the output: zeros everywhere, and for each
// discovered pixel the decoder's float value rebuilt from its magnitude
// bits in the decoder's op order (1.5*thr at the top plane, +-thr/2 per
// refined plane descending to floor). Pixels scatter to disjoint
// positions, so the loop splits across workers.
func (d *intDecoder) reconstruct(n int, q float64, floor, planes, workers int, s *Scratch) []float64 {
	if cap(s.out) < n {
		s.out = make([]float64, n)
		s.Grows++
	}
	out := s.out[:n]
	for i := range out {
		out[i] = 0
	}
	var thrs, halfs [64]float64
	for p := floor; p < planes; p++ {
		thr := q * math.Pow(2, float64(p))
		thrs[p] = thr
		halfs[p] = thr / 2
	}
	sign := [2]float64{-1, 1}
	npix := len(d.lspPos)

	// Memoized reconstruction: val(u) depends only on u's bit pattern (and
	// floor), and obeys val(u) = fl(2*val(u>>1) +- halfs[floor]) — doubling
	// every intermediate of the shorter chain is exact and commutes with
	// each addition's rounding as long as no intermediate at either scale
	// is subnormal, so the table entry is bit-identical to the scalar
	// chain. Wavelet coefficients concentrate at small magnitudes, so a
	// table over u < 2^min(planes,16) covers almost every pixel with one
	// load instead of a serial FP add chain; larger magnitudes (the few
	// early discoveries) take the scalar loop. The subnormal guard keeps
	// the deepest half-scale chain normal (values stay above
	// halfs[floor]*2^-17 through 16 halvings).
	tb := planes
	if tb > 16 {
		tb = 16
	}
	tsize := 0
	var tab []float64
	if halfs[floor] >= 0x1p-1000 && npix >= 1<<uint(tb-4) {
		tsize = 1 << uint(tb)
		if cap(s.reconT) < tsize {
			s.reconT = make([]float64, tsize)
			s.Grows++
		}
		tab = s.reconT[:tsize]
		hb := halfs[floor]
		for w := 1; w < tsize; w++ {
			if t := mbits.Len64(uint64(w)) - 1; t <= floor {
				tab[w] = 1.5 * thrs[t]
			} else if (w>>uint(floor))&1 != 0 {
				tab[w] = 2*tab[w>>1] + hb
			} else {
				tab[w] = 2*tab[w>>1] - hb
			}
		}
	}

	th := par.Workers(workers, npix, 1<<13)
	par.Spans(npix, th, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			u := d.lspU[i]
			var val float64
			if u < uint64(tsize) {
				val = tab[u]
			} else {
				top := mbits.Len64(u) - 1
				val = 1.5 * thrs[top]
				for p := top - 1; p >= floor; p-- {
					val += halfs[p] * sign[(u>>uint(p))&1]
				}
			}
			// val > 0 always, so ORing the packed sign bit into the float
			// is an exact branch-free negate.
			pe := uint32(d.lspPos[i])
			vb := math.Float64bits(val) | uint64(pe>>31)<<63
			out[pe&0x7fffffff] = math.Float64frombits(vb)
		}
	})
	return out
}
