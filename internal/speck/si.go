package speck

import (
	"math"

	"sperr/internal/bits"
	"sperr/internal/grid"
	"sperr/internal/wavelet"
)

// This file implements the *classic* SPECK initialization (Pearlman et
// al. 2004): the LIS starts with S = the coarsest approximation band and
// I = everything else, and a significant I is partitioned into the three
// (2D) or seven (3D) detail bands of the next level plus a smaller I.
// SPERR — and this package's default Encode — instead start from one root
// set covering the whole volume and rely on the octree splits landing on
// the same subband boundaries. The S/I variant exists to quantify that
// design choice (ablation: the two differ by a handful of set-test bits
// at the top of the hierarchy).

// iset is an insignificant I-set: the volume minus the approximation box
// of the given level. Managed separately from the box LIS because its
// geometry is L-shaped.
type iset struct {
	level int
	max   float64 // encoder only
}

// siCoder holds the shared level geometry of the S/I variant.
type siGeom struct {
	dims   grid.Dims
	levels int
}

func newSIGeom(dims grid.Dims) siGeom {
	lx, ly, lz := wavelet.Levels(dims.NX), wavelet.Levels(dims.NY), wavelet.Levels(dims.NZ)
	l := lx
	if ly > l {
		l = ly
	}
	if lz > l {
		l = lz
	}
	return siGeom{dims: dims, levels: l}
}

// approxBox returns the approximation-band box at the given level.
func (g siGeom) approxBox(level int) set {
	return set{
		nx: int32(wavelet.CoarseLen(g.dims.NX, level)),
		ny: int32(wavelet.CoarseLen(g.dims.NY, level)),
		nz: int32(wavelet.CoarseLen(g.dims.NZ, level)),
	}
}

// bandBoxes returns the up-to-7 detail-band boxes of A(level-1) \ A(level):
// every octant of A(level-1) split at A(level)'s extents except the
// all-low corner.
func (g siGeom) bandBoxes(level int) []set {
	inner := g.approxBox(level)
	outer := g.approxBox(level - 1)
	type seg struct{ o, n int32 }
	segsFor := func(in, out int32) []seg {
		if out > in {
			return []seg{{0, in}, {in, out - in}}
		}
		return []seg{{0, in}}
	}
	xs := segsFor(inner.nx, outer.nx)
	ys := segsFor(inner.ny, outer.ny)
	zs := segsFor(inner.nz, outer.nz)
	var out []set
	for zi, zseg := range zs {
		for yi, yseg := range ys {
			for xi, xseg := range xs {
				if xi == 0 && yi == 0 && zi == 0 {
					continue // the all-low corner is A(level) itself
				}
				out = append(out, set{
					x: xseg.o, nx: xseg.n,
					y: yseg.o, ny: yseg.n,
					z: zseg.o, nz: zseg.n,
				})
			}
		}
	}
	return out
}

// EncodeSI is Encode with the classic S/I initialization, quality-bounded
// mode only. Provided for the partitioning-strategy ablation.
func EncodeSI(coeffs []float64, dims grid.Dims, q float64) *Result {
	n := dims.Len()
	if len(coeffs) != n {
		panic("speck: coefficient count does not match dims")
	}
	e := &encoder{
		dims:   dims,
		mags:   make([]float64, n),
		neg:    make([]bool, n),
		snk:    newRawSink(n / 2),
		budget: math.MaxUint64,
	}
	var maxMag float64
	for i, c := range coeffs {
		m := math.Abs(c)
		e.mags[i] = m
		e.neg[i] = math.Signbit(c)
		if m > maxMag {
			maxMag = m
		}
	}
	planes := NumPlanes(maxMag, q)
	if planes > 0 {
		g := newSIGeom(dims)
		e.runSI(g, q, planes)
	}
	stream, bitsUsed := e.snk.finish()
	return &Result{Stream: stream, Bits: bitsUsed, NumPlanes: planes, MaxMag: maxMag,
		PlaneBits: e.planeBits, PlaneErr2: e.planeErr2}
}

func (e *encoder) runSI(g siGeom, q float64, planes int) {
	root := g.approxBox(g.levels)
	root.max = e.boxMax(&root)
	e.lis = make([][]set, 1, 16)
	e.lis[0] = []set{root}
	e.nd = 1
	isets := []iset{}
	if g.levels > 0 {
		isets = append(isets, iset{level: g.levels, max: e.isetMax(g, g.levels)})
	}
	for _, v := range e.mags {
		e.insigE2 += v * v
	}
	for n := planes - 1; n >= 0; n-- {
		thr := q * math.Pow(2, float64(n))
		e.sortingPass(thr)
		isets = e.isetPass(g, isets, thr)
		e.refinementPass(thr)
		e.recordPlane(thr)
	}
}

// isetMax scans the volume minus the approximation box at level.
func (e *encoder) isetMax(g siGeom, level int) float64 {
	box := g.approxBox(level)
	d := g.dims
	m := 0.0
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			row := e.mags[(z*d.NY+y)*d.NX : (z*d.NY+y)*d.NX+d.NX]
			inBoxYZ := z < int(box.nz) && y < int(box.ny)
			for x, v := range row {
				if inBoxYZ && x < int(box.nx) {
					continue
				}
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

// isetPass tests the pending I-set (there is at most one) and, when
// significant, partitions it into the detail bands of its level plus a
// smaller I, processing the bands immediately as ordinary sets.
func (e *encoder) isetPass(g siGeom, isets []iset, thr float64) []iset {
	for len(isets) > 0 {
		is := isets[len(isets)-1]
		if is.max < thr {
			e.snk.put(sigCtx(0), false)
			return isets
		}
		e.snk.put(sigCtx(0), true)
		isets = isets[:len(isets)-1]
		for _, b := range g.bandBoxes(is.level) {
			if b.nx == 0 || b.ny == 0 || b.nz == 0 {
				continue
			}
			bb := b
			bb.max = e.boxMax(&bb)
			if bb.max >= thr {
				e.processSignificant(&bb, 0, thr)
			} else {
				e.snk.put(sigCtx(0), false)
				e.lis[0] = append(e.lis[0], bb)
			}
		}
		if is.level-1 > 0 {
			isets = append(isets, iset{level: is.level - 1, max: e.isetMax(g, is.level-1)})
		}
	}
	return isets
}

// DecodeSI decodes a stream produced by EncodeSI.
func DecodeSI(stream []byte, nbits uint64, dims grid.Dims, q float64, planes int) []float64 {
	d := &decoder{
		dims: dims,
		src:  &rawSource{r: bits.NewReaderBits(stream, nbits)},
	}
	out := make([]float64, dims.Len())
	if planes <= 0 {
		return out
	}
	g := newSIGeom(dims)
	d.runSI(g, q, planes)
	for _, p := range d.lsp {
		v := p.val
		if p.neg {
			v = -v
		}
		out[p.pos] = v
	}
	for _, p := range d.lspNew {
		v := p.val
		if p.neg {
			v = -v
		}
		out[p.pos] = v
	}
	return out
}

func (d *decoder) runSI(g siGeom, q float64, planes int) {
	root := g.approxBox(g.levels)
	d.lis = make([][]set, 1, 16)
	d.lis[0] = []set{root}
	d.nd = 1
	ilevel := 0
	if g.levels > 0 {
		ilevel = g.levels
	}
	for n := planes - 1; n >= 0; n-- {
		thr := q * math.Pow(2, float64(n))
		if !d.sortingPass(thr) {
			return
		}
		var ok bool
		ilevel, ok = d.isetPass(g, ilevel, thr)
		if !ok {
			return
		}
		if !d.refinementPass(thr) {
			return
		}
	}
}

func (d *decoder) isetPass(g siGeom, ilevel int, thr float64) (int, bool) {
	for ilevel > 0 {
		sig := d.src.get(sigCtx(0))
		if d.src.exhausted() {
			return ilevel, false
		}
		if !sig {
			return ilevel, true
		}
		for _, b := range g.bandBoxes(ilevel) {
			if b.nx == 0 || b.ny == 0 || b.nz == 0 {
				continue
			}
			bb := b
			bsig := d.src.get(sigCtx(0))
			if d.src.exhausted() {
				return 0, false
			}
			if bsig {
				if !d.descend(&bb, 0, thr) {
					return 0, false
				}
			} else {
				d.lis[0] = append(d.lis[0], bb)
			}
		}
		ilevel--
	}
	return 0, true
}
