package speck

import (
	"math"
	"testing"

	"sperr/internal/grid"
)

func intTestField(n int, seed uint64, scale float64) []float64 {
	data := make([]float64, n)
	s := seed | 1
	for i := range data {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		data[i] = (float64(int64(s)) / float64(1<<62)) * scale
	}
	// Sprinkle exact zeros and dead-zone values.
	for i := 0; i < n; i += 97 {
		data[i] = 0
	}
	return data
}

// The integer bit-plane path must produce streams bit-identical to the
// float reference path, along with identical plane records, across shapes,
// step sizes, and size budgets.
func TestIntPathMatchesFloatPath(t *testing.T) {
	cases := []struct {
		dims  grid.Dims
		q     float64
		scale float64
		bits  uint64
	}{
		{grid.Dims{NX: 16, NY: 16, NZ: 16}, 1e-3, 1.0, 0},
		{grid.Dims{NX: 16, NY: 16, NZ: 16}, 1e-3, 1.0, 5000},
		{grid.Dims{NX: 17, NY: 9, NZ: 5}, 3.7e-4, 10.0, 0},
		{grid.Dims{NX: 5, NY: 7, NZ: 3}, 0.125, 4.0, 0},
		{grid.Dims{NX: 1, NY: 64, NZ: 1}, 1e-2, 1.0, 0},
		{grid.Dims{NX: 24, NY: 17, NZ: 9}, 1e-6, 1.0, 0},     // many planes (~20)
		{grid.Dims{NX: 8, NY: 8, NZ: 8}, 1e-12, 1e3, 0},      // ~50 planes, near the 52 limit
		{grid.Dims{NX: 16, NY: 16, NZ: 1}, 2.5e-3, 1.0, 300}, // truncates mid-sorting
	}
	for ci, tc := range cases {
		coeffs := intTestField(tc.dims.Len(), uint64(ci)*0x9E3779B97F4A7C15+1, tc.scale)
		var maxMag float64
		for _, c := range coeffs {
			if m := math.Abs(c); m > maxMag {
				maxMag = m
			}
		}
		planes := NumPlanes(maxMag, tc.q)
		if !intPathEligible(tc.q, planes) {
			t.Fatalf("case %d: expected int-path eligibility (planes=%d)", ci, planes)
		}

		ref := encodeFloat(coeffs, tc.dims, tc.q, tc.bits, false, maxMag, planes, &Scratch{})
		got := encodeInt(coeffs, tc.dims, tc.q, tc.bits, planes, maxMag, false, 1, &Scratch{})

		if got.Bits != ref.Bits || got.NumPlanes != ref.NumPlanes || got.MaxMag != ref.MaxMag {
			t.Fatalf("case %d: header mismatch: bits %d/%d planes %d/%d max %v/%v",
				ci, got.Bits, ref.Bits, got.NumPlanes, ref.NumPlanes, got.MaxMag, ref.MaxMag)
		}
		if len(got.Stream) != len(ref.Stream) {
			t.Fatalf("case %d: stream length %d vs %d", ci, len(got.Stream), len(ref.Stream))
		}
		for i := range ref.Stream {
			if got.Stream[i] != ref.Stream[i] {
				t.Fatalf("case %d: stream byte %d differs: %02x vs %02x", ci, i, got.Stream[i], ref.Stream[i])
			}
		}
		if len(got.PlaneBits) != len(ref.PlaneBits) {
			t.Fatalf("case %d: plane count %d vs %d", ci, len(got.PlaneBits), len(ref.PlaneBits))
		}
		for i := range ref.PlaneBits {
			if got.PlaneBits[i] != ref.PlaneBits[i] {
				t.Fatalf("case %d: PlaneBits[%d] = %d, want %d", ci, i, got.PlaneBits[i], ref.PlaneBits[i])
			}
			if got.PlaneErr2[i] != ref.PlaneErr2[i] {
				t.Fatalf("case %d: PlaneErr2[%d] = %x, want %x", ci, i, got.PlaneErr2[i], ref.PlaneErr2[i])
			}
		}
	}
}

// Exhaustive quantizer check: the FMA-corrected division must compute
// floor(m/q) exactly, including at exact multiples of q.
func TestIntQuantizeExactFloor(t *testing.T) {
	qs := []float64{1e-3, 3.7e-4, 0.125, 1.0, 7.3e-10, 0x1p-1022}
	s := uint64(0x1234567)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for _, q := range qs {
		e := &intEncoder{q: q}
		var coeffs []float64
		for i := 0; i < 2000; i++ {
			u := next() % (1 << 30)
			switch i % 4 {
			case 0:
				coeffs = append(coeffs, q*float64(u)) // near-exact multiples
			case 1:
				coeffs = append(coeffs, q*(float64(u)+0.5))
			case 2:
				coeffs = append(coeffs, math.Nextafter(q*float64(u), 0))
			default:
				coeffs = append(coeffs, float64(int64(next()))/float64(1<<40)*q*1e6)
			}
		}
		e.pix = make([]cpix, len(coeffs))
		e.quantize(coeffs)
		for i, c := range coeffs {
			m := math.Abs(c)
			u := e.pix[i].u
			// Defining property of the exact floor: q*u <= m < q*(u+1),
			// tested with exact big-float arithmetic.
			if big := new(bigProd).set(q, u); big.gt(m) {
				t.Fatalf("q=%g m=%x: u=%d too big", q, m, u)
			}
			if big := new(bigProd).set(q, u+1); !big.gt(m) {
				t.Fatalf("q=%g m=%x: u=%d too small", q, m, u)
			}
		}
	}
}

// bigProd compares q*u against m exactly using a two-term (hi+lo) product.
type bigProd struct{ hi, lo float64 }

func (b *bigProd) set(q float64, u uint64) *bigProd {
	uf := float64(u)
	b.hi = q * uf
	b.lo = math.FMA(q, uf, -b.hi) // exact low part of the product
	return b
}

// gt reports q*u > m exactly.
func (b *bigProd) gt(m float64) bool {
	if b.hi != m {
		return b.hi > m
	}
	return b.lo > 0
}

// ne reports q*u != m exactly.
func (b *bigProd) ne(m float64) bool { return b.hi != m || b.lo != 0 }

// ReplayScratch must reproduce the decoder's reconstruction bit-for-bit.
func TestReplayMatchesDecode(t *testing.T) {
	cases := []struct {
		dims  grid.Dims
		q     float64
		scale float64
	}{
		{grid.Dims{NX: 16, NY: 16, NZ: 16}, 1e-3, 1.0},
		{grid.Dims{NX: 17, NY: 9, NZ: 5}, 3.7e-4, 10.0},
		{grid.Dims{NX: 5, NY: 7, NZ: 3}, 0.125, 4.0},
		{grid.Dims{NX: 24, NY: 17, NZ: 9}, 1e-6, 1.0},
	}
	for ci, tc := range cases {
		coeffs := intTestField(tc.dims.Len(), uint64(ci)*7919+3, tc.scale)
		s := &Scratch{}
		res := EncodeScratch(coeffs, tc.dims, tc.q, 0, s)
		replay, ok := ReplayScratch(tc.dims, tc.q, s)
		if !ok {
			t.Fatalf("case %d: replay refused", ci)
		}
		want := Decode(res.Stream, res.Bits, tc.dims, tc.q, res.NumPlanes)
		for i := range want {
			if replay[i] != want[i] {
				t.Fatalf("case %d: replay[%d] = %x, decode = %x", ci, i, replay[i], want[i])
			}
		}
	}
	// Size-truncated encodes must refuse replay.
	dims := grid.Dims{NX: 16, NY: 16, NZ: 16}
	coeffs := intTestField(dims.Len(), 5, 1.0)
	s := &Scratch{}
	EncodeScratch(coeffs, dims, 1e-3, 4000, s)
	if _, ok := ReplayScratch(dims, 1e-3, s); ok {
		t.Fatal("replay accepted a truncated encode")
	}
	// Mismatched q must refuse replay.
	EncodeScratch(coeffs, dims, 1e-3, 0, s)
	if _, ok := ReplayScratch(dims, 2e-3, s); ok {
		t.Fatal("replay accepted a mismatched q")
	}
}

// Integer-path streams must decode to the same reconstruction as before,
// including truncated prefixes.
func TestIntPathDecodeRoundTrip(t *testing.T) {
	dims := grid.Dims{NX: 24, NY: 17, NZ: 9}
	coeffs := intTestField(dims.Len(), 99, 5.0)
	q := 1e-4
	res := Encode(coeffs, dims, q, 0)
	var totalE2 float64
	for _, c := range coeffs {
		totalE2 += c * c
	}
	out := Decode(res.Stream, res.Bits, dims, q, res.NumPlanes)
	for i, c := range coeffs {
		if math.Abs(out[i]-c) >= q {
			t.Fatalf("coeff %d: |%v - %v| >= q", i, out[i], c)
		}
	}
	// Every plane prefix decodes without error and within its recorded L2.
	for pi, pb := range res.PlaneBits {
		part := Decode(res.Stream, pb, dims, q, res.NumPlanes)
		var err2 float64
		for i := range coeffs {
			d := part[i] - coeffs[i]
			err2 += d * d
		}
		// PlaneErr2 is bit-identical to the float path (tested separately);
		// against a freshly summed err2 the encoder's running subtraction
		// accumulates cancellation error proportional to the field energy.
		if err2 > res.PlaneErr2[pi]*(1+1e-6)+1e-9*totalE2 {
			t.Fatalf("plane %d: err2 %g exceeds recorded %g", pi, err2, res.PlaneErr2[pi])
		}
	}
}
