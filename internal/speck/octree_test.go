package speck

import (
	"math"
	mbits "math/bits"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

// octreeTestTops fills a tops table for coeffs exactly the way encodeInt
// does: quantized leaf bytes scattered through leafOf, then the bottom-up
// internal fill.
func octreeTestTops(tr *octree, coeffs []float64, q float64, workers int) []uint8 {
	tops := make([]uint8, tr.nodes())
	r := quantizeRecip(q)
	for i, c := range coeffs {
		u := quantizeOne(math.Abs(c), q, r)
		tops[tr.leafOf[i]] = leafTop(c, u)
	}
	tr.fillTops(tops, workers)
	return tops
}

// TestOctreeTopsMatchBruteForce re-enumerates the set-partitioning
// topology with the same BFS split rule and recomputes every node's box
// maximum by scanning its coefficients, asserting the precomputed table
// matches: node order, child placement, leaf positions, per-node top
// bytes, and leaf sign bits. Inputs cover random data plus the
// adversarial shapes the table's edge cases live on: all-zero volumes,
// a single spike, and odd/degenerate extents.
func TestOctreeTopsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		dims grid.Dims
		fill func(n int) []float64
	}{
		{"random-16cube", grid.D3(16, 16, 16), func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(20)-10))
			}
			return v
		}},
		{"all-zero", grid.D3(8, 8, 8), func(n int) []float64 {
			return make([]float64, n)
		}},
		{"single-spike", grid.D3(8, 8, 8), func(n int) []float64 {
			v := make([]float64, n)
			v[n/2] = -123.456
			return v
		}},
		{"odd-dims", grid.D3(7, 5, 3), func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}},
		{"prime-slab-2d", grid.D2(13, 11), func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}},
		{"single-point", grid.D3(1, 1, 1), func(n int) []float64 {
			return []float64{3.25}
		}},
		{"pencil", grid.D3(17, 1, 9), func(n int) []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dims := tc.dims
			coeffs := tc.fill(dims.Len())
			const q = 0.0625
			tr := buildOctree(dims)
			// Quantize once; the brute-force expectations below are built
			// from the same magnitudes.
			r := quantizeRecip(q)
			umag := make([]uint64, dims.Len())
			for i, c := range coeffs {
				umag[i] = quantizeOne(math.Abs(c), q, r)
			}
			// The parallel fill must agree with the serial one (writes are
			// disjoint, values depend only on deeper levels).
			tops := octreeTestTops(tr, coeffs, q, 1)
			topsPar := octreeTestTops(tr, coeffs, q, 3)
			for i := range tops {
				if tops[i] != topsPar[i] {
					t.Fatalf("node %d: serial fill %#x != parallel fill %#x", i, tops[i], topsPar[i])
				}
			}
			// Replay the BFS: box j here must be node j there.
			boxes := make([]uset, 1, tr.nodes())
			boxes[0] = uset{nx: int32(dims.NX), ny: int32(dims.NY), nz: int32(dims.NZ)}
			seenLeaf := make([]bool, dims.Len())
			for head := 0; head < len(boxes); head++ {
				b := boxes[head]
				nd := tr.nod[head]
				// Brute-force the box's top: max Len64(u) over its coefficients.
				var want uint8
				for z := b.z; z < b.z+b.nz; z++ {
					for y := b.y; y < b.y+b.ny; y++ {
						for x := b.x; x < b.x+b.nx; x++ {
							u := umag[dims.Index(int(x), int(y), int(z))]
							if v := uint8(mbits.Len64(u)); v > want {
								want = v
							}
						}
					}
				}
				if got := tops[head] & 0x7f; got != want {
					t.Fatalf("node %d (box %+v): top %d, brute-force %d", head, b, got, want)
				}
				if b.single() {
					pos := dims.Index(int(b.x), int(b.y), int(b.z))
					if !nd.leaf() {
						t.Fatalf("node %d: 1x1x1 box is not a leaf", head)
					}
					if int(nd.pos()) != pos {
						t.Fatalf("node %d: leaf pos %d, want %d", head, nd.pos(), pos)
					}
					if tr.leafOf[pos] != int32(head) {
						t.Fatalf("pos %d: leafOf %d, want %d", pos, tr.leafOf[pos], head)
					}
					if seenLeaf[pos] {
						t.Fatalf("pos %d: covered by two leaves", pos)
					}
					seenLeaf[pos] = true
					wantSign := math.Signbit(coeffs[pos])
					if got := tops[head]&0x80 != 0; got != wantSign {
						t.Fatalf("leaf %d: sign bit %v, want %v", head, got, wantSign)
					}
					continue
				}
				if nd.leaf() {
					t.Fatalf("node %d: %+v box marked leaf", head, b)
				}
				var ch [8]uset
				k := splitSetU(&b, &ch)
				first, gotK := nd.kids()
				if int(first) != len(boxes) || gotK != k {
					t.Fatalf("node %d: children (%d,%d), want (%d,%d)", head, first, gotK, len(boxes), k)
				}
				boxes = append(boxes, ch[:k]...)
			}
			if len(boxes) != tr.nodes() {
				t.Fatalf("enumerated %d boxes, tree has %d nodes", len(boxes), tr.nodes())
			}
			for pos, ok := range seenLeaf {
				if !ok {
					t.Fatalf("pos %d: no leaf covers it", pos)
				}
			}
			// Level boundaries: every child of a level-d node sits in level d+1.
			levelOf := make([]int, tr.nodes())
			for d := 0; d+1 < len(tr.levels); d++ {
				for i := tr.levels[d]; i < tr.levels[d+1]; i++ {
					levelOf[i] = d
				}
			}
			for i, nd := range tr.nod {
				if nd.leaf() {
					continue
				}
				first, k := nd.kids()
				for j := 0; j < k; j++ {
					if levelOf[int(first)+j] != levelOf[i]+1 {
						t.Fatalf("node %d (level %d): child %d on level %d",
							i, levelOf[i], int(first)+j, levelOf[int(first)+j])
					}
				}
			}
		})
	}
}

// TestChildMaskExhaustive checks the SWAR brood-significance compare
// against the scalar definition for every one of the 256 possible
// equal/not-equal patterns, at several p1 values and child counts,
// including the truncated fallback near the end of the table.
func TestChildMaskExhaustive(t *testing.T) {
	for _, p1 := range []uint8{1, 7, 52, 53} {
		for pattern := 0; pattern < 256; pattern++ {
			var tops [16]uint8
			for j := 0; j < 8; j++ {
				if pattern&(1<<j) != 0 {
					tops[j] = p1
				} else {
					// A non-matching byte, possibly with the sign bit set.
					tops[j] = (p1 + 1 + uint8(j)) % 54
					if tops[j] == p1 {
						tops[j]++
					}
					if j%2 == 0 {
						tops[j] |= 0x80
					}
				}
			}
			// Sign bits on matching bytes must not break the compare.
			if pattern&1 != 0 {
				tops[0] |= 0x80
			}
			for k := 1; k <= 8; k++ {
				got := childMask(tops[:8], 0, k, p1)
				var want uint32
				for j := 0; j < k; j++ {
					if tops[j]&0x7f == p1 {
						want |= 1 << j
					}
				}
				if got != want {
					t.Fatalf("p1=%d pattern=%08b k=%d: mask %08b, want %08b", p1, pattern, k, got, want)
				}
				// Short-table fallback path.
				short := tops[:k]
				if got := childMask(short, 0, k, p1); got != want {
					t.Fatalf("p1=%d pattern=%08b k=%d (short): mask %08b, want %08b", p1, pattern, k, got, want)
				}
			}
		}
	}
}
