package speck

import (
	"sperr/internal/grid"
	"sperr/internal/par"
)

// The significance octree. SPECK's set-partitioning topology is a pure
// function of the volume dims: every set the traversal can ever visit is
// produced by the same ceil(n/2) splits, in the same order, at the same
// depth. Materializing that topology once — nodes in BFS order, children
// contiguous — turns the per-plane significance test from a box re-scan
// (O(planes x coeffs) over the whole encode) into a table lookup against
// a per-node max-magnitude array filled in a single bottom-up pass over
// the quantized magnitudes. A node's BFS level equals its LIS bucket
// depth, so the traversal's depth bookkeeping carries over unchanged.
//
// The topology is cached per dims on the Scratch (a worker re-encoding
// same-shaped chunks builds it once); the max table is refilled per call.
// onode packs one set node into four bytes — bit 31 set marks a leaf (a
// 1x1x1 set) whose low 31 bits are its coefficient's position; otherwise
// bits 28..30 hold the child count minus one (splits produce 1..8
// children) and the low 28 bits the index of the first child (children
// are contiguous, and always on the next BFS level). Halving the record
// keeps twice as many nodes cache-resident on the traversals' hot entry
// load; maxOctreeLen keeps node indexes inside the 28-bit field.
type onode uint32

// maxOctreeLen caps the volume size taking the octree-table paths: a
// volume of n coefficients yields under n + n/6 + 16 nodes, so 2^27
// coefficients stay comfortably inside onode's 28-bit child index.
// Larger volumes use the float/general paths, which split boxes
// recursively and need no node table.
const maxOctreeLen = 1 << 27

func leafNode(pos int32) onode        { return onode(1<<31 | uint32(pos)) }
func internalNode(first, k int) onode { return onode(uint32(k-1)<<28 | uint32(first)) }

func (n onode) leaf() bool { return int32(n) < 0 }
func (n onode) pos() int32 { return int32(n) & 0x7fffffff }
func (n onode) kids() (first int32, k int) {
	return int32(n & (1<<28 - 1)), int(n>>28&7) + 1
}

type octree struct {
	dims grid.Dims
	// nod holds the nodes in BFS order.
	nod []onode
	// levels are the BFS level boundaries: the nodes of depth d occupy
	// [levels[d], levels[d+1]). len(levels)-1 is the depth count.
	levels []int32
	// leafOf[pos] is the node id of the leaf holding coefficient pos, so
	// the quantize pass can scatter leaf top bytes as it streams through
	// the coefficients (stores don't stall; the gathers a separate leaf
	// pass would do miss all the way down).
	leafOf []int32
}

// buildOctree materializes the set-partitioning topology for dims by
// breadth-first splitting from the root box, children in splitSetU order
// so node order matches the recursive traversal's sibling order.
func buildOctree(dims grid.Dims) *octree {
	n := dims.Len()
	est := n + n/6 + 16
	t := &octree{dims: dims}
	t.nod = make([]onode, 1, est)
	t.leafOf = make([]int32, n)
	boxes := make([]uset, 1, est)
	boxes[0] = uset{nx: int32(dims.NX), ny: int32(dims.NY), nz: int32(dims.NZ)}
	t.levels = append(t.levels, 0, 1)
	nextEnd := 1
	for head := 0; head < len(boxes); head++ {
		if head == nextEnd {
			nextEnd = len(boxes)
			t.levels = append(t.levels, int32(nextEnd))
		}
		b := boxes[head]
		if b.single() {
			pos := int32(dims.Index(int(b.x), int(b.y), int(b.z)))
			t.nod[head] = leafNode(pos)
			t.leafOf[pos] = int32(head)
			continue
		}
		var ch [8]uset
		k := splitSetU(&b, &ch)
		t.nod[head] = internalNode(len(boxes), k)
		boxes = append(boxes, ch[:k]...)
		for j := 0; j < k; j++ {
			t.nod = append(t.nod, onode(0))
		}
	}
	return t
}

// nodes returns the total node count.
func (t *octree) nodes() int { return len(t.nod) }

// fillTops computes the internal nodes' significance tops into tops (len
// >= t.nodes()), bottom-up one BFS level at a time; the leaf entries must
// already be present (the quantize pass scatters them via leafOf as it
// streams the coefficients). A node's entry is bits.Len64 of its box's
// maximum quantized magnitude — the 1-based index of the highest set bit
// plane, 0 for an all-zero box. Floor-log2 is monotone, so an internal
// node's entry is just the max of its children's (already filled) bytes.
// Leaf bytes additionally carry the coefficient's sign in bit 7 (tops
// values stop at 53), so discovery can emit the sign bit without touching
// the pixel record; consumers mask with 0x7f. One byte per node instead
// of the full 8-byte maxima keeps the whole table cache-resident during
// traversal, and significance at plane p collapses to the equality
// tops[node]&0x7f == p+1: an LIS entry was insignificant at every earlier
// (higher) plane, so its top is at most p+1. Levels are processed with up
// to threads parallel spans; writes are disjoint and each value depends
// only on deeper levels, so the result is independent of scheduling.
func (t *octree) fillTops(tops []uint8, threads int) {
	// The deepest BFS level is all leaves — already written by quantize.
	for lv := len(t.levels) - 3; lv >= 0; lv-- {
		lo, hi := int(t.levels[lv]), int(t.levels[lv+1])
		th := par.Workers(threads, hi-lo, 4096)
		par.Spans(hi-lo, th, func(_, a, b int) {
			for i := lo + a; i < lo+b; i++ {
				nd := t.nod[i]
				if nd.leaf() {
					continue // mid-tree leaf: written by quantize
				}
				f, k := nd.kids()
				first := int(f)
				m := tops[first] & 0x7f
				for j := 1; j < k; j++ {
					if v := tops[first+j] & 0x7f; v > m {
						m = v
					}
				}
				tops[i] = m
			}
		})
	}
}

// octreeFor returns the topology for dims from the scratch's small MRU
// cache, building it on a miss. Chunked pipelines see at most a handful
// of shapes (interior chunks plus boundary remainders), so a four-entry
// cache makes rebuilds rare without holding every shape ever seen.
func (s *Scratch) octreeFor(dims grid.Dims) *octree {
	for i, t := range s.trees {
		if t.dims == dims {
			if i != 0 {
				copy(s.trees[1:i+1], s.trees[:i])
				s.trees[0] = t
			}
			return t
		}
	}
	t := buildOctree(dims)
	if len(s.trees) < 4 {
		s.trees = append(s.trees, nil)
	}
	copy(s.trees[1:], s.trees)
	s.trees[0] = t
	s.Grows++
	return t
}
