package speck

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

// parTestField builds a mixed smooth+noise volume with a wide magnitude
// spread so mid planes carry LIS populations past the speculative-pass
// work thresholds.
func parTestField(dims grid.Dims, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, dims.Len())
	i := 0
	for z := 0; z < dims.NZ; z++ {
		for y := 0; y < dims.NY; y++ {
			for x := 0; x < dims.NX; x++ {
				v[i] = math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y)+0.1*float64(z)) +
					0.03*rng.NormFloat64()
				i++
			}
		}
	}
	return v
}

// TestEncodeIdenticalAcrossWorkers is the determinism contract of the
// speculative subband coder: the stream, its exact bit count, and the
// plane records (bit offsets and float error sums, compared bitwise) must
// be byte-for-byte identical at every worker count. The 32^3 and 40^3
// cases carry enough per-pass work to actually engage the parallel
// sorting and refinement passes.
func TestEncodeIdenticalAcrossWorkers(t *testing.T) {
	cases := []struct {
		dims grid.Dims
		q    float64
	}{
		{grid.D3(32, 32, 32), 1e-4},
		{grid.D3(40, 40, 40), 1e-5},
		{grid.D3(24, 17, 9), 1e-3},
		{grid.D3(33, 31, 29), 1e-4},
	}
	for _, tc := range cases {
		base := EncodeScratchWorkers(parTestField(tc.dims, 7), tc.dims, tc.q, 0, 1, nil)
		for _, workers := range []int{2, 3, 8} {
			var s Scratch
			coeffs := parTestField(tc.dims, 7)
			// Twice on the same scratch: a warmed arena must not change the
			// output either.
			for round := 0; round < 2; round++ {
				r := EncodeScratchWorkers(coeffs, tc.dims, tc.q, 0, workers, &s)
				if !bytes.Equal(r.Stream, base.Stream) {
					t.Fatalf("%v workers=%d round=%d: stream differs from serial (%d vs %d bytes)",
						tc.dims, workers, round, len(r.Stream), len(base.Stream))
				}
				if r.Bits != base.Bits || r.NumPlanes != base.NumPlanes {
					t.Fatalf("%v workers=%d: bits/planes (%d,%d) vs serial (%d,%d)",
						tc.dims, workers, r.Bits, r.NumPlanes, base.Bits, base.NumPlanes)
				}
				if len(r.PlaneBits) != len(base.PlaneBits) {
					t.Fatalf("%v workers=%d: %d plane records vs %d",
						tc.dims, workers, len(r.PlaneBits), len(base.PlaneBits))
				}
				for i := range r.PlaneBits {
					if r.PlaneBits[i] != base.PlaneBits[i] {
						t.Fatalf("%v workers=%d: PlaneBits[%d] %d vs %d",
							tc.dims, workers, i, r.PlaneBits[i], base.PlaneBits[i])
					}
					if math.Float64bits(r.PlaneErr2[i]) != math.Float64bits(base.PlaneErr2[i]) {
						t.Fatalf("%v workers=%d: PlaneErr2[%d] %x vs %x",
							tc.dims, workers, i, r.PlaneErr2[i], base.PlaneErr2[i])
					}
				}
			}
		}
		// Decoder-side worker counts must not change the reconstruction.
		ref := Decode(base.Stream, base.Bits, tc.dims, tc.q, base.NumPlanes)
		for _, workers := range []int{2, 8} {
			var s Scratch
			out := DecodeScratchWorkers(base.Stream, base.Bits, tc.dims, tc.q, base.NumPlanes, workers, &s)
			for i := range out {
				if math.Float64bits(out[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("%v decode workers=%d: out[%d]=%x, want %x",
						tc.dims, workers, i, out[i], ref[i])
				}
			}
		}
	}
}
