package speck

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

// The per-plane error estimate must match the error of an actual decode
// truncated at the same plane boundary: this is the invariant behind the
// average-error-targeted mode (paper Section VII).
func TestPlaneStatsMatchDecode(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(3))
	coeffs := randCoeffs(rng, d.Len())
	q := 0.05
	res := Encode(coeffs, d, q, 0)
	if len(res.PlaneBits) != res.NumPlanes {
		t.Fatalf("PlaneBits has %d entries for %d planes", len(res.PlaneBits), res.NumPlanes)
	}
	for i := range res.PlaneBits {
		rec := Decode(res.Stream, res.PlaneBits[i], d, q, res.NumPlanes)
		var err2 float64
		for j := range coeffs {
			e := rec[j] - coeffs[j]
			err2 += e * e
		}
		est := res.PlaneErr2[i]
		// The incremental energy tracking accumulates tiny rounding
		// differences relative to the direct sum.
		if math.Abs(err2-est) > 1e-6*(1+err2) {
			t.Errorf("plane %d: estimated err2 %g, actual %g", i, est, err2)
		}
	}
}

// Plane errors must decrease monotonically and bits increase.
func TestPlaneStatsMonotone(t *testing.T) {
	d := grid.D2(32, 32)
	rng := rand.New(rand.NewSource(8))
	coeffs := randCoeffs(rng, d.Len())
	res := Encode(coeffs, d, 0.01, 0)
	for i := 1; i < len(res.PlaneBits); i++ {
		if res.PlaneBits[i] <= res.PlaneBits[i-1] {
			t.Errorf("plane %d: bits %d not increasing", i, res.PlaneBits[i])
		}
		if res.PlaneErr2[i] > res.PlaneErr2[i-1]*(1+1e-12) {
			t.Errorf("plane %d: err2 %g not decreasing from %g",
				i, res.PlaneErr2[i], res.PlaneErr2[i-1])
		}
	}
	if n := len(res.PlaneErr2); n > 0 {
		// After the final plane every coded coefficient is within q/2.
		bound := float64(d.Len()) * 0.01 * 0.01
		if res.PlaneErr2[n-1] > bound*float64(d.Len()) {
			t.Errorf("final plane err2 %g implausibly large", res.PlaneErr2[n-1])
		}
	}
}
