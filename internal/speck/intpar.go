package speck

import (
	"math"

	"sperr/internal/bits"
	"sperr/internal/par"
)

// Speculative parallel passes for the integer encoder. A sorting pass
// decomposes exactly over a snapshot of the LIS: every item (set still in
// a bucket at pass start) is tested and, if significant, descended
// independently — descent touches only the item's own subtree, and the
// children it inserts land in buckets the pass has already visited, so no
// item's processing can observe another's output. The items, flattened in
// the serial pass's canonical order (deepest bucket first, bucket order
// within a depth), are split into contiguous spans via par.Split; each
// span encodes into a private bit buffer and records its side effects
// (kept sets, new LIS children per depth, discovered pixels, subtracted
// energies) in private lists. Splicing the buffers and replaying the side
// effects in span order then reproduces the serial coder's stream, LIS,
// LSP, and float accumulation order bit-for-bit — the merge is pure
// concatenation, so output is byte-identical at any worker count. The
// refinement pass is a trivially disjoint map over the LSP and splices
// the same way. Speculative passes run only in quality-bounded raw mode:
// size-bounded encodes stop mid-pass at the bit budget (inherently
// sequential), and the range coder's adaptive state is a serial chain.

// Minimum work per pass before the spawn-and-splice overhead pays off.
const (
	minSortPar   = 2048
	minRefinePar = 4096
)

// encSpan is one worker's private output for a speculative pass. The
// writer is held by value so pooled spans carry their buffers across
// calls.
type encSpan struct {
	w       bits.Writer
	kept    [][]int32 // insignificant items to keep, per depth
	keptT   [][]uint8 // top bytes parallel to kept
	newLIS  [][]int32 // insignificant children discovered, per depth
	newLIST [][]uint8 // top bytes parallel to newLIS
	lspNew  []int32
	uNew    []uint64
	valNew  []float64
	m2      []float64 // m*m of discovered pixels, in discovery order
	maxd    int       // deepest depth a split reached (serial nd update)
}

func (sp *encSpan) reset(depths int) {
	sp.w.Reset()
	for len(sp.kept) < depths {
		sp.kept = append(sp.kept, nil)
		sp.keptT = append(sp.keptT, nil)
		sp.newLIS = append(sp.newLIS, nil)
		sp.newLIST = append(sp.newLIST, nil)
	}
	for d := 0; d < depths; d++ {
		sp.kept[d] = sp.kept[d][:0]
		sp.keptT[d] = sp.keptT[d][:0]
		sp.newLIS[d] = sp.newLIS[d][:0]
		sp.newLIST[d] = sp.newLIST[d][:0]
	}
	sp.lspNew = sp.lspNew[:0]
	sp.uNew = sp.uNew[:0]
	sp.valNew = sp.valNew[:0]
	sp.m2 = sp.m2[:0]
	sp.maxd = 0
}

// sortingPassPar runs the sorting pass speculatively across workers and
// merges deterministically. It reports false — leaving all state
// untouched — when the pass must run serially (AC mode, size-bounded
// mode, too little work, or a single worker).
func (e *intEncoder) sortingPassPar(n int, thr float64) bool {
	if e.ac != nil || e.budget != math.MaxUint64 {
		return false
	}
	total := 0
	for d := 0; d < e.nd; d++ {
		total += len(e.lis[d])
	}
	th := par.Workers(e.workers, total, minSortPar)
	if th <= 1 {
		return false
	}
	// Flatten the LIS snapshot in canonical pass order: depth high to low,
	// bucket order within a depth. Each packed item is (depth<<40 |
	// top<<32 | node) — carrying the top byte keeps the span loop's
	// significance test off the shared tops table.
	items := e.items[:0]
	for depth := e.nd - 1; depth >= 0; depth-- {
		bt := e.lisT[depth]
		for bi, node := range e.lis[depth] {
			items = append(items, uint64(depth)<<40|uint64(bt[bi])<<32|uint64(uint32(node)))
		}
	}
	e.items = items
	e.cuts = par.Split(e.cuts[:0], total, th)
	nspans := len(e.cuts) - 1
	for len(e.spans) < nspans {
		e.spans = append(e.spans, encSpan{})
	}
	depths := len(e.tree.levels)
	p1 := uint8(n + 1)
	par.Spans(total, th, func(w, lo, hi int) {
		sp := &e.spans[w]
		sp.reset(depths)
		for _, it := range items[lo:hi] {
			node := int32(uint32(it))
			top := uint8(it >> 32)
			depth := int(it >> 40)
			if top == p1 {
				sp.w.WriteBit(true)
				e.descendSpan(sp, node, depth, p1, thr)
			} else {
				sp.w.WriteBit(false)
				sp.kept[depth] = append(sp.kept[depth], node)
				sp.keptT[depth] = append(sp.keptT[depth], top)
			}
		}
	})
	// Deterministic merge in span order: the concatenations below are the
	// serial pass's outputs in the serial pass's order.
	for w := 0; w < nspans; w++ {
		e.w.WriteStream(&e.spans[w].w)
	}
	maxd := e.nd - 1
	for w := 0; w < nspans; w++ {
		if m := e.spans[w].maxd; m > maxd {
			maxd = m
		}
	}
	for d := 0; d <= maxd; d++ {
		e.ensureDepth(d)
		dst := e.lis[d][:0]
		dstT := e.lisT[d][:0]
		for w := 0; w < nspans; w++ {
			if d < len(e.spans[w].kept) {
				dst = append(dst, e.spans[w].kept[d]...)
				dstT = append(dstT, e.spans[w].keptT[d]...)
			}
		}
		for w := 0; w < nspans; w++ {
			if d < len(e.spans[w].newLIS) {
				dst = append(dst, e.spans[w].newLIS[d]...)
				dstT = append(dstT, e.spans[w].newLIST[d]...)
			}
		}
		e.lis[d] = dst
		e.lisT[d] = dstT
	}
	if e.nd <= maxd {
		e.nd = maxd + 1
	}
	for w := 0; w < nspans; w++ {
		sp := &e.spans[w]
		e.lsp = append(e.lsp, sp.lspNew...)
		e.ulsp = append(e.ulsp, sp.uNew...)
		e.vals = append(e.vals, sp.valNew...)
		for _, m2 := range sp.m2 {
			e.insigE2 -= m2
		}
	}
	return true
}

// descendSpan is descend writing to a span's private output instead of
// the encoder's shared state. The shared fields it reads (tree, tops,
// pix) are immutable during the pass.
func (e *intEncoder) descendSpan(sp *encSpan, node int32, depth int, p1 uint8, thr float64) {
	t := e.tree
	nd := t.nod[node]
	if nd.leaf() {
		pos := nd.pos()
		px := e.pix[pos]
		sp.w.WriteBit(e.tops[node]&0x80 != 0)
		m := math.Abs(px.c)
		sp.lspNew = append(sp.lspNew, pos)
		sp.uNew = append(sp.uNew, px.u)
		sp.valNew = append(sp.valNew, m-thr)
		sp.m2 = append(sp.m2, m*m)
		return
	}
	first, k := nd.kids()
	childDepth := depth + 1
	if sp.maxd < childDepth {
		sp.maxd = childDepth
	}
	anySig := false
	for i := 0; i < k; i++ {
		c := first + int32(i)
		sig := e.tops[c]&0x7f == p1
		if i == k-1 && !anySig {
			e.descendSpan(sp, c, childDepth, p1, thr)
			return
		}
		if sig {
			anySig = true
			sp.w.WriteBit(true)
			e.descendSpan(sp, c, childDepth, p1, thr)
		} else {
			sp.w.WriteBit(false)
			sp.newLIS[childDepth] = append(sp.newLIS[childDepth], c)
			sp.newLIST[childDepth] = append(sp.newLIST[childDepth], e.tops[c]&0x7f)
		}
	}
}

// refinementPassPar emits the refinement plane across workers: bit
// extraction and the exact residual updates are elementwise over the LSP,
// so spans write disjoint slices and private bit buffers spliced in span
// order equal the serial stream. Reports false when the pass must run
// serially.
func (e *intEncoder) refinementPassPar(n int, thr float64, n0 int) bool {
	if e.ac != nil || e.budget != math.MaxUint64 {
		return false
	}
	th := par.Workers(e.workers, n0, minRefinePar)
	if th <= 1 {
		return false
	}
	e.cuts = par.Split(e.cuts[:0], n0, th)
	nspans := len(e.cuts) - 1
	for len(e.spans) < nspans {
		e.spans = append(e.spans, encSpan{})
	}
	shift := uint(n)
	par.Spans(n0, th, func(w, lo, hi int) {
		sp := &e.spans[w]
		sp.w.Reset()
		var word uint64
		var nb uint
		for i := lo; i < hi; i++ {
			bit := (e.ulsp[i] >> shift) & 1
			word |= bit << nb
			nb++
			if nb == 64 {
				sp.w.WriteBits(word, 64)
				word, nb = 0, 0
			}
			e.vals[i] -= thr * float64(bit)
		}
		if nb > 0 {
			sp.w.WriteBits(word, nb)
		}
	})
	for w := 0; w < nspans; w++ {
		e.w.WriteStream(&e.spans[w].w)
	}
	return true
}
