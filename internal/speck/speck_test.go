package speck

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func randCoeffs(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		// Heavy-tailed, like wavelet coefficients of real data.
		s[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*2)
	}
	return s
}

func TestNumPlanes(t *testing.T) {
	cases := []struct {
		maxMag, q float64
		want      int
	}{
		{0, 1, 0},
		{0.5, 1, 0},
		{1, 1, 1},     // n=0: q*2^0 <= 1
		{1.9, 1, 1},   // only n=0
		{2, 1, 2},     // n=1: 2 <= 2
		{3.9, 1, 2},   //
		{4, 1, 3},     //
		{1024, 1, 11}, //
		{3, 1.5, 2},   // q=1.5: 1.5*2=3 <= 3
		{2.9, 1.5, 1},
	}
	for _, c := range cases {
		if got := NumPlanes(c.maxMag, c.q); got != c.want {
			t.Errorf("NumPlanes(%g, %g) = %d, want %d", c.maxMag, c.q, got, c.want)
		}
	}
}

// Full decode (quality mode) must reconstruct every coefficient outside the
// dead zone to within q/2, and dead-zone coefficients to zero.
func TestQualityModeErrorBound(t *testing.T) {
	for _, d := range []grid.Dims{
		grid.D3(8, 8, 8),
		grid.D3(16, 16, 16),
		grid.D3(13, 7, 5),
		grid.D2(32, 32),
		grid.D2(31, 17),
		grid.D3(1, 1, 64), // degenerate 1D layout
	} {
		rng := rand.New(rand.NewSource(int64(d.Len())))
		coeffs := randCoeffs(rng, d.Len())
		q := 0.25
		res := Encode(coeffs, d, q, 0)
		got := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
		for i, want := range coeffs {
			if math.Abs(want) < q {
				if got[i] != 0 {
					t.Fatalf("%v idx %d: dead-zone coeff %g decoded as %g, want 0", d, i, want, got[i])
				}
				continue
			}
			if err := math.Abs(got[i] - want); err > q/2+1e-12 {
				t.Fatalf("%v idx %d: coeff %g decoded as %g, error %g > q/2=%g",
					d, i, want, got[i], err, q/2)
			}
		}
	}
}

func TestSignsPreserved(t *testing.T) {
	d := grid.D3(8, 8, 8)
	coeffs := make([]float64, d.Len())
	rng := rand.New(rand.NewSource(3))
	for i := range coeffs {
		coeffs[i] = float64(1+rng.Intn(100)) * float64(1-2*(rng.Intn(2)))
	}
	q := 0.5
	res := Encode(coeffs, d, q, 0)
	got := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
	for i := range coeffs {
		if coeffs[i]*got[i] < 0 {
			t.Fatalf("idx %d: sign flipped: %g -> %g", i, coeffs[i], got[i])
		}
	}
}

func TestAllZeroInput(t *testing.T) {
	d := grid.D3(8, 8, 8)
	coeffs := make([]float64, d.Len())
	res := Encode(coeffs, d, 1.0, 0)
	if res.NumPlanes != 0 || res.Bits != 0 {
		t.Fatalf("zero input: planes=%d bits=%d, want 0, 0", res.NumPlanes, res.Bits)
	}
	got := Decode(res.Stream, res.Bits, d, 1.0, res.NumPlanes)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("idx %d: got %g, want 0", i, v)
		}
	}
}

func TestSingleSignificantCoefficient(t *testing.T) {
	d := grid.D3(16, 16, 16)
	coeffs := make([]float64, d.Len())
	coeffs[d.Index(5, 11, 3)] = -77.5
	q := 0.01
	res := Encode(coeffs, d, q, 0)
	got := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
	for i, v := range got {
		want := coeffs[i]
		if math.Abs(v-want) > q/2+1e-12 {
			t.Fatalf("idx %d: got %g, want %g +- %g", i, v, want, q/2)
		}
	}
}

// The embedded property: decoding any prefix must (a) not crash, (b) give
// monotonically non-increasing error as more bits are provided.
func TestEmbeddedPrefixDecoding(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(11))
	coeffs := randCoeffs(rng, d.Len())
	q := 0.1
	res := Encode(coeffs, d, q, 0)

	rmse := func(rec []float64) float64 {
		var s float64
		for i := range rec {
			e := rec[i] - coeffs[i]
			s += e * e
		}
		return math.Sqrt(s / float64(len(rec)))
	}
	prev := math.Inf(1)
	for _, frac := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 1.0} {
		nbits := uint64(float64(res.Bits) * frac)
		rec := Decode(res.Stream, nbits, d, q, res.NumPlanes)
		e := rmse(rec)
		if e > prev*1.02 { // tiny slack for mid-pass estimate jitter
			t.Fatalf("error increased with more bits: %g bits -> rmse %g, prev %g",
				float64(nbits), e, prev)
		}
		prev = e
	}
	if prev > q/2+1e-12 {
		t.Fatalf("full decode rmse %g exceeds q/2", prev)
	}
}

// Size-bounded mode must respect the bit budget and still decode.
func TestSizeBoundedMode(t *testing.T) {
	d := grid.D3(16, 16, 16)
	rng := rand.New(rand.NewSource(5))
	coeffs := randCoeffs(rng, d.Len())
	q := 1e-6
	budget := uint64(2 * d.Len()) // 2 bits per point
	res := Encode(coeffs, d, q, budget)
	if res.Bits > budget {
		t.Fatalf("Bits = %d exceeds budget %d", res.Bits, budget)
	}
	if len(res.Stream) > int((budget+7)/8) {
		t.Fatalf("stream has %d bytes for %d-bit budget", len(res.Stream), budget)
	}
	rec := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
	// Low-rate reconstruction should still reduce error vs. all-zeros.
	var e0, e1 float64
	for i := range coeffs {
		e0 += coeffs[i] * coeffs[i]
		diff := rec[i] - coeffs[i]
		e1 += diff * diff
	}
	if e1 >= e0 {
		t.Fatalf("2 BPP reconstruction no better than zeros: %g vs %g", e1, e0)
	}
}

// Decoding with a larger budget than bits present must behave as full decode.
func TestDecodeOverBudget(t *testing.T) {
	d := grid.D2(16, 16)
	rng := rand.New(rand.NewSource(8))
	coeffs := randCoeffs(rng, d.Len())
	q := 0.5
	res := Encode(coeffs, d, q, 0)
	a := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
	b := Decode(res.Stream, res.Bits+1000, d, q, res.NumPlanes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("idx %d: over-budget decode differs: %g vs %g", i, a[i], b[i])
		}
	}
}

// Arbitrary q: the same data coded at q and at q/2 should use more bits at
// q/2 and achieve lower error (paper Section III-C).
func TestQualityVsQ(t *testing.T) {
	d := grid.D3(12, 12, 12)
	rng := rand.New(rand.NewSource(21))
	coeffs := randCoeffs(rng, d.Len())
	rmseAt := func(q float64) (float64, uint64) {
		res := Encode(coeffs, d, q, 0)
		rec := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
		var s float64
		for i := range rec {
			e := rec[i] - coeffs[i]
			s += e * e
		}
		return math.Sqrt(s / float64(len(rec))), res.Bits
	}
	coarse, bitsCoarse := rmseAt(0.8)
	fine, bitsFine := rmseAt(0.1)
	if fine >= coarse {
		t.Fatalf("finer q did not reduce error: %g vs %g", fine, coarse)
	}
	if bitsFine <= bitsCoarse {
		t.Fatalf("finer q did not use more bits: %d vs %d", bitsFine, bitsCoarse)
	}
}

func TestSplitSetAlignment(t *testing.T) {
	s := set{x: 0, y: 0, z: 0, nx: 7, ny: 6, nz: 1}
	var kids [8]set
	if n := splitSet(&s, &kids); n != 4 {
		t.Fatalf("expected 4 children for 2D set, got %d", n)
	}
	// x splits at ceil(7/2)=4, y at ceil(6/2)=3.
	want := []set{
		{x: 0, nx: 4, y: 0, ny: 3, z: 0, nz: 1},
		{x: 4, nx: 3, y: 0, ny: 3, z: 0, nz: 1},
		{x: 0, nx: 4, y: 3, ny: 3, z: 0, nz: 1},
		{x: 4, nx: 3, y: 3, ny: 3, z: 0, nz: 1},
	}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("child %d = %+v, want %+v", i, kids[i], want[i])
		}
	}
	one := set{nx: 1, ny: 1, nz: 1}
	if !one.single() {
		t.Fatal("1x1x1 should be single")
	}
}

// Randomized cross-check across many shapes and q values.
func TestRandomizedRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		d := grid.D3(1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20))
		coeffs := randCoeffs(rng, d.Len())
		q := math.Exp(rng.NormFloat64())
		res := Encode(coeffs, d, q, 0)
		rec := Decode(res.Stream, res.Bits, d, q, res.NumPlanes)
		for i := range coeffs {
			if math.Abs(coeffs[i]) < q {
				if rec[i] != 0 {
					t.Fatalf("iter %d %v: dead zone violated at %d", iter, d, i)
				}
			} else if math.Abs(rec[i]-coeffs[i]) > q/2*(1+1e-9) {
				t.Fatalf("iter %d %v q=%g: idx %d err %g > %g",
					iter, d, q, i, math.Abs(rec[i]-coeffs[i]), q/2)
			}
		}
	}
}

func BenchmarkEncode32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	rng := rand.New(rand.NewSource(1))
	coeffs := randCoeffs(rng, d.Len())
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(coeffs, d, 0.1, 0)
	}
}

func BenchmarkDecode32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	rng := rand.New(rand.NewSource(1))
	coeffs := randCoeffs(rng, d.Len())
	res := Encode(coeffs, d, 0.1, 0)
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(res.Stream, res.Bits, d, 0.1, res.NumPlanes)
	}
}
