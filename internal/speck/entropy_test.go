package speck

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func TestEntropyRoundTrip(t *testing.T) {
	for _, d := range []grid.Dims{
		grid.D3(8, 8, 8),
		grid.D3(16, 16, 16),
		grid.D3(13, 7, 5),
		grid.D2(32, 32),
	} {
		rng := rand.New(rand.NewSource(int64(d.Len())))
		coeffs := randCoeffs(rng, d.Len())
		q := 0.25
		res := EncodeEntropy(coeffs, d, q)
		got := DecodeEntropy(res.Stream, d, q, res.NumPlanes)
		for i, want := range coeffs {
			if math.Abs(want) < q {
				if got[i] != 0 {
					t.Fatalf("%v idx %d: dead zone violated", d, i)
				}
				continue
			}
			if err := math.Abs(got[i] - want); err > q/2+1e-12 {
				t.Fatalf("%v idx %d: error %g > q/2", d, i, err)
			}
		}
	}
}

// The arithmetic-coded variant must not be larger than the raw variant by
// more than the coder's constant overhead, and on realistic (compressible)
// significance maps it should win.
func TestEntropySavesOnStructuredData(t *testing.T) {
	d := grid.D3(24, 24, 24)
	// Sparse, clustered coefficients: a few large values, most zero —
	// exactly what wavelet transforms produce and where significance bits
	// are highly skewed.
	coeffs := make([]float64, d.Len())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		coeffs[rng.Intn(len(coeffs))] = rng.NormFloat64() * 100
	}
	q := 0.01
	raw := Encode(coeffs, d, q, 0)
	ac := EncodeEntropy(coeffs, d, q)
	if ac.Bits >= raw.Bits {
		t.Errorf("entropy coding did not help on sparse data: %d vs %d bits",
			ac.Bits, raw.Bits)
	}
	// And the reconstruction must match the raw decode exactly (same
	// traversal, same quantization).
	a := Decode(raw.Stream, raw.Bits, d, q, raw.NumPlanes)
	b := DecodeEntropy(ac.Stream, d, q, ac.NumPlanes)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("idx %d: raw %g vs entropy %g", i, a[i], b[i])
		}
	}
}

func TestEntropyPanicsOnSizeBounded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for entropy + maxBits")
		}
	}()
	encode(make([]float64, 8), grid.D3(2, 2, 2), 1, 10, true, 1, nil)
}

func TestEntropyZeroInput(t *testing.T) {
	d := grid.D3(4, 4, 4)
	res := EncodeEntropy(make([]float64, d.Len()), d, 1)
	if res.NumPlanes != 0 {
		t.Fatalf("planes = %d", res.NumPlanes)
	}
	got := DecodeEntropy(res.Stream, d, 1, res.NumPlanes)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("idx %d: %g", i, v)
		}
	}
}

func BenchmarkEncodeEntropy32(b *testing.B) {
	d := grid.D3(32, 32, 32)
	rng := rand.New(rand.NewSource(1))
	coeffs := randCoeffs(rng, d.Len())
	b.SetBytes(int64(d.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeEntropy(coeffs, d, 0.1)
	}
}
