package speck

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/grid"
)

func TestSIRoundTrip(t *testing.T) {
	for _, d := range []grid.Dims{
		grid.D3(16, 16, 16),
		grid.D3(32, 32, 32),
		grid.D3(13, 7, 5), // too small for any transform level: degenerates
		grid.D3(64, 8, 8), // anisotropic level counts
		grid.D2(32, 32),
	} {
		rng := rand.New(rand.NewSource(int64(d.Len())))
		coeffs := randCoeffs(rng, d.Len())
		q := 0.25
		res := EncodeSI(coeffs, d, q)
		got := DecodeSI(res.Stream, res.Bits, d, q, res.NumPlanes)
		for i, want := range coeffs {
			if math.Abs(want) < q {
				if got[i] != 0 {
					t.Fatalf("%v idx %d: dead zone violated", d, i)
				}
				continue
			}
			if err := math.Abs(got[i] - want); err > q/2+1e-12 {
				t.Fatalf("%v idx %d: error %g > q/2", d, i, err)
			}
		}
	}
}

// On wavelet-like data (energy concentrated in the approximation corner),
// the S/I and root-octree variants should produce nearly identical rates:
// that is the design-choice result the ablation quantifies.
func TestSIVsRootRate(t *testing.T) {
	d := grid.D3(32, 32, 32)
	coeffs := make([]float64, d.Len())
	rng := rand.New(rand.NewSource(7))
	// Emulate a transformed field: large values in the low corner,
	// geometrically decaying detail bands.
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				level := 0
				for m := 16; m >= 2; m /= 2 {
					if x < m && y < m && z < m {
						level++
					}
				}
				scale := math.Pow(4, float64(level))
				coeffs[d.Index(x, y, z)] = rng.NormFloat64() * scale
			}
		}
	}
	q := 1.0
	root := Encode(coeffs, d, q, 0)
	si := EncodeSI(coeffs, d, q)
	ratio := float64(si.Bits) / float64(root.Bits)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("S/I vs root-octree rate ratio %.3f; expected near-identical", ratio)
	}
	// Both must reconstruct identically up to quantization.
	a := Decode(root.Stream, root.Bits, d, q, root.NumPlanes)
	b := DecodeSI(si.Stream, si.Bits, d, q, si.NumPlanes)
	for i := range a {
		if math.Abs(a[i]-b[i]) > q+1e-12 {
			t.Fatalf("idx %d: reconstructions diverge: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSIZeroInput(t *testing.T) {
	d := grid.D3(16, 16, 16)
	res := EncodeSI(make([]float64, d.Len()), d, 1)
	if res.NumPlanes != 0 || res.Bits != 0 {
		t.Fatalf("zero input: %+v", res)
	}
	got := DecodeSI(res.Stream, res.Bits, d, 1, res.NumPlanes)
	for _, v := range got {
		if v != 0 {
			t.Fatal("nonzero output for zero input")
		}
	}
}

func TestBandBoxesCoverage(t *testing.T) {
	g := newSIGeom(grid.D3(32, 32, 32))
	// The approximation box at each level plus all band boxes of levels
	// below must tile the volume exactly.
	covered := make([]int, 32*32*32)
	d := grid.D3(32, 32, 32)
	a := g.approxBox(g.levels)
	for z := int32(0); z < a.nz; z++ {
		for y := int32(0); y < a.ny; y++ {
			for x := int32(0); x < a.nx; x++ {
				covered[d.Index(int(x), int(y), int(z))]++
			}
		}
	}
	for l := g.levels; l >= 1; l-- {
		for _, b := range g.bandBoxes(l) {
			for z := b.z; z < b.z+b.nz; z++ {
				for y := b.y; y < b.y+b.ny; y++ {
					for x := b.x; x < b.x+b.nx; x++ {
						covered[d.Index(int(x), int(y), int(z))]++
					}
				}
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}
