// Package speck implements the SPECK set-partitioning embedded block coder
// (Pearlman et al.) with the SPERR extensions of paper Section III:
// arbitrary (non power-of-two) quantization thresholds, a dead zone of
// [-q, q], mid-riser reconstruction, and both quality-bounded and
// size-bounded termination.
//
// The coder walks the wavelet coefficient volume bitplane by bitplane with
// thresholds q*2^n for n = nmax .. 0. Each sorting pass locates newly
// significant coefficients by recursive octree (3D) / quadtree (2D) set
// partitioning whose split points coincide with the dyadic wavelet subband
// boundaries (boxes split at ceil(len/2), matching the approximation-band
// length rule of the transform). Each refinement pass appends one bit of
// precision to every previously significant coefficient.
//
// The output bitstream is embedded: any prefix decodes to a valid, coarser
// reconstruction, which is what enables size-bounded (fixed-rate)
// compression and progressive access (paper Sections III-B and VII).
package speck

import (
	"math"

	"sperr/internal/bits"
	"sperr/internal/grid"
)

// set is a rectangular box of coefficients taking part in significance
// tests. A set whose extent is 1x1x1 is a single coefficient. max caches
// the maximum magnitude inside the box (encoder side only) so that
// per-bitplane significance tests are O(1).
type set struct {
	x, y, z    int32
	nx, ny, nz int32
	max        float64
}

func (s *set) single() bool { return s.nx == 1 && s.ny == 1 && s.nz == 1 }

// pixel is one significant coefficient being progressively refined.
type pixel struct {
	pos int32
	val float64 // encoder: remaining residual; decoder: reconstruction value
	neg bool    // decoder: sign
}

// NumPlanes returns the number of bitplanes (nmax+1) that the coder will
// emit for the given base step q and maximum coefficient magnitude: nmax is
// the largest n >= 0 with q*2^n <= maxMag. It returns 0 when every
// coefficient lies inside the dead zone (maxMag < q).
func NumPlanes(maxMag, q float64) int {
	if maxMag < q || q <= 0 {
		return 0
	}
	n := int(math.Floor(math.Log2(maxMag / q)))
	// Guard against floating-point edge cases near exact powers of two.
	for q*math.Pow(2, float64(n+1)) <= maxMag {
		n++
	}
	for n >= 0 && q*math.Pow(2, float64(n)) > maxMag {
		n--
	}
	if n < 0 {
		return 0
	}
	return n + 1
}

// Result carries the encoder output.
type Result struct {
	Stream    []byte // packed bitstream (padded to a byte)
	Bits      uint64 // exact number of meaningful bits in Stream
	NumPlanes int    // bitplanes encoded (decoder needs this to align)
	MaxMag    float64

	// PlaneBits[i] is the bit position after plane i completed, and
	// PlaneErr2[i] the summed squared coefficient-domain error of the
	// reconstruction a decoder would produce from that prefix. Because
	// the scaled CDF 9/7 basis is near-orthogonal, this estimates the
	// data-domain L2 error without an inverse transform — the property
	// the paper's Section VII flags as enabling average-error-targeted
	// compression.
	PlaneBits []uint64
	PlaneErr2 []float64
}

// Scratch pools the reusable per-call state of SPECK encoders and
// decoders: magnitude/sign maps, LIS buckets, LSP slices, the raw bit
// writer and reader, and the decoder's output buffer. A zero Scratch is
// ready to use; buffers grow on demand and are retained across calls so a
// worker that codes many chunks reaches a steady state with no per-chunk
// heap allocation. A Scratch is not safe for concurrent use.
//
// Results returned by EncodeScratch and slices returned by DecodeScratch
// alias the scratch and stay valid only until its next use.
type Scratch struct {
	mags      []float64
	neg       []bool
	lis       [][]set
	lsp       []pixel
	lspNew    []pixel
	w         *bits.Writer
	r         bits.Reader
	planeBits []uint64
	planeErr2 []float64
	out       []float64
	// Integer-path pools (see intpath.go, intpar.go, intdec.go).
	pixI     []cpix
	lisI     [][]int32
	lisTI    [][]uint8
	lspI     []int32
	ulsp     []uint64
	valsI    []float64
	negI     []bool
	negINew  []bool
	trees    []*octree
	topsT    []uint8
	itemsI   []uint64
	cutsI    []int
	spansI   []encSpan
	reconT   []float64
	// Pooled arithmetic-coder endpoints (see entropy.go).
	acs   *acSink
	acsrc *acSource
	// Replay state of the last integer-path encode (see ReplayScratch).
	canReplay    bool
	replayQ      float64
	replayN      int
	replayPlanes int
	// Grows counts buffer (re)allocations; a warmed-up scratch stops
	// growing.
	Grows int
}

// resetLIS truncates every pooled LIS bucket, keeping capacity, and
// guarantees at least one bucket exists.
func (s *Scratch) resetLIS() [][]set {
	for i := range s.lis {
		s.lis[i] = s.lis[i][:0]
	}
	if len(s.lis) == 0 {
		s.lis = make([][]set, 1, 16)
		s.Grows++
	}
	return s.lis
}

// Encode codes coeffs (row-major, extent dims) with base quantization step
// q > 0. If maxBits > 0 the stream is truncated to at most maxBits bits
// (size-bounded mode); otherwise every bitplane down to threshold q is
// emitted (quality-bounded mode, max coefficient error q/2 plus dead zone).
func Encode(coeffs []float64, dims grid.Dims, q float64, maxBits uint64) *Result {
	return encode(coeffs, dims, q, maxBits, false, 1, nil)
}

// EncodeScratch is Encode with pooled buffers. The returned Result aliases
// s (stream, plane records) and is valid until the next use of s. Output
// is byte-identical to Encode's.
func EncodeScratch(coeffs []float64, dims grid.Dims, q float64, maxBits uint64, s *Scratch) *Result {
	return encode(coeffs, dims, q, maxBits, false, 1, s)
}

// EncodeScratchWorkers is EncodeScratch with up to workers threads
// driving the octree max fill and the speculative sorting/refinement
// passes. The stream is byte-identical to the serial coder's at any
// worker count (the speculative merge is deterministic); extra threads
// only engage in quality-bounded mode on passes with enough work.
func EncodeScratchWorkers(coeffs []float64, dims grid.Dims, q float64, maxBits uint64, workers int, s *Scratch) *Result {
	return encode(coeffs, dims, q, maxBits, false, workers, s)
}

func encode(coeffs []float64, dims grid.Dims, q float64, maxBits uint64, entropy bool, workers int, s *Scratch) *Result {
	n := dims.Len()
	if len(coeffs) != n {
		panic("speck: coefficient count does not match dims")
	}
	if entropy && maxBits > 0 {
		panic("speck: entropy coding does not support size-bounded mode")
	}
	if s == nil {
		s = &Scratch{}
	}
	s.canReplay = false
	var maxMag float64
	for _, c := range coeffs {
		if m := math.Abs(c); m > maxMag {
			maxMag = m
		}
	}
	planes := NumPlanes(maxMag, q)
	if intPathEligible(q, planes) && dims.Len() <= maxOctreeLen {
		return encodeInt(coeffs, dims, q, maxBits, planes, maxMag, entropy, workers, s)
	}
	return encodeFloat(coeffs, dims, q, maxBits, entropy, maxMag, planes, s)
}

// encodeFloat is the reference float-residual traversal, used for entropy
// coding and whenever the integer path's exactness preconditions fail. It
// is also the oracle the integer path is tested against.
func encodeFloat(coeffs []float64, dims grid.Dims, q float64, maxBits uint64, entropy bool, maxMag float64, planes int, s *Scratch) *Result {
	n := dims.Len()
	var snk sink
	if entropy {
		snk = newACSink()
	} else {
		if s.w == nil {
			s.w = bits.NewWriter(n / 2)
			s.Grows++
		} else {
			s.w.Reset()
		}
		snk = &rawSink{w: s.w}
	}
	e := &encoder{
		dims: dims,
		snk:  snk,
		budget: func() uint64 {
			if maxBits == 0 {
				return math.MaxUint64
			}
			return maxBits
		}(),
	}
	e.setup(s, n)
	for i, c := range coeffs {
		e.mags[i] = math.Abs(c)
		e.neg[i] = math.Signbit(c)
	}
	if planes > 0 {
		e.run(q, planes)
	}
	e.save(s)
	stream, bitsUsed := snk.finish()
	if maxBits > 0 && bitsUsed > maxBits {
		bitsUsed = maxBits
	}
	if need := int((bitsUsed + 7) / 8); need < len(stream) {
		stream = stream[:need]
	}
	return &Result{
		Stream: stream, Bits: bitsUsed, NumPlanes: planes, MaxMag: maxMag,
		PlaneBits: e.planeBits, PlaneErr2: e.planeErr2,
	}
}

type encoder struct {
	dims   grid.Dims
	mags   []float64
	neg    []bool
	snk    sink
	budget uint64

	lis    [][]set // buckets indexed by split depth; deeper = smaller sets
	nd     int     // number of active buckets (depths) in lis
	lsp    []pixel
	lspNew []pixel

	insigE2   float64 // summed v^2 of not-yet-significant coefficients
	planeBits []uint64
	planeErr2 []float64
}

// setup wires the encoder to pooled buffers from s.
func (e *encoder) setup(s *Scratch, n int) {
	if cap(s.mags) < n {
		s.mags = make([]float64, n)
		s.neg = make([]bool, n)
		s.Grows++
	}
	e.mags, e.neg = s.mags[:n], s.neg[:n]
	e.lis = s.resetLIS()
	e.nd = 1
	e.lsp = s.lsp[:0]
	e.lspNew = s.lspNew[:0]
	e.planeBits = s.planeBits[:0]
	e.planeErr2 = s.planeErr2[:0]
}

// save hands grown buffers back to the scratch for the next call.
func (e *encoder) save(s *Scratch) {
	s.lis = e.lis
	s.lsp = e.lsp
	s.lspNew = e.lspNew
	s.planeBits = e.planeBits
	s.planeErr2 = e.planeErr2
}

// ensureDepth makes bucket d usable, reusing pooled bucket arrays.
func (e *encoder) ensureDepth(d int) {
	for len(e.lis) <= d {
		e.lis = append(e.lis, nil)
	}
	if e.nd <= d {
		e.nd = d + 1
	}
}

func (e *encoder) run(q float64, planes int) {
	root := set{nx: int32(e.dims.NX), ny: int32(e.dims.NY), nz: int32(e.dims.NZ)}
	root.max = e.boxMax(&root)
	e.lis[0] = append(e.lis[0], root)
	for _, v := range e.mags {
		e.insigE2 += v * v
	}
	for n := planes - 1; n >= 0; n-- {
		thr := q * math.Pow(2, float64(n))
		e.sortingPass(thr)
		if e.snk.bits() >= e.budget {
			return // embedded stream: the prefix up to budget is valid
		}
		e.refinementPass(thr)
		e.recordPlane(thr)
		if e.snk.bits() >= e.budget {
			return
		}
	}
}

// recordPlane captures the bit offset and the exact coefficient-domain
// squared error of the reconstruction a decoder would produce from the
// stream prefix ending at this plane boundary.
func (e *encoder) recordPlane(thr float64) {
	err2 := e.insigE2
	half := thr / 2
	for i := range e.lsp {
		// After refinement at thr, the residual lies in [0, thr) and the
		// decoder sits at the interval midpoint.
		r := e.lsp[i].val - half
		err2 += r * r
	}
	e.planeBits = append(e.planeBits, e.snk.bits())
	e.planeErr2 = append(e.planeErr2, err2)
}

func (e *encoder) boxMax(s *set) float64 {
	d := e.dims
	m := 0.0
	for z := s.z; z < s.z+s.nz; z++ {
		for y := s.y; y < s.y+s.ny; y++ {
			off := (int(z)*d.NY + int(y)) * d.NX
			row := e.mags[off+int(s.x) : off+int(s.x)+int(s.nx)]
			for _, v := range row {
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

// sortingPass processes LIS buckets from smallest sets to largest
// ("increasing order of their sizes"). Children created by splitting are
// placed in deeper (already visited) buckets and processed immediately by
// recursion, so they are tested exactly once per pass.
func (e *encoder) sortingPass(thr float64) {
	for depth := e.nd - 1; depth >= 0; depth-- {
		if e.snk.bits() >= e.budget {
			return // everything past the budget is truncated anyway
		}
		bucket := e.lis[depth]
		kept := bucket[:0]
		for i := range bucket {
			s := bucket[i]
			if s.max >= thr {
				e.processSignificant(&s, depth, thr)
				// significant: removed from LIS (not kept)
			} else {
				e.snk.put(sigCtx(depth), false)
				kept = append(kept, s)
			}
		}
		e.lis[depth] = kept
	}
}

// processSignificant emits the significance bit for s (known true on the
// encoder side) and descends.
func (e *encoder) processSignificant(s *set, depth int, thr float64) {
	e.snk.put(sigCtx(depth), true)
	e.descend(s, depth, thr)
}

// descend handles a set established as significant (bit already emitted or
// implied): a single coefficient joins the significant list, a larger set
// is partitioned.
func (e *encoder) descend(s *set, depth int, thr float64) {
	if s.single() {
		pos := int32(e.dims.Index(int(s.x), int(s.y), int(s.z)))
		e.snk.put(ctxSign, e.neg[pos])
		e.lspNew = append(e.lspNew, pixel{pos: pos, val: e.mags[pos] - thr})
		e.insigE2 -= e.mags[pos] * e.mags[pos]
		return
	}
	e.code(s, depth, thr)
}

// code splits s into up to 8 children at the dyadic subband boundaries and
// processes each immediately; insignificant children enter LIS. A
// significant parent must have at least one significant child, so when
// every earlier sibling was insignificant the last child's significance is
// implied and its bit omitted (the classic Said-Pearlman saving, also in
// the reference SPERR implementation).
func (e *encoder) code(s *set, depth int, thr float64) {
	var children [8]set
	k := splitSet(s, &children)
	childDepth := depth + 1
	e.ensureDepth(childDepth)
	anySig := false
	for i := 0; i < k; i++ {
		c := &children[i]
		c.max = e.boxMax(c)
		sig := c.max >= thr
		if i == k-1 && !anySig {
			// Implied significant: no bit.
			e.descend(c, childDepth, thr)
			return
		}
		if sig {
			anySig = true
			e.processSignificant(c, childDepth, thr)
		} else {
			e.snk.put(sigCtx(childDepth), false)
			e.lis[childDepth] = append(e.lis[childDepth], *c)
		}
	}
}

func (e *encoder) refinementPass(thr float64) {
	for i := range e.lsp {
		p := &e.lsp[i]
		if p.val >= thr {
			e.snk.put(ctxRefine, true)
			p.val -= thr
		} else {
			e.snk.put(ctxRefine, false)
		}
	}
	e.lsp = append(e.lsp, e.lspNew...)
	e.lspNew = e.lspNew[:0]
}

// splitSet divides a box into children by splitting every axis longer than
// one sample at ceil(len/2), writing them into dst and returning the
// count. The low half comes first, matching the approximation-band layout
// of the wavelet transform so that sets align with subbands at every
// recursion depth. dst is caller-provided (stack) storage so the hot
// partitioning path performs no heap allocation.
func splitSet(s *set, dst *[8]set) int {
	var xs, ys, zs [2][2]int32
	nx := splitAxis(s.x, s.nx, &xs)
	ny := splitAxis(s.y, s.ny, &ys)
	nz := splitAxis(s.z, s.nz, &zs)
	k := 0
	for zi := 0; zi < nz; zi++ {
		for yi := 0; yi < ny; yi++ {
			for xi := 0; xi < nx; xi++ {
				dst[k] = set{
					x: xs[xi][0], nx: xs[xi][1],
					y: ys[yi][0], ny: ys[yi][1],
					z: zs[zi][0], nz: zs[zi][1],
				}
				k++
			}
		}
	}
	return k
}

// splitAxis writes the (origin, length) pairs after splitting an axis at
// ceil(n/2) into dst and returns the count; axes of length 1 are not
// split.
func splitAxis(o, n int32, dst *[2][2]int32) int {
	if n <= 1 {
		dst[0] = [2]int32{o, n}
		return 1
	}
	half := (n + 1) / 2
	dst[0] = [2]int32{o, half}
	dst[1] = [2]int32{o + half, n - half}
	return 2
}

// Decode reconstructs coefficients from a SPECK bitstream. bitsAvail limits
// how many bits are consumed (pass res.Bits for a full decode, or fewer for
// progressive reconstruction of a truncated stream); planes must equal the
// encoder's Result.NumPlanes. The returned slice has dims.Len() entries.
func Decode(stream []byte, bitsAvail uint64, dims grid.Dims, q float64, planes int) []float64 {
	return decode(stream, bitsAvail, dims, q, planes, false, 1, nil)
}

// DecodeScratch is Decode with pooled buffers. The returned slice aliases
// s and is valid until the next use of s.
func DecodeScratch(stream []byte, bitsAvail uint64, dims grid.Dims, q float64, planes int, s *Scratch) []float64 {
	return decode(stream, bitsAvail, dims, q, planes, false, 1, s)
}

// DecodeScratchWorkers is DecodeScratch with up to workers threads
// splitting the final reconstruction scatter. The result is bit-identical
// at any worker count (pixel writes are disjoint).
func DecodeScratchWorkers(stream []byte, bitsAvail uint64, dims grid.Dims, q float64, planes int, workers int, s *Scratch) []float64 {
	return decode(stream, bitsAvail, dims, q, planes, false, workers, s)
}

func decode(stream []byte, bitsAvail uint64, dims grid.Dims, q float64, planes int, entropy bool, workers int, s *Scratch) []float64 {
	if s == nil {
		s = &Scratch{}
	}
	s.canReplay = false // the out buffer is being repurposed
	if planes > 0 && planes <= 64 && dims.Len() <= maxOctreeLen {
		// Phase-separated fast path (intdec.go); falls back here for
		// streams needing partial-pass semantics.
		if out, ok := decodeFast(stream, bitsAvail, dims, q, planes, entropy, workers, s); ok {
			return out
		}
	}
	var src source
	if entropy {
		src = newACSource(stream)
	} else {
		s.r.Reset(stream, bitsAvail)
		src = &rawSource{r: &s.r}
	}
	d := &decoder{
		dims: dims,
		src:  src,
	}
	d.lis = s.resetLIS()
	d.nd = 1
	d.lsp = s.lsp[:0]
	d.lspNew = s.lspNew[:0]
	n := dims.Len()
	if cap(s.out) < n {
		s.out = make([]float64, n)
		s.Grows++
	}
	out := s.out[:n]
	for i := range out {
		out[i] = 0
	}
	defer func() {
		s.lis = d.lis
		s.lsp = d.lsp
		s.lspNew = d.lspNew
	}()
	if planes <= 0 {
		return out
	}
	d.run(q, planes)
	for _, p := range d.lsp {
		v := p.val
		if p.neg {
			v = -v
		}
		out[p.pos] = v
	}
	// Pixels discovered but never refined still carry their initial
	// estimate; lspNew may be non-empty if the stream ended mid-pass.
	for _, p := range d.lspNew {
		v := p.val
		if p.neg {
			v = -v
		}
		out[p.pos] = v
	}
	return out
}

type decoder struct {
	dims grid.Dims
	src  source

	lis    [][]set
	nd     int // number of active buckets (depths) in lis
	lsp    []pixel
	lspNew []pixel
}

// ensureDepth mirrors the encoder's bucket management.
func (d *decoder) ensureDepth(depth int) {
	for len(d.lis) <= depth {
		d.lis = append(d.lis, nil)
	}
	if d.nd <= depth {
		d.nd = depth + 1
	}
}

func (d *decoder) run(q float64, planes int) {
	root := set{nx: int32(d.dims.NX), ny: int32(d.dims.NY), nz: int32(d.dims.NZ)}
	d.lis[0] = append(d.lis[0], root)
	for n := planes - 1; n >= 0; n-- {
		thr := q * math.Pow(2, float64(n))
		if !d.sortingPass(thr) {
			return
		}
		if !d.refinementPass(thr) {
			return
		}
	}
}

// sortingPass mirrors the encoder's traversal, with significance decisions
// read from the stream. It returns false when the stream is exhausted.
func (d *decoder) sortingPass(thr float64) bool {
	for depth := d.nd - 1; depth >= 0; depth-- {
		bucket := d.lis[depth]
		kept := bucket[:0]
		for i := range bucket {
			s := bucket[i]
			sig := d.src.get(sigCtx(depth))
			if d.src.exhausted() {
				// Keep the remaining entries untouched so state stays sane.
				kept = append(kept, bucket[i:]...)
				d.lis[depth] = kept
				return false
			}
			if sig {
				if !d.descend(&s, depth, thr) {
					d.lis[depth] = append(kept, bucket[i+1:]...)
					return false
				}
			} else {
				kept = append(kept, s)
			}
		}
		d.lis[depth] = kept
	}
	return true
}

// descend handles a set just established as significant, mirroring the
// encoder's traversal including the implied-significance saving for the
// last child of an otherwise-insignificant brood.
func (d *decoder) descend(s *set, depth int, thr float64) bool {
	if s.single() {
		neg := d.src.get(ctxSign)
		if d.src.exhausted() {
			return false
		}
		pos := int32(d.dims.Index(int(s.x), int(s.y), int(s.z)))
		d.lspNew = append(d.lspNew, pixel{pos: pos, val: 1.5 * thr, neg: neg})
		return true
	}
	var children [8]set
	k := splitSet(s, &children)
	childDepth := depth + 1
	d.ensureDepth(childDepth)
	anySig := false
	for i := 0; i < k; i++ {
		c := &children[i]
		if i == k-1 && !anySig {
			// Implied significant: the encoder emitted no bit.
			return d.descend(c, childDepth, thr)
		}
		sig := d.src.get(sigCtx(childDepth))
		if d.src.exhausted() {
			// Remaining children were never coded this pass; keep them in
			// LIS so their values stay zero.
			for j := i; j < k; j++ {
				d.lis[childDepth] = append(d.lis[childDepth], children[j])
			}
			return false
		}
		if sig {
			anySig = true
			if !d.descend(c, childDepth, thr) {
				for j := i + 1; j < k; j++ {
					d.lis[childDepth] = append(d.lis[childDepth], children[j])
				}
				return false
			}
		} else {
			d.lis[childDepth] = append(d.lis[childDepth], *c)
		}
	}
	return true
}

func (d *decoder) refinementPass(thr float64) bool {
	half := thr / 2
	if rs, ok := d.src.(*rawSource); ok && rs.r.Remaining() >= uint64(len(d.lsp)) {
		// The whole pass fits the budget: read refinement bits a word at a
		// time. Per-pixel updates are unchanged, so reconstruction values
		// are identical to the per-bit path.
		i := 0
		for ; i+64 <= len(d.lsp); i += 64 {
			word := rs.r.ReadBits(64)
			for j := 0; j < 64; j++ {
				p := &d.lsp[i+j]
				if word&1 != 0 {
					p.val += half
				} else {
					p.val -= half
				}
				word >>= 1
			}
		}
		if rem := len(d.lsp) - i; rem > 0 {
			word := rs.r.ReadBits(uint(rem))
			for j := 0; j < rem; j++ {
				p := &d.lsp[i+j]
				if word&1 != 0 {
					p.val += half
				} else {
					p.val -= half
				}
				word >>= 1
			}
		}
		d.lsp = append(d.lsp, d.lspNew...)
		d.lspNew = d.lspNew[:0]
		return true
	}
	for i := range d.lsp {
		b := d.src.get(ctxRefine)
		if d.src.exhausted() {
			return false
		}
		p := &d.lsp[i]
		if b {
			p.val += half
		} else {
			p.val -= half
		}
	}
	d.lsp = append(d.lsp, d.lspNew...)
	d.lspNew = d.lspNew[:0]
	return true
}
