package chunk

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// maxFrameBytesFor bounds how large a single frame payload may claim to
// be, as a function of the largest chunk the container geometry allows. A
// corrupt length prefix must not be able to demand an allocation out of
// proportion to the data it could possibly carry.
func maxFrameBytesFor(chunkLen int) int {
	const slack = 64 << 10
	return 256*chunkLen + slack
}

// readChunkMax caps each allocation step while reading a frame payload,
// so a lying length prefix on a truncated stream fails after at most one
// step instead of allocating the full claim up front.
const readChunkMax = 1 << 20

// Reader is the streaming decoder engine: it reads container frames
// sequentially from any io.Reader (formats v1, v2, and v3), decodes chunks on
// a worker pool, and hands each decoded chunk to a callback. Peak decoded
// data in flight is bounded by workers x chunk size — never the volume.
type Reader struct {
	r       io.Reader
	version int

	volDims   grid.Dims
	chunkDims grid.Dims
	chunks    []grid.Chunk
	workers   int

	consumed bool
	ctx      context.Context // optional cancellation, see SetContext

	policy Policy
	fill   float64
	report *SalvageReport
	remain int64 // input bytes past the header when seekable, else -1

	inFlight     atomic.Int64
	peakInFlight atomic.Int64
}

// NewReader parses the container's fixed header from r and prepares a
// streaming decode. workers <= 0 means GOMAXPROCS.
func NewReader(r io.Reader, workers int) (*Reader, error) {
	var hdr [fixedHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	d := &Reader{r: r, workers: workers, fill: math.NaN(), remain: -1}
	// When the input can report its size, remember how many bytes remain
	// past the header: a forged length prefix is then rejected before any
	// allocation instead of after a bounded-step read fails.
	if s, ok := r.(io.Seeker); ok {
		if cur, err := s.Seek(0, io.SeekCurrent); err == nil {
			if end, err := s.Seek(0, io.SeekEnd); err == nil {
				if _, err := s.Seek(cur, io.SeekStart); err == nil {
					d.remain = end - cur
				}
			}
		}
	}
	switch {
	case [8]byte(hdr[:8]) == magicV1:
		d.version = 1
	case [8]byte(hdr[:8]) == magicV2:
		d.version = 2
	case [8]byte(hdr[:8]) == magicV3:
		d.version = 3
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(hdr[off:])) }
	d.volDims = grid.Dims{NX: u32(8), NY: u32(12), NZ: u32(16)}
	d.chunkDims = grid.Dims{NX: u32(20), NY: u32(24), NZ: u32(28)}
	chunks, err := validateGeometry(d.volDims, d.chunkDims, u32(32))
	if err != nil {
		return nil, err
	}
	d.chunks = chunks
	return d, nil
}

// VolumeDims returns the volume extent declared by the container header.
func (d *Reader) VolumeDims() grid.Dims { return d.volDims }

// ChunkDims returns the declared chunk tiling bound.
func (d *Reader) ChunkDims() grid.Dims { return d.chunkDims }

// NumChunks returns the number of chunks in the container.
func (d *Reader) NumChunks() int { return len(d.chunks) }

// Version reports the container format version (1, 2, or 3).
func (d *Reader) Version() int { return d.version }

// SetWorkers adjusts the decode worker budget before ForEach (<= 0 means
// GOMAXPROCS).
func (d *Reader) SetWorkers(n int) { d.workers = n }

// SetContext attaches a cancellation context to the Reader: once ctx is
// done, the frame producer stops reading and workers stop picking up
// queued decodes, so ForEach returns ctx's error promptly instead of
// draining the container. Call it before ForEach. The zero state never
// cancels.
func (d *Reader) SetContext(ctx context.Context) { d.ctx = ctx }

func (d *Reader) ctxErr() error {
	if d.ctx == nil {
		return nil
	}
	return d.ctx.Err()
}

// PeakInFlightSamples reports the maximum number of decoded samples alive
// at any one time during ForEach — at most workers x chunk size.
func (d *Reader) PeakInFlightSamples() int { return int(d.peakInFlight.Load()) }

// SetPolicy selects how ForEach reacts to damaged frames. The default,
// PolicyFailFast, aborts on the first damaged byte. PolicySkip decodes
// and delivers the intact chunks and records the damaged ones in the
// report; PolicyFill additionally delivers fill-valued samples for every
// damaged chunk, so the callback still observes each chunk exactly once.
// Under either tolerant policy, frame-level damage no longer makes
// ForEach return an error — consult Report afterwards. Context
// cancellation and callback errors always fail. Call before ForEach.
func (d *Reader) SetPolicy(p Policy) { d.policy = p }

// SetFill sets the sample value synthesized for damaged chunks under
// PolicyFill. The default is NaN. Call before ForEach.
func (d *Reader) SetFill(v float64) { d.fill = v }

// Report returns the per-chunk outcomes of a ForEach run under PolicySkip
// or PolicyFill. It is nil before ForEach completes and under
// PolicyFailFast.
func (d *Reader) Report() *SalvageReport { return d.report }

// decJob is one compressed frame payload awaiting decode.
type decJob struct {
	index   int
	payload []byte
}

// ForEach streams every chunk of the container through fn: frames are
// read sequentially, decoded in parallel, and fn is invoked once per
// chunk with its geometry and decoded samples. fn runs concurrently on
// worker goroutines and data aliases a worker arena — copy out before
// returning. ForEach consumes the Reader; it can be called once.
func (d *Reader) ForEach(fn func(index int, ch grid.Chunk, data []float64) error) error {
	if d.consumed {
		return fmt.Errorf("chunk: Reader already consumed")
	}
	d.consumed = true

	tolerant := d.policy != PolicyFailFast
	if tolerant {
		d.report = newSalvageReport(d.version, d.chunks)
	}

	workers := d.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	intra := 1
	if n := len(d.chunks); workers > n {
		intra = workers / n
		workers = n
	}
	maxChunkLen := 0
	for _, ch := range d.chunks {
		if n := ch.Dims.Len(); n > maxChunkLen {
			maxChunkLen = n
		}
	}
	maxFrame := maxFrameBytesFor(maxChunkLen)

	var (
		failed  atomic.Bool
		mu      sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}

	bufPool := sync.Pool{New: func() any { return new([]byte) }}
	jobs := make(chan decJob, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := scratchPool.Get().(*workerScratch)
			defer scratchPool.Put(ws)
			for job := range jobs {
				if err := d.ctxErr(); err != nil {
					fail(err)
				}
				if !failed.Load() {
					ch := d.chunks[job.index]
					n := int64(ch.Dims.Len())
					raisePeak(&d.peakInFlight, d.inFlight.Add(n))
					// A nil payload is a fill-synthesis job queued by the
					// producer for a chunk whose frame was damaged
					// (PolicyFill only).
					var (
						data []float64
						err  error
					)
					if job.payload != nil {
						if d.version >= 3 {
							data, err = decodeTaggedPayload(job.payload, ch.Dims, ws.codec, intra)
						} else {
							data, err = codec.DecodeChunkScratchThreads(job.payload, ch.Dims, ws.codec, intra)
						}
					}
					switch {
					case job.payload != nil && err == nil:
						if tolerant {
							d.report.Chunks[job.index].Recovered = true
							d.report.Chunks[job.index].Reason = ""
						}
					case !tolerant:
						fail(fmt.Errorf("chunk %d: %w", job.index, err))
						data = nil
					default:
						// Tolerant decode failure, or a fill job. Workers
						// touch disjoint report slots, so no lock.
						if job.payload != nil {
							d.report.Chunks[job.index].Reason = ReasonDecode
						}
						data = nil
						if d.policy == PolicyFill {
							data = make([]float64, ch.Dims.Len())
							for i := range data {
								data[i] = d.fill
							}
						}
					}
					if data != nil && !failed.Load() {
						if err := fn(job.index, ch, data); err != nil {
							fail(err)
						}
					}
					d.inFlight.Add(-n)
				}
				if job.payload != nil {
					buf := job.payload[:0]
					bufPool.Put(&buf)
				}
			}
		}()
	}

	// degradeRest marks chunks from i on as lost — once framing is gone a
	// sequential reader cannot attribute another byte — and, under
	// PolicyFill, queues fill-synthesis jobs so the callback still sees
	// every chunk. Tolerant policies only.
	framingLost := false
	degradeRest := func(i int, reason string) {
		framingLost = true
		for j := i; j < len(d.chunks); j++ {
			r := reason
			if j > i {
				r = ReasonFramingLost
			}
			d.report.Chunks[j].Reason = r
			if d.policy == PolicyFill {
				jobs <- decJob{index: j, payload: nil}
			}
		}
	}

	// Producer: read frames sequentially, recording what the index footer
	// must later corroborate (v2+): entries always, and for v3 the frame
	// codec tags the footer's codec map must mirror.
	entries := make([]indexEntry, len(d.chunks))
	var tags []codec.CodecID
	var tagSeen []bool
	if d.version >= 3 {
		tags = make([]codec.CodecID, len(d.chunks))
		tagSeen = make([]bool, len(d.chunks))
	}
	off := uint64(fixedHeaderSize)
	var prefix [4]byte
	for i := range d.chunks {
		if err := d.ctxErr(); err != nil {
			fail(err)
		}
		if failed.Load() {
			break
		}
		if _, err := io.ReadFull(d.r, prefix[:]); err != nil {
			if tolerant {
				degradeRest(i, ReasonTruncated)
			} else {
				fail(fmt.Errorf("%w: truncated at frame %d: %v", ErrCorrupt, i, err))
			}
			break
		}
		if d.remain >= 0 {
			d.remain -= 4
		}
		n := int(binary.LittleEndian.Uint32(prefix[:]))
		if n > maxFrame {
			if tolerant {
				degradeRest(i, ReasonFramingLost)
			} else {
				fail(fmt.Errorf("%w: frame %d claims %d bytes (cap %d)", ErrCorrupt, i, n, maxFrame))
			}
			break
		}
		if d.remain >= 0 && int64(n) > d.remain {
			// The input's size is known and the claim exceeds it: reject
			// before allocating anything (a forged prefix must not drive a
			// large up-front allocation just to fail the read).
			if tolerant {
				degradeRest(i, ReasonTruncated)
			} else {
				fail(fmt.Errorf("%w: frame %d claims %d bytes with %d remaining",
					ErrCorrupt, i, n, d.remain))
			}
			break
		}
		bp := bufPool.Get().(*[]byte)
		payload, err := readFrame(d.r, *bp, n)
		if err != nil {
			if tolerant {
				degradeRest(i, ReasonTruncated)
			} else {
				fail(fmt.Errorf("%w: frame %d payload: %v", ErrCorrupt, i, err))
			}
			break
		}
		if d.remain >= 0 {
			d.remain -= int64(n)
		}
		if tolerant {
			d.report.Chunks[i].Offset = int64(off)
			d.report.Chunks[i].Length = n
		}
		crc := frameCRC(payload)
		if d.version >= 2 {
			var post [4]byte
			if _, err := io.ReadFull(d.r, post[:]); err != nil {
				if tolerant {
					degradeRest(i, ReasonTruncated)
				} else {
					fail(fmt.Errorf("%w: frame %d checksum truncated: %v", ErrCorrupt, i, err))
				}
				break
			}
			if d.remain >= 0 {
				d.remain -= 4
			}
			if got := binary.LittleEndian.Uint32(post[:]); got != crc {
				if tolerant {
					// The frame's bytes were all read, so framing plausibly
					// survives: record the loss and keep going. If the
					// length prefix itself was the damaged byte, the next
					// frame fails too and the stream degrades from there.
					d.report.Chunks[i].Reason = ReasonBadCRC
					if d.policy == PolicyFill {
						jobs <- decJob{index: i, payload: nil}
					}
					buf := payload[:0]
					bufPool.Put(&buf)
					entries[i] = indexEntry{offset: off, length: uint32(n), crc: crc}
					off += 4 + uint64(n) + 4
					continue
				}
				fail(fmt.Errorf("%w: frame %d checksum mismatch", ErrCorrupt, i))
				break
			}
		}
		entries[i] = indexEntry{offset: off, length: uint32(n), crc: crc}
		if d.version >= 2 {
			off += 4 + uint64(n) + 4
		} else {
			off += 4 + uint64(n)
		}
		if d.version >= 3 && len(payload) > 0 {
			tags[i] = codec.CodecID(payload[0])
			tagSeen[i] = true
		}
		jobs <- decJob{index: i, payload: payload}
	}
	close(jobs)
	wg.Wait()
	if tolerant {
		defer d.report.tally()
	}
	if firstErr != nil {
		return firstErr
	}

	if d.version >= 2 {
		// Consume and corroborate the index footer: every entry must match
		// the frames just decoded. Under a tolerant policy a damaged or
		// unreachable footer is recorded, not fatal — the frames already
		// vouched for themselves via their own CRCs.
		corroborate := func() error {
			if framingLost {
				return fmt.Errorf("%w: footer unreachable after framing loss", ErrCorrupt)
			}
			idxLen := indexSizeFor(d.version, len(d.chunks))
			idx := make([]byte, idxLen)
			if _, err := io.ReadFull(d.r, idx); err != nil {
				return fmt.Errorf("%w: truncated index footer: %v", ErrCorrupt, err)
			}
			got, codecs, _, err := parseIndex(idx, d.version, len(d.chunks), off, int(off)+idxLen)
			if err != nil {
				return err
			}
			for i := range got {
				if got[i] != entries[i] {
					return fmt.Errorf("%w: index entry %d disagrees with frame", ErrCorrupt, i)
				}
			}
			for i := range codecs {
				if tagSeen[i] && tags[i] != codecs[i] {
					return fmt.Errorf("%w: index codec %s disagrees with frame %d tag %d",
						ErrCorrupt, codecs[i], i, tags[i])
				}
			}
			return nil
		}
		err := corroborate()
		if tolerant {
			d.report.IndexIntact = err == nil
		} else if err != nil {
			return err
		}
	}
	return nil
}

// raisePeak lifts the running-maximum counter to cur if it exceeds the
// recorded peak, racing correctly against concurrent raises.
func raisePeak(peak *atomic.Int64, cur int64) {
	for {
		p := peak.Load()
		if cur <= p || peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// readFrame reads exactly n payload bytes into buf (grown as needed),
// allocating in bounded steps so a lying length prefix on a truncated
// stream cannot demand the full claim up front.
func readFrame(r io.Reader, buf []byte, n int) ([]byte, error) {
	buf = buf[:0]
	for len(buf) < n {
		step := n - len(buf)
		if step > readChunkMax {
			step = readChunkMax
		}
		start := len(buf)
		if cap(buf) < start+step {
			grown := make([]byte, start, start+step)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+step]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return buf[:0], err
		}
	}
	return buf, nil
}
