package chunk

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// maxFrameBytesFor bounds how large a single frame payload may claim to
// be, as a function of the largest chunk the container geometry allows. A
// corrupt length prefix must not be able to demand an allocation out of
// proportion to the data it could possibly carry.
func maxFrameBytesFor(chunkLen int) int {
	const slack = 64 << 10
	return 256*chunkLen + slack
}

// readChunkMax caps each allocation step while reading a frame payload,
// so a lying length prefix on a truncated stream fails after at most one
// step instead of allocating the full claim up front.
const readChunkMax = 1 << 20

// Reader is the streaming decoder engine: it reads container frames
// sequentially from any io.Reader (formats v1 and v2), decodes chunks on
// a worker pool, and hands each decoded chunk to a callback. Peak decoded
// data in flight is bounded by workers x chunk size — never the volume.
type Reader struct {
	r       io.Reader
	version int

	volDims   grid.Dims
	chunkDims grid.Dims
	chunks    []grid.Chunk
	workers   int

	consumed bool
	ctx      context.Context // optional cancellation, see SetContext

	inFlight     atomic.Int64
	peakInFlight atomic.Int64
}

// NewReader parses the container's fixed header from r and prepares a
// streaming decode. workers <= 0 means GOMAXPROCS.
func NewReader(r io.Reader, workers int) (*Reader, error) {
	var hdr [fixedHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	d := &Reader{r: r, workers: workers}
	switch {
	case [8]byte(hdr[:8]) == magicV1:
		d.version = 1
	case [8]byte(hdr[:8]) == magicV2:
		d.version = 2
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(hdr[off:])) }
	d.volDims = grid.Dims{NX: u32(8), NY: u32(12), NZ: u32(16)}
	d.chunkDims = grid.Dims{NX: u32(20), NY: u32(24), NZ: u32(28)}
	chunks, err := validateGeometry(d.volDims, d.chunkDims, u32(32))
	if err != nil {
		return nil, err
	}
	d.chunks = chunks
	return d, nil
}

// VolumeDims returns the volume extent declared by the container header.
func (d *Reader) VolumeDims() grid.Dims { return d.volDims }

// ChunkDims returns the declared chunk tiling bound.
func (d *Reader) ChunkDims() grid.Dims { return d.chunkDims }

// NumChunks returns the number of chunks in the container.
func (d *Reader) NumChunks() int { return len(d.chunks) }

// Version reports the container format version (1 or 2).
func (d *Reader) Version() int { return d.version }

// SetWorkers adjusts the decode worker budget before ForEach (<= 0 means
// GOMAXPROCS).
func (d *Reader) SetWorkers(n int) { d.workers = n }

// SetContext attaches a cancellation context to the Reader: once ctx is
// done, the frame producer stops reading and workers stop picking up
// queued decodes, so ForEach returns ctx's error promptly instead of
// draining the container. Call it before ForEach. The zero state never
// cancels.
func (d *Reader) SetContext(ctx context.Context) { d.ctx = ctx }

func (d *Reader) ctxErr() error {
	if d.ctx == nil {
		return nil
	}
	return d.ctx.Err()
}

// PeakInFlightSamples reports the maximum number of decoded samples alive
// at any one time during ForEach — at most workers x chunk size.
func (d *Reader) PeakInFlightSamples() int { return int(d.peakInFlight.Load()) }

// decJob is one compressed frame payload awaiting decode.
type decJob struct {
	index   int
	payload []byte
}

// ForEach streams every chunk of the container through fn: frames are
// read sequentially, decoded in parallel, and fn is invoked once per
// chunk with its geometry and decoded samples. fn runs concurrently on
// worker goroutines and data aliases a worker arena — copy out before
// returning. ForEach consumes the Reader; it can be called once.
func (d *Reader) ForEach(fn func(index int, ch grid.Chunk, data []float64) error) error {
	if d.consumed {
		return fmt.Errorf("chunk: Reader already consumed")
	}
	d.consumed = true

	workers := d.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	intra := 1
	if n := len(d.chunks); workers > n {
		intra = workers / n
		workers = n
	}
	maxChunkLen := 0
	for _, ch := range d.chunks {
		if n := ch.Dims.Len(); n > maxChunkLen {
			maxChunkLen = n
		}
	}
	maxFrame := maxFrameBytesFor(maxChunkLen)

	var (
		failed  atomic.Bool
		mu      sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}

	bufPool := sync.Pool{New: func() any { return new([]byte) }}
	jobs := make(chan decJob, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := scratchPool.Get().(*workerScratch)
			defer scratchPool.Put(ws)
			for job := range jobs {
				if err := d.ctxErr(); err != nil {
					fail(err)
				}
				if !failed.Load() {
					ch := d.chunks[job.index]
					n := int64(ch.Dims.Len())
					raisePeak(&d.peakInFlight, d.inFlight.Add(n))
					data, err := codec.DecodeChunkScratchThreads(job.payload, ch.Dims, ws.codec, intra)
					if err != nil {
						fail(fmt.Errorf("chunk %d: %w", job.index, err))
					} else if err := fn(job.index, ch, data); err != nil {
						fail(err)
					}
					d.inFlight.Add(-n)
				}
				buf := job.payload[:0]
				bufPool.Put(&buf)
			}
		}()
	}

	// Producer: read frames sequentially, recording what the index footer
	// must later corroborate (v2).
	entries := make([]indexEntry, len(d.chunks))
	off := uint64(fixedHeaderSize)
	var prefix [4]byte
	for i := range d.chunks {
		if err := d.ctxErr(); err != nil {
			fail(err)
		}
		if failed.Load() {
			break
		}
		if _, err := io.ReadFull(d.r, prefix[:]); err != nil {
			fail(fmt.Errorf("%w: truncated at frame %d: %v", ErrCorrupt, i, err))
			break
		}
		n := int(binary.LittleEndian.Uint32(prefix[:]))
		if n > maxFrame {
			fail(fmt.Errorf("%w: frame %d claims %d bytes (cap %d)", ErrCorrupt, i, n, maxFrame))
			break
		}
		bp := bufPool.Get().(*[]byte)
		payload, err := readFrame(d.r, *bp, n)
		if err != nil {
			fail(fmt.Errorf("%w: frame %d payload: %v", ErrCorrupt, i, err))
			break
		}
		crc := frameCRC(payload)
		if d.version >= 2 {
			var post [4]byte
			if _, err := io.ReadFull(d.r, post[:]); err != nil {
				fail(fmt.Errorf("%w: frame %d checksum truncated: %v", ErrCorrupt, i, err))
				break
			}
			if got := binary.LittleEndian.Uint32(post[:]); got != crc {
				fail(fmt.Errorf("%w: frame %d checksum mismatch", ErrCorrupt, i))
				break
			}
		}
		entries[i] = indexEntry{offset: off, length: uint32(n), crc: crc}
		if d.version >= 2 {
			off += 4 + uint64(n) + 4
		} else {
			off += 4 + uint64(n)
		}
		jobs <- decJob{index: i, payload: payload}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	if d.version >= 2 {
		// Consume and corroborate the index footer: every entry must match
		// the frames just decoded.
		idxLen := len(d.chunks)*indexEntrySize + aggregateSize + tailSize
		idx := make([]byte, idxLen)
		if _, err := io.ReadFull(d.r, idx); err != nil {
			return fmt.Errorf("%w: truncated index footer: %v", ErrCorrupt, err)
		}
		got, _, err := parseIndex(idx, len(d.chunks), off, int(off)+idxLen)
		if err != nil {
			return err
		}
		for i := range got {
			if got[i] != entries[i] {
				return fmt.Errorf("%w: index entry %d disagrees with frame", ErrCorrupt, i)
			}
		}
	}
	return nil
}

// raisePeak lifts the running-maximum counter to cur if it exceeds the
// recorded peak, racing correctly against concurrent raises.
func raisePeak(peak *atomic.Int64, cur int64) {
	for {
		p := peak.Load()
		if cur <= p || peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// readFrame reads exactly n payload bytes into buf (grown as needed),
// allocating in bounded steps so a lying length prefix on a truncated
// stream cannot demand the full claim up front.
func readFrame(r io.Reader, buf []byte, n int) ([]byte, error) {
	buf = buf[:0]
	for len(buf) < n {
		step := n - len(buf)
		if step > readChunkMax {
			step = readChunkMax
		}
		start := len(buf)
		if cap(buf) < start+step {
			grown := make([]byte, start, start+step)
			copy(grown, buf)
			buf = grown
		}
		buf = buf[:start+step]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return buf[:0], err
		}
	}
	return buf, nil
}
