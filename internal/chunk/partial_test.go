package chunk

import (
	"math"
	"testing"

	"sperr/internal/codec"
	"sperr/internal/grid"
	"sperr/internal/wavelet"
)

func TestDecompressPartialChunked(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 32), 51)
	stream, _, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 1e-5},
		ChunkDims: grid.D3(16, 16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		got, err := DecompressPartial(stream, frac, 0)
		if err != nil {
			t.Fatalf("frac=%g: %v", frac, err)
		}
		e := maxAbsErr(v.Data, got.Data)
		_ = e
		var mse float64
		for i := range v.Data {
			d := v.Data[i] - got.Data[i]
			mse += d * d
		}
		if mse > prev*1.02 {
			t.Errorf("frac=%g: mse %g worse than smaller prefix %g", frac, mse, prev)
		}
		prev = mse
	}
	if _, err := DecompressPartial(stream, 0, 0); err == nil {
		t.Error("fraction 0 should fail")
	}
}

// Low-res decode across a chunk grid that includes remainder chunks with
// fewer wavelet levels than the full chunks: coarse tiles of different
// reduction factors must still assemble into a consistent volume.
func TestDecompressLowResRemainderChunks(t *testing.T) {
	// 48 with 20-chunks: tiles 20, 20, 8. Levels(20)=2, Levels(8)=1.
	vol := testVolume(grid.D3(48, 48, 48), 77)
	stream, _, err := Compress(vol, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 1e-4},
		ChunkDims: grid.D3(20, 20, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	for drop := 0; drop <= 2; drop++ {
		low, err := DecompressLowRes(stream, drop, 0)
		if err != nil {
			t.Fatalf("drop=%d: %v", drop, err)
		}
		// Expected coarse extent per axis: coarse(20)+coarse(20)+coarse(8).
		want := wavelet.CoarseLen(20, drop)*2 + wavelet.CoarseLen(8, drop)
		if low.Dims.NX != want || low.Dims.NY != want || low.Dims.NZ != want {
			t.Fatalf("drop=%d: dims %v, want %d^3", drop, low.Dims, want)
		}
		for i, x := range low.Data {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("drop=%d: non-finite value at %d", drop, i)
			}
		}
	}
	// drop=0 must equal the full decode modulo outlier corrections: check
	// against the tolerance with slack (low-res path skips corrections).
	low0, err := DecompressLowRes(stream, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every point is within a few tolerances of the original even without
	// outlier corrections (q = 1.5t keeps SPECK error small).
	if e := maxAbsErr(vol.Data, low0.Data); e > 1e-4*100 {
		t.Fatalf("drop=0 low-res error %g implausibly large", e)
	}
	if _, err := DecompressLowRes(stream, -1, 0); err == nil {
		t.Error("negative drop should fail")
	}
}

func TestDescribeContainer(t *testing.T) {
	vol := testVolume(grid.D3(24, 24, 24), 3)
	stream, _, err := Compress(vol, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.01},
		ChunkDims: grid.D3(12, 12, 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumChunks != 8 || len(info.Chunks) != 8 {
		t.Fatalf("NumChunks = %d", info.NumChunks)
	}
	if info.VolumeDims != grid.D3(24, 24, 24) {
		t.Fatalf("VolumeDims = %v", info.VolumeDims)
	}
	var total int
	for _, c := range info.Chunks {
		if c.Meta.Mode != codec.ModePWE || c.Meta.Tol != 0.01 {
			t.Fatalf("chunk meta %+v", c.Meta)
		}
		total += c.CompressedBytes
	}
	if total >= info.TotalBytes {
		t.Fatalf("chunk payloads (%d) should be less than container (%d)", total, info.TotalBytes)
	}
	if _, err := Describe([]byte("bogus")); err == nil {
		t.Error("garbage should fail")
	}
}
