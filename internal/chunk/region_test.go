package chunk

import (
	"math"
	"testing"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

func TestDecompressRegion(t *testing.T) {
	v := testVolume(grid.D3(40, 40, 40), 31)
	tol := 0.01
	stream, _, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: tol},
		ChunkDims: grid.D3(16, 16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x0, y0, z0 int
		d          grid.Dims
	}{
		{0, 0, 0, grid.D3(40, 40, 40)},  // whole volume
		{0, 0, 0, grid.D3(16, 16, 16)},  // exactly one chunk
		{10, 10, 10, grid.D3(10, 8, 6)}, // straddles chunk borders
		{39, 39, 39, grid.D3(1, 1, 1)},  // single corner point
		{32, 0, 16, grid.D3(8, 40, 16)}, // remainder chunks
	}
	for _, c := range cases {
		region, err := DecompressRegion(stream, c.x0, c.y0, c.z0, c.d, 0)
		if err != nil {
			t.Fatalf("region %v@(%d,%d,%d): %v", c.d, c.x0, c.y0, c.z0, err)
		}
		for z := 0; z < c.d.NZ; z++ {
			for y := 0; y < c.d.NY; y++ {
				for x := 0; x < c.d.NX; x++ {
					want := v.At(c.x0+x, c.y0+y, c.z0+z)
					got := region.At(x, y, z)
					if math.Abs(got-want) > tol*(1+1e-9) {
						t.Fatalf("region %v: error at (%d,%d,%d): %g vs %g",
							c.d, x, y, z, got, want)
					}
				}
			}
		}
	}
}

// A region decode must match a full decode exactly (same chunk decoder).
func TestRegionMatchesFullDecode(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 32), 8)
	stream, _, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.05},
		ChunkDims: grid.D3(16, 16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	region, err := DecompressRegion(stream, 5, 7, 9, grid.D3(20, 18, 12), 0)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 12; z++ {
		for y := 0; y < 18; y++ {
			for x := 0; x < 20; x++ {
				if region.At(x, y, z) != full.At(5+x, 7+y, 9+z) {
					t.Fatalf("region differs from full decode at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestTouchedChunks(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 32), 4)
	stream, _, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.1},
		ChunkDims: grid.D3(16, 16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	touched, total, err := TouchedChunks(stream, 0, 0, 0, grid.D3(8, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 || touched != 1 {
		t.Fatalf("corner cutout touched %d/%d chunks, want 1/8", touched, total)
	}
	touched, _, err = TouchedChunks(stream, 8, 8, 8, grid.D3(16, 16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if touched != 8 {
		t.Fatalf("center cutout touched %d chunks, want 8", touched)
	}
}

func TestRegionValidation(t *testing.T) {
	v := testVolume(grid.D3(16, 16, 16), 2)
	stream, _, err := Compress(v, Options{Params: codec.Params{Mode: codec.ModePWE, Tol: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressRegion(stream, 10, 0, 0, grid.D3(16, 4, 4), 0); err == nil {
		t.Error("out-of-bounds region should fail")
	}
	if _, err := DecompressRegion(stream, -1, 0, 0, grid.D3(4, 4, 4), 0); err == nil {
		t.Error("negative origin should fail")
	}
	if _, err := DecompressRegion(stream, 0, 0, 0, grid.Dims{}, 0); err == nil {
		t.Error("invalid dims should fail")
	}
	if _, err := DecompressRegion([]byte("junk"), 0, 0, 0, grid.D3(1, 1, 1), 0); err == nil {
		t.Error("corrupt stream should fail")
	}
}

// TestRegionDecodesMinimalChunks: on a v2 container the region decoder
// must seek via the index and decode only intersecting chunks — the
// counted helper exposes exactly how many frames it opened.
func TestRegionDecodesMinimalChunks(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 32), 13) // 2x2x2 tiling by 16^3
	stream, _, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.05},
		ChunkDims: grid.D3(16, 16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x0, y0, z0 int
		d          grid.Dims
		want       int
	}{
		{0, 0, 0, grid.D3(4, 4, 4), 1},     // corner cutout: 1 of 8
		{20, 20, 20, grid.D3(4, 4, 4), 1},  // interior of the last chunk
		{8, 8, 8, grid.D3(16, 16, 16), 8},  // center straddles all 8
		{0, 0, 0, grid.D3(32, 32, 1), 4},   // one XY plane: a z-layer of 4
		{14, 0, 0, grid.D3(4, 4, 4), 2},    // crosses one x boundary
	}
	for _, c := range cases {
		_, decoded, err := decompressRegionCounted(stream, c.x0, c.y0, c.z0, c.d, 0)
		if err != nil {
			t.Fatalf("region %v@(%d,%d,%d): %v", c.d, c.x0, c.y0, c.z0, err)
		}
		if decoded != c.want {
			t.Errorf("region %v@(%d,%d,%d): decoded %d chunks, want %d",
				c.d, c.x0, c.y0, c.z0, decoded, c.want)
		}
	}
}
