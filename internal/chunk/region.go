package chunk

import (
	"fmt"

	"sperr/internal/grid"
)

// DecompressRegion reconstructs only the axis-aligned box of size dims
// anchored at (x0, y0, z0), decoding just the chunks that intersect it.
// This is the random-access payoff of the chunked design (Section III-D):
// serving a small cutout of a large archived volume — the access pattern
// of the community databases that motivate the paper — touches a fraction
// of the stream.
func DecompressRegion(stream []byte, x0, y0, z0 int, dims grid.Dims, workers int) (*grid.Volume, error) {
	vol, _, err := decompressRegionCounted(stream, x0, y0, z0, dims, workers)
	return vol, err
}

// decompressRegionCounted is DecompressRegion also reporting how many
// chunks it decoded — the access-cost witness the region tests assert on.
// On v2 containers the frames are located via the index footer, so the
// bytes of non-intersecting frames are never touched (not even for
// checksumming; frame CRCs verify lazily at payload access).
func decompressRegionCounted(stream []byte, x0, y0, z0 int, dims grid.Dims, workers int) (*grid.Volume, int, error) {
	if !dims.Valid() {
		return nil, 0, fmt.Errorf("chunk: invalid region dims %v", dims)
	}
	c, err := parseContainer(stream)
	if err != nil {
		return nil, 0, err
	}
	if x0 < 0 || y0 < 0 || z0 < 0 ||
		x0+dims.NX > c.volDims.NX || y0+dims.NY > c.volDims.NY || z0+dims.NZ > c.volDims.NZ {
		return nil, 0, fmt.Errorf("chunk: region %v@(%d,%d,%d) exceeds volume %v",
			dims, x0, y0, z0, c.volDims)
	}
	// Select intersecting chunks.
	var hit []int
	for i, ch := range c.chunks {
		if ch.X0 < x0+dims.NX && ch.X0+ch.Dims.NX > x0 &&
			ch.Y0 < y0+dims.NY && ch.Y0+ch.Dims.NY > y0 &&
			ch.Z0 < z0+dims.NZ && ch.Z0+ch.Dims.NZ > z0 {
			hit = append(hit, i)
		}
	}
	out := grid.NewVolume(dims)
	err = forEachChunkScratch(len(hit), workers, func(k int, ws *workerScratch) error {
		i := hit[k]
		ch := c.chunks[i]
		data, err := c.decodeChunk(i, ch.Dims, ws.codec, 1)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		// Intersection of the chunk box with the region, in volume coords.
		ix0, ix1 := maxInt(ch.X0, x0), minInt(ch.X0+ch.Dims.NX, x0+dims.NX)
		iy0, iy1 := maxInt(ch.Y0, y0), minInt(ch.Y0+ch.Dims.NY, y0+dims.NY)
		iz0, iz1 := maxInt(ch.Z0, z0), minInt(ch.Z0+ch.Dims.NZ, z0+dims.NZ)
		for z := iz0; z < iz1; z++ {
			for y := iy0; y < iy1; y++ {
				srcOff := ch.Dims.Index(ix0-ch.X0, y-ch.Y0, z-ch.Z0)
				dstOff := dims.Index(ix0-x0, y-y0, z-z0)
				copy(out.Data[dstOff:dstOff+(ix1-ix0)], data[srcOff:srcOff+(ix1-ix0)])
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, len(hit), nil
}

// TouchedChunks reports how many chunks a region decode would visit (for
// access-cost accounting).
func TouchedChunks(stream []byte, x0, y0, z0 int, dims grid.Dims) (touched, total int, err error) {
	c, err := parseContainer(stream)
	if err != nil {
		return 0, 0, err
	}
	for _, ch := range c.chunks {
		if ch.X0 < x0+dims.NX && ch.X0+ch.Dims.NX > x0 &&
			ch.Y0 < y0+dims.NY && ch.Y0+ch.Dims.NY > y0 &&
			ch.Z0 < z0+dims.NZ && ch.Z0+ch.Dims.NZ > z0 {
			touched++
		}
	}
	return touched, len(c.chunks), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
