package chunk

import (
	"encoding/binary"
	"fmt"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// This file is the fault-tolerant decode path. The container format makes
// every chunk an independent decode unit (paper Section III-D): each v2
// frame carries its own CRC-32C and each chunk payload records its sample
// count, so damage to one frame — or to the index footer — never has to
// cost more than the bytes it actually touched. The salvage reader
// exploits that: it locates frames through the index footer when the
// footer is intact, falls back to a resynchronizing scan when it is not,
// validates every candidate frame against its checksum and header, and
// reconstructs a usable frame table from the intact frames alone.

// Policy selects how a decode reacts to damaged frames.
type Policy int

const (
	// PolicyFailFast aborts the decode on the first damaged byte — the
	// historical behavior and the default everywhere.
	PolicyFailFast Policy = iota
	// PolicySkip drops damaged chunks: intact chunks decode normally,
	// damaged ones are recorded in the report and never delivered.
	PolicySkip
	// PolicyFill synthesizes fill-valued samples for damaged chunks, so a
	// consumer still observes every chunk exactly once and the assembled
	// volume keeps its full extent.
	PolicyFill
)

// Damage reasons recorded in ChunkOutcome.Reason. One chunk carries at
// most one reason; recovered chunks carry none.
const (
	ReasonMissingFrame = "missing frame"
	ReasonBadCRC       = "frame checksum mismatch"
	ReasonBadHeader    = "frame header mismatch"
	ReasonDecode       = "decode failed"
	ReasonTruncated    = "truncated"
	ReasonFramingLost  = "framing lost"
)

// ChunkOutcome reports the fate of one chunk in a salvage decode.
type ChunkOutcome struct {
	// Index is the chunk's position in container order; Origin its anchor
	// in the volume; Dims its extent.
	Index  int
	Origin [3]int
	Dims   grid.Dims
	// Recovered is true when the chunk's samples were reconstructed from
	// a verified frame. Reason explains a skip ("" when recovered).
	Recovered bool
	Reason    string
	// Offset is the byte offset of the chunk's frame (its length prefix)
	// when a candidate frame was located, -1 otherwise; Length the payload
	// size.
	Offset int64
	Length int
}

// SalvageReport summarizes a fault-tolerant decode: which chunks were
// recovered, which were lost and why, and which byte ranges of the
// container could not be attributed to any verified frame.
type SalvageReport struct {
	// Version is the container format version (1, 2, or 3).
	Version int
	// NumChunks is the container's declared chunk count; Recovered +
	// Skipped always equals it.
	NumChunks int
	Recovered int
	Skipped   int
	// Chunks holds one outcome per chunk, in container order.
	Chunks []ChunkOutcome
	// IndexIntact reports whether the v2 index footer parsed and was used
	// to locate frames (always false for v1, which has no footer).
	IndexIntact bool
	// Resynced reports that the frame scan had to skip bytes to find the
	// next frame — the stream's framing itself was damaged.
	Resynced bool
	// LostRanges lists [start, end) byte ranges of the container that
	// could not be attributed to a verified frame, the fixed header, or an
	// intact footer.
	LostRanges [][2]int64
}

// SkippedIndices returns the indices of the chunks that were not
// recovered, in container order.
func (r *SalvageReport) SkippedIndices() []int {
	var out []int
	for i := range r.Chunks {
		if !r.Chunks[i].Recovered {
			out = append(out, i)
		}
	}
	return out
}

// Degraded reports whether any chunk was lost.
func (r *SalvageReport) Degraded() bool { return r.Skipped > 0 }

// tally finalizes the Recovered/Skipped counters from the per-chunk
// outcomes.
func (r *SalvageReport) tally() {
	r.Recovered, r.Skipped = 0, 0
	for i := range r.Chunks {
		if r.Chunks[i].Recovered {
			r.Recovered++
		} else {
			r.Skipped++
		}
	}
}

// newSalvageReport seeds a report with every chunk marked missing; the
// frame location pass upgrades the chunks it finds candidates for.
func newSalvageReport(version int, chunks []grid.Chunk) *SalvageReport {
	rep := &SalvageReport{
		Version:   version,
		NumChunks: len(chunks),
		Chunks:    make([]ChunkOutcome, len(chunks)),
	}
	for i, ch := range chunks {
		rep.Chunks[i] = ChunkOutcome{
			Index:  i,
			Origin: [3]int{ch.X0, ch.Y0, ch.Z0},
			Dims:   ch.Dims,
			Reason: ReasonMissingFrame,
			Offset: -1,
		}
	}
	return rep
}

// scannedFrame is one self-validated frame located by the resync scan.
type scannedFrame struct {
	off     int64
	payload []byte
	points  int // sample count from the chunk header; 0 when unrecorded
}

// frameValidAt reports whether a verified frame starts at off, returning
// its payload and recorded sample count. Validity means: a plausible
// length prefix, in-bounds payload, a matching CRC-32C (v2), and a chunk
// header that parses. v1 frames carry no checksum, so the header parse is
// the only self-check — decode failures catch what it cannot.
func frameValidAt(stream []byte, off, maxFrame, version int) (payload []byte, points int, ok bool) {
	overhead := 4
	if version >= 2 {
		overhead = frameOverheadV2
	}
	if off+overhead > len(stream) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(stream[off:]))
	if n <= 0 || n > maxFrame || off+overhead+n > len(stream) {
		return nil, 0, false
	}
	payload = stream[off+4 : off+4+n]
	if version >= 2 {
		if frameCRC(payload) != binary.LittleEndian.Uint32(stream[off+4+n:]) {
			return nil, 0, false
		}
	}
	meta, err := describePayload(payload, version)
	if err != nil {
		return nil, 0, false
	}
	return payload, meta.Points, true
}

// describePayload parses a frame payload's self-description with the
// version-correct dispatch: v3 payloads lead with a codec tag.
func describePayload(payload []byte, version int) (*codec.StreamMeta, error) {
	if version >= 3 {
		return codec.DescribeTagged(payload)
	}
	return codec.DescribeChunk(payload)
}

// scanFrames walks the byte range after the fixed header looking for
// verified frames, resynchronizing byte-by-byte after damage. It returns
// the frames in stream order plus the byte ranges no verified frame
// accounted for. For v2 the CRC makes a false resync accept essentially
// impossible (the index footer's bytes, scanned when the footer itself is
// damaged, never checksum as frames); for v1 the chunk-header parse is the
// filter and the decode stage backstops it.
func scanFrames(stream []byte, version, maxFrame int) (frames []scannedFrame, lost [][2]int64, resynced bool) {
	overhead := 4
	if version >= 2 {
		overhead = frameOverheadV2
	}
	off := fixedHeaderSize
	lostStart := int64(-1)
	flush := func(upto int64) {
		if lostStart >= 0 {
			lost = append(lost, [2]int64{lostStart, upto})
			lostStart = -1
		}
	}
	for off < len(stream) {
		payload, points, ok := frameValidAt(stream, off, maxFrame, version)
		if ok {
			flush(int64(off))
			frames = append(frames, scannedFrame{off: int64(off), payload: payload, points: points})
			off += overhead + len(payload)
			continue
		}
		if lostStart < 0 {
			lostStart = int64(off)
			resynced = true
		}
		off++
	}
	flush(int64(len(stream)))
	return frames, lost, resynced
}

// assignFrames maps scanned frames to chunk indices. Frames appear in
// container (chunk) order, so a cursor walks forward; each frame claims
// the first unassigned chunk at or past the cursor whose sample count
// matches the frame header's recorded points (older streams without the
// field claim the cursor position directly). Frames matching no remaining
// chunk are unattributable and their bytes counted lost.
func assignFrames(frames []scannedFrame, chunks []grid.Chunk, version int, rep *SalvageReport) [][]byte {
	payloads := make([][]byte, len(chunks))
	overhead := 4
	if version >= 2 {
		overhead = frameOverheadV2
	}
	cursor := 0
	for fi := range frames {
		fr := &frames[fi]
		idx := -1
		if fr.points > 0 {
			for j := cursor; j < len(chunks); j++ {
				if chunks[j].Dims.Len() == fr.points {
					idx = j
					break
				}
			}
		} else if cursor < len(chunks) {
			idx = cursor
		}
		if idx < 0 {
			rep.LostRanges = append(rep.LostRanges,
				[2]int64{fr.off, fr.off + int64(overhead) + int64(len(fr.payload))})
			continue
		}
		payloads[idx] = fr.payload
		rep.Chunks[idx].Offset = fr.off
		rep.Chunks[idx].Length = len(fr.payload)
		rep.Chunks[idx].Reason = ""
		cursor = idx + 1
	}
	return payloads
}

// locateFrames finds each chunk's candidate frame payload: through the
// index footer when the stream is v2 and the footer is intact (frames
// then verify individually against their indexed CRC), otherwise through
// the resynchronizing scan. Chunks without a verified candidate keep
// their seeded "missing frame" reason; chunks whose indexed frame fails
// verification get a specific reason. The returned slice holds one
// payload per chunk, nil where none verified.
func locateFrames(stream []byte, version int, chunks []grid.Chunk, rep *SalvageReport) [][]byte {
	maxChunkLen := 0
	for _, ch := range chunks {
		if n := ch.Dims.Len(); n > maxChunkLen {
			maxChunkLen = n
		}
	}
	maxFrame := maxFrameBytesFor(maxChunkLen)

	if version >= 2 {
		if idxOff, err := locateIndex(stream, version); err == nil {
			if entries, codecIDs, _, err := parseIndex(stream[idxOff:], version, len(chunks), idxOff, len(stream)); err == nil {
				rep.IndexIntact = true
				payloads := make([][]byte, len(chunks))
				for i, e := range entries {
					p := stream[e.offset+4 : e.offset+4+uint64(e.length)]
					rep.Chunks[i].Offset = int64(e.offset)
					rep.Chunks[i].Length = int(e.length)
					lostRange := [2]int64{int64(e.offset), int64(e.offset) + frameOverheadV2 + int64(e.length)}
					if frameCRC(p) != e.crc {
						rep.Chunks[i].Reason = ReasonBadCRC
						rep.LostRanges = append(rep.LostRanges, lostRange)
						continue
					}
					meta, err := describePayload(p, version)
					if err != nil || (meta.Points != 0 && meta.Points != chunks[i].Dims.Len()) ||
						(codecIDs != nil && (len(p) < 1 || codec.CodecID(p[0]) != codecIDs[i])) {
						rep.Chunks[i].Reason = ReasonBadHeader
						rep.LostRanges = append(rep.LostRanges, lostRange)
						continue
					}
					payloads[i] = p
					rep.Chunks[i].Reason = ""
				}
				return payloads
			}
		}
	}
	frames, lost, resynced := scanFrames(stream, version, maxFrame)
	rep.LostRanges = append(rep.LostRanges, lost...)
	rep.Resynced = resynced
	return assignFrames(frames, chunks, version, rep)
}

// Audit verifies a container without decoding any samples: every frame is
// checked against its CRC (v2) and its chunk header cross-checked against
// the geometry, through the index footer or — when the footer or framing
// is damaged — the resynchronizing scan. In the returned report,
// Recovered means "verified recoverable"; the fsck tool prints it as a
// damage map. The error is non-nil only when the fixed header itself is
// unusable (nothing attributable without the geometry).
func Audit(stream []byte) (*SalvageReport, error) {
	version, _, _, chunks, err := parseFixedHeader(stream)
	if err != nil {
		return nil, err
	}
	rep := newSalvageReport(version, chunks)
	payloads := locateFrames(stream, version, chunks, rep)
	for i := range payloads {
		if payloads[i] != nil {
			rep.Chunks[i].Recovered = true
		}
	}
	rep.tally()
	return rep, nil
}

// Salvage reconstructs as much of the volume as the stream's intact
// frames allow. Chunks whose frames are damaged or missing hold fill in
// the returned volume (every sample of the chunk), and the report says
// exactly which chunks those are and why. The error is non-nil only when
// the fixed header is unusable; all frame- and footer-level damage is
// absorbed into the report.
func Salvage(stream []byte, fill float64, workers int) (*grid.Volume, *SalvageReport, error) {
	version, volDims, _, chunks, err := parseFixedHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	rep := newSalvageReport(version, chunks)
	payloads := locateFrames(stream, version, chunks, rep)

	vol := grid.NewVolume(volDims)
	for i := range vol.Data {
		vol.Data[i] = fill
	}
	// Decode the candidates in parallel. Outcome slots are per-index, so
	// workers write disjoint report entries and disjoint volume regions.
	_ = forEachChunkScratch(len(chunks), workers, func(i int, ws *workerScratch) error {
		if payloads[i] == nil {
			return nil
		}
		ch := chunks[i]
		var data []float64
		var err error
		if version >= 3 {
			data, err = decodeTaggedPayload(payloads[i], ch.Dims, ws.codec, 1)
		} else {
			data, err = codec.DecodeChunkScratch(payloads[i], ch.Dims, ws.codec)
		}
		if err != nil {
			rep.Chunks[i].Reason = ReasonDecode
			return nil
		}
		vol.InsertSlice(data, ch.Dims, ch.X0, ch.Y0, ch.Z0)
		rep.Chunks[i].Recovered = true
		return nil
	})
	rep.tally()
	return vol, rep, nil
}

// Repair rewrites a damaged container as a clean stream: verified frames
// are kept byte-for-byte (so their chunks later decode bit-identically),
// unrecoverable chunks are replaced by placeholder frames encoding
// all-zero samples, and the index footer is regenerated from scratch. v1
// input is upgraded to v2 in the process; v3 input stays v3, its frame
// codec tags preserved and placeholders SPERR-coded. The report describes
// the input's damage (Recovered = frames kept verbatim). Repair fails
// only when the fixed header is unusable or no frame at all verified
// (there is nothing to anchor the coding parameters to).
func Repair(stream []byte) ([]byte, *SalvageReport, error) {
	version, volDims, chunkDims, chunks, err := parseFixedHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	rep := newSalvageReport(version, chunks)
	payloads := locateFrames(stream, version, chunks, rep)

	// v1 frames carry no checksum, so a payload with undetectably damaged
	// bytes can pass the header-level checks. A repaired container must
	// strict-decode, so prove each kept frame by decoding it; failures
	// become placeholders like any other lost chunk.
	if version < 2 {
		scratch := codec.NewScratch()
		for i := range payloads {
			if payloads[i] == nil {
				continue
			}
			if _, err := codec.DecodeChunkScratch(payloads[i], chunks[i].Dims, scratch); err != nil {
				payloads[i] = nil
				rep.Chunks[i].Reason = ReasonDecode
			}
		}
	}

	// Anchor the container-wide coding parameters: the intact footer's
	// aggregates when available, else the first verified frame's header.
	var agg aggregates
	haveAgg := false
	if rep.IndexIntact {
		if idxOff, err := locateIndex(stream, version); err == nil {
			if _, _, a, err := parseIndex(stream[idxOff:], version, len(chunks), idxOff, len(stream)); err == nil {
				agg, haveAgg = a, true
			}
		}
	}
	if !haveAgg {
		for _, p := range payloads {
			if p == nil {
				continue
			}
			if meta, err := describePayload(p, version); err == nil {
				agg = aggregates{mode: meta.Mode, entropy: meta.Entropy, tol: meta.Tol}
				haveAgg = true
				break
			}
		}
	}
	if !haveAgg {
		return nil, rep, fmt.Errorf("%w: no verified frame to repair from", ErrCorrupt)
	}

	// Placeholder coding parameters: the mode must match the container's
	// (Describe and the aggregates are container-wide), the budget barely
	// matters — placeholders encode constant zero, which costs almost
	// nothing at any setting. Placeholders are always SPERR-coded, so an
	// adaptive container's placeholders fall back to plain PWE.
	params := codec.Params{Mode: agg.mode, Entropy: agg.entropy}
	switch agg.mode {
	case codec.ModePWE:
		params.Tol = agg.tol
	case codec.ModeBPP:
		params.BitsPerPoint = 1
	case codec.ModeRMSE:
		params.TargetRMSE = 1
	case codec.ModeAdaptive:
		params.Mode = codec.ModePWE
		params.Tol = agg.tol
		if !(params.Tol > 0) {
			params.Tol = 1
		}
	}

	outVersion := 2
	magic := magicV2
	if version >= 3 {
		outVersion = 3
		magic = magicV3
	}
	out := appendFixedHeader(make([]byte, 0, len(stream)), magic, volDims, chunkDims, len(chunks))
	entries := make([]indexEntry, len(chunks))
	var codecIDs []codec.CodecID
	if outVersion >= 3 {
		codecIDs = make([]codec.CodecID, len(chunks))
	}
	agg.speckBits, agg.outlierBits = 0, 0
	off := uint64(fixedHeaderSize)
	for i, ch := range chunks {
		payload := payloads[i]
		if payload == nil {
			zero := make([]float64, ch.Dims.Len())
			payload, _, err = codec.EncodeChunk(zero, ch.Dims, params)
			if err != nil {
				return nil, rep, fmt.Errorf("chunk: repair placeholder %d: %w", i, err)
			}
			if outVersion >= 3 {
				payload = append([]byte{byte(codec.CodecSPERR)}, payload...)
			}
		} else {
			rep.Chunks[i].Recovered = true
		}
		if codecIDs != nil {
			codecIDs[i] = codec.CodecID(payload[0])
		}
		if meta, err := describePayload(payload, outVersion); err == nil {
			agg.speckBits += meta.SpeckBits
			agg.outlierBits += meta.OutlierBits
		}
		crc := frameCRC(payload)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc)
		entries[i] = indexEntry{offset: off, length: uint32(len(payload)), crc: crc}
		off += frameOverheadV2 + uint64(len(payload))
	}
	out = appendIndex(out, outVersion, entries, codecIDs, agg, off)
	rep.tally()
	return out, rep, nil
}
