// Package chunk implements SPERR's embarrassingly parallel execution
// strategy (paper Section III-D): a large volume is divided into chunks,
// each chunk is compressed independently on its own goroutine (standing in
// for the paper's OpenMP threads), and the per-chunk bitstreams are
// concatenated under a container header. Chunk dimensions need not divide
// the volume dimensions; remainder chunks are simply smaller. The achieved
// parallelism is capped by the number of chunks, exactly as the paper
// observes.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// magic identifies a SPERR-Go container stream.
var magic = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '1'}

// DefaultChunkDim is the default chunk edge length; the paper settles on
// 256^3 as a good balance between compression efficiency and exposed
// parallelism (Section V-B).
const DefaultChunkDim = 256

// ErrCorrupt reports an undecodable container.
var ErrCorrupt = errors.New("chunk: corrupt container")

// Options controls a volume compression.
type Options struct {
	// Params is forwarded to every chunk encoder.
	Params codec.Params
	// ChunkDims bounds each chunk; zero components default to
	// DefaultChunkDim. Chunks at the high boundaries may be smaller.
	ChunkDims grid.Dims
	// Workers is the number of concurrent chunk encoders; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Instrument, when non-nil, receives one Event per completed chunk.
	// Events are delivered in chunk-index order regardless of Workers: a
	// reorder buffer holds out-of-order completions until the preceding
	// chunks finish. The callback runs on pipeline goroutines under the
	// buffer's lock, so it must be fast and must not call back into this
	// package.
	Instrument func(Event)
}

// Event describes one completed chunk compression, for instrumentation.
type Event struct {
	// Index is the chunk's position in container order.
	Index int
	// Dims is the chunk extent.
	Dims grid.Dims
	// BytesIn is the uncompressed chunk size (points x 8 bytes).
	BytesIn int
	// BytesOut is the compressed chunk stream size.
	BytesOut int
	// WallTime covers the chunk's copy-in plus all four codec stages.
	WallTime time.Duration
	// ScratchGrows counts arena buffer (re)allocations during this chunk;
	// zero once the worker's scratch is warm.
	ScratchGrows int
	// Stats is the chunk's stage breakdown.
	Stats codec.Stats
}

// eventSequencer delivers events in chunk-index order: completions
// arriving ahead of their turn wait in a map until the gap fills. emit
// runs under mu, serializing callbacks.
type eventSequencer struct {
	mu      sync.Mutex
	next    int
	pending map[int]Event
	emit    func(Event)
}

func newEventSequencer(emit func(Event)) *eventSequencer {
	return &eventSequencer{pending: make(map[int]Event), emit: emit}
}

func (q *eventSequencer) deliver(e Event) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e.Index != q.next {
		q.pending[e.Index] = e
		return
	}
	q.emit(e)
	q.next++
	for {
		e, ok := q.pending[q.next]
		if !ok {
			return
		}
		delete(q.pending, q.next)
		q.emit(e)
		q.next++
	}
}

// workerScratch is the per-goroutine arena of the parallel pipeline: the
// codec's scratch plus the chunk copy-in slab. Drawn from scratchPool so
// repeated Compress/Decompress calls reuse warmed arenas.
type workerScratch struct {
	codec *codec.Scratch
	slab  []float64
}

var scratchPool = sync.Pool{New: func() any {
	return &workerScratch{codec: codec.NewScratch()}
}}

func (o Options) chunkDims() grid.Dims {
	d := o.ChunkDims
	if d.NX <= 0 {
		d.NX = DefaultChunkDim
	}
	if d.NY <= 0 {
		d.NY = DefaultChunkDim
	}
	if d.NZ <= 0 {
		d.NZ = DefaultChunkDim
	}
	return d
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats aggregates per-chunk statistics of one volume compression.
type Stats struct {
	Chunks      []codec.Stats
	WallTime    time.Duration // end-to-end wall time of Compress
	TotalBytes  int
	NumPoints   int
	NumOutliers int
	SpeckBits   uint64
	OutlierBits uint64

	// MaxChunkTime is the longest single-chunk wall time (copy-in plus
	// codec stages) — the parallel pipeline's critical path.
	MaxChunkTime time.Duration
	// ScratchGrows totals arena buffer (re)allocations across all workers;
	// near zero when the scratch pool is warm.
	ScratchGrows int
}

// BPP returns the achieved container bitrate in bits per point.
func (s *Stats) BPP() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return float64(s.TotalBytes*8) / float64(s.NumPoints)
}

// Compress compresses vol chunk-by-chunk in parallel and returns the
// container stream.
func Compress(vol *grid.Volume, opts Options) ([]byte, *Stats, error) {
	if !vol.Dims.Valid() {
		return nil, nil, fmt.Errorf("chunk: invalid volume dims %v", vol.Dims)
	}
	start := time.Now()
	chunks := grid.SplitChunks(vol.Dims, opts.chunkDims())
	streams := make([][]byte, len(chunks))
	stats := make([]codec.Stats, len(chunks))
	errs := make([]error, len(chunks))
	walls := make([]time.Duration, len(chunks))
	grows := make([]int, len(chunks))

	var seq *eventSequencer
	if opts.Instrument != nil {
		seq = newEventSequencer(opts.Instrument)
	}

	// When the worker budget exceeds the number of chunks, leftover workers
	// would idle: hand them to the chunks as intra-chunk threads instead
	// (data-parallel wavelet passes and outlier scans). Streams stay
	// byte-identical at every split, so this is purely a scheduling choice.
	workers := opts.workers()
	params := opts.Params
	if workers > len(chunks) {
		params.Threads = workers / len(chunks)
		workers = len(chunks)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := scratchPool.Get().(*workerScratch)
			defer scratchPool.Put(ws)
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(chunks) {
					return
				}
				c := chunks[i]
				t0 := time.Now()
				g0 := ws.codec.Grows()
				ws.slab = vol.CutoutInto(ws.slab, c.X0, c.Y0, c.Z0, c.Dims)
				stream, st, err := codec.EncodeChunkScratch(ws.slab, c.Dims, params, ws.codec)
				if err != nil {
					errs[i] = fmt.Errorf("chunk %d %v: %w", i, c.Dims, err)
					return
				}
				streams[i] = stream
				stats[i] = *st
				walls[i] = time.Since(t0)
				grows[i] = ws.codec.Grows() - g0
				if seq != nil {
					seq.deliver(Event{
						Index:        i,
						Dims:         c.Dims,
						BytesIn:      c.Dims.Len() * 8,
						BytesOut:     len(stream),
						WallTime:     walls[i],
						ScratchGrows: grows[i],
						Stats:        *st,
					})
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Container: magic | volume dims | chunk dims | nchunks | lengths | payloads.
	cd := opts.chunkDims()
	head := make([]byte, 0, 8+4*7+4*len(chunks))
	head = append(head, magic[:]...)
	for _, v := range []int{vol.Dims.NX, vol.Dims.NY, vol.Dims.NZ, cd.NX, cd.NY, cd.NZ, len(chunks)} {
		head = binary.LittleEndian.AppendUint32(head, uint32(v))
	}
	total := len(head)
	for _, s := range streams {
		total += 4 + len(s)
	}
	out := make([]byte, 0, total)
	out = append(out, head...)
	for _, s := range streams {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}

	agg := &Stats{
		Chunks:     stats,
		WallTime:   time.Since(start),
		TotalBytes: len(out),
		NumPoints:  vol.Dims.Len(),
	}
	for i := range stats {
		agg.NumOutliers += stats[i].NumOutliers
		agg.SpeckBits += stats[i].SpeckBits
		agg.OutlierBits += stats[i].OutlierBits
		agg.ScratchGrows += grows[i]
		if walls[i] > agg.MaxChunkTime {
			agg.MaxChunkTime = walls[i]
		}
	}
	return out, agg, nil
}

// Decompress reconstructs a volume from a container stream, decoding
// chunks in parallel on up to workers goroutines (<= 0 means GOMAXPROCS).
func Decompress(stream []byte, workers int) (*grid.Volume, error) {
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	vol := grid.NewVolume(c.volDims)
	// Mirror Compress: surplus workers become intra-chunk threads.
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	intra := 1
	if n := len(c.chunks); n > 0 && w > n {
		intra = w / n
	}
	err = forEachChunkScratch(len(c.chunks), workers, func(i int, ws *workerScratch) error {
		ch := c.chunks[i]
		data, err := codec.DecodeChunkScratchThreads(c.payloads[i], ch.Dims, ws.codec, intra)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		// Chunks are disjoint, so concurrent InsertSlice calls touch
		// disjoint regions of vol.Data. data aliases the worker's arena;
		// the copy-out below finishes before the arena's next use.
		vol.InsertSlice(data, ch.Dims, ch.X0, ch.Y0, ch.Z0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vol, nil
}

// forEachChunkParallel runs fn(i) for i in [0, n) on up to workers
// goroutines (<= 0 means GOMAXPROCS) and returns the first error.
func forEachChunkParallel(n, workers int, fn func(i int) error) error {
	return forEachChunkScratch(n, workers, func(i int, _ *workerScratch) error {
		return fn(i)
	})
}

// forEachChunkScratch is forEachChunkParallel handing each worker
// goroutine a pooled arena for the duration of its run.
func forEachChunkScratch(n, workers int, fn func(i int, ws *workerScratch) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := scratchPool.Get().(*workerScratch)
			defer scratchPool.Put(ws)
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i, ws); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
