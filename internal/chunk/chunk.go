// Package chunk implements SPERR's embarrassingly parallel execution
// strategy (paper Section III-D): a large volume is divided into chunks,
// each chunk is compressed independently on its own goroutine (standing in
// for the paper's OpenMP threads), and the per-chunk bitstreams are
// concatenated under a container header. Chunk dimensions need not divide
// the volume dimensions; remainder chunks are simply smaller. The achieved
// parallelism is capped by the number of chunks, exactly as the paper
// observes.
package chunk

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"time"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// DefaultChunkDim is the default chunk edge length; the paper settles on
// 256^3 as a good balance between compression efficiency and exposed
// parallelism (Section V-B).
const DefaultChunkDim = 256

// ErrCorrupt reports an undecodable container.
var ErrCorrupt = errors.New("chunk: corrupt container")

// Options controls a volume compression.
type Options struct {
	// Params is forwarded to every chunk encoder.
	Params codec.Params
	// ChunkDims bounds each chunk; zero components default to
	// DefaultChunkDim. Chunks at the high boundaries may be smaller.
	ChunkDims grid.Dims
	// Workers is the number of concurrent chunk encoders; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Instrument, when non-nil, receives one Event per completed chunk.
	// Events are delivered in chunk-index order regardless of Workers: a
	// reorder buffer holds out-of-order completions until the preceding
	// chunks finish. The callback runs on pipeline goroutines under the
	// buffer's lock, so it must be fast and must not call back into this
	// package.
	Instrument func(Event)
}

// Event describes one completed chunk compression, for instrumentation.
type Event struct {
	// Index is the chunk's position in container order.
	Index int
	// Dims is the chunk extent.
	Dims grid.Dims
	// BytesIn is the uncompressed chunk size (points x 8 bytes).
	BytesIn int
	// BytesOut is the compressed chunk stream size.
	BytesOut int
	// Codec identifies the backend that coded this chunk (always
	// CodecSPERR outside adaptive/fixed-backend v3 streams).
	Codec codec.CodecID
	// WallTime covers the chunk's copy-in plus all four codec stages.
	WallTime time.Duration
	// ScratchGrows counts arena buffer (re)allocations during this chunk;
	// zero once the worker's scratch is warm.
	ScratchGrows int
	// Stats is the chunk's stage breakdown.
	Stats codec.Stats
}

// workerScratch is the per-goroutine arena of the parallel pipeline: the
// codec's scratch plus the chunk copy-in slab. Drawn from scratchPool so
// repeated Compress/Decompress calls reuse warmed arenas.
type workerScratch struct {
	codec *codec.Scratch
	slab  []float64
}

var scratchPool = sync.Pool{New: func() any {
	return &workerScratch{codec: codec.NewScratch()}
}}

func (o Options) chunkDims() grid.Dims {
	d := o.ChunkDims
	if d.NX <= 0 {
		d.NX = DefaultChunkDim
	}
	if d.NY <= 0 {
		d.NY = DefaultChunkDim
	}
	if d.NZ <= 0 {
		d.NZ = DefaultChunkDim
	}
	return d
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats aggregates per-chunk statistics of one volume compression.
type Stats struct {
	Chunks      []codec.Stats
	WallTime    time.Duration // end-to-end wall time of Compress
	TotalBytes  int
	NumPoints   int
	NumOutliers int
	SpeckBits   uint64
	OutlierBits uint64

	// MaxChunkTime is the longest single-chunk wall time (copy-in plus
	// codec stages) — the parallel pipeline's critical path.
	MaxChunkTime time.Duration
	// ScratchGrows totals arena buffer (re)allocations across all workers;
	// near zero when the scratch pool is warm.
	ScratchGrows int
	// CodecCounts maps backend name to the number of chunks it coded.
	// Always non-nil after a successful compression; {"sperr": n} outside
	// adaptive/fixed-backend streams.
	CodecCounts map[string]int
}

// BPP returns the achieved container bitrate in bits per point.
func (s *Stats) BPP() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return float64(s.TotalBytes*8) / float64(s.NumPoints)
}

// Compress compresses vol chunk-by-chunk in parallel and returns the
// container stream (format v2). It is a thin in-memory wrapper over the
// streaming Writer engine: the whole volume is fed at once, so chunks cut
// straight from vol with no accumulation copies, and the output is
// byte-identical at every worker count.
func Compress(vol *grid.Volume, opts Options) ([]byte, *Stats, error) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, vol.Dims, opts)
	if err != nil {
		return nil, nil, err
	}
	if _, err := w.Write(vol.Data); err != nil {
		w.Close()
		return nil, nil, err
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), w.Stats(), nil
}

// Decompress reconstructs a volume from a container stream (format v1 or
// v2), decoding chunks in parallel on up to workers goroutines (<= 0
// means GOMAXPROCS). It is a thin wrapper over the streaming Reader
// engine with the whole container in memory.
func Decompress(stream []byte, workers int) (*grid.Volume, error) {
	d, err := NewReader(bytes.NewReader(stream), workers)
	if err != nil {
		return nil, err
	}
	vol := grid.NewVolume(d.VolumeDims())
	// Chunks are disjoint, so concurrent InsertSlice calls touch disjoint
	// regions of vol.Data. data aliases the worker's arena; the copy-out
	// completes before the callback returns.
	err = d.ForEach(func(i int, ch grid.Chunk, data []float64) error {
		vol.InsertSlice(data, ch.Dims, ch.X0, ch.Y0, ch.Z0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vol, nil
}

// forEachChunkParallel runs fn(i) for i in [0, n) on up to workers
// goroutines (<= 0 means GOMAXPROCS) and returns the first error.
func forEachChunkParallel(n, workers int, fn func(i int) error) error {
	return forEachChunkScratch(n, workers, func(i int, _ *workerScratch) error {
		return fn(i)
	})
}

// forEachChunkScratch is forEachChunkParallel handing each worker
// goroutine a pooled arena for the duration of its run.
func forEachChunkScratch(n, workers int, fn func(i int, ws *workerScratch) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := scratchPool.Get().(*workerScratch)
			defer scratchPool.Put(ws)
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i, ws); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
