// Package chunk implements SPERR's embarrassingly parallel execution
// strategy (paper Section III-D): a large volume is divided into chunks,
// each chunk is compressed independently on its own goroutine (standing in
// for the paper's OpenMP threads), and the per-chunk bitstreams are
// concatenated under a container header. Chunk dimensions need not divide
// the volume dimensions; remainder chunks are simply smaller. The achieved
// parallelism is capped by the number of chunks, exactly as the paper
// observes.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// magic identifies a SPERR-Go container stream.
var magic = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '1'}

// DefaultChunkDim is the default chunk edge length; the paper settles on
// 256^3 as a good balance between compression efficiency and exposed
// parallelism (Section V-B).
const DefaultChunkDim = 256

// ErrCorrupt reports an undecodable container.
var ErrCorrupt = errors.New("chunk: corrupt container")

// Options controls a volume compression.
type Options struct {
	// Params is forwarded to every chunk encoder.
	Params codec.Params
	// ChunkDims bounds each chunk; zero components default to
	// DefaultChunkDim. Chunks at the high boundaries may be smaller.
	ChunkDims grid.Dims
	// Workers is the number of concurrent chunk encoders; <= 0 means
	// GOMAXPROCS.
	Workers int
}

func (o Options) chunkDims() grid.Dims {
	d := o.ChunkDims
	if d.NX <= 0 {
		d.NX = DefaultChunkDim
	}
	if d.NY <= 0 {
		d.NY = DefaultChunkDim
	}
	if d.NZ <= 0 {
		d.NZ = DefaultChunkDim
	}
	return d
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Stats aggregates per-chunk statistics of one volume compression.
type Stats struct {
	Chunks      []codec.Stats
	WallTime    time.Duration // end-to-end wall time of Compress
	TotalBytes  int
	NumPoints   int
	NumOutliers int
	SpeckBits   uint64
	OutlierBits uint64
}

// BPP returns the achieved container bitrate in bits per point.
func (s *Stats) BPP() float64 {
	if s.NumPoints == 0 {
		return 0
	}
	return float64(s.TotalBytes*8) / float64(s.NumPoints)
}

// Compress compresses vol chunk-by-chunk in parallel and returns the
// container stream.
func Compress(vol *grid.Volume, opts Options) ([]byte, *Stats, error) {
	if !vol.Dims.Valid() {
		return nil, nil, fmt.Errorf("chunk: invalid volume dims %v", vol.Dims)
	}
	start := time.Now()
	chunks := grid.SplitChunks(vol.Dims, opts.chunkDims())
	streams := make([][]byte, len(chunks))
	stats := make([]codec.Stats, len(chunks))
	errs := make([]error, len(chunks))

	workers := opts.workers()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(chunks) {
					return
				}
				c := chunks[i]
				sub := vol.Cutout(c.X0, c.Y0, c.Z0, c.Dims)
				stream, st, err := codec.EncodeChunk(sub.Data, c.Dims, opts.Params)
				if err != nil {
					errs[i] = fmt.Errorf("chunk %d %v: %w", i, c.Dims, err)
					return
				}
				streams[i] = stream
				stats[i] = *st
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Container: magic | volume dims | chunk dims | nchunks | lengths | payloads.
	cd := opts.chunkDims()
	head := make([]byte, 0, 8+4*7+4*len(chunks))
	head = append(head, magic[:]...)
	for _, v := range []int{vol.Dims.NX, vol.Dims.NY, vol.Dims.NZ, cd.NX, cd.NY, cd.NZ, len(chunks)} {
		head = binary.LittleEndian.AppendUint32(head, uint32(v))
	}
	total := len(head)
	for _, s := range streams {
		total += 4 + len(s)
	}
	out := make([]byte, 0, total)
	out = append(out, head...)
	for _, s := range streams {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
		out = append(out, s...)
	}

	agg := &Stats{
		Chunks:     stats,
		WallTime:   time.Since(start),
		TotalBytes: len(out),
		NumPoints:  vol.Dims.Len(),
	}
	for i := range stats {
		agg.NumOutliers += stats[i].NumOutliers
		agg.SpeckBits += stats[i].SpeckBits
		agg.OutlierBits += stats[i].OutlierBits
	}
	return out, agg, nil
}

// Decompress reconstructs a volume from a container stream, decoding
// chunks in parallel on up to workers goroutines (<= 0 means GOMAXPROCS).
func Decompress(stream []byte, workers int) (*grid.Volume, error) {
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	vol := grid.NewVolume(c.volDims)
	err = forEachChunkParallel(len(c.chunks), workers, func(i int) error {
		ch := c.chunks[i]
		data, err := codec.DecodeChunk(c.payloads[i], ch.Dims)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		// Chunks are disjoint, so concurrent Insert calls touch disjoint
		// regions of vol.Data.
		vol.Insert(grid.FromSlice(ch.Dims, data), ch.X0, ch.Y0, ch.Z0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vol, nil
}

// forEachChunkParallel runs fn(i) for i in [0, n) on up to workers
// goroutines (<= 0 means GOMAXPROCS) and returns the first error.
func forEachChunkParallel(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
