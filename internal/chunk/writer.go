package chunk

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// ctxBox wraps a context.Context so it can sit behind an atomic.Pointer:
// the producer goroutine publishes it once via SetContext while worker
// goroutines (already launched) load it per job.
type ctxBox struct{ ctx context.Context }

func loadCtx(p *atomic.Pointer[ctxBox]) context.Context {
	if b := p.Load(); b != nil {
		return b.ctx
	}
	return context.Background()
}

// Writer is the streaming encoder engine: it accepts a volume's samples
// incrementally in row-major order (x fastest, any Write granularity),
// compresses chunks on a worker pool as soon as their samples are
// complete, and emits container-v2 frames to the underlying io.Writer in
// chunk-index order — out-of-order completions wait in a reorder buffer,
// so the byte stream is identical at every worker count. Close writes the
// index footer.
//
// Peak memory is bounded by the in-flight chunk set, not the volume: at
// most one accumulation slab (volume XY extent x chunk Z extent; none at
// all when Write is handed whole slabs) plus one chunk slab per worker.
//
// A Writer is not safe for concurrent use. After Close (or an error) it
// can be rearmed with Reset, reusing its buffers and parameters.
type Writer struct {
	w     io.Writer
	opts  Options
	start time.Time

	volDims   grid.Dims
	chunkDims grid.Dims // clamped tiling actually used
	chunks    []grid.Chunk
	perSlab   int // chunks per z-slab of the tiling
	params    codec.Params
	workers   int
	version   int // container version written: 3 when frames carry codec tags, else 2

	// Producer-side accumulation.
	fed      int // samples received so far
	slabBuf  []float64
	slabFill int

	jobs chan encJob
	wg   sync.WaitGroup
	em   *frameEmitter

	inFlight     atomic.Int64 // samples held in worker chunk slabs
	peakInFlight atomic.Int64

	ctx atomic.Pointer[ctxBox] // optional cancellation, see SetContext

	stats  *Stats
	closed bool
	err    error
}

// encJob hands one chunk to a worker. The worker cuts the chunk's samples
// out of src (origin translated by off) into its own arena, then signals
// cutDone so the producer may reuse or release src.
type encJob struct {
	index   int
	src     *grid.Volume
	x0      int
	y0      int
	z0      int
	dims    grid.Dims
	cutDone *sync.WaitGroup
}

// encResult is one compressed chunk awaiting its turn in the emitter.
type encResult struct {
	frame []byte // v3: leading codec tag byte, then the backend stream
	id    codec.CodecID
	stats codec.Stats
	wall  time.Duration
	grows int
	dims  grid.Dims
}

// frameEmitter sequences compressed chunks into the output stream in
// index order and accumulates the index footer entries.
type frameEmitter struct {
	mu      sync.Mutex
	w       io.Writer
	next    int
	off     uint64 // current container write offset
	pending map[int]encResult
	entries []indexEntry
	codecs  []codec.CodecID // per-chunk winners, the v3 footer codec map
	stats   []codec.Stats
	walls   []time.Duration
	grows   []int
	seq     func(Event) // optional ordered instrumentation callback
	chunks  []grid.Chunk
	err     error
}

func (em *frameEmitter) fail(err error) {
	em.mu.Lock()
	if em.err == nil {
		em.err = err
	}
	em.mu.Unlock()
}

func (em *frameEmitter) error() error {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.err
}

// deliver hands a completed chunk to the emitter; frames are written the
// moment their turn arrives, under the emitter lock.
func (em *frameEmitter) deliver(i int, res encResult) {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.err != nil {
		return
	}
	if i != em.next {
		em.pending[i] = res
		return
	}
	em.writeLocked(i, res)
	em.next++
	for {
		res, ok := em.pending[em.next]
		if !ok {
			return
		}
		delete(em.pending, em.next)
		em.writeLocked(em.next, res)
		em.next++
	}
}

func (em *frameEmitter) writeLocked(i int, res encResult) {
	var pre [4]byte
	binary.LittleEndian.PutUint32(pre[:], uint32(len(res.frame)))
	crc := frameCRC(res.frame)
	var post [4]byte
	binary.LittleEndian.PutUint32(post[:], crc)
	for _, b := range [][]byte{pre[:], res.frame, post[:]} {
		if _, err := em.w.Write(b); err != nil {
			em.err = fmt.Errorf("chunk: write frame %d: %w", i, err)
			return
		}
	}
	em.entries[i] = indexEntry{offset: em.off, length: uint32(len(res.frame)), crc: crc}
	em.off += 4 + uint64(len(res.frame)) + 4
	em.codecs[i] = res.id
	em.stats[i] = res.stats
	em.walls[i] = res.wall
	em.grows[i] = res.grows
	if em.seq != nil {
		em.seq(Event{
			Index:        i,
			Dims:         res.dims,
			BytesIn:      res.dims.Len() * 8,
			BytesOut:     len(res.frame),
			Codec:        res.id,
			WallTime:     res.wall,
			ScratchGrows: res.grows,
			Stats:        res.stats,
		})
	}
}

// NewWriter starts a streaming compression of a volume with extent
// volDims into w: it writes the container-v2 fixed header immediately and
// launches the worker pool. Feed the samples with Write, then Close.
func NewWriter(w io.Writer, volDims grid.Dims, opts Options) (*Writer, error) {
	cw := &Writer{}
	if err := cw.init(w, volDims, opts); err != nil {
		return nil, err
	}
	return cw, nil
}

// Reset rearms a closed (or failed) Writer for a new volume with the same
// Options, reusing its accumulation buffers. It must not be called on a
// Writer that is still open.
func (cw *Writer) Reset(w io.Writer, volDims grid.Dims) error {
	if cw.jobs != nil && !cw.closed {
		return fmt.Errorf("chunk: Reset on an open Writer")
	}
	return cw.init(w, volDims, cw.opts)
}

func (cw *Writer) init(w io.Writer, volDims grid.Dims, opts Options) error {
	if !volDims.Valid() {
		return fmt.Errorf("chunk: invalid volume dims %v", volDims)
	}
	if err := opts.Params.Validate(); err != nil {
		return err
	}
	cw.w = w
	cw.opts = opts
	cw.start = time.Now()
	cw.volDims = volDims
	cw.chunkDims = grid.Dims{
		NX: clampTile(opts.chunkDims().NX, volDims.NX),
		NY: clampTile(opts.chunkDims().NY, volDims.NY),
		NZ: clampTile(opts.chunkDims().NZ, volDims.NZ),
	}
	cw.chunks = grid.SplitChunks(volDims, cw.chunkDims)
	cw.perSlab = ceilDiv(volDims.NX, cw.chunkDims.NX) * ceilDiv(volDims.NY, cw.chunkDims.NY)
	cw.fed = 0
	cw.slabFill = 0
	cw.closed = false
	cw.err = nil
	cw.stats = nil
	// v3 exists for streams whose frames need codec tags; everything else
	// keeps emitting v2 byte-for-byte.
	cw.version = 2
	if opts.Params.Mode == codec.ModeAdaptive || opts.Params.Codec != codec.CodecSPERR {
		cw.version = 3
	}
	cw.inFlight.Store(0)
	cw.peakInFlight.Store(0)
	cw.ctx.Store(nil)

	// Mirror the historical scheduling policy: surplus workers beyond the
	// chunk count become intra-chunk threads (a pure runtime knob — the
	// output bytes are identical at every split).
	workers := cw.opts.workers()
	cw.params = cw.opts.Params
	if workers > len(cw.chunks) {
		cw.params.Threads = workers / len(cw.chunks)
		workers = len(cw.chunks)
	}
	cw.workers = workers

	var seq func(Event)
	if hook := cw.opts.Instrument; hook != nil {
		seq = hook
	}
	cw.em = &frameEmitter{
		w:       w,
		pending: make(map[int]encResult),
		entries: make([]indexEntry, len(cw.chunks)),
		codecs:  make([]codec.CodecID, len(cw.chunks)),
		stats:   make([]codec.Stats, len(cw.chunks)),
		walls:   make([]time.Duration, len(cw.chunks)),
		grows:   make([]int, len(cw.chunks)),
		seq:     seq,
		chunks:  cw.chunks,
	}

	magic := magicV2
	if cw.version >= 3 {
		magic = magicV3
	}
	hdr := appendFixedHeader(make([]byte, 0, fixedHeaderSize), magic,
		volDims, cw.opts.chunkDims(), len(cw.chunks))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("chunk: write header: %w", err)
	}
	cw.em.off = fixedHeaderSize

	cw.jobs = make(chan encJob, cw.workers)
	cw.wg = sync.WaitGroup{}
	for i := 0; i < cw.workers; i++ {
		cw.wg.Add(1)
		go cw.encodeWorker()
	}
	return nil
}

// SetContext attaches a cancellation context to the Writer: once ctx is
// done, workers stop picking up queued chunk encodes (in-flight chunks
// finish), and Write/Close return ctx's error. Call it before the first
// Write; a Reset clears it. The zero state never cancels.
func (cw *Writer) SetContext(ctx context.Context) { cw.ctx.Store(&ctxBox{ctx: ctx}) }

func (cw *Writer) encodeWorker() {
	defer cw.wg.Done()
	ws := scratchPool.Get().(*workerScratch)
	defer scratchPool.Put(ws)
	for job := range cw.jobs {
		if err := loadCtx(&cw.ctx).Err(); err != nil {
			cw.em.fail(err)
		}
		if cw.em.error() != nil {
			job.cutDone.Done()
			continue
		}
		t0 := time.Now()
		g0 := ws.codec.Grows()
		ws.slab = job.src.CutoutInto(ws.slab, job.x0, job.y0, job.z0, job.dims)
		job.cutDone.Done()
		n := int64(job.dims.Len())
		raisePeak(&cw.peakInFlight, cw.inFlight.Add(n))
		frame, id, st, err := cw.encodeChunk(ws.slab, job.dims, ws.codec)
		cw.inFlight.Add(-n)
		if err != nil {
			cw.em.fail(fmt.Errorf("chunk %d %v: %w", job.index, job.dims, err))
			continue
		}
		cw.em.deliver(job.index, encResult{
			frame: frame,
			id:    id,
			stats: *st,
			wall:  time.Since(t0),
			grows: ws.codec.Grows() - g0,
			dims:  job.dims,
		})
	}
}

// encodeChunk runs the version-correct encode of one chunk: the SPERR
// fast path for v2 streams, and the adaptive or fixed-backend dispatch
// for v3, where the returned frame carries the codec tag byte.
func (cw *Writer) encodeChunk(data []float64, dims grid.Dims, s *codec.Scratch) ([]byte, codec.CodecID, *codec.Stats, error) {
	if cw.version < 3 {
		stream, st, err := codec.EncodeChunkScratch(data, dims, cw.params, s)
		return stream, codec.CodecSPERR, st, err
	}
	var (
		id     codec.CodecID
		stream []byte
		st     *codec.Stats
		err    error
	)
	if cw.params.Mode == codec.ModeAdaptive {
		id, stream, st, err = codec.EncodeAdaptive(data, dims, cw.params, s)
	} else {
		b, ok := codec.Lookup(cw.params.Codec)
		if !ok {
			return nil, 0, nil, fmt.Errorf("chunk: unknown codec id %d", cw.params.Codec)
		}
		id = b.ID()
		stream, st, err = b.Encode(data, dims, cw.params, s)
	}
	if err != nil {
		return nil, 0, nil, err
	}
	frame := make([]byte, 1+len(stream))
	frame[0] = byte(id)
	copy(frame[1:], stream)
	return frame, id, st, nil
}

// slabRange returns the sample offset and length of z-slab s.
func (cw *Writer) slabRange(s int) (start, length int) {
	xy := cw.volDims.NX * cw.volDims.NY
	z0 := s * cw.chunkDims.NZ
	nz := cw.chunkDims.NZ
	if z0+nz > cw.volDims.NZ {
		nz = cw.volDims.NZ - z0
	}
	return z0 * xy, nz * xy
}

// dispatchSlab enqueues every chunk of z-slab s, cutting from src (a
// volume spanning exactly that slab), and waits until all workers have
// copied their chunk out of src.
func (cw *Writer) dispatchSlab(s int, src *grid.Volume) {
	z0 := s * cw.chunkDims.NZ
	var cut sync.WaitGroup
	for i := s * cw.perSlab; i < (s+1)*cw.perSlab && i < len(cw.chunks); i++ {
		ch := cw.chunks[i]
		cut.Add(1)
		cw.jobs <- encJob{
			index:   i,
			src:     src,
			x0:      ch.X0,
			y0:      ch.Y0,
			z0:      ch.Z0 - z0,
			dims:    ch.Dims,
			cutDone: &cut,
		}
	}
	cut.Wait()
}

// Write feeds the next samples of the volume in row-major order. It
// dispatches chunk compressions as z-slabs complete and may block while
// workers drain. The sample count across all Writes must equal the volume
// extent by Close time.
func (cw *Writer) Write(p []float64) (int, error) {
	if cw.closed {
		return 0, fmt.Errorf("chunk: Write after Close")
	}
	if err := loadCtx(&cw.ctx).Err(); err != nil {
		cw.em.fail(err)
	}
	if err := cw.em.error(); err != nil {
		return 0, err
	}
	total := cw.volDims.Len()
	written := 0
	for len(p) > 0 {
		if cw.fed >= total {
			return written, fmt.Errorf("chunk: %d samples beyond volume %v", len(p), cw.volDims)
		}
		s := cw.currentSlab()
		start, length := cw.slabRange(s)
		pos := cw.fed - start
		if pos == 0 && cw.slabFill == 0 && len(p) >= length {
			// The caller handed a whole slab: cut chunks straight from its
			// buffer, no accumulation copy. dispatchSlab returns only after
			// every chunk has been copied out, so p may be reused after
			// Write.
			src := grid.FromSlice(grid.Dims{NX: cw.volDims.NX, NY: cw.volDims.NY, NZ: length / (cw.volDims.NX * cw.volDims.NY)}, p[:length])
			cw.dispatchSlab(s, src)
			cw.fed += length
			written += length
			p = p[length:]
		} else {
			if cap(cw.slabBuf) < length {
				cw.slabBuf = make([]float64, length)
			}
			n := copy(cw.slabBuf[pos:length], p)
			cw.slabFill = pos + n
			cw.fed += n
			written += n
			p = p[n:]
			if cw.slabFill == length {
				src := grid.FromSlice(grid.Dims{NX: cw.volDims.NX, NY: cw.volDims.NY, NZ: length / (cw.volDims.NX * cw.volDims.NY)}, cw.slabBuf[:length])
				cw.dispatchSlab(s, src)
				cw.slabFill = 0
			}
		}
		if err := cw.em.error(); err != nil {
			return written, err
		}
	}
	return written, nil
}

// currentSlab returns the z-slab the next incoming sample belongs to.
func (cw *Writer) currentSlab() int {
	xy := cw.volDims.NX * cw.volDims.NY
	return (cw.fed / xy) / cw.chunkDims.NZ
}

// Close waits for all chunk compressions, writes the index footer, and
// finalizes Stats. It is an error to Close before the volume's full
// sample count has been written.
func (cw *Writer) Close() error {
	if cw.closed {
		return cw.err
	}
	cw.closed = true
	short := cw.fed != cw.volDims.Len()
	close(cw.jobs)
	cw.wg.Wait()
	if err := loadCtx(&cw.ctx).Err(); err != nil {
		cw.em.fail(err)
	}
	if err := cw.em.error(); err != nil {
		cw.err = err
		return err
	}
	if short {
		cw.err = fmt.Errorf("chunk: volume %v needs %d samples, got %d",
			cw.volDims, cw.volDims.Len(), cw.fed)
		return cw.err
	}

	agg := aggregates{
		mode:    cw.params.Mode,
		entropy: cw.params.Entropy,
		tol:     cw.params.Tol,
	}
	for i := range cw.em.stats {
		agg.speckBits += cw.em.stats[i].SpeckBits
		agg.outlierBits += cw.em.stats[i].OutlierBits
	}
	var codecs []codec.CodecID
	if cw.version >= 3 {
		codecs = cw.em.codecs
	}
	footer := appendIndex(make([]byte, 0, indexSizeFor(cw.version, len(cw.chunks))),
		cw.version, cw.em.entries, codecs, agg, cw.em.off)
	if _, err := cw.w.Write(footer); err != nil {
		cw.err = fmt.Errorf("chunk: write index: %w", err)
		return cw.err
	}

	st := &Stats{
		Chunks:      cw.em.stats,
		WallTime:    time.Since(cw.start),
		TotalBytes:  int(cw.em.off) + len(footer),
		NumPoints:   cw.volDims.Len(),
		CodecCounts: make(map[string]int, 1),
	}
	for _, id := range cw.em.codecs {
		st.CodecCounts[id.String()]++
	}
	for i := range cw.em.stats {
		st.NumOutliers += cw.em.stats[i].NumOutliers
		st.SpeckBits += cw.em.stats[i].SpeckBits
		st.OutlierBits += cw.em.stats[i].OutlierBits
		st.ScratchGrows += cw.em.grows[i]
		if cw.em.walls[i] > st.MaxChunkTime {
			st.MaxChunkTime = cw.em.walls[i]
		}
	}
	cw.stats = st
	return nil
}

// Stats returns the compression statistics; valid after a successful
// Close.
func (cw *Writer) Stats() *Stats { return cw.stats }

// NumChunks returns the number of chunks the volume tiles into.
func (cw *Writer) NumChunks() int { return len(cw.chunks) }

// PeakInFlightSamples reports the maximum number of chunk samples held in
// worker arenas at any one time — the engine's bounded-memory witness
// (at most workers x chunk size, on top of a single accumulation slab).
func (cw *Writer) PeakInFlightSamples() int { return int(cw.peakInFlight.Load()) }
