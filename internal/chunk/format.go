package chunk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// Container format v2 ("SPRRGO02") wraps the per-chunk codec streams in
// length-prefixed, checksummed frames and appends a seekable index footer,
// so that
//
//   - a sequential reader (io.Reader) can decode chunk by chunk with
//     memory bounded by the in-flight chunk set, never the volume;
//   - a random-access reader ([]byte or io.ReaderAt) can locate any
//     chunk's frame from the footer alone, paying only for the chunks a
//     region decode actually intersects; and
//   - Describe answers from the fixed header plus the footer without
//     touching any frame payload.
//
// Layout:
//
//	fixed header (36 bytes):
//	    magic "SPRRGO02" | volDims 3xu32 | chunkDims 3xu32 | nchunks u32
//	frames, one per chunk in container (z-major) order:
//	    payloadLen u32 | payload | crc32c(payload) u32
//	index footer, at indexOffset:
//	    nchunks x { frameOffset u64 | payloadLen u32 | crc32c u32 }
//	    aggregates (32 bytes):
//	        mode u8 | entropy u8 | pad[6] | tol f64 | speckBits u64 | outlierBits u64
//	    tail (20 bytes):
//	        indexCRC u32 (crc32c of entries + aggregates) | indexOffset u64 | magic "SPRRIX02"
//
// frameOffset addresses the frame's payloadLen field from the start of
// the container. Format v1 ("SPRRGO01") is the same fixed header followed
// by bare { payloadLen u32 | payload } frames with no checksums and no
// footer; it remains fully decodable.
//
// Format v3 ("SPRRGO03") carries the multi-backend container: each frame
// payload is a one-byte codec tag followed by the backend stream (the
// frame CRC covers the tag), and the footer inserts a codec map — one
// CodecID byte per chunk, mirroring the frame tags — between the index
// entries and the aggregates:
//
//	index footer v3, at indexOffset:
//	    nchunks x { frameOffset u64 | payloadLen u32 | crc32c u32 }
//	    nchunks x codec u8
//	    aggregates (32 bytes, mode may be ModeAdaptive)
//	    tail (20 bytes, magic "SPRRIX03")
//
// The map lets `sperr inspect` and Describe report the per-chunk codec
// without opening any frame, and gives readers a cross-check against the
// frame tags. Everything else is identical to v2.
var (
	magicV1  = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '1'}
	magicV2  = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '2'}
	magicV3  = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '3'}
	magicIx  = [8]byte{'S', 'P', 'R', 'R', 'I', 'X', '0', '2'}
	magicIx3 = [8]byte{'S', 'P', 'R', 'R', 'I', 'X', '0', '3'}
)

const (
	// fixedHeaderSize covers the magic and the seven u32 geometry fields,
	// identical in v1 and v2.
	fixedHeaderSize = 8 + 4*7
	// frameOverheadV2 is the per-frame cost beyond the payload.
	frameOverheadV2 = 4 + 4
	// indexEntrySize is one footer entry: offset u64, length u32, crc u32.
	indexEntrySize = 8 + 4 + 4
	// aggregateSize is the footer's aggregate block.
	aggregateSize = 32
	// tailSize is the fixed footer tail: indexCRC u32, indexOffset u64,
	// end magic.
	tailSize = 4 + 8 + 8
)

// castagnoli is the CRC-32C polynomial table used for frame and index
// checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC is the checksum stored after each v2 frame payload and in the
// matching index entry.
func frameCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// indexEntry locates one chunk's frame within the container.
type indexEntry struct {
	offset uint64 // of the frame's length prefix, from container start
	length uint32 // payload bytes (excluding prefix and trailing CRC)
	crc    uint32 // crc32c of the payload
}

// aggregates is the footer's stream-level summary: what Describe needs
// without opening any frame. All chunks of one container share the coding
// mode, so the scalars are container-wide.
type aggregates struct {
	mode        codec.Mode
	entropy     bool
	tol         float64
	speckBits   uint64
	outlierBits uint64
}

// appendFixedHeader marshals the 36-byte fixed header shared by v1 and v2.
func appendFixedHeader(dst []byte, magic [8]byte, volDims, chunkDims grid.Dims, nchunks int) []byte {
	dst = append(dst, magic[:]...)
	for _, v := range []int{volDims.NX, volDims.NY, volDims.NZ,
		chunkDims.NX, chunkDims.NY, chunkDims.NZ, nchunks} {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// indexMagicFor returns the footer end magic of a container version.
func indexMagicFor(version int) [8]byte {
	if version >= 3 {
		return magicIx3
	}
	return magicIx
}

// indexSizeFor returns the exact footer size of a container version: v3
// inserts the nchunks-byte codec map.
func indexSizeFor(version, nchunks int) int {
	size := nchunks*indexEntrySize + aggregateSize + tailSize
	if version >= 3 {
		size += nchunks
	}
	return size
}

// appendIndex marshals the footer (entries, v3 codec map, aggregates,
// tail) given the byte offset at which the footer will be written. codecs
// must be nil exactly when version < 3.
func appendIndex(dst []byte, version int, entries []indexEntry, codecs []codec.CodecID, agg aggregates, indexOffset uint64) []byte {
	start := len(dst)
	for _, e := range entries {
		dst = binary.LittleEndian.AppendUint64(dst, e.offset)
		dst = binary.LittleEndian.AppendUint32(dst, e.length)
		dst = binary.LittleEndian.AppendUint32(dst, e.crc)
	}
	if version >= 3 {
		for _, id := range codecs {
			dst = append(dst, byte(id))
		}
	}
	var ab [aggregateSize]byte
	ab[0] = byte(agg.mode)
	if agg.entropy {
		ab[1] = 1
	}
	binary.LittleEndian.PutUint64(ab[8:], math.Float64bits(agg.tol))
	binary.LittleEndian.PutUint64(ab[16:], agg.speckBits)
	binary.LittleEndian.PutUint64(ab[24:], agg.outlierBits)
	dst = append(dst, ab[:]...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = binary.LittleEndian.AppendUint64(dst, indexOffset)
	magic := indexMagicFor(version)
	dst = append(dst, magic[:]...)
	return dst
}

// parseIndex validates and decodes the footer region of a v2/v3
// container. indexBytes must span [indexOffset, end) of the stream;
// streamLen is the total container length, used to bound the entries. The
// returned codec map is non-nil exactly for v3.
func parseIndex(indexBytes []byte, version, nchunks int, indexOffset uint64, streamLen int) ([]indexEntry, []codec.CodecID, aggregates, error) {
	var agg aggregates
	want := indexSizeFor(version, nchunks)
	if len(indexBytes) != want {
		return nil, nil, agg, fmt.Errorf("%w: index footer is %d bytes, want %d", ErrCorrupt, len(indexBytes), want)
	}
	tail := indexBytes[len(indexBytes)-tailSize:]
	magic := indexMagicFor(version)
	for i := range magic {
		if tail[12+i] != magic[i] {
			return nil, nil, agg, fmt.Errorf("%w: bad index magic", ErrCorrupt)
		}
	}
	if got := binary.LittleEndian.Uint64(tail[4:12]); got != indexOffset {
		return nil, nil, agg, fmt.Errorf("%w: index offset %d, tail says %d", ErrCorrupt, indexOffset, got)
	}
	body := indexBytes[:len(indexBytes)-tailSize]
	if crc := crc32.Checksum(body, castagnoli); crc != binary.LittleEndian.Uint32(tail[:4]) {
		return nil, nil, agg, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	entries := make([]indexEntry, nchunks)
	next := uint64(fixedHeaderSize)
	for i := range entries {
		off := i * indexEntrySize
		e := indexEntry{
			offset: binary.LittleEndian.Uint64(body[off:]),
			length: binary.LittleEndian.Uint32(body[off+8:]),
			crc:    binary.LittleEndian.Uint32(body[off+12:]),
		}
		// Frames are contiguous from the fixed header to the footer; any
		// other arrangement is corruption.
		if e.offset != next {
			return nil, nil, agg, fmt.Errorf("%w: frame %d at offset %d, want %d", ErrCorrupt, i, e.offset, next)
		}
		end := e.offset + 4 + uint64(e.length) + 4
		if end > indexOffset || end > uint64(streamLen) {
			return nil, nil, agg, fmt.Errorf("%w: frame %d overruns index", ErrCorrupt, i)
		}
		entries[i] = e
		next = end
	}
	if next != indexOffset {
		return nil, nil, agg, fmt.Errorf("%w: %d frame bytes unaccounted before index", ErrCorrupt, indexOffset-next)
	}
	var codecs []codec.CodecID
	ab := body[nchunks*indexEntrySize:]
	if version >= 3 {
		codecs = make([]codec.CodecID, nchunks)
		for i := 0; i < nchunks; i++ {
			id := codec.CodecID(ab[i])
			if _, ok := codec.Lookup(id); !ok {
				return nil, nil, agg, fmt.Errorf("%w: unknown codec %d for chunk %d in index", ErrCorrupt, id, i)
			}
			codecs[i] = id
		}
		ab = ab[nchunks:]
	}
	agg.mode = codec.Mode(ab[0])
	switch agg.mode {
	case codec.ModePWE, codec.ModeBPP, codec.ModeRMSE:
	case codec.ModeAdaptive:
		if version < 3 {
			return nil, nil, agg, fmt.Errorf("%w: adaptive mode in pre-v3 index", ErrCorrupt)
		}
	default:
		return nil, nil, agg, fmt.Errorf("%w: unknown mode %d in index", ErrCorrupt, agg.mode)
	}
	agg.entropy = ab[1]&1 != 0
	agg.tol = math.Float64frombits(binary.LittleEndian.Uint64(ab[8:]))
	agg.speckBits = binary.LittleEndian.Uint64(ab[16:])
	agg.outlierBits = binary.LittleEndian.Uint64(ab[24:])
	return entries, codecs, agg, nil
}

// locateIndex reads the fixed tail of a v2/v3 stream and returns the
// index footer's offset.
func locateIndex(stream []byte, version int) (uint64, error) {
	if len(stream) < fixedHeaderSize+tailSize {
		return 0, fmt.Errorf("%w: stream too short for index tail", ErrCorrupt)
	}
	tail := stream[len(stream)-tailSize:]
	magic := indexMagicFor(version)
	for i := range magic {
		if tail[12+i] != magic[i] {
			return 0, fmt.Errorf("%w: missing index magic", ErrCorrupt)
		}
	}
	off := binary.LittleEndian.Uint64(tail[4:12])
	if off < fixedHeaderSize || off > uint64(len(stream)-tailSize) {
		return 0, fmt.Errorf("%w: index offset %d out of range", ErrCorrupt, off)
	}
	return off, nil
}
