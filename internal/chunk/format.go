package chunk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// Container format v2 ("SPRRGO02") wraps the per-chunk codec streams in
// length-prefixed, checksummed frames and appends a seekable index footer,
// so that
//
//   - a sequential reader (io.Reader) can decode chunk by chunk with
//     memory bounded by the in-flight chunk set, never the volume;
//   - a random-access reader ([]byte or io.ReaderAt) can locate any
//     chunk's frame from the footer alone, paying only for the chunks a
//     region decode actually intersects; and
//   - Describe answers from the fixed header plus the footer without
//     touching any frame payload.
//
// Layout:
//
//	fixed header (36 bytes):
//	    magic "SPRRGO02" | volDims 3xu32 | chunkDims 3xu32 | nchunks u32
//	frames, one per chunk in container (z-major) order:
//	    payloadLen u32 | payload | crc32c(payload) u32
//	index footer, at indexOffset:
//	    nchunks x { frameOffset u64 | payloadLen u32 | crc32c u32 }
//	    aggregates (32 bytes):
//	        mode u8 | entropy u8 | pad[6] | tol f64 | speckBits u64 | outlierBits u64
//	    tail (20 bytes):
//	        indexCRC u32 (crc32c of entries + aggregates) | indexOffset u64 | magic "SPRRIX02"
//
// frameOffset addresses the frame's payloadLen field from the start of
// the container. Format v1 ("SPRRGO01") is the same fixed header followed
// by bare { payloadLen u32 | payload } frames with no checksums and no
// footer; it remains fully decodable.
var (
	magicV1 = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '1'}
	magicV2 = [8]byte{'S', 'P', 'R', 'R', 'G', 'O', '0', '2'}
	magicIx = [8]byte{'S', 'P', 'R', 'R', 'I', 'X', '0', '2'}
)

const (
	// fixedHeaderSize covers the magic and the seven u32 geometry fields,
	// identical in v1 and v2.
	fixedHeaderSize = 8 + 4*7
	// frameOverheadV2 is the per-frame cost beyond the payload.
	frameOverheadV2 = 4 + 4
	// indexEntrySize is one footer entry: offset u64, length u32, crc u32.
	indexEntrySize = 8 + 4 + 4
	// aggregateSize is the footer's aggregate block.
	aggregateSize = 32
	// tailSize is the fixed footer tail: indexCRC u32, indexOffset u64,
	// end magic.
	tailSize = 4 + 8 + 8
)

// castagnoli is the CRC-32C polynomial table used for frame and index
// checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC is the checksum stored after each v2 frame payload and in the
// matching index entry.
func frameCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// indexEntry locates one chunk's frame within the container.
type indexEntry struct {
	offset uint64 // of the frame's length prefix, from container start
	length uint32 // payload bytes (excluding prefix and trailing CRC)
	crc    uint32 // crc32c of the payload
}

// aggregates is the footer's stream-level summary: what Describe needs
// without opening any frame. All chunks of one container share the coding
// mode, so the scalars are container-wide.
type aggregates struct {
	mode        codec.Mode
	entropy     bool
	tol         float64
	speckBits   uint64
	outlierBits uint64
}

// appendFixedHeader marshals the 36-byte fixed header shared by v1 and v2.
func appendFixedHeader(dst []byte, magic [8]byte, volDims, chunkDims grid.Dims, nchunks int) []byte {
	dst = append(dst, magic[:]...)
	for _, v := range []int{volDims.NX, volDims.NY, volDims.NZ,
		chunkDims.NX, chunkDims.NY, chunkDims.NZ, nchunks} {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	return dst
}

// appendIndex marshals the footer (entries, aggregates, tail) given the
// byte offset at which the footer will be written.
func appendIndex(dst []byte, entries []indexEntry, agg aggregates, indexOffset uint64) []byte {
	start := len(dst)
	for _, e := range entries {
		dst = binary.LittleEndian.AppendUint64(dst, e.offset)
		dst = binary.LittleEndian.AppendUint32(dst, e.length)
		dst = binary.LittleEndian.AppendUint32(dst, e.crc)
	}
	var ab [aggregateSize]byte
	ab[0] = byte(agg.mode)
	if agg.entropy {
		ab[1] = 1
	}
	binary.LittleEndian.PutUint64(ab[8:], math.Float64bits(agg.tol))
	binary.LittleEndian.PutUint64(ab[16:], agg.speckBits)
	binary.LittleEndian.PutUint64(ab[24:], agg.outlierBits)
	dst = append(dst, ab[:]...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = binary.LittleEndian.AppendUint64(dst, indexOffset)
	dst = append(dst, magicIx[:]...)
	return dst
}

// parseIndex validates and decodes the footer region of a v2 container.
// indexBytes must span [indexOffset, end) of the stream; streamLen is the
// total container length, used to bound the entries.
func parseIndex(indexBytes []byte, nchunks int, indexOffset uint64, streamLen int) ([]indexEntry, aggregates, error) {
	var agg aggregates
	want := nchunks*indexEntrySize + aggregateSize + tailSize
	if len(indexBytes) != want {
		return nil, agg, fmt.Errorf("%w: index footer is %d bytes, want %d", ErrCorrupt, len(indexBytes), want)
	}
	tail := indexBytes[len(indexBytes)-tailSize:]
	for i := range magicIx {
		if tail[12+i] != magicIx[i] {
			return nil, agg, fmt.Errorf("%w: bad index magic", ErrCorrupt)
		}
	}
	if got := binary.LittleEndian.Uint64(tail[4:12]); got != indexOffset {
		return nil, agg, fmt.Errorf("%w: index offset %d, tail says %d", ErrCorrupt, indexOffset, got)
	}
	body := indexBytes[:len(indexBytes)-tailSize]
	if crc := crc32.Checksum(body, castagnoli); crc != binary.LittleEndian.Uint32(tail[:4]) {
		return nil, agg, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	entries := make([]indexEntry, nchunks)
	next := uint64(fixedHeaderSize)
	for i := range entries {
		off := i * indexEntrySize
		e := indexEntry{
			offset: binary.LittleEndian.Uint64(body[off:]),
			length: binary.LittleEndian.Uint32(body[off+8:]),
			crc:    binary.LittleEndian.Uint32(body[off+12:]),
		}
		// Frames are contiguous from the fixed header to the footer; any
		// other arrangement is corruption.
		if e.offset != next {
			return nil, agg, fmt.Errorf("%w: frame %d at offset %d, want %d", ErrCorrupt, i, e.offset, next)
		}
		end := e.offset + 4 + uint64(e.length) + 4
		if end > indexOffset || end > uint64(streamLen) {
			return nil, agg, fmt.Errorf("%w: frame %d overruns index", ErrCorrupt, i)
		}
		entries[i] = e
		next = end
	}
	if next != indexOffset {
		return nil, agg, fmt.Errorf("%w: %d frame bytes unaccounted before index", ErrCorrupt, indexOffset-next)
	}
	ab := body[nchunks*indexEntrySize:]
	agg.mode = codec.Mode(ab[0])
	if agg.mode != codec.ModePWE && agg.mode != codec.ModeBPP && agg.mode != codec.ModeRMSE {
		return nil, agg, fmt.Errorf("%w: unknown mode %d in index", ErrCorrupt, agg.mode)
	}
	agg.entropy = ab[1]&1 != 0
	agg.tol = math.Float64frombits(binary.LittleEndian.Uint64(ab[8:]))
	agg.speckBits = binary.LittleEndian.Uint64(ab[16:])
	agg.outlierBits = binary.LittleEndian.Uint64(ab[24:])
	return entries, agg, nil
}

// locateIndex reads the fixed tail of a v2 stream and returns the index
// footer's offset.
func locateIndex(stream []byte) (uint64, error) {
	if len(stream) < fixedHeaderSize+tailSize {
		return 0, fmt.Errorf("%w: stream too short for index tail", ErrCorrupt)
	}
	tail := stream[len(stream)-tailSize:]
	for i := range magicIx {
		if tail[12+i] != magicIx[i] {
			return 0, fmt.Errorf("%w: missing index magic", ErrCorrupt)
		}
	}
	off := binary.LittleEndian.Uint64(tail[4:12])
	if off < fixedHeaderSize || off > uint64(len(stream)-tailSize) {
		return 0, fmt.Errorf("%w: index offset %d out of range", ErrCorrupt, off)
	}
	return off, nil
}
