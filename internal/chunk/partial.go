package chunk

import (
	"fmt"

	"sperr/internal/codec"
	"sperr/internal/grid"
	"sperr/internal/wavelet"
)

// DecompressPartial reconstructs a volume from a container stream using
// only a fraction of each chunk's embedded SPECK bits — the streaming /
// progressive-access mode enabled by SPECK's embedded bitstreams (paper
// Section VII). fraction = 1 is equivalent to Decompress.
func DecompressPartial(stream []byte, fraction float64, workers int) (*grid.Volume, error) {
	if !(fraction > 0 && fraction <= 1) {
		return nil, fmt.Errorf("chunk: fraction must be in (0, 1], got %g", fraction)
	}
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	vol := grid.NewVolume(c.volDims)
	err = forEachChunkParallel(len(c.chunks), workers, func(i int) error {
		ch := c.chunks[i]
		payload, err := c.sperrPayload(i)
		if err != nil {
			return err
		}
		data, err := codec.DecodeChunkPartial(payload, ch.Dims, fraction)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		vol.Insert(grid.FromSlice(ch.Dims, data), ch.X0, ch.Y0, ch.Z0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vol, nil
}

// DecompressLowRes reconstructs a coarsened volume by leaving the finest
// drop wavelet levels of every chunk folded — the multi-resolution access
// mode of paper Section VII. Each axis of each chunk is ceil-halved once
// per dropped level (chunks too small for that many levels coarsen as far
// as they can), and the coarse chunks are assembled by concatenation in
// the original chunk order. drop = 0 is a full-resolution decode without
// outlier corrections.
//
// The result is a hierarchical approximation, not a pointwise
// subsampling: values are the wavelet approximation band rescaled to data
// magnitude.
func DecompressLowRes(stream []byte, drop, workers int) (*grid.Volume, error) {
	if drop < 0 {
		return nil, fmt.Errorf("chunk: negative drop %d", drop)
	}
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	// Coarse geometry: per-axis tile widths shrink independently, so the
	// coarse origin of a chunk is the sum of the coarse widths of the
	// tiles before it along each axis.
	coarseOrigin := func(orig, tile, full int) int {
		o := 0
		for pos := 0; pos < orig; pos += tile {
			w := tile
			if pos+w > full {
				w = full - pos
			}
			o += wavelet.CoarseLen(w, drop)
		}
		return o
	}
	// Total coarse extent per axis = coarse origin of a hypothetical
	// chunk starting at the end of the axis.
	coarseVol := grid.Dims{
		NX: coarseOrigin(c.volDims.NX, clampTile(c.chunkDims.NX, c.volDims.NX), c.volDims.NX),
		NY: coarseOrigin(c.volDims.NY, clampTile(c.chunkDims.NY, c.volDims.NY), c.volDims.NY),
		NZ: coarseOrigin(c.volDims.NZ, clampTile(c.chunkDims.NZ, c.volDims.NZ), c.volDims.NZ),
	}
	vol := grid.NewVolume(coarseVol)
	err = forEachChunkParallel(len(c.chunks), workers, func(i int) error {
		ch := c.chunks[i]
		payload, err := c.sperrPayload(i)
		if err != nil {
			return err
		}
		data, low, err := codec.DecodeChunkLowRes(payload, ch.Dims, drop)
		if err != nil {
			return fmt.Errorf("chunk %d: %w", i, err)
		}
		x0 := coarseOrigin(ch.X0, clampTile(c.chunkDims.NX, c.volDims.NX), c.volDims.NX)
		y0 := coarseOrigin(ch.Y0, clampTile(c.chunkDims.NY, c.volDims.NY), c.volDims.NY)
		z0 := coarseOrigin(ch.Z0, clampTile(c.chunkDims.NZ, c.volDims.NZ), c.volDims.NZ)
		vol.Insert(grid.FromSlice(low, data), x0, y0, z0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return vol, nil
}

// clampTile mirrors grid.SplitChunks's clamping of oversized or zero
// chunk dims to the volume extent.
func clampTile(tile, full int) int {
	if tile <= 0 || tile > full {
		return full
	}
	return tile
}
